// Package cluster turns a set of ckptd processes into one serving
// system: a coordinator routes submitted jobs to workers by consistent
// hashing over the canonical-spec SHA-256 key, fans sweeps and fault
// campaigns out as independent sub-jobs, and merges sub-results
// deterministically — assembled tables are byte-identical to a
// single-node run, including after worker deaths force retries,
// because every sub-result recombines at a position fixed by the
// deterministic plan, not by arrival order.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
)

// Ring is a consistent-hash ring over worker addresses. Each member
// contributes `replicas` virtual points; a key belongs to the first
// point clockwise from its hash. Adding or removing one member moves
// only the keys adjacent to that member's points (~1/N of the space),
// which is what keeps worker caches warm across membership churn.
type Ring struct {
	replicas int

	mu      sync.RWMutex
	points  []ringPoint // sorted by hash
	members map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing returns an empty ring. replicas <= 0 selects 64 virtual
// points per member — enough that 2–16 real nodes split the key space
// within a few percent of evenly.
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	return &Ring{replicas: replicas, members: make(map[string]bool)}
}

func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[node] {
		return
	}
	r.members[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{
			hash: ringHash(node + "#" + strconv.Itoa(i)),
			node: node,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member and its points (idempotent).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[node] {
		return
	}
	delete(r.members, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the current membership, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of members.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	seq := r.Sequence(key, 1)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Sequence returns up to n distinct members in failover order for key:
// the owner first, then each next distinct member clockwise. A
// dispatcher walking this list retries a dead owner's sub-job on
// exactly the node that inherits the key after the ring rebalances.
func (r *Ring) Sequence(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
