package service

import (
	"sync"
	"sync/atomic"
)

// queue is the bounded execution queue: a channel of single-flight
// entries drained by a fixed worker pool. Admission is non-blocking —
// when the buffer is full the caller sheds load (HTTP 429) instead of
// parking, which keeps the daemon's memory bounded and its latency
// honest under overload.
type queue struct {
	ch      chan *entry
	run     func(*entry)
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	depth   atomic.Int64 // entries admitted but not yet started
	running atomic.Int64 // entries being executed right now
}

func newQueue(capacity, workers int, run func(*entry)) *queue {
	if capacity <= 0 {
		capacity = 64
	}
	if workers <= 0 {
		workers = 2
	}
	q := &queue{ch: make(chan *entry, capacity), run: run}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

func (q *queue) worker() {
	defer q.wg.Done()
	for e := range q.ch {
		q.depth.Add(-1)
		q.running.Add(1)
		q.run(e)
		q.running.Add(-1)
	}
}

// tryEnqueue admits e if there is room. It returns false when the
// queue is full or the daemon is draining.
func (q *queue) tryEnqueue(e *entry) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	select {
	case q.ch <- e:
		q.depth.Add(1)
		return true
	default:
		return false
	}
}

// close stops admission and waits for the workers to drain everything
// already admitted. Safe to call more than once.
func (q *queue) close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
	q.mu.Unlock()
	q.wg.Wait()
}

// Depth returns the number of admitted-but-unstarted entries.
func (q *queue) Depth() int64 { return q.depth.Load() }

// Running returns the number of entries currently executing.
func (q *queue) Running() int64 { return q.running.Load() }
