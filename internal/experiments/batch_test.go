package experiments

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/machine"
)

// TestGroupJobs pins the batching policy: jobs sharing a program group
// together in first-seen order, batches split at batchWidth, and
// distinct programs never share a batch.
func TestGroupJobs(t *testing.T) {
	mk := func(kernel string) runJob {
		return kernelJob(kernel, machine.Config{
			Scheme:    core.NewSchemeTight(4, 0),
			Predictor: bpred.NewBimodal(256),
			Speculate: true,
			MemSystem: machine.MemBackward3b,
		})
	}
	// Interleave two programs; 10 fib jobs must split 8+2.
	var jobs []runJob
	for i := 0; i < 10; i++ {
		jobs = append(jobs, mk("fib"))
		if i < 3 {
			jobs = append(jobs, mk("bubble"))
		}
	}
	batches := groupJobs(jobs)
	seen := make(map[int]bool)
	for _, b := range batches {
		if len(b) == 0 || len(b) > batchWidth {
			t.Fatalf("batch size %d out of range", len(b))
		}
		p := jobs[b[0]].prog
		for _, i := range b {
			if jobs[i].prog != p {
				t.Fatalf("batch mixes programs: job %d", i)
			}
			if seen[i] {
				t.Fatalf("job %d assigned twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != len(jobs) {
		t.Fatalf("grouped %d of %d jobs", len(seen), len(jobs))
	}
	if len(batches) != 3 {
		t.Fatalf("expected 3 batches (8 fib + 2 fib + 3 bubble), got %d: %v", len(batches), batches)
	}
}

// outcomesMatch compares two job outcomes for architectural identity.
func outcomesMatch(a, b jobOutcome) error {
	if (a.err == nil) != (b.err == nil) {
		return fmt.Errorf("errors differ: %v vs %v", a.err, b.err)
	}
	if a.err != nil {
		return nil
	}
	if a.res.Regs != b.res.Regs || a.res.Halted != b.res.Halted ||
		a.res.Stats != b.res.Stats || a.res.Scheme != b.res.Scheme ||
		a.res.Cache != b.res.Cache || a.res.Diff != b.res.Diff {
		return fmt.Errorf("results differ:\n%+v\nvs\n%+v", a.res, b.res)
	}
	if d := a.res.Mem.Diff(b.res.Mem); d != "" {
		return fmt.Errorf("memory differs: %s", d)
	}
	return nil
}

// sweepJobs builds a representative mixed job list: several kernels,
// several configurations each, interleaved so grouping has to reorder.
func sweepJobs() []runJob {
	var jobs []runJob
	for _, c := range []int{2, 3, 4} {
		for _, kn := range []string{"fib", "bubble", "sieve"} {
			jobs = append(jobs, kernelJob(kn, machine.Config{
				Scheme:    core.NewSchemeTight(c, 0),
				Predictor: bpred.NewBimodal(256),
				Speculate: true,
				MemSystem: machine.MemBackward3b,
			}))
		}
	}
	return jobs
}

// TestRunJobsBatchedMatchesUnbatched proves the batch-aware grouping
// choke point is invisible: the same job list run batched and unbatched
// yields identical outcomes, slot for slot.
func TestRunJobsBatchedMatchesUnbatched(t *testing.T) {
	defer SetBatching(true)
	ctx := context.Background()
	SetBatching(true)
	batched := runJobs(ctx, sweepJobs())
	SetBatching(false)
	single := runJobs(ctx, sweepJobs())
	for i := range batched {
		if err := outcomesMatch(batched[i], single[i]); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
}

// TestConcurrentSweepsThroughPool runs several batched sweeps
// concurrently through the shared worker pool (exercised under -race
// by `make race`): batches from different sweeps interleave on pool
// workers, chassis cycle through the machine pool, and every outcome
// must still match a sequential unbatched reference.
func TestConcurrentSweepsThroughPool(t *testing.T) {
	defer SetBatching(true)
	ctx := context.Background()
	SetBatching(false)
	want := runJobs(ctx, sweepJobs())
	SetBatching(true)
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(tag int) {
			defer wg.Done()
			got := runJobs(ctx, sweepJobs())
			for i := range got {
				if err := outcomesMatch(want[i], got[i]); err != nil {
					errc <- fmt.Errorf("sweep %d job %d: %w", tag, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
