// Package store implements the daemon's persistent, two-tier,
// content-addressed result store.
//
// The paper's premise is that checkpoints make redone work cheap; the
// serving layer applies the same lesson to itself. Tier one is a small
// in-memory LRU (bounded by entry count and bytes) that answers the hot
// repeated-spec mix without touching the filesystem. Tier two is a
// disk directory keyed by the same canonical-spec SHA-256 the HTTP API
// exposes as /results/{key}: entries survive process restarts, so a
// rebooted ckptd answers previously computed specs from disk instead of
// re-burning CPU, and a killed fault campaign resumes from its last
// progress record instead of restarting from injection zero.
//
// Disk entries carry a SHA-256 payload checksum verified on every
// read-back; a truncated, bit-flipped, or half-written file is treated
// as a miss, deleted, and counted — the caller recomputes, never serves
// garbage. Writes go through a temp file and an atomic rename, so a
// crash mid-write leaves either the old entry or none, and concurrent
// writers of one key leave exactly one complete entry. The disk tier is
// LRU-bounded by total bytes and optionally by entry age.
//
// Following the store/recompute trade of recomputation-enabled
// checkpointing (Akturk & Karpuzcu), results whose recompute cost is
// below Config.MinCost stay memory-only: a result that regenerates in a
// millisecond is not worth a disk entry, an inode, or a slot of the
// size budget.
package store

import (
	"container/list"
	"sync"
	"time"
)

// Config sizes a Store. Zero fields take the documented defaults;
// Dir == "" disables the disk tier entirely (memory-only store).
type Config struct {
	// Dir is the disk tier's root directory, created if missing.
	Dir string
	// MemEntries bounds the in-memory tier's entry count (default 256).
	MemEntries int
	// MemBytes bounds the in-memory tier's total payload bytes
	// (default 64 MiB).
	MemBytes int64
	// DiskBytes bounds the disk tier's total payload bytes
	// (default 1 GiB).
	DiskBytes int64
	// MaxAge evicts disk entries older than this on open and on write
	// (0 = no age bound). Age is measured from last write.
	MaxAge time.Duration
	// MinCost is the recompute-cost threshold: Put calls whose cost is
	// below it skip the disk tier (0 = everything persists).
	MinCost time.Duration
}

func (c *Config) memEntries() int {
	if c.MemEntries <= 0 {
		return 256
	}
	return c.MemEntries
}

func (c *Config) memBytes() int64 {
	if c.MemBytes <= 0 {
		return 64 << 20
	}
	return c.MemBytes
}

func (c *Config) diskBytes() int64 {
	if c.DiskBytes <= 0 {
		return 1 << 30
	}
	return c.DiskBytes
}

// Stats is a point-in-time snapshot of the store's counters and gauges.
type Stats struct {
	MemHits  int64 `json:"mem_hits"`
	DiskHits int64 `json:"disk_hits"`
	Misses   int64 `json:"misses"`

	MemEntries   int   `json:"mem_entries"`
	MemBytes     int64 `json:"mem_bytes"`
	MemEvictions int64 `json:"mem_evictions"`

	DiskEntries   int   `json:"disk_entries"`
	DiskBytes     int64 `json:"disk_bytes"`
	DiskEvictions int64 `json:"disk_evictions"`
	DiskWrites    int64 `json:"disk_writes"`
	// DiskSkipped counts Puts that stayed memory-only because their
	// recompute cost was below MinCost.
	DiskSkipped int64 `json:"disk_skipped"`
	// Corrupt counts disk entries that failed checksum or framing
	// verification on read-back (each was deleted and reported a miss).
	Corrupt int64 `json:"corrupt"`
	// RemoteFills counts entries written via Fill — results computed by
	// a cluster peer and cached here on fetch.
	RemoteFills int64 `json:"remote_fills"`
}

// memEntry is one in-memory tier entry; elem points at its LRU slot.
type memEntry struct {
	key  string
	val  []byte
	elem *list.Element
}

// Store is the two-tier store. Safe for concurrent use.
type Store struct {
	cfg Config

	mu    sync.Mutex
	mem   map[string]*memEntry
	lru   *list.List // front = most recent; values are *memEntry
	bytes int64
	disk  *diskTier // nil when Dir == ""
	stats Stats
}

// Open builds a store and, when cfg.Dir is set, scans the existing disk
// tier (verification is deferred to read time; the scan only indexes
// sizes and ages) and applies the age/size bounds to what it finds.
func Open(cfg Config) (*Store, error) {
	s := &Store{
		cfg: cfg,
		mem: make(map[string]*memEntry),
		lru: list.New(),
	}
	if cfg.Dir != "" {
		d, err := openDisk(cfg.Dir)
		if err != nil {
			return nil, err
		}
		s.disk = d
		s.disk.enforceBounds(cfg.diskBytes(), cfg.MaxAge, &s.stats)
	}
	return s, nil
}

// Get returns the payload stored under key, consulting the memory tier
// first and the disk tier second. A disk hit is verified against its
// checksum — corrupt entries are deleted and reported as misses — and
// promoted into the memory tier.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.mem[key]; ok {
		s.lru.MoveToFront(e.elem)
		s.stats.MemHits++
		return e.val, true
	}
	if s.disk != nil {
		val, ok := s.disk.read(key, &s.stats)
		if ok {
			s.stats.DiskHits++
			s.putMemLocked(key, val)
			return val, true
		}
	}
	s.stats.Misses++
	return nil, false
}

// Put stores the payload under key in the memory tier and, when the
// disk tier is enabled and cost clears the recompute threshold, on disk
// (atomically, evicting LRU disk entries past the size bound). cost is
// how long the payload took to compute; pass Durable for entries that
// must persist regardless of the threshold (campaign progress records).
func (s *Store) Put(key string, val []byte, cost time.Duration) {
	checkKey(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putMemLocked(key, val)
	if s.disk == nil {
		return
	}
	if cost < s.cfg.MinCost {
		s.stats.DiskSkipped++
		return
	}
	s.disk.write(key, val, &s.stats)
	s.disk.enforceBounds(s.cfg.diskBytes(), s.cfg.MaxAge, &s.stats)
}

// Durable is a Put cost that always clears the recompute threshold.
const Durable = time.Duration(1<<63 - 1)

// Fill caches a value computed elsewhere — a cluster peer's result
// fetched over /results/{key}. It persists like any durable Put (the
// recompute cost over the network is unknowable but real) and counts
// separately, so remote-fill traffic is visible in /metrics.
func (s *Store) Fill(key string, val []byte) {
	s.Put(key, val, Durable)
	s.mu.Lock()
	s.stats.RemoteFills++
	s.mu.Unlock()
}

// Delete removes key from both tiers (a no-op for absent keys).
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.mem[key]; ok {
		s.removeMemLocked(e)
	}
	if s.disk != nil {
		s.disk.remove(key)
	}
}

// Stats snapshots the store's counters and gauges.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.MemEntries = len(s.mem)
	st.MemBytes = s.bytes
	if s.disk != nil {
		st.DiskEntries = len(s.disk.index)
		st.DiskBytes = s.disk.bytes
	}
	return st
}

// putMemLocked inserts (or refreshes) a memory-tier entry and evicts
// from the LRU tail until the entry and byte bounds hold again.
func (s *Store) putMemLocked(key string, val []byte) {
	if e, ok := s.mem[key]; ok {
		s.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		s.lru.MoveToFront(e.elem)
	} else {
		e = &memEntry{key: key, val: val}
		e.elem = s.lru.PushFront(e)
		s.mem[key] = e
		s.bytes += int64(len(val))
	}
	maxE, maxB := s.cfg.memEntries(), s.cfg.memBytes()
	for (len(s.mem) > maxE || s.bytes > maxB) && s.lru.Len() > 1 {
		s.removeMemLocked(s.lru.Back().Value.(*memEntry))
		s.stats.MemEvictions++
	}
}

func (s *Store) removeMemLocked(e *memEntry) {
	s.lru.Remove(e.elem)
	delete(s.mem, e.key)
	s.bytes -= int64(len(e.val))
}

// checkKey rejects keys that cannot double as file names. Callers are
// internal and pass hex digests (optionally prefixed); anything else is
// a programming error.
func checkKey(key string) {
	if key == "" || len(key) > 200 {
		panic("store: invalid key " + key)
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			panic("store: invalid key " + key)
		}
	}
}
