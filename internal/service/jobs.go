package service

import (
	"fmt"
	"sync"
	"time"
)

// Job states. A job is the client-visible handle on a submission; the
// execution it is attached to may be shared with other jobs (single
// flight) or skipped entirely (cache hit).
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job tracks one submission through the queue. All mutable fields are
// guarded by mu; terminal transitions happen exactly once.
type Job struct {
	ID   string `json:"id"`
	Key  string `json:"key"`
	Spec Spec   `json:"spec"`

	// Coalesced marks a job that attached to an execution another job
	// started (single-flight follower). CacheHit marks a job answered
	// from the completed-result cache without any execution at all.
	Coalesced bool `json:"coalesced,omitempty"`
	CacheHit  bool `json:"cache_hit,omitempty"`

	mu       sync.Mutex
	state    string
	err      string
	res      *Result
	created  time.Time
	started  time.Time
	finished time.Time
	entry    *entry
	timer    *time.Timer // job deadline, nil if none
	done     chan struct{}
}

// JobView is the JSON shape of a job's current state.
type JobView struct {
	ID        string `json:"id"`
	Key       string `json:"key"`
	State     string `json:"state"`
	Coalesced bool   `json:"coalesced,omitempty"`
	CacheHit  bool   `json:"cache_hit,omitempty"`
	Error     string `json:"error,omitempty"`
	Created   string `json:"created"`
	ElapsedMS int64  `json:"elapsed_ms"`
	ResultURL string `json:"result_url,omitempty"`
	Spec      Spec   `json:"spec"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.ID,
		Key:       j.Key,
		State:     j.state,
		Coalesced: j.Coalesced,
		CacheHit:  j.CacheHit,
		Error:     j.err,
		Created:   j.created.UTC().Format(time.RFC3339Nano),
		Spec:      j.Spec,
	}
	switch {
	case !j.finished.IsZero():
		v.ElapsedMS = j.finished.Sub(j.created).Milliseconds()
	default:
		v.ElapsedMS = time.Since(j.created).Milliseconds()
	}
	if j.state == StateDone {
		v.ResultURL = "/results/" + j.Key
	}
	return v
}

// markRunning records that the job's execution left the queue. Jobs
// already terminal (cancelled while queued) stay terminal.
func (j *Job) markRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateQueued {
		j.state = StateRunning
		j.started = time.Now()
	}
}

// finish moves the job to its terminal state. The first caller wins;
// later calls (execution completing after a client cancelled, or vice
// versa) are no-ops.
func (j *Job) finish(res *Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finishLocked(res, err)
}

func (j *Job) finishLocked(res *Result, err error) {
	if j.state == StateDone || j.state == StateFailed {
		return
	}
	j.finished = time.Now()
	if j.timer != nil {
		j.timer.Stop()
	}
	if err != nil {
		j.state = StateFailed
		j.err = err.Error()
	} else {
		j.state = StateDone
		j.res = res
	}
	close(j.done)
}

// terminal reports whether the job has finished, and with what.
func (j *Job) terminal() (res *Result, errMsg string, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed {
		return j.res, j.err, true
	}
	return nil, "", false
}

// cancel detaches the job from its execution and fails it with reason.
// If it was the last job interested in the execution, the execution's
// context is cancelled, which unwinds the simulation pool.
func (j *Job) cancel(reason string) {
	j.mu.Lock()
	e := j.entry
	j.finishLocked(nil, fmt.Errorf("%s", reason))
	j.mu.Unlock()
	if e != nil {
		e.detach(j)
	}
}

// jobSet is the server's job registry. Terminal jobs are pruned oldest
// first once the registry exceeds keep, so a long-lived daemon doesn't
// grow without bound.
type jobSet struct {
	mu    sync.Mutex
	seq   int64
	jobs  map[string]*Job
	order []string // insertion order, for pruning and stable listings
	keep  int
}

func newJobSet(keep int) *jobSet {
	if keep <= 0 {
		keep = 4096
	}
	return &jobSet{jobs: make(map[string]*Job), keep: keep}
}

// add registers a new job and assigns its ID.
func (s *jobSet) add(key string, spec Spec) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &Job{
		ID:      fmt.Sprintf("j%06d", s.seq),
		Key:     key,
		Spec:    spec,
		state:   StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.pruneLocked()
	return j
}

func (s *jobSet) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// list returns jobs in submission order.
func (s *jobSet) list() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// active counts non-terminal jobs.
func (s *jobSet) active() int {
	n := 0
	for _, j := range s.list() {
		if _, _, ok := j.terminal(); !ok {
			n++
		}
	}
	return n
}

func (s *jobSet) pruneLocked() {
	for len(s.order) > s.keep {
		id := s.order[0]
		j := s.jobs[id]
		if j != nil {
			if _, _, ok := j.terminal(); !ok {
				return // oldest job still live; don't prune past it
			}
			delete(s.jobs, id)
		}
		s.order = s.order[1:]
	}
}
