// Branchy: the §2.2/§4 B-repair study. Runs the paper's parameter
// point — one conditional branch every ~4 instructions — across
// predictor accuracies and B backup space counts, showing how repair
// frequency follows the b/(1-h) arithmetic and how quickly B backup
// spaces stop being the bottleneck.
//
//	go run ./examples/branchy
package main

import (
	"fmt"
	"log"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/refsim"
	"repro/internal/workload"
)

func main() {
	scfg := workload.DefaultSynth
	scfg.Iters = 1500
	p := workload.Synth(scfg)
	ref := refsim.MustRun(p, refsim.Options{})
	b := float64(ref.Retired) / float64(ref.Branches)
	fmt.Printf("workload: %d instructions, one branch every %.2f (the paper assumes 4)\n\n", ref.Retired, b)

	fmt.Println("B-repair frequency vs prediction accuracy (schemeB, 4 spaces):")
	fmt.Println("  hit    analytic b/(1-h)   measured instr/B-repair   cycles")
	for _, h := range []float64{0.70, 0.85, 0.95} {
		res, err := machine.Run(p, machine.Config{
			Scheme:    core.NewSchemeB(4),
			Predictor: bpred.NewSynthetic(h, 1),
			Speculate: true,
			MemSystem: machine.MemForward,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %.0f%%   %8.1f           %8.1f                  %d\n",
			h*100, b/(1-h), res.Stats.InstsPerBRepair(), res.Stats.Cycles)
	}

	fmt.Println("\nissue stalls vs B backup spaces (85% accuracy):")
	fmt.Println("  cB   scheme stalls   cycles")
	for _, c := range []int{1, 2, 4, 8} {
		res, err := machine.Run(p, machine.Config{
			Scheme:    core.NewSchemeB(c),
			Predictor: bpred.NewSynthetic(0.85, 1),
			Speculate: true,
			MemSystem: machine.MemForward,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4d %-15d %d\n", c, res.Stats.StallCycles[1], res.Stats.Cycles)
	}

	fmt.Println("\nreal predictors on the same workload (tight(4)):")
	for _, pr := range []bpred.Predictor{
		bpred.NewNotTaken(), bpred.NewBTFN(), bpred.NewBimodal(1024), bpred.NewGShare(4096, 8), bpred.NewOracle(),
	} {
		res, err := machine.Run(p, machine.Config{
			Scheme:    core.NewSchemeTight(4, 0),
			Predictor: pr,
			Speculate: true,
			MemSystem: machine.MemBackward3b,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s accuracy %5.1f%%  B-repairs %5d  cycles %6d  IPC %.2f\n",
			pr.Name(), res.PredictorAccuracy*100, res.Stats.BRepairs, res.Stats.Cycles, res.Stats.IPC())
	}
}
