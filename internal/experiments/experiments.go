// Package experiments regenerates every figure, table, and quantitative
// claim of the paper as a text table. DESIGN.md carries the experiment
// index (IDs F1–F8, T1, C1–C12); EXPERIMENTS.md records a captured run
// with commentary. cmd/experiments prints them all.
//
// The paper reports no measured numbers ("Simulation and hardware
// design are being conducted"), so the reproduced artefacts are the
// mechanism figures, Table 1, the analytical claims of §2.2/§3.1, and
// the simulation study the paper explicitly calls for (Algorithm 3(a)
// vs 3(b), buffer sizing, scheme comparisons). Shape expectations are
// noted on each table.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Note   string // the paper claim / expected shape, and what we see
	Header []string
	Rows   [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(wrap(t.Note, 74), "\n") {
			fmt.Fprintf(&b, "   %s\n", line)
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintf(&b, "   %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

func wrap(s string, w int) string {
	words := strings.Fields(s)
	var b strings.Builder
	col := 0
	for _, word := range words {
		if col > 0 && col+1+len(word) > w {
			b.WriteByte('\n')
			col = 0
		} else if col > 0 {
			b.WriteByte(' ')
			col++
		}
		b.WriteString(word)
		col += len(word)
	}
	return b.String()
}

// Experiment is a registered experiment generator.
type Experiment struct {
	ID   string
	Name string
	Run  func() []*Table // some experiments emit several tables
}

var registry []Experiment

func register(id, name string, run func() []*Table) {
	registry = append(registry, Experiment{ID: id, Name: name, Run: run})
}

// All returns the registered experiments in ID order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return idKey(out[i].ID) < idKey(out[j].ID) })
	return out
}

// idKey orders F1..F8, T1, C1..C12 naturally.
func idKey(id string) string {
	if len(id) < 2 {
		return id
	}
	kind := id[0]
	rank := map[byte]string{'F': "0", 'T': "1", 'C': "2", 'A': "3"}[kind]
	return fmt.Sprintf("%s%02s", rank, id[1:])
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment, writing the tables to w.
func RunAll(w io.Writer) {
	for _, e := range All() {
		for _, t := range e.Run() {
			fmt.Fprintln(w, t.String())
		}
	}
}
