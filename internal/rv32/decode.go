// Package rv32 is the real-program frontend: it decodes RISC-V rv32i
// machine code, loads flat binaries and minimal ELF32 executables, and
// translates them into prog.Program over the internal ISA so compiled
// programs run through the checkpoint-repair machinery unchanged.
//
// The translation is strictly one internal instruction per rv32 word
// with an identity address mapping (internal instruction index = rv32
// byte address / 4). Register-resident code pointers — return
// addresses, jump-table entries — therefore stay rv32 byte addresses,
// and the byte-addressed control transfers added to internal/isa
// (JALA/JRA/JALRA) convert at the boundary. See DESIGN.md §12 for the
// full lowering table.
package rv32

import "fmt"

// Op enumerates the rv32 instructions the decoder understands: the
// full rv32i base set plus the RV32M multiply/divide group (which
// compilers emit freely; the translator accepts MUL/DIV/REM and
// rejects the rest).
type Op uint8

// rv32 opcodes.
const (
	OpInvalid Op = iota
	OpLUI
	OpAUIPC
	OpJAL
	OpJALR
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU
	OpLB
	OpLH
	OpLW
	OpLBU
	OpLHU
	OpSB
	OpSH
	OpSW
	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI
	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND
	OpFENCE
	OpFENCEI
	OpECALL
	OpEBREAK
	OpMUL
	OpMULH
	OpMULHSU
	OpMULHU
	OpDIV
	OpDIVU
	OpREM
	OpREMU

	numOps
)

var opNames = [numOps]string{
	OpInvalid: "invalid",
	OpLUI:     "lui", OpAUIPC: "auipc", OpJAL: "jal", OpJALR: "jalr",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge", OpBLTU: "bltu", OpBGEU: "bgeu",
	OpLB: "lb", OpLH: "lh", OpLW: "lw", OpLBU: "lbu", OpLHU: "lhu",
	OpSB: "sb", OpSH: "sh", OpSW: "sw",
	OpADDI: "addi", OpSLTI: "slti", OpSLTIU: "sltiu", OpXORI: "xori", OpORI: "ori", OpANDI: "andi",
	OpSLLI: "slli", OpSRLI: "srli", OpSRAI: "srai",
	OpADD: "add", OpSUB: "sub", OpSLL: "sll", OpSLT: "slt", OpSLTU: "sltu",
	OpXOR: "xor", OpSRL: "srl", OpSRA: "sra", OpOR: "or", OpAND: "and",
	OpFENCE: "fence", OpFENCEI: "fence.i", OpECALL: "ecall", OpEBREAK: "ebreak",
	OpMUL: "mul", OpMULH: "mulh", OpMULHSU: "mulhsu", OpMULHU: "mulhu",
	OpDIV: "div", OpDIVU: "divu", OpREM: "rem", OpREMU: "remu",
}

// String returns the standard RISC-V mnemonic.
func (op Op) String() string {
	if op >= numOps {
		return fmt.Sprintf("rv32op(%d)", uint8(op))
	}
	return opNames[op]
}

// Inst is one decoded rv32 instruction. Imm holds the fully decoded,
// sign-extended immediate of the instruction's format: I/S-immediates
// are byte offsets, B/J-immediates are pc-relative byte displacements,
// U-immediates are the already-shifted upper-20-bit value, and shift
// immediates are the 5-bit shamt.
type Inst struct {
	Op           Op
	Rd, Rs1, Rs2 uint8
	Imm          int32
}

// DecodeError reports an undecodable instruction word.
type DecodeError struct {
	Word   uint32
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("rv32: cannot decode %#08x: %s", e.Word, e.Reason)
}

// Major opcode field values (w & 0x7f).
const (
	opcLUI    = 0x37
	opcAUIPC  = 0x17
	opcJAL    = 0x6f
	opcJALR   = 0x67
	opcBranch = 0x63
	opcLoad   = 0x03
	opcStore  = 0x23
	opcOpImm  = 0x13
	opcOp     = 0x33
	opcMisc   = 0x0f
	opcSystem = 0x73
)

func immI(w uint32) int32 { return int32(w) >> 20 }

func immS(w uint32) int32 {
	return (int32(w)>>25)<<5 | int32(w>>7&0x1f)
}

func immB(w uint32) int32 {
	return (int32(w)>>31)<<12 | int32(w>>7&1)<<11 | int32(w>>25&0x3f)<<5 | int32(w>>8&0xf)<<1
}

func immU(w uint32) int32 { return int32(w & 0xfffff000) }

func immJ(w uint32) int32 {
	return (int32(w)>>31)<<20 | int32(w>>12&0xff)<<12 | int32(w>>20&1)<<11 | int32(w>>21&0x3ff)<<1
}

// Decode decodes one 32-bit rv32 instruction word.
func Decode(w uint32) (Inst, error) {
	if w&0x3 != 0x3 {
		// 16-bit compressed encoding space; the frontend requires
		// binaries built without the C extension.
		return Inst{}, &DecodeError{w, "compressed (RVC) encoding not supported"}
	}
	in := Inst{
		Rd:  uint8(w >> 7 & 0x1f),
		Rs1: uint8(w >> 15 & 0x1f),
		Rs2: uint8(w >> 20 & 0x1f),
	}
	f3 := w >> 12 & 0x7
	f7 := w >> 25

	switch w & 0x7f {
	case opcLUI:
		in.Op, in.Imm = OpLUI, immU(w)
	case opcAUIPC:
		in.Op, in.Imm = OpAUIPC, immU(w)
	case opcJAL:
		in.Op, in.Imm = OpJAL, immJ(w)
	case opcJALR:
		if f3 != 0 {
			return Inst{}, &DecodeError{w, "JALR with nonzero funct3"}
		}
		in.Op, in.Imm = OpJALR, immI(w)
	case opcBranch:
		ops := [8]Op{OpBEQ, OpBNE, 0, 0, OpBLT, OpBGE, OpBLTU, OpBGEU}
		if ops[f3] == 0 {
			return Inst{}, &DecodeError{w, fmt.Sprintf("branch funct3 %d", f3)}
		}
		in.Op, in.Imm = ops[f3], immB(w)
	case opcLoad:
		ops := [8]Op{OpLB, OpLH, OpLW, 0, OpLBU, OpLHU, 0, 0}
		if ops[f3] == 0 {
			return Inst{}, &DecodeError{w, fmt.Sprintf("load funct3 %d", f3)}
		}
		in.Op, in.Imm = ops[f3], immI(w)
	case opcStore:
		ops := [8]Op{OpSB, OpSH, OpSW, 0, 0, 0, 0, 0}
		if ops[f3] == 0 {
			return Inst{}, &DecodeError{w, fmt.Sprintf("store funct3 %d", f3)}
		}
		in.Op, in.Imm = ops[f3], immS(w)
	case opcOpImm:
		switch f3 {
		case 0:
			in.Op, in.Imm = OpADDI, immI(w)
		case 2:
			in.Op, in.Imm = OpSLTI, immI(w)
		case 3:
			in.Op, in.Imm = OpSLTIU, immI(w)
		case 4:
			in.Op, in.Imm = OpXORI, immI(w)
		case 6:
			in.Op, in.Imm = OpORI, immI(w)
		case 7:
			in.Op, in.Imm = OpANDI, immI(w)
		case 1:
			if f7 != 0 {
				return Inst{}, &DecodeError{w, "SLLI with nonzero funct7"}
			}
			in.Op, in.Imm = OpSLLI, int32(in.Rs2)
		case 5:
			switch f7 {
			case 0:
				in.Op, in.Imm = OpSRLI, int32(in.Rs2)
			case 0x20:
				in.Op, in.Imm = OpSRAI, int32(in.Rs2)
			default:
				return Inst{}, &DecodeError{w, fmt.Sprintf("shift funct7 %#x", f7)}
			}
		}
	case opcOp:
		switch f7 {
		case 0:
			ops := [8]Op{OpADD, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpOR, OpAND}
			in.Op = ops[f3]
		case 0x20:
			switch f3 {
			case 0:
				in.Op = OpSUB
			case 5:
				in.Op = OpSRA
			default:
				return Inst{}, &DecodeError{w, fmt.Sprintf("funct7=0x20 funct3 %d", f3)}
			}
		case 1: // RV32M
			ops := [8]Op{OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU}
			in.Op = ops[f3]
		default:
			return Inst{}, &DecodeError{w, fmt.Sprintf("OP funct7 %#x", f7)}
		}
	case opcMisc:
		switch f3 {
		case 0:
			in.Op = OpFENCE
		case 1:
			in.Op = OpFENCEI
		default:
			return Inst{}, &DecodeError{w, fmt.Sprintf("MISC-MEM funct3 %d", f3)}
		}
		// The ordering-hint fields (pred/succ/rs1/rd) do not change the
		// instruction's meaning here; normalize them away.
		in.Rd, in.Rs1, in.Rs2, in.Imm = 0, 0, 0, 0
	case opcSystem:
		if f3 != 0 {
			return Inst{}, &DecodeError{w, "CSR instructions not supported"}
		}
		switch w >> 20 {
		case 0:
			in.Op = OpECALL
		case 1:
			in.Op = OpEBREAK
		default:
			return Inst{}, &DecodeError{w, fmt.Sprintf("SYSTEM imm %#x", w>>20)}
		}
		if in.Rd != 0 || in.Rs1 != 0 {
			return Inst{}, &DecodeError{w, "ECALL/EBREAK with nonzero register fields"}
		}
	default:
		return Inst{}, &DecodeError{w, fmt.Sprintf("major opcode %#02x", w&0x7f)}
	}

	// Zero the register fields the instruction's format does not use —
	// their bits belong to the immediate (or are absent) and would
	// otherwise leak encoding noise into Inst equality and re-encoding.
	switch in.Op {
	case OpLUI, OpAUIPC, OpJAL:
		in.Rs1, in.Rs2 = 0, 0
	case OpJALR, OpLB, OpLH, OpLW, OpLBU, OpLHU,
		OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI,
		OpSLLI, OpSRLI, OpSRAI:
		in.Rs2 = 0
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU, OpSB, OpSH, OpSW:
		in.Rd = 0
	case OpECALL, OpEBREAK:
		// The distinguishing imm bit (bits 20+) is part of the opcode
		// identity, not an operand.
		in.Rs2 = 0
	}
	return in, nil
}

// String renders the instruction in standard RISC-V assembly syntax.
// Branch and jump displacements print as pc-relative byte offsets.
func (in Inst) String() string {
	x := func(r uint8) string { return fmt.Sprintf("x%d", r) }
	switch in.Op {
	case OpLUI, OpAUIPC:
		return fmt.Sprintf("%s %s, %#x", in.Op, x(in.Rd), uint32(in.Imm)>>12)
	case OpJAL:
		return fmt.Sprintf("%s %s, %+d", in.Op, x(in.Rd), in.Imm)
	case OpJALR:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, x(in.Rd), in.Imm, x(in.Rs1))
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return fmt.Sprintf("%s %s, %s, %+d", in.Op, x(in.Rs1), x(in.Rs2), in.Imm)
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, x(in.Rd), in.Imm, x(in.Rs1))
	case OpSB, OpSH, OpSW:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, x(in.Rs2), in.Imm, x(in.Rs1))
	case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpSLLI, OpSRLI, OpSRAI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, x(in.Rd), x(in.Rs1), in.Imm)
	case OpFENCE, OpFENCEI, OpECALL, OpEBREAK:
		return in.Op.String()
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, x(in.Rd), x(in.Rs1), x(in.Rs2))
	}
}
