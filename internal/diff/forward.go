package diff

import (
	"repro/internal/cache"
	"repro/internal/isa"
)

// Forward is the forward-difference memory system of §4.1.2: a redo
// log. Speculative stores are buffered instead of modifying the cache;
// they are applied ("retired") only when their checkpoint verifies, and
// a repair simply discards the buffered suffix belonging to discarded
// checkpoints — nothing in cache or memory needs undoing, which is what
// makes the technique attractive for frequent B-repairs.
//
// The price is load snooping: a load must overlay any buffered stores
// covering its longword (store-to-load forwarding) to observe the
// current logical space.
type Forward struct {
	cache    *cache.Cache
	capacity int // 0 = unbounded
	entries  []Entry
	oldest   uint64
	stats    Stats
}

// NewForward builds a forward-difference system over a cache.
// capacity 0 means unbounded.
func NewForward(c *cache.Cache, capacity int) *Forward {
	return &Forward{cache: c, capacity: capacity,
		entries: make([]Entry, 0, entryArenaCap(capacity))}
}

// Reset restores the buffer to the state NewForward(c, capacity) would
// build, keeping the entry arena for reuse.
func (f *Forward) Reset(c *cache.Cache, capacity int) {
	f.cache = c
	f.capacity = capacity
	if want := entryArenaCap(capacity); cap(f.entries) < want {
		f.entries = make([]Entry, 0, want)
	} else {
		f.entries = f.entries[:0]
	}
	f.oldest = 0
	f.stats = Stats{}
}

// Cache returns the underlying cache.
func (f *Forward) Cache() *cache.Cache { return f.cache }

// Occupancy returns the current number of buffered entries.
func (f *Forward) Occupancy() int { return len(f.entries) }

// Stats implements MemSystem.
func (f *Forward) Stats() Stats { return f.stats }

// UndoneCounter implements MemSystem.
func (f *Forward) UndoneCounter() *int { return &f.stats.Undone }

// Load implements MemSystem: the cached longword overlaid, oldest
// first, with every buffered store covering it. forwarded counts as a
// hit for timing purposes.
func (f *Forward) Load(addr uint32) (uint32, bool, isa.ExcCode) {
	base := addr &^ 3
	v, hit, exc := f.cache.ReadLongword(base)
	if exc != isa.ExcCodeNone {
		return 0, false, exc
	}
	for _, e := range f.entries {
		if e.Addr == base {
			v = overlay(v, e.Data, e.Mask)
			hit = true
		}
	}
	return v, hit, isa.ExcCodeNone
}

// CheckAccess implements MemSystem.
func (f *Forward) CheckAccess(addr, size uint32) isa.ExcCode {
	return f.cache.CheckAccess(addr, size)
}

// Peek implements MemSystem: like Load, buffered stores overlay the
// cached (or backing) longword in buffer order, but nothing is
// perturbed — no fills, no counters.
func (f *Forward) Peek(addr uint32) (uint32, bool) {
	base := addr &^ 3
	v, ok := peekCache(f.cache, base)
	if !ok {
		return 0, false
	}
	for _, e := range f.entries {
		if e.Addr == base {
			v = overlay(v, e.Data, e.Mask)
		}
	}
	return v, true
}

// Store implements MemSystem: buffer the write. Stores whose checkpoint
// already verified (possible because verification and execution are
// asynchronous) apply immediately.
func (f *Forward) Store(ckpt uint64, addr uint32, data uint32, mask uint8) (bool, bool, isa.ExcCode) {
	addr &^= 3
	if ckpt < f.oldest {
		wr, exc := f.cache.WriteLongword(addr, data, mask)
		if exc != isa.ExcCodeNone {
			return true, false, exc
		}
		f.stats.Applied++
		return true, wr.Hit, isa.ExcCodeNone
	}
	if f.capacity > 0 && len(f.entries) >= f.capacity {
		f.stats.StallStores++
		return false, false, isa.ExcCodeNone
	}
	f.entries = append(f.entries, Entry{Addr: addr, Mask: mask, Data: data, Ckpt: ckpt})
	f.stats.Pushes++
	if len(f.entries) > f.stats.MaxOccupancy {
		f.stats.MaxOccupancy = len(f.entries)
	}
	return true, true, isa.ExcCodeNone
}

// Release implements MemSystem: apply, in buffer order, every entry
// whose checkpoint has verified. Buffer order equals dynamic-stream
// order per address (the load/store queue enforces program-order writes
// to the same longword), which is all the forward difference needs.
func (f *Forward) Release(oldestLive uint64) {
	if oldestLive > f.oldest {
		f.oldest = oldestLive
	}
	kept := f.entries[:0]
	for _, e := range f.entries {
		if e.Ckpt < f.oldest {
			f.cache.WriteLongword(e.Addr, e.Data, e.Mask)
			f.stats.Applied++
		} else {
			kept = append(kept, e)
		}
	}
	f.entries = kept
}

// Repair implements MemSystem: discard every buffered store carrying a
// checkpoint identification >= to. The current space never saw them, so
// there is nothing else to do.
func (f *Forward) Repair(to uint64) {
	f.stats.Repairs++
	kept := f.entries[:0]
	for _, e := range f.entries {
		if e.Ckpt < to {
			kept = append(kept, e)
		} else {
			f.stats.Discarded++
		}
	}
	f.entries = kept
}

// Finish implements MemSystem: at program end everything outstanding is
// verified; apply it and flush.
func (f *Forward) Finish() {
	for _, e := range f.entries {
		f.cache.WriteLongword(e.Addr, e.Data, e.Mask)
		f.stats.Applied++
	}
	f.entries = f.entries[:0]
	f.cache.FlushAll()
}

func overlay(base, data uint32, mask uint8) uint32 {
	for i := 0; i < 4; i++ {
		if mask&(1<<i) != 0 {
			shift := uint(8 * i)
			base = base&^(0xff<<shift) | data&(0xff<<shift)
		}
	}
	return base
}

var _ MemSystem = (*Forward)(nil)

// Plain is a degenerate MemSystem with no checkpointing: stores write
// the cache immediately and repairs are impossible. The in-order
// baseline machine, which never needs memory repair, uses it.
type Plain struct {
	cache *cache.Cache
	stats Stats
}

// NewPlain wraps a cache with no difference machinery.
func NewPlain(c *cache.Cache) *Plain { return &Plain{cache: c} }

// Reset restores the system to the state NewPlain(c) would build.
func (p *Plain) Reset(c *cache.Cache) {
	p.cache = c
	p.stats = Stats{}
}

// Cache returns the underlying cache.
func (p *Plain) Cache() *cache.Cache { return p.cache }

// Load implements MemSystem.
func (p *Plain) Load(addr uint32) (uint32, bool, isa.ExcCode) {
	return p.cache.ReadLongword(addr)
}

// Store implements MemSystem.
func (p *Plain) Store(_ uint64, addr uint32, data uint32, mask uint8) (bool, bool, isa.ExcCode) {
	wr, exc := p.cache.WriteLongword(addr, data, mask)
	return true, wr.Hit, exc
}

// CheckAccess implements MemSystem.
func (p *Plain) CheckAccess(addr, size uint32) isa.ExcCode {
	return p.cache.CheckAccess(addr, size)
}

// Peek implements MemSystem.
func (p *Plain) Peek(addr uint32) (uint32, bool) {
	return peekCache(p.cache, addr)
}

// Release implements MemSystem (no-op).
func (p *Plain) Release(uint64) {}

// Repair implements MemSystem; a Plain system cannot repair.
func (p *Plain) Repair(uint64) {
	panic("diff: Plain memory system cannot repair")
}

// Finish implements MemSystem.
func (p *Plain) Finish() { p.cache.FlushAll() }

// Stats implements MemSystem.
func (p *Plain) Stats() Stats { return p.stats }

// UndoneCounter implements MemSystem.
func (p *Plain) UndoneCounter() *int { return &p.stats.Undone }

var _ MemSystem = (*Plain)(nil)
