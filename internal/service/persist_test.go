package service

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// getResult fetches /results/{ref} and returns the raw bytes — the
// byte-identity assertions compare exact wire payloads, not decoded
// structs.
func getResult(t *testing.T, url, ref string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url + "/results/" + ref)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestWarmRestartServesFromDisk is the tentpole's serving-side
// acceptance test: a daemon with -store-dir computes a result, a fresh
// daemon over the same directory answers the same key from disk —
// byte-identical, with zero executions started.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 2, QueueCap: 8, StoreDir: dir}

	s1 := MustNew(cfg)
	ts1 := httptest.NewServer(s1.Handler())
	spec := Spec{Kind: "sim", Workload: "fib"}
	code, wr := postJob(t, ts1.URL, spec, true)
	if code != http.StatusOK {
		t.Fatalf("cold submit: %d", code)
	}
	key := wr.Job.Key
	_, cold := getResult(t, ts1.URL, key)
	m1 := getMetrics(t, ts1.URL)
	if got := counter(m1, "store", "disk_writes"); got < 1 {
		t.Fatalf("disk_writes = %d after a computed result, want >= 1", got)
	}
	ts1.Close()
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// A fresh process over the same store directory.
	s2 := MustNew(cfg)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Drain(context.Background())

	gcode, warm := getResult(t, ts2.URL, key)
	if gcode != http.StatusOK {
		t.Fatalf("warm GET /results/%s: %d", key, gcode)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("disk-served result differs from the computed one:\n%s\nvs\n%s", warm, cold)
	}

	// Re-submitting the same job is a cache hit, not a recomputation.
	code2, wr2 := postJob(t, ts2.URL, spec, true)
	if code2 != http.StatusOK || !wr2.Job.CacheHit {
		t.Fatalf("warm submit: code=%d cache_hit=%v", code2, wr2.Job.CacheHit)
	}
	m2 := getMetrics(t, ts2.URL)
	if got := counter(m2, "executions", "started"); got != 0 {
		t.Fatalf("warm daemon started %d executions, want 0", got)
	}
	if got := counter(m2, "store", "disk_hits"); got < 1 {
		t.Fatalf("disk_hits = %d on the warm daemon, want >= 1", got)
	}
}

// TestMetricsStoreSection: /metrics carries the store counters the
// operators watch — disk traffic, byte gauges, corruption, and
// campaign resumes.
func TestMetricsStoreSection(t *testing.T) {
	s := MustNew(Config{Workers: 1, StoreDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	if code, _ := postJob(t, ts.URL, Spec{Kind: "sim", Workload: "fib"}, true); code != http.StatusOK {
		t.Fatalf("sim job: status %d", code)
	}

	m := getMetrics(t, ts.URL)
	st, ok := m["store"].(map[string]any)
	if !ok {
		t.Fatalf("no store section in metrics: %v", m)
	}
	for _, field := range []string{
		"mem_hits", "disk_hits", "misses", "mem_entries", "mem_bytes",
		"mem_evictions", "disk_entries", "disk_bytes", "disk_evictions",
		"disk_writes", "disk_skipped", "corrupt", "campaign_resumes",
	} {
		if _, ok := st[field]; !ok {
			t.Fatalf("store section missing %q: %v", field, st)
		}
	}
	if got := counter(m, "store", "misses"); got < 1 {
		t.Fatalf("store misses = %d after a fresh execution, want >= 1", got)
	}
	if got := counter(m, "store", "disk_writes"); got < 1 {
		t.Fatalf("disk_writes = %d, want >= 1", got)
	}
	if got := counter(m, "store", "disk_bytes"); got < 1 {
		t.Fatalf("disk_bytes = %d, want >= 1", got)
	}
	if got := counter(m, "store", "corrupt"); got != 0 {
		t.Fatalf("corrupt = %d on a healthy store", got)
	}
	// The in-memory tier now backs the cache section's entry gauge.
	if got := counter(m, "cache", "entries"); got < 1 {
		t.Fatalf("cache entries = %d after one result, want >= 1", got)
	}
}
