package refsim

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/prog"
)

func mustProg(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTrapCompletesThenRaises(t *testing.T) {
	p := mustProg(t, `
    lui  r1, 0x7fff
    ori  r1, r1, 0xffff
    addi r2, r0, 1
    addv r3, r1, r2
    halt
`)
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[3] != 0x80000000 {
		t.Errorf("trap result not written: %#x", res.Regs[3])
	}
	if len(res.Exceptions) != 1 || res.Exceptions[0].Code != isa.ExcCodeOverflow {
		t.Errorf("exceptions: %v", res.Exceptions)
	}
}

func TestFaultSkipsWithoutEffect(t *testing.T) {
	p := mustProg(t, `
    addi r1, r0, 7
    addi r2, r0, 0
    addi r3, r0, 99
    div  r3, r1, r2
    halt
`)
	res, _ := Run(p, Options{})
	if res.Regs[3] != 99 {
		t.Errorf("faulting div wrote rd: %d", res.Regs[3])
	}
}

func TestDemandPaging(t *testing.T) {
	p := mustProg(t, `
    addi r1, r0, 55
    sw   r1, 0x8000(r0)
    lw   r2, 0x8000(r0)
    halt
`)
	res, _ := Run(p, Options{})
	if res.Regs[2] != 55 {
		t.Errorf("demand-paged readback: %d", res.Regs[2])
	}
	if len(res.Exceptions) != 1 || res.Exceptions[0].Code != isa.ExcCodePageFault {
		t.Errorf("exceptions: %v", res.Exceptions)
	}
	if res.Exceptions[0].Addr != 0x8000 {
		t.Errorf("fault addr %#x", res.Exceptions[0].Addr)
	}
}

func TestMisalignedSkips(t *testing.T) {
	p := mustProg(t, `
    addi r1, r0, 2
    lw   r2, 0x1000(r1)
    addi r3, r0, 5
    halt
.data 0x1000
x: .word 42
`)
	res, _ := Run(p, Options{})
	if len(res.Exceptions) != 1 || res.Exceptions[0].Code != isa.ExcCodeMisaligned {
		t.Fatalf("exceptions: %v", res.Exceptions)
	}
	if res.Regs[3] != 5 {
		t.Error("execution did not continue after skip")
	}
}

func TestRunOffCodeEnd(t *testing.T) {
	p := mustProg(t, `
    addi r1, r0, 1
    addi r2, r0, 2
`)
	res, _ := Run(p, Options{})
	if !res.Halted {
		t.Fatal("should halt via BadInst")
	}
	if len(res.Exceptions) != 1 || res.Exceptions[0].Code != isa.ExcCodeBadInst || res.Exceptions[0].PC != 2 {
		t.Errorf("exceptions: %v", res.Exceptions)
	}
}

func TestTimeout(t *testing.T) {
	p := mustProg(t, `
loop: j loop
`)
	res, _ := Run(p, Options{MaxSteps: 100})
	if res.Halted || !res.TimedOut {
		t.Error("infinite loop must time out")
	}
}

func TestBranchCallback(t *testing.T) {
	p := mustProg(t, `
    addi r1, r0, 3
l:  addi r1, r1, -1
    bne  r1, r0, l
    halt
`)
	var outcomes []bool
	res, _ := Run(p, Options{OnBranch: func(pc int, taken bool, target int) {
		outcomes = append(outcomes, taken)
		if pc != 2 || target != 1 {
			t.Errorf("branch pc=%d target=%d", pc, target)
		}
	}})
	if res.Branches != 3 || res.Taken != 2 {
		t.Errorf("branches=%d taken=%d", res.Branches, res.Taken)
	}
	want := []bool{true, true, false}
	for i, w := range want {
		if outcomes[i] != w {
			t.Errorf("outcome %d = %v", i, outcomes[i])
		}
	}
}

func TestShadowMatchesRun(t *testing.T) {
	p := mustProg(t, `
    addi r1, r0, 10
    addi r4, r0, 0
l:  addi r4, r4, 3
    addi r1, r1, -1
    sw   r4, 0x8000(r0)
    bne  r1, r0, l
    trap 1
    halt
`)
	full, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sh := NewShadow(p)
	steps := 0
	for !sh.Halted() && steps < 10000 {
		sh.Step()
		steps++
	}
	if !sh.Halted() {
		t.Fatal("shadow did not halt")
	}
	res := sh.Result()
	if !full.RegsEqual(res) {
		t.Error("shadow registers differ from Run")
	}
	if !full.ExceptionsEqual(res) {
		t.Errorf("shadow exceptions %v != %v", res.Exceptions, full.Exceptions)
	}
	if !full.Mem.Equal(res.Mem) {
		t.Errorf("shadow memory differs: %s", full.Mem.Diff(res.Mem))
	}
	if full.Retired != res.Retired {
		t.Errorf("retired %d != %d", res.Retired, full.Retired)
	}
}

func TestShadowStepResults(t *testing.T) {
	p := mustProg(t, `
    addi r1, r0, 1
    beq  r1, r0, skip
    addi r2, r0, 7
skip:
    halt
`)
	sh := NewShadow(p)
	r := sh.Step()
	if r.PC != 0 || r.Branch {
		t.Errorf("step 0: %+v", r)
	}
	r = sh.Step()
	if !r.Branch || r.Taken {
		t.Errorf("branch step: %+v", r)
	}
	sh.Step()
	r = sh.Step()
	if !r.Halted || !sh.Halted() {
		t.Errorf("halt step: %+v", r)
	}
	// Stepping past the end is inert.
	r = sh.Step()
	if !r.Halted {
		t.Error("post-halt step")
	}
}

func TestValidationErrors(t *testing.T) {
	bad := &prog.Program{Name: "bad", Code: []isa.Inst{{Op: isa.OpBEQ, Imm: 100}}}
	if _, err := Run(bad, Options{}); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestResultComparisons(t *testing.T) {
	a := &Result{}
	b := &Result{}
	a.Regs[3] = 7
	if a.RegsEqual(b) {
		t.Error("unequal regs reported equal")
	}
	b.Regs[3] = 7
	if !a.RegsEqual(b) {
		t.Error("equal regs reported unequal")
	}
	a.Exceptions = []isa.Exception{{Code: isa.ExcCodeOverflow, PC: 1}}
	if a.ExceptionsEqual(b) {
		t.Error("exception count mismatch missed")
	}
	b.Exceptions = []isa.Exception{{Code: isa.ExcCodeOverflow, PC: 2}}
	if a.ExceptionsEqual(b) {
		t.Error("exception content mismatch missed")
	}
}

func TestMustRunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRun must panic on invalid programs")
		}
	}()
	MustRun(&prog.Program{Name: "bad"}, Options{})
}

func TestShadowAccessors(t *testing.T) {
	p := mustProg(t, `
    addi r1, r0, 5
    sw   r1, 0x1000(r0)
    trap 2
    halt
.data 0x1000
x: .word 0
`)
	sh := NewShadow(p)
	if sh.PC() != 0 || sh.Halted() || sh.Retired() != 0 {
		t.Fatal("fresh shadow state")
	}
	sh.Step()
	if sh.Regs()[1] != 5 || sh.Retired() != 1 {
		t.Error("step effects")
	}
	sh.Step()
	if v, _ := sh.Mem().Read32(0x1000); v != 5 {
		t.Error("memory access")
	}
	sh.Step() // trap
	if len(sh.Exceptions()) != 1 {
		t.Error("exception log")
	}
	sh.Step() // halt
	res := sh.Result()
	if !res.Halted || res.Retired != 4 {
		t.Errorf("result: halted=%v retired=%d", res.Halted, res.Retired)
	}
}

func TestShadowBadInstHalts(t *testing.T) {
	p := mustProg(t, `
    addi r1, r0, 1
    addi r2, r0, 2
`)
	sh := NewShadow(p)
	sh.Step()
	sh.Step()
	r := sh.Step() // falls off the code
	if !r.Halted || r.Exc.Code != isa.ExcCodeBadInst {
		t.Errorf("off-end step: %+v", r)
	}
}
