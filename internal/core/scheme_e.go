package core

import (
	"fmt"

	"repro/internal/diff"
	"repro/internal/isa"
	"repro/internal/regfile"
)

// SchemeE is the checkpoint E-repair mechanism of §3 (Algorithm 1):
// checkpoints are established every Distance instructions, at most C of
// them active at once, backed by C register backup spaces and the
// memory difference buffer. Per Definition 3, at most W memory writes
// are allowed in each checkpoint's E-repair range (0 disables the
// limit); a store that would exceed it forces an early checkpoint.
//
// SchemeE has no B-repair capability: it is meant either for machines
// that do not speculate past conditional branches, or as a component of
// the combined schemes of §5.
type SchemeE struct {
	C        int
	Distance int
	W        int

	win     window
	regs    *regfile.File
	mem     diff.MemSystem
	eng     Engine
	blocked bool
	pending struct {
		bornSeq uint64
		pc      int
	}
	lastSeq uint64
	stats   Stats
}

// NewSchemeE returns an E-repair scheme with c backup spaces,
// checkpoints every distance instructions, and at most w memory writes
// per checkpoint range (0 = unlimited).
func NewSchemeE(c, distance, w int) *SchemeE {
	if c < 1 {
		panic("core: SchemeE needs at least one backup space")
	}
	if distance < 1 {
		panic("core: SchemeE distance must be positive")
	}
	return &SchemeE{C: c, Distance: distance, W: w, win: newWindow(0, c)}
}

// Name implements Scheme.
func (s *SchemeE) Name() string {
	return fmt.Sprintf("schemeE(c=%d,dist=%d,W=%d)", s.C, s.Distance, s.W)
}

// Spaces implements Scheme.
func (s *SchemeE) Spaces() int { return s.C + 1 }

// RegStackCaps implements Scheme.
func (s *SchemeE) RegStackCaps() []int { return []int{s.C} }

// Attach implements Scheme.
func (s *SchemeE) Attach(regs *regfile.File, mem diff.MemSystem, eng Engine) {
	s.regs, s.mem, s.eng = regs, mem, eng
}

// Restart implements Scheme: the initial check action.
func (s *SchemeE) Restart(pc int, nextSeq uint64) {
	s.win.clear()
	s.regs.Clear()
	s.blocked = false
	s.lastSeq = nextSeq - 1
	if !s.establish(nextSeq-1, pc) {
		panic("core: SchemeE initial checkpoint blocked")
	}
}

// CanIssue implements Scheme. A store that would exceed the
// per-segment write limit W forces a checkpoint first; if the check
// cannot complete the issue stalls.
func (s *SchemeE) CanIssue(in isa.Inst, pc int) (bool, string) {
	if s.blocked {
		if !s.tryPending() {
			return false, "checkE blocked: oldest backup space not free"
		}
	}
	if s.W > 0 && in.IsMemWrite() && s.win.newest().Stores >= s.W {
		if !s.check(s.lastSeq, pc) {
			return false, "checkE blocked: write limit W reached, no backup space"
		}
	}
	return true, ""
}

// OnIssue implements Scheme.
func (s *SchemeE) OnIssue(op OpInfo, nextPC int) {
	n := s.win.newest()
	n.Issued++
	n.Active++
	if op.IsStore {
		n.Stores++
	}
	s.lastSeq = op.Seq
	// nextPC < 0 means the next instruction's location is unknown (an
	// unresolved jump or a non-speculated branch); the check is
	// deferred to the next issue, whose boundary is known.
	if n.Issued >= s.Distance && nextPC >= 0 {
		s.check(op.Seq, nextPC)
	}
}

// check attempts the checkE action: establish a checkpoint whose left
// neighbour is the instruction with sequence bornSeq. On failure
// (insufficient backup spaces) the scheme blocks issue until Tick can
// complete it.
func (s *SchemeE) check(bornSeq uint64, pc int) bool {
	if s.establish(bornSeq, pc) {
		return true
	}
	s.blocked = true
	s.pending.bornSeq = bornSeq
	s.pending.pc = pc
	return false
}

func (s *SchemeE) tryPending() bool {
	if !s.blocked {
		return true
	}
	if s.establish(s.pending.bornSeq, s.pending.pc) {
		s.blocked = false
		return true
	}
	return false
}

// establish performs the push actions of checkE, retiring the oldest
// checkpoint if the window is full and it has drained (countE,e == 0
// and no pending exception).
func (s *SchemeE) establish(bornSeq uint64, pc int) bool {
	if s.win.full() {
		old := s.win.oldest()
		if old.Active > 0 || old.Except() {
			return false
		}
		s.win.recycle(s.win.retireOldest())
		s.regs.DropOldest(s.win.stack)
		s.stats.Retired++
		if next := s.win.oldest(); next != nil {
			s.mem.Release(next.BornSeq + 1)
		} else {
			// c == 1: the incoming checkpoint becomes the only repair
			// target.
			s.mem.Release(bornSeq + 1)
		}
	}
	ck := s.win.take()
	ck.BornSeq, ck.PC = bornSeq, pc
	s.win.push(ck)
	s.regs.Push(s.win.stack)
	s.stats.Checkpoints++
	return true
}

// Depths implements Scheme.
func (s *SchemeE) Depths(seq uint64, out []int) {
	out[0] = s.win.depthFor(seq)
}

// OnDeliver implements Scheme: the deliverE action.
func (s *SchemeE) OnDeliver(seq uint64, exc bool) {
	own := s.win.owner(seq)
	if own == nil {
		return
	}
	own.Active--
	if exc {
		own.ExceptSeqs = append(own.ExceptSeqs, seq)
	}
}

// OnBranchResolve implements Scheme. SchemeE cannot repair prediction
// misses.
func (s *SchemeE) OnBranchResolve(_ uint64, mispredicted bool, _ int) bool {
	return !mispredicted
}

// Tick implements Scheme: fire the E-repair trigger and retry blocked
// checks.
func (s *SchemeE) Tick() (bool, error) {
	if old := s.win.oldest(); old != nil && old.Except() {
		s.repair(old)
		return true, nil
	}
	s.tryPending()
	return false, nil
}

// repair performs the repairE action: recall the oldest backup space,
// undo the memory difference, squash every active instruction, and
// enter single-step (precise) mode at the checkpoint.
func (s *SchemeE) repair(target *Checkpoint) {
	squashed := s.eng.SquashAfter(target.BornSeq)
	s.stats.SquashedOps += len(squashed)
	s.regs.RecallOldest(s.win.stack)
	s.mem.Repair(target.BornSeq + 1)
	s.win.clear()
	s.blocked = false
	s.stats.ERepairs++
	s.eng.EnterPreciseMode(target.PC)
}

// Stats implements Scheme.
func (s *SchemeE) Stats() Stats { return s.stats }

var _ Scheme = (*SchemeE)(nil)

// Drain implements Scheme: with issue stopped, fire any recorded
// exception's repair directly at the oldest checkpoint.
func (s *SchemeE) Drain() (bool, error) {
	for _, ck := range s.win.cks {
		if ck.Except() {
			s.repair(s.win.oldest())
			return true, nil
		}
	}
	return false, nil
}

// Views implements Inspectable.
func (s *SchemeE) Views() [][]View { return [][]View{viewsOf(&s.win, true, false)} }

// RewindTargets implements Rewinder.
func (s *SchemeE) RewindTargets(buf []RewindTarget) []RewindTarget {
	return appendTargets(buf, &s.win, true, false)
}

// RewindTo implements Rewinder.
func (s *SchemeE) RewindTo(bornSeq uint64) (int, bool) {
	pc, ok := rewindRecall(s.regs, &s.win, bornSeq)
	if !ok {
		return 0, false
	}
	dropAllBackups(s.regs)
	return pc, true
}
