// Benchmarks regenerating every table and figure of the reproduction
// (one BenchmarkExperiment sub-benchmark per artefact ID from
// DESIGN.md), plus micro-benchmarks of the mechanism hot paths and
// whole-machine simulation speed.
//
// Run: go test -bench=. -benchmem
package repro_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/refsim"
	"repro/internal/regfile"
	"repro/internal/workload"
)

// BenchmarkExperiment regenerates each paper artefact (figures F1-F8,
// Table T1, claims C1-C12). The cost reported is the full regeneration,
// workload simulation included.
func BenchmarkExperiment(b *testing.B) {
	for _, e := range experiments.All() {
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, t := range e.Run(context.Background()) {
					_ = t.String()
				}
			}
		})
	}
}

// BenchmarkMachineKernels measures whole-machine simulation throughput
// per kernel under the tightly merged scheme, reporting simulated
// cycles and retired instructions alongside wall time.
func BenchmarkMachineKernels(b *testing.B) {
	for _, k := range workload.Kernels() {
		p := k.Load()
		b.Run(k.Name, func(b *testing.B) {
			var cycles, retired int64
			for i := 0; i < b.N; i++ {
				res, err := machine.Run(p, machine.Config{
					Scheme:    core.NewSchemeTight(4, 0),
					Predictor: bpred.NewBimodal(256),
					Speculate: true,
					MemSystem: machine.MemBackward3b,
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles, retired = res.Stats.Cycles, res.Stats.Retired
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
			b.ReportMetric(float64(retired), "sim-insts")
		})
	}
}

// BenchmarkSchemes compares the repair schemes on the branchy bubble
// kernel, reporting simulated IPC.
func BenchmarkSchemes(b *testing.B) {
	mks := map[string]func() core.Scheme{
		"schemeB4": func() core.Scheme { return core.NewSchemeB(4) },
		"tight4":   func() core.Scheme { return core.NewSchemeTight(4, 0) },
		"loose":    func() core.Scheme { return core.NewSchemeLoose(2, 4, 16) },
		"direct":   func() core.Scheme { return core.NewSchemeDirect(2, 4, 16, 0) },
	}
	k, _ := workload.ByName("bubble")
	p := k.Load()
	for name, mk := range mks {
		b.Run(name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				res, err := machine.Run(p, machine.Config{
					Scheme:    mk(),
					Predictor: bpred.NewBimodal(256),
					Speculate: true,
					MemSystem: machine.MemForward,
				})
				if err != nil {
					b.Fatal(err)
				}
				ipc = res.Stats.IPC()
			}
			b.ReportMetric(ipc, "sim-IPC")
		})
	}
}

// BenchmarkMemSystems compares the memory checkpointing techniques on
// the store-heavy sieve kernel.
func BenchmarkMemSystems(b *testing.B) {
	k, _ := workload.ByName("sieve")
	p := k.Load()
	for _, ms := range []machine.MemSystemKind{machine.MemBackward3a, machine.MemBackward3b, machine.MemForward} {
		b.Run(ms.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := machine.Run(p, machine.Config{
					Scheme:    core.NewSchemeTight(4, 0),
					Predictor: bpred.NewBimodal(256),
					Speculate: true,
					MemSystem: ms,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRegfile measures the copy-technique hot paths.
func BenchmarkRegfile(b *testing.B) {
	b.Run("deliver", func(b *testing.B) {
		f := regfile.New(4)
		f.Push(0)
		f.Push(0)
		depths := []int{2}
		for i := 0; i < b.N; i++ {
			tag := uint64(i)
			f.Reserve(5, tag)
			f.Deliver(depths, 5, uint32(i), tag)
		}
	})
	b.Run("push-drop", func(b *testing.B) {
		f := regfile.New(4)
		for i := 0; i < b.N; i++ {
			f.Push(0)
			f.DropOldest(0)
		}
	})
	b.Run("recall", func(b *testing.B) {
		f := regfile.New(4)
		for i := 0; i < b.N; i++ {
			f.Push(0)
			f.RecallAt(0, 1)
		}
	})
}

// BenchmarkBackwardDiff measures undo-log push and repair costs.
func BenchmarkBackwardDiff(b *testing.B) {
	newBD := func() *diff.Backward {
		m := mem.New()
		m.Map(0, mem.PageSize)
		c := cache.MustNew(cache.DefaultConfig, m)
		return diff.NewBackward(c, diff.Sophisticated, 0)
	}
	b.Run("store", func(b *testing.B) {
		bd := newBD()
		for i := 0; i < b.N; i++ {
			bd.Store(uint64(i+1), uint32(i%64)*4, uint32(i), 0b1111)
			if i%64 == 63 {
				bd.Release(uint64(i + 1)) // keep the buffer bounded
			}
		}
	})
	b.Run("store+repair8", func(b *testing.B) {
		bd := newBD()
		for i := 0; i < b.N; i++ {
			base := uint64(i*8 + 1)
			for j := uint64(0); j < 8; j++ {
				bd.Store(base+j, uint32(j*4), uint32(i), 0b1111)
			}
			bd.Repair(base)
		}
	})
}

// BenchmarkForwardDiff measures redo-log costs including load snooping.
func BenchmarkForwardDiff(b *testing.B) {
	m := mem.New()
	m.Map(0, mem.PageSize)
	c := cache.MustNew(cache.DefaultConfig, m)
	f := diff.NewForward(c, 0)
	for j := uint64(1); j <= 16; j++ {
		f.Store(j, uint32(j%8)*4, uint32(j), 0b1111)
	}
	b.Run("forwarded-load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.Load(uint32(i%8) * 4)
		}
	})
}

// BenchmarkCache measures hit-path access cost.
func BenchmarkCache(b *testing.B) {
	m := mem.New()
	m.Map(0, mem.PageSize)
	c := cache.MustNew(cache.DefaultConfig, m)
	for i := 0; i < b.N; i++ {
		c.ReadLongword(uint32(i%32) * 4)
	}
}

// BenchmarkPredictors measures predict+update cost per predictor.
func BenchmarkPredictors(b *testing.B) {
	in := isa.Inst{Op: isa.OpBNE, Imm: -4}
	for _, p := range []bpred.Predictor{
		bpred.NewBimodal(1024),
		bpred.NewGShare(4096, 8),
		bpred.NewBTFN(),
		bpred.NewSynthetic(0.85, 1),
	} {
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := p.Predict(i&1023, in, bpred.OracleHint{Known: true, Taken: i&3 != 0})
				p.Update(i&1023, t)
			}
		})
	}
}

// BenchmarkRefsim measures golden-model interpretation speed.
func BenchmarkRefsim(b *testing.B) {
	k, _ := workload.ByName("sieve")
	p := k.Load()
	var retired int
	for i := 0; i < b.N; i++ {
		res, err := refsim.Run(p, refsim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		retired = res.Retired
	}
	b.ReportMetric(float64(retired), "sim-insts")
}

// BenchmarkRandomProgramGolden is the property-test inner loop: one
// random program, one machine run, one golden comparison.
func BenchmarkRandomProgramGolden(b *testing.B) {
	p := workload.Random(1, workload.DefaultRandomOpts)
	ref := refsim.MustRun(p, refsim.Options{})
	for i := 0; i < b.N; i++ {
		res, err := machine.Run(p, machine.Config{
			Scheme:    core.NewSchemeLoose(2, 4, 12),
			Predictor: bpred.NewGShare(256, 6),
			Speculate: true,
			MemSystem: machine.MemBackward3b,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.MatchRef(ref); err != nil {
			b.Fatal(err)
		}
	}
}

// Example of driving the experiment registry programmatically.
func Example() {
	e, _ := experiments.ByID("F5")
	for _, t := range e.Run(context.Background()) {
		fmt.Println(t.ID)
	}
	_ = io.Discard
	// Output: F5
}
