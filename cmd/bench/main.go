// Command bench measures the simulator's hot paths with the standard
// testing.Benchmark driver and writes the results as JSON, so perf
// regressions show up in version control next to the changes that
// caused them (BENCH_<n>.json at the repo root, one file per measured
// PR).
//
// Usage:
//
//	go run ./cmd/bench              # writes BENCH_1.json
//	go run ./cmd/bench -o out.json -benchtime 300ms
//
// Each entry reports wall time, allocations, and — for whole-machine
// benchmarks — simulated instructions per second, alongside the
// baseline numbers captured on the pre-optimisation tree (same
// machine), so the file is a self-contained before/after record. The
// runall section times full artefact regeneration sequentially and
// with the parallel experiment engine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/refsim"
	"repro/internal/workload"
)

// baseline holds the pre-optimisation numbers (negative = not
// captured). Measured at benchtime=300ms on the tree before the flat
// page table, op free lists, and checkpoint recycling landed.
type baseline struct {
	NsPerOp     float64
	AllocsPerOp int64
}

var baselines = map[string]baseline{
	"machine/fib":           {72003, 757},
	"machine/bubble":        {584980, 4994},
	"machine/sieve":         {2641589, 21676},
	"machine/recfib":        {3798157, 31220},
	"memsys/backward-3a":    {2570710, -1},
	"memsys/backward-3b":    {3102511, -1},
	"memsys/forward":        {3691383, -1},
	"diff/backward-store":   {32.96, 0},
	"diff/backward-repair8": {628.1, -1},
	"refsim/sieve":          {170506, 5},
}

// entry is one benchmark's measurement.
type entry struct {
	Name            string  `json:"name"`
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	SimInstsPerSec  float64 `json:"sim_insts_per_sec,omitempty"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocs  int64   `json:"baseline_allocs_per_op,omitempty"`
	SpeedupVsBase   float64 `json:"speedup_vs_baseline,omitempty"`
}

// report is the file layout of BENCH_<n>.json.
type report struct {
	GoVersion  string  `json:"go_version"`
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Benchtime  string  `json:"benchtime"`
	Benchmarks []entry `json:"benchmarks"`
	RunAll     struct {
		SequentialNs int64   `json:"sequential_ns"`
		ParallelNs   int64   `json:"parallel_ns"`
		Workers      int     `json:"workers"`
		Speedup      float64 `json:"speedup"`
	} `json:"runall"`
}

func main() {
	out := flag.String("o", "BENCH_1.json", "output JSON path")
	benchtime := flag.Duration("benchtime", 300*time.Millisecond, "target time per benchmark")
	flag.Parse()
	flag.Set("test.benchtime", benchtime.String())

	rep := report{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  benchtime.String(),
	}

	machineCfg := func() machine.Config {
		return machine.Config{
			Scheme:    core.NewSchemeTight(4, 0),
			Predictor: bpred.NewBimodal(256),
			Speculate: true,
			MemSystem: machine.MemBackward3b,
		}
	}

	for _, name := range []string{"fib", "bubble", "sieve", "recfib"} {
		k, err := workload.ByName(name)
		if err != nil {
			fatal(err)
		}
		p := k.Load()
		var retired int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := machine.Run(p, machineCfg())
				if err != nil {
					b.Fatal(err)
				}
				retired = res.Stats.Retired
			}
		})
		rep.add("machine/"+name, r, retired)
	}

	{
		k, _ := workload.ByName("sieve")
		p := k.Load()
		for _, ms := range []struct {
			label string
			kind  machine.MemSystemKind
		}{
			{"backward-3a", machine.MemBackward3a},
			{"backward-3b", machine.MemBackward3b},
			{"forward", machine.MemForward},
		} {
			var retired int64
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					cfg := machineCfg()
					cfg.MemSystem = ms.kind
					res, err := machine.Run(p, cfg)
					if err != nil {
						b.Fatal(err)
					}
					retired = res.Stats.Retired
				}
			})
			rep.add("memsys/"+ms.label, r, retired)
		}
	}

	newBD := func() *diff.Backward {
		m := mem.New()
		m.Map(0, mem.PageSize)
		c := cache.MustNew(cache.DefaultConfig, m)
		return diff.NewBackward(c, diff.Sophisticated, 0)
	}
	rep.add("diff/backward-store", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		bd := newBD()
		for i := 0; i < b.N; i++ {
			bd.Store(uint64(i+1), uint32(i%64)*4, uint32(i), 0b1111)
			if i%64 == 63 {
				bd.Release(uint64(i + 1))
			}
		}
	}), 0)
	rep.add("diff/backward-repair8", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		bd := newBD()
		for i := 0; i < b.N; i++ {
			base := uint64(i*8 + 1)
			for j := uint64(0); j < 8; j++ {
				bd.Store(base+j, uint32(j*4), uint32(i), 0b1111)
			}
			bd.Repair(base)
		}
	}), 0)

	{
		k, _ := workload.ByName("sieve")
		p := k.Load()
		var retired int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := refsim.Run(p, refsim.Options{})
				if err != nil {
					b.Fatal(err)
				}
				retired = int64(res.Retired)
			}
		})
		rep.add("refsim/sieve", r, retired)
	}

	// Full artefact regeneration, sequential then parallel. One warm-up
	// pass is charged to neither so assembler and page-table warm state
	// don't bias the first timing.
	experiments.RunAll(io.Discard)
	experiments.SetParallelism(1)
	seqStart := time.Now()
	experiments.RunAll(io.Discard)
	rep.RunAll.SequentialNs = time.Since(seqStart).Nanoseconds()
	experiments.SetParallelism(0)
	parStart := time.Now()
	experiments.RunAll(io.Discard)
	rep.RunAll.ParallelNs = time.Since(parStart).Nanoseconds()
	rep.RunAll.Workers = experiments.Parallelism()
	rep.RunAll.Speedup = float64(rep.RunAll.SequentialNs) / float64(rep.RunAll.ParallelNs)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks, runall speedup %.2fx on %d worker(s))\n",
		*out, len(rep.Benchmarks), rep.RunAll.Speedup, rep.RunAll.Workers)
}

func (rep *report) add(name string, r testing.BenchmarkResult, simInsts int64) {
	e := entry{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if simInsts > 0 && e.NsPerOp > 0 {
		e.SimInstsPerSec = float64(simInsts) * 1e9 / e.NsPerOp
	}
	if base, ok := baselines[name]; ok {
		e.BaselineNsPerOp = base.NsPerOp
		if base.AllocsPerOp >= 0 {
			e.BaselineAllocs = base.AllocsPerOp
		}
		if e.NsPerOp > 0 {
			e.SpeedupVsBase = base.NsPerOp / e.NsPerOp
		}
	}
	rep.Benchmarks = append(rep.Benchmarks, e)
	fmt.Printf("%-24s %12.1f ns/op %8d allocs/op %10d B/op\n",
		name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
