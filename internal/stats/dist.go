package stats

import (
	"fmt"
	"sort"
)

// Dist accumulates a small distribution of int64 samples (repair
// latencies, queue depths) and reports order statistics. Samples are
// kept verbatim — the consumers (fault-injection campaign reports)
// collect at most a few thousand points per table row, so exact
// percentiles beat a sketch. The zero value is ready to use.
type Dist struct {
	samples []int64
	sorted  bool
}

// Add records one sample.
func (d *Dist) Add(v int64) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// N returns the number of samples.
func (d *Dist) N() int { return len(d.samples) }

func (d *Dist) sort() {
	if !d.sorted {
		sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
		d.sorted = true
	}
}

// Min returns the smallest sample (0 if empty).
func (d *Dist) Min() int64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	return d.samples[0]
}

// Max returns the largest sample (0 if empty).
func (d *Dist) Max() int64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	return d.samples[len(d.samples)-1]
}

// Mean returns the arithmetic mean (0 if empty).
func (d *Dist) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	var sum int64
	for _, v := range d.samples {
		sum += v
	}
	return float64(sum) / float64(len(d.samples))
}

// Percentile returns the p-th percentile (nearest-rank, p in [0,100]).
// Returns 0 if empty.
func (d *Dist) Percentile(p float64) int64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	d.sort()
	rank := int(p/100*float64(n)+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return d.samples[rank]
}

// String renders "n=… min/p50/mean/p90/max" compactly, or "n=0".
func (d *Dist) String() string {
	if len(d.samples) == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%d p50=%d mean=%.1f p90=%d max=%d",
		d.N(), d.Min(), d.Percentile(50), d.Mean(), d.Percentile(90), d.Max())
}
