package rv32

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecode: the decoder must never panic, and everything it accepts
// must re-encode to the identical word (Decode and Encode are exact
// inverses over the accepted set).
func FuzzDecode(f *testing.F) {
	for _, in := range sampleInsts() {
		w, err := Encode(in)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(w)
	}
	f.Add(uint32(0))
	f.Add(uint32(0xffffffff))
	f.Add(uint32(0xdeadbeef))
	f.Fuzz(func(t *testing.T, w uint32) {
		in, err := Decode(w)
		if err != nil {
			return
		}
		w2, err := Encode(in)
		if err != nil {
			t.Fatalf("decoded %#08x to %v, which does not re-encode: %v", w, in, err)
		}
		if w2 != w {
			// The only legal normalization is fence/fence.i hint bits.
			if in.Op != OpFENCE && in.Op != OpFENCEI {
				t.Fatalf("decode(%#08x) = %v re-encodes to %#08x", w, in, w2)
			}
			in2, err := Decode(w2)
			if err != nil || in2 != in {
				t.Fatalf("fence normalization unstable: %#08x -> %v -> %#08x -> %v (%v)", w, in, w2, in2, err)
			}
		}
	})
}

// FuzzLoad: arbitrary bytes through the full load+translate pipeline
// must never panic — malformed ELF headers, truncated section tables,
// and garbage flat images all surface as errors.
func FuzzLoad(f *testing.F) {
	corpus, err := BuildCorpus()
	if err != nil {
		f.Fatal(err)
	}
	for _, data := range corpus {
		f.Add(data)
		if len(data) > 8 {
			f.Add(data[:len(data)/2]) // truncated
		}
	}
	// A well-formed ELF prefix with a mangled body reaches deep into the
	// program-header walk.
	f.Add(append(bytes.Clone(elfMagic), make([]byte, 60)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Load("fuzz", data)
		if err != nil {
			return
		}
		if len(img.Text) == 0 || len(img.Text)%4 != 0 {
			t.Fatalf("loader accepted image with bad text size %d", len(img.Text))
		}
		if _, err := Translate(img); err != nil {
			// Translation may reject (huge base, entry games); it must
			// only do so via an error.
			return
		}
	})
}

// FuzzBuilderRoundTrip: any word the decoder accepts must survive a
// flat-load + translate without panicking, even embedded among valid
// code.
func FuzzBuilderRoundTrip(f *testing.F) {
	f.Add(uint32(0x00000013)) // addi x0,x0,0
	f.Add(uint32(0x00100073)) // ebreak
	f.Fuzz(func(t *testing.T, w uint32) {
		var buf [8]byte
		binary.LittleEndian.PutUint32(buf[:], w)
		binary.LittleEndian.PutUint32(buf[4:], 0x00100073) // ebreak backstop
		img, err := LoadFlat("fuzzword", buf[:])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Translate(img); err != nil {
			// Only unlowerable-but-decodable words (MULHU etc.) may
			// reject; undecodable words become data.
			if _, isTranslate := err.(*TranslateError); !isTranslate {
				t.Fatalf("unexpected error type: %v", err)
			}
		}
	})
}
