// Package clustertest stands up an in-process cluster — one
// coordinator and N workers, each a real ckptd server on a real
// loopback listener — for tests, the cluster smoke check, and the
// benchmark harness. Everything speaks actual HTTP, so the byte paths
// exercised are the production ones; only process boundaries are
// missing.
package clustertest

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
)

// Cluster is a running in-process cluster.
type Cluster struct {
	Coord    *cluster.Coordinator
	CoordSrv *service.Server
	CoordURL string

	Workers []*Worker

	coordHTTP *httptest.Server
}

// Worker is one in-process worker node.
type Worker struct {
	Srv  *service.Server
	URL  string
	http *httptest.Server
}

// Config sizes the harness.
type Config struct {
	Workers int // node count (default 2)
	// WorkerCfg configures each worker's server (zero value = service
	// defaults).
	WorkerCfg service.Config
	// CoordCfg configures the coordinator's server.
	CoordCfg service.Config
	// Coordinator options; ProbeInterval defaults to -1 (disabled) so
	// tests control liveness deterministically through dispatch errors
	// and explicit KillWorker calls.
	CoordOpts cluster.CoordinatorConfig
}

// Start builds and starts the cluster. Callers must Close it.
func Start(cfg Config) (*Cluster, error) {
	n := cfg.Workers
	if n <= 0 {
		n = 2
	}
	if cfg.CoordOpts.ProbeInterval == 0 {
		cfg.CoordOpts.ProbeInterval = -1
	}
	coordSrv, err := service.New(cfg.CoordCfg)
	if err != nil {
		return nil, err
	}
	coord := cluster.NewCoordinator(coordSrv, cfg.CoordOpts)
	c := &Cluster{Coord: coord, CoordSrv: coordSrv}
	c.coordHTTP = httptest.NewServer(coord.Handler())
	c.CoordURL = c.coordHTTP.URL

	for i := 0; i < n; i++ {
		w, err := c.AddWorker(cfg.WorkerCfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		_ = w
	}
	return c, nil
}

// AddWorker starts one more worker node and registers it.
func (c *Cluster) AddWorker(cfg service.Config) (*Worker, error) {
	srv, err := service.New(cfg)
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	w := &Worker{Srv: srv, URL: ts.URL, http: ts}
	c.Workers = append(c.Workers, w)
	c.Coord.Registry().Upsert(cluster.WorkerInfo{
		ID:   fmt.Sprintf("worker-%d", len(c.Workers)),
		Addr: ts.URL,
	})
	return w, nil
}

// KillWorker abruptly stops worker i: its listener closes (in-flight
// requests are cut mid-stream) and its registration is NOT withdrawn —
// exactly what a crashed process looks like to the coordinator, which
// must discover the death through a failed dispatch or probe.
func (c *Cluster) KillWorker(i int) {
	w := c.Workers[i]
	w.http.CloseClientConnections()
	w.http.Close()
	// Hard-stop the server so its in-flight executions unwind.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	w.Srv.Drain(ctx)
}

// Close tears the whole cluster down (idempotent per component).
func (c *Cluster) Close() {
	c.Coord.Close()
	c.coordHTTP.Close()
	drain := func(s *service.Server) {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Drain(ctx)
	}
	for _, w := range c.Workers {
		w.http.Close()
		drain(w.Srv)
	}
	drain(c.CoordSrv)
}

// WaitHealthy blocks until the coordinator answers /healthz (it
// already does by the time Start returns; exported for belt and
// braces in scripts).
func (c *Cluster) WaitHealthy(ctx context.Context) error {
	for {
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, c.CoordURL+"/healthz", nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}
