package experiments

import (
	"bytes"
	"testing"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/refsim"
)

// observeProbe watches both machine hook points without mutating state.
type observeProbe struct{ events int }

func (p *observeProbe) PreIssue(*machine.Machine, uint64, int, isa.Inst) { p.events++ }
func (p *observeProbe) PostWriteback(m *machine.Machine, w machine.Writeback) {
	p.events++
	_ = w.Seq()
}

// TestRunAllByteIdenticalNoopProbe regenerates every artefact with an
// observation-only machine.Probe installed on every run and requires
// the output byte-identical to a probe-free pass — the probe seam added
// for fault injection must be invisible unless a probe mutates state.
func TestRunAllByteIdenticalNoopProbe(t *testing.T) {
	defer SetProbeFactory(nil)
	var bare, probed bytes.Buffer
	SetProbeFactory(nil)
	RunAll(&bare)
	SetProbeFactory(func() machine.Probe { return &observeProbe{} })
	RunAll(&probed)
	if !bytes.Equal(bare.Bytes(), probed.Bytes()) {
		a, b := bare.String(), probed.String()
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := max(i-200, 0)
		t.Fatalf("noop probe changed experiment output at byte %d:\nbare:   %q\nprobed: %q",
			i, a[lo:min(i+200, len(a))], b[lo:min(i+200, len(b))])
	}
}

// TestRunAllByteIdenticalFastPaths regenerates every artefact (F1-F8,
// T1, C1-C12, A1-A6) with the trace-replay and cycle-skipping fast
// paths enabled and disabled, and requires the outputs to be
// byte-for-byte identical — the acceptance bar for both optimisations.
func TestRunAllByteIdenticalFastPaths(t *testing.T) {
	defer SetFastPaths(true)
	var on, off bytes.Buffer
	SetFastPaths(true)
	RunAll(&on)
	SetFastPaths(false)
	RunAll(&off)
	if bytes.Equal(on.Bytes(), off.Bytes()) {
		return
	}
	a, b := on.String(), off.String()
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := max(i-200, 0)
	t.Fatalf("fast paths changed experiment output at byte %d:\nfast: %q\nslow: %q",
		i, a[lo:min(i+200, len(a))], b[lo:min(i+200, len(b))])
}

// TestSimRunUsesTraceReplay pins the fast path actually engaging: after
// a simRun of a kernel, the program carries a cached reference trace.
func TestSimRunUsesTraceReplay(t *testing.T) {
	if !FastPaths() {
		t.Fatal("fast paths must default to on")
	}
	j := kernelJob("fib", machine.Config{
		Scheme:    core.NewSchemeTight(4, 0),
		Predictor: bpred.NewBimodal(256),
		Speculate: true,
		MemSystem: machine.MemBackward3b,
	})
	if _, err := simRun(j.prog, j.cfg); err != nil {
		t.Fatal(err)
	}
	tr, err := refsim.CachedTrace(j.prog)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Steps() == 0 {
		t.Fatal("cached trace is empty")
	}
}
