# Developer entry points. CI runs `make ci`.

GO ?= go

.PHONY: build vet test race bench experiments ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# Race-check the concurrency-sensitive surface: the parallel experiment
# engine and the whole-machine golden tests it drives.
race:
	$(GO) test -race ./internal/experiments/ ./internal/machine/

# Regenerate the BENCH_<n>.json perf record (see README "Performance").
bench:
	$(GO) run ./cmd/bench

experiments:
	$(GO) run ./cmd/experiments

ci: vet test race
