package stats

import (
	"strings"
	"testing"
)

func TestDerivedMetrics(t *testing.T) {
	var r Run
	if r.IPC() != 0 || r.MispredictRate() != 0 || r.InstsPerBRepair() != 0 {
		t.Error("zero-value metrics must be 0")
	}
	r.Cycles = 100
	r.Retired = 250
	r.Branches = 50
	r.Mispredicts = 5
	r.BRepairs = 5
	if r.IPC() != 2.5 {
		t.Errorf("IPC %v", r.IPC())
	}
	if r.MispredictRate() != 0.1 {
		t.Errorf("miss rate %v", r.MispredictRate())
	}
	if r.InstsPerBRepair() != 50 {
		t.Errorf("insts/B-repair %v", r.InstsPerBRepair())
	}
}

func TestStallTotal(t *testing.T) {
	var r Run
	r.StallCycles[StallScheme] = 3
	r.StallCycles[StallRS] = 4
	r.StallCycles[StallStoreBuf] = 5
	if r.StallTotal() != 12 {
		t.Errorf("stall total %d", r.StallTotal())
	}
}

func TestReasonNames(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumStallReasons; i++ {
		name := StallReason(i).String()
		if name == "" || strings.HasPrefix(name, "stall(") {
			t.Errorf("reason %d unnamed", i)
		}
		if seen[name] {
			t.Errorf("duplicate name %q", name)
		}
		seen[name] = true
	}
}

func TestRunString(t *testing.T) {
	r := Run{Cycles: 10, Retired: 20, Issued: 30}
	s := r.String()
	for _, want := range []string{"cycles=10", "retired=20", "ipc=2.000", "issued=30"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}
