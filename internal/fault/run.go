package fault

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/prog"
	"repro/internal/refsim"
)

// Config parameterises a campaign.
type Config struct {
	// Seed drives every corruption bit (via splitmix64 over the fault
	// coordinates); two campaigns with the same seed, program, and
	// machine configuration are identical, at any worker count.
	Seed int64
	// Models selects the fault models to enumerate; nil means all.
	Models []Model
	// Stride enumerates every Stride-th eligible event per model
	// (default 1: every event). The knob that bounds campaign size on
	// long workloads.
	Stride int
	// Regs overrides the RegFlip target set; nil targets every register
	// the baseline run references.
	Regs []isa.Reg
	// Words overrides the MemFlip target set (aligned longword
	// addresses); nil derives targets from the baseline's access
	// profile.
	Words []uint32
	// MaxWords bounds the derived MemFlip target set to the N
	// most-accessed longwords (default 8). Ignored when Words is set.
	MaxWords int
	// Workers bounds concurrent injected runs (<=0: GOMAXPROCS).
	Workers int
	// MaxCycles caps each injected run; <=0 derives 8× the baseline's
	// cycle count (+10k slack) so runaway corruption classifies as Hang
	// quickly instead of grinding to the machine's global default.
	MaxCycles int64
	// WatchdogCycles overrides the machine's no-progress watchdog for
	// injected runs (<=0: machine default).
	WatchdogCycles int64
	// Ckpt, when non-nil, persists campaign progress: completed
	// injections are checkpointed through it every CkptEvery
	// completions (and on cancellation), and Run begins by loading any
	// prior record whose plan fingerprint and golden-state anchors
	// match, skipping the injections it already classified.
	Ckpt Checkpointer
	// CkptEvery is the progress save interval in completed injections
	// (default 64).
	CkptEvery int
	// SnapshotBudget is the placement pass's snapshot budget K
	// (default 16).
	SnapshotBudget int
}

func (cc *Config) models() []Model {
	if cc.Models == nil {
		return Models()
	}
	return cc.Models
}

func (cc *Config) maxWords() int {
	if cc.MaxWords <= 0 {
		return 8
	}
	return cc.MaxWords
}

// Outcome classifies one injected run against the golden final state.
type Outcome uint8

const (
	// Masked: final state matches the oracle and no extra repair fired —
	// the fault was architecturally dead or overwritten.
	Masked Outcome = iota
	// Repaired: final state matches the oracle and the scheme performed
	// at least one repair beyond the baseline's — checkpoint repair
	// recovered the fault, byte-verified.
	Repaired
	// Detected: the run completed but its architectural exception
	// history (or halt status) differs from the oracle — the fault
	// surfaced as a visible exception instead of corrupting silently.
	Detected
	// SDC: silent data corruption — the run completed with the oracle's
	// exception history but wrong final registers or memory.
	SDC
	// Hang: the run hit its cycle cap or the no-progress watchdog.
	Hang
	// Crash: the simulator itself failed (panic or fatal machine error).
	Crash
	numOutcomes
)

// Outcomes returns all outcomes in report order.
func Outcomes() []Outcome {
	return []Outcome{Masked, Repaired, Detected, SDC, Hang, Crash}
}

func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case Repaired:
		return "repaired"
	case Detected:
		return "detected"
	case SDC:
		return "SDC"
	case Hang:
		return "hang"
	case Crash:
		return "crash"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// RunResult is one executed injection's classification.
type RunResult struct {
	Inj    Injection
	Covers int // raw fault points this run accounts for
	// Fired reports whether the injection actually mutated state; an
	// armed fault whose operation never reached a matching writeback
	// (squashed by an unrelated repair, sequence never re-used at its
	// PC) stays unfired and trivially classifies as Masked.
	Fired   bool
	Outcome Outcome
	// RepairDelta is the run's E+B repair count minus the baseline's.
	RepairDelta int
	// Latency is the run's cycle count minus the baseline's — the
	// end-to-end cost of detection plus repair re-execution (meaningful
	// for Repaired outcomes).
	Latency int64
	// Detail carries the mismatch/abort description for non-clean
	// outcomes (deterministic text).
	Detail string
}

// Report is one campaign's full, deterministic result.
type Report struct {
	Workload string
	Scheme   string
	Seed     int64
	Models   []Model
	// Events is the baseline run's issue-event count — the dynamic
	// instruction axis of the enumerated space.
	Events          int
	BaselineCycles  int64
	BaselineRepairs int
	Plan            *Plan
	// Results is parallel to Plan.Exec.
	Results []RunResult
	// Resumed counts the injections restored from a progress record
	// instead of executed. Informational: it does not appear in the
	// outcome table, which stays byte-identical to an uninterrupted
	// run's.
	Resumed int `json:",omitempty"`
}

// Run executes a fault-injection campaign for program p. mk must return
// a fresh machine.Config per call (schemes and predictors are stateful;
// sharing one across concurrent runs would race). The campaign:
//
//  1. reconstructs the golden final state from the memoized reference
//     trace,
//  2. runs the fault-free baseline with a recorder probe to capture the
//     issue-event stream,
//  3. enumerates, prunes, and collapses the fault space (buildPlan),
//  4. fans the surviving injections over an experiments.Pool, and
//  5. classifies every run against the golden state.
//
// Cancelling ctx stops dispatching new injections; Run returns
// ctx.Err() after in-flight ones drain (a campaign-as-a-job in the
// serving layer dies with its client).
func Run(ctx context.Context, p *prog.Program, mk func() machine.Config, cc Config) (*Report, error) {
	run, rec, err := newCampaignRun(p, mk, &cc)
	if err != nil {
		return nil, err
	}
	plan := buildPlan(rec, run.repairs, &cc)
	plan.Placement = buildPlacement(run.trace, rec.events, plan, cc.SnapshotBudget)

	rep := newReportSkeleton(p, run, rec, plan, &cc)

	// Progress checkpointing: restore any prior record for this exact
	// plan and golden state, then save as injections complete.
	done := make([]bool, len(plan.Exec))
	var saver *progressSaver
	if cc.Ckpt != nil {
		saver = newProgressSaver(cc.Ckpt, cc.CkptEvery,
			planFingerprint(rep, plan), campaignAnchors(run.trace, plan))
		rep.Resumed = saver.load(rep.Results, done)
	}

	pool := experiments.NewPool(cc.Workers)
	mapErr := pool.Map(ctx, len(plan.Exec), func(i int) {
		if done[i] {
			return
		}
		r := run.one(plan.Exec[i], plan.Covers[i])
		rep.Results[i] = r
		if saver != nil {
			saver.completed(i, r)
		}
	})
	if saver != nil {
		// Flush on every exit path: a cancelled campaign persists the
		// work its in-flight workers finished, which is what -resume
		// picks up.
		saver.flush()
	}
	if mapErr != nil {
		return nil, mapErr
	}
	return rep, nil
}

// PlanOnly records the baseline and builds the campaign plan without
// executing any injection — used to size strides before committing to a
// full campaign. The baseline run is shared with a subsequent Run via
// the per-program reference-trace cache.
func PlanOnly(p *prog.Program, mk func() machine.Config, cc Config) (*Plan, error) {
	run, rec, err := newCampaignRun(p, mk, &cc)
	if err != nil {
		return nil, err
	}
	plan := buildPlan(rec, run.repairs, &cc)
	plan.Placement = buildPlacement(run.trace, rec.events, plan, cc.SnapshotBudget)
	return plan, nil
}

// Replay executes an explicit injection list against p without planning
// — the full-fidelity path the validation tests use to re-run pruned
// points and non-representative equivalence-class members, and the
// benchmark's hot loop.
func Replay(ctx context.Context, p *prog.Program, mk func() machine.Config, cc Config, injs []Injection) ([]RunResult, error) {
	run, _, err := newCampaignRun(p, mk, &cc)
	if err != nil {
		return nil, err
	}
	out := make([]RunResult, len(injs))
	pool := experiments.NewPool(cc.Workers)
	if err := pool.Map(ctx, len(injs), func(i int) {
		out[i] = run.one(injs[i], 1)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// newCampaignRun records the baseline, checks it against the reference
// trace's final state, and assembles the shared fan-out context.
func newCampaignRun(p *prog.Program, mk func() machine.Config, cc *Config) (*campaignRun, *recorder, error) {
	tr, err := refsim.CachedTrace(p)
	if err != nil {
		return nil, nil, fmt.Errorf("fault: reference trace for %s: %w", p.Name, err)
	}
	oracle := tr.FinalResult()

	rec := newRecorder()
	baseCfg := mk()
	schemeName := baseCfg.Scheme.Name()
	baseCfg.RefTrace = tr
	baseCfg.Probe = rec
	base, err := machine.Run(p, baseCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("fault: baseline run of %s: %w", p.Name, err)
	}
	if err := base.MatchRef(oracle); err != nil {
		return nil, nil, fmt.Errorf("fault: baseline of %s diverges from reference: %w", p.Name, err)
	}
	baseRepairs := base.Scheme.ERepairs + base.Scheme.BRepairs

	maxCycles := cc.MaxCycles
	if maxCycles <= 0 {
		maxCycles = base.Stats.Cycles*8 + 10_000
	}
	return &campaignRun{
		prog:      p,
		mk:        mk,
		scheme:    schemeName,
		trace:     tr,
		oracle:    oracle,
		baseline:  base,
		repairs:   baseRepairs,
		maxCycles: maxCycles,
		watchdog:  cc.WatchdogCycles,
	}, rec, nil
}

// campaignRun is the shared read-only context of one campaign's fan-out.
type campaignRun struct {
	prog      *prog.Program
	mk        func() machine.Config
	scheme    string
	trace     *refsim.Trace
	oracle    *refsim.Result
	baseline  *machine.Result
	repairs   int
	maxCycles int64
	watchdog  int64
}

// one executes and classifies a single injection. Panics are captured
// here (the pool re-raises worker panics on the caller) so a simulator
// bug under corruption classifies as Crash instead of killing the
// campaign.
func (c *campaignRun) one(inj Injection, covers int) (out RunResult) {
	out.Inj, out.Covers = inj, covers
	defer func() {
		if r := recover(); r != nil {
			out.Outcome = Crash
			out.Detail = fmt.Sprintf("panic: %v", r)
		}
	}()

	cfg := c.mk()
	cfg.RefTrace = c.trace
	ij := &injector{inj: inj}
	cfg.Probe = ij
	cfg.MaxCycles = c.maxCycles
	if c.watchdog > 0 {
		cfg.WatchdogCycles = c.watchdog
	}
	res, err := machine.Run(c.prog, cfg)
	out.Fired = ij.fired
	if err != nil {
		out.Detail = err.Error()
		if errors.Is(err, machine.ErrCycleLimit) || errors.Is(err, machine.ErrDeadlock) {
			out.Outcome = Hang
		} else {
			out.Outcome = Crash
		}
		return out
	}
	out.RepairDelta = res.Scheme.ERepairs + res.Scheme.BRepairs - c.repairs
	out.Latency = res.Stats.Cycles - c.baseline.Stats.Cycles
	if err := res.MatchRef(c.oracle); err != nil {
		out.Detail = err.Error()
		if !historyMatches(res, c.oracle) {
			out.Outcome = Detected
		} else {
			out.Outcome = SDC
		}
		return out
	}
	if out.RepairDelta > 0 {
		out.Outcome = Repaired
	} else {
		out.Outcome = Masked
	}
	return out
}

// historyMatches reports whether the run's architecturally visible
// history — exception log and halt status — matches the oracle's. A
// state mismatch with matching history is silent corruption; a history
// mismatch means the fault announced itself.
func historyMatches(res *machine.Result, oracle *refsim.Result) bool {
	if res.Halted != oracle.Halted || len(res.Exceptions) != len(oracle.Exceptions) {
		return false
	}
	for i := range res.Exceptions {
		if res.Exceptions[i] != oracle.Exceptions[i] {
			return false
		}
	}
	return true
}
