package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/service"
)

// CoordinatorConfig sizes the coordinator. Zero fields take defaults.
type CoordinatorConfig struct {
	// Replicas is the ring's virtual points per worker (default 64).
	Replicas int
	// HeartbeatTTL prunes workers silent this long (default 15s).
	HeartbeatTTL time.Duration
	// ProbeInterval is how often the coordinator polls worker /healthz
	// for liveness and queue depth (default 2s; <0 disables probing,
	// for tests that drive liveness through dispatch errors alone).
	ProbeInterval time.Duration
	// MaxShards caps one campaign's fan-out (default 8).
	MaxShards int
}

// Coordinator runs a ckptd server in cluster-head mode: jobs submitted
// to it route to registered workers; its own store still answers cache
// hits before anything is dispatched (the server's acquire path is
// unchanged). It owns the process-global experiments remote-batch
// hook, so one process runs at most one Coordinator at a time — Close
// releases it.
type Coordinator struct {
	srv  *service.Server
	reg  *Registry
	ring *Ring
	disp *Dispatcher
	exec *service.DistributedExecutor
	mux  *http.ServeMux

	probeEvery time.Duration
	stop       chan struct{}
	stopped    sync.WaitGroup

	mu        sync.Mutex
	fallbacks int64
	lastFall  string
}

// NewCoordinator wraps srv with cluster routing and starts the worker
// prober. Call Close before discarding it.
func NewCoordinator(srv *service.Server, cfg CoordinatorConfig) *Coordinator {
	c := &Coordinator{
		srv:  srv,
		ring: NewRing(cfg.Replicas),
		stop: make(chan struct{}),
	}
	c.reg = NewRegistry(cfg.HeartbeatTTL,
		func(addr string) { c.ring.Add(addr) },
		func(addr string) { c.ring.Remove(addr) },
	)
	c.disp = NewDispatcher(c.reg, c.ring)
	c.exec = &service.DistributedExecutor{
		Server:    srv,
		Disp:      c.disp,
		MaxShards: cfg.MaxShards,
		OnFallback: func(reason string) {
			c.mu.Lock()
			c.fallbacks++
			c.lastFall = reason
			c.mu.Unlock()
		},
	}
	srv.SetExecutor(c.exec.Execute)
	srv.SetResultFallback(func(ctx context.Context, key string) *service.Result {
		return c.disp.PeerFetch(ctx, key, nil)
	})
	srv.SetMetricsExtra("cluster", func() any { return c.MetricsView() })
	experiments.SetRemoteBatchRunner(c.exec.BatchRunner())

	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /cluster/register", c.handleRegister)
	c.mux.HandleFunc("GET /cluster/ring", c.handleRing)
	c.mux.Handle("/", srv.Handler())

	c.probeEvery = cfg.ProbeInterval
	if c.probeEvery == 0 {
		c.probeEvery = 2 * time.Second
	}
	if c.probeEvery > 0 {
		c.stopped.Add(1)
		go c.probeLoop()
	}
	return c
}

// Handler returns the coordinator's HTTP API: the full ckptd API plus
// the /cluster endpoints.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Registry exposes worker membership (the in-process harness and tests
// register workers directly through it).
func (c *Coordinator) Registry() *Registry { return c.reg }

// Dispatcher exposes routing state and counters.
func (c *Coordinator) Dispatcher() *Dispatcher { return c.disp }

// Close stops the prober and releases the process-global batch hook;
// the wrapped server keeps serving as a plain single node.
func (c *Coordinator) Close() {
	close(c.stop)
	c.stopped.Wait()
	experiments.SetRemoteBatchRunner(nil)
	c.srv.SetExecutor(c.srv.ExecuteLocal)
}

// probeLoop polls registered workers: liveness (a failed probe kills
// the worker's registration on the spot) and load (queue depth feeds
// /metrics). Heartbeats drive membership; probes catch silent deaths
// between heartbeats.
func (c *Coordinator) probeLoop() {
	defer c.stopped.Done()
	t := time.NewTicker(c.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		c.reg.Prune()
		for _, w := range c.reg.Live() {
			ctx, cancel := context.WithTimeout(context.Background(), c.probeEvery)
			hz, err := c.disp.client(w.Addr).Healthz(ctx)
			cancel()
			if err != nil || hz.Status != "ok" {
				c.disp.workerDeaths.Add(1)
				c.reg.MarkDead(w.Addr)
				continue
			}
			c.reg.UpdateLoad(w.Addr, hz.QueueDepth, hz.Running)
		}
	}
}

// RegisterRequest is a worker's heartbeat body.
type RegisterRequest struct {
	ID         string `json:"id"`
	Addr       string `json:"addr"`
	Version    string `json:"version"`
	QueueDepth int64  `json:"queue_depth"`
	Running    int64  `json:"running"`
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Addr == "" {
		http.Error(w, `{"error":"bad register body"}`, http.StatusBadRequest)
		return
	}
	c.reg.Upsert(WorkerInfo{
		ID:         req.ID,
		Addr:       req.Addr,
		Version:    req.Version,
		QueueDepth: req.QueueDepth,
		Running:    req.Running,
	})
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"ok": true, "workers": c.reg.Count()})
}

func (c *Coordinator) handleRing(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{
		"members": c.ring.Members(),
		"workers": c.reg.Live(),
	})
}

// MetricsView is the "cluster" section the coordinator adds to the
// wrapped server's /metrics document.
func (c *Coordinator) MetricsView() map[string]any {
	c.mu.Lock()
	fallbacks, last := c.fallbacks, c.lastFall
	c.mu.Unlock()
	workers := c.reg.Live()
	perWorker := make([]map[string]any, len(workers))
	for i, w := range workers {
		perWorker[i] = map[string]any{
			"addr":        w.Addr,
			"id":          w.ID,
			"queue_depth": w.QueueDepth,
			"running":     w.Running,
		}
	}
	return map[string]any{
		"ring_members":    c.ring.Members(),
		"workers":         perWorker,
		"dispatch":        c.disp.Counters(),
		"local_fallbacks": fallbacks,
		"last_fallback":   last,
	}
}
