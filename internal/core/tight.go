package core

import (
	"fmt"

	"repro/internal/diff"
	"repro/internal/isa"
	"repro/internal/regfile"
)

// SchemeTight is the tightly merged scheme of §5.2: a single set of
// checkpoints serves both repairs. The mechanism is the E-repair
// mechanism with two changes: the checkpoint selection rule places
// checkpoints at the right boundaries of instructions containing
// conditional branches (so they double as B-repair checkpoints), and a
// miss bit per checkpoint records prediction outcomes. When a
// checkpoint's except and miss are both raised, the miss is processed
// and the exception ignored — the excepting instruction was on the
// wrong path. In this implementation the B-repair fires immediately at
// branch resolution, which squashes the wrong-path operations and
// retracts their exception records, subsuming that rule.
//
// One initial checkpoint is established at (re)start so early
// exceptions are repairable before the first branch.
type SchemeTight struct {
	C int
	// W bounds memory writes per checkpoint range (0 = unlimited). The
	// tight scheme cannot force mid-segment checkpoints (checkpoints
	// live only at branch boundaries), so a store exceeding W stalls
	// until the segment becomes repair-free. Size difference buffers
	// accordingly.
	W int

	win  window
	regs *regfile.File
	mem  diff.MemSystem
	eng  Engine

	blocked  bool
	pendSeq  uint64
	pendPC   int
	pendIsBr bool
	stats    Stats
}

// NewSchemeTight returns a tightly merged scheme with c backup spaces.
func NewSchemeTight(c, w int) *SchemeTight {
	if c < 2 {
		// Theorem 9: a merged mechanism needs at least two backup
		// spaces to avoid draining the active window when establishing
		// checkpoints while continuing along predicted paths.
		panic("core: SchemeTight needs at least two backup spaces (Theorem 9)")
	}
	return &SchemeTight{C: c, W: w, win: newWindow(0, c)}
}

// Name implements Scheme.
func (s *SchemeTight) Name() string { return fmt.Sprintf("tight(c=%d,W=%d)", s.C, s.W) }

// Spaces implements Scheme.
func (s *SchemeTight) Spaces() int { return s.C + 1 }

// RegStackCaps implements Scheme.
func (s *SchemeTight) RegStackCaps() []int { return []int{s.C} }

// Attach implements Scheme.
func (s *SchemeTight) Attach(regs *regfile.File, mem diff.MemSystem, eng Engine) {
	s.regs, s.mem, s.eng = regs, mem, eng
}

// Restart implements Scheme.
func (s *SchemeTight) Restart(pc int, nextSeq uint64) {
	s.win.clear()
	s.regs.Clear()
	s.blocked = false
	if !s.establish(nextSeq-1, pc, 0, false) {
		panic("core: SchemeTight initial checkpoint blocked")
	}
}

// CanIssue implements Scheme.
func (s *SchemeTight) CanIssue(in isa.Inst, _ int) (bool, string) {
	if s.blocked {
		if !s.tryPending() {
			return false, "check blocked: oldest backup space not free"
		}
	}
	if s.W > 0 && in.IsMemWrite() && s.win.newest().Stores >= s.W {
		return false, "write limit W reached in current segment"
	}
	return true, ""
}

// OnIssue implements Scheme: checkpoint after every conditional branch.
func (s *SchemeTight) OnIssue(op OpInfo, nextPC int) {
	n := s.win.newest()
	n.Issued++
	n.Active++
	if op.IsStore {
		n.Stores++
	}
	if !op.IsBranch {
		return
	}
	if s.establish(op.Seq, nextPC, op.Seq, true) {
		return
	}
	s.blocked = true
	s.pendSeq, s.pendPC, s.pendIsBr = op.Seq, nextPC, true
}

func (s *SchemeTight) tryPending() bool {
	if !s.blocked {
		return true
	}
	if s.establish(s.pendSeq, s.pendPC, s.pendSeq, s.pendIsBr) {
		s.blocked = false
		return true
	}
	return false
}

// establish applies the E-style retire rule (oldest must have drained
// and be exception-free) before pushing.
func (s *SchemeTight) establish(bornSeq uint64, pc int, branchSeq uint64, pend bool) bool {
	if s.win.full() {
		old := s.win.oldest()
		if old.Active > 0 || old.Except() || old.Pend {
			return false
		}
		s.win.recycle(s.win.retireOldest())
		s.regs.DropOldest(s.win.stack)
		s.stats.Retired++
		s.mem.Release(s.win.oldest().BornSeq + 1)
	}
	ck := s.win.take()
	ck.BornSeq, ck.PC, ck.BranchSeq, ck.Pend = bornSeq, pc, branchSeq, pend
	s.win.push(ck)
	s.regs.Push(s.win.stack)
	s.stats.Checkpoints++
	return true
}

// Depths implements Scheme.
func (s *SchemeTight) Depths(seq uint64, out []int) {
	out[0] = s.win.depthFor(seq)
}

// OnDeliver implements Scheme.
func (s *SchemeTight) OnDeliver(seq uint64, exc bool) {
	own := s.win.owner(seq)
	if own == nil {
		return
	}
	own.Active--
	if exc {
		own.ExceptSeqs = append(own.ExceptSeqs, seq)
	}
}

// OnBranchResolve implements Scheme: a miss triggers an immediate
// B-repair to the branch's checkpoint.
func (s *SchemeTight) OnBranchResolve(seq uint64, mispredicted bool, actualNext int) bool {
	if s.blocked && s.pendSeq == seq && s.pendIsBr {
		// Resolution before the checkpoint existed; nothing issued
		// after the branch.
		s.blocked = false
		if mispredicted {
			sq := s.eng.SquashAfter(seq)
			s.stats.SquashedOps += len(sq)
			s.mem.Repair(seq + 1)
			s.eng.RedirectFetch(actualNext)
			s.stats.BRepairs++
		}
		return true
	}
	ck, idx := s.win.findBranch(seq)
	if ck == nil {
		return true
	}
	if !mispredicted {
		ck.Pend = false
		return true
	}
	ck.Miss = true
	sq := s.eng.SquashAfter(ck.BornSeq)
	s.stats.SquashedOps += len(sq)
	s.regs.RecallAt(s.win.stack, s.win.depthFromNewest(idx))
	s.mem.Repair(ck.BornSeq + 1)
	s.win.popFrom(idx)
	s.blocked = false
	s.eng.RedirectFetch(actualNext)
	s.stats.BRepairs++
	return true
}

// Squash bookkeeping note: a tight B-repair squashes only operations
// with sequences greater than the repaired checkpoint's BornSeq. Every
// such operation was counted on (and may have recorded exceptions
// against) the repaired checkpoint or a newer one — all popped by the
// repair — because checkpoint segments end exactly at the next
// checkpoint's BornSeq. Surviving checkpoints therefore need no count
// retraction, and the paper's "if both except and miss are true, the
// branch prediction miss is processed and the exception is ignored"
// rule is realised by the wrong-path exception records dying with the
// popped checkpoints.

// Tick implements Scheme: the E-repair trigger.
func (s *SchemeTight) Tick() (bool, error) {
	if old := s.win.oldest(); old != nil && old.Except() {
		sq := s.eng.SquashAfter(old.BornSeq)
		s.stats.SquashedOps += len(sq)
		s.regs.RecallOldest(s.win.stack)
		s.mem.Repair(old.BornSeq + 1)
		s.win.clear()
		s.blocked = false
		s.stats.ERepairs++
		s.eng.EnterPreciseMode(old.PC)
		return true, nil
	}
	s.tryPending()
	return false, nil
}

// Stats implements Scheme.
func (s *SchemeTight) Stats() Stats { return s.stats }

var _ Scheme = (*SchemeTight)(nil)

// Drain implements Scheme.
func (s *SchemeTight) Drain() (bool, error) {
	for _, ck := range s.win.cks {
		if ck.Except() {
			old := s.win.oldest()
			sq := s.eng.SquashAfter(old.BornSeq)
			s.stats.SquashedOps += len(sq)
			s.regs.RecallOldest(s.win.stack)
			s.mem.Repair(old.BornSeq + 1)
			s.win.clear()
			s.blocked = false
			s.stats.ERepairs++
			s.eng.EnterPreciseMode(old.PC)
			return true, nil
		}
	}
	return false, nil
}

// Views implements Inspectable.
func (s *SchemeTight) Views() [][]View { return [][]View{viewsOf(&s.win, true, true)} }

// RewindTargets implements Rewinder.
func (s *SchemeTight) RewindTargets(buf []RewindTarget) []RewindTarget {
	return appendTargets(buf, &s.win, true, true)
}

// RewindTo implements Rewinder.
func (s *SchemeTight) RewindTo(bornSeq uint64) (int, bool) {
	pc, ok := rewindRecall(s.regs, &s.win, bornSeq)
	if !ok {
		return 0, false
	}
	dropAllBackups(s.regs)
	return pc, true
}
