// Package experiments regenerates every figure, table, and quantitative
// claim of the paper as a text table. DESIGN.md carries the experiment
// index (IDs F1–F8, T1, C1–C12); EXPERIMENTS.md records a captured run
// with commentary. cmd/experiments prints them all.
//
// The paper reports no measured numbers ("Simulation and hardware
// design are being conducted"), so the reproduced artefacts are the
// mechanism figures, Table 1, the analytical claims of §2.2/§3.1, and
// the simulation study the paper explicitly calls for (Algorithm 3(a)
// vs 3(b), buffer sizing, scheme comparisons). Shape expectations are
// noted on each table.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Note   string // the paper claim / expected shape, and what we see
	Header []string
	Rows   [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(wrap(t.Note, 74), "\n") {
			fmt.Fprintf(&b, "   %s\n", line)
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintf(&b, "   %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

func wrap(s string, w int) string {
	words := strings.Fields(s)
	var b strings.Builder
	col := 0
	for _, word := range words {
		if col > 0 && col+1+len(word) > w {
			b.WriteByte('\n')
			col = 0
		} else if col > 0 {
			b.WriteByte(' ')
			col++
		}
		b.WriteString(word)
		col += len(word)
	}
	return b.String()
}

// Experiment is a registered experiment generator. Run honours ctx:
// sweep experiments stop dispatching new simulations once it is
// cancelled and unwind with a cancelUnwind panic after in-flight jobs
// drain. Call Run through RunExperiment (or RunAllContext) to get the
// unwind converted back into ctx.Err(); calling Run directly with a
// never-cancelled context (context.Background()) is always safe.
type Experiment struct {
	ID   string
	Name string
	Run  func(ctx context.Context) []*Table // some experiments emit several tables
}

var (
	registry []Experiment
	byID     = map[string]int{} // upper-cased ID -> registry index
	sortOnce sync.Once
	sorted   []Experiment
)

func register(id, name string, run func(ctx context.Context) []*Table) {
	byID[strings.ToUpper(id)] = len(registry)
	registry = append(registry, Experiment{ID: id, Name: name, Run: run})
}

// All returns the registered experiments in ID order. Registration
// happens only in package init functions, so the sorted view is
// computed once and shared (callers must not mutate it).
func All() []Experiment {
	sortOnce.Do(func() {
		sorted = append([]Experiment(nil), registry...)
		sort.Slice(sorted, func(i, j int) bool { return idKey(sorted[i].ID) < idKey(sorted[j].ID) })
	})
	return sorted
}

// kindRank orders the experiment families: figures, table, claims,
// ablations. Unknown families sort last.
var kindRank = [256]uint8{'F': 1, 'T': 2, 'C': 3, 'A': 4}

// idKey orders F1..F8, T1, C1..C12, A1.. naturally: family first, then
// the numeric suffix.
func idKey(id string) int {
	if id == "" {
		return 1 << 30
	}
	rank := int(kindRank[id[0]])
	if rank == 0 {
		rank = 9
	}
	num := 0
	for i := 1; i < len(id); i++ {
		if c := id[i]; c >= '0' && c <= '9' {
			num = num*10 + int(c-'0')
		}
	}
	return rank<<16 | num
}

// ByID returns the experiment with the given ID, case-insensitively.
func ByID(id string) (Experiment, bool) {
	i, ok := byID[strings.ToUpper(id)]
	if !ok {
		return Experiment{}, false
	}
	return registry[i], true
}

// RunAll executes every experiment, writing the tables to w in ID
// order. Experiments run concurrently on the package pool (see
// SetParallelism); the output is byte-identical to a sequential run.
func RunAll(w io.Writer) {
	RunAllContext(context.Background(), w)
}

// RunAllContext is RunAll with cancellation: experiments fan out over
// the package worker pool, and their tables are streamed to w strictly
// in All() order as they become available. Cancelling ctx stops
// dispatching new experiments — and new simulations inside an
// in-flight sweep — and returns after everything drains; the error is
// then ctx.Err(). The writer is only ever touched by one goroutine, so
// any io.Writer works.
func RunAllContext(ctx context.Context, w io.Writer) (err error) {
	all := All()
	results := make([][]*Table, len(all))
	done := make([]chan struct{}, len(all))
	for i := range done {
		done[i] = make(chan struct{})
	}
	emitted := make(chan struct{})
	go func() {
		defer close(emitted)
		for i := range all {
			select {
			case <-done[i]:
				for _, t := range results[i] {
					fmt.Fprintln(w, t.String())
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	// A sweep cancelled mid-flight unwinds with cancelUnwind (re-raised
	// here by Pool.Map after its workers drain); fold it back into the
	// context error. cancelUnwind only fires once ctx is done, so the
	// emitter goroutine is guaranteed to exit.
	defer func() {
		if r := recover(); r != nil {
			cu, ok := r.(cancelUnwind)
			if !ok {
				panic(r)
			}
			<-emitted
			err = cu.err
		}
	}()
	err = defaultPool.Load().Map(ctx, len(all), func(i int) {
		results[i] = all[i].Run(ctx)
		close(done[i])
	})
	<-emitted
	return err
}

// RunExperiment executes one experiment by ID under ctx on the package
// pool, converting a mid-sweep cancellation back into ctx.Err(). This
// is the entry point the serving layer uses for sweep jobs.
func RunExperiment(ctx context.Context, id string) (ts []*Table, err error) {
	e, ok := ByID(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	defer func() {
		if r := recover(); r != nil {
			cu, ok := r.(cancelUnwind)
			if !ok {
				panic(r)
			}
			ts, err = nil, cu.err
		}
	}()
	return e.Run(ctx), nil
}
