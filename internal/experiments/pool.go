package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/prog"
	"repro/internal/workload"
)

// Pool runs independent jobs on a bounded number of goroutines. The
// calling goroutine of Map always executes jobs itself; additional
// workers are admitted by a token channel shared by every Map call on
// the pool. Nested Map calls therefore never deadlock: an inner call
// that finds no free tokens simply runs all of its jobs inline on the
// worker that issued it, and total concurrency stays bounded by the
// pool size no matter how fan-outs nest (RunAll over experiments on the
// outside, per-configuration sweeps on the inside).
type Pool struct {
	extra chan struct{} // one token per worker beyond the callers
}

// NewPool returns a pool allowing up to workers concurrently running
// jobs, counting the goroutine that calls Map. workers <= 0 selects
// GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{extra: make(chan struct{}, workers-1)}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.extra) + 1 }

// Map runs fn(i) for every i in [0, n), distributing indices over the
// caller and however many extra goroutines the pool can admit. Indices
// are dispensed atomically, so each runs exactly once; fn must write
// its result into a caller-owned slot (out[i]) rather than append to
// shared state, which also makes results deterministic regardless of
// scheduling. Map returns once every dispensed job has finished.
//
// If ctx is cancelled, remaining indices are not dispensed and Map
// returns ctx.Err() after in-flight jobs drain. A panic in any job
// stops dispensing and is re-raised on the calling goroutine, matching
// the sequential behaviour of a panicking loop body.
func (p *Pool) Map(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	var (
		next    atomic.Int64
		stop    atomic.Bool
		panicMu sync.Mutex
		panicV  any
	)
	work := func() {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicV == nil {
					panicV = r
				}
				panicMu.Unlock()
				stop.Store(true)
			}
		}()
		for !stop.Load() {
			if ctx.Err() != nil {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
spawn:
	for spawned := 0; spawned < n-1; spawned++ {
		select {
		case p.extra <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.extra }()
				work()
			}()
		default:
			// No free tokens; the caller handles the remaining jobs.
			break spawn
		}
	}
	work()
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
	return ctx.Err()
}

// defaultPool serves the package-level helpers (RunAll and the sweep
// experiments). Swapped wholesale by SetParallelism so in-flight Map
// calls keep their token channel.
var defaultPool atomic.Pointer[Pool]

func init() { defaultPool.Store(NewPool(0)) }

// SetParallelism bounds the number of concurrent simulations run by
// RunAll and the sweep experiments. n <= 0 restores the default,
// GOMAXPROCS; n == 1 makes everything sequential. Call it between
// runs, not during one (a running RunAll keeps its previous bound).
func SetParallelism(n int) { defaultPool.Store(NewPool(n)) }

// Parallelism reports the current bound.
func Parallelism() int { return defaultPool.Load().Workers() }

// cancelUnwind carries a context error out of a cancelled sweep. The
// experiment bodies build their tables assuming every job ran; rather
// than teach each of them to handle partial results, a cancelled
// parMap unwinds the whole experiment with this panic value, which the
// context-owning entry points (RunAllContext, RunExperiment) recover
// and convert back into the error. Pool.Map drains in-flight jobs
// before returning, so the unwind never strands a worker.
type cancelUnwind struct{ err error }

// parMap fans fn out over the package pool. If ctx is cancelled the
// sweep unwinds (see cancelUnwind) after in-flight jobs drain.
func parMap(ctx context.Context, n int, fn func(i int)) {
	if err := defaultPool.Load().Map(ctx, n, fn); err != nil {
		panic(cancelUnwind{err})
	}
}

// runJob is one machine configuration of a sweep. Config fields with
// per-run state (Scheme, Predictor) must be freshly constructed for
// each job; the program may be shared, it is read-only during a run.
type runJob struct {
	name string
	prog *prog.Program
	cfg  machine.Config
}

// kernelJob builds the runJob for a named kernel, panicking on unknown
// names like run.
func kernelJob(name string, cfg machine.Config) runJob {
	k, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	return runJob{name: name, prog: k.Load(), cfg: cfg}
}

// runParallel executes the jobs concurrently on the package pool —
// batch-grouping jobs that share a program (see runJobs) — and returns
// their results in job order, so sweep tables come out byte-identical
// to a sequential run. It panics on simulator errors exactly like run —
// sweeps run known-good configurations. Cancelling ctx unwinds the
// sweep (see cancelUnwind).
func runParallel(ctx context.Context, jobs []runJob) []*machine.Result {
	out := make([]*machine.Result, len(jobs))
	for i, o := range runJobs(ctx, jobs) {
		if o.err != nil {
			panic(fmt.Sprintf("%s on %s: %v", jobs[i].name, jobs[i].cfg.Scheme.Name(), o.err))
		}
		out[i] = o.res
	}
	return out
}
