package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

// The ring must spread keys across members without a pathological
// skew: with 64 virtual points per member, no member should own more
// than ~2x its fair share of a large key population.
func TestRingDistribution(t *testing.T) {
	r := NewRing(0)
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for _, m := range members {
		r.Add(m)
	}
	counts := map[string]int{}
	keys := ringKeys(4000)
	for _, k := range keys {
		owner := r.Owner(k)
		if owner == "" {
			t.Fatalf("no owner for %q", k)
		}
		counts[owner]++
	}
	fair := len(keys) / len(members)
	for _, m := range members {
		if counts[m] == 0 {
			t.Fatalf("member %s owns nothing", m)
		}
		if counts[m] > 2*fair {
			t.Fatalf("member %s owns %d keys, > 2x fair share %d", m, counts[m], fair)
		}
	}
}

// Removing one member must move only the keys it owned: everything
// else keeps its owner (the whole point of consistent hashing — a
// worker death reroutes that worker's sub-jobs, not the cluster's).
func TestRingMinimalMovementOnRemove(t *testing.T) {
	r := NewRing(0)
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for _, m := range members {
		r.Add(m)
	}
	keys := ringKeys(2000)
	before := map[string]string{}
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Remove("http://b:1")
	for _, k := range keys {
		after := r.Owner(k)
		if after == "http://b:1" {
			t.Fatalf("removed member still owns %q", k)
		}
		if before[k] != "http://b:1" && after != before[k] {
			t.Fatalf("key %q moved %s -> %s though its owner survived", k, before[k], after)
		}
	}
	// Adding it back restores the original assignment exactly.
	r.Add("http://b:1")
	for _, k := range keys {
		if got := r.Owner(k); got != before[k] {
			t.Fatalf("after re-add, key %q owned by %s, want %s", k, got, before[k])
		}
	}
}

// Sequence must be deterministic, start at the owner, and list
// distinct members.
func TestRingSequence(t *testing.T) {
	r := NewRing(0)
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	for _, m := range members {
		r.Add(m)
	}
	for _, k := range ringKeys(50) {
		seq := r.Sequence(k, 3)
		if len(seq) != 3 {
			t.Fatalf("Sequence(%q, 3) = %v, want 3 distinct members", k, seq)
		}
		if seq[0] != r.Owner(k) {
			t.Fatalf("Sequence(%q)[0] = %s, want owner %s", k, seq[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("Sequence(%q) repeats %s: %v", k, m, seq)
			}
			seen[m] = true
		}
		again := r.Sequence(k, 3)
		for i := range seq {
			if seq[i] != again[i] {
				t.Fatalf("Sequence(%q) not deterministic: %v vs %v", k, seq, again)
			}
		}
	}
	// Asking for more members than exist returns them all, once each.
	if seq := r.Sequence("anything", 10); len(seq) != 3 {
		t.Fatalf("Sequence over-ask = %v, want all 3 members", seq)
	}
}

// An empty ring owns nothing.
func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if got := r.Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	if seq := r.Sequence("k", 2); len(seq) != 0 {
		t.Fatalf("empty ring sequence = %v, want empty", seq)
	}
}
