// Debug sessions: time-travel debugging over the wire in one file.
// Boots a ckptd server in-process, opens a stateful debug session on
// the bubble-sort kernel, and walks the whole loop a debugger would
// drive: run to a midpoint, list the machine's live checkpoints, rewind
// to one through the scheme's own repair paths, audit the restored
// state against the golden reference trace, and re-run to completion —
// landing on exactly the architectural state a fresh run produces.
// Everything here works identically against a long-lived daemon via
// cmd/ckptdbg.
//
//	go run ./examples/debug
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/session"
)

func main() {
	// A real deployment runs `ckptd`; here the server lives in-process
	// so the example is self-contained.
	srv := service.MustNew(service.Config{Workers: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	cl := client.New("http://" + ln.Addr().String())
	ctx := context.Background()

	// 1. Open a session: the daemon records the program's golden trace
	// (the rewind oracle) and builds a machine with boundary recording
	// enabled. The machine spec is the same one sim jobs use.
	v, err := cl.CreateSession(ctx, client.SessionCreate{
		Workload: "bubble",
		Machine:  service.MachineSpec{Scheme: "tight", C: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %s: %s on %s, golden trace %d steps\n\n", v.ID, v.Program, v.Scheme, v.TraceSteps)

	// 2. Run to a midpoint, streaming progress events (a debugger UI
	// would render these live; ckptdbg prints them).
	fmt.Println("running to cycle 400:")
	if _, err := cl.RunSession(ctx, v.ID, client.RunOpts{ToCycle: 400, Stride: 128},
		func(e session.Event) error {
			fmt.Printf("  [%s] cycle=%-4d retired=%-4d checkpoints=%d\n", e.Type, e.Cycle, e.Retired, e.Ckpts)
			return nil
		}); err != nil {
		log.Fatal(err)
	}

	// 3. The machine's live checkpoints are the legal time-travel
	// targets: each backup space the repair scheme currently holds,
	// joined with the golden boundary it corresponds to.
	cks, err := cl.SessionCheckpoints(ctx, v.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlive checkpoints:")
	var target *uint64
	for _, ck := range cks {
		kind := ""
		if ck.IsE {
			kind += "E"
		}
		if ck.IsB {
			kind += "B"
		}
		fmt.Printf("  seq=%-4d pc=%-3d boundary=%-5d kind=%-2s rewindable=%v %s\n",
			ck.Seq, ck.PC, ck.Steps, kind, ck.Rewindable, ck.Reason)
		if ck.Rewindable && target == nil {
			seq := ck.Seq
			target = &seq
		}
	}
	if target == nil {
		log.Fatal("no rewindable checkpoint")
	}

	// 4. Rewind: the state restoration path IS the repair machinery —
	// the same register recall and memory-system repair an exception
	// would trigger, aimed at a checkpoint the debugger chose.
	info, err := cl.RewindSession(ctx, v.ID, *target, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrewound to seq=%d: pc=%d, golden boundary %d (%d instructions retired)\n",
		info.Seq, info.PC, info.Steps, info.Retired)

	// 5. Audit: after a rewind the machine rests on an architectural
	// boundary, so every register and mapped memory word can be compared
	// against the reference interpreter's state at that step.
	d, err := cl.SessionDivergence(ctx, v.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("divergence audit at boundary %d: diverged=%v mismatches=%d\n", d.Boundary, d.Diverged, len(d.Mismatches))

	// 6. Re-run to completion: the rewound machine re-executes forward
	// and must finish on the same architectural state as a fresh run —
	// the correctness anchor internal/session's equivalence tests pin
	// for every repair scheme.
	if _, err := cl.RunSession(ctx, v.ID, client.RunOpts{}, nil); err != nil {
		log.Fatal(err)
	}
	end, err := cl.Session(ctx, v.ID)
	if err != nil {
		log.Fatal(err)
	}
	d, err = cl.SessionDivergence(ctx, v.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompleted at cycle %d after %d rewind(s): done=%v diverged=%v\n",
		end.Cycle, end.Rewinds, end.Done, d.Diverged)

	// 7. Inspect the result where the kernel left it: bubble sorts 16
	// longwords at 0x1000.
	words, err := cl.SessionMemory(ctx, v.ID, 0x1000, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("sorted array head: ")
	for _, w := range words {
		fmt.Printf("%d ", w.Value)
	}
	fmt.Println()

	if err := cl.CloseSession(ctx, v.ID); err != nil {
		log.Fatal(err)
	}
	if err := srv.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsession closed, daemon drained")
}
