package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/store"
)

// metrics is the daemon's expvar-style instrumentation: monotonic
// counters for the cache and queue decisions the acceptance tests
// assert on, plus exact per-endpoint latency distributions
// (stats.Dist keeps raw samples, so percentiles are order statistics,
// not sketch estimates).
type metrics struct {
	start     time.Time
	insts0    int64              // machine.SimulatedInsts() at daemon start
	batch0    machine.BatchStats // batch counters at daemon start
	submitted atomic.Int64
	hits      atomic.Int64 // answered from the completed-result cache
	coalesced atomic.Int64 // attached to an in-flight execution
	misses    atomic.Int64 // led a new execution
	rejected  atomic.Int64 // shed with 429
	execs     atomic.Int64 // executions actually started by a worker
	execDone  atomic.Int64
	execFail  atomic.Int64
	cancelled atomic.Int64 // jobs cancelled by client or deadline
	// campaignResumes counts campaign executions that restored at
	// least one injection from a persisted progress record.
	campaignResumes atomic.Int64

	mu      sync.Mutex
	latency map[string]*stats.Dist // endpoint pattern -> microseconds
}

func newMetrics() *metrics {
	return &metrics{
		start:   time.Now(),
		insts0:  machine.SimulatedInsts(),
		batch0:  machine.ReadBatchStats(),
		latency: make(map[string]*stats.Dist),
	}
}

func (m *metrics) observe(pattern string, d time.Duration) {
	m.mu.Lock()
	dist, ok := m.latency[pattern]
	if !ok {
		dist = &stats.Dist{}
		m.latency[pattern] = dist
	}
	dist.Add(d.Microseconds())
	m.mu.Unlock()
}

// latencyView summarises one endpoint's latency distribution.
type latencyView struct {
	N      int     `json:"n"`
	P50us  int64   `json:"p50_us"`
	P90us  int64   `json:"p90_us"`
	P99us  int64   `json:"p99_us"`
	Maxus  int64   `json:"max_us"`
	Meanus float64 `json:"mean_us"`
}

// view renders the full metrics document. Queue, cache, and store
// gauges are sampled at call time; counters are monotonic since daemon
// start (store counters since store open).
func (m *metrics) view(q *queue, c *resultCache, jobs *jobSet, st store.Stats) map[string]any {
	uptime := time.Since(m.start).Seconds()
	insts := machine.SimulatedInsts() - m.insts0
	inflight := c.stats()

	m.mu.Lock()
	lat := make(map[string]latencyView, len(m.latency))
	keys := make([]string, 0, len(m.latency))
	for k := range m.latency {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		d := m.latency[k]
		lat[k] = latencyView{
			N:      d.N(),
			P50us:  d.Percentile(50),
			P90us:  d.Percentile(90),
			P99us:  d.Percentile(99),
			Maxus:  d.Max(),
			Meanus: d.Mean(),
		}
	}
	m.mu.Unlock()

	instsPerSec := 0.0
	if uptime > 0 {
		instsPerSec = float64(insts) / uptime
	}
	// Batch-engine counters since daemon start: how the simulation jobs
	// behind this daemon's executions were scheduled (lockstep batch
	// lanes vs pooled single runs), the average batch width, and the
	// average number of live lanes over batch lifetimes.
	bNow, b0 := machine.ReadBatchStats(), m.batch0
	bd := machine.BatchStats{
		Batches:    bNow.Batches - b0.Batches,
		Lanes:      bNow.Lanes - b0.Lanes,
		SingleRuns: bNow.SingleRuns - b0.SingleRuns,
		MaxWidth:   bNow.MaxWidth,
		LaneCycles: bNow.LaneCycles - b0.LaneCycles,
		WallCycles: bNow.WallCycles - b0.WallCycles,
	}
	return map[string]any{
		"uptime_seconds": uptime,
		"queue": map[string]any{
			"depth":    q.Depth(),
			"running":  q.Running(),
			"capacity": cap(q.ch),
		},
		"jobs": map[string]any{
			"submitted": m.submitted.Load(),
			"active":    jobs.active(),
			"rejected":  m.rejected.Load(),
			"cancelled": m.cancelled.Load(),
		},
		"cache": map[string]any{
			"hits":      m.hits.Load(),
			"coalesced": m.coalesced.Load(),
			"misses":    m.misses.Load(),
			"entries":   st.MemEntries,
			"inflight":  inflight,
		},
		"store": map[string]any{
			"mem_hits":         st.MemHits,
			"disk_hits":        st.DiskHits,
			"misses":           st.Misses,
			"mem_entries":      st.MemEntries,
			"mem_bytes":        st.MemBytes,
			"mem_evictions":    st.MemEvictions,
			"disk_entries":     st.DiskEntries,
			"disk_bytes":       st.DiskBytes,
			"disk_evictions":   st.DiskEvictions,
			"disk_writes":      st.DiskWrites,
			"disk_skipped":     st.DiskSkipped,
			"corrupt":          st.Corrupt,
			"campaign_resumes": m.campaignResumes.Load(),
		},
		"executions": map[string]any{
			"started": m.execs.Load(),
			"done":    m.execDone.Load(),
			"failed":  m.execFail.Load(),
		},
		"batch": map[string]any{
			"batches":        bd.Batches,
			"lanes":          bd.Lanes,
			"single_runs":    bd.SingleRuns,
			"max_width":      bd.MaxWidth,
			"avg_width":      bd.AvgWidth(),
			"avg_live_lanes": bd.Occupancy(),
		},
		"sim_insts":         insts,
		"sim_insts_per_sec": instsPerSec,
		"latency_us":        lat,
	}
}
