// Package buildinfo gives every command in this module the same
// -version flag and version string, derived from the Go module build
// metadata (no ldflags stamping required).
//
// Usage, before flag.Parse:
//
//	done := buildinfo.Flag()
//	flag.Parse()
//	done()
package buildinfo

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
)

// Version returns the module version plus VCS revision when the
// binary was built from a checkout, e.g. "(devel) rev 1a2b3c4d dirty".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	if v == "" {
		v = "(devel)"
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		v += " rev " + rev
		if dirty {
			v += " dirty"
		}
	}
	return v
}

// String renders the full one-line version banner for a command.
func String() string {
	return fmt.Sprintf("%s %s (%s, %s/%s)",
		filepath.Base(os.Args[0]), Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

// Flag registers -version on the default FlagSet and returns a
// function to call after flag.Parse: it prints the banner and exits
// when the flag was set, and is a no-op otherwise.
func Flag() func() {
	v := flag.Bool("version", false, "print version and exit")
	return func() {
		if *v {
			fmt.Println(String())
			os.Exit(0)
		}
	}
}
