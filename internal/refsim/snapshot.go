package refsim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/mem"
)

// archSnap is one prebuilt snapshot of a SnapshotSet: the full
// architectural state at a step boundary plus the delta-stream cursors
// at that boundary, so rolling forward from it needs no scan.
type archSnap struct {
	step int
	regs [isa.NumRegs]uint32
	mem  *mem.Memory
	reg  int
	memI int
	mapI int
}

// SnapshotSet is a set of prebuilt architectural snapshots of a trace
// at chosen step boundaries. Where Replay.StateAt pays for a backward
// seek by rebuilding from the program image, a SnapshotSet answers any
// StateAt by cloning the nearest snapshot at or below the query and
// rolling the recorded deltas forward from there — the campaign
// checkpoint-placement pass picks the snapshot steps to minimize the
// expected total roll-forward over an injection set.
//
// A SnapshotSet is immutable after construction and safe for
// concurrent StateAt calls: queries only read the snapshots and return
// independent deep copies.
type SnapshotSet struct {
	t     *Trace
	snaps []archSnap
}

// SnapshotSet prebuilds snapshots at the given step boundaries (values
// are clamped to [0, Steps()], deduplicated, and boundary 0 is always
// included so every query has a snapshot at or below it). Construction
// costs one monotone pass over the trace.
func (t *Trace) SnapshotSet(steps []int) *SnapshotSet {
	set := map[int]bool{0: true}
	for _, s := range steps {
		if s < 0 {
			s = 0
		}
		if s > t.n {
			s = t.n
		}
		set[s] = true
	}
	order := make([]int, 0, len(set))
	for s := range set {
		order = append(order, s)
	}
	sort.Ints(order)

	ss := &SnapshotSet{t: t, snaps: make([]archSnap, 0, len(order))}
	r := t.Replay()
	for _, s := range order {
		st := r.StateAt(s)
		ss.snaps = append(ss.snaps, archSnap{
			step: s,
			regs: st.Regs,
			mem:  st.Mem,
			reg:  r.sReg,
			memI: r.sMemI,
			mapI: r.sMap,
		})
	}
	return ss
}

// Steps returns the snapshot step boundaries, ascending (including the
// implicit boundary 0).
func (ss *SnapshotSet) Steps() []int {
	out := make([]int, len(ss.snaps))
	for i := range ss.snaps {
		out[i] = ss.snaps[i].step
	}
	return out
}

// Base returns the greatest snapshot boundary at or below n — the
// roll-forward distance of StateAt(n) is n-Base(n) steps.
func (ss *SnapshotSet) Base(n int) int {
	return ss.snaps[ss.baseIdx(n)].step
}

func (ss *SnapshotSet) baseIdx(n int) int {
	return sort.Search(len(ss.snaps), func(i int) bool { return ss.snaps[i].step > n }) - 1
}

// StateAt returns a deep copy of the architectural state at step
// boundary n, reconstructed from the nearest snapshot at or below n.
// Panics if n is out of range.
func (ss *SnapshotSet) StateAt(n int) *ArchState {
	if n < 0 || n > ss.t.n {
		panic(fmt.Sprintf("refsim: SnapshotSet.StateAt(%d) out of range [0,%d]", n, ss.t.n))
	}
	sn := &ss.snaps[ss.baseIdx(n)]
	regs := sn.regs
	m := sn.mem.Clone()
	reg, memI, mapI := sn.reg, sn.memI, sn.mapI
	for step := sn.step; step < n; step++ {
		s := ss.t.at(step)
		for ; reg < int(s.regEnd); reg++ {
			d := ss.t.regs.at(reg)
			regs[d.r] = d.v
		}
		for ; memI < int(s.memEnd); memI++ {
			d := ss.t.mems.at(memI)
			m.WriteMasked(d.addr, d.data, d.mask)
		}
		for ; mapI < int(s.mapEnd); mapI++ {
			m.Map(*ss.t.maps.at(mapI), mem.PageSize)
		}
	}
	return &ArchState{Regs: regs, Mem: m}
}

// StepAtRetired returns the smallest step boundary n at which the
// recorded run had architecturally retired at least r instructions
// (clamped to Steps() when r exceeds the run's total). It inverts the
// monotone per-step retirement counts by binary search, mapping a
// machine-side oracle-progress coordinate onto the trace's step axis.
func (t *Trace) StepAtRetired(r int) int {
	if r <= 0 {
		return 0
	}
	idx := sort.Search(t.n, func(i int) bool { return t.at(i).postRetired >= r })
	if idx == t.n {
		return t.n
	}
	return idx + 1
}

// Hash returns the hex SHA-256 digest of the architectural state:
// every register in index order, then every mapped page (number and
// contents) in ascending page order. Two states hash equal iff Regs
// and Mem are Equal — the integrity anchor format campaign resume uses
// to prove a saved progress record was computed against this exact
// golden state.
func (st *ArchState) Hash() string {
	h := sha256.New()
	var buf [4]byte
	for _, v := range st.Regs {
		binary.LittleEndian.PutUint32(buf[:], v)
		h.Write(buf[:])
	}
	for _, pn := range st.Mem.MappedPages() {
		binary.LittleEndian.PutUint32(buf[:], pn)
		h.Write(buf[:])
		base := pn * mem.PageSize
		for off := uint32(0); off < mem.PageSize; off += 4 {
			v, _ := st.Mem.Read32(base + off)
			binary.LittleEndian.PutUint32(buf[:], v)
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// AnchorHashes returns ArchState.Hash at each given step boundary. The
// boundaries may arrive in any order; the hashes come back positionally
// matched, computed in one ascending pass over the trace.
func (t *Trace) AnchorHashes(steps []int) []string {
	idx := make([]int, len(steps))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return steps[idx[a]] < steps[idx[b]] })
	out := make([]string, len(steps))
	r := t.Replay()
	for _, i := range idx {
		out[i] = r.StateAt(steps[i]).Hash()
	}
	return out
}
