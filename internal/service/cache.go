package service

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"repro/internal/store"
)

// entry is one single-flight execution: the set of jobs interested in
// one cache key, the context their combined interest keeps alive, and
// the result they will share. Exactly one queue slot and one worker
// serve an entry no matter how many jobs attach.
type entry struct {
	key  string
	spec Spec // canonical, job-scoped fields zeroed

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	waiters  []*Job
	running  bool
	complete bool
	res      *Result
	err      error
	done     chan struct{}
}

// attach registers a job's interest. If the execution already
// completed (a race against the worker), the job is finished on the
// spot.
func (e *entry) attach(j *Job) {
	e.mu.Lock()
	if e.complete {
		res, err := e.res, e.err
		e.mu.Unlock()
		j.finish(res, err)
		return
	}
	e.waiters = append(e.waiters, j)
	running := e.running
	e.mu.Unlock()
	j.mu.Lock()
	j.entry = e
	j.mu.Unlock()
	if running {
		j.markRunning()
	}
}

// start flags the entry as executing and returns the jobs attached so
// far, so the worker can move them to the running state.
func (e *entry) start() []*Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.running = true
	return append([]*Job(nil), e.waiters...)
}

// detach withdraws a job's interest. When the last interested job
// detaches before completion, the execution context is cancelled: a
// simulation nobody is waiting on unwinds out of the pool instead of
// burning workers.
func (e *entry) detach(j *Job) {
	e.mu.Lock()
	for i, w := range e.waiters {
		if w == j {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			break
		}
	}
	abandon := len(e.waiters) == 0 && !e.complete
	e.mu.Unlock()
	if abandon {
		e.cancel()
	}
}

// finishWaiters marks the entry complete and finishes every attached
// job. Called by the cache under its own lock discipline.
func (e *entry) finishWaiters(res *Result, err error) {
	e.mu.Lock()
	if e.complete {
		e.mu.Unlock()
		return
	}
	e.complete = true
	e.res, e.err = res, err
	waiters := e.waiters
	e.waiters = nil
	close(e.done)
	e.mu.Unlock()
	for _, j := range waiters {
		j.finish(res, err)
	}
	e.cancel() // release the context's timer/goroutine resources
}

// resultCache is the single-flight front of the two-tier result store:
// completed results live in the store (memory LRU over the optional
// disk tier), in-flight executions in the table here. Failed
// executions are never stored (the next submission retries).
type resultCache struct {
	st       *store.Store
	mu       sync.Mutex
	inflight map[string]*entry
}

func newResultCache(st *store.Store) *resultCache {
	return &resultCache{
		st:       st,
		inflight: make(map[string]*entry),
	}
}

// decode unmarshals stored result bytes, rejecting payloads that are
// not this key's result (schema drift across versions, or a foreign
// record such as a campaign progress blob queried via /results).
func decodeResult(key string, data []byte) (*Result, bool) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil || r.Key != key {
		return nil, false
	}
	return &r, true
}

// lookup returns the completed result for key, if stored.
func (c *resultCache) lookup(key string) (*Result, bool) {
	data, ok := c.st.Get(key)
	if !ok {
		return nil, false
	}
	return decodeResult(key, data)
}

// acquire resolves a submission against the store in one atomic step:
// a stored result wins outright; otherwise the caller either joins
// the in-flight execution (leader=false) or creates it (leader=true)
// and must enqueue it. The in-flight check precedes the store probe
// and complete() stores before it unpublishes, both under this lock,
// which closes the race where an execution completes between a lookup
// and a join (that would re-execute a just-stored job). base is the
// server's root context: shutdown cancels every execution derived
// from it.
func (c *resultCache) acquire(base context.Context, key string, spec Spec) (res *Result, e *entry, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.inflight[key]; ok {
		return nil, e, false
	}
	if data, ok := c.st.Get(key); ok {
		if r, ok := decodeResult(key, data); ok {
			return r, nil, false
		}
		// Undecodable under the current schema: evict and recompute.
		c.st.Delete(key)
	}
	ctx, cancel := context.WithCancel(base)
	e = &entry{
		key:    key,
		spec:   spec,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	c.inflight[key] = e
	return nil, e, true
}

// abort removes a leader's entry that never made it into the queue
// (backpressure rejection). The entry must also finish: a coalesced
// follower can acquire it between the leader's acquire and this abort,
// and would otherwise wait forever on an execution nobody enqueued.
// Finishing marks the entry complete, so even an attach that races in
// after the abort resolves immediately with the rejection error.
func (c *resultCache) abort(e *entry, err error) {
	c.mu.Lock()
	delete(c.inflight, e.key)
	c.mu.Unlock()
	e.finishWaiters(nil, err)
}

// complete records an execution's outcome: successes enter the
// content-addressed store (the recompute cost is the execution's own
// elapsed time, so trivially cheap results stay memory-only under the
// store's MinCost threshold), failures are dropped. Either way the
// entry leaves the in-flight table and every attached job is finished.
func (c *resultCache) complete(e *entry, res *Result, err error) {
	c.mu.Lock()
	if err == nil {
		if data, merr := json.Marshal(res); merr == nil {
			c.st.Put(e.key, data, time.Duration(res.ElapsedMS)*time.Millisecond)
		}
	}
	delete(c.inflight, e.key)
	c.mu.Unlock()
	e.finishWaiters(res, err)
}

// stats returns the in-flight execution count.
func (c *resultCache) stats() (inflight int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inflight)
}
