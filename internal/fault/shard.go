package fault

import (
	"context"
	"fmt"

	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/prog"
)

// Campaign sharding: a campaign's executed injection list is a pure
// function of (program, machine config, campaign config) — the plan's
// equivalence-class representatives in deterministic order — so any
// node that rebuilds the plan can execute an interleaved slice of it
// and ship the classifications back. The cluster coordinator fans a
// campaign out as one sub-job per shard and splices the results into a
// Report that is byte-identical to an uninterrupted single-node run:
// merge order cannot matter because every result lands at its plan
// index. Fingerprints (the same planFingerprint that guards resume
// records) reject splicing results from a diverged plan.

// ShardResult is one shard's executed slice of a campaign plan:
// the results for plan indices shard, shard+shards, shard+2*shards, …
// in ascending index order.
type ShardResult struct {
	Fingerprint string      `json:"fingerprint"`
	Shard       int         `json:"shard"`
	Shards      int         `json:"shards"`
	Results     []RunResult `json:"results"`
}

// shardIndices returns the plan indices owned by shard (interleaved
// round-robin, so consecutive — often similar-cost — injections spread
// across shards).
func shardIndices(n, shard, shards int) []int {
	var out []int
	for i := shard; i < n; i += shards {
		out = append(out, i)
	}
	return out
}

// newReportSkeleton assembles the Report header and empty result slots
// for a planned campaign — shared by Run and the shard/merge paths so
// the merged report cannot drift from a single-node run's.
func newReportSkeleton(p *prog.Program, run *campaignRun, rec *recorder, plan *Plan, cc *Config) *Report {
	return &Report{
		Workload:        p.Name,
		Scheme:          run.scheme,
		Seed:            cc.Seed,
		Models:          cc.models(),
		Events:          len(rec.events),
		BaselineCycles:  run.baseline.Stats.Cycles,
		BaselineRepairs: run.repairs,
		Plan:            plan,
		Results:         make([]RunResult, len(plan.Exec)),
	}
}

// RunShard plans the campaign and executes only the shard-th of shards
// interleaved slices of the plan. The plan (and therefore the slice) is
// deterministic, so shards computed on different nodes recombine into
// exactly the results a single node would have produced.
func RunShard(ctx context.Context, p *prog.Program, mk func() machine.Config, cc Config, shard, shards int) (*ShardResult, error) {
	if shards < 1 || shard < 0 || shard >= shards {
		return nil, fmt.Errorf("fault: shard %d of %d out of range", shard, shards)
	}
	run, rec, err := newCampaignRun(p, mk, &cc)
	if err != nil {
		return nil, err
	}
	plan := buildPlan(rec, run.repairs, &cc)
	rep := newReportSkeleton(p, run, rec, plan, &cc)

	idxs := shardIndices(len(plan.Exec), shard, shards)
	out := make([]RunResult, len(idxs))
	pool := experiments.NewPool(cc.Workers)
	if err := pool.Map(ctx, len(idxs), func(j int) {
		i := idxs[j]
		out[j] = run.one(plan.Exec[i], plan.Covers[i])
	}); err != nil {
		return nil, err
	}
	return &ShardResult{
		Fingerprint: planFingerprint(rep, plan),
		Shard:       shard,
		Shards:      shards,
		Results:     out,
	}, nil
}

// ShardMerger rebuilds a campaign's plan and splices shard results into
// a complete Report. The coordinator runs the (cheap) baseline and
// planning passes itself; only the injection executions are remote.
type ShardMerger struct {
	rep    *Report
	fp     string
	filled []bool
}

// NewShardMerger plans the campaign and returns the merge skeleton.
func NewShardMerger(p *prog.Program, mk func() machine.Config, cc Config) (*ShardMerger, error) {
	run, rec, err := newCampaignRun(p, mk, &cc)
	if err != nil {
		return nil, err
	}
	plan := buildPlan(rec, run.repairs, &cc)
	rep := newReportSkeleton(p, run, rec, plan, &cc)
	return &ShardMerger{
		rep:    rep,
		fp:     planFingerprint(rep, plan),
		filled: make([]bool, len(plan.Exec)),
	}, nil
}

// Fingerprint identifies the plan shards must have been executed
// against.
func (m *ShardMerger) Fingerprint() string { return m.fp }

// Executed returns the number of injection runs the plan requires —
// the fan-out sizing input.
func (m *ShardMerger) Executed() int { return len(m.rep.Plan.Exec) }

// Fill splices one shard's results in. Shards may arrive in any order;
// duplicates (a retried sub-job whose first attempt also landed) are
// idempotent because identical plans yield identical classifications.
func (m *ShardMerger) Fill(s *ShardResult) error {
	if s == nil {
		return fmt.Errorf("fault: nil shard result")
	}
	if s.Fingerprint != m.fp {
		return fmt.Errorf("fault: shard %d/%d fingerprint %.12s does not match plan %.12s",
			s.Shard, s.Shards, s.Fingerprint, m.fp)
	}
	idxs := shardIndices(len(m.rep.Plan.Exec), s.Shard, s.Shards)
	if len(idxs) != len(s.Results) {
		return fmt.Errorf("fault: shard %d/%d carries %d results, want %d",
			s.Shard, s.Shards, len(s.Results), len(idxs))
	}
	for j, i := range idxs {
		m.rep.Results[i] = s.Results[j]
		m.filled[i] = true
	}
	return nil
}

// Report returns the merged campaign report, failing if any plan index
// is still unfilled (a lost sub-job must be retried, not papered over).
func (m *ShardMerger) Report() (*Report, error) {
	for i, ok := range m.filled {
		if !ok {
			return nil, fmt.Errorf("fault: merge incomplete: plan index %d (of %d) unfilled", i, len(m.filled))
		}
	}
	return m.rep, nil
}
