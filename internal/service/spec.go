// Package service is the simulation-as-a-service layer: a long-lived
// daemon (cmd/ckptd) that accepts simulation, sweep, and fault-campaign
// jobs over HTTP/JSON and executes them on the internal/experiments
// worker pool.
//
// The paper's evaluation shape — the same schemeE(c)/schemeB(c)
// configurations simulated again and again while parameters sweep — is
// exactly the shape of a batched serving workload, so the layer is
// built around three serving primitives:
//
//   - a bounded asynchronous job queue with per-job states, deadlines,
//     and cancellation that propagates from the client (disconnect or
//     DELETE) down into the simulation pool;
//   - a content-addressed result cache keyed on a canonical hash of the
//     job spec, with single-flight coalescing: N identical in-flight
//     requests run the simulation once and share the bytes;
//   - backpressure: a full queue answers 429 with Retry-After instead
//     of buffering without bound, and shutdown drains what is running.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/prog"
	"repro/internal/rv32"
	"repro/internal/workload"
)

// Job kinds.
const (
	KindSim      = "sim"      // one workload on one machine configuration
	KindSweep    = "sweep"    // one registered experiment (tables F1..C12, A1..)
	KindCampaign = "campaign" // a fault-injection campaign
	// KindBatch is a cluster-internal sub-job: one batch-lockstep group
	// of a sweep (one program, N machine configurations) shipped to a
	// worker. Clients can submit one directly, but the coordinator is
	// the intended producer.
	KindBatch = "batch"
)

// Spec describes one job. The zero value is invalid; Canonicalize
// fills defaults and validates. Specs that canonicalize identically are
// the same job: the daemon hashes the canonical form into the result
// cache key, so submitting {"kind":"sim","workload":"fib"} and the
// fully spelled-out default configuration hits the same cache entry.
type Spec struct {
	Kind string `json:"kind"`
	// Workload names a built-in kernel (sim and campaign jobs).
	Workload string `json:"workload,omitempty"`
	// Program is the other program source for sim and campaign jobs: a
	// compiled rv32 binary, referenced from the embedded corpus by name
	// or shipped inline. Mutually exclusive with Workload.
	Program *ProgramSpec `json:"program,omitempty"`
	// Machine configures the simulated machine (sim and campaign jobs;
	// sweeps carry their own configurations).
	Machine MachineSpec `json:"machine"`
	// Experiment is the experiment ID a sweep job runs (e.g. "C7").
	Experiment string `json:"experiment,omitempty"`
	// Campaign parameterises campaign jobs.
	Campaign *CampaignSpec `json:"campaign,omitempty"`
	// Batch carries a batch sub-job's payload (kind "batch" only).
	Batch *BatchSpec `json:"batch,omitempty"`
	// TimeoutMS is the per-job deadline in milliseconds (0 = none). It
	// scopes the submitting job, not the result, so it is excluded from
	// the cache key.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// MachineSpec mirrors cmd/ckptsim's machine flags. Zero fields take
// the same defaults; fields the selected scheme does not consume are
// zeroed during canonicalization so they cannot split the cache.
type MachineSpec struct {
	Scheme    string `json:"scheme,omitempty"`     // e, b, tight, loose, direct (default tight)
	C         int    `json:"c,omitempty"`          // backup spaces (e, b, tight; default 4)
	CE        int    `json:"ce,omitempty"`         // E spaces (loose, direct; default 2)
	CB        int    `json:"cb,omitempty"`         // B spaces (loose, direct; default 4)
	Dist      int    `json:"dist,omitempty"`       // instructions per E checkpoint (default 16)
	W         int    `json:"w,omitempty"`          // max memory writes per range (0 = unlimited)
	Mem       string `json:"mem,omitempty"`        // 3a, 3b, forward (default 3b)
	BufferCap int    `json:"buffer_cap,omitempty"` // difference buffer entries (0 = unbounded)
	Predictor string `json:"predictor,omitempty"`  // default bimodal; cleared when not speculating
	Speculate *bool  `json:"speculate,omitempty"`  // default: true unless scheme e
}

// ProgramSpec selects a compiled program. Kind "rv32" is the only kind
// today: Name references an embedded corpus binary (equivalent to
// workload "rv32:<name>" — the canonical form collapses it to exactly
// that, so both spellings share a cache entry), while Data carries an
// inline image (flat binary or ELF32, base64 over JSON) whose bytes
// become part of the cache key.
type ProgramSpec struct {
	Kind string `json:"kind"`
	Name string `json:"name,omitempty"`
	Data []byte `json:"data,omitempty"`
}

// CampaignSpec parameterises a fault-injection campaign job.
type CampaignSpec struct {
	Seed int64 `json:"seed,omitempty"`
	// Models selects fault models by name; empty means all, and the
	// canonical form always spells the full sorted list out so "all by
	// default" and "all by name" share a cache entry.
	Models   []string `json:"models,omitempty"`
	Stride   int      `json:"stride,omitempty"`    // default 1
	MaxWords int      `json:"max_words,omitempty"` // default 8
	// Shard/Shards select one interleaved slice of the campaign plan
	// (cluster sub-jobs). Shards <= 1 means the whole campaign; the
	// canonical form zeroes both in that case, so whole-campaign specs
	// hash exactly as they did before sharding existed.
	Shard  int `json:"shard,omitempty"`
	Shards int `json:"shards,omitempty"`
}

// Canonicalize validates the spec and returns its canonical form:
// defaults filled in, names normalized, and every field the job cannot
// observe zeroed. Canonical specs marshal to canonical JSON (fixed
// field order), which is what Key hashes.
func (s Spec) Canonicalize() (Spec, error) {
	c := s
	c.Kind = strings.ToLower(strings.TrimSpace(c.Kind))
	switch c.Kind {
	case KindSim:
		c.Experiment, c.Campaign, c.Batch = "", nil, nil
		if err := c.canonProgramSource(); err != nil {
			return c, err
		}
		if err := c.Machine.canonicalize(); err != nil {
			return c, err
		}
	case KindSweep:
		c.Workload, c.Program, c.Campaign, c.Batch = "", nil, nil, nil
		c.Machine = MachineSpec{}
		e, ok := experiments.ByID(strings.TrimSpace(c.Experiment))
		if !ok {
			return c, fmt.Errorf("service: unknown experiment %q", c.Experiment)
		}
		c.Experiment = e.ID // registry casing is canonical
	case KindCampaign:
		c.Experiment, c.Batch = "", nil
		if err := c.canonProgramSource(); err != nil {
			return c, err
		}
		if err := c.Machine.canonicalize(); err != nil {
			return c, err
		}
		cc := CampaignSpec{}
		if c.Campaign != nil {
			cc = *c.Campaign
		}
		if err := cc.canonicalize(); err != nil {
			return c, err
		}
		c.Campaign = &cc
	case KindBatch:
		c.Workload, c.Experiment, c.Campaign = "", "", nil
		c.Program = nil
		c.Machine = MachineSpec{}
		if c.Batch == nil {
			return c, fmt.Errorf("service: batch job needs a batch payload")
		}
		// Validate by decoding: the payload must reconstruct a runnable
		// program and configs, or the worker would fail at execute time.
		if _, err := c.Batch.program(); err != nil {
			return c, err
		}
		if len(c.Batch.Configs) == 0 {
			return c, fmt.Errorf("service: batch job has no configs")
		}
		for i, cb := range c.Batch.Configs {
			if _, err := cb.config(); err != nil {
				return c, fmt.Errorf("service: batch config %d: %w", i, err)
			}
		}
	case "":
		return c, fmt.Errorf("service: job kind missing (want %s, %s, or %s)", KindSim, KindSweep, KindCampaign)
	default:
		return c, fmt.Errorf("service: unknown job kind %q", c.Kind)
	}
	if c.TimeoutMS < 0 {
		return c, fmt.Errorf("service: negative timeout_ms %d", c.TimeoutMS)
	}
	return c, nil
}

// canonProgramSource canonicalizes the job's program source: exactly
// one of Workload (a built-in kernel) or Program (a compiled rv32
// binary). Corpus name references fold into the workload namespace so
// either spelling lands on one cache entry; inline images are
// validated by actually loading them (a malformed binary fails at
// submit, not deep inside a worker) and their bytes stay in the
// canonical form, content-addressing the cache on the program itself.
func (s *Spec) canonProgramSource() error {
	if s.Program == nil {
		return s.canonWorkload()
	}
	if s.Workload != "" {
		return fmt.Errorf("service: %s job has both a workload and a program (want exactly one)", s.Kind)
	}
	p := *s.Program
	p.Kind = strings.ToLower(strings.TrimSpace(p.Kind))
	if p.Kind != "rv32" {
		return fmt.Errorf("service: unknown program kind %q (want rv32)", p.Kind)
	}
	p.Name = strings.ToLower(strings.TrimSpace(p.Name))
	if len(p.Data) == 0 {
		if p.Name == "" {
			return fmt.Errorf("service: rv32 program needs a corpus name or inline data (corpus: %s)",
				strings.Join(rv32.CorpusNames(), ", "))
		}
		s.Workload = "rv32:" + p.Name
		s.Program = nil
		return s.canonWorkload()
	}
	if p.Name == "" {
		p.Name = "inline"
	}
	if _, err := rv32.LoadProgram(p.Name, p.Data); err != nil {
		return fmt.Errorf("service: %v", err)
	}
	s.Program = &p
	return nil
}

func (s *Spec) canonWorkload() error {
	s.Workload = strings.ToLower(strings.TrimSpace(s.Workload))
	if s.Workload == "" {
		return fmt.Errorf("service: %s job needs a workload (one of %s)",
			s.Kind, strings.Join(workload.KernelNames(), ", "))
	}
	if _, err := workload.ByName(s.Workload); err != nil {
		return fmt.Errorf("service: %v", err)
	}
	return nil
}

func (m *MachineSpec) canonicalize() error {
	m.Scheme = strings.ToLower(strings.TrimSpace(m.Scheme))
	if m.Scheme == "" {
		m.Scheme = "tight"
	}
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	switch m.Scheme {
	case "e":
		def(&m.C, 4)
		def(&m.Dist, 16)
		m.CE, m.CB = 0, 0
	case "b":
		def(&m.C, 4)
		m.CE, m.CB, m.Dist, m.W = 0, 0, 0, 0
	case "tight":
		def(&m.C, 4)
		m.CE, m.CB, m.Dist = 0, 0, 0
	case "loose":
		def(&m.CE, 2)
		def(&m.CB, 4)
		def(&m.Dist, 16)
		m.C, m.W = 0, 0
	case "direct":
		def(&m.CE, 2)
		def(&m.CB, 4)
		def(&m.Dist, 16)
		m.C = 0
	default:
		return fmt.Errorf("service: unknown scheme %q (want e, b, tight, loose, direct)", m.Scheme)
	}
	if m.C < 0 || m.CE < 0 || m.CB < 0 || m.Dist < 0 || m.W < 0 || m.BufferCap < 0 {
		return fmt.Errorf("service: negative machine parameter in %+v", *m)
	}
	if m.Scheme == "tight" && m.C < 2 {
		return fmt.Errorf("service: scheme tight needs c >= 2 (Theorem 9), got %d", m.C)
	}

	m.Mem = strings.ToLower(strings.TrimSpace(m.Mem))
	if m.Mem == "" {
		m.Mem = "3b"
	}
	switch m.Mem {
	case "3a", "3b", "forward":
	default:
		return fmt.Errorf("service: unknown memory system %q (want 3a, 3b, forward)", m.Mem)
	}

	// SchemeE issues past unresolved branches only when it may not; the
	// pure E machine is non-speculative (the same rule ckptsim
	// enforces). Everything else speculates by default.
	spec := m.Scheme != "e"
	if m.Speculate != nil {
		spec = *m.Speculate
	}
	if spec && m.Scheme == "e" {
		return fmt.Errorf("service: scheme e is only safe non-speculative (speculate must be false)")
	}
	m.Speculate = &spec
	if !spec {
		m.Predictor = "" // never consulted; don't split the cache on it
	} else {
		m.Predictor = strings.ToLower(strings.TrimSpace(m.Predictor))
		if m.Predictor == "" {
			m.Predictor = "bimodal"
		}
		if _, err := newPredictor(m.Predictor); err != nil {
			return err
		}
	}
	return nil
}

func (c *CampaignSpec) canonicalize() error {
	if c.Seed == 0 {
		c.Seed = 1987 // the seed faultcamp ships with
	}
	if c.Stride == 0 {
		c.Stride = 1
	}
	if c.Stride < 0 {
		return fmt.Errorf("service: negative campaign stride %d", c.Stride)
	}
	if c.MaxWords == 0 {
		c.MaxWords = 8
	}
	if c.MaxWords < 0 {
		return fmt.Errorf("service: negative campaign max_words %d", c.MaxWords)
	}
	known := map[string]bool{}
	for _, m := range fault.Models() {
		known[m.String()] = true
	}
	if len(c.Models) == 0 {
		for _, m := range fault.Models() {
			c.Models = append(c.Models, m.String())
		}
	} else {
		// Clone before normalizing in place: the caller's shallow copy
		// shares the backing array, and canonicalization of the same
		// spec must be safe from concurrent goroutines (shard fan-out
		// canonicalizes N copies of one parent spec).
		c.Models = append([]string(nil), c.Models...)
	}
	for i, name := range c.Models {
		c.Models[i] = strings.ToLower(strings.TrimSpace(name))
		if !known[c.Models[i]] {
			return fmt.Errorf("service: unknown fault model %q", name)
		}
	}
	sort.Strings(c.Models)
	c.Models = compactStrings(c.Models)
	if c.Shards <= 1 {
		// Whole campaign: zero both so pre-sharding cache keys hold.
		c.Shard, c.Shards = 0, 0
	} else if c.Shard < 0 || c.Shard >= c.Shards {
		return fmt.Errorf("service: campaign shard %d of %d out of range", c.Shard, c.Shards)
	}
	return nil
}

func compactStrings(ss []string) []string {
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// Key canonicalizes the spec and returns its content-addressed cache
// key — hex SHA-256 over the canonical JSON with the job-scoped fields
// (timeout) zeroed — alongside the canonical spec.
func (s Spec) Key() (string, Spec, error) {
	c, err := s.Canonicalize()
	if err != nil {
		return "", c, err
	}
	h := c
	h.TimeoutMS = 0
	b, err := json.Marshal(h)
	if err != nil {
		return "", c, fmt.Errorf("service: marshal spec: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), c, nil
}

// program loads the spec's program source (canonical specs only).
// Inline rv32 images go through the content-hash memo in rv32, so
// resubmissions of one binary share a single translated *Program (and
// with it the memoized reference trace).
func (s Spec) program() (*prog.Program, error) {
	if s.Program != nil {
		return rv32.LoadProgram(s.Program.Name, s.Program.Data)
	}
	k, err := workload.ByName(s.Workload)
	if err != nil {
		return nil, err
	}
	return k.Load(), nil
}

// machineConfig builds a fresh machine.Config from a canonical
// MachineSpec. Schemes and predictors are stateful, so every run needs
// its own.
func (m MachineSpec) machineConfig() (machine.Config, error) {
	cfg := machine.Config{BufferCap: m.BufferCap}
	switch m.Scheme {
	case "e":
		cfg.Scheme = core.NewSchemeE(m.C, m.Dist, m.W)
	case "b":
		cfg.Scheme = core.NewSchemeB(m.C)
	case "tight":
		cfg.Scheme = core.NewSchemeTight(m.C, m.W)
	case "loose":
		cfg.Scheme = core.NewSchemeLoose(m.CE, m.CB, m.Dist)
	case "direct":
		cfg.Scheme = core.NewSchemeDirect(m.CE, m.CB, m.Dist, m.W)
	default:
		return cfg, fmt.Errorf("service: unknown scheme %q", m.Scheme)
	}
	switch m.Mem {
	case "3a":
		cfg.MemSystem = machine.MemBackward3a
	case "3b":
		cfg.MemSystem = machine.MemBackward3b
	case "forward":
		cfg.MemSystem = machine.MemForward
	}
	cfg.Speculate = m.Speculate != nil && *m.Speculate
	if cfg.Speculate {
		p, err := newPredictor(m.Predictor)
		if err != nil {
			return cfg, err
		}
		cfg.Predictor = p
	}
	return cfg, nil
}

func newPredictor(name string) (bpred.Predictor, error) {
	switch name {
	case "nottaken":
		return bpred.NewNotTaken(), nil
	case "taken":
		return bpred.NewTaken(), nil
	case "btfn":
		return bpred.NewBTFN(), nil
	case "bimodal":
		return bpred.NewBimodal(1024), nil
	case "gshare":
		return bpred.NewGShare(4096, 8), nil
	case "oracle":
		return bpred.NewOracle(), nil
	default:
		return nil, fmt.Errorf("service: unknown predictor %q (want nottaken, taken, btfn, bimodal, gshare, oracle)", name)
	}
}
