// Package bpred implements the branch predictors used by the machines.
//
// The checkpoint repair paper treats the predictor as a parameter: its
// §2.2 arithmetic assumes "a microengine implementing branch prediction
// correctly predicts branches 85% of the time" with one conditional
// branch every four instructions, concluding that a B-repair occurs
// every 28 instructions on average. The Synthetic predictor reproduces
// exactly that parameterisation (a target hit ratio enforced with a
// seeded coin against the oracle outcome), while the table-driven
// predictors (bimodal, gshare) provide realistic behaviour for the
// kernel workloads.
//
// Only conditional-branch direction is predicted. Branch targets in this
// ISA are static, so no BTB is modelled; indirect jumps (JR/JALR) stall
// the issue unit until they resolve.
package bpred

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
)

// OracleHint carries the architecturally correct outcome of the branch
// being predicted, when the machine knows it at issue time (it does
// while issuing on the correct path, courtesy of the shadow
// interpreter). Table-driven predictors ignore it; the Oracle and
// Synthetic predictors consume it.
type OracleHint struct {
	Known bool
	Taken bool
}

// Predictor predicts conditional branch directions.
type Predictor interface {
	// Name identifies the predictor in reports.
	Name() string
	// Predict returns the predicted direction of the conditional branch
	// in at instruction index pc.
	Predict(pc int, in isa.Inst, oracle OracleHint) bool
	// Update trains the predictor with a resolved outcome. Machines call
	// it only for correct-path branches, mirroring hardware that repairs
	// predictor state on squash.
	Update(pc int, taken bool)
	// Reset returns the predictor to its initial state.
	Reset()
}

// --- Static predictors ---

type static struct {
	name  string
	taken bool
}

// NewNotTaken returns a predictor that always predicts not-taken.
func NewNotTaken() Predictor { return &static{name: "static-not-taken"} }

// NewTaken returns a predictor that always predicts taken.
func NewTaken() Predictor { return &static{name: "static-taken", taken: true} }

func (s *static) Name() string                           { return s.name }
func (s *static) Predict(int, isa.Inst, OracleHint) bool { return s.taken }
func (s *static) Update(int, bool)                       {}
func (s *static) Reset()                                 {}

// btfn predicts backward branches taken and forward branches not-taken —
// the classic loop heuristic.
type btfn struct{}

// NewBTFN returns a backward-taken / forward-not-taken predictor.
func NewBTFN() Predictor { return btfn{} }

func (btfn) Name() string { return "btfn" }
func (btfn) Predict(_ int, in isa.Inst, _ OracleHint) bool {
	return in.Imm < 0
}
func (btfn) Update(int, bool) {}
func (btfn) Reset()           {}

// --- Bimodal two-bit counters ---

type bimodal struct {
	counters []uint8 // 2-bit saturating, initialised weakly taken
	mask     int
}

// NewBimodal returns a table of 2-bit saturating counters indexed by PC.
// size must be a power of two.
func NewBimodal(size int) Predictor {
	if size <= 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("bpred: bimodal size %d not a power of two", size))
	}
	b := &bimodal{counters: make([]uint8, size), mask: size - 1}
	b.Reset()
	return b
}

func (b *bimodal) Name() string { return fmt.Sprintf("bimodal-%d", len(b.counters)) }

func (b *bimodal) Predict(pc int, _ isa.Inst, _ OracleHint) bool {
	return b.counters[pc&b.mask] >= 2
}

func (b *bimodal) Update(pc int, taken bool) {
	c := &b.counters[pc&b.mask]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

func (b *bimodal) Reset() {
	for i := range b.counters {
		b.counters[i] = 2 // weakly taken
	}
}

// --- GShare ---

type gshare struct {
	counters []uint8
	mask     int
	hist     int
	histBits int
}

// NewGShare returns a global-history predictor: the counter table is
// indexed by PC XOR the global branch history. size must be a power of
// two; histBits is the history length.
func NewGShare(size, histBits int) Predictor {
	if size <= 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("bpred: gshare size %d not a power of two", size))
	}
	g := &gshare{counters: make([]uint8, size), mask: size - 1, histBits: histBits}
	g.Reset()
	return g
}

func (g *gshare) Name() string {
	return fmt.Sprintf("gshare-%d-h%d", len(g.counters), g.histBits)
}

func (g *gshare) index(pc int) int { return (pc ^ g.hist) & g.mask }

func (g *gshare) Predict(pc int, _ isa.Inst, _ OracleHint) bool {
	return g.counters[g.index(pc)] >= 2
}

func (g *gshare) Update(pc int, taken bool) {
	c := &g.counters[g.index(pc)]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
	g.hist = (g.hist << 1) & (1<<g.histBits - 1)
	if taken {
		g.hist |= 1
	}
}

func (g *gshare) Reset() {
	for i := range g.counters {
		g.counters[i] = 2
	}
	g.hist = 0
}

// --- Oracle ---

type oracle struct{ fallback Predictor }

// NewOracle returns a perfect predictor for correct-path branches. On
// wrong paths, where no oracle outcome exists, it falls back to
// not-taken (the choice is irrelevant: wrong-path work is discarded).
func NewOracle() Predictor { return &oracle{fallback: NewNotTaken()} }

func (o *oracle) Name() string { return "oracle" }

func (o *oracle) Predict(pc int, in isa.Inst, h OracleHint) bool {
	if h.Known {
		return h.Taken
	}
	return o.fallback.Predict(pc, in, h)
}

func (o *oracle) Update(int, bool) {}
func (o *oracle) Reset()           {}

// --- Synthetic fixed-accuracy ---

type synthetic struct {
	hitRatio float64
	seed     int64
	rng      *rand.Rand
}

// NewSynthetic returns a predictor that is correct with probability
// hitRatio on correct-path branches (decided by a deterministic seeded
// coin), reproducing the paper's "85% hit ratio" parameterisation. On
// wrong paths it predicts not-taken.
func NewSynthetic(hitRatio float64, seed int64) Predictor {
	if hitRatio < 0 || hitRatio > 1 {
		panic(fmt.Sprintf("bpred: hit ratio %v out of [0,1]", hitRatio))
	}
	s := &synthetic{hitRatio: hitRatio, seed: seed}
	s.Reset()
	return s
}

func (s *synthetic) Name() string { return fmt.Sprintf("synthetic-%.0f%%", s.hitRatio*100) }

func (s *synthetic) Predict(_ int, _ isa.Inst, h OracleHint) bool {
	if !h.Known {
		return false
	}
	if s.rng.Float64() < s.hitRatio {
		return h.Taken
	}
	return !h.Taken
}

func (s *synthetic) Update(int, bool) {}

func (s *synthetic) Reset() { s.rng = rand.New(rand.NewSource(s.seed)) }

// --- Accuracy tracking wrapper ---

// Tracked wraps a predictor and counts prediction accuracy as observed
// through Update calls paired with the preceding Predict for the same
// PC. Machines use it to report achieved hit ratios in experiments.
type Tracked struct {
	P        Predictor
	Predicts int
	// last is indexed by PC, grown on demand: 0 = no prediction
	// recorded, 1 = predicted not-taken, 2 = predicted taken. Branch
	// PCs are bounded by the program length, so a flat slice replaces
	// the map this used to be — Predict/Update sit on the per-branch
	// hot path of every simulated machine.
	last      []uint8
	Correct   int
	Incorrect int
}

// NewTracked wraps p with accuracy accounting.
func NewTracked(p Predictor) *Tracked {
	return &Tracked{P: p}
}

// Name implements Predictor.
func (t *Tracked) Name() string { return t.P.Name() }

// Predict implements Predictor.
func (t *Tracked) Predict(pc int, in isa.Inst, h OracleHint) bool {
	d := t.P.Predict(pc, in, h)
	t.Predicts++
	if pc >= 0 {
		if pc >= len(t.last) {
			t.last = append(t.last, make([]uint8, pc+1-len(t.last))...)
		}
		if d {
			t.last[pc] = 2
		} else {
			t.last[pc] = 1
		}
	}
	return d
}

// Update implements Predictor.
func (t *Tracked) Update(pc int, taken bool) {
	if pc >= 0 && pc < len(t.last) {
		if v := t.last[pc]; v != 0 {
			if (v == 2) == taken {
				t.Correct++
			} else {
				t.Incorrect++
			}
		}
	}
	t.P.Update(pc, taken)
}

// Reset implements Predictor.
func (t *Tracked) Reset() {
	t.P.Reset()
	t.Predicts, t.Correct, t.Incorrect = 0, 0, 0
	clear(t.last)
}

// Accuracy returns the observed hit ratio over resolved correct-path
// branches, or 0 if none resolved.
func (t *Tracked) Accuracy() float64 {
	n := t.Correct + t.Incorrect
	if n == 0 {
		return 0
	}
	return float64(t.Correct) / float64(n)
}
