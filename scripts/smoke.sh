#!/bin/sh
# Serving-layer smoke test: start ckptd on a free port, run the
# ckptload smoke assertions against it (0 failed jobs, >=1 cache hit,
# single-flight coalescing: N identical requests -> 1 execution), then
# SIGTERM the daemon and require a clean drain and exit code 0.
#
# Used by `make smoke` (and therefore `make ci`).
set -eu

workdir=$(mktemp -d)
addrfile="$workdir/ckptd.addr"
logfile="$workdir/ckptd.log"
status=1

cleanup() {
    if [ -n "${ckptd_pid:-}" ] && kill -0 "$ckptd_pid" 2>/dev/null; then
        kill -TERM "$ckptd_pid" 2>/dev/null || true
        wait "$ckptd_pid" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ]; then
        echo "--- ckptd log ---" >&2
        cat "$logfile" >&2 || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/ckptd" ./cmd/ckptd
go build -o "$workdir/ckptload" ./cmd/ckptload

"$workdir/ckptd" -addr 127.0.0.1:0 -addrfile "$addrfile" -workers 2 \
    >"$logfile" 2>&1 &
ckptd_pid=$!

# Wait (up to ~5s) for the daemon to publish its bound address.
i=0
while [ ! -s "$addrfile" ]; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "smoke: ckptd never wrote $addrfile" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$addrfile")
echo "smoke: ckptd on $addr"

# ckptload -smoke exits non-zero on any failed job, missing cache hit,
# or broken single-flight coalescing.
"$workdir/ckptload" -addr "http://$addr" -smoke -o "$workdir/BENCH_smoke.json" \
    >"$workdir/ckptload.out" 2>&1 || {
    echo "smoke: ckptload failed" >&2
    cat "$workdir/ckptload.out" >&2
    exit 1
}

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$ckptd_pid"
if ! wait "$ckptd_pid"; then
    echo "smoke: ckptd did not exit cleanly on SIGTERM" >&2
    exit 1
fi
ckptd_pid=""

grep -q "drained clean" "$logfile" || {
    echo "smoke: ckptd log missing clean-drain marker" >&2
    exit 1
}

status=0
echo "smoke: ok (0 failed jobs, single-flight verified, clean drain)"
