package experiments

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/regfile"
)

// scriptEngine is a minimal core.Engine for driving schemes through
// scripted sequences (the Figure 3/4/7 snapshots are staged scenarios,
// not full machine runs).
type scriptEngine struct {
	inflight []core.OpInfo
	precise  []int
}

func (e *scriptEngine) SquashAfter(seq uint64) []core.OpInfo {
	var out []core.OpInfo
	kept := e.inflight[:0]
	for _, op := range e.inflight {
		if op.Seq > seq {
			out = append(out, op)
		} else {
			kept = append(kept, op)
		}
	}
	e.inflight = kept
	return out
}
func (e *scriptEngine) RedirectFetch(int)       {}
func (e *scriptEngine) EnterPreciseMode(pc int) { e.precise = append(e.precise, pc) }

// script drives a scheme without a machine.
type script struct {
	s    core.Scheme
	eng  *scriptEngine
	mem  diff.MemSystem
	regs *regfile.File
	seq  uint64
}

func newScript(s core.Scheme, mem diff.MemSystem) *script {
	sc := &script{s: s, eng: &scriptEngine{}, mem: mem}
	sc.regs = regfile.NewStacks(s.RegStackCaps()...)
	s.Attach(sc.regs, mem, sc.eng)
	s.Restart(0, 1)
	sc.seq = 1
	return sc
}

// issue issues n plain operations starting at pc.
func (sc *script) issue(pc int, n int) {
	for i := 0; i < n; i++ {
		op := core.OpInfo{Seq: sc.seq, PC: pc + i}
		if ok, _ := sc.s.CanIssue(isa.Inst{Op: isa.OpADD}, pc+i); !ok {
			return
		}
		sc.seq++
		sc.eng.inflight = append(sc.eng.inflight, op)
		sc.s.OnIssue(op, pc+i+1)
	}
}

// branch issues a conditional branch at pc predicted to fall through.
func (sc *script) branch(pc int) uint64 {
	op := core.OpInfo{Seq: sc.seq, PC: pc, IsBranch: true}
	sc.seq++
	sc.eng.inflight = append(sc.eng.inflight, op)
	sc.s.OnIssue(op, pc+1)
	return op.Seq
}

// finish delivers the n oldest in-flight operations.
func (sc *script) finish(n int) {
	for i := 0; i < n && len(sc.eng.inflight) > 0; i++ {
		op := sc.eng.inflight[0]
		sc.eng.inflight = sc.eng.inflight[1:]
		sc.s.OnDeliver(op.Seq, false)
	}
	sc.s.Tick()
}

func (sc *script) verify(branchSeq uint64, next int) {
	sc.s.OnBranchResolve(branchSeq, false, next)
	// Remove the branch from the in-flight set.
	for i, op := range sc.eng.inflight {
		if op.Seq == branchSeq {
			sc.eng.inflight = append(sc.eng.inflight[:i], sc.eng.inflight[i+1:]...)
			break
		}
	}
	sc.s.OnDeliver(branchSeq, false)
	sc.s.Tick()
}

// plainMem returns a no-checkpointing memory system over a fresh
// mapped page, for scripted scenarios that never repair memory.
func plainMem() diff.MemSystem {
	m := mem.New()
	m.Map(0, mem.PageSize)
	return diff.NewPlain(cache.MustNew(cache.DefaultConfig, m))
}
