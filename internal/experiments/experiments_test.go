package experiments

import (
	"context"
	"math"
	"strconv"
	"strings"
	"testing"
)

// These tests pin the paper's claims as assertions, not just printouts:
// if a change to the mechanisms breaks a shape the paper predicts, the
// suite fails.

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d)", tab.ID, row, col)
	}
	return tab.Rows[row][col]
}

func num(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(cell(t, tab, row, col), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", tab.ID, row, col, s)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "T1",
		"C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8", "C9", "C10", "C11", "C12",
		"A1", "A2", "A3", "A4", "A5", "A6"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("missing experiment %s", id)
		}
	}
	// Ordering: figures, table, claims.
	if all[0].ID != "F1" || all[8].ID != "T1" || all[9].ID != "C1" || all[len(all)-1].ID != "A6" {
		t.Errorf("ordering: %v...", all[0].ID)
	}
}

func TestEveryExperimentRenders(t *testing.T) {
	for _, e := range All() {
		tables := e.Run(context.Background())
		if len(tables) == 0 {
			t.Errorf("%s produced no tables", e.ID)
		}
		for _, tab := range tables {
			s := tab.String()
			if !strings.Contains(s, tab.ID) || len(tab.Rows) == 0 {
				t.Errorf("%s: empty or unlabelled table", e.ID)
			}
		}
	}
}

// TestC1Paper28 pins the paper's headline arithmetic: at 85% accuracy
// and b=4, one B-repair per ~28 instructions (analytic 26.7 for our
// exact b), and the measured value within 15%.
func TestC1Paper28(t *testing.T) {
	tab := c1()
	// Row 1 is hit=85% with the b=4 workload.
	if got := cell(t, tab, 1, 0); got != "85%" {
		t.Fatalf("row layout changed: %q", got)
	}
	analytic := num(t, tab, 1, 2)
	measured := num(t, tab, 1, 3)
	if math.Abs(analytic-26.7) > 1.5 {
		t.Errorf("analytic %v, expected near 26.7 (paper's 28 at exactly b=4)", analytic)
	}
	if math.Abs(measured-analytic)/analytic > 0.15 {
		t.Errorf("measured %v deviates >15%% from analytic %v", measured, analytic)
	}
	// E-repairs orders of magnitude rarer than B-repairs.
	perE := num(t, tab, 1, 4)
	if perE < 50*measured {
		t.Errorf("E-repair interval %v not >> B-repair interval %v", perE, measured)
	}
}

// TestC2Theorem2Shape: c=1 stalls strictly dominate c=2 on every
// kernel, and c=2 is within noise of c=4.
func TestC2Theorem2Shape(t *testing.T) {
	tab := c2(context.Background())
	for r := range tab.Rows {
		s1, s2, s4 := num(t, tab, r, 1), num(t, tab, r, 2), num(t, tab, r, 4)
		if s1 <= s2 {
			t.Errorf("%s: c=1 stalls (%v) not greater than c=2 (%v)", cell(t, tab, r, 0), s1, s2)
		}
		if s4 > s2 {
			t.Errorf("%s: stalls grew with more spaces (%v -> %v)", cell(t, tab, r, 0), s2, s4)
		}
	}
}

// TestC3BoundHolds: every row must report ok.
func TestC3BoundHolds(t *testing.T) {
	tab := c3()
	for r := range tab.Rows {
		if cell(t, tab, r, 5) != "true" {
			t.Errorf("Theorem 3 bound violated: %v", tab.Rows[r])
		}
	}
}

// TestC5Monotone: along each row, stalls do not increase with distance;
// along each column, they do not increase with spaces.
func TestC5Monotone(t *testing.T) {
	tab := c5(context.Background())
	for r := range tab.Rows {
		for c := 2; c <= 5; c++ {
			if num(t, tab, r, c) > num(t, tab, r, c-1) {
				t.Errorf("row %s: stalls increased with distance (%v)", cell(t, tab, r, 0), tab.Rows[r])
			}
		}
	}
	for c := 1; c <= 5; c++ {
		for r := 1; r < len(tab.Rows); r++ {
			if num(t, tab, r, c) > num(t, tab, r-1, c) {
				t.Errorf("col %d: stalls increased with spaces", c)
			}
		}
	}
}

// TestC6Theorem7: at and above the (2c-1)W bound there are no store
// stalls and no deadlock; well below it the machine suffers.
func TestC6Theorem7(t *testing.T) {
	tab := c6(context.Background())
	last := len(tab.Rows) - 1
	for _, r := range []int{3, 4, last} { // capacity == bound and above
		if num(t, tab, r, 1) != 0 || cell(t, tab, r, 3) != "completed" {
			t.Errorf("capacity %s (>= bound) stalled: %v", cell(t, tab, r, 0), tab.Rows[r])
		}
	}
	// The smallest capacity must show distress.
	if num(t, tab, 0, 1) == 0 && cell(t, tab, 0, 3) == "completed" {
		t.Errorf("undersized buffer showed no stalls: %v", tab.Rows[0])
	}
}

// TestC7Never3bWorse: 3(b) write-backs <= 3(a) on every workload, with
// at least one workload showing savings.
func TestC7Never3bWorse(t *testing.T) {
	tab := c7(context.Background())
	saved := 0.0
	for r := range tab.Rows {
		a, b := num(t, tab, r, 1), num(t, tab, r, 2)
		if b > a {
			t.Errorf("%s: 3(b) wrote back more than 3(a) (%v > %v)", cell(t, tab, r, 0), b, a)
		}
		saved += a - b
	}
	if saved <= 0 {
		t.Error("3(b) saved nothing anywhere; expected savings on store-heavy kernels")
	}
}

// TestC8MoreSpacesNeverHurt: stalls are non-increasing in cB.
func TestC8MoreSpacesNeverHurt(t *testing.T) {
	tab := c8()
	for r := 1; r < len(tab.Rows); r++ {
		if num(t, tab, r, 1) > num(t, tab, r-1, 1) {
			t.Errorf("stalls increased with cB: %v -> %v", tab.Rows[r-1], tab.Rows[r])
		}
	}
}

// TestC10NoExtraWriteBackStalls: for each kernel, write-back and
// write-through have identical store-stall cycles and cycle counts,
// and write-back writes memory less.
func TestC10NoExtraWriteBackStalls(t *testing.T) {
	tab := c10(context.Background())
	for r := 0; r+1 < len(tab.Rows); r += 2 {
		wb, wt := tab.Rows[r], tab.Rows[r+1]
		if wb[3] != wt[3] {
			t.Errorf("%s: store stalls differ (%s vs %s)", wb[0], wb[3], wt[3])
		}
		if wb[2] != wt[2] {
			t.Errorf("%s: cycles differ (%s vs %s)", wb[0], wb[2], wt[2])
		}
		if num(t, tab, r, 4) >= num(t, tab, r+1, 4) {
			t.Errorf("%s: write-back did not reduce memory writes", wb[0])
		}
	}
}

// TestC11CheckpointWins: the speculative checkpoint machine is at
// least as fast as in-order and the ROB baseline on every kernel, and
// oracle prediction is at least as fast as bimodal.
func TestC11CheckpointWins(t *testing.T) {
	tab := c11(context.Background())
	for r := range tab.Rows {
		inord, rob := num(t, tab, r, 1), num(t, tab, r, 3)
		bim, ora := num(t, tab, r, 4), num(t, tab, r, 5)
		if bim > inord {
			t.Errorf("%s: checkpoint machine (%v) slower than in-order (%v)", cell(t, tab, r, 0), bim, inord)
		}
		if bim > rob {
			t.Errorf("%s: checkpoint machine (%v) slower than ROB (%v)", cell(t, tab, r, 0), bim, rob)
		}
		if ora > bim {
			t.Errorf("%s: oracle (%v) slower than bimodal (%v)", cell(t, tab, r, 0), ora, bim)
		}
	}
}

// TestC12AllMatch: the equivalence summary must be clean.
func TestC12AllMatch(t *testing.T) {
	tab := c12(context.Background())
	for r := range tab.Rows {
		if cell(t, tab, r, 2) != cell(t, tab, r, 3) {
			t.Errorf("golden mismatch row: %v", tab.Rows[r])
		}
	}
}

// TestT1MatchesDerivation: the printed table equals the Table1 function
// over all 8 input combinations (guards against drift between the
// experiment rendering and the implementation).
func TestT1MatchesDerivation(t *testing.T) {
	tab := t1()()
	if len(tab.Rows) != 8 {
		t.Fatalf("T1 rows: %d", len(tab.Rows))
	}
	// The one clean cell: H=0,S=0,D=1 -> dirty'=0.
	found := false
	for _, r := range tab.Rows {
		if r[0] == "0" && r[1] == "0" && r[2] == "1" {
			found = true
			if r[3] != "0" || r[4] != "0" {
				t.Errorf("clean cell wrong: %v", r)
			}
		} else if r[3] != "1" {
			t.Errorf("non-clean cell must set dirty': %v", r)
		}
	}
	if !found {
		t.Error("missing H=0,S=0,D=1 row")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Note: "note text", Header: []string{"a", "bb"}}
	tab.AddRow(1, "x")
	tab.AddRow(22.5, "yyyy")
	s := tab.String()
	for _, want := range []string{"== X: demo ==", "note text", "a     bb", "22.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

// TestA1MonotoneWithAccuracy: cycles fall as prediction accuracy rises;
// the repair machinery never makes better prediction worse.
func TestA1MonotoneWithAccuracy(t *testing.T) {
	tab := a1(context.Background())
	for r := 1; r < len(tab.Rows); r++ {
		prev := num(t, tab, r-1, 4)
		cur := num(t, tab, r, 4)
		if cur > prev {
			t.Errorf("cycles rose with accuracy: %v -> %v (%s)", prev, cur, cell(t, tab, r, 0))
		}
	}
	// Oracle row: zero B-repairs and zero wrong-path ops.
	last := len(tab.Rows) - 1
	if num(t, tab, last, 2) != 0 || num(t, tab, last, 3) != 0 {
		t.Errorf("oracle row not clean: %v", tab.Rows[last])
	}
}

// TestA6VectorDensity: the vector encoding must achieve > 2 operations
// per instruction on the vector kernel and use fewer checkpoints.
func TestA6VectorDensity(t *testing.T) {
	tab := a6()
	scalarCk := num(t, tab, 0, 5)
	vecOPI := num(t, tab, 1, 3)
	vecCk := num(t, tab, 1, 5)
	if vecOPI <= 2 {
		t.Errorf("vector ops/instr = %v", vecOPI)
	}
	if vecCk >= scalarCk {
		t.Errorf("vector checkpoints %v not fewer than scalar %v", vecCk, scalarCk)
	}
}

// TestA4ReasonablePoint: with frequent exceptions, cycles grow with
// checkpoint distance at the far end of the sweep.
func TestA4ReasonablePoint(t *testing.T) {
	tab := a4(context.Background())
	first := num(t, tab, 0, 4)
	last := num(t, tab, len(tab.Rows)-1, 4)
	if last <= first {
		t.Errorf("cycles at distance 64 (%v) not above distance 4 (%v) under frequent exceptions", last, first)
	}
	// Squashed work grows with distance.
	if num(t, tab, len(tab.Rows)-1, 2) <= num(t, tab, 0, 2) {
		t.Error("discarded work did not grow with distance")
	}
}

// TestFigureContent asserts the staged snapshots actually show the
// paper's configurations: two active checkpoints at t1 in F4 and F7.
func TestFigureContent(t *testing.T) {
	f4 := ByIDMust(t, "F4").Run(context.Background())[0].String()
	for _, want := range []string{"t1:", "t2:", "active2", "active1", "backup2", "backup1"} {
		if !strings.Contains(f4, want) {
			t.Errorf("F4 missing %q", want)
		}
	}
	f7 := ByIDMust(t, "F7").Run(context.Background())[0].String()
	for _, want := range []string{"pend", "t1:", "t2:"} {
		if !strings.Contains(f7, want) {
			t.Errorf("F7 missing %q", want)
		}
	}
	f1 := ByIDMust(t, "F1").Run(context.Background())[0].String()
	if !strings.Contains(f1, "101") || !strings.Contains(f1, "100") {
		t.Error("F1 missing repair points")
	}
}

func ByIDMust(t *testing.T, id string) Experiment {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("no experiment %s", id)
	}
	return e
}

// TestA5ForwardWinsOnBranchHeavy: with serial undo work charged, the
// forward difference must not lose to the backward difference on the
// misprediction-prone kernels in the table.
func TestA5ForwardWinsOnBranchHeavy(t *testing.T) {
	tab := a5(context.Background())
	// Rows come in triples (3a, 3b, forward) per kernel.
	for r := 0; r+2 < len(tab.Rows); r += 3 {
		bd := num(t, tab, r+1, 2) // 3(b) cycles
		fd := num(t, tab, r+2, 2) // forward cycles
		if fd > bd {
			t.Errorf("%s: forward (%v) slower than backward (%v)", cell(t, tab, r, 0), fd, bd)
		}
	}
}
