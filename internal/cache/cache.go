// Package cache implements the set-associative data cache that sits
// between the machines and main memory.
//
// The cache is where the paper's §3.2.2 memory checkpointing lives:
// stores performed out of order write directly into the cache (and, for
// a write-through policy, into main memory), and the difference buffers
// of internal/diff record enough information to undo them on repair.
// The cache therefore exposes, besides normal read/write/replace
// operations, the repair-oriented operations Algorithms 3(a) and 3(b)
// need: probing for line presence, patching line contents during
// recovery, and manipulating per-line dirty and hazard bits (the hazard
// bit is the extra state Algorithm 3(b) introduces; its next-state
// functions come from Table 1 of the paper).
package cache

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Policy selects the write policy.
type Policy uint8

// Write policies.
const (
	WriteBack Policy = iota
	WriteThrough
)

// String returns a readable policy name.
func (p Policy) String() string {
	if p == WriteBack {
		return "write-back"
	}
	return "write-through"
}

// Config sizes the cache. LineBytes must be a multiple of 4 and a power
// of two; Sets must be a power of two.
type Config struct {
	Sets      int
	Ways      int
	LineBytes int
	Policy    Policy
}

// DefaultConfig is a small cache that misses often enough on the kernel
// workloads to exercise replacement and write-back behaviour.
var DefaultConfig = Config{Sets: 16, Ways: 2, LineBytes: 16, Policy: WriteBack}

func (c Config) validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: sets %d not a power of two", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways %d", c.Ways)
	}
	if c.LineBytes < isa.WordSize || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d", c.LineBytes)
	}
	return nil
}

// Stats counts cache events.
type Stats struct {
	Hits       int
	Misses     int
	WriteBacks int // dirty lines written back on replacement
	Fills      int
	// RepairWriteBacksAvoided counts replacements of lines whose dirty
	// bit Algorithm 3(b) kept clear where 3(a) would have set it.
	// Maintained by the diff package via MarkAvoidedWriteBack.
	RepairWriteBacksAvoided int
}

type line struct {
	valid  bool
	dirty  bool
	hazard bool // Algorithm 3(b) repair-sequence hazard bit
	tag    uint32
	lru    uint64
	data   []byte
}

// Cache is a set-associative data cache backed by a mem.Memory.
type Cache struct {
	cfg     Config
	backing *mem.Memory
	sets    [][]line
	tick    uint64
	stats   Stats
}

// New builds a cache over backing main memory.
func New(cfg Config, backing *mem.Memory) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg, backing: backing, sets: make([][]line, cfg.Sets)}
	for i := range c.sets {
		ws := make([]line, cfg.Ways)
		for w := range ws {
			ws[w].data = make([]byte, cfg.LineBytes)
		}
		c.sets[i] = ws
	}
	return c, nil
}

// MustNew is New panicking on configuration error.
func MustNew(cfg Config, backing *mem.Memory) *Cache {
	c, err := New(cfg, backing)
	if err != nil {
		panic(err)
	}
	return c
}

// Reset restores the cache to the state New(cfg, backing) would build,
// reusing the set arrays and per-line data buffers when the geometry
// matches (the common case when a machine chassis is re-run). All lines
// become invalid and the statistics zero.
func (c *Cache) Reset(cfg Config, backing *mem.Memory) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	same := c.cfg.Sets == cfg.Sets && c.cfg.Ways == cfg.Ways && c.cfg.LineBytes == cfg.LineBytes
	c.cfg = cfg
	c.backing = backing
	c.tick = 0
	c.stats = Stats{}
	if !same {
		c.sets = make([][]line, cfg.Sets)
		for i := range c.sets {
			ws := make([]line, cfg.Ways)
			for w := range ws {
				ws[w].data = make([]byte, cfg.LineBytes)
			}
			c.sets[i] = ws
		}
		return nil
	}
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			l.valid = false
			l.dirty = false
			l.hazard = false
			l.tag = 0
			l.lru = 0
		}
	}
	return nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Backing returns the main memory behind the cache.
func (c *Cache) Backing() *mem.Memory { return c.backing }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// Policy returns the write policy.
func (c *Cache) Policy() Policy { return c.cfg.Policy }

func (c *Cache) index(addr uint32) (set int, tag uint32, off int) {
	lineAddr := addr / uint32(c.cfg.LineBytes)
	return int(lineAddr) & (c.cfg.Sets - 1), lineAddr / uint32(c.cfg.Sets), int(addr) & (c.cfg.LineBytes - 1)
}

func (c *Cache) lookup(addr uint32) (*line, int, uint32, int) {
	set, tag, off := c.index(addr)
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.valid && l.tag == tag {
			return l, set, tag, off
		}
	}
	return nil, set, tag, off
}

// Present reports whether the line containing addr is in the cache, and
// whether it is dirty. This is the probe repair algorithms use to
// distinguish their case 1 (line replaced, memory holds the modified
// data) from case 2 (line still cached).
func (c *Cache) Present(addr uint32) (present, dirty bool) {
	l, _, _, _ := c.lookup(addr)
	if l == nil {
		return false, false
	}
	return true, l.dirty
}

// lineBase returns the address of the first byte of the line holding
// addr, given its set and tag.
func (c *Cache) lineBase(set int, tag uint32) uint32 {
	return (tag*uint32(c.cfg.Sets) + uint32(set)) * uint32(c.cfg.LineBytes)
}

// fill brings the line containing addr into the cache, evicting (and
// writing back, if dirty) the LRU way. It returns the filled line or an
// exception if the backing memory faults.
func (c *Cache) fill(addr uint32) (*line, isa.ExcCode) {
	set, tag, _ := c.index(addr)
	base := addr &^ uint32(c.cfg.LineBytes-1)
	if !c.backing.MappedRange(base, uint32(c.cfg.LineBytes)) {
		return nil, isa.ExcCodePageFault
	}
	// Choose victim: first invalid way, else LRU.
	victim := &c.sets[set][0]
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if !l.valid {
			victim = l
			break
		}
		if l.lru < victim.lru {
			victim = l
		}
	}
	if victim.valid && victim.dirty {
		c.writeBackLine(victim, set)
	}
	for i := 0; i < c.cfg.LineBytes; i++ {
		b, _ := c.backing.Read8(base + uint32(i))
		victim.data[i] = b
	}
	victim.valid = true
	victim.dirty = false
	victim.hazard = false
	victim.tag = tag
	c.stats.Fills++
	return victim, isa.ExcCodeNone
}

// writeBackLine flushes a dirty line to main memory. The write-back
// makes memory consistent with the line, so the hazard bit clears.
func (c *Cache) writeBackLine(l *line, set int) {
	base := c.lineBase(set, l.tag)
	for i := 0; i < c.cfg.LineBytes; i++ {
		c.backing.Write8(base+uint32(i), l.data[i])
	}
	l.dirty = false
	l.hazard = false
	c.stats.WriteBacks++
}

func (c *Cache) touch(l *line) {
	c.tick++
	l.lru = c.tick
}

func word(data []byte, off int) uint32 {
	return uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24
}

func putWord(data []byte, off int, v uint32) {
	data[off] = byte(v)
	data[off+1] = byte(v >> 8)
	data[off+2] = byte(v >> 16)
	data[off+3] = byte(v >> 24)
}

// ReadLongword reads the aligned longword containing addr through the
// cache, filling on miss. hit reports whether the access hit.
func (c *Cache) ReadLongword(addr uint32) (v uint32, hit bool, exc isa.ExcCode) {
	addr &^= 3
	l, _, _, off := c.lookup(addr)
	if l == nil {
		var code isa.ExcCode
		l, code = c.fill(addr)
		if code != isa.ExcCodeNone {
			c.stats.Misses++
			return 0, false, code
		}
		_, _, off = c.index(addr)
		c.stats.Misses++
		c.touch(l)
		return word(l.data, off), false, isa.ExcCodeNone
	}
	c.stats.Hits++
	c.touch(l)
	return word(l.data, off), true, isa.ExcCodeNone
}

// WriteResult describes a completed cache write, carrying everything a
// backward difference entry needs (paper Figure 6): the overwritten
// longword and the line's prior dirty state (Algorithm 3(b) saves the
// "purged dirty bit" in the entry).
type WriteResult struct {
	Old      uint32 // longword content before the write
	WasDirty bool   // line dirty bit before the write
	Hit      bool
}

// WriteLongword merges the bytes of v selected by mask into the aligned
// longword containing addr. Under write-back the line is dirtied; under
// write-through the backing memory is updated too and the line stays
// clean. Write misses allocate.
func (c *Cache) WriteLongword(addr uint32, v uint32, mask uint8) (WriteResult, isa.ExcCode) {
	addr &^= 3
	var res WriteResult
	l, _, _, off := c.lookup(addr)
	if l == nil {
		var code isa.ExcCode
		l, code = c.fill(addr)
		if code != isa.ExcCodeNone {
			c.stats.Misses++
			return res, code
		}
		_, _, off = c.index(addr)
		c.stats.Misses++
	} else {
		c.stats.Hits++
		res.Hit = true
	}
	c.touch(l)
	res.Old = word(l.data, off)
	res.WasDirty = l.dirty
	merged := mem.MergeMasked(res.Old, v, mask)
	putWord(l.data, off, merged)
	if c.cfg.Policy == WriteThrough {
		c.backing.Write32(addr, merged)
	} else {
		l.dirty = true
	}
	return res, isa.ExcCodeNone
}

// CheckAccess reports the exception a size-byte access at addr would
// raise, without performing it or perturbing cache state.
func (c *Cache) CheckAccess(addr, size uint32) isa.ExcCode {
	if size == isa.WordSize && addr%isa.WordSize != 0 {
		return isa.ExcCodeMisaligned
	}
	base := addr &^ uint32(c.cfg.LineBytes-1)
	if l, _, _, _ := c.lookup(addr); l != nil {
		return isa.ExcCodeNone
	}
	if !c.backing.MappedRange(base, uint32(c.cfg.LineBytes)) {
		return isa.ExcCodePageFault
	}
	return isa.ExcCodeNone
}

// --- Repair-sequence operations (used by internal/diff) ---

// BeginRepair is retained for compatibility with the paper's Algorithm
// 3(b) narrative ("a hazard bit ... is cleared when a repair sequence is
// initiated") but is a no-op in this implementation: hazard bits are
// PERSISTENT, cleared only when the line provably matches memory again
// (on refill and on write-back). Per-repair clearing is unsound when
// repairs are frequent — a second repair sequence would forget that an
// earlier one left main memory holding undone data, and Table 1's
// clean-cell inference could then drop a line whose memory copy is
// wrong. See DESIGN.md §6 and the model checks in internal/diff.
func (c *Cache) BeginRepair() {}

// ClearAllHazards clears every hazard bit (the paper's literal
// per-repair rule; kept only for the soundness demonstration tests).
func (c *Cache) ClearAllHazards() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w].hazard = false
		}
	}
}

// RecoverInCache patches the bytes of old selected by mask into the
// cached line containing addr and applies the given dirty/hazard bits.
// It must only be called when Present(addr) is true.
func (c *Cache) RecoverInCache(addr uint32, old uint32, mask uint8, dirty, hazard bool) {
	l, _, _, off := c.lookup(addr &^ 3)
	if l == nil {
		panic(fmt.Sprintf("cache: RecoverInCache on absent line %#x", addr))
	}
	cur := word(l.data, off)
	putWord(l.data, off, mem.MergeMasked(cur, old, mask))
	l.dirty = dirty
	l.hazard = hazard
}

// PeekLongword returns the cached longword containing addr without
// filling on miss or perturbing replacement state. Used by audits and
// the difference-buffer model checks.
func (c *Cache) PeekLongword(addr uint32) (v uint32, present bool) {
	l, _, _, off := c.lookup(addr &^ 3)
	if l == nil {
		return 0, false
	}
	return word(l.data, off), true
}

// LineBits returns the dirty and hazard bits of the line containing
// addr. Only meaningful when the line is present.
func (c *Cache) LineBits(addr uint32) (dirty, hazard bool) {
	l, _, _, _ := c.lookup(addr)
	if l == nil {
		return false, false
	}
	return l.dirty, l.hazard
}

// RecoverInMemory patches the bytes of old selected by mask directly
// into main memory; used for repair case 1, when the modified line has
// already been written back and replaced.
func (c *Cache) RecoverInMemory(addr uint32, old uint32, mask uint8) {
	c.backing.WriteMasked(addr&^3, old, mask)
}

// FlushAll writes every dirty line back to memory and invalidates the
// cache. Machines call it at the end of a run so final main memory
// reflects the architectural state for golden-model comparison.
func (c *Cache) FlushAll() {
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if l.valid && l.dirty {
				c.writeBackLine(l, s)
			}
			l.valid = false
			l.hazard = false
		}
	}
}

// CountAvoidedWriteBack increments the counter of write-backs that
// Algorithm 3(b)'s hazard logic avoided relative to 3(a).
func (c *Cache) CountAvoidedWriteBack() { c.stats.RepairWriteBacksAvoided++ }
