package rv32

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/refsim"
)

func mustTranslate(t *testing.T, b *Builder, name string) *prog.Program {
	t.Helper()
	text, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	img, err := LoadFlat(name, text)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Translate(img)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLoweringForms pins the per-instruction lowering decisions that
// carry the identity address mapping: link values are byte addresses,
// branch displacements are rebased to instruction indices, and
// auipc/lui collapse to constants.
func TestLoweringForms(t *testing.T) {
	b := NewBuilder(0)
	b.U(OpLUI, 1, 0x12345000) // word 0
	b.U(OpAUIPC, 2, 0x1000)   // word 1: 0x1000 + 4
	b.Jal(1, "fn")            // word 2
	b.Br(OpBNE, 3, 4, "fn")   // word 3
	b.I(OpJALR, 0, 1, 0)      // word 4
	b.I(OpJALR, 5, 1, 8)      // word 5
	b.Sys(OpECALL)            // word 6
	b.Sys(OpEBREAK)           // word 7
	b.L("fn")
	b.Jal(0, "fn") // word 8: jal x0 -> plain J
	p := mustTranslate(t, b, "forms")

	want := []isa.Inst{
		{Op: isa.OpLI, Rd: 1, Imm: 0x12345000},
		{Op: isa.OpLI, Rd: 2, Imm: 0x1004},
		{Op: isa.OpJALA, Rd: 1, Imm: 8},
		{Op: isa.OpBNE, Rs1: 3, Rs2: 4, Imm: 8 - 3 - 1},
		{Op: isa.OpJRA, Rs1: 1},
		{Op: isa.OpJALRA, Rd: 5, Rs1: 1, Imm: 8},
		{Op: isa.OpTRAP},
		{Op: isa.OpHALT},
		{Op: isa.OpJ, Imm: 8},
	}
	for i, w := range want {
		if p.Code[i] != w {
			t.Errorf("word %d: lowered to %v, want %v", i, p.Code[i], w)
		}
	}
	if p.Entry != 0 {
		t.Errorf("entry = %d, want 0", p.Entry)
	}
}

// TestLinkValuesAreByteAddresses: a call/return pair through x1 runs on
// refsim and the link register holds the rv32 byte return address, not
// an instruction index.
func TestLinkValuesAreByteAddresses(t *testing.T) {
	b := NewBuilder(0)
	b.Jal(1, "fn")         // word 0: link = 4
	b.S(OpSW, 1, 0, 0x100) // word 1: store x1
	b.Sys(OpEBREAK)        // word 2
	b.L("fn")
	b.Ret() // word 3
	p := mustTranslate(t, b, "link")
	res := refsim.MustRun(p, refsim.Options{})
	if !res.Halted {
		t.Fatal("did not halt")
	}
	if res.Regs[1] != 4 {
		t.Errorf("link register = %d, want byte address 4", res.Regs[1])
	}
	v, _ := res.Mem.Read32(0x100)
	if v != 4 {
		t.Errorf("stored link = %d, want 4", v)
	}
}

// TestMisalignedIndirectJumpFaults: a jalr to a non-word-aligned target
// (after the spec's &^1 masking) raises a misaligned fault with no
// architectural effect, and the handler skips it.
func TestMisalignedIndirectJumpFaults(t *testing.T) {
	b := NewBuilder(0)
	b.Li(5, 10) // target 10: &^1 -> 10, 10%4 != 0 -> fault
	b.I(OpJALR, 1, 5, 0)
	b.Sys(OpEBREAK)
	p := mustTranslate(t, b, "misjump")
	res := refsim.MustRun(p, refsim.Options{})
	if !res.Halted {
		t.Fatal("did not halt")
	}
	if len(res.Exceptions) != 1 || res.Exceptions[0].Code != isa.ExcCodeMisaligned {
		t.Fatalf("exceptions = %v, want one misaligned fault", res.Exceptions)
	}
	if res.Regs[1] != 0 {
		t.Errorf("faulting jalr wrote link register: x1 = %d", res.Regs[1])
	}
	// The low-bit clear is architectural: target 11 &^ 1 = 10 still
	// faults, target 5 &^ 1 = 4 does not.
	b = NewBuilder(0)
	b.Li(5, 13) // 13 &^ 1 = 12: valid word 3
	b.I(OpJALR, 0, 5, 0)
	b.Sys(OpEBREAK) // word 2: skipped by the jump
	b.Sys(OpECALL)  // word 3: jump target
	b.Sys(OpEBREAK)
	p = mustTranslate(t, b, "lowbit")
	res = refsim.MustRun(p, refsim.Options{})
	if len(res.Exceptions) != 1 || res.Exceptions[0].Code != isa.ExcCodeSoftware {
		t.Fatalf("low-bit-masked jump: exceptions = %v, want the ecall trap", res.Exceptions)
	}
}

// TestDataInText: words that don't decode (or decode into wild
// branches) lower to halting instructions but stay readable through
// the data view.
func TestDataInText(t *testing.T) {
	b := NewBuilder(0)
	b.I(OpLW, 5, 0, 12)    // load the data word
	b.S(OpSW, 5, 0, 0x100) // copy it out
	b.Sys(OpEBREAK)
	b.Word(0xdeadbeef) // word 3: undecodable (major opcode 0x6f is JAL... use a truly bad word)
	p := mustTranslate(t, b, "datatext")
	res := refsim.MustRun(p, refsim.Options{})
	v, _ := res.Mem.Read32(0x100)
	if v != 0xdeadbeef {
		t.Errorf("data view read %#x, want 0xdeadbeef", v)
	}
}

// TestTranslateNonZeroBase: an image based at 0x1000 pads the low
// instruction slots with halts and rebases the entry.
func TestTranslateNonZeroBase(t *testing.T) {
	b := NewBuilder(0x1000)
	b.L("top")
	b.I(OpADDI, 1, 1, 1)
	b.Br(OpBNE, 1, 2, "skip")
	b.Sys(OpECALL)
	b.L("skip")
	b.Sys(OpEBREAK)
	text, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	img := &Image{Name: "based", Entry: 0x1000, TextBase: 0x1000, Text: text}
	p, err := Translate(img)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0x400 {
		t.Errorf("entry = %d, want %d", p.Entry, 0x400)
	}
	for i := 0; i < 0x400; i++ {
		if p.Code[i].Op != isa.OpHALT {
			t.Fatalf("padding slot %d is %v, not halt", i, p.Code[i])
		}
	}
	if p.Code[0x401] != (isa.Inst{Op: isa.OpBNE, Rs1: 1, Rs2: 2, Imm: 1}) {
		t.Errorf("rebased branch = %v", p.Code[0x401])
	}
	res := refsim.MustRun(p, refsim.Options{})
	if !res.Halted || res.Regs[1] != 1 {
		t.Errorf("based image ran wrong: halted=%v x1=%d", res.Halted, res.Regs[1])
	}
}

// TestTranslateRejects pins the translation error classes.
func TestTranslateRejects(t *testing.T) {
	enc := func(in Inst) []byte {
		w, err := Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], w)
		return buf[:]
	}
	cases := []struct {
		name string
		img  *Image
		want string
	}{
		{"unlowerable mulhu", &Image{Name: "x", Text: enc(Inst{Op: OpMULHU, Rd: 1, Rs1: 2, Rs2: 3})}, "no internal-ISA lowering"},
		{"misaligned base", &Image{Name: "x", TextBase: 2, Entry: 2, Text: enc(Inst{Op: OpEBREAK})}, "not 4-aligned"},
		{"huge base", &Image{Name: "x", TextBase: 1 << 24, Entry: 1 << 24, Text: enc(Inst{Op: OpEBREAK})}, "unsupported"},
		{"empty text", &Image{Name: "x"}, "not a positive multiple"},
		{"entry outside", &Image{Name: "x", Entry: 64, Text: enc(Inst{Op: OpEBREAK})}, "entry outside text"},
	}
	for _, c := range cases {
		if _, err := Translate(c.img); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

// TestELFRoundTrip: WriteELF output loads back to an identical image.
func TestELFRoundTrip(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Sys(OpEBREAK)
	text, _ := b.Assemble()
	img := &Image{
		Name:     "rt",
		Entry:    0x1000,
		TextBase: 0x1000,
		Text:     text,
		Data:     []prog.Segment{{Addr: 0x2000, Data: []byte{1, 2, 3, 4}}},
	}
	got, err := Load("rt", WriteELF(img))
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != img.Entry || got.TextBase != img.TextBase {
		t.Errorf("entry/base: got %#x/%#x want %#x/%#x", got.Entry, got.TextBase, img.Entry, img.TextBase)
	}
	if string(got.Text) != string(img.Text) {
		t.Errorf("text mismatch")
	}
	if len(got.Data) != 1 || got.Data[0].Addr != 0x2000 || string(got.Data[0].Data) != string(img.Data[0].Data) {
		t.Errorf("data segment mismatch: %+v", got.Data)
	}
}

// TestELFRejects pins the malformed-ELF error classes, including the
// unaligned-executable-segment rule.
func TestELFRejects(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Sys(OpEBREAK)
	text, _ := b.Assemble()
	good := WriteELF(&Image{Name: "g", Entry: 0x1000, TextBase: 0x1000, Text: text})

	mutate := func(mut func(e []byte)) []byte {
		e := make([]byte, len(good))
		copy(e, good)
		mut(e)
		return e
	}
	le := binary.LittleEndian
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"truncated header", good[:20], "truncated ELF header"},
		{"64-bit class", mutate(func(e []byte) { e[4] = 2 }), "not a 32-bit ELF"},
		{"big-endian", mutate(func(e []byte) { e[5] = 2 }), "not little-endian"},
		{"relocatable", mutate(func(e []byte) { le.PutUint16(e[16:], 1) }), "not an executable"},
		{"wrong machine", mutate(func(e []byte) { le.PutUint16(e[18:], 62) }), "not RISC-V"},
		{"no phdrs", mutate(func(e []byte) { le.PutUint16(e[44:], 0) }), "no program headers"},
		{"phdr out of bounds", mutate(func(e []byte) { le.PutUint32(e[28:], uint32(len(good))) }), "out of file bounds"},
		{"unaligned exec segment", mutate(func(e []byte) {
			le.PutUint32(e[ehSize+8:], 0x1002) // p_vaddr
			le.PutUint32(e[24:], 0x1002)       // e_entry chases it
		}), "not 4-aligned"},
		{"entry outside text", mutate(func(e []byte) { le.PutUint32(e[24:], 0x9000) }), "outside text"},
		{"misaligned entry", mutate(func(e []byte) { le.PutUint32(e[24:], 0x1002) }), "not 4-aligned"},
		{"memsz < filesz", mutate(func(e []byte) { le.PutUint32(e[ehSize+20:], 1) }), "memsz"},
		{"file range overflow", mutate(func(e []byte) {
			le.PutUint32(e[ehSize+16:], 1<<30) // p_filesz
			le.PutUint32(e[ehSize+20:], 1<<30) // p_memsz keeps pace
		}), "out of bounds"},
	}
	for _, c := range cases {
		if _, err := Load("bad", c.data); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

// TestLoadFlatRejects: empty and odd-sized flat images error.
func TestLoadFlatRejects(t *testing.T) {
	if _, err := Load("e", nil); err == nil {
		t.Error("empty image accepted")
	}
	if _, err := Load("o", []byte{1, 2, 3}); err == nil {
		t.Error("odd-sized image accepted")
	}
}

// TestListing smoke-checks the side-by-side translation listing.
func TestListing(t *testing.T) {
	data, err := CorpusBytes("crc32")
	if err != nil {
		t.Fatal(err)
	}
	img, err := Load("crc32", data)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Listing(img)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"=>", "jal x1", ".word (data)", "halt"} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
}
