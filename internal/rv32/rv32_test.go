package rv32

import (
	"strings"
	"testing"
)

// sampleInsts covers every op Decode accepts, with operand values that
// exercise sign extension and field boundaries.
func sampleInsts() []Inst {
	return []Inst{
		{Op: OpLUI, Rd: 1, Imm: 0x12345 << 12},
		{Op: OpLUI, Rd: 31, Imm: -4096},
		{Op: OpAUIPC, Rd: 5, Imm: 0x7ffff << 12},
		{Op: OpJAL, Rd: 1, Imm: 2048},
		{Op: OpJAL, Rd: 0, Imm: -1048576},
		{Op: OpJALR, Rd: 1, Rs1: 5, Imm: -2048},
		{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: 4094},
		{Op: OpBNE, Rs1: 31, Rs2: 30, Imm: -4096},
		{Op: OpBLT, Rs1: 3, Rs2: 4, Imm: -2},
		{Op: OpBGE, Rs1: 5, Rs2: 6, Imm: 8},
		{Op: OpBLTU, Rs1: 7, Rs2: 8, Imm: 16},
		{Op: OpBGEU, Rs1: 9, Rs2: 10, Imm: -256},
		{Op: OpLB, Rd: 1, Rs1: 2, Imm: -1},
		{Op: OpLH, Rd: 3, Rs1: 4, Imm: 2},
		{Op: OpLW, Rd: 5, Rs1: 6, Imm: 2047},
		{Op: OpLBU, Rd: 7, Rs1: 8, Imm: 0},
		{Op: OpLHU, Rd: 9, Rs1: 10, Imm: -2048},
		{Op: OpSB, Rs1: 1, Rs2: 2, Imm: -1},
		{Op: OpSH, Rs1: 3, Rs2: 4, Imm: 2046},
		{Op: OpSW, Rs1: 5, Rs2: 6, Imm: -2048},
		{Op: OpADDI, Rd: 1, Rs1: 2, Imm: -2048},
		{Op: OpSLTI, Rd: 3, Rs1: 4, Imm: 2047},
		{Op: OpSLTIU, Rd: 5, Rs1: 6, Imm: -1},
		{Op: OpXORI, Rd: 7, Rs1: 8, Imm: -1},
		{Op: OpORI, Rd: 9, Rs1: 10, Imm: 255},
		{Op: OpANDI, Rd: 11, Rs1: 12, Imm: -256},
		{Op: OpSLLI, Rd: 1, Rs1: 2, Imm: 31},
		{Op: OpSRLI, Rd: 3, Rs1: 4, Imm: 0},
		{Op: OpSRAI, Rd: 5, Rs1: 6, Imm: 17},
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSUB, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpSLL, Rd: 7, Rs1: 8, Rs2: 9},
		{Op: OpSLT, Rd: 10, Rs1: 11, Rs2: 12},
		{Op: OpSLTU, Rd: 13, Rs1: 14, Rs2: 15},
		{Op: OpXOR, Rd: 16, Rs1: 17, Rs2: 18},
		{Op: OpSRL, Rd: 19, Rs1: 20, Rs2: 21},
		{Op: OpSRA, Rd: 22, Rs1: 23, Rs2: 24},
		{Op: OpOR, Rd: 25, Rs1: 26, Rs2: 27},
		{Op: OpAND, Rd: 28, Rs1: 29, Rs2: 30},
		{Op: OpMUL, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpMULH, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpMULHSU, Rd: 7, Rs1: 8, Rs2: 9},
		{Op: OpMULHU, Rd: 10, Rs1: 11, Rs2: 12},
		{Op: OpDIV, Rd: 13, Rs1: 14, Rs2: 15},
		{Op: OpDIVU, Rd: 16, Rs1: 17, Rs2: 18},
		{Op: OpREM, Rd: 19, Rs1: 20, Rs2: 21},
		{Op: OpREMU, Rd: 22, Rs1: 23, Rs2: 24},
		{Op: OpFENCE},
		{Op: OpFENCEI},
		{Op: OpECALL},
		{Op: OpEBREAK},
	}
}

// TestEncodeDecodeRoundTrip pins Decode as the exact inverse of Encode
// over every accepted instruction form.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, in := range sampleInsts() {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("decode %v (%#08x): %v", in, w, err)
		}
		if got != in {
			t.Errorf("round trip %#08x: encoded %+v, decoded %+v", w, in, got)
		}
	}
}

// TestDecodeRejects pins the malformed-word classes the decoder must
// refuse (never panic, never mis-decode).
func TestDecodeRejects(t *testing.T) {
	bad := map[string]uint32{
		"rvc halfword":        0x00000001, // compressed encoding space
		"all zeros":           0x00000000,
		"all ones":            0xffffffff,
		"jalr funct3":         0x00001067, // jalr with funct3=1
		"branch funct3=2":     0x00002063,
		"load funct3=3":       0x00003003,
		"store funct3=3":      0x00003023,
		"op-imm bad funct7":   0x40001013, // slli with funct7=0x20
		"op bad funct7":       0x40001033, // sll with funct7=0x20
		"op funct7 garbage":   0x10000033,
		"csrrw":               0x30001073, // SYSTEM funct3!=0 (Zicsr)
		"ecall nonzero rd":    0x000000f3,
		"ebreak nonzero rs1":  0x00108073,
		"system bad funct12":  0x10500073, // wfi
		"reserved major 0x5b": 0x0000005b,
		"misc-mem bad funct3": 0x0000200f,
		"amoadd (A ext)":      0x0000202f,
		"flw (F ext)":         0x00002007,
		"mret":                0x30200073,
	}
	for name, w := range bad {
		if in, err := Decode(w); err == nil {
			t.Errorf("%s (%#08x): decoded as %v, want error", name, w, in)
		}
	}
}

// TestDecodeFenceNormalized: real-world fences carry pred/succ hint
// bits; decoding must normalize them so round-trips are stable.
func TestDecodeFenceNormalized(t *testing.T) {
	in, err := Decode(0x0ff0000f) // fence iorw, iorw
	if err != nil {
		t.Fatal(err)
	}
	if in != (Inst{Op: OpFENCE}) {
		t.Errorf("fence decoded with hint fields: %+v", in)
	}
}

// TestInstString spot-checks the disassembly syntax.
func TestInstString(t *testing.T) {
	cases := map[string]Inst{
		"addi x1, x2, -5": {Op: OpADDI, Rd: 1, Rs1: 2, Imm: -5},
		"lw x5, 8(x2)":    {Op: OpLW, Rd: 5, Rs1: 2, Imm: 8},
		"sw x6, -4(x2)":   {Op: OpSW, Rs2: 6, Rs1: 2, Imm: -4},
		"beq x1, x2, +16": {Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: 16},
		"jal x1, -8":      {Op: OpJAL, Rd: 1, Imm: -8},
		"jalr x0, 0(x1)":  {Op: OpJALR, Rd: 0, Rs1: 1},
		"lui x3, 0x12345": {Op: OpLUI, Rd: 3, Imm: 0x12345 << 12},
		"ecall":           {Op: OpECALL},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", in, got, want)
		}
	}
}

// TestBuilderErrors: undefined and duplicate labels, out-of-range
// immediates all surface from Assemble.
func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(0)
	b.Jal(0, "nowhere")
	if _, err := b.Assemble(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("undefined label: got %v", err)
	}

	b = NewBuilder(0)
	b.L("x")
	b.L("x")
	if _, err := b.Assemble(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Errorf("duplicate label: got %v", err)
	}

	b = NewBuilder(0)
	b.I(OpADDI, 1, 0, 99999)
	if _, err := b.Assemble(); err == nil || !strings.Contains(err.Error(), "out of I range") {
		t.Errorf("immediate overflow: got %v", err)
	}
}
