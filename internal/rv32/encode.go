package rv32

import (
	"encoding/binary"
	"fmt"
)

// Encode produces the machine-code word for an instruction — the exact
// inverse of Decode for every instruction Decode accepts. It exists so
// the test-binary corpus can be regenerated hermetically (no RISC-V
// toolchain) and so round-trip tests pin the decoder against it.
func Encode(in Inst) (uint32, error) {
	r := func(v uint8, name string) (uint32, error) {
		if v > 31 {
			return 0, fmt.Errorf("rv32: encode %v: %s out of range", in.Op, name)
		}
		return uint32(v), nil
	}
	rd, err := r(in.Rd, "rd")
	if err != nil {
		return 0, err
	}
	rs1, err := r(in.Rs1, "rs1")
	if err != nil {
		return 0, err
	}
	rs2, err := r(in.Rs2, "rs2")
	if err != nil {
		return 0, err
	}

	encI := func(opc, f3 uint32) (uint32, error) {
		if in.Imm < -2048 || in.Imm > 2047 {
			return 0, fmt.Errorf("rv32: encode %v: immediate %d out of I range", in.Op, in.Imm)
		}
		return uint32(in.Imm)<<20 | rs1<<15 | f3<<12 | rd<<7 | opc, nil
	}
	encShift := func(f7, f3 uint32) (uint32, error) {
		if in.Imm < 0 || in.Imm > 31 {
			return 0, fmt.Errorf("rv32: encode %v: shamt %d out of range", in.Op, in.Imm)
		}
		return f7<<25 | uint32(in.Imm)<<20 | rs1<<15 | f3<<12 | rd<<7 | opcOpImm, nil
	}
	encR := func(f7, f3 uint32) (uint32, error) {
		return f7<<25 | rs2<<20 | rs1<<15 | f3<<12 | rd<<7 | opcOp, nil
	}
	encS := func(f3 uint32) (uint32, error) {
		if in.Imm < -2048 || in.Imm > 2047 {
			return 0, fmt.Errorf("rv32: encode %v: immediate %d out of S range", in.Op, in.Imm)
		}
		imm := uint32(in.Imm)
		return imm>>5<<25&0xfe000000 | rs2<<20 | rs1<<15 | f3<<12 | imm&0x1f<<7 | opcStore, nil
	}
	encB := func(f3 uint32) (uint32, error) {
		if in.Imm < -4096 || in.Imm > 4095 || in.Imm&1 != 0 {
			return 0, fmt.Errorf("rv32: encode %v: displacement %d out of B range", in.Op, in.Imm)
		}
		imm := uint32(in.Imm)
		return imm>>12&1<<31 | imm>>5&0x3f<<25 | rs2<<20 | rs1<<15 | f3<<12 |
			imm>>1&0xf<<8 | imm>>11&1<<7 | opcBranch, nil
	}
	encU := func(opc uint32) (uint32, error) {
		if uint32(in.Imm)&0xfff != 0 {
			return 0, fmt.Errorf("rv32: encode %v: U immediate %#x has low bits set", in.Op, in.Imm)
		}
		return uint32(in.Imm) | rd<<7 | opc, nil
	}

	switch in.Op {
	case OpLUI:
		return encU(opcLUI)
	case OpAUIPC:
		return encU(opcAUIPC)
	case OpJAL:
		if in.Imm < -(1<<20) || in.Imm >= 1<<20 || in.Imm&1 != 0 {
			return 0, fmt.Errorf("rv32: encode jal: displacement %d out of J range", in.Imm)
		}
		imm := uint32(in.Imm)
		return imm>>20&1<<31 | imm>>1&0x3ff<<21 | imm>>11&1<<20 | imm>>12&0xff<<12 | rd<<7 | opcJAL, nil
	case OpJALR:
		return encI(opcJALR, 0)
	case OpBEQ:
		return encB(0)
	case OpBNE:
		return encB(1)
	case OpBLT:
		return encB(4)
	case OpBGE:
		return encB(5)
	case OpBLTU:
		return encB(6)
	case OpBGEU:
		return encB(7)
	case OpLB:
		return encI(opcLoad, 0)
	case OpLH:
		return encI(opcLoad, 1)
	case OpLW:
		return encI(opcLoad, 2)
	case OpLBU:
		return encI(opcLoad, 4)
	case OpLHU:
		return encI(opcLoad, 5)
	case OpSB:
		return encS(0)
	case OpSH:
		return encS(1)
	case OpSW:
		return encS(2)
	case OpADDI:
		return encI(opcOpImm, 0)
	case OpSLTI:
		return encI(opcOpImm, 2)
	case OpSLTIU:
		return encI(opcOpImm, 3)
	case OpXORI:
		return encI(opcOpImm, 4)
	case OpORI:
		return encI(opcOpImm, 6)
	case OpANDI:
		return encI(opcOpImm, 7)
	case OpSLLI:
		return encShift(0, 1)
	case OpSRLI:
		return encShift(0, 5)
	case OpSRAI:
		return encShift(0x20, 5)
	case OpADD:
		return encR(0, 0)
	case OpSUB:
		return encR(0x20, 0)
	case OpSLL:
		return encR(0, 1)
	case OpSLT:
		return encR(0, 2)
	case OpSLTU:
		return encR(0, 3)
	case OpXOR:
		return encR(0, 4)
	case OpSRL:
		return encR(0, 5)
	case OpSRA:
		return encR(0x20, 5)
	case OpOR:
		return encR(0, 6)
	case OpAND:
		return encR(0, 7)
	case OpMUL:
		return encR(1, 0)
	case OpMULH:
		return encR(1, 1)
	case OpMULHSU:
		return encR(1, 2)
	case OpMULHU:
		return encR(1, 3)
	case OpDIV:
		return encR(1, 4)
	case OpDIVU:
		return encR(1, 5)
	case OpREM:
		return encR(1, 6)
	case OpREMU:
		return encR(1, 7)
	case OpFENCE:
		return opcMisc, nil
	case OpFENCEI:
		return 1<<12 | opcMisc, nil
	case OpECALL:
		return opcSystem, nil
	case OpEBREAK:
		return 1<<20 | opcSystem, nil
	}
	return 0, fmt.Errorf("rv32: encode: unknown op %v", in.Op)
}

// Builder is a tiny one-pass rv32 assembler used to write the corpus
// test programs as Go code. Labels resolve to byte addresses; forward
// branch/jump references are fixed up at Assemble time.
type Builder struct {
	base   uint32
	words  []uint32
	labels map[string]uint32
	fixups []fixup
	err    error
}

type fixup struct {
	word  int    // index into words
	label string // target label
	in    Inst   // re-encoded with the resolved displacement
	la    bool   // two-word lui+addi address-load fixup
}

// NewBuilder starts a program image at the given base byte address.
func NewBuilder(base uint32) *Builder {
	return &Builder{base: base, labels: make(map[string]uint32)}
}

// PC returns the byte address of the next emitted word.
func (b *Builder) PC() uint32 { return b.base + 4*uint32(len(b.words)) }

// L defines a label at the current position.
func (b *Builder) L(name string) {
	if _, dup := b.labels[name]; dup && b.err == nil {
		b.err = fmt.Errorf("rv32: builder: duplicate label %q", name)
	}
	b.labels[name] = b.PC()
}

func (b *Builder) emit(in Inst) {
	w, err := Encode(in)
	if err != nil && b.err == nil {
		b.err = err
	}
	b.words = append(b.words, w)
}

// R emits a register-register instruction (R-type, including RV32M).
func (b *Builder) R(op Op, rd, rs1, rs2 int) {
	b.emit(Inst{Op: op, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)})
}

// I emits an immediate-type instruction (OP-IMM, loads, JALR).
func (b *Builder) I(op Op, rd, rs1 int, imm int32) {
	b.emit(Inst{Op: op, Rd: uint8(rd), Rs1: uint8(rs1), Imm: imm})
}

// S emits a store: S(op, rs2, rs1, imm) stores rs2 at imm(rs1).
func (b *Builder) S(op Op, rs2, rs1 int, imm int32) {
	b.emit(Inst{Op: op, Rs2: uint8(rs2), Rs1: uint8(rs1), Imm: imm})
}

// U emits LUI/AUIPC with the given upper-20-bit value (pre-shifted).
func (b *Builder) U(op Op, rd int, imm uint32) {
	b.emit(Inst{Op: op, Rd: uint8(rd), Imm: int32(imm & 0xfffff000)})
}

// Br emits a conditional branch to a label.
func (b *Builder) Br(op Op, rs1, rs2 int, label string) {
	in := Inst{Op: op, Rs1: uint8(rs1), Rs2: uint8(rs2)}
	b.fixups = append(b.fixups, fixup{word: len(b.words), label: label, in: in})
	b.words = append(b.words, 0)
}

// Jal emits jal rd, label.
func (b *Builder) Jal(rd int, label string) {
	in := Inst{Op: OpJAL, Rd: uint8(rd)}
	b.fixups = append(b.fixups, fixup{word: len(b.words), label: label, in: in})
	b.words = append(b.words, 0)
}

// La loads a label's byte address into rd. It always emits a lui+addi
// pair so forward references have a fixed size.
func (b *Builder) La(rd int, label string) {
	b.fixups = append(b.fixups, fixup{word: len(b.words), label: label, in: Inst{Rd: uint8(rd)}, la: true})
	b.words = append(b.words, 0, 0)
}

// Ret emits jalr x0, 0(x1) — return through the standard link register.
func (b *Builder) Ret() { b.I(OpJALR, 0, 1, 0) }

// Sys emits ecall, ebreak, or a fence.
func (b *Builder) Sys(op Op) { b.emit(Inst{Op: op}) }

// Li loads a full 32-bit constant: one addi when it fits in 12 signed
// bits, else the standard lui+addi pair.
func (b *Builder) Li(rd int, v int32) {
	if v >= -2048 && v <= 2047 {
		b.I(OpADDI, rd, 0, v)
		return
	}
	lo := v << 20 >> 20 // sign-extended low 12 bits
	b.U(OpLUI, rd, uint32(v-lo))
	if lo != 0 {
		b.I(OpADDI, rd, rd, lo)
	}
}

// Word emits a raw data word (e.g. an inline constant pool).
func (b *Builder) Word(v uint32) { b.words = append(b.words, v) }

// Bytes emits raw bytes, zero-padded to a word boundary.
func (b *Builder) Bytes(p []byte) {
	for len(p)%4 != 0 {
		p = append(p, 0)
	}
	for i := 0; i < len(p); i += 4 {
		b.words = append(b.words, binary.LittleEndian.Uint32(p[i:]))
	}
}

// Assemble resolves fixups and returns the little-endian image bytes.
func (b *Builder) Assemble() ([]byte, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("rv32: builder: undefined label %q", f.label)
		}
		if f.la {
			v := int32(target)
			lo := v << 20 >> 20
			lui, err := Encode(Inst{Op: OpLUI, Rd: f.in.Rd, Imm: v - lo})
			if err != nil {
				return nil, err
			}
			addi, err := Encode(Inst{Op: OpADDI, Rd: f.in.Rd, Rs1: f.in.Rd, Imm: lo})
			if err != nil {
				return nil, err
			}
			b.words[f.word], b.words[f.word+1] = lui, addi
			continue
		}
		in := f.in
		in.Imm = int32(target) - int32(b.base+4*uint32(f.word))
		w, err := Encode(in)
		if err != nil {
			return nil, err
		}
		b.words[f.word] = w
	}
	out := make([]byte, 4*len(b.words))
	for i, w := range b.words {
		binary.LittleEndian.PutUint32(out[4*i:], w)
	}
	return out, nil
}
