// Package fault implements seeded transient-fault injection campaigns
// over the checkpoint-repair machines.
//
// The paper's schemeE exists to recover precise state after rare,
// unpredictable events; the workloads alone only exercise the handful
// of architectural exception sites they happen to contain. This package
// systematically exercises repair under arbitrary single-event
// corruption, in the style of replay-based fault-injection frameworks
// (RepTFD) and checkpoint-structured campaign pruning (Dietrich et
// al.): a campaign enumerates the (fault model × location × dynamic
// instruction) space of a program, prunes it against the memoized
// reference trace, runs the surviving injections in parallel through
// the machine.Probe seam, and classifies every outcome against the
// trace-reconstructed golden final state.
//
// Fault models split into two groups:
//
//   - detected faults (SpuriousExc, FUDetected) — detection hardware
//     flags the event, so the repair scheme sees an excepting operation
//     and E-repair rewinds to a checkpoint and re-executes precisely.
//     These are the fault classes checkpoint repair covers: a correct
//     implementation yields zero silent corruption and zero hangs, and
//     every repair is byte-verified against the oracle.
//   - silent faults (RegFlip, MemFlip, FUCorrupt) — nothing flags the
//     corruption. Checkpoint repair makes no claim here; the campaign
//     measures how often such faults are masked anyway (dead values,
//     overwrites, repairs in flight) versus ending in silent data
//     corruption.
//
// Everything is deterministic: faults derive from a seed via a
// splitmix64 hash of their coordinates, the machine is cycle-accurate
// and deterministic, and reports render byte-identically at any worker
// count.
package fault

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/machine"
)

// Model is a single-event fault model.
type Model uint8

// Fault models.
const (
	// RegFlip flips one seeded bit of one register's current-space cell
	// immediately before a dynamic instruction issues.
	RegFlip Model = iota
	// MemFlip flips one seeded bit of one data-memory longword (in the
	// cache if resident, else backing memory), bypassing the difference
	// buffer — no undo record exists, like a real particle strike.
	MemFlip
	// FUCorrupt XORs one seeded bit into a functional-unit result just
	// before delivery: the corrupt value reaches the register file,
	// checkpoint backups, and waiting consumers, with no detection.
	FUCorrupt
	// FUDetected is FUCorrupt plus detection: the corrupted operation is
	// flagged with a machine-check exception (a parity/residue-check FU
	// model), so checkpoint repair rewinds and re-executes it.
	FUDetected
	// SpuriousExc flags an operation with a machine-check exception
	// without corrupting anything — the pure detection-latency path:
	// repair must rewind, re-execute, and converge to the same state.
	SpuriousExc
	numModels
)

// Models returns all fault models in report order.
func Models() []Model {
	return []Model{RegFlip, MemFlip, FUCorrupt, FUDetected, SpuriousExc}
}

// CoveredModels returns the detected-fault models — the classes
// checkpoint repair claims to cover (zero SDC, zero hangs).
func CoveredModels() []Model { return []Model{FUDetected, SpuriousExc} }

// String returns a short model name.
func (m Model) String() string {
	switch m {
	case RegFlip:
		return "reg-flip"
	case MemFlip:
		return "mem-flip"
	case FUCorrupt:
		return "fu-corrupt"
	case FUDetected:
		return "fu-detected"
	case SpuriousExc:
		return "spurious-exc"
	}
	return fmt.Sprintf("model(%d)", uint8(m))
}

// Covered reports whether the model is detected by hardware — i.e.
// whether checkpoint repair claims to recover it transparently.
func (m Model) Covered() bool { return m == FUDetected || m == SpuriousExc }

// Injection is one seeded fault: a model, a dynamic-instruction
// coordinate, and a location/bit payload.
type Injection struct {
	Model Model
	// Event is the 0-based dynamic issue-event index the fault fires at
	// (pre-issue for flips; armed there and fired at that operation's
	// writeback for FU models). The machine is deterministic, so any
	// event index below the fault-free run's issue count is guaranteed
	// to be reached.
	Event int
	Reg   isa.Reg // RegFlip target
	Addr  uint32  // MemFlip target (aligned longword)
	XOR   uint32  // flip/corruption mask (one seeded bit)
}

// String renders the injection compactly and deterministically.
func (in Injection) String() string {
	switch in.Model {
	case RegFlip:
		return fmt.Sprintf("%s@%d r%d^%#x", in.Model, in.Event, in.Reg, in.XOR)
	case MemFlip:
		return fmt.Sprintf("%s@%d [%#x]^%#x", in.Model, in.Event, in.Addr, in.XOR)
	case SpuriousExc:
		return fmt.Sprintf("%s@%d", in.Model, in.Event)
	default:
		return fmt.Sprintf("%s@%d ^%#x", in.Model, in.Event, in.XOR)
	}
}

// mix64 is splitmix64 — the deterministic per-coordinate seed hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// seedBit derives the single corruption bit for a fault coordinate.
func seedBit(seed int64, m Model, event, target int) uint32 {
	h := mix64(uint64(seed)) ^ mix64(uint64(m)<<48|uint64(uint32(event))<<16|uint64(uint32(target)))
	return 1 << (mix64(h) % 32)
}

// injector fires exactly one Injection at its coordinate and latches.
// Flip models fire at the pre-issue point of their event. FU models arm
// there, capturing the sequence number and PC the event issues under,
// and fire at the first normal-mode writeback matching both — delivery
// order is decoupled from issue order and sequence numbers are reused
// after squashes, so the seq+PC match (then latching) pins the fault to
// the armed dynamic operation; single-step re-executions are skipped
// because a machine-check forced onto a precise-mode operation would be
// handled architecturally instead of exercising repair.
type injector struct {
	inj    Injection
	events int
	armSeq uint64
	armPC  int
	armed  bool
	fired  bool
}

func (i *injector) PreIssue(m *machine.Machine, seq uint64, pc int, in isa.Inst) {
	e := i.events
	i.events++
	if e != i.inj.Event || i.fired || i.armed {
		return
	}
	switch i.inj.Model {
	case RegFlip:
		m.CorruptReg(i.inj.Reg, i.inj.XOR)
		i.fired = true
	case MemFlip:
		// An unmapped target (possible only if the fault-free prefix
		// diverged from the plan, which determinism forbids) is a no-op
		// strike; either way the injection is spent.
		m.CorruptMem(i.inj.Addr, i.inj.XOR)
		i.fired = true
	default:
		i.armSeq, i.armPC = seq, pc
		i.armed = true
	}
}

func (i *injector) PostWriteback(m *machine.Machine, w machine.Writeback) {
	if !i.armed || i.fired || w.Seq() != i.armSeq {
		return
	}
	if m.Precise() || w.PC() != i.armPC {
		return // squash reused the sequence number; keep waiting
	}
	i.fired = true
	switch i.inj.Model {
	case FUCorrupt:
		w.CorruptResult(i.inj.XOR)
	case FUDetected:
		w.CorruptResult(i.inj.XOR)
		w.ForceException(isa.ExcCodeMachineCheck)
	case SpuriousExc:
		w.ForceException(isa.ExcCodeMachineCheck)
	}
}
