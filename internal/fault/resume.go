package fault

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"sync"

	"repro/internal/refsim"
)

// Checkpointer persists campaign progress records across process
// restarts. The fault package treats the payload as opaque bytes; the
// serving layer backs it with the durable tier of the result store,
// the CLI with a plain file. Save must be atomic with respect to Load
// (a Load never observes a torn record); both are called from the
// campaign's worker goroutines and must be safe for serialized use
// under the saver's lock.
type Checkpointer interface {
	// Load returns the last saved record, if any.
	Load() ([]byte, bool)
	// Save replaces the saved record.
	Save(data []byte) error
}

// progressVersion guards the progress record's schema.
const progressVersion = 1

// progressFile is the campaign progress record: which plan it belongs
// to (fingerprint + golden-state anchors at the placement's snapshot
// steps) and the injections completed so far with their classifications.
type progressFile struct {
	Version  int        `json:"version"`
	PlanHash string     `json:"plan_hash"`
	Anchors  []anchor   `json:"anchors"`
	Done     []savedRun `json:"done"`
}

// anchor ties a progress record to the golden state it was computed
// against: the hex SHA-256 of the reference architectural state at a
// placement-chosen trace step. A resume whose recomputed anchors
// differ (changed workload image, changed trace) discards the record
// instead of splicing stale outcomes into a fresh campaign.
type anchor struct {
	Step int    `json:"step"`
	Hash string `json:"hash"`
}

// savedRun is one completed injection: its index into Plan.Exec and
// its full classification.
type savedRun struct {
	I int       `json:"i"`
	R RunResult `json:"r"`
}

// planFingerprint hashes everything that determines the executed
// injection list and its classification context: seed, models, the
// event axis, the baseline's cycle/repair profile, and every executed
// injection's coordinates. Two campaigns with equal fingerprints run
// identical injection sequences, so their per-index outcomes are
// interchangeable.
func planFingerprint(rep *Report, plan *Plan) string {
	h := sha256.New()
	w := func(vs ...int64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
	}
	h.Write([]byte(rep.Workload))
	h.Write([]byte{0})
	h.Write([]byte(rep.Scheme))
	h.Write([]byte{0})
	w(rep.Seed, int64(rep.Events), rep.BaselineCycles, int64(rep.BaselineRepairs))
	for _, m := range rep.Models {
		w(int64(m))
	}
	w(int64(len(plan.Exec)))
	for _, inj := range plan.Exec {
		w(int64(inj.Model), int64(inj.Event), int64(inj.Reg), int64(inj.Addr), int64(inj.XOR))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// campaignAnchors computes the progress record's integrity anchors:
// golden-state hashes at the placement's snapshot steps (or at the
// trace end when the plan has no placement).
func campaignAnchors(tr *refsim.Trace, plan *Plan) []anchor {
	steps := []int{tr.Steps()}
	if plan.Placement != nil {
		steps = plan.Placement.Steps
	}
	hashes := tr.AnchorHashes(steps)
	out := make([]anchor, len(steps))
	for i := range steps {
		out[i] = anchor{Step: steps[i], Hash: hashes[i]}
	}
	return out
}

// progressSaver accumulates completed injections and periodically
// persists them through the Checkpointer. Saves happen every `every`
// completions and on flush (the cancellation path), so a killed
// campaign loses at most one save interval of work.
type progressSaver struct {
	ck     Checkpointer
	every  int
	header progressFile // Version/PlanHash/Anchors; Done grows

	mu      sync.Mutex
	pending int // completions since the last save
}

func newProgressSaver(ck Checkpointer, every int, planHash string, anchors []anchor) *progressSaver {
	if every <= 0 {
		every = 64
	}
	return &progressSaver{
		ck:    ck,
		every: every,
		header: progressFile{
			Version:  progressVersion,
			PlanHash: planHash,
			Anchors:  anchors,
		},
	}
}

// load restores a previously saved record into results/done, returning
// how many injections it skipped. A record from a different plan, a
// different golden state, or a future schema version is ignored.
func (ps *progressSaver) load(results []RunResult, done []bool) int {
	data, ok := ps.ck.Load()
	if !ok {
		return 0
	}
	var pf progressFile
	if err := json.Unmarshal(data, &pf); err != nil {
		return 0
	}
	if pf.Version != progressVersion || pf.PlanHash != ps.header.PlanHash {
		return 0
	}
	if len(pf.Anchors) != len(ps.header.Anchors) {
		return 0
	}
	for i, a := range pf.Anchors {
		if a != ps.header.Anchors[i] {
			return 0
		}
	}
	n := 0
	for _, sr := range pf.Done {
		if sr.I < 0 || sr.I >= len(results) || done[sr.I] {
			continue
		}
		results[sr.I] = sr.R
		done[sr.I] = true
		n++
	}
	ps.mu.Lock()
	ps.header.Done = append(ps.header.Done, pf.Done...)
	ps.mu.Unlock()
	return n
}

// completed records one finished injection, saving when the interval
// fills.
func (ps *progressSaver) completed(i int, r RunResult) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.header.Done = append(ps.header.Done, savedRun{I: i, R: r})
	ps.pending++
	if ps.pending >= ps.every {
		ps.saveLocked()
	}
}

// flush persists any unsaved completions. Called on every campaign
// exit path — including cancellation, which is what makes kill-and-
// resume lose at most the in-flight injections.
func (ps *progressSaver) flush() {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.pending > 0 {
		ps.saveLocked()
	}
}

// saveLocked marshals and persists the record. Holding the lock across
// Save serializes Checkpointer calls, so a slow save can never be
// overwritten by an older concurrent one.
func (ps *progressSaver) saveLocked() {
	ps.pending = 0
	data, err := json.Marshal(&ps.header)
	if err != nil {
		return
	}
	ps.ck.Save(data)
}
