package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/prog"
)

// SubDispatcher routes one canonical sub-job spec to a cluster worker
// and returns its result. Implemented by internal/cluster's
// consistent-hash dispatcher; defined here so the service layer owns
// what gets split and how sub-results merge, while the cluster layer
// owns only where sub-jobs go.
type SubDispatcher interface {
	Dispatch(ctx context.Context, spec Spec) (*Result, error)
	// FanWidth is the number of live workers — the fan-out sizing
	// signal. Zero means dispatch would fail, so run locally.
	FanWidth() int
}

// DistributedExecutor is the coordinator's execution function: whole
// sim jobs route to their key's owner, campaigns fan out as plan
// shards, sweeps run locally with their batch groups offered to the
// remote batch hook. Every remote path falls back to plain local
// execution on any dispatch problem, so a degraded cluster serves
// exactly what a single node would — byte-identically, since shards
// and batches recombine by plan/lane index regardless of where (or how
// many times) they ran.
type DistributedExecutor struct {
	Server *Server
	Disp   SubDispatcher
	// MaxShards caps one campaign's fan-out (default 8).
	MaxShards int
	// OnFallback, if set, observes each remote-to-local fallback with a
	// short reason (the coordinator counts them in /metrics).
	OnFallback func(reason string)
}

func (d *DistributedExecutor) fallback(reason string) {
	if d.OnFallback != nil {
		d.OnFallback(reason)
	}
}

// Execute implements the Server executor seam (SetExecutor).
func (d *DistributedExecutor) Execute(ctx context.Context, key string, spec Spec) (*Result, error) {
	switch spec.Kind {
	case KindCampaign:
		if spec.Campaign != nil && spec.Campaign.Shards > 1 {
			// Already a shard sub-job (a worker's workload, but a
			// coordinator can serve it too): run locally.
			return d.Server.ExecuteLocal(ctx, key, spec)
		}
		return d.executeCampaign(ctx, key, spec)
	case KindSweep:
		// Sweeps fan out through the remote batch hook the coordinator
		// installed; the sweep body itself runs here.
		return d.Server.ExecuteLocal(ctx, key, spec)
	default:
		// Whole-job routing: the key's ring owner computes and caches
		// it, so repeat submissions of hot sims hit the same worker's
		// cache no matter which coordinator path they enter by.
		if d.Disp.FanWidth() == 0 {
			return d.Server.ExecuteLocal(ctx, key, spec)
		}
		res, err := d.Disp.Dispatch(ctx, spec)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			d.fallback(spec.Kind + ": " + err.Error())
			return d.Server.ExecuteLocal(ctx, key, spec)
		}
		return res, nil
	}
}

// executeCampaign fans a campaign out as interleaved plan shards. The
// coordinator itself runs the baseline and builds the plan (cheap: one
// fault-free run), dispatches the injection shards, and merges. Any
// shard that cannot be computed remotely is executed locally, so the
// merge always completes with exactly the bytes a single node produces.
func (d *DistributedExecutor) executeCampaign(ctx context.Context, key string, spec Spec) (*Result, error) {
	width := d.Disp.FanWidth()
	if width == 0 {
		return d.Server.ExecuteLocal(ctx, key, spec)
	}
	start := time.Now()
	p, err := spec.program()
	if err != nil {
		return nil, err
	}
	if _, err := spec.Machine.machineConfig(); err != nil {
		return nil, err
	}
	mk := func() machine.Config {
		cfg, _ := spec.Machine.machineConfig()
		return cfg
	}
	cc, err := spec.campaignConfig()
	if err != nil {
		return nil, err
	}
	merger, err := fault.NewShardMerger(p, mk, cc)
	if err != nil {
		return nil, err
	}
	maxShards := d.MaxShards
	if maxShards <= 0 {
		maxShards = 8
	}
	shards := min(maxShards, max(width, 1)*2, merger.Executed())
	if shards <= 1 {
		d.fallback("campaign: plan too small to shard")
		return d.Server.ExecuteLocal(ctx, key, spec)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex // guards merger.Fill and firstErr
	var firstErr error
	for shard := 0; shard < shards; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			sub := spec
			camp := *spec.Campaign
			camp.Shard, camp.Shards = shard, shards
			sub.Campaign = &camp
			sub.TimeoutMS = 0 // sub-jobs live and die with this ctx

			sr, err := d.dispatchShard(ctx, sub)
			if err != nil {
				// Local completion of a lost shard: same plan, same
				// bytes — the retry of last resort.
				d.fallback(fmt.Sprintf("campaign shard %d/%d: %v", shard, shards, err))
				sr, err = fault.RunShard(ctx, p, mk, cc, shard, shards)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if err := merger.Fill(sr); err != nil && firstErr == nil {
				firstErr = err
			}
		}(shard)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	rep, err := merger.Report()
	if err != nil {
		return nil, err
	}
	res := &Result{Key: key, Kind: spec.Kind, Spec: spec}
	res.fillCampaign(rep)
	res.ElapsedMS = time.Since(start).Milliseconds()
	return res, nil
}

func (d *DistributedExecutor) dispatchShard(ctx context.Context, sub Spec) (*fault.ShardResult, error) {
	res, err := d.Disp.Dispatch(ctx, sub)
	if err != nil {
		return nil, err
	}
	if res.CampaignShard == nil {
		return nil, fmt.Errorf("service: shard result missing campaign_shard payload")
	}
	return res.CampaignShard, nil
}

// BatchRunner returns the experiments.RemoteBatchRunner that offloads
// sweep batch groups through the dispatcher. Install with
// experiments.SetRemoteBatchRunner; it declines (ok=false) whenever the
// group is not faithfully encodable or the dispatch fails, and the
// group then runs on the exact local path it always did.
func (d *DistributedExecutor) BatchRunner() experiments.RemoteBatchRunner {
	return func(ctx context.Context, p *prog.Program, cfgs []machine.Config) ([]*machine.Result, []error, bool) {
		if d.Disp.FanWidth() == 0 {
			return nil, nil, false
		}
		bs, ok := EncodeBatch(p, cfgs)
		if !ok {
			d.fallback("batch: not encodable")
			return nil, nil, false
		}
		res, err := d.Disp.Dispatch(ctx, Spec{Kind: KindBatch, Batch: bs})
		if err != nil || res.Batch == nil {
			if ctx.Err() != nil {
				return nil, nil, false
			}
			d.fallback(fmt.Sprintf("batch %s: dispatch: %v", p.Name, err))
			return nil, nil, false
		}
		results, errs, err := res.Batch.Decode()
		if err != nil || len(results) != len(cfgs) {
			d.fallback(fmt.Sprintf("batch %s: decode: %v", p.Name, err))
			return nil, nil, false
		}
		return results, errs, true
	}
}
