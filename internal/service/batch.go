package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/regfile"
	"repro/internal/stats"
)

// The batch job kind carries one batch-lockstep sweep group — one
// program, up to batchWidth machine configurations — from a
// coordinator to a worker. Fidelity is the whole game: a remote batch
// must produce byte-for-byte the results a local run would, including
// full architectural state (sweeps diff final memories against
// references), every stats block (sweeps read stall breakdowns out of
// *failed* runs), and sentinel errors (sweeps classify deadlocks with
// errors.Is). Anything the codec cannot express — probes, trace
// callbacks, exotic scheme or predictor types — makes EncodeBatch
// decline, and the group runs locally instead.

// ProgramBlob is a wire-format program: instruction words (the ISA's
// own binary encoding), entry point, and initial data segments.
type ProgramBlob struct {
	Name  string        `json:"name"`
	Words []uint32      `json:"words"`
	Entry int           `json:"entry"`
	Data  []SegmentBlob `json:"data,omitempty"`
}

// SegmentBlob is one initial-data segment.
type SegmentBlob struct {
	Addr uint32 `json:"addr"`
	Data []byte `json:"data"`
}

// ConfigBlob is a wire-format machine.Config for one batch lane.
type ConfigBlob struct {
	Scheme           core.SchemeDesc       `json:"scheme"`
	Predictor        *bpred.Desc           `json:"predictor,omitempty"`
	Timing           TimingBlob            `json:"timing"`
	Cache            cache.Config          `json:"cache"`
	MemSystem        machine.MemSystemKind `json:"mem_system"`
	BufferCap        int                   `json:"buffer_cap,omitempty"`
	Speculate        bool                  `json:"speculate,omitempty"`
	PreciseBudget    int                   `json:"precise_budget,omitempty"`
	MaxCycles        int64                 `json:"max_cycles,omitempty"`
	WatchdogCycles   int64                 `json:"watchdog_cycles,omitempty"`
	DisableCycleSkip bool                  `json:"disable_cycle_skip,omitempty"`
}

// TimingBlob mirrors machine.Timing minus the ExtraLatency function
// (configs carrying one are not encodable).
type TimingBlob struct {
	IssueWidth int `json:"issue_width"`
	Window     int `json:"window"`
	LSQ        int `json:"lsq"`
	ALUUnits   int `json:"alu_units"`
	ALULat     int `json:"alu_lat"`
	MulDivUnit int `json:"muldiv_unit"`
	MulLat     int `json:"mul_lat"`
	DivLat     int `json:"div_lat"`
	BranchLat  int `json:"branch_lat"`
	MemPorts   int `json:"mem_ports"`
	CacheHit   int `json:"cache_hit"`
	CacheMiss  int `json:"cache_miss"`
	CDBWidth   int `json:"cdb_width"`
}

// BatchSpec is the batch job payload: one program, one config per lane.
type BatchSpec struct {
	Program ProgramBlob  `json:"program"`
	Configs []ConfigBlob `json:"configs"`
}

// ResultBlob is a wire-format machine.Result plus error, with enough
// fidelity that the coordinator can hand the decoded pair to a sweep
// in place of a local run's.
type ResultBlob struct {
	Regs              []uint32        `json:"regs,omitempty"`
	Mem               []mem.Page      `json:"mem,omitempty"`
	Exceptions        []isa.Exception `json:"exceptions,omitempty"`
	Halted            bool            `json:"halted,omitempty"`
	ShadowHalted      bool            `json:"shadow_halted,omitempty"`
	Stats             stats.Run       `json:"stats"`
	Scheme            core.Stats      `json:"scheme"`
	Cache             cache.Stats     `json:"cache"`
	Diff              diff.Stats      `json:"diff"`
	Regfile           regfile.Stats   `json:"regfile"`
	PredictorAccuracy float64         `json:"predictor_accuracy,omitempty"`
	// ErrKind/ErrMsg round-trip the run error: kind selects the
	// sentinel errors.Is must keep matching, msg preserves the text.
	ErrKind string `json:"err_kind,omitempty"`
	ErrMsg  string `json:"err_msg,omitempty"`
}

// BatchResult is the batch job's result payload, one entry per lane.
type BatchResult struct {
	Lanes []ResultBlob `json:"lanes"`
}

// remoteErr reconstructs a worker-side run error so coordinator-side
// sweeps still classify it with errors.Is against the machine
// sentinels.
type remoteErr struct {
	msg  string
	kind error // sentinel to unwrap to, or nil
}

func (e *remoteErr) Error() string { return e.msg }
func (e *remoteErr) Unwrap() error { return e.kind }

func encodeErr(err error) (kind, msg string) {
	if err == nil {
		return "", ""
	}
	switch {
	case errors.Is(err, machine.ErrCycleLimit):
		kind = "cycle-limit"
	case errors.Is(err, machine.ErrDeadlock):
		kind = "deadlock"
	default:
		kind = "other"
	}
	return kind, err.Error()
}

func decodeErr(kind, msg string) error {
	if kind == "" {
		return nil
	}
	var sentinel error
	switch kind {
	case "cycle-limit":
		sentinel = machine.ErrCycleLimit
	case "deadlock":
		sentinel = machine.ErrDeadlock
	}
	return &remoteErr{msg: msg, kind: sentinel}
}

// EncodeBatch converts one batch group into a wire spec. ok is false
// when any lane is not faithfully expressible: a probe or trace hook
// is installed, the scheme or predictor type has no descriptor, the
// timing carries an ExtraLatency function, or the program does not
// round-trip through the ISA encoder bit-for-bit.
func EncodeBatch(p *prog.Program, cfgs []machine.Config) (*BatchSpec, bool) {
	if len(cfgs) == 0 {
		return nil, false
	}
	words := isa.EncodeProgram(p.Code)
	back, err := isa.DecodeProgram(words)
	if err != nil || len(back) != len(p.Code) {
		return nil, false
	}
	for i := range back {
		if back[i] != p.Code[i] {
			return nil, false
		}
	}
	pb := ProgramBlob{Name: p.Name, Words: words, Entry: p.Entry}
	for _, s := range p.Data {
		d := make([]byte, len(s.Data))
		copy(d, s.Data)
		pb.Data = append(pb.Data, SegmentBlob{Addr: s.Addr, Data: d})
	}
	bs := &BatchSpec{Program: pb, Configs: make([]ConfigBlob, len(cfgs))}
	for i, cfg := range cfgs {
		cb, ok := encodeConfig(cfg)
		if !ok {
			return nil, false
		}
		bs.Configs[i] = cb
	}
	return bs, true
}

func encodeConfig(cfg machine.Config) (ConfigBlob, bool) {
	if cfg.Trace != nil || cfg.Probe != nil || cfg.RefTrace != nil {
		return ConfigBlob{}, false
	}
	if cfg.Timing.ExtraLatency != nil {
		return ConfigBlob{}, false
	}
	sd, ok := core.DescribeScheme(cfg.Scheme)
	if !ok {
		return ConfigBlob{}, false
	}
	cb := ConfigBlob{
		Scheme:           sd,
		Timing:           encodeTiming(cfg.Timing),
		Cache:            cfg.Cache,
		MemSystem:        cfg.MemSystem,
		BufferCap:        cfg.BufferCap,
		Speculate:        cfg.Speculate,
		PreciseBudget:    cfg.PreciseBudget,
		MaxCycles:        cfg.MaxCycles,
		WatchdogCycles:   cfg.WatchdogCycles,
		DisableCycleSkip: cfg.DisableCycleSkip,
	}
	if cfg.Predictor != nil {
		pd, ok := bpred.Describe(cfg.Predictor)
		if !ok {
			return ConfigBlob{}, false
		}
		cb.Predictor = &pd
	}
	return cb, true
}

func encodeTiming(t machine.Timing) TimingBlob {
	return TimingBlob{
		IssueWidth: t.IssueWidth, Window: t.Window, LSQ: t.LSQ,
		ALUUnits: t.ALUUnits, ALULat: t.ALULat,
		MulDivUnit: t.MulDivUnit, MulLat: t.MulLat, DivLat: t.DivLat,
		BranchLat: t.BranchLat, MemPorts: t.MemPorts,
		CacheHit: t.CacheHit, CacheMiss: t.CacheMiss, CDBWidth: t.CDBWidth,
	}
}

func (t TimingBlob) timing() machine.Timing {
	return machine.Timing{
		IssueWidth: t.IssueWidth, Window: t.Window, LSQ: t.LSQ,
		ALUUnits: t.ALUUnits, ALULat: t.ALULat,
		MulDivUnit: t.MulDivUnit, MulLat: t.MulLat, DivLat: t.DivLat,
		BranchLat: t.BranchLat, MemPorts: t.MemPorts,
		CacheHit: t.CacheHit, CacheMiss: t.CacheMiss, CDBWidth: t.CDBWidth,
	}
}

// program decodes the wire program. The trace-cache memo slot starts
// empty; workers intern decoded programs (see programCache) so repeat
// batches of the same sweep share one memoized reference trace.
func (b *BatchSpec) program() (*prog.Program, error) {
	code, err := isa.DecodeProgram(b.Program.Words)
	if err != nil {
		return nil, fmt.Errorf("service: batch program: %w", err)
	}
	p := &prog.Program{Name: b.Program.Name, Code: code, Entry: b.Program.Entry}
	for _, s := range b.Program.Data {
		d := make([]byte, len(s.Data))
		copy(d, s.Data)
		p.Data = append(p.Data, prog.Segment{Addr: s.Addr, Data: d})
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("service: batch program: %w", err)
	}
	return p, nil
}

func (c ConfigBlob) config() (machine.Config, error) {
	scheme, err := core.NewSchemeFromDesc(c.Scheme)
	if err != nil {
		return machine.Config{}, err
	}
	cfg := machine.Config{
		Scheme:           scheme,
		Timing:           c.Timing.timing(),
		Cache:            c.Cache,
		MemSystem:        c.MemSystem,
		BufferCap:        c.BufferCap,
		Speculate:        c.Speculate,
		PreciseBudget:    c.PreciseBudget,
		MaxCycles:        c.MaxCycles,
		WatchdogCycles:   c.WatchdogCycles,
		DisableCycleSkip: c.DisableCycleSkip,
	}
	if c.Predictor != nil {
		p, err := bpred.NewFromDesc(*c.Predictor)
		if err != nil {
			return machine.Config{}, err
		}
		cfg.Predictor = p
	}
	return cfg, nil
}

// EncodeBatchResults converts per-lane run outcomes to the wire form.
func EncodeBatchResults(results []*machine.Result, errs []error) *BatchResult {
	out := &BatchResult{Lanes: make([]ResultBlob, len(results))}
	for i := range results {
		lane := &out.Lanes[i]
		if r := results[i]; r != nil {
			lane.Regs = append([]uint32(nil), r.Regs[:]...)
			if r.Mem != nil {
				lane.Mem = r.Mem.Dump()
			}
			lane.Exceptions = r.Exceptions
			lane.Halted = r.Halted
			lane.ShadowHalted = r.ShadowHalted
			lane.Stats = r.Stats
			lane.Scheme = r.Scheme
			lane.Cache = r.Cache
			lane.Diff = r.Diff
			lane.Regfile = r.Regfile
			lane.PredictorAccuracy = r.PredictorAccuracy
		}
		var err error
		if errs != nil {
			err = errs[i]
		}
		lane.ErrKind, lane.ErrMsg = encodeErr(err)
	}
	return out
}

// Decode converts wire results back to what a local machine run would
// have returned.
func (b *BatchResult) Decode() ([]*machine.Result, []error, error) {
	results := make([]*machine.Result, len(b.Lanes))
	errs := make([]error, len(b.Lanes))
	for i := range b.Lanes {
		lane := &b.Lanes[i]
		errs[i] = decodeErr(lane.ErrKind, lane.ErrMsg)
		if lane.Regs == nil && lane.Mem == nil && !lane.Halted && !lane.ShadowHalted &&
			lane.Stats == (stats.Run{}) && errs[i] != nil {
			// A lane that never produced a result (machine.New failed).
			continue
		}
		r := &machine.Result{
			Exceptions:        lane.Exceptions,
			Halted:            lane.Halted,
			ShadowHalted:      lane.ShadowHalted,
			Stats:             lane.Stats,
			Scheme:            lane.Scheme,
			Cache:             lane.Cache,
			Diff:              lane.Diff,
			Regfile:           lane.Regfile,
			PredictorAccuracy: lane.PredictorAccuracy,
		}
		if len(lane.Regs) != 0 {
			if len(lane.Regs) != len(r.Regs) {
				return nil, nil, fmt.Errorf("service: batch lane %d has %d regs, want %d", i, len(lane.Regs), len(r.Regs))
			}
			copy(r.Regs[:], lane.Regs)
		}
		if lane.Mem != nil {
			m, err := mem.Restore(lane.Mem)
			if err != nil {
				return nil, nil, fmt.Errorf("service: batch lane %d: %w", i, err)
			}
			r.Mem = m
		}
		results[i] = r
	}
	return results, errs, nil
}

// programCache interns decoded batch programs by content hash so a
// worker serving many batches of one sweep reuses a single *Program
// value — pointer identity is the trace cache's memoization key, so
// interning is what keeps the memoized reference trace warm across
// sub-jobs.
type programCache struct {
	mu sync.Mutex
	m  map[string]*prog.Program
}

func newProgramCache() *programCache {
	return &programCache{m: make(map[string]*prog.Program)}
}

func (pc *programCache) hash(b *ProgramBlob) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(b.Entry)))
	h.Write(buf[:])
	h.Write([]byte(b.Name))
	h.Write([]byte{0})
	for _, w := range b.Words {
		binary.LittleEndian.PutUint32(buf[:4], w)
		h.Write(buf[:4])
	}
	for _, s := range b.Data {
		binary.LittleEndian.PutUint32(buf[:4], s.Addr)
		h.Write(buf[:4])
		binary.LittleEndian.PutUint64(buf[:], uint64(len(s.Data)))
		h.Write(buf[:8])
		h.Write(s.Data)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// intern returns the canonical *Program for the blob, decoding at most
// once per content hash.
func (pc *programCache) intern(b *BatchSpec) (*prog.Program, error) {
	key := pc.hash(&b.Program)
	pc.mu.Lock()
	p, ok := pc.m[key]
	pc.mu.Unlock()
	if ok {
		return p, nil
	}
	p, err := b.program()
	if err != nil {
		return nil, err
	}
	pc.mu.Lock()
	if prior, ok := pc.m[key]; ok {
		p = prior
	} else {
		if len(pc.m) >= 64 { // sweeps cycle few programs; bound the map anyway
			clear(pc.m)
		}
		pc.m[key] = p
	}
	pc.mu.Unlock()
	return p, nil
}
