package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/store"
)

// Config sizes the daemon. Zero fields take defaults.
type Config struct {
	// Workers is the number of concurrent executions (each execution
	// additionally fans out on the experiments pool). Default 2.
	Workers int
	// QueueCap bounds admitted-but-unstarted executions; beyond it the
	// daemon sheds with 429. Default 64.
	QueueCap int
	// CacheCap bounds completed results kept in memory, in entries.
	// Default 256.
	CacheCap int
	// CacheBytes bounds completed results kept in memory, in payload
	// bytes. Default 64 MiB.
	CacheBytes int64
	// JobHistory bounds the job registry. Default 4096.
	JobHistory int
	// StoreDir, when set, enables the persistent disk tier: results
	// and campaign progress survive restarts and are answered from
	// disk. Empty disables persistence (memory-only store).
	StoreDir string
	// StoreBytes bounds the disk tier (default 1 GiB).
	StoreBytes int64
	// StoreMaxAge evicts disk entries older than this (0 = unbounded).
	StoreMaxAge time.Duration
	// StoreMinCost is the recompute-cost threshold: results whose
	// execution took less than this skip the disk tier (0 = persist
	// everything).
	StoreMinCost time.Duration
	// SessionCap bounds concurrently open debug sessions; beyond it
	// POST /sessions answers 429. Default 8.
	SessionCap int
	// SessionTTL evicts debug sessions idle longer than this (a session
	// with a verb in flight is never idle). Default 15 minutes.
	SessionTTL time.Duration
}

// Server is the ckptd core: job registry, bounded queue, and
// content-addressed single-flight result cache behind an HTTP/JSON
// API. Create with New, serve Handler(), stop with Drain.
type Server struct {
	cfg        Config
	baseCtx    context.Context
	baseCancel context.CancelFunc
	store      *store.Store
	cache      *resultCache
	queue      *queue
	jobs       *jobSet
	metrics    *metrics
	sessions   *sessionManager
	mux        *http.ServeMux
	draining   atomic.Bool

	// executeHook is the execution function; tests substitute slow or
	// failing executions to exercise backpressure and drain paths, and
	// a cluster coordinator substitutes its routing executor
	// (SetExecutor).
	executeHook func(ctx context.Context, key string, spec Spec) (*Result, error)

	// resultFallback, if set, answers GET /results/{key} misses — the
	// coordinator's peer-fetch path (SetResultFallback).
	resultFallback func(ctx context.Context, key string) *Result

	extrasMu      sync.Mutex
	metricsExtras map[string]func() any
}

// Sentinel submission-rejection errors; coalesced followers attached to
// a shed leader fail with these.
var (
	errQueueFull = errors.New("queue full")
	errDraining  = errors.New("draining")
)

// New builds a server and starts its worker pool. The error is the
// store's: an unusable StoreDir fails construction rather than
// silently serving without persistence.
func New(cfg Config) (*Server, error) {
	st, err := store.Open(store.Config{
		Dir:        cfg.StoreDir,
		MemEntries: cfg.CacheCap,
		MemBytes:   cfg.CacheBytes,
		DiskBytes:  cfg.StoreBytes,
		MaxAge:     cfg.StoreMaxAge,
		MinCost:    cfg.StoreMinCost,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, store: st}
	s.executeHook = s.execute
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.cache = newResultCache(st)
	s.jobs = newJobSet(cfg.JobHistory)
	s.metrics = newMetrics()
	s.queue = newQueue(cfg.QueueCap, cfg.Workers, s.runEntry)
	s.sessions = newSessionManager(cfg.SessionCap, cfg.SessionTTL)
	go s.sessions.janitor(s.baseCtx)

	s.mux = http.NewServeMux()
	s.handle("POST /jobs", s.handleSubmit)
	s.handle("GET /jobs", s.handleList)
	s.handle("GET /jobs/{id}", s.handleGet)
	s.handle("DELETE /jobs/{id}", s.handleCancel)
	s.handle("GET /results/{key}", s.handleResult)
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("POST /sessions", s.handleSessionCreate)
	s.handle("GET /sessions", s.handleSessionList)
	s.handle("GET /sessions/{id}", s.handleSessionGet)
	s.handle("POST /sessions/{id}/step", s.handleSessionStep)
	s.handle("POST /sessions/{id}/run", s.handleSessionRun)
	s.handle("GET /sessions/{id}/checkpoints", s.handleSessionCheckpoints)
	s.handle("POST /sessions/{id}/rewind", s.handleSessionRewind)
	s.handle("GET /sessions/{id}/mem", s.handleSessionMem)
	s.handle("GET /sessions/{id}/divergence", s.handleSessionDivergence)
	s.handle("DELETE /sessions/{id}", s.handleSessionDelete)
	s.SetMetricsExtra("sessions", s.sessions.metricsView)
	return s, nil
}

// MustNew is New but panics on error — for callers without a disk
// tier, whose construction cannot fail.
func MustNew(cfg Config) *Server {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admission (new submissions get 429) and waits for every
// admitted execution to finish. If ctx expires first, running
// executions are cancelled through their contexts — which unwinds the
// simulation pool — and Drain still waits for the workers to exit, so
// after it returns no execution goroutines remain either way.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	// Close debug sessions before the queue: Close interrupts streaming
	// run verbs, so connected debuggers receive a terminal "closed"
	// event while the listener is still up, instead of a dropped
	// connection when it stops.
	s.sessions.closeAll("daemon draining")
	done := make(chan struct{})
	go func() {
		s.queue.close()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseCancel()
		<-done
	}
	s.baseCancel()
	return err
}

// runEntry is the worker body: one single-flight execution.
func (s *Server) runEntry(e *entry) {
	if err := e.ctx.Err(); err != nil {
		// Every interested job cancelled while queued, or the daemon is
		// hard-stopping: skip the work.
		s.cache.complete(e, nil, err)
		return
	}
	for _, j := range e.start() {
		j.markRunning()
	}
	s.metrics.execs.Add(1)
	res, err := s.executeHook(e.ctx, e.key, e.spec)
	if err != nil {
		s.metrics.execFail.Add(1)
	} else {
		s.metrics.execDone.Add(1)
	}
	s.cache.complete(e, res, err)
}

// submitResponse is the POST /jobs reply. Result is present for cache
// hits and for ?wait=1 submissions that ran to completion.
type submitResponse struct {
	Job    JobView `json:"job"`
	Result *Result `json:"result,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad job spec: %v", err))
		return
	}
	key, canon, err := spec.Key()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	wait := isTrue(r.URL.Query().Get("wait"))

	hashSpec := canon
	hashSpec.TimeoutMS = 0
	res, e, leader := s.cache.acquire(s.baseCtx, key, hashSpec)
	if res != nil {
		// Completed-result cache: answer without touching the queue.
		s.metrics.submitted.Add(1)
		s.metrics.hits.Add(1)
		j := s.jobs.add(key, canon)
		j.CacheHit = true
		j.finish(res, nil)
		resp := submitResponse{Job: j.View()}
		if wait {
			resp.Result = res
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if leader {
		// This submission must buy a queue slot; when the queue is full
		// we shed it rather than buffer, and when the daemon is draining
		// we refuse it outright. The draining check comes after the
		// enqueue attempt so the answer is authoritative: tryEnqueue and
		// queue.close serialize on the queue lock, so a submission that
		// wins the race is admitted and will be drained, and one that
		// loses fails tryEnqueue here — accepted-then-dropped cannot
		// happen.
		if !s.queue.tryEnqueue(e) {
			if s.draining.Load() {
				s.cache.abort(e, errDraining)
				s.metrics.rejected.Add(1)
				httpError(w, http.StatusServiceUnavailable, "draining")
				return
			}
			s.cache.abort(e, errQueueFull)
			s.metrics.rejected.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
			httpError(w, http.StatusTooManyRequests, "queue full")
			return
		}
		s.metrics.misses.Add(1)
	} else {
		s.metrics.coalesced.Add(1)
	}

	s.metrics.submitted.Add(1)
	j := s.jobs.add(key, canon)
	j.Coalesced = !leader
	if canon.TimeoutMS > 0 {
		// Arm the deadline before attaching so a finish can always stop
		// the timer.
		d := time.Duration(canon.TimeoutMS) * time.Millisecond
		j.mu.Lock()
		j.timer = time.AfterFunc(d, func() {
			s.metrics.cancelled.Add(1)
			j.cancel("deadline exceeded")
		})
		j.mu.Unlock()
	}
	e.attach(j)

	if !wait {
		w.Header().Set("Location", "/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, submitResponse{Job: j.View()})
		return
	}

	// Synchronous path: the client's connection is the job's lease.
	// Disconnect (or client-side timeout) cancels the job, and if it was
	// the last one interested, the execution itself.
	select {
	case <-j.done:
	case <-r.Context().Done():
		s.metrics.cancelled.Add(1)
		j.cancel("client disconnected")
		return
	}
	got, _, _ := j.terminal()
	writeJSON(w, http.StatusOK, submitResponse{Job: j.View(), Result: got})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if _, _, terminal := j.terminal(); !terminal {
		s.metrics.cancelled.Add(1)
		j.cancel("cancelled by client")
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	// Accept a job ID as an alias for its cache key.
	if j, ok := s.jobs.get(key); ok {
		key = j.Key
	}
	res, ok := s.cache.lookup(key)
	if !ok && s.resultFallback != nil {
		// Remote fill: a coordinator asked this node for a result a peer
		// computed. The fallback fetches it and the store keeps it, so
		// repeat reads are local.
		if res = s.resultFallback(r.Context(), key); res != nil {
			if data, err := json.Marshal(res); err == nil {
				s.store.Fill(key, data)
			}
			ok = true
		}
	}
	if !ok {
		httpError(w, http.StatusNotFound, "no cached result (job still running, failed, or evicted)")
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// Healthz is the GET /healthz body: liveness plus the capacity signals
// a cluster coordinator routes on.
type Healthz struct {
	Status     string      `json:"status"` // ok | draining
	Version    string      `json:"version"`
	QueueDepth int64       `json:"queue_depth"`
	Running    int64       `json:"running"`
	Sessions   int         `json:"sessions"` // open debug sessions
	Store      store.Stats `json:"store"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Healthz{
		Status:     "ok",
		Version:    buildinfo.Version(),
		QueueDepth: s.queue.Depth(),
		Running:    s.queue.Running(),
		Sessions:   s.sessions.open(),
		Store:      s.store.Stats(),
	}
	code := http.StatusOK
	if s.draining.Load() {
		// Draining daemons fail health checks so load balancers stop
		// routing to them while in-flight jobs finish.
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	v := s.metrics.view(s.queue, s.cache, s.jobs, s.store.Stats())
	s.extrasMu.Lock()
	for name, fn := range s.metricsExtras {
		v[name] = fn()
	}
	s.extrasMu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

// SetExecutor replaces the execution function jobs run through — the
// cluster coordinator's seam: it routes specs to workers and falls
// back to ExecuteLocal. Call before serving traffic.
func (s *Server) SetExecutor(fn func(ctx context.Context, key string, spec Spec) (*Result, error)) {
	s.executeHook = fn
}

// ExecuteLocal runs one canonical spec on this process exactly as an
// unclustered daemon would, including campaign progress persistence.
func (s *Server) ExecuteLocal(ctx context.Context, key string, spec Spec) (*Result, error) {
	return s.execute(ctx, key, spec)
}

// SetResultFallback installs the GET /results/{key} miss handler: it
// returns a result fetched elsewhere (or nil), and the store keeps what
// it returns. The coordinator uses it to answer for results that live
// on a worker.
func (s *Server) SetResultFallback(fn func(ctx context.Context, key string) *Result) {
	s.resultFallback = fn
}

// SetMetricsExtra adds a named section to GET /metrics, computed per
// request — the coordinator publishes ring and fan-out state this way.
func (s *Server) SetMetricsExtra(name string, fn func() any) {
	s.extrasMu.Lock()
	defer s.extrasMu.Unlock()
	if s.metricsExtras == nil {
		s.metricsExtras = make(map[string]func() any)
	}
	s.metricsExtras[name] = fn
}

// QueueStats reports admitted-but-unstarted and running execution
// counts (the capacity signal workers publish via /healthz).
func (s *Server) QueueStats() (depth, running int64) {
	return s.queue.Depth(), s.queue.Running()
}

// Lookup returns the locally stored result for a key, if any.
func (s *Server) Lookup(key string) (*Result, bool) { return s.cache.lookup(key) }

// retryAfter estimates (in whole seconds, at least 1) when a shed
// client should try again: the current backlog divided over the
// workers, assuming roughly one-second executions.
func (s *Server) retryAfter() int {
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = 2
	}
	sec := int(s.queue.Depth()) / workers
	if sec < 1 {
		sec = 1
	}
	return sec
}

// handle registers a route with latency instrumentation. The pattern
// string doubles as the metrics label, so /metrics reports per-endpoint
// distributions keyed exactly like the mux.
func (s *Server) handle(pattern string, fn http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		fn(w, r)
		s.metrics.observe(pattern, time.Since(start))
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func isTrue(s string) bool {
	switch s {
	case "", "0", "false", "no":
		return false
	}
	return true
}
