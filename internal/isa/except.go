package isa

import "fmt"

// ExcKind distinguishes traps from faults. The distinction matters for
// checkpoint repair because the two have different precise repair points
// (paper §2.2):
//
//   - a trap's precise repair point is the instruction boundary just to
//     the RIGHT of the violating instruction (the instruction completes);
//   - a fault's precise repair point is the instruction boundary just to
//     the LEFT of the violating instruction (the instruction must appear
//     never to have executed).
type ExcKind uint8

// Exception kinds.
const (
	ExcNone ExcKind = iota
	ExcTrap
	ExcFault
)

// String returns a readable kind name.
func (k ExcKind) String() string {
	switch k {
	case ExcNone:
		return "none"
	case ExcTrap:
		return "trap"
	case ExcFault:
		return "fault"
	}
	return fmt.Sprintf("exckind(%d)", uint8(k))
}

// ExcCode identifies the architectural cause of an exception.
type ExcCode uint8

// Exception codes.
const (
	ExcCodeNone       ExcCode = iota
	ExcCodeOverflow           // trap: ADDV/SUBV/MULV/ADDIV signed overflow
	ExcCodeSoftware           // trap: TRAP instruction
	ExcCodeDivideZero         // fault: DIV/REM by zero
	ExcCodePageFault          // fault: access to unmapped memory
	ExcCodeMisaligned         // fault: unaligned longword access
	ExcCodeBadInst            // fault: invalid opcode
	// ExcCodeMachineCheck is raised by detection hardware (e.g. a parity
	// check on a functional-unit result), not by any instruction's
	// architectural semantics. The fault-injection campaigns use it for
	// the "detected transient fault" models: checkpoint repair recovers
	// transparently when the flagged state is still repairable, and a
	// machine check that reaches the handler architecturally halts.
	ExcCodeMachineCheck // fault: detected transient hardware fault
)

// String returns a readable code name.
func (c ExcCode) String() string {
	switch c {
	case ExcCodeNone:
		return "none"
	case ExcCodeOverflow:
		return "overflow"
	case ExcCodeSoftware:
		return "software-trap"
	case ExcCodeDivideZero:
		return "divide-by-zero"
	case ExcCodePageFault:
		return "page-fault"
	case ExcCodeMisaligned:
		return "misaligned"
	case ExcCodeBadInst:
		return "bad-instruction"
	case ExcCodeMachineCheck:
		return "machine-check"
	}
	return fmt.Sprintf("exccode(%d)", uint8(c))
}

// Kind returns whether the code is a trap or a fault.
func (c ExcCode) Kind() ExcKind {
	switch c {
	case ExcCodeOverflow, ExcCodeSoftware:
		return ExcTrap
	case ExcCodeDivideZero, ExcCodePageFault, ExcCodeMisaligned, ExcCodeBadInst, ExcCodeMachineCheck:
		return ExcFault
	}
	return ExcNone
}

// Exception describes an architectural exception raised by one
// instruction.
type Exception struct {
	Code ExcCode
	PC   int    // instruction index of the violating instruction
	Addr uint32 // faulting address for memory exceptions
	Info int32  // trap code for software traps
}

// Kind returns the exception kind (trap or fault).
func (e Exception) Kind() ExcKind { return e.Code.Kind() }

// PreciseRepairPC returns the precise repair point expressed as the index
// of the first instruction that must re-execute after the exception is
// handled: PC for faults (the violating instruction re-executes), PC+1
// for traps (the violating instruction completed).
func (e Exception) PreciseRepairPC() int {
	if e.Kind() == ExcFault {
		return e.PC
	}
	return e.PC + 1
}

// String renders the exception for diagnostics.
func (e Exception) String() string {
	switch e.Code {
	case ExcCodeSoftware:
		return fmt.Sprintf("%s(%d) at pc=%d", e.Code, e.Info, e.PC)
	case ExcCodePageFault, ExcCodeMisaligned:
		return fmt.Sprintf("%s addr=%#x at pc=%d", e.Code, e.Addr, e.PC)
	default:
		return fmt.Sprintf("%s at pc=%d", e.Code, e.PC)
	}
}
