package session

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/refsim"
	"repro/internal/workload"
)

func mkCfg(scheme string) machine.Config {
	cfg := machine.Config{MemSystem: machine.MemBackward3b}
	switch scheme {
	case "e":
		cfg.Scheme = core.NewSchemeE(4, 8, 0)
	case "b":
		cfg.Scheme = core.NewSchemeB(4)
		cfg.Speculate = true
	case "tight":
		cfg.Scheme = core.NewSchemeTight(4, 0)
		cfg.Speculate = true
	case "direct":
		cfg.Scheme = core.NewSchemeDirect(2, 4, 12, 0)
		cfg.Speculate = true
	case "loose":
		cfg.Scheme = core.NewSchemeLoose(2, 4, 12)
		cfg.Speculate = true
	}
	if cfg.Speculate {
		cfg.Predictor = bpred.NewBimodal(256)
	}
	return cfg
}

func mustSession(t *testing.T, kernel, scheme string) *Session {
	t.Helper()
	k, err := workload.ByName(kernel)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New("s-test", k.Load(), mkCfg(scheme))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTransitionTable pins the FSM: exactly the documented transitions
// are legal, and illegal moves surface as typed errors.
func TestTransitionTable(t *testing.T) {
	legal := map[string]bool{
		"created>running": true, "created>closed": true,
		"running>paused": true, "running>closed": true,
		"paused>running": true, "paused>closed": true,
	}
	states := []State{StateCreated, StateRunning, StatePaused, StateClosed}
	for _, from := range states {
		for _, to := range states {
			s := &Session{state: from}
			err := s.to(to)
			want := legal[fmt.Sprintf("%s>%s", from, to)]
			if want && err != nil {
				t.Errorf("%s -> %s: unexpected error %v", from, to, err)
			}
			if !want {
				if err == nil {
					t.Errorf("%s -> %s: illegal transition allowed", from, to)
					continue
				}
				var te *TransitionError
				if from == StateClosed {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("%s -> %s: want ErrClosed, got %v", from, to, err)
					}
				} else if !errors.As(err, &te) {
					t.Errorf("%s -> %s: want *TransitionError, got %v", from, to, err)
				}
			}
		}
	}
}

// TestStepRunInspect drives the basic verb loop and checks the event
// stream shape: ascending cycle events, then one terminal event.
func TestStepRunInspect(t *testing.T) {
	s := mustSession(t, "fib", "tight")
	v, err := s.Step(3)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StatePaused || v.Cycle == 0 {
		t.Fatalf("after step: state=%s cycle=%d", v.State, v.Cycle)
	}

	var events []Event
	v, err = s.RunToCycle(context.Background(), v.Cycle+200, 16, func(e Event) error {
		events = append(events, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("too few events: %d", len(events))
	}
	last := events[len(events)-1]
	if last.Type != "paused" && last.Type != "done" {
		t.Fatalf("terminal event type %q", last.Type)
	}
	for i := 1; i < len(events)-1; i++ {
		if events[i].Type != "cycle" || events[i].Cycle < events[i-1].Cycle {
			t.Fatalf("event %d out of order: %+v after %+v", i, events[i], events[i-1])
		}
	}

	iv, err := s.Inspect()
	if err != nil {
		t.Fatal(err)
	}
	if iv.Cycle != v.Cycle || iv.Program != "fib" {
		t.Fatalf("inspect mismatch: %+v vs run view %+v", iv, v)
	}
	if _, err := s.Memory(0, 8); err != nil {
		t.Fatal(err)
	}
}

// runToDone drives the session to completion.
func runToDone(t *testing.T, s *Session) View {
	t.Helper()
	v, err := s.RunToCycle(context.Background(), 1<<40, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Done || v.Fatal != "" {
		t.Fatalf("run did not complete cleanly: %+v", v)
	}
	return v
}

// TestSessionRewindEquivalence is the subsystem-level correctness
// anchor: for every scheme family, rewinding mid-run and re-running to
// completion must land on the golden architectural state (divergence
// check clean both right after the rewind and at completion), matching
// a fresh run's final registers.
func TestSessionRewindEquivalence(t *testing.T) {
	for _, scheme := range []string{"e", "b", "tight", "direct", "loose"} {
		t.Run(scheme, func(t *testing.T) {
			fresh := mustSession(t, "bubble", scheme)
			final := runToDone(t, fresh)

			s := mustSession(t, "bubble", scheme)
			v, err := s.RunToCycle(context.Background(), final.Cycle/2, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Find a rewindable target, stepping forward until one works
			// (targets can be transiently busy or squashed).
			var info *machine.RewindInfo
			for info == nil {
				tgts, err := s.Checkpoints()
				if err != nil {
					t.Fatal(err)
				}
				for _, tgt := range tgts {
					if !tgt.Rewindable {
						continue
					}
					if got, err := s.Rewind(tgt.Seq); err == nil {
						info = got
						break
					} else if !errors.Is(err, machine.ErrRewindBusy) && !errors.Is(err, machine.ErrNotRewindable) {
						t.Fatalf("rewind: %v", err)
					}
				}
				if info == nil {
					if v, err = s.Step(1); err != nil {
						t.Fatal(err)
					}
					if v.Done {
						t.Fatal("reached completion without a successful rewind")
					}
				}
			}

			// Right after a rewind the machine rests on a golden boundary.
			d, err := s.CheckDivergence()
			if err != nil {
				t.Fatal(err)
			}
			if !d.Comparable || d.Diverged {
				t.Fatalf("divergence after rewind: %+v", d)
			}
			if d.Boundary != info.Steps {
				t.Fatalf("divergence boundary %d, rewind landed on %d", d.Boundary, info.Steps)
			}

			end := runToDone(t, s)
			if end.Regs != final.Regs {
				t.Fatalf("final registers differ from fresh run:\n%v\n%v", end.Regs, final.Regs)
			}
			if end.Exceptions != final.Exceptions {
				t.Fatalf("final exception count %d vs fresh %d", end.Exceptions, final.Exceptions)
			}
			d, err = s.CheckDivergence()
			if err != nil {
				t.Fatal(err)
			}
			if !d.Comparable || d.Diverged {
				t.Fatalf("divergence at completion: %+v", d)
			}
		})
	}
}

// TestRewindNewConfig rewinds into a different machine configuration:
// the golden boundary state seeds a fresh machine under another scheme,
// which must still complete on the golden path.
func TestRewindNewConfig(t *testing.T) {
	s := mustSession(t, "bubble", "tight")
	before, err := s.RunToCycle(context.Background(), 300, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	tgts, err := s.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	var seq uint64
	found := false
	for _, tgt := range tgts {
		if tgt.Steps >= 0 {
			seq, found = tgt.Seq, true
			break
		}
	}
	if !found {
		t.Fatalf("no recorded boundary among targets: %+v", tgts)
	}
	info, err := s.RewindNewConfig(seq, mkCfg("loose"))
	if err != nil {
		t.Fatal(err)
	}
	iv, err := s.Inspect()
	if err != nil {
		t.Fatal(err)
	}
	if iv.Scheme == before.Scheme {
		t.Fatalf("scheme did not change: %s", iv.Scheme)
	}
	d, err := s.CheckDivergence()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Comparable || d.Diverged || d.Boundary != info.Steps {
		t.Fatalf("divergence after config-change rewind: %+v (want boundary %d)", d, info.Steps)
	}
	end := runToDone(t, s)
	ref, err := refsim.CachedRun(s.Program())
	if err != nil {
		t.Fatal(err)
	}
	if end.Regs != ref.Regs {
		t.Fatalf("final registers diverged from reference:\n%v\n%v", end.Regs, ref.Regs)
	}
}

// TestBusyClosedAndInterrupt covers the concurrency contract: a verb in
// flight makes every other verb fail with ErrBusy; Close interrupts a
// streaming run (terminal event "closed"); verbs after Close fail with
// ErrClosed.
func TestBusyClosedAndInterrupt(t *testing.T) {
	s := mustSession(t, "sieve", "tight")

	started := make(chan struct{})
	terminal := make(chan Event, 1)
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.RunToCycle(context.Background(), 1<<40, 1, func(e Event) error {
			once.Do(func() { close(started) })
			if e.Type != "cycle" {
				terminal <- e
			}
			// Slow the stream so the main goroutine reliably observes the
			// running state.
			time.Sleep(time.Millisecond)
			return nil
		})
	}()
	<-started

	if _, err := s.Inspect(); !errors.Is(err, ErrBusy) {
		t.Fatalf("inspect during run: want ErrBusy, got %v", err)
	}
	if _, err := s.Rewind(0); !errors.Is(err, ErrBusy) {
		t.Fatalf("rewind during run: want ErrBusy, got %v", err)
	}
	if st := s.State(); st != StateRunning {
		t.Fatalf("state during run: %s", st)
	}

	s.Close("test shutdown")
	wg.Wait()
	select {
	case e := <-terminal:
		if e.Type != "closed" || e.Reason != "test shutdown" {
			t.Fatalf("terminal event: %+v", e)
		}
	default:
		t.Fatal("no terminal event delivered to the streaming client")
	}

	if _, err := s.Inspect(); !errors.Is(err, ErrClosed) {
		t.Fatalf("inspect after close: want ErrClosed, got %v", err)
	}
	if _, err := s.Step(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("step after close: want ErrClosed, got %v", err)
	}
	s.Close("again") // idempotent
}

// TestClientDisconnectPausesRun: a cancelled context (the HTTP request
// context of a vanished client) pauses the run mid-flight.
func TestClientDisconnectPausesRun(t *testing.T) {
	s := mustSession(t, "sieve", "tight")
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	v, err := s.RunToCycle(ctx, 1<<40, 1, func(e Event) error {
		n++
		if n == 3 {
			cancel()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Done {
		t.Fatal("run should have been interrupted, not completed")
	}
	if st := s.State(); st != StatePaused {
		t.Fatalf("state after disconnect: %s", st)
	}
	// The session remains fully usable.
	if _, err := s.Step(1); err != nil {
		t.Fatal(err)
	}
}
