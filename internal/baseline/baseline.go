// Package baseline implements the comparator machines the paper is
// positioned against.
//
//   - InOrder: a scoreboarded in-order pipeline with in-order completion
//     (the result-shift-register discipline of Smith & Pleszkun [5]).
//     Precise interrupts come for free; the price is no out-of-order
//     execution and no branch speculation. This is the "no repair
//     mechanism needed" reference point.
//
//   - HistoryBufferConfig / ReorderBufferConfig: the paper observes that
//     the History Buffer Method is "a special case of the backward
//     difference technique" and the Reorder Buffer Method a special case
//     of the forward difference, both with checkpoints at every
//     instruction boundary. The helpers return machine.Config values
//     realising exactly that: SchemeE with Distance 1 and c = buffer
//     depth, over the corresponding difference direction, without branch
//     speculation (as in [5]). Running them through internal/machine
//     makes them directly comparable with the sparse-checkpoint schemes.
package baseline

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/refsim"
	"repro/internal/sem"
)

// HistoryBufferConfig returns a machine configuration equivalent to the
// Smith–Pleszkun history buffer of the given depth: per-instruction
// checkpoints over a backward difference (undo log), no speculation.
func HistoryBufferConfig(depth int) machine.Config {
	return machine.Config{
		Scheme:    core.NewSchemeE(depth, 1, 0),
		Speculate: false,
		MemSystem: machine.MemBackward3a,
	}
}

// ReorderBufferConfig returns a machine configuration equivalent to the
// Smith–Pleszkun reorder buffer of the given depth: per-instruction
// checkpoints over a forward difference (stores held until retirement),
// no speculation.
func ReorderBufferConfig(depth int) machine.Config {
	return machine.Config{
		Scheme:    core.NewSchemeE(depth, 1, 0),
		Speculate: false,
		MemSystem: machine.MemForward,
	}
}

// Timing reuses the machine timing parameters for the in-order model.
type Timing = machine.Timing

// InOrderResult is the outcome of an in-order baseline run.
type InOrderResult struct {
	Regs       [isa.NumRegs]uint32
	Mem        *mem.Memory
	Exceptions []isa.Exception
	Halted     bool
	Cycles     int64
	Retired    int64
	CacheStats cache.Stats
}

// IPC returns retired instructions per cycle.
func (r *InOrderResult) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Retired) / float64(r.Cycles)
}

// InOrder runs the program on the in-order baseline: architectural
// behaviour comes from the reference interpreter (so it is precise by
// construction), and timing from a scoreboard model — in-order issue of
// one instruction per cycle, operand availability and structural
// hazards delay issue, results complete in order (one writeback port),
// conditional branches and indirect jumps stall fetch until they
// resolve, and memory operations run through a real cache.
func InOrder(p *prog.Program, t Timing, cacheCfg cache.Config) (*InOrderResult, error) {
	if t.IssueWidth == 0 {
		t = machine.DefaultTiming
	}
	if cacheCfg.Sets == 0 {
		cacheCfg = cache.DefaultConfig
	}
	// The timing cache simulates hits and misses over the architectural
	// address trace; its backing store is a scratch image (contents are
	// irrelevant to timing, and the architectural memory belongs to the
	// interpreter).
	shadowMem := p.NewMemory()
	tcache := cache.MustNew(cacheCfg, shadowMem)

	var (
		cycles    int64 // issue time of the most recent instruction
		lastDone  int64 // in-order completion horizon
		regReady  [isa.NumRegs]int64
		stallTo   int64 // fetch stalled until (branch/jump resolution)
		retired   int64
		excCycles int64
	)
	alu := make([]int64, maxi(1, t.ALUUnits))
	mul := make([]int64, maxi(1, t.MulDivUnit))
	mport := make([]int64, maxi(1, t.MemPorts))

	acquire := func(units []int64, at int64) int64 {
		best := 0
		for i := range units {
			if units[i] < units[best] {
				best = i
			}
		}
		if units[best] > at {
			at = units[best]
		}
		return at
	}
	commit := func(units []int64, at, until int64) {
		best := 0
		for i := range units {
			if units[i] <= at {
				best = i
				break
			}
			if units[i] < units[best] {
				best = i
			}
		}
		units[best] = until
	}

	// Memory accesses are accounted as they happen (OnMem fires once
	// per operation, so a k-operation vector instruction accumulates k
	// access latencies before it retires).
	var pendingMemLat int64
	opts := refsim.Options{
		OnMem: func(_ int, addr uint32, store bool) {
			_, hit, _ := accessCache(tcache, addr, store)
			if hit {
				pendingMemLat += int64(t.CacheHit)
			} else {
				pendingMemLat += int64(t.CacheMiss)
			}
		},
		OnRetire: func(pc int, in isa.Inst) {
			issueAt := cycles + 1
			if issueAt < stallTo {
				issueAt = stallTo
			}
			// RAW hazards: operands must be ready.
			if in.Op.ReadsRs1() && regReady[in.Rs1] > issueAt {
				issueAt = regReady[in.Rs1]
			}
			if in.Op.ReadsRs2() && regReady[in.Rs2] > issueAt {
				issueAt = regReady[in.Rs2]
			}
			// Structural hazard + latency.
			var done int64
			switch {
			case in.Op.Class() == isa.ClassLoad || in.Op.Class() == isa.ClassStore:
				start := acquire(mport, issueAt)
				lat := pendingMemLat
				if lat == 0 {
					lat = int64(t.CacheHit)
				}
				done = start + lat
				commit(mport, start, done)
			case in.Op.Class() == isa.ClassMulDiv:
				start := acquire(mul, issueAt)
				lat := int64(t.MulLat)
				if in.Op == isa.OpDIV || in.Op == isa.OpREM {
					lat = int64(t.DivLat)
				}
				done = start + lat
				commit(mul, start, done)
			case in.Op.Class() == isa.ClassBranch, in.Op.Class() == isa.ClassJump:
				start := acquire(alu, issueAt)
				done = start + int64(t.BranchLat)
				commit(alu, start, done)
				// No speculation: fetch resumes after resolution.
				stallTo = done
			default:
				start := acquire(alu, issueAt)
				// Multi-operation instructions occupy the unit once per
				// operation.
				done = start + int64(t.ALULat*in.Op.Ops())
				commit(alu, start, done)
			}
			pendingMemLat = 0
			// In-order completion: one writeback per cycle.
			if done <= lastDone {
				done = lastDone + 1
			}
			lastDone = done
			if rd, ok := in.Dest(); ok {
				regReady[rd] = done
			}
			cycles = issueAt
			retired++
		},
	}
	// Exceptions serialize the pipeline: charge a drain to the
	// completion horizon per exception.
	res, err := refsim.Run(p, opts)
	if err != nil {
		return nil, err
	}
	excCycles = int64(len(res.Exceptions)) * (lastDone/maxi64(retired, 1) + 2)

	out := &InOrderResult{
		Regs:       res.Regs,
		Mem:        res.Mem,
		Exceptions: res.Exceptions,
		Halted:     res.Halted,
		Cycles:     lastDone + excCycles,
		Retired:    retired,
		CacheStats: tcache.Stats(),
	}
	return out, nil
}

// accessCache performs a timing-only cache access; backing faults are
// ignored (the architectural interpreter already validated the access,
// but its demand-paged memory may be ahead of the timing image, so
// missing pages are mapped on demand here too).
func accessCache(c *cache.Cache, addr uint32, store bool) (uint32, bool, isa.ExcCode) {
	if c.CheckAccess(addr&^3, 4) == isa.ExcCodePageFault {
		c.Backing().Map(addr&^(mem.PageSize-1), mem.PageSize)
	}
	if store {
		wr, exc := c.WriteLongword(addr&^3, 0, 0)
		return 0, wr.Hit, exc
	}
	v, hit, exc := c.ReadLongword(addr &^ 3)
	return v, hit, exc
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Check that the handler policy stays shared (compile-time coupling so
// a change in sem shows up here).
var _ = sem.ActResume
