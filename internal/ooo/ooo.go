// Package ooo provides the out-of-order execution engine substrate the
// machines are built from: in-flight operation records, Tomasulo-style
// reservation stations, functional units, and a load/store queue.
//
// The engine realises the execution model of the paper's §2.1:
// instructions are issued sequentially along the predicted path
// (including wrong-path noise), execute out of order on functional
// units with unpredictable latencies, and modify the architectural
// registers and memory out of order. Checkpoint repair (internal/core)
// is what makes that safe; this package deliberately knows nothing
// about it beyond carrying each operation's issue sequence number so a
// repair can squash everything younger than a boundary.
package ooo

import (
	"repro/internal/isa"
)

// OpState tracks an in-flight operation's progress.
type OpState uint8

// Operation states.
const (
	StateWaiting   OpState = iota // in a reservation station, operands may be pending
	StateExecuting                // on a functional unit / memory port
	StateDone                     // result delivered
	StateSquashed                 // discarded by a repair; must never deliver
)

// Op is one in-flight operation.
type Op struct {
	Seq  uint64
	PC   int
	Inst isa.Inst

	// Operands, captured at issue or by common-data-bus broadcast.
	AVal, BVal     uint32
	AReady, BReady bool
	ATag, BTag     uint64

	// Branch prediction state.
	PredTaken bool
	PredNext  int // predicted next instruction index (-1: unknown, JR-style)

	// OnTruePath records whether the machine was provably on the
	// architecturally correct path when this operation issued (shadow
	// interpreter alignment). Used for predictor training and oracle
	// hints only; never for correctness.
	OnTruePath bool

	State  OpState
	DoneAt int64 // cycle at which execution finishes

	// Execution results.
	Result   uint32
	WroteRd  bool
	Exc      isa.ExcCode
	ExcAddr  uint32
	TrapInfo int32
	Taken    bool
	Target   int
	Halt     bool

	// Memory state.
	Addr      uint32
	AddrReady bool
	Accessed  bool // memory access performed (store wrote / load read)

	// Elem/ElemCount identify a micro-operation of a multi-operation
	// (vector) instruction: element Elem of ElemCount sharing PC.
	// Scalar operations have Elem 0, ElemCount 1.
	Elem      int
	ElemCount int
}

// LastElem reports whether this is the final micro-operation of its
// instruction (always true for scalars).
func (o *Op) LastElem() bool { return o.Elem == o.ElemCount-1 }

// Ready reports whether every source operand is available.
func (o *Op) Ready() bool { return o.AReady && o.BReady }

// IsLoad reports whether the operation reads memory.
func (o *Op) IsLoad() bool { return o.Inst.Op.Class() == isa.ClassLoad }

// IsStore reports whether the operation writes memory.
func (o *Op) IsStore() bool { return o.Inst.Op.Class() == isa.ClassStore }

// Capture delivers a broadcast result to this operation's pending
// operands (the common data bus).
func (o *Op) Capture(tag uint64, val uint32) {
	if !o.AReady && o.ATag == tag {
		o.AVal = val
		o.AReady = true
	}
	if !o.BReady && o.BTag == tag {
		o.BVal = val
		o.BReady = true
	}
}

// Station is a reservation-station pool with a capacity. Resident
// operations are kept ordered by Seq: issue sequence numbers increase
// monotonically (a squash only removes the newest suffix, it never
// rewinds the counter below a surviving operation), so Add maintains
// the order with at most a short insertion walk and Ops never sorts.
type Station struct {
	Cap      int
	ops      []*Op
	squashed []*Op // scratch reused across SquashAfter calls
}

// NewStation returns a station with the given number of entries.
func NewStation(cap int) *Station { return &Station{Cap: cap} }

// Reset empties the station and sets its capacity, keeping the backing
// arrays for reuse. Resident pointers are cleared so recycled Op records
// cannot be reached through the old storage.
func (s *Station) Reset(cap int) {
	s.Cap = cap
	clear(s.ops)
	clear(s.squashed)
	s.ops = s.ops[:0]
	s.squashed = s.squashed[:0]
}

// Full reports whether the station has no free entry.
func (s *Station) Full() bool { return len(s.ops) >= s.Cap }

// Len returns the number of occupied entries.
func (s *Station) Len() int { return len(s.ops) }

// Add dispatches an operation into the station.
func (s *Station) Add(op *Op) {
	if s.Full() {
		panic("ooo: station overflow")
	}
	s.ops = append(s.ops, op)
	// Defensive: restore Seq order if a caller ever issues out of order.
	for i := len(s.ops) - 1; i > 0 && s.ops[i-1].Seq > s.ops[i].Seq; i-- {
		s.ops[i-1], s.ops[i] = s.ops[i], s.ops[i-1]
	}
}

// Ops returns the resident operations in issue order (oldest first).
// The returned slice is the station's own storage; do not mutate.
func (s *Station) Ops() []*Op {
	return s.ops
}

// Remove deletes the given operation.
func (s *Station) Remove(op *Op) {
	for i, o := range s.ops {
		if o == op {
			s.ops = append(s.ops[:i], s.ops[i+1:]...)
			return
		}
	}
}

// SquashAfter removes every operation with Seq > seq and returns them.
// The returned slice is scratch storage owned by the station, valid
// only until the next SquashAfter call.
func (s *Station) SquashAfter(seq uint64) []*Op {
	squashed := s.squashed[:0]
	kept := s.ops[:0]
	for _, o := range s.ops {
		if o.Seq > seq {
			o.State = StateSquashed
			squashed = append(squashed, o)
		} else {
			kept = append(kept, o)
		}
	}
	// Clear the dropped tail so squashed records do not linger in the
	// station's backing array (they may be recycled by the caller).
	for i := len(kept); i < len(s.ops); i++ {
		s.ops[i] = nil
	}
	s.ops = kept
	s.squashed = squashed
	return squashed
}

// Broadcast captures a delivered result in every waiting operation.
func (s *Station) Broadcast(tag uint64, val uint32) {
	for _, o := range s.ops {
		if o.State == StateWaiting {
			o.Capture(tag, val)
		}
	}
}

// FUPool models a set of identical functional units for one class.
type FUPool struct {
	Name    string
	Units   int
	Latency int
	busy    []int64 // per-unit cycle until which it is busy
}

// NewFUPool returns units functional units with the given latency.
func NewFUPool(name string, units, latency int) *FUPool {
	return &FUPool{Name: name, Units: units, Latency: latency, busy: make([]int64, units)}
}

// Acquire reserves a unit starting at cycle now, returning the
// completion cycle, or ok=false when all units are busy.
func (p *FUPool) Acquire(now int64, extraLatency int) (doneAt int64, ok bool) {
	for i := range p.busy {
		if p.busy[i] <= now {
			done := now + int64(p.Latency+extraLatency)
			if done == now {
				done = now + 1 // every operation takes at least one cycle
			}
			p.busy[i] = done
			return done, true
		}
	}
	return 0, false
}

// AcquireUnit reserves a free unit without committing to a completion
// time, returning its index; use SetBusy to set the release cycle. Used
// by memory ports, whose latency is only known after the access (cache
// hit or miss).
func (p *FUPool) AcquireUnit(now int64) (unit int, ok bool) {
	for i := range p.busy {
		if p.busy[i] <= now {
			return i, true
		}
	}
	return 0, false
}

// SetBusy marks a unit busy until the given cycle.
func (p *FUPool) SetBusy(unit int, until int64) { p.busy[unit] = until }

// NextBusyExpiry returns the earliest cycle after now at which a
// currently reserved unit becomes free, or 0 when every unit is already
// free at now. Squashed operations keep their unit reserved until the
// reservation expires, so this can be later than any in-flight
// operation's completion; the machine's idle-cycle skipper must treat
// such expiries as events.
func (p *FUPool) NextBusyExpiry(now int64) int64 {
	var next int64
	for _, b := range p.busy {
		if b > now && (next == 0 || b < next) {
			next = b
		}
	}
	return next
}

// Reset frees every unit.
func (p *FUPool) Reset() {
	for i := range p.busy {
		p.busy[i] = 0
	}
}

// LSQ is the load/store queue: memory operations in issue order. It
// enforces sequential memory semantics per longword — same-address
// accesses happen in program order — while letting independent accesses
// proceed out of order, so stores really do modify the current logical
// space out of program order (the behaviour checkpoint repair exists to
// undo).
type LSQ struct {
	Cap      int
	ops      []*Op
	squashed []*Op // scratch reused across SquashAfter calls
}

// NewLSQ returns a queue with the given capacity.
func NewLSQ(cap int) *LSQ { return &LSQ{Cap: cap} }

// Reset empties the queue and sets its capacity, keeping the backing
// arrays for reuse.
func (q *LSQ) Reset(cap int) {
	q.Cap = cap
	clear(q.ops)
	clear(q.squashed)
	q.ops = q.ops[:0]
	q.squashed = q.squashed[:0]
}

// Full reports whether the queue has no free entry.
func (q *LSQ) Full() bool { return len(q.ops) >= q.Cap }

// Len returns the number of resident memory operations.
func (q *LSQ) Len() int { return len(q.ops) }

// Add appends a memory operation (issue order).
func (q *LSQ) Add(op *Op) {
	if q.Full() {
		panic("ooo: LSQ overflow")
	}
	q.ops = append(q.ops, op)
}

// Ops returns resident operations oldest first.
func (q *LSQ) Ops() []*Op { return q.ops }

// Remove deletes the given operation.
func (q *LSQ) Remove(op *Op) {
	for i, o := range q.ops {
		if o == op {
			q.ops = append(q.ops[:i], q.ops[i+1:]...)
			return
		}
	}
}

// SquashAfter removes every operation with Seq > seq and returns them.
// The returned slice is scratch storage owned by the queue, valid only
// until the next SquashAfter call.
func (q *LSQ) SquashAfter(seq uint64) []*Op {
	squashed := q.squashed[:0]
	kept := q.ops[:0]
	for _, o := range q.ops {
		if o.Seq > seq {
			o.State = StateSquashed
			squashed = append(squashed, o)
		} else {
			kept = append(kept, o)
		}
	}
	for i := len(kept); i < len(q.ops); i++ {
		q.ops[i] = nil
	}
	q.ops = kept
	q.squashed = squashed
	return squashed
}

// Broadcast captures a delivered result in waiting memory operations.
func (q *LSQ) Broadcast(tag uint64, val uint32) {
	for _, o := range q.ops {
		if o.State == StateWaiting {
			o.Capture(tag, val)
		}
	}
}

// MayAccess reports whether op may perform its memory access now under
// per-longword ordering:
//
//   - a load must wait for every older store whose address is unknown or
//     falls in the same longword and which has not yet accessed memory;
//   - a store must additionally wait for older same-longword loads
//     (write-after-read) and, like loads, for unknown-address elders.
//
// op must be resident and have its address ready.
func (q *LSQ) MayAccess(op *Op) bool {
	line := op.Addr &^ 3
	for _, o := range q.ops {
		if o.Seq >= op.Seq {
			break
		}
		if o.Accessed || o.State == StateDone {
			continue
		}
		if !o.AddrReady {
			return false
		}
		if o.Addr&^3 != line {
			continue
		}
		if o.IsStore() || op.IsStore() {
			return false
		}
	}
	return true
}
