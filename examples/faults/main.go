// Faults: a guided tour of the fault-injection campaign engine. Injects
// a single detected fault by hand and walks through what schemeE does
// with it, then runs a small campaign over every fault model and prints
// the outcome taxonomy — the difference between the classes checkpoint
// repair covers (detected faults: always repaired or masked) and the
// ones it cannot see (silent flips: masked, corrupting, or hanging).
//
//	go run ./examples/faults
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/workload"
)

func mk() machine.Config {
	return machine.Config{
		Scheme:    core.NewSchemeE(4, 8, 0),
		Speculate: false,
		MemSystem: machine.MemBackward3b,
	}
}

func main() {
	k, err := workload.ByName("dotprod")
	if err != nil {
		log.Fatal(err)
	}
	p := k.Load()

	// One detected fault by hand: flag dynamic instruction 40 with a
	// machine-check (a parity-style FU detector firing). SchemeE sees an
	// excepting operation, rewinds to the enclosing checkpoint, and
	// re-executes in single-step mode; the re-executed operation is
	// clean, so the run converges to the golden final state.
	inj := fault.Injection{Model: fault.SpuriousExc, Event: 40}
	res, err := fault.Replay(context.Background(), p, mk, fault.Config{}, []fault.Injection{inj})
	if err != nil {
		log.Fatal(err)
	}
	r := res[0]
	fmt.Printf("single injection %s on %s:\n", inj, p.Name)
	fmt.Printf("  outcome=%s  extra repairs=%d  repair latency=%d cycles\n\n",
		r.Outcome, r.RepairDelta, r.Latency)

	// A full campaign: enumerate every model over the whole run, prune
	// dead flips against the reference trace, collapse detected faults
	// by checkpoint interval, execute the rest in parallel, classify
	// each against the golden state.
	rep, err := fault.Run(context.Background(), p, mk, fault.Config{Seed: 1987})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Table("EX"))

	if bad := rep.CoveredBad(); len(bad) == 0 {
		fmt.Println("covered classes (fu-detected, spurious-exc): zero SDC, zero hangs —")
		fmt.Println("every detected fault was repaired to a byte-identical final state.")
	} else {
		fmt.Printf("UNEXPECTED: %d covered-class escapes\n", len(bad))
	}
}
