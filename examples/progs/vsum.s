; Vector sum: adds two 16-element arrays with VLW/VADD/VSW
; (4 operations per instruction — the paper's incr(k) case).
;   go run ./cmd/ckptsim -prog examples/progs/vsum.s
    addi r1, r0, 4
    addi r2, r0, xs
    addi r3, r0, ys
    addi r4, r0, zs
vl:
    vlw  r8, 0(r2)
    vlw  r12, 0(r3)
    vadd r16, r8, r12
    vsw  r16, 0(r4)
    addi r2, r2, 16
    addi r3, r3, 16
    addi r4, r4, 16
    addi r1, r1, -1
    bne  r1, r0, vl
    halt
.data 0x1000
xs: .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
ys: .word 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150, 160
zs: .space 64
