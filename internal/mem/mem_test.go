package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestUnmappedFaults(t *testing.T) {
	m := New()
	if _, code := m.Read8(0x1000); code != isa.ExcCodePageFault {
		t.Errorf("read unmapped: %v", code)
	}
	if code := m.Write32(0x1000, 1); code != isa.ExcCodePageFault {
		t.Errorf("write unmapped: %v", code)
	}
	m.Map(0x1000, 8)
	if _, code := m.Read32(0x1000); code != isa.ExcCodeNone {
		t.Errorf("read mapped: %v", code)
	}
	// The whole page is mapped, not just 8 bytes.
	if !m.Mapped(0x1FFF) {
		t.Error("page granularity")
	}
	if m.Mapped(0x2000) {
		t.Error("next page must stay unmapped")
	}
}

func TestMisaligned(t *testing.T) {
	m := New()
	m.Map(0, PageSize)
	if _, code := m.Read32(2); code != isa.ExcCodeMisaligned {
		t.Errorf("misaligned read: %v", code)
	}
	if code := m.Write32(5, 1); code != isa.ExcCodeMisaligned {
		t.Errorf("misaligned write: %v", code)
	}
	// Byte accesses have no alignment requirement.
	if _, code := m.Read8(3); code != isa.ExcCodeNone {
		t.Errorf("byte read: %v", code)
	}
}

func TestLittleEndian(t *testing.T) {
	m := New()
	m.Map(0, PageSize)
	m.Write32(0, 0x11223344)
	b0, _ := m.Read8(0)
	b3, _ := m.Read8(3)
	if b0 != 0x44 || b3 != 0x11 {
		t.Errorf("endianness: b0=%#x b3=%#x", b0, b3)
	}
	m.Write8(1, 0xAA)
	v, _ := m.Read32(0)
	if v != 0x1122AA44 {
		t.Errorf("byte write merge: %#x", v)
	}
}

func TestMaskedAccess(t *testing.T) {
	m := New()
	m.Map(0, PageSize)
	m.Write32(8, 0xAABBCCDD)
	// Overlay lanes 1 and 2.
	m.WriteMasked(8, 0x00112200, 0b0110)
	v, _ := m.Read32(8)
	if v != 0xAA1122DD {
		t.Errorf("masked write: %#x", v)
	}
	w, _ := m.ReadMasked(10) // unaligned address reads containing longword
	if w != 0xAA1122DD {
		t.Errorf("masked read: %#x", w)
	}
}

func TestMergeMasked(t *testing.T) {
	if got := MergeMasked(0xAABBCCDD, 0x11223344, 0b1111); got != 0x11223344 {
		t.Errorf("full mask: %#x", got)
	}
	if got := MergeMasked(0xAABBCCDD, 0x11223344, 0); got != 0xAABBCCDD {
		t.Errorf("empty mask: %#x", got)
	}
	if got := MergeMasked(0xAABBCCDD, 0x11223344, 0b0001); got != 0xAABBCC44 {
		t.Errorf("lane 0: %#x", got)
	}
}

// TestQuickMergeMasked checks the lane-by-lane definition: selected
// lanes come from v, unselected from old; and merging is idempotent.
func TestQuickMergeMasked(t *testing.T) {
	f := func(old, v uint32, mask uint8) bool {
		mask &= 0b1111
		got := MergeMasked(old, v, mask)
		for lane := 0; lane < 4; lane++ {
			shift := uint(8 * lane)
			want := old >> shift & 0xff
			if mask&(1<<lane) != 0 {
				want = v >> shift & 0xff
			}
			if got>>shift&0xff != want {
				return false
			}
		}
		return MergeMasked(got, v, mask) == got
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneAndEqual(t *testing.T) {
	m := New()
	m.Map(0x1000, 64)
	m.Write32(0x1000, 42)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatalf("clone differs: %s", m.Diff(c))
	}
	c.Write32(0x1000, 43)
	if m.Equal(c) {
		t.Error("mutated clone still equal")
	}
	if d := m.Diff(c); d == "" {
		t.Error("Diff found nothing")
	}
	c2 := m.Clone()
	c2.Map(0x9000, 4)
	if m.Equal(c2) || m.Diff(c2) == "" {
		t.Error("extra page not detected")
	}
}

func TestMappedPages(t *testing.T) {
	m := New()
	m.Map(0x3000, 4)
	m.Map(0x1000, 4)
	pns := m.MappedPages()
	if len(pns) != 2 || pns[0] != 1 || pns[1] != 3 {
		t.Errorf("pages: %v", pns)
	}
}

func TestCheckDoesNotMap(t *testing.T) {
	m := New()
	if m.CheckRead(0x5000, 4) != isa.ExcCodePageFault {
		t.Error("check should report fault")
	}
	if m.Mapped(0x5000) {
		t.Error("check must not map")
	}
	if m.CheckWrite(0x5002, 4) != isa.ExcCodeMisaligned {
		t.Error("alignment precedes mapping check")
	}
}

func TestMapSpanningPages(t *testing.T) {
	m := New()
	m.Map(PageSize-2, 4) // spans two pages
	if !m.Mapped(PageSize-1) || !m.Mapped(PageSize) {
		t.Error("span mapping")
	}
	if code := m.Write32(PageSize-4, 0xDEADBEEF); code != isa.ExcCodeNone {
		t.Errorf("aligned write at page edge: %v", code)
	}
}
