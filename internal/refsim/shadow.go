package refsim

import (
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/sem"
)

// Shadow is a step-wise variant of the reference interpreter. The
// out-of-order machines run one alongside the timing simulation to
//
//   - supply oracle branch outcomes at issue time (for the oracle and
//     fixed-accuracy synthetic predictors of internal/bpred), and
//   - audit repair correctness continuously: whenever a machine claims a
//     consistent architectural state (at checkpoint retirement, repair, or
//     completion), it can be compared against the shadow.
//
// The shadow always follows the architecturally correct path, handling
// exceptions with the same sem.HandlerAction policy as everything else.
// Each Step executes one attempt: it either completes an instruction,
// or observes an exception and applies the handler action.
type Shadow struct {
	prog  *prog.Program
	res   Result
	pc    int
	steps int
	done  bool
	// hooks carries the state-delta observation callbacks (OnRegWrite,
	// OnMemWrite, OnMap) installed by the trace recorder. OnBranch is
	// overwritten per step; the other Options fields are unused here.
	hooks Options
}

// NewShadow returns a shadow positioned at the program entry.
func NewShadow(p *prog.Program) *Shadow {
	s := &Shadow{prog: p, pc: p.Entry}
	s.res.Mem = p.NewMemory()
	return s
}

// StepResult describes one shadow execution attempt.
type StepResult struct {
	PC     int
	Inst   isa.Inst
	Branch bool // instruction is a conditional branch
	Taken  bool // branch outcome
	Target int  // taken target for control instructions
	Exc    isa.Exception
	Halted bool
}

// PC returns the instruction index of the next architectural attempt.
func (s *Shadow) PC() int { return s.pc }

// Halted reports whether the architectural program has finished.
func (s *Shadow) Halted() bool { return s.done }

// Regs returns the current architectural registers.
func (s *Shadow) Regs() *[isa.NumRegs]uint32 { return &s.res.Regs }

// Mem returns the current architectural memory.
func (s *Shadow) Mem() *mem.Memory { return s.res.Mem }

// Retired returns the number of architecturally completed instructions.
func (s *Shadow) Retired() int { return s.res.Retired }

// Exceptions returns the exception log so far.
func (s *Shadow) Exceptions() []isa.Exception { return s.res.Exceptions }

// ExcCount returns the number of exceptions observed so far.
func (s *Shadow) ExcCount() int { return len(s.res.Exceptions) }

// Steps returns the number of attempts executed so far. An attempt that
// traps both retires and logs an exception, so the attempt index is an
// independent coordinate — it is the boundary numbering Replay.StateAt
// uses, which is why the machines record it at checkpoint boundaries.
func (s *Shadow) Steps() int { return s.steps }

// Step executes one attempt and returns what happened. Calling Step
// after the program halted returns Halted without effect.
func (s *Shadow) Step() StepResult {
	if s.done {
		return StepResult{PC: s.pc, Halted: true}
	}
	s.steps++
	if s.pc < 0 || s.pc >= len(s.prog.Code) {
		exc := isa.Exception{Code: isa.ExcCodeBadInst, PC: s.pc}
		s.res.Exceptions = append(s.res.Exceptions, exc)
		s.done = true
		return StepResult{PC: s.pc, Exc: exc, Halted: true}
	}
	pc := s.pc
	in := s.prog.Code[pc]
	r := StepResult{PC: pc, Inst: in, Branch: in.IsBranch()}

	// Peek at branch outcome before executing so the result carries it
	// even when the instruction later faults (branches cannot fault, so
	// this is just structured for clarity).
	opts := s.hooks
	opts.OnBranch = func(_ int, taken bool, target int) {
		r.Taken = taken
		r.Target = target
	}
	next, exc, halted := step(&s.res, in, pc, opts)
	if exc.Code != isa.ExcCodeNone {
		r.Exc = exc
		s.res.Exceptions = append(s.res.Exceptions, exc)
		switch sem.HandlerAction(exc.Code) {
		case sem.ActResume:
			s.res.Mem.Map(exc.Addr&^(mem.PageSize-1), mem.PageSize)
			if s.hooks.OnMap != nil {
				s.hooks.OnMap(exc.Addr &^ (mem.PageSize - 1))
			}
			// pc unchanged: re-execute.
		case sem.ActSkip:
			s.pc = pc + 1
		case sem.ActContinue:
			s.pc = next
		case sem.ActHalt:
			s.done = true
			r.Halted = true
		}
		return r
	}
	if halted {
		s.done = true
		r.Halted = true
		return r
	}
	s.pc = next
	return r
}

// Result returns a copy of the accumulated architectural result. Valid
// at any point; most useful after Halted.
func (s *Shadow) Result() *Result {
	res := s.res
	res.Halted = s.done
	// Exception slice and memory are shared with the live shadow; callers
	// comparing against a finished shadow treat them as read-only.
	return &res
}
