// Command ckptdbg is an interactive time-travel debugger client for a
// running ckptd: it drives the daemon's stateful debug sessions
// (internal/session) from a line-oriented REPL that is equally usable
// interactively and piped from a script (scripts/session_smoke.sh).
//
// Usage:
//
//	ckptd &                            # start the daemon
//	ckptdbg                            # REPL against 127.0.0.1:8909
//	ckptdbg -addr http://host:9000 -e < script.dbg
//
// Commands (one per line; everything answers compact JSON on stdout):
//
//	create <workload> [scheme=S c=N mem=M ...]   open a session on a built-in kernel
//	loadasm <file.s> [scheme=S ...]              open a session on assembly source
//	loadrv32 <file> [scheme=S ...]               open a session on a compiled rv32 image
//	sessions                                     list open sessions
//	attach <id>                                  switch the current session
//	status                                       full session view
//	regs                                         register file
//	step [n]                                     advance up to n cycles (default 1)
//	run [to_cycle [stride]]                      stream a run (0 = to completion)
//	runpc <pc> [stride]                          run until fetch sits at pc
//	ckpts                                        live rewind targets
//	rewind <seq> [scheme=S ...]                  rewind (spec => new-config rewind)
//	mem <addr> [words]                           inspect memory longwords
//	div                                          divergence audit vs the golden trace
//	close                                        close the current session
//	help, quit
//
// With -e any failed command exits nonzero immediately (script mode);
// otherwise errors print and the REPL continues.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/session"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8909", "ckptd base URL")
	failFast := flag.Bool("e", false, "exit nonzero on the first failed command (script mode)")
	version := buildinfo.Flag()
	flag.Parse()
	version()

	d := &debugger{c: client.New(*addr), out: json.NewEncoder(os.Stdout)}
	interactive := false
	if fi, err := os.Stdin.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 {
		interactive = true
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		if interactive {
			fmt.Fprintf(os.Stderr, "ckptdbg%s> ", d.prompt())
		}
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "quit" || fields[0] == "exit" {
			break
		}
		if err := d.dispatch(fields[0], fields[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "ckptdbg: %s: %v\n", fields[0], err)
			if *failFast {
				os.Exit(1)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "ckptdbg: stdin: %v\n", err)
		os.Exit(1)
	}
}

type debugger struct {
	c   *client.Client
	id  string // current session
	out *json.Encoder
}

func (d *debugger) prompt() string {
	if d.id == "" {
		return ""
	}
	return " " + d.id
}

// need returns the current session id or an instructive error.
func (d *debugger) need() (string, error) {
	if d.id == "" {
		return "", fmt.Errorf("no current session (use create, loadasm, loadrv32, or attach)")
	}
	return d.id, nil
}

func (d *debugger) dispatch(cmd string, args []string) error {
	ctx := context.Background()
	switch cmd {
	case "help":
		fmt.Println("commands: create loadasm loadrv32 sessions attach status regs step run runpc ckpts rewind mem div close help quit")
		return nil

	case "create", "loadasm", "loadrv32":
		if len(args) < 1 {
			return fmt.Errorf("usage: %s <%s> [key=value ...]",
				cmd, map[string]string{"create": "workload", "loadasm": "file.s", "loadrv32": "file"}[cmd])
		}
		req := client.SessionCreate{}
		switch cmd {
		case "create":
			req.Workload = args[0]
		case "loadrv32":
			img, err := os.ReadFile(args[0])
			if err != nil {
				return err
			}
			req.RV32 = img
			req.Name = args[0]
		default:
			src, err := os.ReadFile(args[0])
			if err != nil {
				return err
			}
			req.Asm = string(src)
			req.Name = strings.TrimSuffix(args[0], ".s")
		}
		spec, err := machineSpec(args[1:])
		if err != nil {
			return err
		}
		if spec != nil {
			req.Machine = *spec
		}
		v, err := d.c.CreateSession(ctx, req)
		if err != nil {
			return err
		}
		d.id = v.ID
		return d.out.Encode(v)

	case "sessions":
		ss, err := d.c.Sessions(ctx)
		if err != nil {
			return err
		}
		return d.out.Encode(ss)

	case "attach":
		if len(args) != 1 {
			return fmt.Errorf("usage: attach <id>")
		}
		v, err := d.c.Session(ctx, args[0])
		if err != nil {
			return err
		}
		d.id = v.ID
		return d.out.Encode(v)

	case "status":
		id, err := d.need()
		if err != nil {
			return err
		}
		v, err := d.c.Session(ctx, id)
		if err != nil {
			return err
		}
		return d.out.Encode(v)

	case "regs":
		id, err := d.need()
		if err != nil {
			return err
		}
		v, err := d.c.Session(ctx, id)
		if err != nil {
			return err
		}
		return d.out.Encode(map[string]any{"cycle": v.Cycle, "regs": v.Regs})

	case "step":
		id, err := d.need()
		if err != nil {
			return err
		}
		n := 1
		if len(args) > 0 {
			if n, err = strconv.Atoi(args[0]); err != nil {
				return fmt.Errorf("usage: step [n]")
			}
		}
		v, err := d.c.StepSession(ctx, id, n)
		if err != nil {
			return err
		}
		return d.out.Encode(v)

	case "run", "runpc":
		id, err := d.need()
		if err != nil {
			return err
		}
		opts := client.RunOpts{}
		if cmd == "runpc" {
			if len(args) < 1 {
				return fmt.Errorf("usage: runpc <pc> [stride]")
			}
			pc, err := strconv.Atoi(args[0])
			if err != nil {
				return fmt.Errorf("bad pc %q", args[0])
			}
			opts.ToPC = &pc
			args = args[1:]
		} else if len(args) > 0 {
			if opts.ToCycle, err = strconv.ParseInt(args[0], 10, 64); err != nil {
				return fmt.Errorf("bad cycle %q", args[0])
			}
			args = args[1:]
		}
		if len(args) > 0 {
			if opts.Stride, err = strconv.ParseInt(args[0], 10, 64); err != nil {
				return fmt.Errorf("bad stride %q", args[0])
			}
		}
		_, err = d.c.RunSession(ctx, id, opts, func(e session.Event) error {
			return d.out.Encode(e)
		})
		return err

	case "ckpts":
		id, err := d.need()
		if err != nil {
			return err
		}
		cks, err := d.c.SessionCheckpoints(ctx, id)
		if err != nil {
			return err
		}
		return d.out.Encode(cks)

	case "rewind":
		id, err := d.need()
		if err != nil {
			return err
		}
		if len(args) < 1 {
			return fmt.Errorf("usage: rewind <seq> [key=value ...]")
		}
		seq, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad seq %q", args[0])
		}
		spec, err := machineSpec(args[1:])
		if err != nil {
			return err
		}
		info, err := d.c.RewindSession(ctx, id, seq, spec)
		if err != nil {
			return err
		}
		return d.out.Encode(map[string]any{"rewound": info})

	case "mem":
		id, err := d.need()
		if err != nil {
			return err
		}
		if len(args) < 1 {
			return fmt.Errorf("usage: mem <addr> [words]")
		}
		addr, err := strconv.ParseUint(args[0], 0, 32)
		if err != nil {
			return fmt.Errorf("bad addr %q", args[0])
		}
		words := 8
		if len(args) > 1 {
			if words, err = strconv.Atoi(args[1]); err != nil {
				return fmt.Errorf("bad word count %q", args[1])
			}
		}
		mem, err := d.c.SessionMemory(ctx, id, uint32(addr), words)
		if err != nil {
			return err
		}
		return d.out.Encode(mem)

	case "div":
		id, err := d.need()
		if err != nil {
			return err
		}
		dv, err := d.c.SessionDivergence(ctx, id)
		if err != nil {
			return err
		}
		return d.out.Encode(dv)

	case "close":
		id, err := d.need()
		if err != nil {
			return err
		}
		if err := d.c.CloseSession(ctx, id); err != nil {
			return err
		}
		fmt.Printf("{\"closed\":%q}\n", id)
		d.id = ""
		return nil

	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

// machineSpec parses key=value machine arguments; nil means "all
// defaults" (distinguishing a plain rewind from a new-config rewind).
func machineSpec(args []string) (*service.MachineSpec, error) {
	if len(args) == 0 {
		return nil, nil
	}
	spec := &service.MachineSpec{}
	for _, a := range args {
		k, v, ok := strings.Cut(a, "=")
		if !ok {
			return nil, fmt.Errorf("bad machine argument %q (want key=value)", a)
		}
		var err error
		switch k {
		case "scheme":
			spec.Scheme = v
		case "c":
			spec.C, err = strconv.Atoi(v)
		case "ce":
			spec.CE, err = strconv.Atoi(v)
		case "cb":
			spec.CB, err = strconv.Atoi(v)
		case "dist":
			spec.Dist, err = strconv.Atoi(v)
		case "w":
			spec.W, err = strconv.Atoi(v)
		case "mem":
			spec.Mem = v
		case "buffer_cap":
			spec.BufferCap, err = strconv.Atoi(v)
		case "predictor":
			spec.Predictor = v
		case "speculate":
			b, perr := strconv.ParseBool(v)
			if perr != nil {
				return nil, fmt.Errorf("bad speculate value %q", v)
			}
			spec.Speculate = &b
		default:
			return nil, fmt.Errorf("unknown machine key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("bad value for %s: %v", k, err)
		}
	}
	return spec, nil
}
