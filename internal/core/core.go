// Package core implements the checkpoint repair schemes of Hwu & Patt,
// "Checkpoint Repair for Out-of-order Execution Machines" (ISCA 1987) —
// the paper's primary contribution.
//
// A scheme manages the set of active checkpoints: where they are
// established (every K instructions for E-repair schemes, at every
// conditional branch for B-repair schemes), when instruction issue must
// stall for lack of backup spaces, how out-of-order execution results
// are reflected into the right logical spaces, and how the machine
// state is repaired on an exception (E-repair) or a branch prediction
// miss (B-repair). Five schemes are provided:
//
//	SchemeE(c, distance, W)   §3, Algorithm 1
//	SchemeB(c)                §4
//	SchemeDirect(cE,cB,..)    §5.1, directly combined
//	SchemeTight(c)            §5.2, tightly merged
//	SchemeLoose(cE,cB,dist)   §5.3, Algorithm 4, loosely merged
//
// # Mapping from the paper's hardware structures
//
// The paper's shift-register arrays (countE, exceptE, pendB) and the
// (log2(e)+1)-bit ident counter are represented by an explicit list of
// Checkpoint records ordered oldest-first. The "checkpoint
// identification carried by an operation" is the operation's issue
// sequence number: monotonically increasing, never reused (sequence
// counters rewind across repairs to the squash boundary, so live
// numbers stay unique). An operation with sequence s belongs to the
// E-repair range of the newest checkpoint whose BornSeq is < s, and its
// result must be reflected in every backup space whose checkpoint has
// BornSeq >= s — the paper's write_index action, with the index
// direction fixed as discussed in DESIGN.md.
//
// Schemes manipulate the copy-technique register file
// (internal/regfile) and a difference-buffer memory system
// (internal/diff) directly, and call back into the machine through the
// Engine interface for pipeline squashes and fetch redirects.
package core

import (
	"fmt"

	"repro/internal/diff"
	"repro/internal/isa"
	"repro/internal/regfile"
)

// OpInfo describes one issued operation to a scheme.
type OpInfo struct {
	Seq      uint64 // issue sequence number (the carried checkpoint identification)
	PC       int    // instruction index
	IsBranch bool   // conditional branch (B-repair source)
	IsStore  bool   // memory write (counts against the per-segment W limit)
}

// Engine is the machine-side interface schemes use to effect repairs.
type Engine interface {
	// SquashAfter removes from the pipeline (reservation stations,
	// functional units, load/store queue, issue buffers) every in-flight
	// operation with issue sequence greater than seq, and returns the
	// operations removed so the scheme can retract their count
	// contributions. Squashed operations never deliver. The returned
	// slice is scratch storage owned by the engine, valid only until
	// the next SquashAfter call — schemes must not retain it.
	SquashAfter(seq uint64) []OpInfo
	// RedirectFetch restarts instruction fetch at pc (the correct
	// branch path after a B-repair).
	RedirectFetch(pc int)
	// EnterPreciseMode switches the machine to one-instruction-at-a-time
	// in-order execution starting at pc — the paper's post-E-repair
	// single-stepping ("the machine executes one instruction at a time
	// until the precise repair point is reached"). The machine calls
	// Scheme.Restart when it leaves precise mode.
	EnterPreciseMode(pc int)
}

// Stats counts scheme events.
type Stats struct {
	Checkpoints int // checkpoints established
	Retired     int // checkpoints retired (window advanced past them)
	Graduated   int // loose scheme: B checkpoints promoted to E checkpoints
	ERepairs    int
	BRepairs    int
	// SquashedOps counts in-flight operations discarded by repairs (the
	// paper's "discarding useful work").
	SquashedOps int
}

// Scheme is a checkpoint repair mechanism. The machine drives it
// through the issue/deliver/resolve/tick lifecycle.
type Scheme interface {
	// Name identifies the scheme and its parameters.
	Name() string
	// Spaces returns the total number of logical spaces (backups +
	// current) the scheme requires.
	Spaces() int
	// RegStackCaps returns the backup-stack capacities the register
	// file must provide, one entry per stack.
	RegStackCaps() []int

	// Attach binds the scheme to its register file, memory system and
	// engine. Must be called once before Restart.
	Attach(regs *regfile.File, mem diff.MemSystem, eng Engine)

	// Restart re-initialises checkpoint state when (re)entering normal
	// speculative execution: the paper's initial "check action performed
	// before the execution starts". pc is where issue resumes and
	// nextSeq the sequence number the next issued instruction receives.
	Restart(pc int, nextSeq uint64)

	// CanIssue reports whether the instruction at pc may issue now; if
	// not, reason explains the checkpoint-related stall. CanIssue may
	// establish a checkpoint as a side effect (a store that would
	// exceed the per-segment write limit W forces one).
	CanIssue(in isa.Inst, pc int) (ok bool, reason string)

	// OnIssue records the issue of op and performs any check actions it
	// triggers. nextPC is the index of the next instruction on the
	// (predicted) path — the location of a checkpoint established at
	// op's right boundary.
	OnIssue(op OpInfo, nextPC int)

	// Depths fills out[s] with the delivery depth for each register
	// file stack: the number of newest checkpoints of stack s
	// established at or after the issue of the operation with sequence
	// seq. out must have len == len(RegStackCaps()).
	Depths(seq uint64, out []int)

	// OnDeliver records the completion of the operation with sequence
	// seq; exc reports whether it raised an exception.
	OnDeliver(seq uint64, exc bool)

	// OnBranchResolve reports resolution of the conditional branch with
	// sequence seq. If the prediction missed, the scheme performs the
	// B-repair (restoring state, squashing, redirecting fetch to
	// actualNext) and returns true; a scheme without B-repair capability
	// returns false on a miss, which the machine treats as fatal.
	OnBranchResolve(seq uint64, mispredicted bool, actualNext int) (handled bool)

	// Tick runs end-of-cycle work: retrying blocked check actions and
	// firing the E-repair trigger (oldest active checkpoint has a
	// recorded exception). It returns whether an E-repair occurred and
	// a fatal error if the scheme cannot make progress (e.g. an
	// exception reached a scheme with no E-repair capability).
	Tick() (eRepaired bool, err error)

	// Drain is called when instruction fetch has run out (HALT issued or
	// fetch fell off the code) and the pipeline is empty, yet the run
	// cannot finish because exceptions are still recorded on active
	// checkpoints. The paper's trigger waits for the excepting
	// checkpoint to shift to the oldest position, which requires further
	// checkpoint pushes; with issue stopped, Drain fires the repair to
	// the oldest checkpoint directly (its backup is always complete).
	// It returns whether a repair occurred, and an error for schemes
	// with no E-repair capability.
	Drain() (eRepaired bool, err error)

	// Stats returns scheme event counters.
	Stats() Stats
}

// Checkpoint is one active checkpoint: an instruction boundary with an
// identified logical space (paper §2.3) plus the shift-register state
// the paper keeps per position (count, except, pend, miss).
type Checkpoint struct {
	// BornSeq is the issue sequence of the last instruction to the left
	// of the checkpoint. Operations with Seq > BornSeq are to its right.
	BornSeq uint64
	// PC is the instruction index just right of the checkpoint on the
	// path being issued — the E-repair resume point.
	PC int
	// Issued counts instructions issued into the checkpoint's fault
	// repair range (the segment to its right, up to the next checkpoint
	// of the same role).
	Issued int
	// Active counts issued-but-unfinished operations in that segment —
	// the paper's countE entry.
	Active int
	// Stores counts memory writes issued into the segment, for the
	// paper's Definition 3 per-segment write limit W.
	Stores int
	// ExceptSeqs lists the sequences of segment operations that
	// delivered an exception — the paper's exceptE flag, kept as a list
	// so squashes of wrong-path operations can retract their
	// contributions.
	ExceptSeqs []uint64
	// BranchSeq / Pend / Miss describe the owning conditional branch of
	// a B-repair checkpoint: the branch just to its left, whether its
	// prediction is still unverified, and whether it missed.
	BranchSeq uint64
	Pend      bool
	Miss      bool
}

// Except reports whether any segment operation delivered an exception.
func (c *Checkpoint) Except() bool { return len(c.ExceptSeqs) > 0 }

// pruneExcepts drops recorded exceptions from operations newer than the
// squash boundary.
func (c *Checkpoint) pruneExcepts(boundary uint64) {
	kept := c.ExceptSeqs[:0]
	for _, s := range c.ExceptSeqs {
		if s <= boundary {
			kept = append(kept, s)
		}
	}
	c.ExceptSeqs = kept
}

// window is an ordered set of active checkpoints (oldest first) bound
// to one register-file backup stack. Checkpoint records that leave the
// window are recycled through a free list so that steady-state
// establish/retire churn allocates nothing.
type window struct {
	stack int
	cap   int
	cks   []*Checkpoint
	free  []*Checkpoint
}

func newWindow(stack, cap int) window {
	return window{stack: stack, cap: cap, cks: make([]*Checkpoint, 0, cap)}
}

// take returns a zeroed Checkpoint record ready to be filled and
// pushed, reusing a recycled one when available (its ExceptSeqs backing
// array is kept). Recycled records retain their old field values until
// taken, so repair code may still read a just-popped checkpoint's
// fields as long as no checkpoint is established in between.
func (w *window) take() *Checkpoint {
	if n := len(w.free); n > 0 {
		c := w.free[n-1]
		w.free = w.free[:n-1]
		*c = Checkpoint{ExceptSeqs: c.ExceptSeqs[:0]}
		return c
	}
	return new(Checkpoint)
}

// recycle makes a record that left the window available for reuse. A
// record moved into another window (loose graduation) must not be
// recycled.
func (w *window) recycle(c *Checkpoint) { w.free = append(w.free, c) }

func (w *window) len() int   { return len(w.cks) }
func (w *window) full() bool { return len(w.cks) >= w.cap }

func (w *window) oldest() *Checkpoint {
	if len(w.cks) == 0 {
		return nil
	}
	return w.cks[0]
}

func (w *window) newest() *Checkpoint {
	if len(w.cks) == 0 {
		return nil
	}
	return w.cks[len(w.cks)-1]
}

// depthFor returns how many checkpoints were established at or after
// the issue of the operation with sequence seq — the number of newest
// backup spaces its delivery must update.
func (w *window) depthFor(seq uint64) int {
	d := 0
	for i := len(w.cks) - 1; i >= 0; i-- {
		if w.cks[i].BornSeq >= seq {
			d++
		} else {
			break
		}
	}
	return d
}

// owner returns the newest checkpoint whose BornSeq is < seq: the
// checkpoint in whose E-repair (fault) range the operation resides.
func (w *window) owner(seq uint64) *Checkpoint {
	for i := len(w.cks) - 1; i >= 0; i-- {
		if w.cks[i].BornSeq < seq {
			return w.cks[i]
		}
	}
	return nil
}

// findBranch returns the checkpoint owned by the branch with the given
// sequence, and its index.
func (w *window) findBranch(seq uint64) (*Checkpoint, int) {
	for i, c := range w.cks {
		if c.BranchSeq == seq && c.Pend {
			return c, i
		}
	}
	return nil, -1
}

// push appends a new newest checkpoint. The caller must have ensured
// capacity.
func (w *window) push(c *Checkpoint) {
	if w.full() {
		panic(fmt.Sprintf("core: window push beyond capacity %d", w.cap))
	}
	w.cks = append(w.cks, c)
}

// retireOldest removes the oldest checkpoint.
func (w *window) retireOldest() *Checkpoint {
	c := w.cks[0]
	w.cks = append(w.cks[:0], w.cks[1:]...)
	return c
}

// popFrom removes checkpoints at index i and newer, returning how many
// were removed. The removed records are recycled.
func (w *window) popFrom(i int) int {
	n := len(w.cks) - i
	w.free = append(w.free, w.cks[i:]...)
	w.cks = w.cks[:i]
	return n
}

// clear removes every checkpoint, recycling the records.
func (w *window) clear() {
	w.free = append(w.free, w.cks...)
	w.cks = w.cks[:0]
}

// depthFromNewest converts a slice index into a 1-based depth from the
// newest end (the regfile RecallAt convention).
func (w *window) depthFromNewest(i int) int { return len(w.cks) - i }

// View is a read-only copy of one active checkpoint for rendering and
// auditing (internal/trace renders the paper's Figure 3/4/7 execution
// snapshots from it).
type View struct {
	BornSeq uint64
	PC      int
	Active  int
	Issued  int
	Except  bool
	Pend    bool
	IsE     bool // may serve E-repair
	IsB     bool // may serve B-repair (pending branch verification)
}

// Inspectable is implemented by every scheme: Views returns the active
// checkpoints per register-file stack, oldest first.
type Inspectable interface {
	Views() [][]View
}

func viewOf(c *Checkpoint, isE, isB bool) View {
	return View{
		BornSeq: c.BornSeq,
		PC:      c.PC,
		Active:  c.Active,
		Issued:  c.Issued,
		Except:  c.Except(),
		Pend:    c.Pend,
		IsE:     isE,
		IsB:     isB,
	}
}

func viewsOf(w *window, isE, isB bool) []View {
	out := make([]View, 0, len(w.cks))
	for _, c := range w.cks {
		out = append(out, viewOf(c, isE, isB))
	}
	return out
}

// RewindTarget describes one live checkpoint that Rewinder.RewindTo can
// restore: the boundary identification, the resume PC recorded on the
// checkpoint, and the flags a debugger needs to label it.
type RewindTarget struct {
	BornSeq uint64
	PC      int
	Except  bool // segment operations have delivered exceptions
	Pend    bool // owning branch still unverified
	IsE     bool
	IsB     bool
}

// Rewinder is the optional scheme capability behind time-travel debug
// sessions: restoring the architectural register state of ANY live
// checkpoint on demand, through the same recall paths the repair
// algorithms use — not just the oldest (E-repair) or a mispredicted
// branch's (B-repair).
//
// RewindTo's contract with the caller (the machine):
//
//   - the pipeline must be quiesced first: no in-flight operations, so
//     every backup space is complete (no pending cells) and surviving
//     checkpoints are all on the resolved true path;
//   - RewindTo recalls the target's backup space into the current
//     space and empties every register backup stack (newer spaces are
//     invalidated exactly as a repair would; older spaces lose their
//     repair capability, which the mandatory Restart rebuilds);
//   - the caller then squashes/repairs memory to the boundary and
//     calls Restart(pc, bornSeq+1), re-establishing initial
//     checkpoint state exactly as after an E-repair exit.
//
// ok=false means no live checkpoint carries that BornSeq.
type Rewinder interface {
	// RewindTargets appends the live checkpoints, oldest first per
	// window, to buf and returns it.
	RewindTargets(buf []RewindTarget) []RewindTarget
	// RewindTo restores the register file's current space from the live
	// checkpoint with the given BornSeq and returns its resume PC.
	RewindTo(bornSeq uint64) (pc int, ok bool)
}

// appendTargets renders one window's checkpoints as rewind targets.
func appendTargets(buf []RewindTarget, w *window, isE, isB bool) []RewindTarget {
	for _, c := range w.cks {
		buf = append(buf, RewindTarget{
			BornSeq: c.BornSeq,
			PC:      c.PC,
			Except:  c.Except(),
			Pend:    c.Pend,
			IsE:     isE,
			IsB:     isB,
		})
	}
	return buf
}

// rewindRecall performs the register-space half of a rewind against one
// window: recall the target's backup into the current space (popping
// the newer spaces of that stack, as B-repair does via the same
// RecallAt path).
func rewindRecall(regs *regfile.File, w *window, bornSeq uint64) (pc int, ok bool) {
	for i, c := range w.cks {
		if c.BornSeq == bornSeq {
			regs.RecallAt(w.stack, w.depthFromNewest(i))
			return c.PC, true
		}
	}
	return 0, false
}

// dropAllBackups empties every register backup stack without touching
// the current space — the rewind epilogue (see Rewinder). Requires a
// quiesced pipeline, so no dropped cell can be pending.
func dropAllBackups(regs *regfile.File) {
	for s := 0; s < regs.Stacks(); s++ {
		for regs.Depth(s) > 0 {
			regs.DropOldest(s)
		}
	}
}
