package core

import "fmt"

// SchemeDesc is a serializable description of a freshly constructed
// scheme: the constructor name plus its parameters. It exists so a
// sweep configuration can cross a process boundary (the cluster's
// remote batch sub-jobs) and be rebuilt bit-for-bit on the other side.
// Only construction parameters are captured — describing a scheme that
// has already simulated cycles loses its run state, so callers must
// describe fresh instances only (which is what sweeps construct).
type SchemeDesc struct {
	Kind     string `json:"kind"` // e, b, tight, loose, direct
	C        int    `json:"c,omitempty"`
	CE       int    `json:"ce,omitempty"`
	CB       int    `json:"cb,omitempty"`
	Distance int    `json:"distance,omitempty"`
	W        int    `json:"w,omitempty"`
}

// DescribeScheme captures a scheme's constructor parameters. ok is
// false for scheme types without a registered description (a remote
// batch containing one falls back to local execution).
func DescribeScheme(s Scheme) (SchemeDesc, bool) {
	switch v := s.(type) {
	case *SchemeE:
		return SchemeDesc{Kind: "e", C: v.C, Distance: v.Distance, W: v.W}, true
	case *SchemeB:
		return SchemeDesc{Kind: "b", C: v.C}, true
	case *SchemeTight:
		return SchemeDesc{Kind: "tight", C: v.C, W: v.W}, true
	case *SchemeLoose:
		return SchemeDesc{Kind: "loose", CE: v.CE, CB: v.CB, Distance: v.Distance}, true
	case *SchemeDirect:
		return SchemeDesc{Kind: "direct", CE: v.CE, CB: v.CB, Distance: v.Distance, W: v.W}, true
	}
	return SchemeDesc{}, false
}

// NewSchemeFromDesc rebuilds a fresh scheme from its description.
func NewSchemeFromDesc(d SchemeDesc) (Scheme, error) {
	switch d.Kind {
	case "e":
		return NewSchemeE(d.C, d.Distance, d.W), nil
	case "b":
		return NewSchemeB(d.C), nil
	case "tight":
		return NewSchemeTight(d.C, d.W), nil
	case "loose":
		return NewSchemeLoose(d.CE, d.CB, d.Distance), nil
	case "direct":
		return NewSchemeDirect(d.CE, d.CB, d.Distance, d.W), nil
	}
	return nil, fmt.Errorf("core: unknown scheme kind %q", d.Kind)
}
