package refsim

import (
	"sync"
	"testing"

	"repro/internal/workload"
)

func recordKernel(t *testing.T, name string) *Trace {
	t.Helper()
	k, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Record(k.Load(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSnapshotSetMatchesReplay: a SnapshotSet answer at every boundary
// must equal the sequential Replay answer — snapshots change the cost
// of StateAt, never its value. Snapshot steps include duplicates and
// out-of-range values to exercise the clamping and dedup.
func TestSnapshotSetMatchesReplay(t *testing.T) {
	for _, name := range stateAtKernels {
		t.Run(name, func(t *testing.T) {
			tr := recordKernel(t, name)
			n := tr.Steps()
			ss := tr.SnapshotSet([]int{n / 4, n / 2, n / 2, 3 * n / 4, -5, n + 99})

			steps := ss.Steps()
			if steps[0] != 0 {
				t.Fatalf("snapshot steps %v missing implicit boundary 0", steps)
			}
			for i := 1; i < len(steps); i++ {
				if steps[i] <= steps[i-1] {
					t.Fatalf("snapshot steps not strictly ascending: %v", steps)
				}
			}

			r := tr.Replay()
			stride := n/200 + 1
			for q := 0; q <= n; q += stride {
				if b := ss.Base(q); b > q {
					t.Fatalf("Base(%d) = %d > query", q, b)
				}
				want := r.StateAt(q)
				got := ss.StateAt(q)
				if want.Regs != got.Regs {
					t.Fatalf("step %d: regs diverge from replay", q)
				}
				if !want.Mem.Equal(got.Mem) {
					t.Fatalf("step %d: memory diverges from replay", q)
				}
			}
		})
	}
}

// TestSnapshotSetConcurrent: StateAt is read-only on the set; queries
// from many goroutines (run under -race in make ci) return correct,
// independent states.
func TestSnapshotSetConcurrent(t *testing.T) {
	tr := recordKernel(t, "pagedemo")
	n := tr.Steps()
	ss := tr.SnapshotSet([]int{n / 3, 2 * n / 3})
	want := tr.Replay().StateAt(n)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				q := (g*31 + i*17) % (n + 1)
				st := ss.StateAt(q)
				// Mutating the returned copy must not leak into the set.
				st.Regs[1] ^= 0xdeadbeef
				st.Mem.WriteMasked(0, 0xff, 0xff)
			}
		}(g)
	}
	wg.Wait()

	got := ss.StateAt(n)
	if want.Regs != got.Regs || !want.Mem.Equal(got.Mem) {
		t.Fatal("concurrent mutated queries corrupted the snapshot set")
	}
}

// TestStepAtRetired: the retirement inverse must agree with a direct
// walk of the replay's per-step retirement counts.
func TestStepAtRetired(t *testing.T) {
	for _, name := range []string{"fib", "divzero"} {
		t.Run(name, func(t *testing.T) {
			tr := recordKernel(t, name)
			r := tr.Replay()
			// retiredAfter[i] = instructions retired after i steps.
			retiredAfter := make([]int, tr.Steps()+1)
			for i := 1; i <= tr.Steps(); i++ {
				r.Step()
				retiredAfter[i] = r.Retired()
			}
			total := retiredAfter[tr.Steps()]

			if got := tr.StepAtRetired(0); got != 0 {
				t.Fatalf("StepAtRetired(0) = %d, want 0", got)
			}
			if got := tr.StepAtRetired(total + 10); got != tr.Steps() {
				t.Fatalf("StepAtRetired(past end) = %d, want %d", got, tr.Steps())
			}
			for want := 1; want <= total; want++ {
				n := tr.StepAtRetired(want)
				if retiredAfter[n] < want {
					t.Fatalf("StepAtRetired(%d) = %d but only %d retired there", want, n, retiredAfter[n])
				}
				if n > 0 && retiredAfter[n-1] >= want {
					t.Fatalf("StepAtRetired(%d) = %d is not minimal (%d already retired at %d)",
						want, n, retiredAfter[n-1], n-1)
				}
			}
		})
	}
}

// TestArchStateHash: equal states hash equal, different states hash
// different, and a single-register mutation changes the hash.
func TestArchStateHash(t *testing.T) {
	tr := recordKernel(t, "fib")
	n := tr.Steps()

	a := tr.Replay().StateAt(n / 2)
	b := tr.Replay().StateAt(n / 2)
	if a.Hash() != b.Hash() {
		t.Fatal("independent reconstructions of the same step hash differently")
	}
	if h0, hn := tr.Replay().StateAt(0).Hash(), tr.Replay().StateAt(n).Hash(); h0 == hn {
		t.Fatal("initial and final state hash equal")
	}
	before := a.Hash()
	a.Regs[3] ^= 1
	if a.Hash() == before {
		t.Fatal("register mutation did not change the hash")
	}
}

// TestAnchorHashes: positional results for unordered query steps match
// direct StateAt hashes.
func TestAnchorHashes(t *testing.T) {
	tr := recordKernel(t, "pagedemo")
	n := tr.Steps()
	steps := []int{n, 0, n / 2, n / 4}
	got := tr.AnchorHashes(steps)
	for i, s := range steps {
		if want := tr.Replay().StateAt(s).Hash(); got[i] != want {
			t.Fatalf("AnchorHashes[%d] (step %d) = %s, want %s", i, s, got[i], want)
		}
	}
}
