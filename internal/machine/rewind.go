// Time-travel rewind: restoring the architectural state of any live
// checkpoint on demand, through the same E/B repair paths the schemes
// use for exceptions and branch misses.
//
// The repair machinery already knows how to reconstruct the logical
// space of every active checkpoint — that is the paper's whole point.
// Rewind generalises the two hardwired triggers (exception at the
// oldest checkpoint, branch miss at a pending checkpoint) into a
// debugger verb: pick ANY live checkpoint, recall its register backup
// space (regfile.RecallAt — the B-repair path), repair memory to its
// boundary (diff.MemSystem.Repair — both repair paths), and restart
// issue from its resume PC exactly as the post-repair check action
// does. The machine can then re-run forward, deterministically
// reproducing the architectural path.
//
// The one extra ingredient is knowing WHERE each checkpoint lies on the
// golden instruction stream, so the resumed machine's shadow oracle can
// be repositioned and the restored state can be audited against the
// reference. Config.Rewindable turns on boundary recording: every
// true-path issue whose shadow step did not except appends a rewindRec
// mapping the op's sequence number (the BornSeq a checkpoint at its
// right boundary would carry) to the oracle's step/retire/exception
// coordinates. Checkpoints without a record — wrong-path ones, ones at
// a mid-vector forced boundary, ones born while alignment was lost —
// are simply reported as not rewindable.
package machine

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/refsim"
	"repro/internal/sem"
)

// Rewind error sentinels, matchable with errors.Is.
var (
	// ErrNotRewindable: the requested boundary exists but cannot be
	// restored (no golden record, demand-paging crossed, scheme lacks
	// the capability). Permanent for that boundary.
	ErrNotRewindable = errors.New("not rewindable")
	// ErrRewindBusy: the pipeline cannot quiesce right now (an E-repair
	// is re-executing precisely, or a store is stalled on a full
	// difference buffer). Transient — step the machine and retry.
	ErrRewindBusy = errors.New("rewind busy")
)

// rewindRec maps one true-path issue boundary to golden-trace
// coordinates: after the op with this seq executed, the architectural
// state is the reference model's state after `steps` attempts.
type rewindRec struct {
	seq     uint64
	steps   int
	retired int
	excs    int
}

// RewindInfo describes one rewind target (or the machine's current
// golden boundary): the checkpoint identification, golden coordinates,
// and whether Rewind can restore it.
type RewindInfo struct {
	Seq     uint64 `json:"seq"`     // checkpoint BornSeq
	PC      int    `json:"pc"`      // resume PC
	Steps   int    `json:"steps"`   // golden boundary index (refsim.Replay.StateAt), -1 if unrecorded
	Retired int    `json:"retired"` // architecturally retired instructions at the boundary
	Excs    int    `json:"excs"`    // architectural exceptions handled at the boundary
	IsE     bool   `json:"is_e"`    // serves E-repair
	IsB     bool   `json:"is_b"`    // serves B-repair
	Except  bool   `json:"except"`  // segment has delivered exceptions
	Pend    bool   `json:"pend"`    // owning branch still unverified
	// Rewindable reports whether Rewind(Seq) can restore this boundary;
	// Reason says why not when false.
	Rewindable bool   `json:"rewindable"`
	Reason     string `json:"reason,omitempty"`
}

// recordBoundary appends a golden boundary record for the op with the
// given seq, reading the coordinates off the just-stepped shadow.
func (m *Machine) recordBoundary(seq uint64) {
	m.recs = append(m.recs, rewindRec{
		seq:     seq,
		steps:   m.shadow.Steps(),
		retired: m.shadow.Retired(),
		excs:    m.shadow.ExcCount(),
	})
	// Periodically drop records older than every live checkpoint — they
	// can never be rewind targets again, and a long run would otherwise
	// accumulate one record per retired instruction.
	if len(m.recs)&0xfff == 0 {
		m.pruneDeadRecs()
	}
}

// pruneRecsAbove drops records newer than the squash boundary; their
// seqs are about to be reissued (possibly down a different path).
func (m *Machine) pruneRecsAbove(seq uint64) {
	if len(m.recs) == 0 {
		return
	}
	i := sort.Search(len(m.recs), func(i int) bool { return m.recs[i].seq > seq })
	m.recs = m.recs[:i]
}

// pruneDeadRecs drops records older than the oldest live checkpoint.
func (m *Machine) pruneDeadRecs() {
	rw, ok := m.scheme.(core.Rewinder)
	if !ok {
		return
	}
	targets := rw.RewindTargets(nil)
	if len(targets) == 0 {
		return
	}
	floor := targets[0].BornSeq
	for _, t := range targets[1:] {
		if t.BornSeq < floor {
			floor = t.BornSeq
		}
	}
	i := sort.Search(len(m.recs), func(i int) bool { return m.recs[i].seq >= floor })
	if i > 0 {
		m.recs = append(m.recs[:0], m.recs[i:]...)
	}
}

// findRec looks up the golden record for a boundary seq. Records stay
// sorted by seq: appends are monotonic and squashes truncate the tail.
func (m *Machine) findRec(seq uint64) (rewindRec, bool) {
	i := sort.Search(len(m.recs), func(i int) bool { return m.recs[i].seq >= seq })
	if i < len(m.recs) && m.recs[i].seq == seq {
		return m.recs[i], true
	}
	return rewindRec{}, false
}

// blockReason explains why a recorded boundary cannot be restored, or
// returns "" if it can. The only permanent blocker for a recorded
// boundary is a demand-paged mapping performed since it: pages mapped
// into backing memory by a resume-kind exception handler cannot be
// unmapped, so the pre-fault address space cannot be reconstructed.
func (m *Machine) blockReason(rec rewindRec) string {
	if rec.excs <= len(m.excLog) {
		for _, e := range m.excLog[rec.excs:] {
			if sem.HandlerAction(e.Code) == sem.ActResume {
				return fmt.Sprintf("page mapped by a demand-paging exception (pc=%d) since this boundary cannot be unmapped", e.PC)
			}
		}
	}
	return ""
}

// RewindTargets lists the machine's live checkpoints as rewind targets,
// joined with their golden boundary records. Purely informational — the
// pipeline is not quiesced, so targets may still be pending branch
// verification (they resolve before an actual Rewind restores state).
func (m *Machine) RewindTargets() []RewindInfo {
	rw, ok := m.scheme.(core.Rewinder)
	if !ok {
		return nil
	}
	ts := rw.RewindTargets(nil)
	out := make([]RewindInfo, 0, len(ts))
	for _, t := range ts {
		// The direct/loose schemes can hold an E and a B checkpoint at
		// the same boundary; merge them into one target.
		merged := false
		for i := range out {
			if out[i].Seq == t.BornSeq {
				out[i].IsE = out[i].IsE || t.IsE
				out[i].IsB = out[i].IsB || t.IsB
				out[i].Except = out[i].Except || t.Except
				out[i].Pend = out[i].Pend || t.Pend
				merged = true
				break
			}
		}
		if merged {
			continue
		}
		info := RewindInfo{
			Seq: t.BornSeq, PC: t.PC, Steps: -1,
			IsE: t.IsE, IsB: t.IsB, Except: t.Except, Pend: t.Pend,
		}
		switch rec, ok := m.findRec(t.BornSeq); {
		case !m.cfg.Rewindable:
			info.Reason = "machine not configured with Rewindable"
		case !ok:
			info.Reason = "no golden boundary recorded (wrong-path or mid-instruction checkpoint)"
		default:
			info.Steps, info.Retired, info.Excs = rec.steps, rec.retired, rec.excs
			if r := m.blockReason(rec); r != "" {
				info.Reason = r
			} else {
				info.Rewindable = true
			}
		}
		out = append(out, info)
	}
	return out
}

// GoldenBoundary returns the golden-trace coordinates of the machine's
// current architectural boundary. Valid only when the pipeline is empty
// and the machine is in normal mode (or finished): then every issued op
// has delivered, all repairs have settled, and the architectural state
// equals the reference state after Steps attempts — the property the
// debug session's divergence check builds on.
func (m *Machine) GoldenBoundary() (RewindInfo, bool) {
	if m.mode != modeNormal || m.window.Len() != 0 || m.fatal != nil {
		return RewindInfo{}, false
	}
	rec, ok := m.findRec(m.nextSeq - 1)
	if !ok {
		return RewindInfo{}, false
	}
	return RewindInfo{
		Seq: rec.seq, PC: m.fetchPC,
		Steps: rec.steps, Retired: rec.retired, Excs: rec.excs,
		Rewindable: m.blockReason(rec) == "",
	}, true
}

// quiesce drains the pipeline with the issue stage suppressed: every
// in-flight operation delivers, every branch resolves (performing its
// B-repair if mispredicted), and surviving checkpoints end up complete
// and on the resolved true path — the precondition of core.Rewinder.
//
// Quiesce can fail transiently: an exception may fire an E-repair into
// single-step mode, or a store may be permanently stalled on a full
// difference buffer (its checkpoint cannot retire with issue stopped).
// Both return ErrRewindBusy; the caller steps the machine forward and
// retries. A fatal machine error surfaces as itself.
func (m *Machine) quiesce() error {
	for m.window.Len() > 0 {
		if m.fatal != nil {
			return m.fatal
		}
		if m.mode == modePrecise {
			return fmt.Errorf("machine: %w: E-repair re-executing precisely; step and retry", ErrRewindBusy)
		}
		if m.cycle-m.lastProgress > stuckThreshold+16 {
			// Only a store stalled on a difference buffer full of live
			// entries can wedge a delivery-only pipeline; bail before
			// the watchdog poisons the machine with a fatal error.
			return fmt.Errorf("machine: %w: pipeline stalled while draining (difference buffer full)", ErrRewindBusy)
		}
		m.suppressIssue = true
		ok := m.Step()
		m.suppressIssue = false
		if !ok {
			break
		}
	}
	if m.fatal != nil {
		return m.fatal
	}
	if m.mode == modePrecise {
		return fmt.Errorf("machine: %w: E-repair re-executing precisely; step and retry", ErrRewindBusy)
	}
	return nil
}

// freshOracleAt builds a new reference oracle positioned after `steps`
// architectural attempts: a trace replay cursor walk when the machine
// runs against a recorded trace, otherwise a re-interpreted shadow.
func (m *Machine) freshOracleAt(steps int) (refsim.Oracle, error) {
	var o refsim.Oracle
	if m.cfg.RefTrace != nil {
		o = m.cfg.RefTrace.Replay()
	} else {
		o = refsim.NewShadow(m.prog)
	}
	for i := 0; i < steps; i++ {
		if o.Halted() {
			return nil, fmt.Errorf("machine: internal: oracle halted after %d of %d steps", i, steps)
		}
		o.Step()
	}
	return o, nil
}

// Rewind restores the architectural state of the live checkpoint with
// BornSeq seq and restarts speculative execution from its boundary. On
// success the machine's registers, memory, exception log, and oracle
// all sit exactly at the recorded golden boundary, and running forward
// retraces the architectural path deterministically (cycle counts and
// cache/predictor stats may differ from a cold run — warm structures —
// but architectural state per boundary is identical).
//
// The restore path is the repair machinery itself: quiesce, recall the
// target's register backup space (core.Rewinder → regfile.RecallAt),
// repair memory to the boundary (diff.MemSystem.Repair), redirect
// fetch, and re-run the scheme's initial check action. The cycle cost
// of the memory repair is charged exactly like a real repair's
// shift-register work.
//
// Errors: ErrRewindBusy is transient (step and retry); ErrNotRewindable
// is permanent for this boundary; anything else is fatal.
func (m *Machine) Rewind(seq uint64) (*RewindInfo, error) {
	if !m.cfg.Rewindable {
		return nil, fmt.Errorf("machine: %w: Config.Rewindable is off", ErrNotRewindable)
	}
	rw, ok := m.scheme.(core.Rewinder)
	if !ok {
		return nil, fmt.Errorf("machine: %w: scheme %s has no rewind capability", ErrNotRewindable, m.scheme.Name())
	}
	if m.fatal != nil {
		return nil, fmt.Errorf("machine: cannot rewind a failed run: %w", m.fatal)
	}
	if m.memOut {
		return nil, fmt.Errorf("machine: %w: Finish already drained the speculative state", ErrNotRewindable)
	}
	if _, ok := m.findRec(seq); !ok {
		return nil, fmt.Errorf("machine: %w: no golden boundary recorded for seq %d", ErrNotRewindable, seq)
	}

	if err := m.quiesce(); err != nil {
		return nil, err
	}

	// Re-resolve both the record and the target: a B-repair during the
	// quiesce may have squashed the boundary (pruning its record), and
	// checkpoint retirement is impossible (no pushes with issue off) but
	// repairs do pop.
	rec, ok := m.findRec(seq)
	if !ok {
		return nil, fmt.Errorf("machine: %w: boundary seq %d was squashed by a repair while draining", ErrNotRewindable, seq)
	}
	var target core.RewindTarget
	found := false
	for _, t := range rw.RewindTargets(nil) {
		if t.BornSeq == seq {
			target, found = t, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("machine: %w: checkpoint %d is no longer live", ErrNotRewindable, seq)
	}
	if target.Pend {
		return nil, fmt.Errorf("machine: internal: checkpoint %d still pending after quiesce", seq)
	}
	if r := m.blockReason(rec); r != "" {
		return nil, fmt.Errorf("machine: %w: %s", ErrNotRewindable, r)
	}

	// Build and verify the repositioned oracle BEFORE mutating anything:
	// a mismatch between the checkpoint's resume PC and the golden PC
	// would mean corrupted state, and must not destroy the machine.
	oracle, err := m.freshOracleAt(rec.steps)
	if err != nil {
		return nil, err
	}
	if oracle.Halted() || oracle.PC() != target.PC {
		return nil, fmt.Errorf("machine: internal: checkpoint %d resume pc=%d but golden boundary %d has pc=%d",
			seq, target.PC, rec.steps, oracle.PC())
	}

	// Point of no return. The pipeline is empty, so there is nothing to
	// squash; the sequence counter rewinds to the boundary exactly as
	// SquashAfter would set it.
	m.trace("rewind to seq=%d pc=%d (golden step %d, retired %d)", seq, target.PC, rec.steps, rec.retired)
	m.nextSeq = seq + 1
	pc, ok := rw.RewindTo(seq)
	if !ok || pc != target.PC {
		panic(fmt.Sprintf("machine: scheme lost checkpoint %d between listing and recall", seq))
	}
	m.memsys.Repair(seq + 1)
	m.chargeRepairWork()
	m.RedirectFetch(pc)
	m.scheme.Restart(pc, m.nextSeq)
	m.shadow = oracle
	m.aligned = true
	m.excLog = m.excLog[:rec.excs]
	m.done = false
	m.lastProgress = m.cycle
	m.pruneRecsAbove(seq)

	info := RewindInfo{
		Seq: seq, PC: pc, Steps: rec.steps, Retired: rec.retired, Excs: rec.excs,
		IsE: target.IsE, IsB: target.IsB, Rewindable: true,
	}
	return &info, nil
}

// NewAt builds a machine whose run begins at golden boundary `boundary`
// of cfg.RefTrace instead of the program entry: backing memory and
// registers are seeded from the reference state, the shadow oracle is
// positioned mid-trace, and the exception log carries the golden
// prefix. This is the debug session's config-change rewind — "what
// would this region have done under a deeper window?" — where the
// restored state must cross a configuration change and therefore cannot
// be recalled in place.
func NewAt(p *prog.Program, cfg Config, boundary int) (*Machine, error) {
	if cfg.RefTrace == nil {
		return nil, errors.New("machine: NewAt requires Config.RefTrace")
	}
	if boundary < 0 || boundary > cfg.RefTrace.Steps() {
		return nil, fmt.Errorf("machine: NewAt boundary %d out of range [0,%d]", boundary, cfg.RefTrace.Steps())
	}
	m, err := New(p, cfg)
	if err != nil {
		return nil, err
	}
	if boundary == 0 {
		return m, nil
	}
	pos := cfg.RefTrace.Replay()
	st := pos.StateAt(boundary)
	for i := 0; i < boundary; i++ {
		pos.Step()
	}
	if pos.Halted() {
		return nil, fmt.Errorf("machine: NewAt boundary %d is at the architectural halt", boundary)
	}

	m.backing = st.Mem // deep copy owned by the machine
	if err := m.dcache.Reset(m.cfg.Cache, m.backing); err != nil {
		return nil, err
	}
	m.resetMemsys(m.cfg)
	m.regs.SeedCurrent(st.Regs)
	m.shadow = pos
	m.aligned = true
	m.fetchPC = pos.PC()
	m.nextSeq = 1
	m.excLog = append(m.excLog[:0], cfg.RefTrace.Exceptions()[:pos.ExcCount()]...)
	m.recs = m.recs[:0]
	if m.cfg.Rewindable {
		m.recs = append(m.recs, rewindRec{seq: 0, steps: boundary, retired: pos.Retired(), excs: pos.ExcCount()})
	}
	// Re-run the initial check action at the new boundary; the pushed
	// backup space captures the seeded registers.
	m.scheme.Restart(m.fetchPC, m.nextSeq)
	return m, nil
}

// --- debug inspection accessors (the session subsystem's read surface) ---

// FetchPC returns the next instruction index the issue stage will fetch.
func (m *Machine) FetchPC() int { return m.fetchPC }

// RegsSnapshot returns the current-space register values.
func (m *Machine) RegsSnapshot() [isa.NumRegs]uint32 { return m.regs.Snapshot() }

// PeekMem reads the aligned longword containing addr as the current
// logical space observes it, without perturbing cache or difference
// state. ok=false means unmapped.
func (m *Machine) PeekMem(addr uint32) (uint32, bool) { return m.memsys.Peek(addr) }

// Exceptions returns the architectural exception log so far. Read-only;
// rewinds truncate it.
func (m *Machine) Exceptions() []isa.Exception { return m.excLog }

// Fatal returns the fatal error that stopped the run, if any.
func (m *Machine) Fatal() error { return m.fatal }

// Program returns the program this machine is bound to.
func (m *Machine) Program() *prog.Program { return m.prog }
