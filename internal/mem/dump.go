package mem

import "fmt"

// Page is one mapped page image, the unit of memory serialization used
// when a machine result crosses a process boundary (the cluster's
// remote batch sub-jobs). Data is always exactly PageSize bytes.
type Page struct {
	Addr uint32 `json:"addr"` // byte address of the page start
	Data []byte `json:"data"`
}

// Dump returns every mapped page in ascending address order. Mapped but
// untouched (all-zero) pages are included: mappedness is architecturally
// visible (an unmapped access faults), so a faithful round-trip must
// preserve it.
func (m *Memory) Dump() []Page {
	out := make([]Page, 0, m.npages)
	m.forEachPage(func(pn uint32, pg []byte) bool {
		data := make([]byte, PageSize)
		copy(data, pg)
		out = append(out, Page{Addr: pn * PageSize, Data: data})
		return true
	})
	return out
}

// Restore builds a memory holding exactly the given pages. It is the
// inverse of Dump: Restore(m.Dump()).Equal(m) for every m.
func Restore(pages []Page) (*Memory, error) {
	m := New()
	for _, p := range pages {
		if p.Addr%PageSize != 0 {
			return nil, fmt.Errorf("mem: restore: page address %#x not page-aligned", p.Addr)
		}
		if len(p.Data) != PageSize {
			return nil, fmt.Errorf("mem: restore: page %#x has %d bytes, want %d", p.Addr, len(p.Data), PageSize)
		}
		if m.Mapped(p.Addr) {
			return nil, fmt.Errorf("mem: restore: page %#x duplicated", p.Addr)
		}
		data := make([]byte, PageSize)
		copy(data, p.Data)
		m.setPage(p.Addr>>pageShift, data)
	}
	return m, nil
}
