// Command ckptd serves the checkpoint-repair simulator as a daemon:
// simulation, sweep, and fault-campaign jobs over HTTP/JSON, executed
// on the internal worker pool behind a bounded queue and a
// content-addressed single-flight result cache (see internal/service
// and the "Serving" section of README.md).
//
// Usage:
//
//	ckptd                              # listen on 127.0.0.1:8909
//	ckptd -addr :9000 -workers 4       # wider execution pool
//	ckptd -queue 128 -cache 512        # more buffering before 429s
//	ckptd -store-dir /var/lib/ckptd    # persistent store: warm restarts answer from disk
//	ckptd -addr 127.0.0.1:0 -addrfile /tmp/ckptd.addr   # test harnesses
//
// SIGINT/SIGTERM starts a graceful drain: the listener stops accepting,
// admitted jobs run to completion (up to -drain-timeout, after which
// their contexts are cancelled), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/experiments"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8909", "listen address (host:port, port 0 picks a free port)")
	workers := flag.Int("workers", 2, "concurrent job executions (each fans out on the simulation pool)")
	queueCap := flag.Int("queue", 64, "bounded queue capacity; beyond it submissions get 429")
	cacheCap := flag.Int("cache", 256, "completed results kept in the in-memory cache (entries)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "in-memory result cache byte bound")
	storeDir := flag.String("store-dir", "", "persistent result store directory (empty = no persistence; restarts recompute)")
	storeBytes := flag.Int64("store-max-bytes", 1<<30, "disk store byte bound (LRU eviction past it)")
	storeMinCost := flag.Duration("store-min-cost", 2*time.Millisecond, "results computed faster than this skip the disk store")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for running jobs on shutdown before cancelling them")
	addrFile := flag.String("addrfile", "", "write the bound address to this file once listening (for scripts using port 0)")
	jobs := flag.Int("j", 0, "simulation pool width per execution (0 = GOMAXPROCS)")
	version := buildinfo.Flag()
	flag.Parse()
	version()

	if *jobs > 0 {
		experiments.SetParallelism(*jobs)
	}

	srv, err := service.New(service.Config{
		Workers:      *workers,
		QueueCap:     *queueCap,
		CacheCap:     *cacheCap,
		CacheBytes:   *cacheBytes,
		StoreDir:     *storeDir,
		StoreBytes:   *storeBytes,
		StoreMinCost: *storeMinCost,
	})
	if err != nil {
		log.Fatalf("ckptd: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("ckptd: %v", err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("ckptd: write addrfile: %v", err)
		}
	}
	persist := *storeDir
	if persist == "" {
		persist = "off"
	}
	log.Printf("ckptd %s listening on http://%s (workers=%d queue=%d cache=%d store=%s)",
		buildinfo.Version(), ln.Addr(), *workers, *queueCap, *cacheCap, persist)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("ckptd: %s: draining (timeout %s)", sig, *drainTimeout)
	case err := <-errc:
		log.Fatalf("ckptd: serve: %v", err)
	}

	// Stop taking connections first, then drain the job queue. Clients
	// blocked on ?wait=1 are closed by Shutdown only after their jobs
	// finish, so drain the queue before bounding the HTTP shutdown.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("ckptd: http shutdown: %v", err)
	}
	if drainErr != nil {
		log.Printf("ckptd: drain timed out, running jobs cancelled: %v", drainErr)
		fmt.Println("ckptd: stopped (hard)")
		os.Exit(1)
	}
	log.Printf("ckptd: drained clean")
}
