// Command ckptd serves the checkpoint-repair simulator as a daemon:
// simulation, sweep, and fault-campaign jobs over HTTP/JSON, executed
// on the internal worker pool behind a bounded queue and a
// content-addressed single-flight result cache (see internal/service
// and the "Serving" section of README.md).
//
// Usage:
//
//	ckptd                              # listen on 127.0.0.1:8909
//	ckptd -addr :9000 -workers 4       # wider execution pool
//	ckptd -queue 128 -cache 512        # more buffering before 429s
//	ckptd -store-dir /var/lib/ckptd    # persistent store: warm restarts answer from disk
//	ckptd -addr 127.0.0.1:0 -addrfile /tmp/ckptd.addr   # test harnesses
//
// Cluster mode (see the "Cluster" section of README.md):
//
//	ckptd -coordinator -addr :8909                         # cluster head
//	ckptd -worker -join http://head:8909 -addr :8910       # worker node
//	ckptd -worker -join http://head:8909 -advertise http://10.0.0.2:8910
//
// A coordinator routes submitted jobs to registered workers by
// consistent hash over the result key, fanning sweeps and campaigns
// out as sub-jobs; a worker is a plain daemon that additionally
// heartbeats its address and queue depth to the coordinator.
//
// SIGINT/SIGTERM starts a graceful drain: the listener stops accepting,
// admitted jobs run to completion (up to -drain-timeout, after which
// their contexts are cancelled), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8909", "listen address (host:port, port 0 picks a free port)")
	workers := flag.Int("workers", 2, "concurrent job executions (each fans out on the simulation pool)")
	queueCap := flag.Int("queue", 64, "bounded queue capacity; beyond it submissions get 429")
	cacheCap := flag.Int("cache", 256, "completed results kept in the in-memory cache (entries)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "in-memory result cache byte bound")
	storeDir := flag.String("store-dir", "", "persistent result store directory (empty = no persistence; restarts recompute)")
	storeBytes := flag.Int64("store-max-bytes", 1<<30, "disk store byte bound (LRU eviction past it)")
	storeMinCost := flag.Duration("store-min-cost", 2*time.Millisecond, "results computed faster than this skip the disk store")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for running jobs on shutdown before cancelling them")
	sessionCap := flag.Int("session-cap", 8, "max concurrently open debug sessions; beyond it POST /sessions gets 429")
	sessionTTL := flag.Duration("session-ttl", 15*time.Minute, "evict debug sessions idle longer than this")
	addrFile := flag.String("addrfile", "", "write the bound address to this file once listening (for scripts using port 0)")
	jobs := flag.Int("j", 0, "simulation pool width per execution (0 = GOMAXPROCS)")
	coordMode := flag.Bool("coordinator", false, "run as cluster coordinator: route jobs to registered workers")
	workerMode := flag.Bool("worker", false, "run as cluster worker: register with -join and execute sub-jobs")
	join := flag.String("join", "", "coordinator base URL a worker registers with (e.g. http://127.0.0.1:8909)")
	advertise := flag.String("advertise", "", "URL the coordinator should dial this worker at (default http://<bound addr>)")
	heartbeat := flag.Duration("heartbeat", 5*time.Second, "worker heartbeat interval")
	workerID := flag.String("worker-id", "", "worker identity in the coordinator's registry (default host:pid)")
	version := buildinfo.Flag()
	flag.Parse()
	version()

	if *coordMode && *workerMode {
		log.Fatalf("ckptd: -coordinator and -worker are mutually exclusive")
	}
	if *workerMode && *join == "" {
		log.Fatalf("ckptd: -worker requires -join <coordinator URL>")
	}

	if *jobs > 0 {
		experiments.SetParallelism(*jobs)
	}

	srv, err := service.New(service.Config{
		Workers:      *workers,
		QueueCap:     *queueCap,
		CacheCap:     *cacheCap,
		CacheBytes:   *cacheBytes,
		StoreDir:     *storeDir,
		StoreBytes:   *storeBytes,
		StoreMinCost: *storeMinCost,
		SessionCap:   *sessionCap,
		SessionTTL:   *sessionTTL,
	})
	if err != nil {
		log.Fatalf("ckptd: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("ckptd: %v", err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("ckptd: write addrfile: %v", err)
		}
	}
	persist := *storeDir
	if persist == "" {
		persist = "off"
	}
	role := "single-node"
	switch {
	case *coordMode:
		role = "coordinator"
	case *workerMode:
		role = "worker"
	}
	log.Printf("ckptd %s listening on http://%s (%s workers=%d queue=%d cache=%d store=%s)",
		buildinfo.Version(), ln.Addr(), role, *workers, *queueCap, *cacheCap, persist)

	handler := srv.Handler()
	var coord *cluster.Coordinator
	if *coordMode {
		coord = cluster.NewCoordinator(srv, cluster.CoordinatorConfig{
			HeartbeatTTL: 3 * *heartbeat,
		})
		handler = coord.Handler()
	}

	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	var hb *cluster.Heartbeat
	if *workerMode {
		adv := *advertise
		if adv == "" {
			adv = "http://" + ln.Addr().String()
		}
		id := *workerID
		if id == "" {
			host, _ := os.Hostname()
			id = fmt.Sprintf("%s:%d", host, os.Getpid())
		}
		hb = cluster.NewHeartbeat(srv, id, adv, *join, *heartbeat)
		if err := hb.Start(); err != nil {
			log.Fatalf("ckptd: %v", err)
		}
		log.Printf("ckptd: registered with %s as %s (%s)", *join, id, adv)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("ckptd: %s: draining (timeout %s)", sig, *drainTimeout)
	case err := <-errc:
		log.Fatalf("ckptd: serve: %v", err)
	}

	// Cluster roles unwind first: a worker stops announcing itself so
	// the coordinator reroutes around it, a coordinator stops routing
	// and probing. Then the usual drain.
	if hb != nil {
		hb.Stop()
	}
	if coord != nil {
		coord.Close()
	}

	// Stop taking connections first, then drain the job queue. Clients
	// blocked on ?wait=1 are closed by Shutdown only after their jobs
	// finish, so drain the queue before bounding the HTTP shutdown.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("ckptd: http shutdown: %v", err)
	}
	if drainErr != nil {
		log.Printf("ckptd: drain timed out, running jobs cancelled: %v", drainErr)
		fmt.Println("ckptd: stopped (hard)")
		os.Exit(1)
	}
	log.Printf("ckptd: drained clean")
}
