package core

import (
	"fmt"

	"repro/internal/diff"
	"repro/internal/isa"
	"repro/internal/regfile"
)

// SchemeDirect is the directly combined scheme of §5.1: two independent
// submechanisms, an E-repair window with checkpoints every Distance
// instructions and a B-repair window with checkpoints at every
// conditional branch, using cE + cB + 1 logical spaces. All properties
// follow from the subschemes; the price is the extra spaces and the
// interaction work a B-repair must do on the E bookkeeping (discarding
// E checkpoints established on the squashed path and retracting
// squashed operations' counts) — the "inefficiency in the logical space
// usage due to the lack of interaction" the paper notes.
type SchemeDirect struct {
	CE, CB   int
	Distance int
	W        int

	ewin window
	bwin window
	regs *regfile.File
	mem  diff.MemSystem
	eng  Engine

	eBlocked bool
	ePending struct {
		bornSeq uint64
		pc      int
	}
	bBlocked      bool
	blockedBranch uint64
	blockedPC     int
	lastSeq       uint64
	stats         Stats
}

// NewSchemeDirect returns a directly combined scheme with cE E-repair
// spaces (checkpoints every distance instructions, at most w writes per
// segment; 0 = unlimited) and cB B-repair spaces.
func NewSchemeDirect(cE, cB, distance, w int) *SchemeDirect {
	if cE < 1 || cB < 1 {
		panic("core: SchemeDirect needs at least one space per submechanism")
	}
	if distance < 1 {
		panic("core: SchemeDirect distance must be positive")
	}
	return &SchemeDirect{
		CE: cE, CB: cB, Distance: distance, W: w,
		ewin: newWindow(0, cE),
		bwin: newWindow(1, cB),
	}
}

// Name implements Scheme.
func (s *SchemeDirect) Name() string {
	return fmt.Sprintf("direct(cE=%d,cB=%d,dist=%d,W=%d)", s.CE, s.CB, s.Distance, s.W)
}

// Spaces implements Scheme.
func (s *SchemeDirect) Spaces() int { return s.CE + s.CB + 1 }

// RegStackCaps implements Scheme.
func (s *SchemeDirect) RegStackCaps() []int { return []int{s.CE, s.CB} }

// Attach implements Scheme.
func (s *SchemeDirect) Attach(regs *regfile.File, mem diff.MemSystem, eng Engine) {
	s.regs, s.mem, s.eng = regs, mem, eng
}

// Restart implements Scheme.
func (s *SchemeDirect) Restart(pc int, nextSeq uint64) {
	s.ewin.clear()
	s.bwin.clear()
	s.regs.Clear()
	s.eBlocked, s.bBlocked = false, false
	s.lastSeq = nextSeq - 1
	if !s.establishE(nextSeq-1, pc) {
		panic("core: SchemeDirect initial checkpoint blocked")
	}
}

// CanIssue implements Scheme.
func (s *SchemeDirect) CanIssue(in isa.Inst, pc int) (bool, string) {
	if s.eBlocked && !s.tryPendingE() {
		return false, "checkE blocked: oldest E backup space not free"
	}
	if s.bBlocked && !s.tryPendingB() {
		return false, "checkB blocked: all B backup spaces pending verification"
	}
	if s.W > 0 && in.IsMemWrite() && s.ewin.newest().Stores >= s.W {
		if !s.checkE(s.lastSeq, pc) {
			return false, "checkE blocked: write limit W reached, no backup space"
		}
	}
	return true, ""
}

// OnIssue implements Scheme.
func (s *SchemeDirect) OnIssue(op OpInfo, nextPC int) {
	n := s.ewin.newest()
	n.Issued++
	n.Active++
	if op.IsStore {
		n.Stores++
	}
	s.lastSeq = op.Seq
	// nextPC < 0: checkpoint boundary unknown (unresolved jump); defer.
	if n.Issued >= s.Distance && nextPC >= 0 {
		s.checkE(op.Seq, nextPC)
	}
	if op.IsBranch {
		if !s.establishB(op.Seq, nextPC) {
			s.bBlocked = true
			s.blockedBranch = op.Seq
			s.blockedPC = nextPC
		}
	}
}

func (s *SchemeDirect) checkE(bornSeq uint64, pc int) bool {
	if s.establishE(bornSeq, pc) {
		return true
	}
	s.eBlocked = true
	s.ePending.bornSeq = bornSeq
	s.ePending.pc = pc
	return false
}

func (s *SchemeDirect) tryPendingE() bool {
	if !s.eBlocked {
		return true
	}
	if s.establishE(s.ePending.bornSeq, s.ePending.pc) {
		s.eBlocked = false
		return true
	}
	return false
}

func (s *SchemeDirect) tryPendingB() bool {
	if !s.bBlocked {
		return true
	}
	if s.establishB(s.blockedBranch, s.blockedPC) {
		s.bBlocked = false
		return true
	}
	return false
}

func (s *SchemeDirect) establishE(bornSeq uint64, pc int) bool {
	if s.ewin.full() {
		old := s.ewin.oldest()
		if old.Active > 0 || old.Except() {
			return false
		}
		s.ewin.recycle(s.ewin.retireOldest())
		s.regs.DropOldest(s.ewin.stack)
		s.stats.Retired++
		s.release()
	}
	ck := s.ewin.take()
	ck.BornSeq, ck.PC = bornSeq, pc
	s.ewin.push(ck)
	s.regs.Push(s.ewin.stack)
	s.stats.Checkpoints++
	return true
}

func (s *SchemeDirect) establishB(branchSeq uint64, pc int) bool {
	if s.bwin.full() {
		old := s.bwin.oldest()
		if old.Pend {
			return false
		}
		s.bwin.recycle(s.bwin.retireOldest())
		s.regs.DropOldest(s.bwin.stack)
		s.stats.Retired++
		s.release()
	}
	ck := s.bwin.take()
	ck.BornSeq, ck.PC, ck.BranchSeq, ck.Pend = branchSeq, pc, branchSeq, true
	s.bwin.push(ck)
	s.regs.Push(s.bwin.stack)
	s.stats.Checkpoints++
	return true
}

// release tells the memory system which difference entries are dead:
// those older than every possible repair target (the oldest E
// checkpoint and the oldest B checkpoint).
func (s *SchemeDirect) release() {
	boundary := s.lastSeq
	if old := s.ewin.oldest(); old != nil && old.BornSeq < boundary {
		boundary = old.BornSeq
	}
	if old := s.bwin.oldest(); old != nil && old.BornSeq < boundary {
		boundary = old.BornSeq
	}
	if s.bBlocked && s.blockedBranch < boundary {
		boundary = s.blockedBranch
	}
	s.mem.Release(boundary + 1)
}

// Depths implements Scheme.
func (s *SchemeDirect) Depths(seq uint64, out []int) {
	out[0] = s.ewin.depthFor(seq)
	out[1] = s.bwin.depthFor(seq)
}

// OnDeliver implements Scheme.
func (s *SchemeDirect) OnDeliver(seq uint64, exc bool) {
	own := s.ewin.owner(seq)
	if own == nil {
		return
	}
	own.Active--
	if exc {
		own.ExceptSeqs = append(own.ExceptSeqs, seq)
	}
}

// OnBranchResolve implements Scheme: verify or B-repair, with the
// cross-submechanism cleanup a direct combination requires.
func (s *SchemeDirect) OnBranchResolve(seq uint64, mispredicted bool, actualNext int) bool {
	if s.bBlocked && s.blockedBranch == seq {
		s.bBlocked = false
		if mispredicted {
			s.bRepairCommon(seq, actualNext)
		}
		return true
	}
	ck, idx := s.bwin.findBranch(seq)
	if ck == nil {
		return true
	}
	if !mispredicted {
		ck.Pend = false
		return true
	}
	s.regs.RecallAt(s.bwin.stack, s.bwin.depthFromNewest(idx))
	s.bwin.popFrom(idx)
	s.bRepairCommon(ck.BornSeq, actualNext)
	return true
}

// bRepairCommon performs the parts of a B-repair shared by the normal
// and resolved-while-blocked paths: squash, memory repair, E-window
// cleanup, fetch redirect.
func (s *SchemeDirect) bRepairCommon(boundary uint64, actualNext int) {
	sq := s.eng.SquashAfter(boundary)
	s.stats.SquashedOps += len(sq)
	s.mem.Repair(boundary + 1)

	// Discard E checkpoints established on the squashed path. The E
	// checkpoint containing the branch always survives (the branch was
	// in flight, so its segment had not retired), keeping the E window
	// non-empty.
	keep := len(s.ewin.cks)
	for keep > 0 && s.ewin.cks[keep-1].BornSeq > boundary {
		keep--
	}
	minPopped := ^uint64(0)
	if keep < len(s.ewin.cks) {
		minPopped = s.ewin.cks[keep].BornSeq
	}
	if n := s.ewin.popFrom(keep); n > 0 {
		s.regs.PopNewest(s.ewin.stack, n)
	}
	// An E checkpoint established exactly at the mispredicted branch's
	// boundary survives (its logical space is valid), but its resume PC
	// was recorded from the predicted path; the repair just proved the
	// real successor is actualNext.
	if n := s.ewin.newest(); n != nil && n.BornSeq == boundary {
		n.PC = actualNext
	}
	// Retract squashed operations' contributions from the E bookkeeping:
	// unlike the merged schemes, E segments do not end at branch
	// boundaries, so the newest surviving E checkpoint may own squashed
	// operations. Operations counted on a popped checkpoint (issued
	// after the oldest popped boundary) died with it and must not be
	// retracted from a survivor.
	for _, op := range sq {
		if op.Seq > minPopped {
			continue
		}
		if own := s.ewin.owner(op.Seq); own != nil {
			own.Active--
			own.Issued--
			if op.IsStore {
				own.Stores--
			}
		}
	}
	if n := s.ewin.newest(); n != nil {
		n.pruneExcepts(boundary)
	}
	// A blocked E check pending beyond the boundary was squashed; a new
	// check re-triggers at the next issue past the distance threshold.
	if s.eBlocked && s.ePending.bornSeq >= boundary {
		s.eBlocked = false
	}
	s.bBlocked = false
	s.eng.RedirectFetch(actualNext)
	s.stats.BRepairs++
}

// Tick implements Scheme.
func (s *SchemeDirect) Tick() (bool, error) {
	if old := s.ewin.oldest(); old != nil && old.Except() {
		sq := s.eng.SquashAfter(old.BornSeq)
		s.stats.SquashedOps += len(sq)
		s.regs.RecallOldest(s.ewin.stack)
		s.regs.PopNewest(s.bwin.stack, s.regs.Depth(s.bwin.stack))
		s.mem.Repair(old.BornSeq + 1)
		s.ewin.clear()
		s.bwin.clear()
		s.eBlocked, s.bBlocked = false, false
		s.stats.ERepairs++
		s.eng.EnterPreciseMode(old.PC)
		return true, nil
	}
	s.tryPendingE()
	s.tryPendingB()
	return false, nil
}

// Stats implements Scheme.
func (s *SchemeDirect) Stats() Stats { return s.stats }

var _ Scheme = (*SchemeDirect)(nil)

// Drain implements Scheme.
func (s *SchemeDirect) Drain() (bool, error) {
	for _, ck := range s.ewin.cks {
		if ck.Except() {
			old := s.ewin.oldest()
			sq := s.eng.SquashAfter(old.BornSeq)
			s.stats.SquashedOps += len(sq)
			s.regs.RecallOldest(s.ewin.stack)
			s.regs.PopNewest(s.bwin.stack, s.regs.Depth(s.bwin.stack))
			s.mem.Repair(old.BornSeq + 1)
			s.ewin.clear()
			s.bwin.clear()
			s.eBlocked, s.bBlocked = false, false
			s.stats.ERepairs++
			s.eng.EnterPreciseMode(old.PC)
			return true, nil
		}
	}
	return false, nil
}

// Views implements Inspectable.
func (s *SchemeDirect) Views() [][]View {
	return [][]View{viewsOf(&s.ewin, true, false), viewsOf(&s.bwin, false, true)}
}

// RewindTargets implements Rewinder.
func (s *SchemeDirect) RewindTargets(buf []RewindTarget) []RewindTarget {
	buf = appendTargets(buf, &s.ewin, true, false)
	return appendTargets(buf, &s.bwin, false, true)
}

// RewindTo implements Rewinder: the target may live in either window.
func (s *SchemeDirect) RewindTo(bornSeq uint64) (int, bool) {
	pc, ok := rewindRecall(s.regs, &s.ewin, bornSeq)
	if !ok {
		pc, ok = rewindRecall(s.regs, &s.bwin, bornSeq)
	}
	if !ok {
		return 0, false
	}
	dropAllBackups(s.regs)
	return pc, true
}
