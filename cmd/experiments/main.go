// Command experiments regenerates every table and figure of the
// reproduction (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for a captured run with commentary).
//
// Usage:
//
//	experiments           # run everything (parallel, GOMAXPROCS workers)
//	experiments -list     # list experiment IDs
//	experiments -id C7    # run one experiment
//	experiments -j 1      # force sequential execution
//
// Output is deterministic: tables are emitted in ID order and are
// byte-identical at every -j value. Ctrl-C cancels cleanly after the
// in-flight simulations drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/buildinfo"
	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	id := flag.String("id", "", "run a single experiment by ID (e.g. C7)")
	jobs := flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = sequential)")
	version := buildinfo.Flag()
	flag.Parse()
	version()

	experiments.SetParallelism(*jobs)

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *id != "" {
		ts, err := experiments.RunExperiment(ctx, *id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v (use -list)\n", err)
			os.Exit(1)
		}
		for _, t := range ts {
			fmt.Println(t.String())
		}
		return
	}
	if err := experiments.RunAllContext(ctx, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
