package asm

import (
	"testing"

	"repro/internal/refsim"
)

// FuzzAssemble checks the assembler never panics and that everything it
// accepts is a structurally valid program the interpreter can start.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"addi r1, r0, 1\nhalt",
		"x: beq r1, r2, x\nhalt",
		".data 0x1000\nw: .word 1, 2\n.text\nlw r1, w(r0)\nhalt",
		"jal ra, f\nhalt\nf: jr ra",
		".entry main\nmain: trap 1\nhalt",
		"lw r1, 4(r2)\nsw r1, -4(sp)\nhalt",
		"lui r1, 0xffff\nori r1, r1, 0xffff\nhalt",
		"; comment only",
		".data 0x0\n.space 10\n.byte 1\n.word -1",
		"add r1 r2 r3",
		"label without colon",
		".data zzz",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz", src)
		if err != nil {
			return // rejects are fine; panics are not
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("assembler produced invalid program: %v\nsource:\n%s", err, src)
		}
		// Anything accepted must be runnable (bounded).
		if _, err := refsim.Run(p, refsim.Options{MaxSteps: 2000}); err != nil {
			t.Fatalf("accepted program failed to run: %v", err)
		}
		// And disassembly must not panic.
		_ = Disassemble(p)
	})
}
