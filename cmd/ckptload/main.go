// Command ckptload drives a running ckptd with simulation traffic and
// reports throughput and latency percentiles. It doubles as the CI
// smoke test for the serving layer (-smoke): it proves single-flight
// coalescing end to end (N identical concurrent requests, exactly one
// execution, byte-identical results), asserts zero failed jobs and at
// least one cache hit, and exits nonzero otherwise.
//
// Usage:
//
//	ckptd &                                  # start the daemon
//	ckptload                                 # default load, writes BENCH_4.json
//	ckptload -n 200 -c 16 -singleflight 64
//	ckptload -addr http://127.0.0.1:8909 -smoke -o ""
//
// -addr takes a comma-separated target list; requests round-robin
// across the targets and the report carries per-target rps/latency
// alongside the aggregate (point it at a coordinator plus its workers,
// or at several independent daemons).
//
// -diff-addr enables compare mode: a small deterministic mix (a sweep,
// a campaign, sims) is submitted to both -addr and -diff-addr and the
// result outputs are byte-compared. The cluster smoke test uses it to
// prove a coordinator hands out exactly the bytes a single node
// computes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/stats"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8909", "ckptd base URL(s), comma-separated; requests round-robin across them")
	diffAddr := flag.String("diff-addr", "", "compare mode: submit a deterministic mix to -addr and here, byte-compare outputs")
	n := flag.Int("n", 128, "throughput-phase request count")
	c := flag.Int("c", 8, "concurrent clients")
	sf := flag.Int("singleflight", 64, "identical concurrent requests in the single-flight phase (0 = skip)")
	seed := flag.Int64("seed", 1, "base seed for the distinct-spec mix")
	out := flag.String("o", "BENCH_4.json", "write results here (empty = stdout only)")
	smoke := flag.Bool("smoke", false, "small deterministic run with hard assertions (CI)")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	version := buildinfo.Flag()
	flag.Parse()
	version()

	if *smoke {
		*n, *c, *sf = 24, 8, 16
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var targets []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimRight(strings.TrimSpace(a), "/"); a != "" {
			targets = append(targets, a)
		}
	}
	if len(targets) == 0 {
		log.Fatalf("ckptload: no targets in -addr %q", *addr)
	}
	clients := make([]*client.Client, len(targets))
	for i, a := range targets {
		clients[i] = client.New(a)
		if !clients[i].Healthy(ctx) {
			log.Fatalf("ckptload: no healthy ckptd at %s", a)
		}
	}
	cl := clients[0]

	if *diffAddr != "" {
		os.Exit(diffMode(ctx, cl, targets[0], strings.TrimRight(*diffAddr, "/"), *seed))
	}

	report := map[string]any{
		"bench":   "ckptload",
		"version": buildinfo.Version(),
		"config": map[string]any{"n": *n, "c": *c, "singleflight": *sf, "seed": *seed, "smoke": *smoke,
			"targets": targets},
	}
	failures := 0

	// Phase 1: single-flight. All clients submit the same spec at once;
	// the daemon must run it exactly once and hand everyone the same
	// bytes. Campaign specs are the heaviest single execution, which
	// makes the coalescing window easy to hit; smoke mode uses a quick
	// sim so CI stays fast.
	if *sf > 0 {
		spec := service.Spec{Kind: "campaign", Workload: "dotprod",
			Campaign: &service.CampaignSpec{Seed: 4242, Stride: 4}}
		if *smoke {
			spec = service.Spec{Kind: "sim", Workload: "dotprod"}
		}
		before := mustMetrics(ctx, cl)
		start := time.Now()
		bodies := make([]string, *sf)
		errs := make([]error, *sf)
		var wg sync.WaitGroup
		for i := 0; i < *sf; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sr, err := cl.Run(ctx, spec)
				if err != nil {
					errs[i] = err
					return
				}
				if sr.Job.State != service.StateDone || sr.Result == nil {
					errs[i] = fmt.Errorf("job %s: state=%s", sr.Job.ID, sr.Job.State)
					return
				}
				b, _ := json.Marshal(sr.Result)
				bodies[i] = string(b)
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		after := mustMetrics(ctx, cl)

		identical := true
		for i := 0; i < *sf; i++ {
			if errs[i] != nil {
				failures++
				log.Printf("ckptload: single-flight request %d: %v", i, errs[i])
			} else if bodies[i] != bodies[0] {
				identical = false
			}
		}
		execs := counter(after, "executions", "started") - counter(before, "executions", "started")
		report["single_flight"] = map[string]any{
			"requests":       *sf,
			"executions":     execs,
			"byte_identical": identical,
			"elapsed_ms":     elapsed.Milliseconds(),
		}
		if execs != 1 {
			failures++
			log.Printf("ckptload: single-flight ran %d executions, want 1", execs)
		}
		if !identical {
			failures++
			log.Printf("ckptload: single-flight results not byte-identical")
		}
	}

	// Phase 2: throughput over a mix of distinct specs, then a full
	// second pass over the same mix — the repeats must come back as
	// cache hits. 429s are handled the way a well-behaved client
	// would: honor Retry-After and resubmit.
	mix := buildMix(*n, *seed)
	lat := &stats.Dist{}
	perTarget := make([]*stats.Dist, len(targets))
	perCount := make([]int64, len(targets))
	for i := range perTarget {
		perTarget[i] = &stats.Dist{}
	}
	var latMu sync.Mutex
	var failedJobs int64
	start := time.Now()
	for pass := 0; pass < 2; pass++ {
		sem := make(chan struct{}, *c)
		var wg sync.WaitGroup
		for mi, spec := range mix {
			sem <- struct{}{}
			wg.Add(1)
			// Round-robin submissions across the targets; both passes
			// send a given spec to the same target so the second pass
			// still lands on that target's warm cache.
			ti := mi % len(clients)
			go func(spec service.Spec, ti int) {
				defer wg.Done()
				defer func() { <-sem }()
				t0 := time.Now()
				sr, err := runWithRetry(ctx, clients[ti], spec)
				d := time.Since(t0)
				latMu.Lock()
				lat.Add(d.Microseconds())
				perTarget[ti].Add(d.Microseconds())
				perCount[ti]++
				if err != nil || sr.Job.State != service.StateDone {
					failedJobs++
					if err != nil {
						log.Printf("ckptload: job failed: %v", err)
					} else {
						log.Printf("ckptload: job %s: state=%s error=%q", sr.Job.ID, sr.Job.State, sr.Job.Error)
					}
				}
				latMu.Unlock()
			}(spec, ti)
		}
		wg.Wait()
	}
	elapsed := time.Since(start)

	targetReports := make([]map[string]any, len(targets))
	for i, a := range targets {
		targetReports[i] = map[string]any{
			"addr":     a,
			"requests": perCount[i],
			"rps":      float64(perCount[i]) / elapsed.Seconds(),
			"latency_us": map[string]any{
				"p50": perTarget[i].Percentile(50),
				"p99": perTarget[i].Percentile(99),
			},
		}
	}

	final := mustMetrics(ctx, cl)
	hits := counter(final, "cache", "hits")
	rps := float64(2*len(mix)) / elapsed.Seconds()
	report["throughput"] = map[string]any{
		"requests":   2 * len(mix),
		"failed":     failedJobs,
		"elapsed_ms": elapsed.Milliseconds(),
		"rps":        rps,
		"latency_us": map[string]any{
			"p50":  lat.Percentile(50),
			"p90":  lat.Percentile(90),
			"p99":  lat.Percentile(99),
			"max":  lat.Max(),
			"mean": lat.Mean(),
		},
		"targets": targetReports,
	}
	report["daemon"] = map[string]any{
		"cache_hits":        hits,
		"cache_misses":      counter(final, "cache", "misses"),
		"coalesced":         counter(final, "cache", "coalesced"),
		"rejected":          counter(final, "jobs", "rejected"),
		"sim_insts":         int64(num(final, "sim_insts")),
		"sim_insts_per_sec": num(final, "sim_insts_per_sec"),
	}

	if failedJobs != 0 {
		failures++
		log.Printf("ckptload: %d jobs failed, want 0", failedJobs)
	}
	if hits < 1 {
		failures++
		log.Printf("ckptload: %d cache hits, want >= 1", hits)
	}
	report["failures"] = failures

	blob, _ := json.MarshalIndent(report, "", "  ")
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			log.Fatalf("ckptload: %v", err)
		}
	}
	if failures != 0 {
		os.Exit(1)
	}
}

// diffMode submits one deterministic mix to two daemons and
// byte-compares the rendered outputs. The mix is chosen to cross the
// cluster's sub-job machinery: a sweep (fans out as batch sub-jobs; C6
// includes deliberately-failing lanes, so error round-tripping is on
// the path), a campaign (fans out as plan shards and merges), and
// plain sims (whole-job routing). Returns the process exit code.
func diffMode(ctx context.Context, a *client.Client, aAddr, bAddr string, seed int64) int {
	b := client.New(bAddr)
	if !b.Healthy(ctx) {
		log.Printf("ckptload: no healthy ckptd at %s", bAddr)
		return 1
	}
	mix := []service.Spec{
		{Kind: "sweep", Experiment: "C6"},
		{Kind: "campaign", Workload: "fib",
			Campaign: &service.CampaignSpec{Seed: seed, Stride: 8, Models: []string{"fu-detected"}}},
		{Kind: "sim", Workload: "dotprod"},
		{Kind: "sim", Workload: "crc", Machine: service.MachineSpec{Scheme: "loose"}},
	}
	bad := 0
	for _, spec := range mix {
		label, _ := json.Marshal(spec)
		ra, err := runWithRetry(ctx, a, spec)
		if err != nil || ra.Result == nil {
			log.Printf("ckptload: diff %s: %s failed: %v (%+v)", aAddr, label, err, ra)
			bad++
			continue
		}
		rb, err := runWithRetry(ctx, b, spec)
		if err != nil || rb.Result == nil {
			log.Printf("ckptload: diff %s: %s failed: %v (%+v)", bAddr, label, err, rb)
			bad++
			continue
		}
		if ra.Result.Key != rb.Result.Key {
			log.Printf("ckptload: diff %s: keys disagree: %s vs %s", label, ra.Result.Key, rb.Result.Key)
			bad++
			continue
		}
		if ra.Result.Output != rb.Result.Output {
			log.Printf("ckptload: diff %s: outputs differ\n--- %s ---\n%s\n--- %s ---\n%s",
				label, aAddr, ra.Result.Output, bAddr, rb.Result.Output)
			bad++
			continue
		}
		fmt.Printf("ckptload: diff ok %.12s (%d output bytes) %s\n", ra.Result.Key, len(ra.Result.Output), label)
	}
	if bad != 0 {
		log.Printf("ckptload: diff: %d/%d specs mismatched between %s and %s", bad, len(mix), aAddr, bAddr)
		return 1
	}
	fmt.Printf("ckptload: diff: %d/%d specs byte-identical between %s and %s\n", len(mix), len(mix), aAddr, bAddr)
	return 0
}

// buildMix produces n distinct-but-cheap specs: kernel workloads
// crossed with schemes, with the seed folded into campaign variants so
// separate ckptload runs against a shared daemon don't all hit cache.
func buildMix(n int, seed int64) []service.Spec {
	kernels := []string{"fib", "memcpy", "dotprod", "listsum", "bubble", "crc"}
	schemes := []service.MachineSpec{
		{},
		{Scheme: "b"},
		{Scheme: "tight", C: 8},
		{Scheme: "loose"},
		{Scheme: "direct"},
	}
	var mix []service.Spec
	for i := 0; len(mix) < n; i++ {
		k := kernels[i%len(kernels)]
		m := schemes[(i/len(kernels))%len(schemes)]
		spec := service.Spec{Kind: "sim", Workload: k, Machine: m}
		if i%len(schemes) == 0 && i%2 == 1 {
			spec = service.Spec{Kind: "campaign", Workload: k,
				Campaign: &service.CampaignSpec{Seed: seed + int64(i), Stride: 8,
					Models: []string{"fu-detected"}}}
		}
		// Fold the seed into sim specs via the buffer capacity so the
		// mix differs across -seed values without changing the work.
		if spec.Kind == "sim" {
			spec.Machine.BufferCap = int(seed%4)*64 + (i/(len(kernels)*len(schemes)))*256
		}
		mix = append(mix, spec)
	}
	return mix
}

// runWithRetry resubmits on backpressure, honoring Retry-After.
func runWithRetry(ctx context.Context, cl *client.Client, spec service.Spec) (*client.SubmitResponse, error) {
	for {
		sr, err := cl.Run(ctx, spec)
		var busy *client.ErrTooBusy
		if errors.As(err, &busy) {
			select {
			case <-time.After(busy.RetryAfter):
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return sr, err
	}
}

func mustMetrics(ctx context.Context, cl *client.Client) map[string]any {
	m, err := cl.Metrics(ctx)
	if err != nil {
		log.Fatalf("ckptload: metrics: %v", err)
	}
	return m
}

func counter(m map[string]any, group, name string) int64 {
	g, _ := m[group].(map[string]any)
	v, _ := g[name].(float64)
	return int64(v)
}

func num(m map[string]any, name string) float64 {
	v, _ := m[name].(float64)
	return v
}
