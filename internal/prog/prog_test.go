package prog

import (
	"testing"

	"repro/internal/isa"
)

func valid() *Program {
	return &Program{
		Name: "t",
		Code: []isa.Inst{
			{Op: isa.OpADDI, Rd: 1, Imm: 3},
			{Op: isa.OpBNE, Rs1: 1, Imm: -2},
			{Op: isa.OpJ, Imm: 0},
			{Op: isa.OpHALT},
		},
		Data: []Segment{{Addr: 0x1000, Data: []byte{1, 2, 3, 4}}},
	}
}

func TestValidateOK(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(p *Program){
		"empty code":       func(p *Program) { p.Code = nil },
		"bad entry":        func(p *Program) { p.Entry = 99 },
		"invalid opcode":   func(p *Program) { p.Code[0].Op = isa.OpInvalid },
		"branch oob":       func(p *Program) { p.Code[1].Imm = 100 },
		"branch negative":  func(p *Program) { p.Code[1].Imm = -10 },
		"jump oob":         func(p *Program) { p.Code[2].Imm = 77 },
		"register invalid": func(p *Program) { p.Code[0].Rd = 40 },
	}
	for name, mutate := range cases {
		p := valid()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestNewMemory(t *testing.T) {
	m := valid().NewMemory()
	v, code := m.Read32(0x1000)
	if code != isa.ExcCodeNone || v != 0x04030201 {
		t.Errorf("segment load: %#x %v", v, code)
	}
	if m.Mapped(0x9000) {
		t.Error("unrelated pages mapped")
	}
}

func TestBranchTarget(t *testing.T) {
	if got := BranchTarget(isa.Inst{Op: isa.OpBEQ, Imm: 3}, 10); got != 14 {
		t.Errorf("branch target %d", got)
	}
	if got := BranchTarget(isa.Inst{Op: isa.OpJ, Imm: 5}, 10); got != 5 {
		t.Errorf("jump target %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("BranchTarget on non-control must panic")
		}
	}()
	BranchTarget(isa.Inst{Op: isa.OpADD}, 0)
}

func TestStaticStats(t *testing.T) {
	p := &Program{
		Name: "s",
		Code: []isa.Inst{
			{Op: isa.OpADDI, Rd: 1},
			{Op: isa.OpBNE, Imm: -1},
			{Op: isa.OpLW, Rd: 2},
			{Op: isa.OpSW},
			{Op: isa.OpADDV, Rd: 3},
			{Op: isa.OpDIV, Rd: 4},
			{Op: isa.OpJ, Imm: 0},
			{Op: isa.OpBEQ, Imm: -1},
		},
	}
	st := p.StaticStats()
	if st.Insts != 8 || st.Branches != 2 || st.Jumps != 1 || st.Loads != 1 || st.Stores != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.MayTrap != 1 || st.MayFault != 3 { // ADDV; DIV+LW+SW
		t.Errorf("exception stats: %+v", st)
	}
	if st.BranchEvery != 4 {
		t.Errorf("b = %v", st.BranchEvery)
	}
}

func TestValidateVectorGroups(t *testing.T) {
	ok := &Program{Name: "v", Code: []isa.Inst{
		{Op: isa.OpVLW, Rd: 28, Rs1: 1, Imm: 0x1000},
		{Op: isa.OpHALT},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("rd=28 (28..31) should fit: %v", err)
	}
	bad := &Program{Name: "v", Code: []isa.Inst{
		{Op: isa.OpVLW, Rd: 29, Rs1: 1, Imm: 0x1000},
		{Op: isa.OpHALT},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("rd=29 overflows the register file")
	}
	badS := &Program{Name: "v", Code: []isa.Inst{
		{Op: isa.OpVSW, Rs2: 30, Rs1: 1, Imm: 0x1000},
		{Op: isa.OpHALT},
	}}
	if err := badS.Validate(); err == nil {
		t.Error("vsw rs2=30 overflows")
	}
}
