// Serving: the simulation-as-a-service layer in one file. Boots a
// ckptd server in-process on a free port, then exercises the three
// things the daemon exists for: content-addressed caching (the same
// job spelled two different ways is one cache entry), single-flight
// coalescing (concurrent identical submissions run once), and graceful
// drain. Everything here works identically against a long-lived
// daemon started with `make serve`.
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"

	"repro/internal/service"
	"repro/internal/service/client"
)

func main() {
	// A real deployment runs `ckptd`; here the server lives in-process
	// so the example is self-contained.
	srv := service.MustNew(service.Config{Workers: 2, QueueCap: 16})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	cl := client.New("http://" + ln.Addr().String())
	ctx := context.Background()

	// 1. The cache key is a hash of the *canonical* spec. These two
	// submissions spell the same job — defaults omitted vs. spelled
	// out — so the second is answered from cache without simulating.
	short := service.Spec{Kind: "sim", Workload: "fib"}
	spec := true
	long := service.Spec{Kind: "sim", Workload: "fib", Machine: service.MachineSpec{
		Scheme: "tight", C: 4, Mem: "3b", Predictor: "bimodal", Speculate: &spec,
	}}
	r1, err := cl.Run(ctx, short)
	if err != nil {
		log.Fatal(err)
	}
	r2, err := cl.Run(ctx, long)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first submission:  key=%.12s… cache_hit=%v\n", r1.Job.Key, r1.Job.CacheHit)
	fmt.Printf("same job, spelled out: key=%.12s… cache_hit=%v\n", r2.Job.Key, r2.Job.CacheHit)
	fmt.Printf("result: %s\n\n", r1.Result.Output)

	// 2. Single flight: 16 concurrent submissions of a job nobody has
	// run yet. One execution happens; everyone shares its bytes.
	camp := service.Spec{Kind: "campaign", Workload: "dotprod",
		Campaign: &service.CampaignSpec{Models: []string{"fu-detected"}, Stride: 4}}
	before, err := cl.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cl.Run(ctx, camp); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()
	m, err := cl.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	started := func(mm map[string]any) float64 {
		return mm["executions"].(map[string]any)["started"].(float64)
	}
	ca := m["cache"].(map[string]any)
	fmt.Printf("16 concurrent identical campaigns -> %v execution(s) "+
		"(%v coalesced in flight, %v served from cache)\n\n",
		started(m)-started(before), ca["coalesced"], ca["hits"])

	// 3. Graceful drain: admitted jobs finish, then the workers exit.
	if err := srv.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained clean; daemon can exit 0")
}
