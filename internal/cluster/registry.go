package cluster

import (
	"sort"
	"sync"
	"time"
)

// WorkerInfo is one registered worker as the coordinator sees it:
// identity from its registration heartbeats, capacity from the last
// heartbeat or /healthz probe.
type WorkerInfo struct {
	ID         string    `json:"id"`
	Addr       string    `json:"addr"` // base URL, e.g. http://127.0.0.1:9001
	Version    string    `json:"version"`
	QueueDepth int64     `json:"queue_depth"`
	Running    int64     `json:"running"`
	LastSeen   time.Time `json:"last_seen"`
}

// Registry tracks live workers. Workers announce themselves with
// heartbeats (Upsert); the coordinator's prober and dispatcher report
// failures (MarkDead), and entries silent past the TTL are pruned.
// The registry drives the ring: membership changes flow through the
// onAdd/onRemove callbacks so routing state can never disagree with
// liveness state.
type Registry struct {
	ttl      time.Duration
	onAdd    func(addr string)
	onRemove func(addr string)

	mu      sync.Mutex
	workers map[string]*WorkerInfo // by addr
}

// NewRegistry builds a registry. ttl <= 0 selects 15s — three missed
// 5-second heartbeats. onAdd/onRemove may be nil.
func NewRegistry(ttl time.Duration, onAdd, onRemove func(addr string)) *Registry {
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	return &Registry{
		ttl:      ttl,
		onAdd:    onAdd,
		onRemove: onRemove,
		workers:  make(map[string]*WorkerInfo),
	}
}

// Upsert records a heartbeat, returning whether the worker is new (or
// returning from the dead).
func (g *Registry) Upsert(info WorkerInfo) bool {
	info.LastSeen = time.Now()
	g.mu.Lock()
	_, existed := g.workers[info.Addr]
	g.workers[info.Addr] = &info
	g.mu.Unlock()
	if !existed && g.onAdd != nil {
		g.onAdd(info.Addr)
	}
	return !existed
}

// UpdateLoad refreshes a worker's capacity numbers from a probe
// without counting as a heartbeat (the worker's own heartbeats carry
// liveness; a probe only observes).
func (g *Registry) UpdateLoad(addr string, depth, running int64) {
	g.mu.Lock()
	if w, ok := g.workers[addr]; ok {
		w.QueueDepth, w.Running = depth, running
	}
	g.mu.Unlock()
}

// MarkDead removes a worker immediately (dispatch saw its death
// first-hand: connection refused, 5xx, or a failed probe). Returns
// whether it was present.
func (g *Registry) MarkDead(addr string) bool {
	g.mu.Lock()
	_, ok := g.workers[addr]
	delete(g.workers, addr)
	g.mu.Unlock()
	if ok && g.onRemove != nil {
		g.onRemove(addr)
	}
	return ok
}

// Prune removes workers whose last heartbeat is older than the TTL,
// returning their addresses.
func (g *Registry) Prune() []string {
	cutoff := time.Now().Add(-g.ttl)
	var dead []string
	g.mu.Lock()
	for addr, w := range g.workers {
		if w.LastSeen.Before(cutoff) {
			dead = append(dead, addr)
			delete(g.workers, addr)
		}
	}
	g.mu.Unlock()
	sort.Strings(dead)
	if g.onRemove != nil {
		for _, addr := range dead {
			g.onRemove(addr)
		}
	}
	return dead
}

// Live snapshots the registered workers, sorted by address.
func (g *Registry) Live() []WorkerInfo {
	g.mu.Lock()
	out := make([]WorkerInfo, 0, len(g.workers))
	for _, w := range g.workers {
		out = append(out, *w)
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Count returns the number of live workers.
func (g *Registry) Count() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.workers)
}
