#!/bin/sh
# Debug-session smoke test: boot ckptd on a free port and drive scripted
# time-travel sessions through ckptdbg:
#
#   1. create -> step -> run to a midpoint -> list checkpoints -> run to
#      completion -> read the result from memory;
#   2. replay the same deterministic prefix, rewind to a checkpoint that
#      was live at the midpoint, audit against the golden trace, and run
#      to completion again;
#   3. leave a streaming run in flight, SIGTERM the daemon, and require
#      a clean drain that hands the stream a terminal "closed" event.
#
# Used by `make session-smoke` (and therefore `make ci`).
set -eu

workdir=$(mktemp -d)
addrfile="$workdir/ckptd.addr"
logfile="$workdir/ckptd.log"
status=1

cleanup() {
    if [ -n "${ckptd_pid:-}" ] && kill -0 "$ckptd_pid" 2>/dev/null; then
        kill -TERM "$ckptd_pid" 2>/dev/null || true
        wait "$ckptd_pid" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ]; then
        echo "--- ckptd log ---" >&2
        cat "$logfile" >&2 || true
        echo "--- ckptdbg stderr ---" >&2
        cat "$workdir/dbg.err" >&2 || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/ckptd" ./cmd/ckptd
go build -o "$workdir/ckptdbg" ./cmd/ckptdbg

"$workdir/ckptd" -addr 127.0.0.1:0 -addrfile "$addrfile" -workers 1 \
    >"$logfile" 2>&1 &
ckptd_pid=$!

i=0
while [ ! -s "$addrfile" ]; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "session-smoke: ckptd never wrote $addrfile" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$addrfile")
echo "session-smoke: ckptd on $addr"

# Phase 1: a full forward debug session on the deterministic bubble
# kernel, pausing at cycle 400 to capture the live checkpoint set.
"$workdir/ckptdbg" -addr "http://$addr" -e >"$workdir/dbg.out" 2>"$workdir/dbg.err" <<'EOF'
create bubble scheme=tight c=4
step 40
run 400 64
ckpts
run
div
status
mem 0x1000 4
close
EOF

grep -q '"rewindable":true' "$workdir/dbg.out" || {
    echo "session-smoke: no rewindable checkpoint at the midpoint" >&2
    exit 1
}
grep -q '"type":"done"' "$workdir/dbg.out" || {
    echo "session-smoke: forward session never reached completion" >&2
    exit 1
}
grep -q '"comparable":true' "$workdir/dbg.out" || {
    echo "session-smoke: completion-state audit was not comparable" >&2
    exit 1
}
if grep -q '"diverged":true' "$workdir/dbg.out"; then
    echo "session-smoke: forward session diverged from the golden trace" >&2
    exit 1
fi

# Phase 2: replay the same deterministic prefix in a fresh session, so
# the checkpoint that was live at cycle 400 is live again — then rewind
# to it, audit the restored boundary, and re-run to completion.
seq=$(sed -n 's/.*"seq":\([0-9]*\).*"rewindable":true.*/\1/p' "$workdir/dbg.out" | head -1)
if [ -z "$seq" ]; then
    echo "session-smoke: could not extract a rewindable checkpoint seq" >&2
    exit 1
fi
echo "session-smoke: rewinding to checkpoint seq=$seq"
"$workdir/ckptdbg" -addr "http://$addr" -e >"$workdir/dbg2.out" 2>>"$workdir/dbg.err" <<EOF
create bubble scheme=tight c=4
step 40
run 400 64
rewind $seq
div
run
status
close
EOF

grep -q '"rewound"' "$workdir/dbg2.out" || {
    echo "session-smoke: rewind did not round-trip" >&2
    exit 1
}
grep -q '"comparable":true' "$workdir/dbg2.out" || {
    echo "session-smoke: post-rewind audit was not comparable" >&2
    exit 1
}
if grep -q '"diverged":true' "$workdir/dbg2.out"; then
    echo "session-smoke: rewound session diverged from the golden trace" >&2
    exit 1
fi
grep -q '"rewinds":1' "$workdir/dbg2.out" || {
    echo "session-smoke: session view did not count the rewind" >&2
    exit 1
}
grep -q '"type":"done"' "$workdir/dbg2.out" || {
    echo "session-smoke: rewound session never completed" >&2
    exit 1
}

# Phase 3: graceful drain under a live stream. The spin kernel runs
# ~1.5M reference steps (4 per iteration), so the streaming run is
# still in flight when the daemon is told to shut down.
cat >"$workdir/spin.s" <<'EOF'
    addi r1, r0, 6000
    slli r1, r1, 6         ; 384000 iterations
loop:
    beq  r1, r0, done
    addi r2, r2, 1
    addi r1, r1, -1
    j    loop
done:
    sw   r2, out(r0)
    halt
.data 0x1000
out: .word 0
EOF
{
    echo "loadasm $workdir/spin.s"
    echo "run 2000000000 8"
} | "$workdir/ckptdbg" -addr "http://$addr" >"$workdir/dbg3.out" 2>>"$workdir/dbg.err" &
dbg_pid=$!

i=0
while ! grep -q '"type":"cycle"' "$workdir/dbg3.out" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 250 ]; then
        echo "session-smoke: streaming run never started" >&2
        exit 1
    fi
    sleep 0.02
done
kill -TERM "$ckptd_pid"
if ! wait "$ckptd_pid"; then
    echo "session-smoke: ckptd did not exit cleanly on SIGTERM" >&2
    exit 1
fi
ckptd_pid=""
wait "$dbg_pid" || true

grep -q "drained clean" "$logfile" || {
    echo "session-smoke: ckptd log missing clean-drain marker" >&2
    exit 1
}
grep -q '"type":"closed"' "$workdir/dbg3.out" || {
    echo "session-smoke: streaming client never saw the drain close event" >&2
    exit 1
}
grep -q '"reason":"daemon draining"' "$workdir/dbg3.out" || {
    echo "session-smoke: drain close event missing its reason" >&2
    exit 1
}

status=0
echo "session-smoke: ok (rewind round-trip verified, no divergence, drain closed the live stream)"
