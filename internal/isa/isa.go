// Package isa defines the instruction set architecture executed by the
// simulators in this repository.
//
// The ISA is a small 32-bit RISC-like load/store architecture chosen to
// exercise every repair-relevant behaviour in Hwu & Patt's checkpoint
// repair paper (ISCA 1987):
//
//   - almost every instruction can raise an exception (E-repair source):
//     trapping arithmetic (overflow), divide faults, page faults on
//     unmapped memory, misaligned accesses, and an explicit TRAP
//     instruction;
//   - conditional branches (B-repair source) are plain compare-and-branch
//     instructions so branch density is directly controlled by workloads;
//   - loads and stores operate on 4-byte longwords or single bytes, which
//     exercises the byte masks carried by the paper's difference buffer
//     entries.
//
// The architectural state is 32 general-purpose registers (R0 hardwired
// to zero), a program counter, and a byte-addressed memory of 32-bit
// longwords. There are no delay slots: the precise repair point for a
// mispredicted conditional branch is the instruction boundary just to the
// right of the branch, as in the non-delayed semantics of the paper.
package isa

import "fmt"

// NumRegs is the number of architectural general-purpose registers.
// Register 0 reads as zero and ignores writes.
const NumRegs = 32

// WordSize is the size in bytes of an architectural longword.
const WordSize = 4

// Reg identifies an architectural register.
type Reg uint8

// String returns the conventional assembly name of the register.
func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Op enumerates the instruction opcodes.
type Op uint8

// Opcode space. The groups matter: simulators dispatch on Class(), and
// exception behaviour is declared per opcode in the opInfo table.
const (
	// OpInvalid is the zero Op; decoding it faults.
	OpInvalid Op = iota

	// Register-register ALU operations.
	OpADD  // rd = rs1 + rs2 (wrapping)
	OpADDV // rd = rs1 + rs2, overflow trap
	OpSUB  // rd = rs1 - rs2 (wrapping)
	OpSUBV // rd = rs1 - rs2, overflow trap
	OpMUL  // rd = low 32 bits of rs1 * rs2
	OpMULV // rd = rs1 * rs2, overflow trap
	OpDIV  // rd = rs1 / rs2 (signed), divide-by-zero fault
	OpREM  // rd = rs1 % rs2 (signed), divide-by-zero fault
	OpAND  // rd = rs1 & rs2
	OpOR   // rd = rs1 | rs2
	OpXOR  // rd = rs1 ^ rs2
	OpNOR  // rd = ^(rs1 | rs2)
	OpSLL  // rd = rs1 << (rs2 & 31)
	OpSRL  // rd = rs1 >> (rs2 & 31) logical
	OpSRA  // rd = rs1 >> (rs2 & 31) arithmetic
	OpSLT  // rd = 1 if rs1 < rs2 (signed) else 0
	OpSLTU // rd = 1 if rs1 < rs2 (unsigned) else 0

	// Register-immediate ALU operations. Imm is a full 32-bit value
	// (assemblers conventionally write 16-bit literals); the shifts use
	// the low 5 bits.
	OpADDI  // rd = rs1 + imm
	OpADDIV // rd = rs1 + imm, overflow trap
	OpANDI  // rd = rs1 & imm
	OpORI   // rd = rs1 | imm
	OpXORI  // rd = rs1 ^ imm
	OpSLTI  // rd = 1 if rs1 < imm (signed) else 0
	OpSLLI  // rd = rs1 << shamt
	OpSRLI  // rd = rs1 >> shamt logical
	OpSRAI  // rd = rs1 >> shamt arithmetic
	OpLUI   // rd = imm << 16

	// Memory operations. Effective address is rs1 + imm.
	OpLW  // rd = mem32[ea]; ea must be 4-aligned
	OpLB  // rd = sign-extended mem8[ea]
	OpLBU // rd = zero-extended mem8[ea]
	OpSW  // mem32[ea] = rs2; ea must be 4-aligned
	OpSB  // mem8[ea] = low byte of rs2

	// Conditional branches. Target is pc + 1 + imm (instruction-indexed).
	OpBEQ  // branch if rs1 == rs2
	OpBNE  // branch if rs1 != rs2
	OpBLT  // branch if rs1 < rs2 (signed)
	OpBGE  // branch if rs1 >= rs2 (signed)
	OpBLTU // branch if rs1 < rs2 (unsigned)
	OpBGEU // branch if rs1 >= rs2 (unsigned)

	// Unconditional control transfers.
	OpJ    // pc = imm (absolute instruction index)
	OpJAL  // rd = pc + 1; pc = imm
	OpJR   // pc = rs1 (instruction index)
	OpJALR // rd = pc + 1; pc = rs1

	// System instructions.
	OpTRAP // software trap with code imm
	OpHALT // stop the machine
	OpNOP  // no operation

	// Vector instructions (the §6 extension direction: "uniprocessors
	// with vector, string, and commercial instructions"). Each contains
	// VectorLen operations — the paper's issueE performs incr(k) for an
	// instruction of k operations. Element semantics are sequential:
	// element i completes before element i+1 starts, and the first
	// excepting element stops the instruction with the exception
	// reported at the instruction's PC.
	OpVLW  // rd+i  = mem32[rs1+imm+4i], i in [0,VectorLen)
	OpVSW  // mem32[rs1+imm+4i] = rs2+i
	OpVADD // rd+i  = (rs1+i) + (rs2+i)

	// rv32 frontend extensions (internal/rv32). These exist so the
	// rv32i translator has a clean 1:1 lowering where the base ISA
	// differs from RISC-V: full 32-bit immediates (LI covers LUI and
	// AUIPC with the constant precomputed at translation time),
	// unsigned immediate compares, halfword memory accesses, and
	// byte-addressed indirect jumps. Register-resident code pointers in
	// translated programs are rv32 byte addresses; the *A control
	// transfers convert at the boundary (link = 4*(pc+1), target =
	// byte address / 4) and fault on word-misaligned targets.
	OpLI    // rd = imm (full 32-bit immediate)
	OpSLTIU // rd = 1 if rs1 < imm (unsigned) else 0
	OpLH    // rd = sign-extended mem16[ea]; ea must be 2-aligned
	OpLHU   // rd = zero-extended mem16[ea]; ea must be 2-aligned
	OpSH    // mem16[ea] = low half of rs2; ea must be 2-aligned
	OpJALA  // rd = 4*(pc+1); pc = imm (instruction index)
	OpJRA   // pc = (rs1+imm)/4; misaligned-target fault
	OpJALRA // rd = 4*(pc+1); pc = (rs1+imm)/4; misaligned-target fault

	numOps
)

// VectorLen is the fixed element count of vector instructions.
const VectorLen = 4

// Class partitions opcodes by the pipeline resources they use.
type Class uint8

// Instruction classes.
const (
	ClassALU    Class = iota // integer ALU, including LUI and NOP
	ClassMulDiv              // long-latency multiply/divide
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // unconditional control transfer
	ClassSystem // TRAP, HALT
)

// String returns a readable class name.
func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassMulDiv:
		return "muldiv"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassJump:
		return "jump"
	case ClassSystem:
		return "system"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Format describes how an instruction's operand fields are used, which
// drives encoding, decoding, assembly syntax and dependence analysis.
type Format uint8

// Instruction formats.
const (
	FormatRRR Format = iota // op rd, rs1, rs2
	FormatRRI               // op rd, rs1, imm
	FormatRI                // op rd, imm (LUI)
	FormatMem               // op rd, imm(rs1) loads / op rs2, imm(rs1) stores
	FormatBr                // op rs1, rs2, target
	FormatJ                 // op target / op rd, target (JAL)
	FormatJR                // op rs1 / op rd, rs1 (JALR)
	FormatSys               // op imm (TRAP) or bare op (HALT, NOP)
	FormatJRI               // op imm(rs1) / op rd, imm(rs1) (JRA, JALRA)
)

type opInfo struct {
	name     string
	class    Class
	format   Format
	readsRs1 bool
	readsRs2 bool
	writesRd bool
	canTrap  bool // may raise a trap (repair point right of instruction)
	canFault bool // may raise a fault (repair point left of instruction)
}

var opTable = [numOps]opInfo{
	OpInvalid: {name: "invalid", class: ClassSystem, format: FormatSys, canFault: true},

	OpADD:  {name: "add", class: ClassALU, format: FormatRRR, readsRs1: true, readsRs2: true, writesRd: true},
	OpADDV: {name: "addv", class: ClassALU, format: FormatRRR, readsRs1: true, readsRs2: true, writesRd: true, canTrap: true},
	OpSUB:  {name: "sub", class: ClassALU, format: FormatRRR, readsRs1: true, readsRs2: true, writesRd: true},
	OpSUBV: {name: "subv", class: ClassALU, format: FormatRRR, readsRs1: true, readsRs2: true, writesRd: true, canTrap: true},
	OpMUL:  {name: "mul", class: ClassMulDiv, format: FormatRRR, readsRs1: true, readsRs2: true, writesRd: true},
	OpMULV: {name: "mulv", class: ClassMulDiv, format: FormatRRR, readsRs1: true, readsRs2: true, writesRd: true, canTrap: true},
	OpDIV:  {name: "div", class: ClassMulDiv, format: FormatRRR, readsRs1: true, readsRs2: true, writesRd: true, canFault: true},
	OpREM:  {name: "rem", class: ClassMulDiv, format: FormatRRR, readsRs1: true, readsRs2: true, writesRd: true, canFault: true},
	OpAND:  {name: "and", class: ClassALU, format: FormatRRR, readsRs1: true, readsRs2: true, writesRd: true},
	OpOR:   {name: "or", class: ClassALU, format: FormatRRR, readsRs1: true, readsRs2: true, writesRd: true},
	OpXOR:  {name: "xor", class: ClassALU, format: FormatRRR, readsRs1: true, readsRs2: true, writesRd: true},
	OpNOR:  {name: "nor", class: ClassALU, format: FormatRRR, readsRs1: true, readsRs2: true, writesRd: true},
	OpSLL:  {name: "sll", class: ClassALU, format: FormatRRR, readsRs1: true, readsRs2: true, writesRd: true},
	OpSRL:  {name: "srl", class: ClassALU, format: FormatRRR, readsRs1: true, readsRs2: true, writesRd: true},
	OpSRA:  {name: "sra", class: ClassALU, format: FormatRRR, readsRs1: true, readsRs2: true, writesRd: true},
	OpSLT:  {name: "slt", class: ClassALU, format: FormatRRR, readsRs1: true, readsRs2: true, writesRd: true},
	OpSLTU: {name: "sltu", class: ClassALU, format: FormatRRR, readsRs1: true, readsRs2: true, writesRd: true},

	OpADDI:  {name: "addi", class: ClassALU, format: FormatRRI, readsRs1: true, writesRd: true},
	OpADDIV: {name: "addiv", class: ClassALU, format: FormatRRI, readsRs1: true, writesRd: true, canTrap: true},
	OpANDI:  {name: "andi", class: ClassALU, format: FormatRRI, readsRs1: true, writesRd: true},
	OpORI:   {name: "ori", class: ClassALU, format: FormatRRI, readsRs1: true, writesRd: true},
	OpXORI:  {name: "xori", class: ClassALU, format: FormatRRI, readsRs1: true, writesRd: true},
	OpSLTI:  {name: "slti", class: ClassALU, format: FormatRRI, readsRs1: true, writesRd: true},
	OpSLLI:  {name: "slli", class: ClassALU, format: FormatRRI, readsRs1: true, writesRd: true},
	OpSRLI:  {name: "srli", class: ClassALU, format: FormatRRI, readsRs1: true, writesRd: true},
	OpSRAI:  {name: "srai", class: ClassALU, format: FormatRRI, readsRs1: true, writesRd: true},
	OpLUI:   {name: "lui", class: ClassALU, format: FormatRI, writesRd: true},

	OpLW:  {name: "lw", class: ClassLoad, format: FormatMem, readsRs1: true, writesRd: true, canFault: true},
	OpLB:  {name: "lb", class: ClassLoad, format: FormatMem, readsRs1: true, writesRd: true, canFault: true},
	OpLBU: {name: "lbu", class: ClassLoad, format: FormatMem, readsRs1: true, writesRd: true, canFault: true},
	OpSW:  {name: "sw", class: ClassStore, format: FormatMem, readsRs1: true, readsRs2: true, canFault: true},
	OpSB:  {name: "sb", class: ClassStore, format: FormatMem, readsRs1: true, readsRs2: true, canFault: true},

	OpBEQ:  {name: "beq", class: ClassBranch, format: FormatBr, readsRs1: true, readsRs2: true},
	OpBNE:  {name: "bne", class: ClassBranch, format: FormatBr, readsRs1: true, readsRs2: true},
	OpBLT:  {name: "blt", class: ClassBranch, format: FormatBr, readsRs1: true, readsRs2: true},
	OpBGE:  {name: "bge", class: ClassBranch, format: FormatBr, readsRs1: true, readsRs2: true},
	OpBLTU: {name: "bltu", class: ClassBranch, format: FormatBr, readsRs1: true, readsRs2: true},
	OpBGEU: {name: "bgeu", class: ClassBranch, format: FormatBr, readsRs1: true, readsRs2: true},

	OpJ:    {name: "j", class: ClassJump, format: FormatJ},
	OpJAL:  {name: "jal", class: ClassJump, format: FormatJ, writesRd: true},
	OpJR:   {name: "jr", class: ClassJump, format: FormatJR, readsRs1: true},
	OpJALR: {name: "jalr", class: ClassJump, format: FormatJR, readsRs1: true, writesRd: true},

	OpTRAP: {name: "trap", class: ClassSystem, format: FormatSys, canTrap: true},
	OpHALT: {name: "halt", class: ClassSystem, format: FormatSys},
	OpNOP:  {name: "nop", class: ClassALU, format: FormatSys},

	OpVLW:  {name: "vlw", class: ClassLoad, format: FormatMem, readsRs1: true, writesRd: true, canFault: true},
	OpVSW:  {name: "vsw", class: ClassStore, format: FormatMem, readsRs1: true, readsRs2: true, canFault: true},
	OpVADD: {name: "vadd", class: ClassALU, format: FormatRRR, readsRs1: true, readsRs2: true, writesRd: true},

	OpLI:    {name: "li", class: ClassALU, format: FormatRI, writesRd: true},
	OpSLTIU: {name: "sltiu", class: ClassALU, format: FormatRRI, readsRs1: true, writesRd: true},
	OpLH:    {name: "lh", class: ClassLoad, format: FormatMem, readsRs1: true, writesRd: true, canFault: true},
	OpLHU:   {name: "lhu", class: ClassLoad, format: FormatMem, readsRs1: true, writesRd: true, canFault: true},
	OpSH:    {name: "sh", class: ClassStore, format: FormatMem, readsRs1: true, readsRs2: true, canFault: true},
	OpJALA:  {name: "jala", class: ClassJump, format: FormatJ, writesRd: true},
	OpJRA:   {name: "jra", class: ClassJump, format: FormatJRI, readsRs1: true, canFault: true},
	OpJALRA: {name: "jalra", class: ClassJump, format: FormatJRI, readsRs1: true, writesRd: true, canFault: true},
}

// Ops returns the number of operations the instruction contains: 1 for
// scalar instructions, VectorLen for vector instructions (the paper's
// k in incr(k)).
func (op Op) Ops() int {
	switch op {
	case OpVLW, OpVSW, OpVADD:
		return VectorLen
	}
	return 1
}

// IsVector reports whether the opcode is a multi-operation vector
// instruction.
func (op Op) IsVector() bool { return op.Ops() > 1 }

// NumOps returns the number of defined opcodes (including OpInvalid).
func NumOps() int { return int(numOps) }

// Valid reports whether op is a defined opcode other than OpInvalid.
func (op Op) Valid() bool { return op > OpInvalid && op < numOps }

// String returns the assembly mnemonic of the opcode.
func (op Op) String() string {
	if op >= numOps {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// Class returns the pipeline resource class of the opcode.
func (op Op) Class() Class {
	if op >= numOps {
		return ClassSystem
	}
	return opTable[op].class
}

// Format returns the operand format of the opcode.
func (op Op) Format() Format {
	if op >= numOps {
		return FormatSys
	}
	return opTable[op].format
}

// CanTrap reports whether the opcode can raise a trap. The precise repair
// point of a trap is the instruction boundary just to the right of the
// violating instruction.
func (op Op) CanTrap() bool { return op < numOps && opTable[op].canTrap }

// CanFault reports whether the opcode can raise a fault. The precise
// repair point of a fault is the instruction boundary just to the left of
// the violating instruction.
func (op Op) CanFault() bool { return op < numOps && opTable[op].canFault }

// CanExcept reports whether the opcode can raise any exception.
func (op Op) CanExcept() bool { return op.CanTrap() || op.CanFault() }

// ReadsRs1 reports whether the opcode reads its first source register.
func (op Op) ReadsRs1() bool { return op < numOps && opTable[op].readsRs1 }

// ReadsRs2 reports whether the opcode reads its second source register.
func (op Op) ReadsRs2() bool { return op < numOps && opTable[op].readsRs2 }

// WritesRd reports whether the opcode writes its destination register.
func (op Op) WritesRd() bool { return op < numOps && opTable[op].writesRd }

// OpByName returns the opcode with the given assembly mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, int(numOps))
	for op := OpInvalid + 1; op < numOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// Inst is a decoded instruction. PC-relative branch displacements and
// absolute jump targets are stored in Imm as instruction indices (the
// simulated instruction memory is word-indexed, one Inst per index).
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32
}

// String renders the instruction in assembly syntax.
func (in Inst) String() string {
	switch in.Op.Format() {
	case FormatRRR:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	case FormatRRI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case FormatRI:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case FormatMem:
		if in.Op.Class() == ClassStore {
			return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
		}
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case FormatBr:
		return fmt.Sprintf("%s %s, %s, %+d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case FormatJ:
		if in.Op.WritesRd() {
			return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
		}
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case FormatJR:
		if in.Op.WritesRd() {
			return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs1)
		}
		return fmt.Sprintf("%s %s", in.Op, in.Rs1)
	case FormatJRI:
		if in.Op.WritesRd() {
			return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
		}
		return fmt.Sprintf("%s %d(%s)", in.Op, in.Imm, in.Rs1)
	case FormatSys:
		if in.Op == OpTRAP {
			return fmt.Sprintf("%s %d", in.Op, in.Imm)
		}
		return in.Op.String()
	}
	return fmt.Sprintf("%s ???", in.Op)
}

// IsBranch reports whether the instruction is a conditional branch, the
// only instruction kind that can cause a B-repair.
func (in Inst) IsBranch() bool { return in.Op.Class() == ClassBranch }

// IsControl reports whether the instruction redirects the PC
// (conditional branch or unconditional jump).
func (in Inst) IsControl() bool {
	c := in.Op.Class()
	return c == ClassBranch || c == ClassJump
}

// IsMemWrite reports whether the instruction writes memory.
func (in Inst) IsMemWrite() bool { return in.Op.Class() == ClassStore }

// IsIndirectJump reports whether the opcode transfers control to a
// register-determined target (resolved at execute, not decode).
func (op Op) IsIndirectJump() bool {
	switch op {
	case OpJR, OpJALR, OpJRA, OpJALRA:
		return true
	}
	return false
}

// Sources returns the architectural registers read by the instruction.
// The result is at most two registers; absent sources are reported by n.
func (in Inst) Sources() (rs [2]Reg, n int) {
	if in.Op.ReadsRs1() {
		rs[n] = in.Rs1
		n++
	}
	if in.Op.ReadsRs2() {
		rs[n] = in.Rs2
		n++
	}
	return rs, n
}

// Dest returns the destination register and whether the instruction
// writes one.
func (in Inst) Dest() (Reg, bool) {
	if in.Op.WritesRd() {
		return in.Rd, true
	}
	return 0, false
}
