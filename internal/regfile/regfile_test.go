package regfile

import (
	"testing"

	"repro/internal/isa"
)

func TestReadReserveDeliver(t *testing.T) {
	f := New(2)
	if v, p, _ := f.Read(5); v != 0 || p {
		t.Fatal("fresh register must read 0, not pending")
	}
	f.Reserve(5, 100)
	if _, p, tag := f.Read(5); !p || tag != 100 {
		t.Fatal("reserve not visible")
	}
	f.Deliver([]int{0}, 5, 42, 100)
	if v, p, _ := f.Read(5); p || v != 42 {
		t.Fatalf("deliver: v=%d p=%v", v, p)
	}
}

func TestR0Immutable(t *testing.T) {
	f := New(1)
	f.Reserve(0, 1)
	f.Deliver([]int{0}, 0, 99, 1)
	if v, p, _ := f.Read(0); v != 0 || p {
		t.Error("r0 must stay zero and never pend")
	}
}

func TestWAWAcrossCheckpoint(t *testing.T) {
	// A checkpoint pushed between two writers of the same register must
	// keep the elder's value while current keeps the younger's — the
	// per-cell tag rule.
	f := New(2)
	f.Reserve(3, 10) // elder writer
	f.Push(0)        // checkpoint: backup1 carries the tag-10 reservation
	f.Reserve(3, 20) // younger writer re-reserves in current only
	// Younger delivers first (out of order): writes current only.
	f.Deliver([]int{1}, 3, 222, 20)
	if v, p, _ := f.Read(3); p || v != 222 {
		t.Fatalf("current after younger: %d %v", v, p)
	}
	// Elder delivers with depth 1: current cell no longer carries its
	// tag (skip), backup1 does (write).
	f.Deliver([]int{1}, 3, 111, 10)
	if v, _, _ := f.Read(3); v != 222 {
		t.Errorf("current clobbered by elder: %d", v)
	}
	if b := f.BackupSnapshot(0, 1); b[3] != 111 {
		t.Errorf("backup1 r3 = %d, want 111", b[3])
	}
}

func TestDeliverDepthSelectsSpaces(t *testing.T) {
	f := New(3)
	f.Reserve(4, 50)
	f.Push(0) // backup1
	f.Push(0) // backup1 (new), old becomes backup2
	// Deliver with depth 1: only current and backup1 updated; backup2
	// keeps the pending mark (it would be a bug for a real scheme, but
	// exercises the clamping).
	f.Deliver([]int{1}, 4, 7, 50)
	if b := f.BackupSnapshot(0, 1); b[4] != 7 {
		t.Errorf("backup1 = %d", b[4])
	}
	if !f.OldestHasPending(0) {
		t.Error("backup2 should still pend")
	}
}

func TestRecallAt(t *testing.T) {
	f := New(3)
	f.Reserve(1, 1)
	f.Deliver([]int{0}, 1, 100, 1)
	f.Push(0) // ckpt A: r1=100
	f.Reserve(1, 2)
	f.Deliver([]int{0}, 1, 200, 2)
	f.Push(0) // ckpt B: r1=200
	f.Reserve(1, 3)
	f.Deliver([]int{0}, 1, 300, 3)
	// Repair to ckpt B (newest, depth 1).
	f.RecallAt(0, 1)
	if v, _, _ := f.Read(1); v != 200 {
		t.Errorf("recall B: %d", v)
	}
	if f.Depth(0) != 1 {
		t.Errorf("depth %d", f.Depth(0))
	}
	// Repair to ckpt A.
	f.RecallAt(0, 1)
	if v, _, _ := f.Read(1); v != 100 {
		t.Errorf("recall A: %d", v)
	}
}

func TestRecallOldestTheorem4Guard(t *testing.T) {
	f := New(2)
	f.Reserve(7, 9)
	f.Push(0)
	defer func() {
		if recover() == nil {
			t.Error("RecallOldest must enforce the Theorem 4 invariant")
		}
	}()
	f.RecallOldest(0)
}

func TestRecallOldestClearsStack(t *testing.T) {
	f := New(2)
	f.Reserve(1, 1)
	f.Deliver([]int{0}, 1, 5, 1)
	f.Push(0)
	f.Push(0)
	f.Reserve(1, 2)
	f.Deliver([]int{2}, 1, 9, 2)
	f.RecallOldest(0)
	if f.Depth(0) != 0 {
		t.Error("stack not cleared")
	}
	if v, _, _ := f.Read(1); v != 5 {
		t.Errorf("recalled value %d", v)
	}
}

func TestPushCapacityPanics(t *testing.T) {
	f := New(1)
	f.Push(0)
	defer func() {
		if recover() == nil {
			t.Error("push beyond capacity must panic")
		}
	}()
	f.Push(0)
}

func TestMultiStack(t *testing.T) {
	f := NewStacks(2, 3)
	if f.Stacks() != 2 || f.Capacity(0) != 2 || f.Capacity(1) != 3 {
		t.Fatal("geometry")
	}
	f.Reserve(2, 1)
	f.Deliver([]int{0, 0}, 2, 10, 1)
	f.Push(0)
	f.Reserve(2, 2)
	f.Deliver([]int{0, 0}, 2, 20, 2)
	f.Push(1)
	f.Reserve(2, 3)
	f.Deliver([]int{0, 0}, 2, 30, 3)
	// Recall from stack 1 (B-repair): r2 back to 20; stack 0 untouched.
	f.RecallAt(1, 1)
	if v, _, _ := f.Read(2); v != 20 {
		t.Errorf("stack1 recall: %d", v)
	}
	if f.Depth(0) != 1 {
		t.Error("stack0 perturbed")
	}
	f.RecallAt(0, 1)
	if v, _, _ := f.Read(2); v != 10 {
		t.Errorf("stack0 recall: %d", v)
	}
}

func TestTransferOldest(t *testing.T) {
	f := NewStacks(2, 2)
	f.Reserve(1, 1)
	f.Deliver([]int{0, 0}, 1, 111, 1)
	f.Push(1) // B ckpt with r1=111
	f.Reserve(1, 2)
	f.Deliver([]int{0, 0}, 1, 222, 2)
	f.Push(1) // newer B ckpt with r1=222
	f.TransferOldest(1, 0)
	if f.Depth(0) != 1 || f.Depth(1) != 1 {
		t.Fatalf("depths %d/%d", f.Depth(0), f.Depth(1))
	}
	if b := f.BackupSnapshot(0, 1); b[1] != 111 {
		t.Errorf("graduated space r1 = %d, want 111", b[1])
	}
	if b := f.BackupSnapshot(1, 1); b[1] != 222 {
		t.Errorf("remaining B space r1 = %d, want 222", b[1])
	}
}

func TestCancel(t *testing.T) {
	f := New(2)
	f.Reserve(6, 1)
	f.Deliver([]int{0}, 6, 55, 1)
	f.Reserve(6, 2)
	f.Push(0)
	val := f.Cancel([]int{1}, 6, 2)
	if val != 55 {
		t.Errorf("cancel returned %d", val)
	}
	if _, p, _ := f.Read(6); p {
		t.Error("current still pending after cancel")
	}
	if f.OldestHasPending(0) {
		t.Error("backup still pending after cancel")
	}
	// Value preserved everywhere.
	if b := f.BackupSnapshot(0, 1); b[6] != 55 {
		t.Errorf("backup value %d", b[6])
	}
}

func TestPopNewestAndDropOldest(t *testing.T) {
	f := New(3)
	for i := 1; i <= 3; i++ {
		f.Reserve(1, uint64(i))
		f.Deliver([]int{0}, 1, uint32(i*100), uint64(i))
		f.Push(0)
	}
	f.PopNewest(0, 1) // drop ckpt with r1=300
	f.DropOldest(0)   // retire ckpt with r1=100
	if f.Depth(0) != 1 {
		t.Fatalf("depth %d", f.Depth(0))
	}
	if b := f.BackupSnapshot(0, 1); b[1] != 200 {
		t.Errorf("remaining ckpt r1 = %d", b[1])
	}
}

func TestCostModel(t *testing.T) {
	cm := Cost(2)
	if cm.CellsPerBit != 3 {
		t.Errorf("cells per bit: %d", cm.CellsPerBit)
	}
	if cm.TotalBits != isa.NumRegs*32*3 {
		t.Errorf("total bits: %d", cm.TotalBits)
	}
	// Figure 5 (c=2): delivery lines for current and backup1 only —
	// Theorem 4 removes backup2's lines.
	if cm.ResultLinePairs != 2 {
		t.Errorf("line pairs: %d", cm.ResultLinePairs)
	}
	if dm := Cost(2, 4); dm.BackupSpaces != 6 || dm.CellsPerBit != 7 {
		t.Errorf("direct cost: %+v", dm)
	}
}
