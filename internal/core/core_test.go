package core

import (
	"math/rand"
	"testing"

	"repro/internal/diff"
	"repro/internal/isa"
	"repro/internal/regfile"
)

// fakeEngine records repair callbacks.
type fakeEngine struct {
	squashes  []uint64
	redirects []int
	precise   []int
	inflight  []OpInfo
}

func (e *fakeEngine) SquashAfter(seq uint64) []OpInfo {
	e.squashes = append(e.squashes, seq)
	var out []OpInfo
	kept := e.inflight[:0]
	for _, op := range e.inflight {
		if op.Seq > seq {
			out = append(out, op)
		} else {
			kept = append(kept, op)
		}
	}
	e.inflight = kept
	return out
}
func (e *fakeEngine) RedirectFetch(pc int)    { e.redirects = append(e.redirects, pc) }
func (e *fakeEngine) EnterPreciseMode(pc int) { e.precise = append(e.precise, pc) }

// fakeMem records memory-system calls.
type fakeMem struct {
	undone int
	releases []uint64
	repairs  []uint64
}

func (m *fakeMem) Load(uint32) (uint32, bool, isa.ExcCode) { return 0, true, isa.ExcCodeNone }
func (m *fakeMem) Store(uint64, uint32, uint32, uint8) (bool, bool, isa.ExcCode) {
	return true, true, isa.ExcCodeNone
}
func (m *fakeMem) CheckAccess(uint32, uint32) isa.ExcCode { return isa.ExcCodeNone }
func (m *fakeMem) Peek(uint32) (uint32, bool)             { return 0, true }
func (m *fakeMem) Release(b uint64)                       { m.releases = append(m.releases, b) }
func (m *fakeMem) Repair(b uint64)                        { m.repairs = append(m.repairs, b) }
func (m *fakeMem) Finish()                                {}
func (m *fakeMem) Stats() diff.Stats                      { return diff.Stats{} }
func (m *fakeMem) UndoneCounter() *int                    { return &m.undone }

// harness wires a scheme to fakes and drives issue sequences.
type harness struct {
	s    Scheme
	eng  *fakeEngine
	mem  *fakeMem
	regs *regfile.File
	seq  uint64
}

func newHarness(s Scheme) *harness {
	h := &harness{s: s, eng: &fakeEngine{}, mem: &fakeMem{}}
	h.regs = regfile.NewStacks(s.RegStackCaps()...)
	s.Attach(h.regs, h.mem, h.eng)
	s.Restart(0, 1)
	h.seq = 1
	return h
}

// issue issues one op, returning false if the scheme stalled it.
func (h *harness) issue(pc int, branch, store bool) (uint64, bool) {
	in := isa.Inst{Op: isa.OpADD}
	if branch {
		in = isa.Inst{Op: isa.OpBEQ}
	}
	if store {
		in = isa.Inst{Op: isa.OpSW}
	}
	if ok, _ := h.s.CanIssue(in, pc); !ok {
		return 0, false
	}
	op := OpInfo{Seq: h.seq, PC: pc, IsBranch: branch, IsStore: store}
	h.seq++
	h.eng.inflight = append(h.eng.inflight, op)
	h.s.OnIssue(op, pc+1)
	return op.Seq, true
}

// deliver completes an op.
func (h *harness) deliver(seq uint64, exc bool) {
	for i, op := range h.eng.inflight {
		if op.Seq == seq {
			h.eng.inflight = append(h.eng.inflight[:i], h.eng.inflight[i+1:]...)
			break
		}
	}
	h.s.OnDeliver(seq, exc)
}

func TestSchemeEBasicCheckpointing(t *testing.T) {
	s := NewSchemeE(2, 4, 0)
	h := newHarness(s)
	// Restart established the initial checkpoint.
	if s.Stats().Checkpoints != 1 {
		t.Fatalf("initial checkpoints: %d", s.Stats().Checkpoints)
	}
	// Four issues trigger the distance-4 check.
	var seqs []uint64
	for i := 0; i < 4; i++ {
		seq, ok := h.issue(i, false, false)
		if !ok {
			t.Fatalf("stalled at %d", i)
		}
		seqs = append(seqs, seq)
	}
	if s.Stats().Checkpoints != 2 {
		t.Errorf("after 4 issues: %d checkpoints", s.Stats().Checkpoints)
	}
	// Depths: ops in the first segment must reach the new backup.
	out := make([]int, 1)
	s.Depths(seqs[0], out)
	if out[0] != 1 {
		t.Errorf("depth for old op: %d", out[0])
	}
	s.Depths(5, out) // issued after the checkpoint
	if out[0] != 0 {
		t.Errorf("depth for new op: %d", out[0])
	}
	for _, q := range seqs {
		h.deliver(q, false)
	}
}

func TestSchemeEStallsWhenWindowFullAndUndrained(t *testing.T) {
	// Theorem 2 territory: with c=1 the single backup space can never
	// retire while its segment has active instructions, so the second
	// check stalls issue until the segment drains.
	s := NewSchemeE(1, 2, 0)
	h := newHarness(s)
	s1, _ := h.issue(0, false, false)
	s2, ok := h.issue(1, false, false) // triggers check; window full, seg active
	if !ok {
		t.Fatal("issue 2 itself should succeed")
	}
	if _, ok := h.issue(2, false, false); ok {
		t.Fatal("issue 3 must stall: no backup space")
	}
	// Draining the first segment lets the pending check complete.
	h.deliver(s1, false)
	h.deliver(s2, false)
	s.Tick()
	if _, ok := h.issue(2, false, false); !ok {
		t.Fatal("issue should resume after drain")
	}
	if s.Stats().Retired != 1 {
		t.Errorf("retired: %d", s.Stats().Retired)
	}
}

func TestSchemeEWForcesCheckpoint(t *testing.T) {
	s := NewSchemeE(4, 100, 2) // W=2
	h := newHarness(s)
	h.issue(0, false, true)
	h.issue(1, false, true)
	// Third store in the same segment must force a checkpoint first.
	before := s.Stats().Checkpoints
	if _, ok := h.issue(2, false, true); !ok {
		t.Fatal("store should proceed after forced check")
	}
	if s.Stats().Checkpoints != before+1 {
		t.Errorf("no forced checkpoint: %d", s.Stats().Checkpoints)
	}
}

func TestSchemeEERepair(t *testing.T) {
	s := NewSchemeE(2, 4, 0)
	h := newHarness(s)
	seq, _ := h.issue(0, false, false)
	h.deliver(seq, true) // exception in the initial (oldest) segment
	rep, err := s.Tick()
	if err != nil || !rep {
		t.Fatalf("repair: %v %v", rep, err)
	}
	if len(h.eng.precise) != 1 || h.eng.precise[0] != 0 {
		t.Errorf("precise mode at %v", h.eng.precise)
	}
	if len(h.mem.repairs) != 1 {
		t.Errorf("mem repairs: %v", h.mem.repairs)
	}
	if s.Stats().ERepairs != 1 {
		t.Error("stats")
	}
}

func TestSchemeECannotRepairBranches(t *testing.T) {
	s := NewSchemeE(2, 4, 0)
	newHarness(s)
	if s.OnBranchResolve(1, true, 5) {
		t.Error("schemeE must refuse B-repair")
	}
	if !s.OnBranchResolve(1, false, 5) {
		t.Error("correct predictions are fine")
	}
}

func TestSchemeBVerifyAndRetire(t *testing.T) {
	s := NewSchemeB(2)
	h := newHarness(s)
	b1, _ := h.issue(0, true, false)
	b2, _ := h.issue(1, true, false)
	// Window full with two pending branches: third branch blocks at its
	// check (the branch itself issues; the next instruction stalls).
	b3, ok := h.issue(2, true, false)
	if !ok {
		t.Fatal("branch 3 should issue")
	}
	if _, ok := h.issue(3, false, false); ok {
		t.Fatal("issue after blocked checkB must stall")
	}
	// Verifying the oldest lets the blocked check complete.
	s.OnBranchResolve(b1, false, 1)
	s.Tick()
	if _, ok := h.issue(3, false, false); !ok {
		t.Fatal("should resume after oldest verified")
	}
	_ = b2
	_ = b3
}

func TestSchemeBRepairRestoresAndSquashes(t *testing.T) {
	s := NewSchemeB(4)
	h := newHarness(s)
	b1, _ := h.issue(0, true, false)
	h.issue(1, false, false)
	b2, _ := h.issue(2, true, false)
	h.issue(3, false, false)
	// Mispredict the OLDER branch: everything after it squashes,
	// including branch 2's checkpoint.
	if !s.OnBranchResolve(b1, true, 40) {
		t.Fatal("repair refused")
	}
	if len(h.eng.redirects) != 1 || h.eng.redirects[0] != 40 {
		t.Errorf("redirect: %v", h.eng.redirects)
	}
	if h.regs.Depth(0) != 0 {
		t.Errorf("regfile depth after repair to oldest branch: %d", h.regs.Depth(0))
	}
	// The younger branch's resolution is now stale and must be ignored.
	if !s.OnBranchResolve(b2, true, 99) {
		t.Error("stale resolution mishandled")
	}
	if len(h.eng.redirects) != 1 {
		t.Error("stale resolution caused a redirect")
	}
	if s.Stats().BRepairs != 1 {
		t.Errorf("brepairs: %d", s.Stats().BRepairs)
	}
}

func TestSchemeBFatalOnRealException(t *testing.T) {
	s := NewSchemeB(2)
	h := newHarness(s)
	seq, _ := h.issue(0, false, false)
	h.deliver(seq, true)
	// No unverified older branch exists: the exception is correct-path.
	if _, err := s.Tick(); err == nil {
		t.Error("schemeB must be fatal on correct-path exception")
	}
}

func TestSchemeBWrongPathExceptionTolerated(t *testing.T) {
	s := NewSchemeB(2)
	h := newHarness(s)
	b1, _ := h.issue(0, true, false)
	seq, _ := h.issue(1, false, false)
	h.deliver(seq, true)
	// The older branch is unverified: the exception may be noise.
	if _, err := s.Tick(); err != nil {
		t.Fatalf("premature fatal: %v", err)
	}
	// Branch mispredicts; repair discards the exception record.
	s.OnBranchResolve(b1, true, 9)
	if _, err := s.Tick(); err != nil {
		t.Errorf("exception record survived repair: %v", err)
	}
}

func TestTightCheckpointsAtBranches(t *testing.T) {
	s := NewSchemeTight(3, 0)
	h := newHarness(s)
	h.issue(0, false, false)
	if s.Stats().Checkpoints != 1 {
		t.Error("non-branch created checkpoint")
	}
	h.issue(1, true, false)
	if s.Stats().Checkpoints != 2 {
		t.Error("branch did not create checkpoint")
	}
}

func TestTightBRepairCleansExceptions(t *testing.T) {
	s := NewSchemeTight(3, 0)
	h := newHarness(s)
	b1, _ := h.issue(0, true, false)
	seq, _ := h.issue(1, false, false) // wrong-path op in branch's segment
	h.deliver(seq, true)               // noise exception
	s.OnBranchResolve(b1, true, 30)    // B-repair pops the segment
	rep, err := s.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if rep {
		t.Error("noise exception survived the B-repair")
	}
}

func TestLooseGraduation(t *testing.T) {
	s := NewSchemeLoose(2, 2, 3)
	h := newHarness(s)
	// Branches every 2 instructions; distance 3 means roughly every
	// second branch checkpoint graduates when it ages out.
	var branches []uint64
	for i := 0; i < 12; i++ {
		branch := i%2 == 1
		seq, ok := h.issue(i, branch, false)
		if !ok {
			t.Fatalf("stall at %d", i)
		}
		if branch {
			branches = append(branches, seq)
			// Verify immediately so the window can turn over.
			s.OnBranchResolve(seq, false, i+1)
		}
		h.deliver(seq, false)
		s.Tick()
	}
	if s.Stats().Graduated == 0 {
		t.Error("no graduations")
	}
	if s.Stats().Graduated >= s.Stats().Checkpoints {
		t.Error("everything graduated?")
	}
}

func TestLooseAgeInvariant(t *testing.T) {
	// Every E checkpoint must be older than every B checkpoint.
	s := NewSchemeLoose(2, 2, 2)
	h := newHarness(s)
	for i := 0; i < 20; i++ {
		branch := i%2 == 0
		seq, ok := h.issue(i, branch, false)
		if !ok {
			t.Fatalf("stall at %d", i)
		}
		if branch {
			s.OnBranchResolve(seq, false, i+1)
		}
		h.deliver(seq, false)
		s.Tick()
		if e := s.ewin.newest(); e != nil {
			if b := s.bwin.oldest(); b != nil && e.BornSeq > b.BornSeq {
				t.Fatalf("age invariant violated: E %d > B %d", e.BornSeq, b.BornSeq)
			}
		}
	}
}

func TestDirectTwoStacks(t *testing.T) {
	s := NewSchemeDirect(2, 3, 4, 0)
	h := newHarness(s)
	if got := len(s.RegStackCaps()); got != 2 {
		t.Fatalf("stacks: %d", got)
	}
	if s.Spaces() != 6 {
		t.Errorf("spaces: %d", s.Spaces())
	}
	// A branch creates a B checkpoint only; distance creates E.
	h.issue(0, true, false)
	if h.regs.Depth(1) != 1 {
		t.Error("B stack")
	}
	for i := 1; i <= 4; i++ {
		h.issue(i, false, false)
	}
	if h.regs.Depth(0) != 2 { // initial + distance checkpoint
		t.Errorf("E stack depth: %d", h.regs.Depth(0))
	}
}

func TestDirectBRepairDiscardsWrongPathECheckpoints(t *testing.T) {
	s := NewSchemeDirect(3, 3, 2, 0)
	h := newHarness(s)
	b1, _ := h.issue(0, true, false) // B ckpt
	h.issue(1, false, false)
	h.issue(2, false, false) // E ckpt at distance 2 (wrong path if b1 missed)
	eDepthBefore := h.regs.Depth(0)
	s.OnBranchResolve(b1, true, 50)
	if h.regs.Depth(0) >= eDepthBefore {
		t.Errorf("wrong-path E checkpoint kept: %d -> %d", eDepthBefore, h.regs.Depth(0))
	}
}

func TestTheorem8Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SchemeB with 0 spaces must panic (Theorem 8)")
		}
	}()
	NewSchemeB(0)
}

func TestTheorem9Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SchemeTight with 1 space must panic (Theorem 9)")
		}
	}()
	NewSchemeTight(1, 0)
}

func TestSpacesReporting(t *testing.T) {
	if NewSchemeE(3, 8, 0).Spaces() != 4 {
		t.Error("schemeE spaces")
	}
	if NewSchemeB(2).Spaces() != 3 {
		t.Error("schemeB spaces")
	}
	if NewSchemeTight(4, 0).Spaces() != 5 {
		t.Error("tight spaces")
	}
	if NewSchemeLoose(2, 4, 8).Spaces() != 7 {
		t.Error("loose spaces")
	}
}

func TestWindowHelpers(t *testing.T) {
	w := newWindow(0, 3)
	a := &Checkpoint{BornSeq: 10}
	b := &Checkpoint{BornSeq: 20}
	c := &Checkpoint{BornSeq: 30}
	w.push(a)
	w.push(b)
	w.push(c)
	if w.oldest() != a || w.newest() != c || !w.full() {
		t.Fatal("window shape")
	}
	if d := w.depthFor(15); d != 2 {
		t.Errorf("depthFor(15) = %d", d)
	}
	if d := w.depthFor(20); d != 2 {
		t.Errorf("depthFor(20) = %d (BornSeq >= seq includes b)", d)
	}
	if d := w.depthFor(31); d != 0 {
		t.Errorf("depthFor(31) = %d", d)
	}
	if own := w.owner(25); own != b {
		t.Errorf("owner(25) = %+v", own)
	}
	if own := w.owner(5); own != nil {
		t.Error("owner before all checkpoints")
	}
	if w.depthFromNewest(0) != 3 || w.depthFromNewest(2) != 1 {
		t.Error("depthFromNewest")
	}
	w.retireOldest()
	if w.oldest() != b {
		t.Error("retire")
	}
	if n := w.popFrom(1); n != 1 || w.newest() != b {
		t.Error("popFrom")
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestQuickSchemeWindowInvariants drives random issue/deliver/resolve
// event sequences through each scheme, respecting the machine contract
// (branches resolve when they deliver; an E-repair squashes the
// pipeline and is followed by Restart), and checks structural
// invariants after every event: window occupancy within capacity,
// regfile stack depth in lockstep with the scheme's views, and
// checkpoint ages monotone.
func TestQuickSchemeWindowInvariants(t *testing.T) {
	type mkScheme struct {
		name string
		mk   func() Scheme
	}
	schemes := []mkScheme{
		{"tight", func() Scheme { return NewSchemeTight(3, 0) }},
		{"b", func() Scheme { return NewSchemeB(3) }},
		{"loose", func() Scheme { return NewSchemeLoose(2, 2, 4) }},
		{"direct", func() Scheme { return NewSchemeDirect(2, 2, 4, 0) }},
	}
	for _, sm := range schemes {
		t.Run(sm.name, func(t *testing.T) {
			for seed := int64(0); seed < 40; seed++ {
				rng := newRand(seed)
				s := sm.mk()
				pureB := sm.name == "b"
				h := newHarness(s)
				insp := s.(Inspectable)
				check := func(step int) {
					views := insp.Views()
					caps := s.RegStackCaps()
					for si, vs := range views {
						if len(vs) > caps[si] {
							t.Fatalf("seed %d step %d: stack %d over capacity: %d > %d", seed, step, si, len(vs), caps[si])
						}
						if len(vs) != h.regs.Depth(si) {
							t.Fatalf("seed %d step %d: stack %d depth %d != regfile %d", seed, step, si, len(vs), h.regs.Depth(si))
						}
						for i := 1; i < len(vs); i++ {
							if vs[i].BornSeq < vs[i-1].BornSeq {
								t.Fatalf("seed %d step %d: stack %d ages out of order", seed, step, si)
							}
						}
					}
				}
				preciseSeen := 0
				for step := 0; step < 250; step++ {
					if rng.Intn(3) != 0 { // issue
						h.issue(step, rng.Intn(4) == 0, rng.Intn(5) == 0)
					} else if len(h.eng.inflight) > 0 {
						// Deliver the oldest in-flight op; a branch
						// resolves at delivery, as in the machine.
						op := h.eng.inflight[0]
						exc := !pureB && !op.IsBranch && rng.Intn(12) == 0
						h.deliver(op.Seq, exc)
						if op.IsBranch {
							miss := rng.Intn(5) == 0
							s.OnBranchResolve(op.Seq, miss, op.PC+2)
						}
					}
					if _, err := s.Tick(); err != nil {
						t.Fatalf("seed %d step %d: %v", seed, step, err)
					}
					// After an E-repair the machine runs precise mode and
					// then restarts the scheme; emulate the restart.
					if len(h.eng.precise) > preciseSeen {
						preciseSeen = len(h.eng.precise)
						s.Restart(step, h.seq)
					}
					check(step)
				}
			}
		})
	}
}

// TestLooseGraduationBlockedByEDrain: graduating a B checkpoint needs a
// free E space; with cE=1 and the sole E checkpoint's range still
// active, the checkB blocks until the range drains.
func TestLooseGraduationBlockedByEDrain(t *testing.T) {
	s := NewSchemeLoose(1, 1, 1) // every branch wants to graduate
	h := newHarness(s)
	// One op keeps the initial E checkpoint's range active.
	busy, _ := h.issue(0, false, false)
	// First branch fills the single B space.
	b1, ok := h.issue(1, true, false)
	if !ok {
		t.Fatal("first branch")
	}
	s.OnBranchResolve(b1, false, 2) // verified: reusable, but must graduate
	h.deliver(b1, false)
	// Second branch: reuse requires graduating b1 into the E stack,
	// which requires retiring the initial E checkpoint — blocked while
	// any operation in its range (the busy op, and b2 itself) is
	// active.
	b2, ok := h.issue(2, true, false)
	if !ok {
		t.Fatal("the branch itself issues; the block comes after")
	}
	if _, ok := h.issue(3, false, false); ok {
		t.Fatal("issue must stall: graduation blocked by undrained E range")
	}
	// Draining only the busy op is not enough: b2 is still active.
	h.deliver(busy, false)
	s.Tick()
	if _, ok := h.issue(3, false, false); ok {
		t.Fatal("b2 still active; issue must stay stalled")
	}
	h.deliver(b2, false)
	s.Tick()
	if _, ok := h.issue(3, false, false); !ok {
		t.Fatal("issue should resume after the E range drained")
	}
	if s.Stats().Graduated == 0 {
		t.Error("no graduation recorded")
	}
}

// TestLooseMergeAccumulatesCounts: a B checkpoint that retires without
// graduating folds its segment bookkeeping into the newest E
// checkpoint, so drain checks keep seeing its active operations.
func TestLooseMergeAccumulatesCounts(t *testing.T) {
	s := NewSchemeLoose(1, 1, 1000) // distance so large nothing graduates
	h := newHarness(s)
	b1, _ := h.issue(0, true, false)
	slow, _ := h.issue(1, false, false) // in b1's segment, stays active
	s.OnBranchResolve(b1, false, 1)
	h.deliver(b1, false)
	// Next branch retires b1 (merge, not graduation). Its own count
	// also lands in b1's segment and merges along.
	b3, _ := h.issue(2, true, false)
	s.Tick()
	if s.Stats().Graduated != 0 {
		t.Fatal("unexpected graduation")
	}
	// The initial E checkpoint's effective range must still count the
	// merged operations: its view shows a nonzero Active.
	views := s.Views()
	if views[0][0].Active == 0 {
		t.Error("merged segment count lost")
	}
	h.deliver(slow, false)
	s.OnBranchResolve(b3, false, 3)
	h.deliver(b3, false)
	if views := s.Views(); views[0][0].Active != 0 {
		t.Errorf("merged count not decremented at delivery: %d", views[0][0].Active)
	}
}
