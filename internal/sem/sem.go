// Package sem defines the architectural semantics of each instruction as
// pure functions over operand values.
//
// Every execution engine in this repository — the in-order golden model
// (internal/refsim), the out-of-order functional units (internal/ooo),
// and the baseline machines (internal/baseline) — evaluates instructions
// through this package, so an instruction can never mean different
// things on different engines. That property is what makes the
// golden-model equivalence tests meaningful: any state divergence is a
// repair-mechanism bug, not a semantics mismatch.
package sem

import (
	"repro/internal/isa"
)

// Outcome is the architectural result of executing one non-memory
// instruction (or the non-memory part of a memory instruction).
type Outcome struct {
	Result   uint32 // value for rd when WroteRd
	WroteRd  bool
	Taken    bool // conditional branch outcome
	Target   int  // next PC for control instructions (taken path)
	Exc      isa.ExcCode
	TrapInfo int32 // software trap code
	Halt     bool
}

// EvalALU evaluates any ALU, mul/div, branch, jump, or system
// instruction. a and b are the values of rs1 and rs2 (ignored when the
// opcode does not read them); pc is the instruction's index.
//
// Trap semantics (VAX-style, paper §2.2): a trapping instruction
// completes — the wrapped result is written — and then traps, so the
// precise repair point is to its right. Fault semantics: the instruction
// must appear not to have executed, so rd is not written.
func EvalALU(in isa.Inst, a, b uint32, pc int) Outcome {
	var o Outcome
	sa, sb := int32(a), int32(b)
	switch in.Op {
	case isa.OpADD:
		o.set(a + b)
	case isa.OpADDV:
		o.set(a + b)
		if addOverflows(sa, sb) {
			o.Exc = isa.ExcCodeOverflow
		}
	case isa.OpSUB:
		o.set(a - b)
	case isa.OpSUBV:
		o.set(a - b)
		if subOverflows(sa, sb) {
			o.Exc = isa.ExcCodeOverflow
		}
	case isa.OpMUL:
		o.set(uint32(int64(sa) * int64(sb)))
	case isa.OpMULV:
		p := int64(sa) * int64(sb)
		o.set(uint32(p))
		if p != int64(int32(p)) {
			o.Exc = isa.ExcCodeOverflow
		}
	case isa.OpDIV:
		if sb == 0 {
			o.Exc = isa.ExcCodeDivideZero
			return o
		}
		o.set(uint32(divSigned(sa, sb)))
	case isa.OpREM:
		if sb == 0 {
			o.Exc = isa.ExcCodeDivideZero
			return o
		}
		o.set(uint32(remSigned(sa, sb)))
	case isa.OpAND:
		o.set(a & b)
	case isa.OpOR:
		o.set(a | b)
	case isa.OpXOR:
		o.set(a ^ b)
	case isa.OpNOR:
		o.set(^(a | b))
	case isa.OpSLL:
		o.set(a << (b & 31))
	case isa.OpSRL:
		o.set(a >> (b & 31))
	case isa.OpSRA:
		o.set(uint32(sa >> (b & 31)))
	case isa.OpSLT:
		o.set(boolTo32(sa < sb))
	case isa.OpSLTU:
		o.set(boolTo32(a < b))

	case isa.OpADDI:
		o.set(a + uint32(in.Imm))
	case isa.OpADDIV:
		o.set(a + uint32(in.Imm))
		if addOverflows(sa, in.Imm) {
			o.Exc = isa.ExcCodeOverflow
		}
	case isa.OpANDI:
		o.set(a & uint32(in.Imm))
	case isa.OpORI:
		o.set(a | uint32(in.Imm))
	case isa.OpXORI:
		o.set(a ^ uint32(in.Imm))
	case isa.OpSLTI:
		o.set(boolTo32(sa < in.Imm))
	case isa.OpSLTIU:
		o.set(boolTo32(a < uint32(in.Imm)))
	case isa.OpSLLI:
		o.set(a << (uint32(in.Imm) & 31))
	case isa.OpSRLI:
		o.set(a >> (uint32(in.Imm) & 31))
	case isa.OpSRAI:
		o.set(uint32(sa >> (uint32(in.Imm) & 31)))
	case isa.OpLUI:
		o.set(uint32(in.Imm) << 16)
	case isa.OpLI:
		o.set(uint32(in.Imm))

	case isa.OpBEQ:
		o.branch(a == b, in, pc)
	case isa.OpBNE:
		o.branch(a != b, in, pc)
	case isa.OpBLT:
		o.branch(sa < sb, in, pc)
	case isa.OpBGE:
		o.branch(sa >= sb, in, pc)
	case isa.OpBLTU:
		o.branch(a < b, in, pc)
	case isa.OpBGEU:
		o.branch(a >= b, in, pc)

	case isa.OpJ:
		o.Taken = true
		o.Target = int(in.Imm)
	case isa.OpJAL:
		o.set(uint32(pc + 1))
		o.Taken = true
		o.Target = int(in.Imm)
	case isa.OpJR:
		o.Taken = true
		o.Target = int(int32(a))
	case isa.OpJALR:
		o.set(uint32(pc + 1))
		o.Taken = true
		o.Target = int(int32(a))

	// Byte-addressed control transfers for translated rv32 programs:
	// the link value is the byte address of the next instruction, and
	// indirect targets are byte addresses divided down to instruction
	// indices. A word-misaligned indirect target faults before any
	// register write (bit 0 is silently cleared, as rv32 JALR does).
	case isa.OpJALA:
		o.set(uint32(4 * (pc + 1)))
		o.Taken = true
		o.Target = int(in.Imm)
	case isa.OpJRA:
		t := (a + uint32(in.Imm)) &^ 1
		if t%4 != 0 {
			o.Exc = isa.ExcCodeMisaligned
			return o
		}
		o.Taken = true
		o.Target = int(t / 4)
	case isa.OpJALRA:
		t := (a + uint32(in.Imm)) &^ 1
		if t%4 != 0 {
			o.Exc = isa.ExcCodeMisaligned
			return o
		}
		o.set(uint32(4 * (pc + 1)))
		o.Taken = true
		o.Target = int(t / 4)

	case isa.OpTRAP:
		o.Exc = isa.ExcCodeSoftware
		o.TrapInfo = in.Imm
	case isa.OpHALT:
		o.Halt = true
	case isa.OpNOP:
		// nothing
	default:
		o.Exc = isa.ExcCodeBadInst
	}
	return o
}

func (o *Outcome) set(v uint32) {
	o.Result = v
	o.WroteRd = true
}

func (o *Outcome) branch(taken bool, in isa.Inst, pc int) {
	o.Taken = taken
	o.Target = pc + 1 + int(in.Imm)
}

// EffAddr computes a memory instruction's effective address from its
// rs1 value.
func EffAddr(in isa.Inst, a uint32) uint32 { return a + uint32(in.Imm) }

// AccessSize returns the access size in bytes of a memory opcode.
func AccessSize(op isa.Op) uint32 {
	switch op {
	case isa.OpLW, isa.OpSW:
		return isa.WordSize
	case isa.OpLH, isa.OpLHU, isa.OpSH:
		return 2
	case isa.OpLB, isa.OpLBU, isa.OpSB:
		return 1
	}
	return 0
}

// LoadValue converts the raw longword containing a load's target bytes
// into the register value the load produces. For LW the longword is the
// value; for byte loads the addressed byte is extracted and extended.
func LoadValue(op isa.Op, addr uint32, word uint32) uint32 {
	switch op {
	case isa.OpLW:
		return word
	case isa.OpLB:
		b := byte(word >> (8 * (addr % 4)))
		return uint32(int32(int8(b)))
	case isa.OpLBU:
		b := byte(word >> (8 * (addr % 4)))
		return uint32(b)
	case isa.OpLH:
		h := uint16(word >> (8 * (addr % 4)))
		return uint32(int32(int16(h)))
	case isa.OpLHU:
		h := uint16(word >> (8 * (addr % 4)))
		return uint32(h)
	}
	return word
}

// StoreBytes returns the longword-aligned write a store performs: the
// aligned address, the data longword (store value positioned at the
// addressed byte lanes), and the byte mask. This is exactly the entry
// format of the paper's difference buffers (physical longword address,
// byte mask, longword data).
func StoreBytes(op isa.Op, addr uint32, v uint32) (alignedAddr uint32, data uint32, mask uint8) {
	switch op {
	case isa.OpSW:
		return addr &^ 3, v, 0b1111
	case isa.OpSB:
		lane := addr % 4
		return addr &^ 3, (v & 0xff) << (8 * lane), 1 << lane
	case isa.OpSH:
		lane := addr % 4 // 0 or 2: a 2-aligned halfword never straddles
		return addr &^ 3, (v & 0xffff) << (8 * lane), 0b11 << lane
	}
	return addr &^ 3, v, 0b1111
}

func addOverflows(a, b int32) bool {
	s := a + b
	return (s > a) != (b > 0)
}

func subOverflows(a, b int32) bool {
	s := a - b
	return (s < a) != (b > 0)
}

// divSigned implements truncating division with the usual hardware
// convention for INT_MIN / -1: the quotient wraps to INT_MIN rather than
// trapping (Go would panic).
func divSigned(a, b int32) int32 {
	if a == -1<<31 && b == -1 {
		return -1 << 31
	}
	return a / b
}

func remSigned(a, b int32) int32 {
	if a == -1<<31 && b == -1 {
		return 0
	}
	return a % b
}

func boolTo32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Expand cracks an instruction into its constituent operations. Scalar
// instructions expand to themselves. Vector instructions expand to
// VectorLen scalar micro-operations over consecutive registers and
// addresses, element 0 first; both the reference interpreter and the
// out-of-order machines execute the same expansion, with sequential
// element semantics (element i architecturally precedes element i+1).
func Expand(in isa.Inst) []isa.Inst {
	if !in.Op.IsVector() {
		return []isa.Inst{in}
	}
	out := make([]isa.Inst, isa.VectorLen)
	for i := 0; i < isa.VectorLen; i++ {
		e := in
		switch in.Op {
		case isa.OpVLW:
			e.Op = isa.OpLW
			e.Rd = in.Rd + isa.Reg(i)
			e.Imm = in.Imm + int32(4*i)
		case isa.OpVSW:
			e.Op = isa.OpSW
			e.Rs2 = in.Rs2 + isa.Reg(i)
			e.Imm = in.Imm + int32(4*i)
		case isa.OpVADD:
			e.Op = isa.OpADD
			e.Rd = in.Rd + isa.Reg(i)
			e.Rs1 = in.Rs1 + isa.Reg(i)
			e.Rs2 = in.Rs2 + isa.Reg(i)
		}
		out[i] = e
	}
	return out
}
