// Writeback: the §3.2.2 cache study. Compares repair Algorithm 3(a)
// (conservative dirty bits) with 3(b) (hazard bits + Table 1) on a
// repair-heavy run, and write-back against write-through — the
// simulation the paper says is needed to quantify 3(b)'s gain, plus the
// claim that write-back caches need no extra repair machinery.
//
//	go run ./examples/writeback
package main

import (
	"fmt"
	"log"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

func run(kernel string, ms machine.MemSystemKind, pol cache.Policy) *machine.Result {
	k, err := workload.ByName(kernel)
	if err != nil {
		log.Fatal(err)
	}
	cc := cache.Config{Sets: 8, Ways: 1, LineBytes: 16, Policy: pol}
	res, err := machine.Run(k.Load(), machine.Config{
		Scheme: core.NewSchemeTight(4, 0),
		// A deliberately bad predictor maximises B-repairs, which is
		// where the two repair algorithms diverge.
		Predictor: bpred.NewTaken(),
		Speculate: true,
		MemSystem: ms,
		Cache:     cc,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("Algorithm 3(a) vs 3(b): write-backs after repair-heavy runs")
	fmt.Println("kernel     repairs   3(a) wb   3(b) wb   saved   dirty-sets avoided")
	for _, kernel := range []string{"sieve", "bubble", "memcpy", "recfib"} {
		a := run(kernel, machine.MemBackward3a, cache.WriteBack)
		b := run(kernel, machine.MemBackward3b, cache.WriteBack)
		fmt.Printf("%-10s %-9d %-9d %-9d %-7d %d\n",
			kernel, a.Stats.BRepairs+a.Stats.ERepairs,
			a.Cache.WriteBacks, b.Cache.WriteBacks,
			a.Cache.WriteBacks-b.Cache.WriteBacks,
			b.Cache.RepairWriteBacksAvoided)
	}

	fmt.Println("\nwrite-back vs write-through under the backward difference")
	fmt.Println("(the paper, correcting [5]: no waiting or extra buffering needed)")
	fmt.Println("kernel     policy          cycles   store-stalls   memory writes")
	for _, kernel := range []string{"sieve", "memcpy"} {
		wb := run(kernel, machine.MemBackward3b, cache.WriteBack)
		wt := run(kernel, machine.MemBackward3b, cache.WriteThrough)
		fmt.Printf("%-10s %-15s %-8d %-14d %d\n", kernel, "write-back",
			wb.Stats.Cycles, wb.Stats.StallCycles[8], wb.Cache.WriteBacks)
		fmt.Printf("%-10s %-15s %-8d %-14d %d (every store)\n", kernel, "write-through",
			wt.Stats.Cycles, wt.Stats.StallCycles[8], int(wt.Diff.Pushes))
	}
}
