// Command gen regenerates internal/rv32/testdata: it rebuilds every
// corpus binary from the in-tree builders, runs each translated
// program on the reference interpreter, and rewrites golden.json with
// the resulting architectural digests. Run it from the repo root after
// changing the corpus builders or the lowering:
//
//	go run ./internal/rv32/gen
//
// TestCorpusRegeneration and TestCorpusGolden pin the committed files
// to what this command produces.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/refsim"
	"repro/internal/rv32"
)

// Golden is the per-binary digest record in golden.json.
type Golden struct {
	Entry      int    `json:"entry"`      // internal instruction index
	Retired    int    `json:"retired"`    // instructions architecturally completed
	Halted     bool   `json:"halted"`     // must be true for corpus programs
	Exceptions int    `json:"exceptions"` // traps + faults observed (incl. demand paging)
	StateHash  string `json:"state_hash"` // refsim.ArchState.Hash of the final state
}

func main() {
	log.SetFlags(0)
	outDir := "internal/rv32/testdata"
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	corpus, err := rv32.BuildCorpus()
	if err != nil {
		log.Fatal(err)
	}
	files := make([]string, 0, len(corpus))
	for f := range corpus {
		files = append(files, f)
	}
	sort.Strings(files)

	goldens := make(map[string]Golden)
	for _, f := range files {
		data := corpus[f]
		if err := os.WriteFile(filepath.Join(outDir, f), data, 0o644); err != nil {
			log.Fatal(err)
		}
		name := strings.TrimSuffix(f, filepath.Ext(f))
		p, err := rv32.LoadProgram(name, data)
		if err != nil {
			log.Fatalf("%s: %v", f, err)
		}
		res, err := refsim.Run(p, refsim.Options{})
		if err != nil {
			log.Fatalf("%s: %v", f, err)
		}
		if !res.Halted {
			log.Fatalf("%s: did not halt (retired %d, timed out %v)", f, res.Retired, res.TimedOut)
		}
		st := &refsim.ArchState{Regs: res.Regs, Mem: res.Mem}
		goldens[name] = Golden{
			Entry:      p.Entry,
			Retired:    res.Retired,
			Halted:     res.Halted,
			Exceptions: len(res.Exceptions),
			StateHash:  st.Hash(),
		}
		fmt.Printf("%-12s %6d bytes  retired %-8d exceptions %-3d %s\n",
			f, len(data), res.Retired, len(res.Exceptions), goldens[name].StateHash[:16])
	}

	j, err := json.MarshalIndent(goldens, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(outDir, "golden.json"), append(j, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d binaries + golden.json to %s\n", len(files), outDir)
}
