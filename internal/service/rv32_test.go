package service

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/rv32"
)

// TestProgramSpecCanonicalization: a corpus name reference in the
// program descriptor collapses to the equivalent workload spelling
// (one cache entry for both), inline images are content-addressed, and
// malformed descriptors fail at canonicalization.
func TestProgramSpecCanonicalization(t *testing.T) {
	ref := Spec{Kind: "sim", Program: &ProgramSpec{Kind: " RV32 ", Name: " Fib "}}
	wl := Spec{Kind: "sim", Workload: "rv32:fib"}
	if ka, kb := mustKey(t, ref), mustKey(t, wl); ka != kb {
		t.Errorf("name-ref and workload spellings split the cache: %s vs %s", ka, kb)
	}
	canon, err := ref.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if canon.Program != nil || canon.Workload != "rv32:fib" {
		t.Errorf("canonical form kept the descriptor: %+v", canon)
	}

	data, err := rv32.CorpusBytes("fib")
	if err != nil {
		t.Fatal(err)
	}
	inline := Spec{Kind: "sim", Program: &ProgramSpec{Kind: "rv32", Data: data}}
	kInline := mustKey(t, inline)
	if kInline == mustKey(t, wl) {
		t.Error("inline image and corpus reference share a cache entry")
	}
	// Same bytes, same key; different bytes, different key.
	dup := append([]byte(nil), data...)
	if k := mustKey(t, Spec{Kind: "sim", Program: &ProgramSpec{Kind: "rv32", Data: dup}}); k != kInline {
		t.Error("identical inline bytes landed on distinct cache entries")
	}
	other, err := rv32.CorpusBytes("sort")
	if err != nil {
		t.Fatal(err)
	}
	if k := mustKey(t, Spec{Kind: "sim", Program: &ProgramSpec{Kind: "rv32", Data: other}}); k == kInline {
		t.Error("different inline bytes collided on one cache entry")
	}

	bad := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown kind", Spec{Kind: "sim", Program: &ProgramSpec{Kind: "elf64", Name: "fib"}}, "program kind"},
		{"both sources", Spec{Kind: "sim", Workload: "fib", Program: &ProgramSpec{Kind: "rv32", Name: "fib"}}, "exactly one"},
		{"empty descriptor", Spec{Kind: "sim", Program: &ProgramSpec{Kind: "rv32"}}, "corpus name or inline data"},
		{"unknown corpus name", Spec{Kind: "sim", Program: &ProgramSpec{Kind: "rv32", Name: "nope"}}, "no corpus binary"},
		{"malformed image", Spec{Kind: "sim", Program: &ProgramSpec{Kind: "rv32", Data: []byte{1, 2, 3}}}, "multiple of 4"},
		{"campaign both sources", Spec{Kind: "campaign", Workload: "fib", Program: &ProgramSpec{Kind: "rv32", Name: "fib"}}, "exactly one"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.spec.Canonicalize(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %v, want substring %q", err, tc.want)
			}
		})
	}

	// Sweeps cannot carry a program; the canonical form drops it.
	sw, err := Spec{Kind: "sweep", Experiment: "C5", Program: &ProgramSpec{Kind: "rv32", Name: "fib"}}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if sw.Program != nil {
		t.Error("sweep kept a program descriptor")
	}
}

// TestRV32SimJob: an inline rv32 binary submitted as a sim job executes
// end to end and halts — the full service path (canonicalize, cache
// key, program load, pooled run) works on compiled code.
func TestRV32SimJob(t *testing.T) {
	data, err := rv32.CorpusBytes("crc32")
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Kind: "sim", Program: &ProgramSpec{Kind: "rv32", Name: "crc32-inline", Data: data}}
	key, canon, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	res, err := execute(context.Background(), key, canon)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sim == nil || !res.Sim.Halted {
		t.Fatalf("sim summary: %+v", res.Sim)
	}
}

// TestBatchRoundTripRV32: a translated rv32 corpus program survives the
// cluster wire codec — EncodeBatch accepts it (the extended ISA ops
// round-trip the instruction encoder), and the decoded program is
// identical through JSON, so remote batch lanes run exactly what a
// local run would.
func TestBatchRoundTripRV32(t *testing.T) {
	for _, name := range rv32.CorpusNames() {
		t.Run(name, func(t *testing.T) {
			p, err := rv32.CorpusProgram(name)
			if err != nil {
				t.Fatal(err)
			}
			ms := MachineSpec{}
			if err := ms.canonicalize(); err != nil {
				t.Fatal(err)
			}
			cfg, err := ms.machineConfig()
			if err != nil {
				t.Fatal(err)
			}
			bs, ok := EncodeBatch(p, []machine.Config{cfg})
			if !ok {
				t.Fatal("EncodeBatch declined a corpus program")
			}
			wire, err := json.Marshal(bs)
			if err != nil {
				t.Fatal(err)
			}
			var back BatchSpec
			if err := json.Unmarshal(wire, &back); err != nil {
				t.Fatal(err)
			}
			got, err := back.program()
			if err != nil {
				t.Fatal(err)
			}
			if got.Entry != p.Entry || !reflect.DeepEqual(got.Code, p.Code) || !reflect.DeepEqual(got.Data, p.Data) {
				t.Error("program did not survive the wire codec byte-identically")
			}
		})
	}
}
