package fault

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/machine"
)

// Event is one issue event of the fault-free baseline run, as captured
// by the campaign recorder through the machine's probe seam. Event
// index == position in the recorded stream == the Injection.Event
// coordinate space.
type Event struct {
	Seq     uint64
	PC      int
	Inst    isa.Inst // the issued micro-operation (cracked vector element)
	True    bool     // on the architecturally correct path at issue
	Precise bool     // issued in single-step mode
	Ckpts   int      // cumulative checkpoints established at issue
	Repairs int      // cumulative E+B repairs at issue
	Excepts bool     // the operation delivered an architectural exception
	Cycle   int64    // machine cycle at issue — the replay-cost axis
	Retired int      // shadow-oracle retirement count at issue
}

// access is one completed memory access of the baseline run.
type access struct {
	issueEvent int    // issue-event index of the accessing operation
	wbAfter    int    // issue events recorded when the access delivered
	addr       uint32 // aligned longword
	mask       uint8  // store byte mask (0 for loads)
	store      bool
}

// recorder captures the baseline issue stream and access history.
type recorder struct {
	events []Event
	accs   []access
	seqIdx map[uint64]int // last issue event per sequence number
}

func newRecorder() *recorder {
	return &recorder{seqIdx: make(map[uint64]int)}
}

func (r *recorder) PreIssue(m *machine.Machine, seq uint64, pc int, in isa.Inst) {
	st := m.Scheme().Stats()
	r.seqIdx[seq] = len(r.events)
	r.events = append(r.events, Event{
		Seq:     seq,
		PC:      pc,
		Inst:    in,
		True:    m.Precise() || m.OnTruePathAt(pc),
		Precise: m.Precise(),
		Ckpts:   st.Checkpoints,
		Repairs: st.ERepairs + st.BRepairs,
		Cycle:   m.Cycle(),
		Retired: m.OracleRetired(),
	})
}

func (r *recorder) PostWriteback(m *machine.Machine, w machine.Writeback) {
	idx, ok := r.seqIdx[w.Seq()]
	if !ok {
		return
	}
	if w.Exc() != isa.ExcCodeNone {
		r.events[idx].Excepts = true
		return
	}
	if !w.Accessed() || !(w.IsLoad() || w.IsStore()) {
		return
	}
	a := access{
		issueEvent: idx,
		wbAfter:    len(r.events),
		addr:       w.Addr() &^ 3,
		store:      w.IsStore(),
	}
	if w.IsStore() {
		_, a.mask = w.StoreMask()
	}
	r.accs = append(r.accs, a)
}

// Plan is the enumerated, pruned, and equivalence-collapsed campaign.
type Plan struct {
	// Raw counts every enumerated (model × location × event) point.
	Raw int
	// Exec holds the injections that actually run; Covers[i] is how
	// many raw points Exec[i] accounts for (its equivalence-class size,
	// 1 for uncollapsed points). Members[i] lists the class's raw
	// points (nil when Covers[i] == 1) — kept so the validation tests
	// can run non-representative members at full fidelity.
	Exec    []Injection
	Covers  []int
	Members [][]Injection
	// Pruned holds the dead-value points statically classified as
	// masked (target overwritten before any use, no repair can
	// resurrect it). They are not run; the sampled full-fidelity
	// validation test re-runs a subset and asserts Masked.
	Pruned []Injection
	// Placement is the campaign's checkpoint-placement solution: the
	// trace snapshot points minimizing expected total replay over the
	// executed injection set. Nil when the plan has no injections.
	Placement *Placement
}

// Executed returns the number of injection runs the plan requires.
func (p *Plan) Executed() int { return len(p.Exec) }

// CoverageRatio is raw points per executed injection — the campaign's
// pruning/collapsing leverage.
func (p *Plan) CoverageRatio() float64 {
	if len(p.Exec) == 0 {
		return 0
	}
	return float64(p.Raw) / float64(len(p.Exec))
}

// buildPlan enumerates the fault space against the recorded baseline.
//
// Pruning (flip models) is the dead-value rule: a flip is statically
// masked iff scanning forward from its event, the first reference to
// the target is an architecturally-effective overwrite — and no repair
// occurs at or after the event in the baseline (a repair could recall a
// checkpoint backup or replay an undo log holding the corrupt value,
// resurrecting it past the overwrite). Any read first, a wrong-path or
// excepting overwrite, or no reference at all (the flip survives into
// the final state) keeps the point live.
//
// Collapsing (detected models) is Dietrich-style checkpoint-interval
// equivalence: two detected faults flagged in the same checkpoint
// interval squash to the same checkpoint and re-execute the same
// instructions, so one representative per interval is executed and
// credited with the whole class. Classes only form over events with a
// repair-free baseline tail: an architectural repair between arming and
// writeback could squash the target operation and shift where the
// injection lands, breaking interval equivalence.
func buildPlan(rec *recorder, totalRepairs int, cc *Config) *Plan {
	events := rec.events
	plan := &Plan{}
	stride := cc.Stride
	if stride < 1 {
		stride = 1
	}

	noRepairsAfter := func(e int) bool { return events[e].Repairs == totalRepairs }

	regs := cc.Regs
	if regs == nil {
		regs = referencedRegs(events)
	}
	words := cc.Words
	if words == nil {
		words = topWords(rec.accs, cc.maxWords())
	}

	addExec := func(inj Injection, covers int, members []Injection) {
		plan.Exec = append(plan.Exec, inj)
		plan.Covers = append(plan.Covers, covers)
		plan.Members = append(plan.Members, members)
	}

	for _, model := range cc.models() {
		// Eligible event list for this model.
		var elig []int
		for e := range events {
			switch model {
			case RegFlip, MemFlip:
				elig = append(elig, e)
			case FUCorrupt, FUDetected:
				if _, hasDest := events[e].Inst.Dest(); hasDest && !events[e].Precise && !events[e].Excepts {
					elig = append(elig, e)
				}
			case SpuriousExc:
				if !events[e].Precise && !events[e].Excepts {
					elig = append(elig, e)
				}
			}
		}
		var strided []int
		for i := 0; i < len(elig); i += stride {
			strided = append(strided, elig[i])
		}

		switch model {
		case RegFlip:
			for ti, r := range regs {
				for _, e := range strided {
					plan.Raw++
					inj := Injection{Model: model, Event: e, Reg: r, XOR: seedBit(cc.Seed, model, e, ti)}
					if deadReg(events, e, e, r) && noRepairsAfter(e) {
						plan.Pruned = append(plan.Pruned, inj)
					} else {
						addExec(inj, 1, nil)
					}
				}
			}
		case MemFlip:
			for ti, w := range words {
				for _, e := range strided {
					plan.Raw++
					bit := seedBit(cc.Seed, model, e, ti)
					inj := Injection{Model: model, Event: e, Addr: w, XOR: bit}
					if deadMem(rec.accs, events, e, w, bit) && noRepairsAfter(e) {
						plan.Pruned = append(plan.Pruned, inj)
					} else {
						addExec(inj, 1, nil)
					}
				}
			}
		case FUCorrupt:
			for _, e := range strided {
				plan.Raw++
				inj := Injection{Model: model, Event: e, XOR: seedBit(cc.Seed, model, e, 0)}
				rd, _ := events[e].Inst.Dest()
				if deadReg(events, e, e+1, rd) && noRepairsAfter(e) {
					plan.Pruned = append(plan.Pruned, inj)
				} else {
					addExec(inj, 1, nil)
				}
			}
		case FUDetected, SpuriousExc:
			// Collapse by checkpoint interval; events without a
			// repair-free tail run individually.
			classes := make(map[int][]Injection)
			var order []int
			for _, e := range strided {
				plan.Raw++
				inj := Injection{Model: model, Event: e, XOR: seedBit(cc.Seed, model, e, 0)}
				if !noRepairsAfter(e) {
					addExec(inj, 1, nil)
					continue
				}
				key := events[e].Ckpts
				if _, seen := classes[key]; !seen {
					order = append(order, key)
				}
				classes[key] = append(classes[key], inj)
			}
			for _, key := range order {
				members := classes[key]
				if len(members) == 1 {
					addExec(members[0], 1, nil)
				} else {
					addExec(members[0], len(members), members)
				}
			}
		}
	}
	return plan
}

// referencedRegs returns the registers the baseline stream reads or
// writes, ascending. Flipping anything else is trivially dead.
func referencedRegs(events []Event) []isa.Reg {
	var seen [isa.NumRegs]bool
	for i := range events {
		in := events[i].Inst
		rs, n := in.Sources()
		for k := 0; k < n; k++ {
			seen[rs[k]] = true
		}
		if rd, ok := in.Dest(); ok {
			seen[rd] = true
		}
	}
	var regs []isa.Reg
	for r := 1; r < isa.NumRegs; r++ {
		if seen[r] {
			regs = append(regs, isa.Reg(r))
		}
	}
	return regs
}

// topWords returns the n most-accessed aligned longwords of the
// baseline run (ties broken by address), ascending by address.
func topWords(accs []access, n int) []uint32 {
	counts := make(map[uint32]int)
	for _, a := range accs {
		counts[a.addr]++
	}
	words := make([]uint32, 0, len(counts))
	for w := range counts {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		if counts[words[i]] != counts[words[j]] {
			return counts[words[i]] > counts[words[j]]
		}
		return words[i] < words[j]
	})
	if len(words) > n {
		words = words[:n]
	}
	sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
	return words
}

// deadReg reports whether a corruption of register r materialising at
// event e is dead: scanning the baseline stream from scanFrom, the
// first reference to r is an architecturally-effective overwrite
// (true-path, non-excepting, destination r) before any read. The caller
// must additionally check the repair-free-tail condition.
func deadReg(events []Event, e, scanFrom int, r isa.Reg) bool {
	if r == 0 {
		return true // R0 reads as zero; any flip is architecturally invisible
	}
	for j := scanFrom; j < len(events); j++ {
		in := events[j].Inst
		rs, n := in.Sources()
		for k := 0; k < n; k++ {
			if rs[k] == r {
				return false
			}
		}
		if rd, ok := in.Dest(); ok && rd == r {
			return events[j].True && !events[j].Excepts
		}
	}
	return false // survives into the final register state
}

// deadMem reports whether flipping bit `bit` of word addr at event e is
// dead: no in-flight access to the word straddles the flip (issued
// before e, delivered after — its access time relative to the flip is
// unknown), and the first access from event e onward (same-word
// accesses execute in issue order under the LSQ's per-longword
// ordering) is a true-path, non-excepting store whose byte mask covers
// the flipped bit. The caller must additionally check the
// repair-free-tail condition.
func deadMem(accs []access, events []Event, e int, addr uint32, bit uint32) bool {
	byteBit := uint8(1) << (bitIndex(bit) / 8)
	first := -1
	for i, a := range accs {
		if a.addr != addr {
			continue
		}
		if a.issueEvent < e {
			if a.wbAfter > e {
				return false // in-flight across the flip
			}
			continue
		}
		if first < 0 || accs[i].issueEvent < accs[first].issueEvent {
			first = i
		}
	}
	if first < 0 {
		return false // never accessed again: flip survives into final memory
	}
	a := accs[first]
	ev := events[a.issueEvent]
	return a.store && a.mask&byteBit != 0 && ev.True && !ev.Excepts
}

// bitIndex returns the index of the single set bit of mask.
func bitIndex(mask uint32) uint32 {
	for i := uint32(0); i < 32; i++ {
		if mask&(1<<i) != 0 {
			return i
		}
	}
	return 0
}
