// Package workload provides the programs the experiments and tests run:
// hand-written assembly kernels covering the classic small-benchmark
// space (loops, sorting, pointer chasing, recursion, byte processing),
// exception-heavy kernels that exercise E-repair, and parameterised
// synthetic generators exposing exactly the knobs the paper's §2.2
// analysis uses — branch density b, prediction difficulty, memory-write
// density, and exception rate.
package workload

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/asm"
	"repro/internal/prog"
)

// Kernel is one built-in benchmark program.
type Kernel struct {
	Name        string
	Description string
	Source      string
	// Excepts marks kernels that architecturally raise exceptions and
	// therefore need an E-repair-capable scheme.
	Excepts bool
	// loader, when non-nil, overrides the assembly path entirely —
	// rv32 corpus kernels translate compiled binaries instead of
	// assembling Source.
	loader func() (*prog.Program, error)
}

// loadCache memoizes Load: one assembly per kernel per process. Every
// caller of the same kernel then shares one *prog.Program, which also
// lets per-program caches further down the stack (the reference-trace
// cache in refsim) hit across experiment configurations. Programs are
// read-only during simulation, so sharing is safe.
var loadCache sync.Map // kernel name -> *prog.Program

// Load assembles the kernel, memoized per process.
func (k Kernel) Load() *prog.Program {
	if k.loader != nil {
		// Loader-backed kernels (the rv32 corpus) memoize underneath
		// by content hash.
		p, err := k.loader()
		if err != nil {
			panic(err) // corpus kernels are compile-time-known; cannot fail
		}
		return p
	}
	if p, ok := loadCache.Load(k.Name); ok {
		return p.(*prog.Program)
	}
	// Assemble outside any lock; concurrent first calls may both
	// assemble, LoadOrStore picks a single winner for the process.
	p, _ := loadCache.LoadOrStore(k.Name, asm.MustAssemble(k.Name, k.Source))
	return p.(*prog.Program)
}

// Kernels returns all built-in kernels.
func Kernels() []Kernel { return kernels }

// KernelNames returns the kernel names in registry order.
func KernelNames() []string {
	names := make([]string, len(kernels))
	for i, k := range kernels {
		names[i] = k.Name
	}
	return names
}

// ByName returns the named kernel. Names with an "rv32:" prefix
// resolve to translated corpus binaries (see rv32.go) rather than
// assembly kernels.
func ByName(name string) (Kernel, error) {
	if strings.HasPrefix(name, rv32Prefix) {
		return rv32ByName(name)
	}
	for _, k := range kernels {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("workload: unknown kernel %q (have %s, %s)", name, strings.Join(KernelNames(), ", "), strings.Join(RV32Names(), ", "))
}

var kernels = []Kernel{
	{
		Name:        "fib",
		Description: "iterative Fibonacci, branch-per-5-instruction loop",
		Source: `
    addi r1, r0, 24        ; n
    addi r2, r0, 0         ; a
    addi r3, r0, 1         ; b
loop:
    beq  r1, r0, done
    add  r4, r2, r3
    add  r2, r0, r3
    add  r3, r0, r4
    addi r1, r1, -1
    j    loop
done:
    add  r10, r0, r2
    sw   r10, result(r0)
    halt
.data 0x1000
result: .word 0
`,
	},
	{
		Name:        "bubble",
		Description: "bubble sort of 16 longwords, data-dependent branches",
		Source: `
    lw   r1, n(r0)
    addi r9, r0, arr
outer:
    addi r1, r1, -1
    beq  r1, r0, done
    addi r2, r0, 0
    add  r8, r0, r9
inner:
    lw   r3, 0(r8)
    lw   r4, 4(r8)
    bge  r4, r3, noswap
    sw   r4, 0(r8)
    sw   r3, 4(r8)
noswap:
    addi r8, r8, 4
    addi r2, r2, 1
    blt  r2, r1, inner
    j    outer
done:
    halt
.data 0x1000
arr: .word 9, 3, 7, 1, 8, 2, 6, 0, 5, 4, 15, 11, 13, 12, 14, 10
n:   .word 16
`,
	},
	{
		Name:        "matmul",
		Description: "4x4 integer matrix multiply, multiplier-heavy",
		Source: `
    addi r1, r0, 0         ; i
iloop:
    addi r2, r0, 0         ; j
jloop:
    addi r3, r0, 0         ; k
    addi r4, r0, 0         ; acc
kloop:
    slli r5, r1, 2
    add  r5, r5, r3
    slli r5, r5, 2
    lw   r6, mata(r5)
    slli r7, r3, 2
    add  r7, r7, r2
    slli r7, r7, 2
    lw   r8, matb(r7)
    mul  r9, r6, r8
    add  r4, r4, r9
    addi r3, r3, 1
    slti r10, r3, 4
    bne  r10, r0, kloop
    slli r5, r1, 2
    add  r5, r5, r2
    slli r5, r5, 2
    sw   r4, matc(r5)
    addi r2, r2, 1
    slti r10, r2, 4
    bne  r10, r0, jloop
    addi r1, r1, 1
    slti r10, r1, 4
    bne  r10, r0, iloop
    halt
.data 0x1000
mata: .word 1,2,3,4, 5,6,7,8, 9,10,11,12, 13,14,15,16
matb: .word 17,18,19,20, 21,22,23,24, 25,26,27,28, 29,30,31,32
matc: .space 64
`,
	},
	{
		Name:        "memcpy",
		Description: "byte-wise copy of 64 bytes, store-per-6-instruction loop",
		Source: `
    addi r1, r0, src
    addi r2, r0, dst
    addi r3, r0, 64
cpy:
    lb   r4, 0(r1)
    sb   r4, 0(r2)
    addi r1, r1, 1
    addi r2, r2, 1
    addi r3, r3, -1
    bne  r3, r0, cpy
    halt
.data 0x1200
src: .byte 1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16
     .byte 17,18,19,20,21,22,23,24,25,26,27,28,29,30,31,32
     .byte 33,34,35,36,37,38,39,40,41,42,43,44,45,46,47,48
     .byte 49,50,51,52,53,54,55,56,57,58,59,60,61,62,63,64
dst: .space 64
`,
	},
	{
		Name:        "listsum",
		Description: "linked-list traversal, load-to-load dependence chain",
		Source: `
    lw   r1, head(r0)
    addi r2, r0, 0
lsum:
    beq  r1, r0, lend
    lw   r3, 0(r1)
    add  r2, r2, r3
    lw   r1, 4(r1)
    j    lsum
lend:
    sw   r2, lres(r0)
    halt
.data 0x1400
n7: .word 11, 0
n6: .word 2, n7
n5: .word 19, n6
n4: .word 4, n5
n3: .word 7, n4
n2: .word 3, n3
n1: .word 9, n2
n0: .word 5, n1
head: .word n0
lres: .word 0
`,
	},
	{
		Name:        "sieve",
		Description: "byte sieve of Eratosthenes to 200, store-heavy",
		Source: `
    addi r1, r0, 2
sievei:
    slti r9, r1, 200
    beq  r9, r0, count
    lb   r2, flags(r1)
    bne  r2, r0, nexti
    add  r3, r1, r1
sievej:
    slti r9, r3, 200
    beq  r9, r0, nexti
    addi r4, r0, 1
    sb   r4, flags(r3)
    add  r3, r3, r1
    j    sievej
nexti:
    addi r1, r1, 1
    j    sievei
count:
    addi r1, r0, 2
    addi r10, r0, 0
cnt:
    slti r9, r1, 200
    beq  r9, r0, sdone
    lb   r2, flags(r1)
    bne  r2, r0, notp
    addi r10, r10, 1
notp:
    addi r1, r1, 1
    j    cnt
sdone:
    sw   r10, nprimes(r0)
    halt
.data 0x2000
flags: .space 200
nprimes: .word 0
`,
	},
	{
		Name:        "dotprod",
		Description: "16-element dot product, multiplier and load pressure",
		Source: `
    addi r1, r0, 0
    addi r2, r0, 0
dp:
    slli r3, r1, 2
    lw   r4, va(r3)
    lw   r5, vb(r3)
    mul  r6, r4, r5
    add  r2, r2, r6
    addi r1, r1, 1
    slti r7, r1, 16
    bne  r7, r0, dp
    sw   r2, dres(r0)
    halt
.data 0x1000
va: .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
vb: .word 2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5
dres: .word 0
`,
	},
	{
		Name:        "strsearch",
		Description: "byte scan counting matches, highly biased branches",
		Source: `
    addi r1, r0, 0
    addi r2, r0, 0
    addi r3, r0, 101       ; 'e'
ss:
    lbu  r4, text(r1)
    beq  r4, r0, ssend
    bne  r4, r3, ssnext
    addi r2, r2, 1
ssnext:
    addi r1, r1, 1
    j    ss
ssend:
    sw   r2, sres(r0)
    halt
.data 0x1600
text: .byte 116,104,101,32,113,117,105,99,107,32,98,114,111,119,110
      .byte 32,102,111,120,32,106,117,109,112,101,100,32,111,118,101
      .byte 114,32,116,104,101,32,108,97,122,121,32,100,111,103,115
      .byte 32,101,118,101,114,121,32,101,118,101,110,105,110,103,0
sres: .word 0
`,
	},
	{
		Name:        "crc",
		Description: "bitwise CRC over 32 words, long dependence chains",
		Source: `
    addi r1, r0, 0
    addi r2, r0, -1
crcl:
    slli r3, r1, 2
    lw   r4, cdat(r3)
    xor  r2, r2, r4
    srli r5, r2, 31
    slli r2, r2, 1
    beq  r5, r0, crcn
    xori r2, r2, 0x1021
crcn:
    addi r1, r1, 1
    slti r6, r1, 32
    bne  r6, r0, crcl
    sw   r2, cres(r0)
    halt
.data 0x1800
cdat: .word 0x12345678, 0x9abcdef0, 0x0f1e2d3c, 0x4b5a6978
      .word 0x87969fa4, 0xb3c2d1e0, 0x13579bdf, 0x2468ace0
      .word 0xdeadbeef, 0xcafebabe, 0x01020304, 0x05060708
      .word 0x090a0b0c, 0x0d0e0f10, 0x11121314, 0x15161718
      .word 0x191a1b1c, 0x1d1e1f20, 0x21222324, 0x25262728
      .word 0x292a2b2c, 0x2d2e2f30, 0x31323334, 0x35363738
      .word 0x393a3b3c, 0x3d3e3f40, 0x41424344, 0x45464748
      .word 0x494a4b4c, 0x4d4e4f50, 0x51525354, 0x55565758
cres: .word 0
`,
	},
	{
		Name:        "recfib",
		Description: "recursive Fibonacci with a memory call stack and indirect returns",
		Source: `
    addi sp, r0, stack
    addi r1, r0, 12
    jal  r31, rfib
    sw   r2, rfres(r0)
    halt
rfib:
    slti r3, r1, 2
    beq  r3, r0, recurse
    add  r2, r0, r1
    jr   r31
recurse:
    sw   r1, 0(sp)
    sw   r31, 4(sp)
    addi sp, sp, 8
    addi r1, r1, -1
    jal  r31, rfib
    addi sp, sp, -8
    lw   r1, 0(sp)
    lw   r31, 4(sp)
    sw   r2, 0(sp)
    sw   r31, 4(sp)
    addi sp, sp, 8
    addi r1, r1, -2
    jal  r31, rfib
    addi sp, sp, -8
    lw   r3, 0(sp)
    lw   r31, 4(sp)
    add  r2, r2, r3
    jr   r31
.data 0x3000
stack: .space 512
rfres: .word 0
`,
	},
	{
		Name:        "pagedemo",
		Description: "demand paging (page faults) plus overflow and software traps",
		Excepts:     true,
		Source: `
    addi r1, r0, 0
    addi r2, r0, 0x8000    ; unmapped region: every page faults on first touch
    addi r6, r0, 0
pgl:
    slli r3, r1, 12
    add  r4, r2, r3
    sw   r1, 0(r4)
    lw   r5, 0(r4)
    add  r6, r6, r5
    addi r1, r1, 1
    slti r7, r1, 6
    bne  r7, r0, pgl
    lui  r8, 0x7fff
    ori  r8, r8, 0xffff
    addi r9, r0, 1
    addv r10, r8, r9       ; overflow trap (completes with wrapped result)
    trap 7                 ; software trap
    sw   r6, pres(r0)
    halt
.data 0x1000
pres: .word 0
`,
	},
	{
		Name:        "hanoi",
		Description: "towers of Hanoi (n=7), deep recursion and stack traffic",
		Source: `
    addi sp, r0, hstack
    addi r1, r0, 7         ; n
    addi r2, r0, 1         ; from
    addi r3, r0, 2         ; via
    addi r4, r0, 3         ; to
    addi r10, r0, 0        ; move counter
    jal  r31, hanoi
    sw   r10, hres(r0)
    halt
hanoi:
    beq  r1, r0, hret
    ; push n, from, via, to, ra
    sw   r1, 0(sp)
    sw   r2, 4(sp)
    sw   r3, 8(sp)
    sw   r4, 12(sp)
    sw   r31, 16(sp)
    addi sp, sp, 20
    ; hanoi(n-1, from, to, via)
    addi r1, r1, -1
    add  r5, r0, r3
    add  r3, r0, r4
    add  r4, r0, r5
    jal  r31, hanoi
    addi sp, sp, -20
    lw   r1, 0(sp)
    lw   r2, 4(sp)
    lw   r3, 8(sp)
    lw   r4, 12(sp)
    lw   r31, 16(sp)
    ; move disc
    addi r10, r10, 1
    ; push again for second recursion
    sw   r1, 0(sp)
    sw   r2, 4(sp)
    sw   r3, 8(sp)
    sw   r4, 12(sp)
    sw   r31, 16(sp)
    addi sp, sp, 20
    ; hanoi(n-1, via, from, to)
    addi r1, r1, -1
    add  r5, r0, r2
    add  r2, r0, r3
    add  r3, r0, r5
    jal  r31, hanoi
    addi sp, sp, -20
    lw   r1, 0(sp)
    lw   r2, 4(sp)
    lw   r3, 8(sp)
    lw   r4, 12(sp)
    lw   r31, 16(sp)
hret:
    jr   r31
.data 0x6000
hstack: .space 1024
hres: .word 0
`,
	},
	{
		Name:        "binsearch",
		Description: "binary search over 32 sorted longwords, hard-to-predict branches",
		Source: `
    addi r9, r0, 0         ; found-count
    addi r10, r0, 0        ; probe value
probe:
    addi r1, r0, 0         ; lo
    addi r2, r0, 32        ; hi (exclusive)
bs:
    bge  r1, r2, missed
    add  r3, r1, r2
    srli r3, r3, 1         ; mid
    slli r4, r3, 2
    lw   r5, stab(r4)
    beq  r5, r10, hit
    blt  r5, r10, golow
    add  r2, r0, r3        ; hi = mid
    j    bs
golow:
    addi r1, r3, 1         ; lo = mid+1
    j    bs
hit:
    addi r9, r9, 1
missed:
    addi r10, r10, 7
    slti r8, r10, 320
    bne  r8, r0, probe
    sw   r9, bsres(r0)
    halt
.data 0x1000
stab: .word 3, 9, 21, 27, 30, 42, 51, 60, 72, 75, 90, 99, 105, 111, 120, 126
      .word 141, 150, 153, 168, 180, 186, 195, 210, 213, 228, 231, 240, 252, 261, 273, 285
bsres: .word 0
`,
	},
	{
		Name:        "fir",
		Description: "8-tap FIR filter over 48 samples, MAC-heavy inner loop",
		Source: `
    addi r1, r0, 0         ; output index
fo:
    addi r2, r0, 0         ; tap
    addi r3, r0, 0         ; acc
fi:
    add  r4, r1, r2
    slli r5, r4, 2
    lw   r6, samples(r5)
    slli r7, r2, 2
    lw   r8, taps(r7)
    mul  r9, r6, r8
    add  r3, r3, r9
    addi r2, r2, 1
    slti r10, r2, 8
    bne  r10, r0, fi
    slli r5, r1, 2
    sw   r3, fout(r5)
    addi r1, r1, 1
    slti r10, r1, 40
    bne  r10, r0, fo
    halt
.data 0x2000
taps: .word 1, -2, 3, -4, 4, -3, 2, -1
samples: .word 5, 8, 13, 2, 7, 1, 9, 4, 6, 11, 3, 12, 10, 5, 8, 2
         .word 14, 7, 1, 9, 6, 13, 4, 10, 2, 8, 5, 11, 3, 7, 12, 1
         .word 9, 6, 4, 13, 8, 2, 10, 5, 7, 3, 11, 6, 1, 12, 4, 9
fout: .space 160
`,
	},
	{
		Name:        "bitcount",
		Description: "population count of 64 words via shift-and-mask loop",
		Source: `
    addi r1, r0, 0         ; index
    addi r9, r0, 0         ; total
bc:
    slli r2, r1, 2
    lw   r3, bdat(r2)
    addi r4, r0, 32        ; bit counter
bcl:
    andi r5, r3, 1
    add  r9, r9, r5
    srli r3, r3, 1
    addi r4, r4, -1
    bne  r4, r0, bcl
    addi r1, r1, 1
    slti r6, r1, 16
    bne  r6, r0, bc
    sw   r9, bcres(r0)
    halt
.data 0x2800
bdat: .word 0xffffffff, 0x0, 0xaaaaaaaa, 0x55555555, 0x12345678, 0x9abcdef0
      .word 0x1, 0x80000000, 0xf0f0f0f0, 0x0f0f0f0f, 0xdeadbeef, 0xcafebabe
      .word 0x7, 0x70, 0x700, 0x7000
bcres: .word 0
`,
	},
	{
		Name:        "vecadd",
		Description: "vector add over 32 elements (VLW/VADD/VSW, 4 ops per instruction)",
		Source: `
    addi r1, r0, 8
    addi r2, r0, vx
    addi r3, r0, vy
    addi r4, r0, vz
vloop:
    vlw  r8, 0(r2)
    vlw  r12, 0(r3)
    vadd r16, r8, r12
    vsw  r16, 0(r4)
    addi r2, r2, 16
    addi r3, r3, 16
    addi r4, r4, 16
    addi r1, r1, -1
    bne  r1, r0, vloop
    halt
.data 0x1000
vx: .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
    .word 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32
vy: .word 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000, 1100, 1200, 1300, 1400, 1500, 1600
    .word 1700, 1800, 1900, 2000, 2100, 2200, 2300, 2400, 2500, 2600, 2700, 2800, 2900, 3000, 3100, 3200
vz: .space 128
`,
	},
	{
		Name:        "vecfault",
		Description: "vector store straddling an unmapped page: mid-instruction fault, precise resume",
		Excepts:     true,
		Source: `
    addi r2, r0, vsrc
    vlw  r8, 0(r2)
    addi r3, r0, 0x7ff8    ; elements 0-1 in the mapped page, 2-3 fault
    vsw  r8, 0(r3)
    vlw  r12, 0(r3)        ; read everything back
    vadd r16, r8, r12
    addi r4, r0, vres
    vsw  r16, 0(r4)
    halt
.data 0x7000
vsrc: .word 11, 22, 33, 44
.data 0x1000
vres: .space 16
`,
	},
	{
		Name:        "vcopy",
		Description: "vector block copy, 64 longwords via VLW/VSW pairs",
		Source: `
    addi r1, r0, 16        ; 16 groups of 4
    addi r2, r0, vcsrc
    addi r3, r0, vcdst
vcl:
    vlw  r8, 0(r2)
    vsw  r8, 0(r3)
    addi r2, r2, 16
    addi r3, r3, 16
    addi r1, r1, -1
    bne  r1, r0, vcl
    halt
.data 0x2000
vcsrc: .word 0, 1, 4, 9, 16, 25, 36, 49, 64, 81, 100, 121, 144, 169, 196, 225
       .word 256, 289, 324, 361, 400, 441, 484, 529, 576, 625, 676, 729, 784, 841, 900, 961
       .word 1024, 1089, 1156, 1225, 1296, 1369, 1444, 1521, 1600, 1681, 1764, 1849, 1936, 2025, 2116, 2209
       .word 2304, 2401, 2500, 2601, 2704, 2809, 2916, 3025, 3136, 3249, 3364, 3481, 3600, 3721, 3844, 3969
vcdst: .space 256
`,
	},
	{
		Name:        "divzero",
		Description: "divide faults interleaved with normal divides",
		Excepts:     true,
		Source: `
    addi r1, r0, 100
    addi r2, r0, 0
    div  r3, r1, r2        ; fault; handler skips, r3 stays 0
    addi r4, r0, 7
    div  r5, r1, r4
    rem  r6, r1, r4
    add  r7, r5, r6
    rem  r8, r1, r2        ; fault; skipped
    sw   r7, dzres(r0)
    halt
.data 0x1000
dzres: .word 0
`,
	},
}
