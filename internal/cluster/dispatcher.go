package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
)

// ErrNoWorkers means dispatch was asked to route with an empty ring.
var ErrNoWorkers = errors.New("cluster: no live workers")

// Dispatcher routes canonical specs to workers by consistent hash and
// survives worker death: a failed attempt marks the worker dead
// (shrinking the ring) and retries on the node that inherits the key,
// up to a bounded number of attempts. Sub-job content is immutable and
// content-addressed, so a retry — wherever it lands, however often —
// yields the same bytes; retries affect only where and when, never
// what.
type Dispatcher struct {
	reg  *Registry
	ring *Ring
	// maxAttempts bounds distinct workers tried per sub-job.
	maxAttempts int
	// busyWait caps how long one 429 Retry-After is honored before
	// spilling to the next ring node.
	busyWait time.Duration

	mu      sync.Mutex
	clients map[string]*client.Client

	// Counters, exposed via the coordinator's /metrics section.
	dispatched   atomic.Int64 // sub-jobs sent (first attempts)
	retries      atomic.Int64 // additional attempts after a failure
	workerDeaths atomic.Int64 // dispatch-observed deaths
	busySpills   atomic.Int64 // 429s that moved a sub-job to another node
	peerFetches  atomic.Int64 // results recovered via GET /results/{key}
}

// NewDispatcher builds a dispatcher over a registry/ring pair.
func NewDispatcher(reg *Registry, ring *Ring) *Dispatcher {
	return &Dispatcher{
		reg:         reg,
		ring:        ring,
		maxAttempts: 3,
		busyWait:    2 * time.Second,
		clients:     make(map[string]*client.Client),
	}
}

func (d *Dispatcher) client(addr string) *client.Client {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.clients[addr]
	if !ok {
		c = client.New(addr)
		d.clients[addr] = c
	}
	return c
}

// FanWidth implements service.SubDispatcher.
func (d *Dispatcher) FanWidth() int { return d.ring.Size() }

// Dispatch implements service.SubDispatcher: route spec to its key's
// owner, failing over clockwise around the ring as workers die or shed
// load. An error reports that no worker could produce the result — the
// caller falls back to local execution.
func (d *Dispatcher) Dispatch(ctx context.Context, spec service.Spec) (*service.Result, error) {
	key, canon, err := spec.Key()
	if err != nil {
		return nil, err
	}
	d.dispatched.Add(1)
	tried := make(map[string]bool)
	var lastErr error = ErrNoWorkers
	for attempt := 0; attempt < d.maxAttempts; attempt++ {
		node := d.next(key, tried)
		if node == "" {
			break
		}
		if attempt > 0 {
			d.retries.Add(1)
			// A dead worker may have finished and published before
			// dying, and cheap results replicate: ask the surviving
			// nodes for the key before re-executing.
			if res := d.PeerFetch(ctx, key, tried); res != nil {
				return res, nil
			}
		}
		tried[node] = true
		res, err := d.runOn(ctx, node, key, canon)
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
		switch status := client.HTTPStatus(err); {
		case status == http.StatusTooManyRequests:
			// Loaded, not dead: honor (a bounded slice of) Retry-After
			// once, then spill to the next node.
			d.busySpills.Add(1)
			var busy *client.ErrTooBusy
			wait := d.busyWait
			if errors.As(err, &busy) && busy.RetryAfter < wait {
				wait = busy.RetryAfter
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		case status == 0 || status >= 500:
			// Transport failure or server error: the worker is gone (or
			// going). Remove it so every subsequent key routes around
			// it; its heartbeat re-adds it if it was only restarting.
			d.workerDeaths.Add(1)
			d.reg.MarkDead(node)
		default:
			// 4xx: the spec itself was refused; no other worker will
			// disagree.
			return nil, err
		}
	}
	return nil, fmt.Errorf("cluster: dispatch %.12s: %w", key, lastErr)
}

// next picks the first untried node in the key's failover sequence.
func (d *Dispatcher) next(key string, tried map[string]bool) string {
	for _, node := range d.ring.Sequence(key, len(tried)+1) {
		if !tried[node] {
			return node
		}
	}
	return ""
}

// runOn executes the spec synchronously on one worker. A worker that
// already holds the result answers from its cache without re-running.
func (d *Dispatcher) runOn(ctx context.Context, node, key string, canon service.Spec) (*service.Result, error) {
	sr, err := d.client(node).Run(ctx, canon)
	if err != nil {
		return nil, err
	}
	if sr.Result == nil {
		// The job terminated without a result: failed or cancelled on
		// the worker. Deterministic failures would fail locally too,
		// but the job may also have died to the worker's shutdown —
		// surface the state and let the caller's bounded retry decide.
		return nil, fmt.Errorf("cluster: worker %s finished %.12s without result: %s %s",
			node, key, sr.Job.State, sr.Job.Error)
	}
	return sr.Result, nil
}

// PeerFetch asks live workers (skipping `skip`) for a cached result by
// key, owner-first. It is the read side of the content-addressed
// design: any node holding the key's bytes can answer for any other.
func (d *Dispatcher) PeerFetch(ctx context.Context, key string, skip map[string]bool) *service.Result {
	for _, node := range d.ring.Sequence(key, d.ring.Size()) {
		if skip[node] {
			continue
		}
		fctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		res, err := d.client(node).Result(fctx, key)
		cancel()
		if err == nil && res != nil && res.Key == key {
			d.peerFetches.Add(1)
			return res
		}
		if ctx.Err() != nil {
			return nil
		}
	}
	return nil
}

// CounterView is the dispatcher's /metrics section.
type CounterView struct {
	Dispatched   int64 `json:"dispatched"`
	Retries      int64 `json:"retries"`
	WorkerDeaths int64 `json:"worker_deaths"`
	BusySpills   int64 `json:"busy_spills"`
	PeerFetches  int64 `json:"peer_fetches"`
}

// Counters snapshots the dispatch counters.
func (d *Dispatcher) Counters() CounterView {
	return CounterView{
		Dispatched:   d.dispatched.Load(),
		Retries:      d.retries.Load(),
		WorkerDeaths: d.workerDeaths.Load(),
		BusySpills:   d.busySpills.Load(),
		PeerFetches:  d.peerFetches.Load(),
	}
}
