package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Disk entry framing: a fixed header followed by the payload.
//
//	offset  size  field
//	0       4     magic "CKS1"
//	4       8     payload length (little-endian uint64)
//	12      32    SHA-256 of the payload
//	44      —     payload
//
// The checksum covers the payload only; the length field makes plain
// truncation detectable without hashing, and any header damage fails
// the magic or framing checks. Entries live directly under the root as
// <key>.res; temp files are dot-prefixed so a directory scan skips
// leftovers from a crash mid-write.
const (
	diskMagic  = "CKS1"
	diskHeader = 4 + 8 + sha256.Size
	diskSuffix = ".res"
)

// diskEntry is the in-memory index record of one on-disk entry.
type diskEntry struct {
	size    int64 // payload bytes (file size minus header)
	lastUse time.Time
}

// diskTier owns the store's disk directory. All methods are called with
// the owning Store's mutex held.
type diskTier struct {
	dir   string
	index map[string]*diskEntry
	bytes int64 // sum of payload sizes
}

func openDisk(dir string) (*diskTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	d := &diskTier{dir: dir, index: make(map[string]*diskEntry)}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || len(name) <= len(diskSuffix) ||
			name[len(name)-len(diskSuffix):] != diskSuffix || name[0] == '.' {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		size := info.Size() - diskHeader
		if size < 0 {
			size = 0 // malformed; read() will classify and delete it
		}
		d.index[name[:len(name)-len(diskSuffix)]] = &diskEntry{
			size:    size,
			lastUse: info.ModTime(),
		}
		d.bytes += size
	}
	return d, nil
}

func (d *diskTier) path(key string) string {
	return filepath.Join(d.dir, key+diskSuffix)
}

// read loads and verifies one entry. Any framing or checksum failure
// deletes the entry and counts it corrupt; the caller sees a miss
// either way.
func (d *diskTier) read(key string, st *Stats) ([]byte, bool) {
	e, ok := d.index[key]
	if !ok {
		return nil, false
	}
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		// The file vanished under us (external cleanup); drop the index
		// entry without counting corruption.
		d.drop(key, e)
		return nil, false
	}
	payload, ok := verify(data)
	if !ok {
		st.Corrupt++
		d.remove(key)
		return nil, false
	}
	e.lastUse = time.Now()
	// Re-index the verified size: the file may have been rewritten by a
	// concurrent Put since the index was built.
	d.bytes += int64(len(payload)) - e.size
	e.size = int64(len(payload))
	return payload, true
}

// verify checks an entry's framing and checksum, returning the payload.
func verify(data []byte) ([]byte, bool) {
	if len(data) < diskHeader || string(data[:4]) != diskMagic {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(data[4:12])
	payload := data[diskHeader:]
	if uint64(len(payload)) != n {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	for i := range sum {
		if sum[i] != data[12+i] {
			return nil, false
		}
	}
	return payload, true
}

// write persists one entry atomically: frame into a temp file in the
// same directory, fsync-free rename over the final name. Concurrent
// writers of one key each rename a complete file, so readers see one
// whole entry or the other, never a torn mix.
func (d *diskTier) write(key string, val []byte, st *Stats) {
	buf := make([]byte, diskHeader+len(val))
	copy(buf, diskMagic)
	binary.LittleEndian.PutUint64(buf[4:12], uint64(len(val)))
	sum := sha256.Sum256(val)
	copy(buf[12:12+sha256.Size], sum[:])
	copy(buf[diskHeader:], val)

	tmp, err := os.CreateTemp(d.dir, "."+key+".tmp-*")
	if err != nil {
		return // disk unavailable: degrade to memory-only silently
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	st.DiskWrites++
	if e, ok := d.index[key]; ok {
		d.bytes += int64(len(val)) - e.size
		e.size = int64(len(val))
		e.lastUse = time.Now()
	} else {
		d.index[key] = &diskEntry{size: int64(len(val)), lastUse: time.Now()}
		d.bytes += int64(len(val))
	}
}

// remove deletes an entry's file and index record.
func (d *diskTier) remove(key string) {
	e, ok := d.index[key]
	if !ok {
		return
	}
	os.Remove(d.path(key))
	d.drop(key, e)
}

func (d *diskTier) drop(key string, e *diskEntry) {
	d.bytes -= e.size
	delete(d.index, key)
}

// enforceBounds evicts least-recently-used entries until the byte bound
// holds, and drops entries older than maxAge (0 = no age bound).
func (d *diskTier) enforceBounds(maxBytes int64, maxAge time.Duration, st *Stats) {
	if maxAge > 0 {
		cutoff := time.Now().Add(-maxAge)
		for key, e := range d.index {
			if e.lastUse.Before(cutoff) {
				d.remove(key)
				st.DiskEvictions++
			}
		}
	}
	if d.bytes <= maxBytes {
		return
	}
	type aged struct {
		key string
		e   *diskEntry
	}
	order := make([]aged, 0, len(d.index))
	for key, e := range d.index {
		order = append(order, aged{key, e})
	}
	sort.Slice(order, func(i, j int) bool {
		if !order[i].e.lastUse.Equal(order[j].e.lastUse) {
			return order[i].e.lastUse.Before(order[j].e.lastUse)
		}
		return order[i].key < order[j].key
	})
	for _, a := range order {
		if d.bytes <= maxBytes || len(d.index) <= 1 {
			return
		}
		d.remove(a.key)
		st.DiskEvictions++
	}
}
