package core

import (
	"fmt"

	"repro/internal/diff"
	"repro/internal/isa"
	"repro/internal/regfile"
)

// SchemeLoose is the loosely merged scheme of §5.3 (Algorithm 4): every
// conditional branch gets a B-repair checkpoint, and a subset of those
// checkpoints — one roughly every Distance instructions, selected by
// the accumulating register when a B checkpoint is about to be reused —
// graduates into an E-repair checkpoint instead of being discarded.
// cE + cB + 1 logical spaces are used. Because B backup spaces are
// reused as soon as their branch verifies while E spaces must wait for
// their range to drain, the loose coupling keeps B-repairs fast while
// needing far fewer long-lived E spaces than a per-branch E scheme
// would.
//
// Age invariant: every E checkpoint is older than every B checkpoint
// (graduation happens at the old end of the B window), so a B-repair
// never touches the E window and an E-repair discards the whole B
// window.
type SchemeLoose struct {
	CE, CB   int
	Distance int

	ewin window
	bwin window
	regs *regfile.File
	mem  diff.MemSystem
	eng  Engine

	lastEBorn     uint64 // BornSeq of the most recent E checkpoint (the accumulating register's base)
	bBlocked      bool
	blockedBranch uint64
	blockedPC     int
	stats         Stats
}

// NewSchemeLoose returns a loosely merged scheme with cE E-repair
// spaces, cB B-repair spaces, and E checkpoints at the first branch
// boundary past every distance issued instructions.
func NewSchemeLoose(cE, cB, distance int) *SchemeLoose {
	if cE < 1 || cB < 1 {
		panic("core: SchemeLoose needs at least one space per role")
	}
	if distance < 1 {
		panic("core: SchemeLoose distance must be positive")
	}
	return &SchemeLoose{
		CE: cE, CB: cB, Distance: distance,
		ewin: newWindow(0, cE),
		bwin: newWindow(1, cB),
	}
}

// Name implements Scheme.
func (s *SchemeLoose) Name() string {
	return fmt.Sprintf("loose(cE=%d,cB=%d,dist=%d)", s.CE, s.CB, s.Distance)
}

// Spaces implements Scheme.
func (s *SchemeLoose) Spaces() int { return s.CE + s.CB + 1 }

// RegStackCaps implements Scheme.
func (s *SchemeLoose) RegStackCaps() []int { return []int{s.CE, s.CB} }

// Attach implements Scheme.
func (s *SchemeLoose) Attach(regs *regfile.File, mem diff.MemSystem, eng Engine) {
	s.regs, s.mem, s.eng = regs, mem, eng
}

// Restart implements Scheme: an initial E checkpoint anchors the
// accumulating register and makes early exceptions repairable.
func (s *SchemeLoose) Restart(pc int, nextSeq uint64) {
	s.ewin.clear()
	s.bwin.clear()
	s.regs.Clear()
	s.bBlocked = false
	s.lastEBorn = nextSeq - 1
	ck := s.ewin.take()
	ck.BornSeq, ck.PC = nextSeq-1, pc
	s.ewin.push(ck)
	s.regs.Push(s.ewin.stack)
	s.stats.Checkpoints++
}

// CanIssue implements Scheme.
func (s *SchemeLoose) CanIssue(_ isa.Inst, _ int) (bool, string) {
	if s.bBlocked && !s.tryPending() {
		return false, "check blocked: no reusable B backup space (or E graduation blocked)"
	}
	return true, ""
}

// newestOverall returns the youngest active checkpoint of either role.
func (s *SchemeLoose) newestOverall() *Checkpoint {
	if n := s.bwin.newest(); n != nil {
		return n
	}
	return s.ewin.newest()
}

// OnIssue implements Scheme.
func (s *SchemeLoose) OnIssue(op OpInfo, nextPC int) {
	n := s.newestOverall()
	n.Issued++
	n.Active++
	if op.IsStore {
		n.Stores++
	}
	if !op.IsBranch {
		return
	}
	if s.establishB(op.Seq, nextPC) {
		return
	}
	s.bBlocked = true
	s.blockedBranch = op.Seq
	s.blockedPC = nextPC
}

func (s *SchemeLoose) tryPending() bool {
	if !s.bBlocked {
		return true
	}
	if s.establishB(s.blockedBranch, s.blockedPC) {
		s.bBlocked = false
		return true
	}
	return false
}

// establishB is Algorithm 4's check action: push a B checkpoint,
// reusing the oldest B space by either graduating it to an E checkpoint
// (case 2: enough instructions accumulated) or merging its bookkeeping
// into the newest E checkpoint and discarding it (case 1).
func (s *SchemeLoose) establishB(branchSeq uint64, pc int) bool {
	if s.bwin.full() {
		old := s.bwin.oldest()
		if old.Pend {
			return false
		}
		if old.BornSeq-s.lastEBorn >= uint64(s.Distance) {
			// Case 2: graduate. Needs a free E space.
			if s.ewin.full() {
				if !s.eOldestDrained() {
					return false
				}
				s.ewin.recycle(s.ewin.retireOldest())
				s.regs.DropOldest(s.ewin.stack)
				s.stats.Retired++
			}
			// Not recycled: the record graduates into the E window.
			s.bwin.retireOldest()
			s.regs.TransferOldest(s.bwin.stack, s.ewin.stack)
			old.Pend = false
			s.ewin.push(old)
			s.lastEBorn = old.BornSeq
			s.stats.Graduated++
		} else {
			// Case 1: not enough instructions collected; fold the
			// checkpoint's segment into the newest E checkpoint's range.
			// old's fields are read below before any take can reuse it.
			s.bwin.recycle(s.bwin.retireOldest())
			s.regs.DropOldest(s.bwin.stack)
			s.stats.Retired++
			tgt := s.ewin.newest()
			tgt.Active += old.Active
			tgt.Issued += old.Issued
			tgt.Stores += old.Stores
			tgt.ExceptSeqs = append(tgt.ExceptSeqs, old.ExceptSeqs...)
		}
		s.mem.Release(s.ewin.oldest().BornSeq + 1)
	}
	nck := s.bwin.take()
	nck.BornSeq, nck.PC, nck.BranchSeq, nck.Pend = branchSeq, pc, branchSeq, true
	s.bwin.push(nck)
	s.regs.Push(s.bwin.stack)
	s.stats.Checkpoints++
	return true
}

// eOldestDrained reports whether the oldest E checkpoint's E-repair
// range has no active instructions and no pending exception — the
// retire condition. When it is the only E checkpoint its range extends
// through every live B segment.
func (s *SchemeLoose) eOldestDrained() bool {
	old := s.ewin.oldest()
	if old.Except() {
		return false
	}
	total := old.Active
	if s.ewin.len() == 1 {
		for _, b := range s.bwin.cks {
			total += b.Active
		}
	}
	return total == 0
}

// Depths implements Scheme.
func (s *SchemeLoose) Depths(seq uint64, out []int) {
	out[0] = s.ewin.depthFor(seq)
	out[1] = s.bwin.depthFor(seq)
}

// OnDeliver implements Scheme.
func (s *SchemeLoose) OnDeliver(seq uint64, exc bool) {
	own := s.bwin.owner(seq)
	if own == nil {
		own = s.ewin.owner(seq)
	}
	if own == nil {
		return
	}
	own.Active--
	if exc {
		own.ExceptSeqs = append(own.ExceptSeqs, seq)
	}
}

// OnBranchResolve implements Scheme.
func (s *SchemeLoose) OnBranchResolve(seq uint64, mispredicted bool, actualNext int) bool {
	if s.bBlocked && s.blockedBranch == seq {
		s.bBlocked = false
		if mispredicted {
			sq := s.eng.SquashAfter(seq)
			s.stats.SquashedOps += len(sq)
			s.mem.Repair(seq + 1)
			s.eng.RedirectFetch(actualNext)
			s.stats.BRepairs++
		}
		return true
	}
	ck, idx := s.bwin.findBranch(seq)
	if ck == nil {
		return true
	}
	if !mispredicted {
		ck.Pend = false
		return true
	}
	sq := s.eng.SquashAfter(ck.BornSeq)
	s.stats.SquashedOps += len(sq)
	s.regs.RecallAt(s.bwin.stack, s.bwin.depthFromNewest(idx))
	s.mem.Repair(ck.BornSeq + 1)
	s.bwin.popFrom(idx)
	s.bBlocked = false
	s.eng.RedirectFetch(actualNext)
	s.stats.BRepairs++
	return true
}

// Tick implements Scheme: the E-repair trigger on the oldest E
// checkpoint, which is the oldest checkpoint overall.
func (s *SchemeLoose) Tick() (bool, error) {
	if old := s.ewin.oldest(); old != nil && old.Except() {
		sq := s.eng.SquashAfter(old.BornSeq)
		s.stats.SquashedOps += len(sq)
		s.regs.RecallOldest(s.ewin.stack)
		s.regs.PopNewest(s.bwin.stack, s.regs.Depth(s.bwin.stack))
		s.mem.Repair(old.BornSeq + 1)
		s.ewin.clear()
		s.bwin.clear()
		s.bBlocked = false
		s.stats.ERepairs++
		s.eng.EnterPreciseMode(old.PC)
		return true, nil
	}
	s.tryPending()
	return false, nil
}

// Stats implements Scheme.
func (s *SchemeLoose) Stats() Stats { return s.stats }

var _ Scheme = (*SchemeLoose)(nil)

// Drain implements Scheme: exceptions may still sit on live B
// checkpoints whose bookkeeping never merged into the E window; with
// issue stopped they repair via the oldest E checkpoint.
func (s *SchemeLoose) Drain() (bool, error) {
	pending := false
	for _, ck := range s.ewin.cks {
		pending = pending || ck.Except()
	}
	for _, ck := range s.bwin.cks {
		pending = pending || ck.Except()
	}
	if !pending {
		return false, nil
	}
	old := s.ewin.oldest()
	sq := s.eng.SquashAfter(old.BornSeq)
	s.stats.SquashedOps += len(sq)
	s.regs.RecallOldest(s.ewin.stack)
	s.regs.PopNewest(s.bwin.stack, s.regs.Depth(s.bwin.stack))
	s.mem.Repair(old.BornSeq + 1)
	s.ewin.clear()
	s.bwin.clear()
	s.bBlocked = false
	s.stats.ERepairs++
	s.eng.EnterPreciseMode(old.PC)
	return true, nil
}

// Views implements Inspectable.
func (s *SchemeLoose) Views() [][]View {
	return [][]View{viewsOf(&s.ewin, true, false), viewsOf(&s.bwin, false, true)}
}

// RewindTargets implements Rewinder.
func (s *SchemeLoose) RewindTargets(buf []RewindTarget) []RewindTarget {
	buf = appendTargets(buf, &s.ewin, true, false)
	return appendTargets(buf, &s.bwin, false, true)
}

// RewindTo implements Rewinder: the target may live in either window.
func (s *SchemeLoose) RewindTo(bornSeq uint64) (int, bool) {
	pc, ok := rewindRecall(s.regs, &s.ewin, bornSeq)
	if !ok {
		pc, ok = rewindRecall(s.regs, &s.bwin, bornSeq)
	}
	if !ok {
		return 0, false
	}
	dropAllBackups(s.regs)
	return pc, true
}
