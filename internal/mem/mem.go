// Package mem implements the simulated main memory.
//
// Memory is byte-addressed and paged. Accesses to unmapped pages raise
// page faults, one of the E-repair sources in the checkpoint repair
// paper: a faulting load or store must appear never to have executed, so
// the repair mechanism has to restore state to the instruction boundary
// just to the left of the access.
//
// The data memory modelled here is the architectural "main memory" half
// of a logical space (paper §2.3). The cache (internal/cache) and
// difference buffers (internal/diff) layer the checkpointing machinery on
// top of this backing store; the in-order reference interpreter
// (internal/refsim) uses it directly.
//
// Page lookup is a flat two-level table (10-bit root index, 10-bit leaf
// index over the 20-bit page number) with a one-entry last-page cache,
// rather than a Go map: every load, store, and access check of every
// simulated instruction funnels through page(), so the lookup is the
// hottest path in the whole simulator. A Memory is not safe for
// concurrent use — each machine instance owns its memory exclusively,
// which is what lets independent simulations run in parallel.
package mem

import (
	"fmt"

	"repro/internal/isa"
)

// PageSize is the size in bytes of a memory page. Page granularity only
// matters for fault behaviour; it has no timing significance.
const PageSize = 4096

const (
	pageShift = 12 // log2(PageSize)
	leafBits  = 10
	leafSize  = 1 << leafBits                    // pages per leaf table
	rootSize  = 1 << (32 - pageShift - leafBits) // leaf tables per root
)

// leaf is one second-level page table covering leafSize pages.
type leaf [leafSize][]byte

// Memory is a paged byte-addressed memory. The zero value is an empty
// memory with no mapped pages.
type Memory struct {
	root   [rootSize]*leaf
	npages int
	// Last-page cache: lastPg caches the page holding page number
	// lastPN (nil = no cached page). Pages are never unmapped during a
	// run (only wholesale by Reset, which clears the cache), so the
	// cache can only go stale by pointing at a still-valid page.
	lastPN uint32
	lastPg []byte
	// mapped lists the mapped page numbers in mapping order, so Reset
	// can unmap without walking the whole table; free recycles page
	// buffers across Reset/Map cycles (Map re-zeroes them).
	mapped []uint32
	free   [][]byte
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{}
}

// Clone returns a deep copy of the memory.
func (m *Memory) Clone() *Memory {
	c := New()
	m.forEachPage(func(pn uint32, pg []byte) bool {
		np := make([]byte, PageSize)
		copy(np, pg)
		c.setPage(pn, np)
		return true
	})
	return c
}

// page returns the page containing addr, or nil if unmapped.
func (m *Memory) page(addr uint32) []byte {
	pn := addr >> pageShift
	if pg := m.lastPg; pg != nil && pn == m.lastPN {
		return pg
	}
	l := m.root[pn>>leafBits]
	if l == nil {
		return nil
	}
	pg := l[pn&(leafSize-1)]
	if pg != nil {
		m.lastPN, m.lastPg = pn, pg
	}
	return pg
}

// setPage installs a page for page number pn, creating its leaf table
// on demand. pn must not already be mapped.
func (m *Memory) setPage(pn uint32, pg []byte) {
	l := m.root[pn>>leafBits]
	if l == nil {
		l = new(leaf)
		m.root[pn>>leafBits] = l
	}
	l[pn&(leafSize-1)] = pg
	m.npages++
	m.mapped = append(m.mapped, pn)
}

// Reset unmaps every page, returning the memory to its zero state while
// retaining the leaf tables and page buffers for reuse: the next Map
// calls allocate nothing when the previous footprint covered them. A
// reset memory is indistinguishable from New() to every accessor.
func (m *Memory) Reset() {
	for _, pn := range m.mapped {
		l := m.root[pn>>leafBits]
		m.free = append(m.free, l[pn&(leafSize-1)])
		l[pn&(leafSize-1)] = nil
	}
	m.mapped = m.mapped[:0]
	m.npages = 0
	m.lastPg = nil
	m.lastPN = 0
}

// forEachPage visits every mapped page in ascending page-number order,
// stopping early if f returns false.
func (m *Memory) forEachPage(f func(pn uint32, pg []byte) bool) {
	for ri, l := range m.root {
		if l == nil {
			continue
		}
		for li, pg := range l {
			if pg == nil {
				continue
			}
			if !f(uint32(ri)<<leafBits|uint32(li), pg) {
				return
			}
		}
	}
}

// Map ensures every page overlapping [addr, addr+size) is mapped,
// zero-filling newly created pages.
func (m *Memory) Map(addr, size uint32) {
	if size == 0 {
		return
	}
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	for pn := first; ; pn++ {
		if m.pageByNumber(pn) == nil {
			m.setPage(pn, m.newPage())
		}
		if pn == last {
			break
		}
	}
}

// newPage returns a zeroed page buffer, recycling one freed by Reset
// when available.
func (m *Memory) newPage() []byte {
	if n := len(m.free); n > 0 {
		pg := m.free[n-1]
		m.free = m.free[:n-1]
		clear(pg)
		return pg
	}
	return make([]byte, PageSize)
}

// pageByNumber returns the page for page number pn, or nil.
func (m *Memory) pageByNumber(pn uint32) []byte {
	l := m.root[pn>>leafBits]
	if l == nil {
		return nil
	}
	return l[pn&(leafSize-1)]
}

// Mapped reports whether the single byte at addr is mapped.
func (m *Memory) Mapped(addr uint32) bool {
	return m.page(addr) != nil
}

// MappedRange reports whether every byte of [addr, addr+size) is mapped.
func (m *Memory) MappedRange(addr, size uint32) bool {
	if size == 0 {
		return true
	}
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	for pn := first; ; pn++ {
		if m.pageByNumber(pn) == nil {
			return false
		}
		if pn == last {
			break
		}
	}
	return true
}

// check validates an access and returns the exception code it raises,
// or isa.ExcCodeNone. Multi-byte accesses must be naturally aligned
// (longwords 4-aligned, halfwords 2-aligned); a naturally aligned
// access never straddles a page.
func (m *Memory) check(addr, size uint32) isa.ExcCode {
	if size > 1 && addr%size != 0 {
		return isa.ExcCodeMisaligned
	}
	// Fast path: the access lies within one mapped page (true for every
	// aligned longword and byte access).
	if addr%PageSize+size <= PageSize {
		if m.page(addr) == nil {
			return isa.ExcCodePageFault
		}
		return isa.ExcCodeNone
	}
	if !m.MappedRange(addr, size) {
		return isa.ExcCodePageFault
	}
	return isa.ExcCodeNone
}

// CheckRead returns the exception code a read of the given size at addr
// would raise, without performing it. Reads and writes fault identically.
func (m *Memory) CheckRead(addr, size uint32) isa.ExcCode { return m.check(addr, size) }

// CheckWrite returns the exception code a write of the given size at
// addr would raise, without performing it.
func (m *Memory) CheckWrite(addr, size uint32) isa.ExcCode { return m.check(addr, size) }

// Read8 reads one byte.
func (m *Memory) Read8(addr uint32) (byte, isa.ExcCode) {
	pg := m.page(addr)
	if pg == nil {
		return 0, isa.ExcCodePageFault
	}
	return pg[addr%PageSize], isa.ExcCodeNone
}

// Write8 writes one byte.
func (m *Memory) Write8(addr uint32, v byte) isa.ExcCode {
	pg := m.page(addr)
	if pg == nil {
		return isa.ExcCodePageFault
	}
	pg[addr%PageSize] = v
	return isa.ExcCodeNone
}

// WriteBytes copies data into memory starting at addr. Every page
// covered must already be mapped; the write stops at the first fault.
// Bulk program-image loading uses this instead of per-byte Write8.
func (m *Memory) WriteBytes(addr uint32, data []byte) isa.ExcCode {
	for len(data) > 0 {
		pg := m.page(addr)
		if pg == nil {
			return isa.ExcCodePageFault
		}
		off := addr % PageSize
		n := copy(pg[off:], data)
		data = data[n:]
		addr += uint32(n)
	}
	return isa.ExcCodeNone
}

// Read32 reads an aligned little-endian longword.
func (m *Memory) Read32(addr uint32) (uint32, isa.ExcCode) {
	if code := m.check(addr, isa.WordSize); code != isa.ExcCodeNone {
		return 0, code
	}
	pg := m.page(addr)
	off := addr % PageSize
	return uint32(pg[off]) | uint32(pg[off+1])<<8 | uint32(pg[off+2])<<16 | uint32(pg[off+3])<<24, isa.ExcCodeNone
}

// Write32 writes an aligned little-endian longword.
func (m *Memory) Write32(addr uint32, v uint32) isa.ExcCode {
	if code := m.check(addr, isa.WordSize); code != isa.ExcCodeNone {
		return code
	}
	pg := m.page(addr)
	off := addr % PageSize
	pg[off] = byte(v)
	pg[off+1] = byte(v >> 8)
	pg[off+2] = byte(v >> 16)
	pg[off+3] = byte(v >> 24)
	return isa.ExcCodeNone
}

// ReadMasked reads the aligned longword containing addr and returns it;
// used by the difference buffers, which operate on whole longwords with
// byte masks as in the paper's buffer entry format.
func (m *Memory) ReadMasked(addr uint32) (uint32, isa.ExcCode) {
	return m.Read32(addr &^ 3)
}

// WriteMasked writes the bytes of v selected by mask (bit i covers byte
// i) into the aligned longword containing addr.
func (m *Memory) WriteMasked(addr uint32, v uint32, mask uint8) isa.ExcCode {
	base := addr &^ 3
	old, code := m.Read32(base)
	if code != isa.ExcCodeNone {
		return code
	}
	merged := MergeMasked(old, v, mask)
	return m.Write32(base, merged)
}

// MergeMasked overlays the bytes of v selected by mask onto old.
func MergeMasked(old, v uint32, mask uint8) uint32 {
	out := old
	for i := 0; i < isa.WordSize; i++ {
		if mask&(1<<i) != 0 {
			shift := uint(8 * i)
			out = out&^(0xff<<shift) | v&(0xff<<shift)
		}
	}
	return out
}

// MappedPages returns the sorted list of mapped page numbers.
func (m *Memory) MappedPages() []uint32 {
	pns := make([]uint32, 0, m.npages)
	m.forEachPage(func(pn uint32, _ []byte) bool {
		pns = append(pns, pn)
		return true
	})
	return pns
}

// Equal reports whether two memories have identical mapped pages with
// identical contents.
func (m *Memory) Equal(o *Memory) bool {
	if m.npages != o.npages {
		return false
	}
	equal := true
	m.forEachPage(func(pn uint32, pg []byte) bool {
		opg := o.pageByNumber(pn)
		if opg == nil {
			equal = false
			return false
		}
		for i := range pg {
			if pg[i] != opg[i] {
				equal = false
				return false
			}
		}
		return true
	})
	return equal
}

// Diff returns a human-readable description of the first difference
// between two memories, or "" if they are equal. Intended for test
// failure messages.
func (m *Memory) Diff(o *Memory) string {
	out := ""
	m.forEachPage(func(pn uint32, pg []byte) bool {
		opg := o.pageByNumber(pn)
		if opg == nil {
			out = fmt.Sprintf("page %#x mapped only on left", pn)
			return false
		}
		for i := range pg {
			if pg[i] != opg[i] {
				out = fmt.Sprintf("byte %#x: %#x vs %#x", pn*PageSize+uint32(i), pg[i], opg[i])
				return false
			}
		}
		return true
	})
	if out != "" {
		return out
	}
	o.forEachPage(func(pn uint32, _ []byte) bool {
		if m.pageByNumber(pn) == nil {
			out = fmt.Sprintf("page %#x mapped only on right", pn)
			return false
		}
		return true
	})
	return out
}
