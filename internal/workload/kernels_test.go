package workload

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/refsim"
)

// word reads a longword from a result's memory, failing the test on a
// fault.
func word(t *testing.T, res *refsim.Result, addr uint32) uint32 {
	t.Helper()
	v, code := res.Mem.Read32(addr)
	if code != isa.ExcCodeNone {
		t.Fatalf("read %#x: %v", addr, code)
	}
	return v
}

func run(t *testing.T, name string) (*refsim.Result, map[string]int32) {
	t.Helper()
	k, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p := k.Load()
	res, err := refsim.Run(p, refsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatalf("%s did not halt (timeout=%v, retired=%d)", name, res.TimedOut, res.Retired)
	}
	return res, p.Symbols
}

func TestFib(t *testing.T) {
	res, sym := run(t, "fib")
	if got := word(t, res, uint32(sym["result"])); got != 46368 {
		t.Errorf("fib(24) = %d, want 46368", got)
	}
	if res.Regs[10] != 46368 {
		t.Errorf("r10 = %d", res.Regs[10])
	}
}

func TestBubble(t *testing.T) {
	res, sym := run(t, "bubble")
	base := uint32(sym["arr"])
	for i := 0; i < 16; i++ {
		if got := word(t, res, base+uint32(4*i)); got != uint32(i) {
			t.Errorf("arr[%d] = %d, want %d", i, got, i)
		}
	}
}

func TestMatmul(t *testing.T) {
	res, sym := run(t, "matmul")
	base := uint32(sym["matc"])
	// Row 0 of the product of the two fixed matrices.
	want := []uint32{250, 260, 270, 280}
	for j, w := range want {
		if got := word(t, res, base+uint32(4*j)); got != w {
			t.Errorf("c[0][%d] = %d, want %d", j, got, w)
		}
	}
}

func TestMemcpy(t *testing.T) {
	res, sym := run(t, "memcpy")
	src, dst := uint32(sym["src"]), uint32(sym["dst"])
	for i := uint32(0); i < 64; i++ {
		s, _ := res.Mem.Read8(src + i)
		d, _ := res.Mem.Read8(dst + i)
		if s != d {
			t.Errorf("dst[%d] = %d, want %d", i, d, s)
		}
	}
}

func TestListsum(t *testing.T) {
	res, sym := run(t, "listsum")
	if got := word(t, res, uint32(sym["lres"])); got != 60 {
		t.Errorf("list sum = %d, want 60", got)
	}
}

func TestSieve(t *testing.T) {
	res, sym := run(t, "sieve")
	if got := word(t, res, uint32(sym["nprimes"])); got != 46 {
		t.Errorf("primes below 200 = %d, want 46", got)
	}
}

func TestDotprod(t *testing.T) {
	res, sym := run(t, "dotprod")
	if got := word(t, res, uint32(sym["dres"])); got != 383 {
		t.Errorf("dot product = %d, want 383", got)
	}
}

func TestStrsearch(t *testing.T) {
	res, sym := run(t, "strsearch")
	// Count 'e' bytes in the embedded text directly.
	text := uint32(sym["text"])
	want := uint32(0)
	for i := uint32(0); ; i++ {
		b, code := res.Mem.Read8(text + i)
		if code != isa.ExcCodeNone || b == 0 {
			break
		}
		if b == 101 {
			want++
		}
	}
	if got := word(t, res, uint32(sym["sres"])); got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
	if want == 0 {
		t.Error("test text contains no 'e'?")
	}
}

func TestRecfib(t *testing.T) {
	res, sym := run(t, "recfib")
	if got := word(t, res, uint32(sym["rfres"])); got != 144 {
		t.Errorf("recfib(12) = %d, want 144", got)
	}
}

func TestPagedemo(t *testing.T) {
	res, sym := run(t, "pagedemo")
	if got := word(t, res, uint32(sym["pres"])); got != 15 {
		t.Errorf("page sum = %d, want 15", got)
	}
	var pf, ov, sw int
	for _, e := range res.Exceptions {
		switch e.Code {
		case isa.ExcCodePageFault:
			pf++
		case isa.ExcCodeOverflow:
			ov++
		case isa.ExcCodeSoftware:
			sw++
		}
	}
	if pf != 6 || ov != 1 || sw != 1 {
		t.Errorf("exceptions: pf=%d ov=%d sw=%d, want 6/1/1 (%v)", pf, ov, sw, res.Exceptions)
	}
}

func TestDivzero(t *testing.T) {
	res, sym := run(t, "divzero")
	if got := word(t, res, uint32(sym["dzres"])); got != 16 {
		t.Errorf("dz result = %d, want 16", got)
	}
	if len(res.Exceptions) != 2 {
		t.Errorf("exceptions = %v, want 2 divide faults", res.Exceptions)
	}
	if res.Regs[3] != 0 {
		t.Errorf("r3 = %d, want 0 (faulting div must not write)", res.Regs[3])
	}
}

func TestAllKernelsHalt(t *testing.T) {
	for _, k := range Kernels() {
		res, err := refsim.Run(k.Load(), refsim.Options{})
		if err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		if !res.Halted {
			t.Errorf("%s: did not halt", k.Name)
		}
		hasExc := len(res.Exceptions) > 0
		if hasExc != k.Excepts {
			t.Errorf("%s: Excepts=%v but exceptions=%v", k.Name, k.Excepts, res.Exceptions)
		}
	}
}

func TestSynthRuns(t *testing.T) {
	p := Synth(DefaultSynth)
	res, err := refsim.Run(p, refsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("synth did not halt")
	}
	st := p.StaticStats()
	if st.Branches == 0 {
		t.Fatal("synth has no branches")
	}
	// Dynamic branch density should be near the configured point.
	b := float64(res.Retired) / float64(res.Branches)
	if b < 2 || b > 10 {
		t.Errorf("dynamic instructions per branch = %.2f, expected a small number", b)
	}
}

func TestSynthExceptions(t *testing.T) {
	cfg := DefaultSynth
	cfg.ExcMask = 0xff
	cfg.Iters = 3000
	p := Synth(cfg)
	res, err := refsim.Run(p, refsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exceptions) == 0 {
		t.Error("expected overflow traps from ExcMask workload")
	}
	for _, e := range res.Exceptions {
		if e.Code != isa.ExcCodeOverflow {
			t.Errorf("unexpected exception %v", e)
		}
	}
}

func TestRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := Random(seed, DefaultRandomOpts)
		res, err := refsim.Run(p, refsim.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Halted {
			t.Fatalf("seed %d: did not halt", seed)
		}
	}
	for seed := int64(0); seed < 10; seed++ {
		p := Random(seed, ExceptionFreeRandomOpts)
		res, err := refsim.Run(p, refsim.Options{})
		if err != nil {
			t.Fatalf("exc-free seed %d: %v", seed, err)
		}
		if len(res.Exceptions) != 0 {
			t.Fatalf("exc-free seed %d raised %v", seed, res.Exceptions)
		}
	}
}

func TestHanoi(t *testing.T) {
	res, sym := run(t, "hanoi")
	// hanoi(7) performs 2^7 - 1 = 127 moves.
	if got := word(t, res, uint32(sym["hres"])); got != 127 {
		t.Errorf("hanoi moves = %d, want 127", got)
	}
}

func TestBinsearch(t *testing.T) {
	res, sym := run(t, "binsearch")
	// Count probe values {0,7,14,...,315} present in the table directly.
	table := []uint32{3, 9, 21, 27, 30, 42, 51, 60, 72, 75, 90, 99, 105, 111, 120, 126,
		141, 150, 153, 168, 180, 186, 195, 210, 213, 228, 231, 240, 252, 261, 273, 285}
	want := uint32(0)
	for v := uint32(0); v < 320; v += 7 {
		for _, x := range table {
			if x == v {
				want++
			}
		}
	}
	if got := word(t, res, uint32(sym["bsres"])); got != want {
		t.Errorf("binsearch hits = %d, want %d", got, want)
	}
}

func TestFIR(t *testing.T) {
	res, sym := run(t, "fir")
	taps := []int32{1, -2, 3, -4, 4, -3, 2, -1}
	samples := []int32{5, 8, 13, 2, 7, 1, 9, 4, 6, 11, 3, 12, 10, 5, 8, 2,
		14, 7, 1, 9, 6, 13, 4, 10, 2, 8, 5, 11, 3, 7, 12, 1,
		9, 6, 4, 13, 8, 2, 10, 5, 7, 3, 11, 6, 1, 12, 4, 9}
	base := uint32(sym["fout"])
	for i := 0; i < 40; i++ {
		var acc int32
		for j := 0; j < 8; j++ {
			acc += samples[i+j] * taps[j]
		}
		if got := word(t, res, base+uint32(4*i)); int32(got) != acc {
			t.Errorf("fout[%d] = %d, want %d", i, int32(got), acc)
		}
	}
}

func TestBitcount(t *testing.T) {
	res, sym := run(t, "bitcount")
	data := []uint32{0xffffffff, 0x0, 0xaaaaaaaa, 0x55555555, 0x12345678, 0x9abcdef0,
		0x1, 0x80000000, 0xf0f0f0f0, 0x0f0f0f0f, 0xdeadbeef, 0xcafebabe,
		0x7, 0x70, 0x700, 0x7000}
	want := uint32(0)
	for _, w := range data {
		for ; w != 0; w &= w - 1 {
			want++
		}
	}
	if got := word(t, res, uint32(sym["bcres"])); got != want {
		t.Errorf("bitcount = %d, want %d", got, want)
	}
}

func TestLoopNest(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := LoopNest(seed, DefaultLoopNest)
		res, err := refsim.Run(p, refsim.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Halted {
			t.Fatalf("seed %d: did not halt", seed)
		}
		// Depth-3 nest with trip count 4: the innermost body runs 64
		// times, so at least 64 * (bodyLen-ish) instructions retire.
		if res.Retired < 64 {
			t.Errorf("seed %d: retired only %d", seed, res.Retired)
		}
		// Branch outcomes must include both directions (loop structure).
		if res.Taken == 0 || res.Taken == res.Branches {
			t.Errorf("seed %d: degenerate branch mix %d/%d", seed, res.Taken, res.Branches)
		}
	}
}

func TestLoopNestDepthScaling(t *testing.T) {
	o := DefaultLoopNest
	var last int
	for depth := 1; depth <= 3; depth++ {
		o.Depth = depth
		p := LoopNest(42, o)
		res, err := refsim.Run(p, refsim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Retired <= last {
			t.Errorf("depth %d retired %d, not more than depth %d's %d", depth, res.Retired, depth-1, last)
		}
		last = res.Retired
	}
}

func TestVecadd(t *testing.T) {
	res, sym := run(t, "vecadd")
	base := uint32(sym["vz"])
	for i := 0; i < 32; i++ {
		want := uint32(i+1) + uint32((i+1)*100)
		if got := word(t, res, base+uint32(4*i)); got != want {
			t.Errorf("vz[%d] = %d, want %d", i, got, want)
		}
	}
	// 8 iterations x 4 vector instructions of 4 ops = plenty retired,
	// but Retired counts INSTRUCTIONS: 8*(4+4)+4+1... just sanity-check
	// the exception-free property.
	if len(res.Exceptions) != 0 {
		t.Errorf("exceptions: %v", res.Exceptions)
	}
}

func TestVecfault(t *testing.T) {
	res, sym := run(t, "vecfault")
	// One page fault at the vsw (element 2 touches 0x8000).
	if len(res.Exceptions) != 1 || res.Exceptions[0].Code != isa.ExcCodePageFault || res.Exceptions[0].Addr != 0x8000 {
		t.Fatalf("exceptions: %v", res.Exceptions)
	}
	// The full instruction eventually completed: all four elements
	// stored and read back, so vres = 2*src.
	base := uint32(sym["vres"])
	for i, src := range []uint32{11, 22, 33, 44} {
		if got := word(t, res, base+uint32(4*i)); got != 2*src {
			t.Errorf("vres[%d] = %d, want %d", i, got, 2*src)
		}
	}
}

func TestVcopy(t *testing.T) {
	res, sym := run(t, "vcopy")
	src, dst := uint32(sym["vcsrc"]), uint32(sym["vcdst"])
	for i := uint32(0); i < 64; i++ {
		s := word(t, res, src+4*i)
		d := word(t, res, dst+4*i)
		if s != d || s != i*i {
			t.Errorf("vcdst[%d] = %d, want %d", i, d, s)
		}
	}
}
