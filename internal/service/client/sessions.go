package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/machine"
	"repro/internal/service"
	"repro/internal/session"
)

// SessionCreate is the POST /sessions payload: exactly one of Workload
// (a built-in kernel), Asm (assembly source, assembled under Name), or
// RV32 (a compiled rv32 image, loaded under Name).
type SessionCreate struct {
	Workload string              `json:"workload,omitempty"`
	Asm      string              `json:"asm,omitempty"`
	RV32     []byte              `json:"rv32,omitempty"`
	Name     string              `json:"name,omitempty"`
	Machine  service.MachineSpec `json:"machine"`
}

// SessionSummary is one GET /sessions row.
type SessionSummary struct {
	ID      string        `json:"id"`
	State   session.State `json:"state"`
	Program string        `json:"program"`
	IdleMS  int64         `json:"idle_ms"`
}

// RunOpts targets a streaming run verb. Zero targets run to
// completion; Stride is the event granularity in cycles.
type RunOpts struct {
	ToCycle int64 `json:"to_cycle,omitempty"`
	ToPC    *int  `json:"to_pc,omitempty"`
	Stride  int64 `json:"stride,omitempty"`
}

// CreateSession opens a debug session and returns its initial view.
func (c *Client) CreateSession(ctx context.Context, req SessionCreate) (*session.View, error) {
	var v session.View
	if err := c.post(ctx, "/sessions", req, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Sessions lists open sessions.
func (c *Client) Sessions(ctx context.Context) ([]SessionSummary, error) {
	var out struct {
		Sessions []SessionSummary `json:"sessions"`
	}
	if err := c.get(ctx, "/sessions", &out); err != nil {
		return nil, err
	}
	return out.Sessions, nil
}

// Session fetches one session's full view.
func (c *Client) Session(ctx context.Context, id string) (*session.View, error) {
	var v session.View
	if err := c.get(ctx, "/sessions/"+id, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// StepSession advances the session by up to n cycles.
func (c *Client) StepSession(ctx context.Context, id string, n int) (*session.View, error) {
	var v session.View
	if err := c.post(ctx, "/sessions/"+id+"/step", map[string]int{"n": n}, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// RunSession streams a run verb, invoking fn (if non-nil) for every
// event, and returns the terminal event. Cancelling ctx drops the
// connection, which pauses the run server-side.
func (c *Client) RunSession(ctx context.Context, id string, opts RunOpts, fn func(session.Event) error) (*session.Event, error) {
	body, err := json.Marshal(opts)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/sessions/"+id+"/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readError(resp)
	}
	var last *session.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e session.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return last, fmt.Errorf("ckptd: bad stream event %q: %w", sc.Text(), err)
		}
		last = &e
		if fn != nil {
			if err := fn(e); err != nil {
				return last, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return last, err
	}
	if last == nil {
		return nil, fmt.Errorf("ckptd: run stream ended without events")
	}
	return last, nil
}

// SessionCheckpoints lists the session's live rewind targets.
func (c *Client) SessionCheckpoints(ctx context.Context, id string) ([]machine.RewindInfo, error) {
	var out struct {
		Checkpoints []machine.RewindInfo `json:"checkpoints"`
	}
	if err := c.get(ctx, "/sessions/"+id+"/checkpoints", &out); err != nil {
		return nil, err
	}
	return out.Checkpoints, nil
}

// RewindSession rewinds to the live checkpoint with BornSeq seq. A
// non-nil spec re-materializes the boundary under that machine
// configuration instead of repairing in place.
func (c *Client) RewindSession(ctx context.Context, id string, seq uint64, spec *service.MachineSpec) (*machine.RewindInfo, error) {
	var out struct {
		Rewound *machine.RewindInfo `json:"rewound"`
	}
	req := map[string]any{"seq": seq}
	if spec != nil {
		req["machine"] = spec
	}
	if err := c.post(ctx, "/sessions/"+id+"/rewind", req, &out); err != nil {
		return nil, err
	}
	return out.Rewound, nil
}

// SessionMemory reads words longwords starting at addr.
func (c *Client) SessionMemory(ctx context.Context, id string, addr uint32, words int) ([]session.Word, error) {
	var out struct {
		Memory []session.Word `json:"memory"`
	}
	path := fmt.Sprintf("/sessions/%s/mem?addr=%#x&words=%d", id, addr, words)
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return out.Memory, nil
}

// SessionDivergence audits the session's architectural state against
// its golden trace.
func (c *Client) SessionDivergence(ctx context.Context, id string) (*session.Divergence, error) {
	var d session.Divergence
	if err := c.get(ctx, "/sessions/"+id+"/divergence", &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// CloseSession deletes a session.
func (c *Client) CloseSession(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/sessions/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readError(resp)
	}
	return nil
}

// post sends a JSON body and decodes a 2xx JSON reply into v.
func (c *Client) post(ctx context.Context, path string, body, v any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return readError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
