// Command faultcamp runs seeded fault-injection campaigns against the
// schemeE checkpoint-repair machine (see the internal/fault package doc
// and the "Fault-injection campaigns" sections of README.md and
// EXPERIMENTS.md).
//
// Usage:
//
//	faultcamp                          # default campaign over kernel workloads
//	faultcamp -w fib,divzero           # choose workloads
//	faultcamp -models fu-detected,spurious-exc
//	faultcamp -seed 7 -stride 2 -j 1   # deterministic at every -j value
//	faultcamp -v                       # per-injection detail for non-clean outcomes
//
// Output is deterministic for a given (workloads, models, seed, stride)
// tuple at any worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/workload"
)

// defaultWorkloads keeps the out-of-the-box run quick but representative:
// a scalar loop, a store-heavy byte loop, a load-use chain, and the
// exception-heavy kernels that mix injected faults with architectural
// repairs.
var defaultWorkloads = []string{"fib", "memcpy", "dotprod", "listsum", "divzero", "vecfault"}

// maxDefaultRuns bounds the per-workload executed-injection count when
// the user didn't pick a stride; the planner's event axis scales with
// program length, so long kernels get a proportionally larger stride.
const maxDefaultRuns = 600

func main() {
	seed := flag.Int64("seed", 1987, "campaign seed (drives every corruption bit)")
	wl := flag.String("w", strings.Join(defaultWorkloads, ","), "comma-separated kernel workloads")
	modelsFlag := flag.String("models", "", "comma-separated fault models (default all: reg-flip,mem-flip,fu-corrupt,fu-detected,spurious-exc)")
	stride := flag.Int("stride", 0, "inject at every Nth eligible event (0 = auto-size per workload)")
	jobs := flag.Int("j", 0, "max concurrent injected runs (0 = GOMAXPROCS, 1 = sequential)")
	distance := flag.Int("d", 8, "schemeE checkpoint distance (instructions per interval)")
	verbose := flag.Bool("v", false, "list every non-masked injection outcome")
	version := buildinfo.Flag()
	flag.Parse()
	version()

	models, err := parseModels(*modelsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Ctrl-C cancels the campaign fan-out after in-flight injected runs
	// drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	exit := 0
	for i, name := range strings.Split(*wl, ",") {
		name = strings.TrimSpace(name)
		k, err := workload.ByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		p := k.Load()
		mk := func() machine.Config {
			return machine.Config{
				Scheme:    core.NewSchemeE(4, *distance, 0),
				Speculate: false,
				MemSystem: machine.MemBackward3b,
			}
		}
		cc := fault.Config{Seed: *seed, Models: models, Stride: *stride, Workers: *jobs}
		if cc.Stride <= 0 {
			cc.Stride = autoStride(p.Name, mk, cc)
		}
		rep, err := fault.Run(ctx, p, mk, cc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultcamp: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(rep.Table(fmt.Sprintf("FC%d", i+1)).String())
		if *verbose {
			for _, r := range rep.Results {
				if r.Outcome == fault.Masked {
					continue
				}
				fmt.Printf("   %-28s -> %-8s fired=%v repairs=+%d latency=%d  %s\n",
					r.Inj, r.Outcome, r.Fired, r.RepairDelta, r.Latency, r.Detail)
			}
			fmt.Println()
		}
		if bad := rep.CoveredBad(); len(bad) != 0 {
			fmt.Fprintf(os.Stderr, "faultcamp: %s: %d covered-class injections escaped repair\n", name, len(bad))
			exit = 1
		}
	}
	os.Exit(exit)
}

// autoStride picks the smallest stride keeping the executed-injection
// count under maxDefaultRuns, by planning (cheap — one baseline run,
// which the campaign reuses via the trace cache) at stride 1 first.
func autoStride(name string, mk func() machine.Config, cc fault.Config) int {
	probe := cc
	probe.Stride = 1
	k, err := workload.ByName(name)
	if err != nil {
		return 1
	}
	plan, err := fault.PlanOnly(k.Load(), mk, probe)
	if err != nil {
		return 1
	}
	return plan.Executed()/maxDefaultRuns + 1
}

func parseModels(s string) ([]fault.Model, error) {
	if s == "" {
		return nil, nil
	}
	byName := map[string]fault.Model{}
	for _, m := range fault.Models() {
		byName[m.String()] = m
	}
	var models []fault.Model
	for _, tok := range strings.Split(s, ",") {
		m, ok := byName[strings.TrimSpace(tok)]
		if !ok {
			return nil, fmt.Errorf("faultcamp: unknown model %q (have reg-flip, mem-flip, fu-corrupt, fu-detected, spurious-exc)", tok)
		}
		models = append(models, m)
	}
	return models, nil
}
