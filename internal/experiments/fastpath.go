package experiments

import (
	"context"
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/prog"
	"repro/internal/refsim"
)

// fastPaths gates the simulator fast paths for experiment runs: the
// shared reference-trace cache (record the golden model once per
// program, replay it for every configuration of a sweep) and
// event-driven cycle skipping inside the machine. Both paths are
// result-preserving by construction; the toggle exists so the
// equivalence tests can regenerate every table with the fast paths
// forced off and byte-compare.
var fastPathsOff atomic.Bool

// SetFastPaths enables or disables the trace-replay and cycle-skipping
// fast paths for subsequent experiment runs. They are on by default;
// tables are byte-identical either way.
func SetFastPaths(on bool) { fastPathsOff.Store(!on) }

// FastPaths reports whether the fast paths are enabled.
func FastPaths() bool { return !fastPathsOff.Load() }

// probeFactory, when set, installs a machine.Probe on every experiment
// run (a fresh probe per run — machine probes are single-run state).
// Used by the equivalence tests to prove the probe seam leaves every
// artefact byte-identical; production experiment runs leave it nil.
var probeFactory atomic.Value // func() machine.Probe

// SetProbeFactory installs (or, with nil, removes) a per-run probe
// constructor for subsequent experiment runs.
func SetProbeFactory(f func() machine.Probe) { probeFactory.Store(f) }

// wire applies the per-run experiment seams to cfg: the probe factory
// and, with fast paths on, the shared cached reference trace (with them
// off, cycle skipping is disabled too — the one-cycle-at-a-time oracle
// path). Both simRun and the batch runner route configurations through
// here so every lane of a sweep carries identical wiring.
func wire(p *prog.Program, cfg machine.Config) machine.Config {
	if f, _ := probeFactory.Load().(func() machine.Probe); f != nil {
		cfg.Probe = f()
	}
	if FastPaths() {
		// A program that cannot be traced (e.g. does not halt within the
		// interpreter step bound) falls back to the live shadow.
		if tr, err := refsim.CachedTrace(p); err == nil {
			cfg.RefTrace = tr
		}
	} else {
		cfg.DisableCycleSkip = true
	}
	return cfg
}

// simRun is the single choke point through which experiments run one
// machine simulation. With batching enabled (and the fast paths on) the
// run draws a pooled chassis; results are identical to a fresh
// machine.Run either way.
func simRun(p *prog.Program, cfg machine.Config) (*machine.Result, error) {
	cfg = wire(p, cfg)
	if FastPaths() && Batching() {
		return machine.RunPooled(p, cfg)
	}
	return machine.Run(p, cfg)
}

// Simulate runs program p under cfg through the experiment fast paths
// (shared reference-trace cache, cycle skipping) — the entry point the
// serving layer uses for one-off simulation jobs. ctx gates the start
// of the run; a single machine run itself is bounded by cfg.MaxCycles
// and the watchdog, so it always terminates without mid-run
// cancellation.
func Simulate(ctx context.Context, p *prog.Program, cfg machine.Config) (*machine.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return simRun(p, cfg)
}
