package rv32

import (
	"crypto/sha256"
	"embed"
	"fmt"
	"path"
	"sort"
	"sync"

	"repro/internal/prog"
)

// The hermetic test-binary corpus: four real compiled rv32 programs
// committed under testdata/ and embedded into the binary. No RISC-V
// toolchain is needed anywhere — the binaries are produced by the
// package's own Builder (see BuildCorpus), cmd gen regenerates them,
// and TestCorpusRegeneration pins the committed bytes to the builders.

//go:embed testdata/*.bin testdata/*.elf
var corpusFS embed.FS

//go:embed testdata/golden.json
var goldenJSON []byte

// GoldenJSON returns the committed golden-digest table (see
// gen/main.go for the format).
func GoldenJSON() []byte { return goldenJSON }

// CorpusNames lists the embedded corpus binaries in sorted order.
func CorpusNames() []string {
	ents, err := corpusFS.ReadDir("testdata")
	if err != nil {
		panic(err) // embed is compile-time; cannot fail at run time
	}
	var names []string
	for _, e := range ents {
		ext := path.Ext(e.Name())
		if ext == ".bin" || ext == ".elf" {
			names = append(names, e.Name()[:len(e.Name())-len(ext)])
		}
	}
	sort.Strings(names)
	return names
}

// CorpusBytes returns the raw image bytes of an embedded corpus binary.
func CorpusBytes(name string) ([]byte, error) {
	for _, ext := range []string{".bin", ".elf"} {
		if data, err := corpusFS.ReadFile("testdata/" + name + ext); err == nil {
			return data, nil
		}
	}
	return nil, fmt.Errorf("rv32: no corpus binary %q (have %v)", name, CorpusNames())
}

// CorpusProgram loads, translates, and memoizes an embedded corpus
// binary.
func CorpusProgram(name string) (*prog.Program, error) {
	data, err := CorpusBytes(name)
	if err != nil {
		return nil, err
	}
	return LoadProgram(name, data)
}

// progCache interns translated programs by content hash so identical
// bytes always yield the same *prog.Program instance — which is what
// keeps refsim trace memos (attached to the program) and batch-lockstep
// grouping warm across repeated loads.
var progCache sync.Map // [sha256.Size]byte -> *prog.Program

// LoadProgram loads an rv32 binary (flat or ELF, autodetected) and
// translates it, memoizing the result by a hash of (name, content).
func LoadProgram(name string, data []byte) (*prog.Program, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%d:%s:", len(name), name)
	h.Write(data)
	var key [sha256.Size]byte
	h.Sum(key[:0])
	if v, ok := progCache.Load(key); ok {
		return v.(*prog.Program), nil
	}
	img, err := Load(name, data)
	if err != nil {
		return nil, err
	}
	p, err := Translate(img)
	if err != nil {
		return nil, err
	}
	v, _ := progCache.LoadOrStore(key, p)
	return v.(*prog.Program), nil
}

// BuildCorpus deterministically regenerates every corpus binary from
// the in-tree builders. gen/main.go writes these to testdata/;
// TestCorpusRegeneration asserts they match the committed bytes.
func BuildCorpus() (map[string][]byte, error) {
	out := make(map[string][]byte)
	for name, build := range corpusBuilders {
		data, err := build()
		if err != nil {
			return nil, fmt.Errorf("corpus %s: %w", name, err)
		}
		out[name] = data
	}
	return out, nil
}

var corpusBuilders = map[string]func() ([]byte, error){
	"sort.bin":  buildSort,
	"crc32.bin": buildCRC32,
	"fib.bin":   buildFib,
	"mix.elf":   buildMix,
}

// buildSort: fill a 32-word array at 0x1000 from an LCG, bubble-sort
// it in place, fold a checksum, store it at 0x1100, ebreak. Dense
// data-dependent branching — the swap branch is close to random.
func buildSort() ([]byte, error) {
	b := NewBuilder(0)
	const arr, n = 0x1000, 32
	b.Li(5, arr)
	b.Li(6, n)
	b.Li(7, 12345)      // LCG state
	b.Li(9, 1103515245) // LCG multiplier
	b.Li(10, 12345)     // LCG increment
	b.Li(8, 0)          // i
	b.L("fill")
	b.R(OpMUL, 7, 7, 9)
	b.R(OpADD, 7, 7, 10)
	b.I(OpSLLI, 11, 8, 2)
	b.R(OpADD, 11, 11, 5)
	b.S(OpSW, 7, 11, 0)
	b.I(OpADDI, 8, 8, 1)
	b.Br(OpBLT, 8, 6, "fill")

	b.Li(8, 0) // i
	b.L("outer")
	b.I(OpADDI, 12, 6, -1)
	b.R(OpSUB, 12, 12, 8) // limit = n-1-i
	b.Li(13, 0)           // j
	b.L("inner")
	b.Br(OpBGE, 13, 12, "inner_done")
	b.I(OpSLLI, 14, 13, 2)
	b.R(OpADD, 14, 14, 5)
	b.I(OpLW, 15, 14, 0)
	b.I(OpLW, 16, 14, 4)
	b.Br(OpBGE, 16, 15, "no_swap") // already ordered
	b.S(OpSW, 16, 14, 0)
	b.S(OpSW, 15, 14, 4)
	b.L("no_swap")
	b.I(OpADDI, 13, 13, 1)
	b.Jal(0, "inner")
	b.L("inner_done")
	b.I(OpADDI, 8, 8, 1)
	b.I(OpADDI, 12, 6, -1)
	b.Br(OpBLT, 8, 12, "outer")

	// checksum = sum of arr[k]*k (order-sensitive: wrong sort → wrong sum)
	b.Li(8, 0)
	b.Li(17, 0)
	b.L("sum")
	b.I(OpSLLI, 14, 8, 2)
	b.R(OpADD, 14, 14, 5)
	b.I(OpLW, 15, 14, 0)
	b.R(OpMUL, 15, 15, 8)
	b.R(OpADD, 17, 17, 15)
	b.I(OpADDI, 8, 8, 1)
	b.Br(OpBLT, 8, 6, "sum")
	b.Li(5, 0x1100)
	b.S(OpSW, 17, 5, 0)
	b.Sys(OpEBREAK)
	return b.Assemble()
}

// buildCRC32: bit-wise CRC-32 (reflected 0xEDB88320) over a 64-byte
// message embedded after the code — a flat image whose tail is data,
// exercising the data-in-text path and a tight 8-iteration inner loop.
func buildCRC32() ([]byte, error) {
	b := NewBuilder(0)
	b.Jal(1, "crc")
	b.Li(5, 0x1800)
	b.S(OpSW, 10, 5, 0)
	b.Sys(OpEBREAK)

	b.L("crc")
	b.La(5, "msg")
	b.Li(6, 64)
	b.Li(10, -1)
	b.Li(9, -306674912) // 0xEDB88320
	b.L("byteloop")
	b.I(OpLBU, 7, 5, 0)
	b.R(OpXOR, 10, 10, 7)
	b.Li(8, 8)
	b.L("bitloop")
	b.I(OpANDI, 11, 10, 1)
	b.I(OpSRLI, 10, 10, 1)
	b.Br(OpBEQ, 11, 0, "nobit")
	b.R(OpXOR, 10, 10, 9)
	b.L("nobit")
	b.I(OpADDI, 8, 8, -1)
	b.Br(OpBNE, 8, 0, "bitloop")
	b.I(OpADDI, 5, 5, 1)
	b.I(OpADDI, 6, 6, -1)
	b.Br(OpBNE, 6, 0, "byteloop")
	b.I(OpXORI, 10, 10, -1)
	b.Ret()

	b.L("msg")
	msg := make([]byte, 64)
	copy(msg, []byte("checkpoint repair for out-of-order execution machines, 1987."))
	b.Bytes(msg)
	return b.Assemble()
}

// buildFib: recursive fib(12) with a real call stack near 0x80000 —
// every frame's first store page-faults into fresh demand-mapped
// pages, and every return is an indirect jump through x1.
func buildFib() ([]byte, error) {
	b := NewBuilder(0)
	b.Li(2, 0x80000) // sp
	b.Li(10, 12)
	b.Jal(1, "fib")
	b.Li(5, 0x1000)
	b.S(OpSW, 10, 5, 0)
	b.Sys(OpEBREAK)

	b.L("fib")
	b.I(OpADDI, 2, 2, -16)
	b.S(OpSW, 1, 2, 12)
	b.S(OpSW, 8, 2, 8)
	b.S(OpSW, 9, 2, 4)
	b.Li(5, 2)
	b.Br(OpBLT, 10, 5, "done")
	b.R(OpADD, 8, 0, 10)
	b.I(OpADDI, 10, 8, -1)
	b.Jal(1, "fib")
	b.R(OpADD, 9, 0, 10)
	b.I(OpADDI, 10, 8, -2)
	b.Jal(1, "fib")
	b.R(OpADD, 10, 10, 9)
	b.L("done")
	b.I(OpLW, 9, 2, 4)
	b.I(OpLW, 8, 2, 8)
	b.I(OpLW, 1, 2, 12)
	b.I(OpADDI, 2, 2, 16)
	b.Ret()
	return b.Assemble()
}

// buildMix: a dhrystone-style mix packaged as an ELF32 executable with
// text at 0x1000 and a data segment at 0x2000: string copy and compare
// (byte loads/stores), a signed halfword sum (lh/sh), a call through a
// function pointer (jalr with a link register), an ecall (software
// trap), and a mul/div/rem tail.
func buildMix() ([]byte, error) {
	const textBase, dataBase = 0x1000, 0x2000
	const src, dst, harr, res = dataBase, dataBase + 0x100, dataBase + 0x80, dataBase + 0x180

	b := NewBuilder(textBase)
	b.L("_start")
	b.Li(5, src)
	b.Li(6, dst)
	b.Jal(1, "strcpy")
	b.Li(5, src)
	b.Li(6, dst)
	b.Jal(1, "strcmp")
	b.Li(7, res)
	b.S(OpSW, 10, 7, 0) // expect 0
	b.La(28, "hsum")    // function pointer
	b.I(OpJALR, 1, 28, 0)
	b.Li(7, res)
	b.S(OpSH, 10, 7, 4) // halfword store of the sum
	b.Sys(OpECALL)      // logged software trap; execution continues
	b.I(OpSRAI, 12, 10, 2)
	b.I(OpSLTIU, 13, 12, 500)
	b.Li(7, 3)
	b.R(OpDIV, 14, 10, 7)
	b.R(OpREM, 15, 10, 7)
	b.R(OpMUL, 16, 14, 7)
	b.R(OpSLTU, 17, 16, 10)
	b.Li(7, res)
	b.S(OpSW, 14, 7, 8)
	b.S(OpSW, 15, 7, 12)
	b.S(OpSW, 17, 7, 16)
	b.Sys(OpEBREAK)

	b.L("strcpy") // (x5 src, x6 dst), clobbers x7
	b.L("cploop")
	b.I(OpLB, 7, 5, 0)
	b.S(OpSB, 7, 6, 0)
	b.I(OpADDI, 5, 5, 1)
	b.I(OpADDI, 6, 6, 1)
	b.Br(OpBNE, 7, 0, "cploop")
	b.Ret()

	b.L("strcmp") // (x5, x6) -> x10
	b.L("cmploop")
	b.I(OpLB, 7, 5, 0)
	b.I(OpLB, 8, 6, 0)
	b.Br(OpBNE, 7, 8, "cmpdiff")
	b.Br(OpBEQ, 7, 0, "cmpeq")
	b.I(OpADDI, 5, 5, 1)
	b.I(OpADDI, 6, 6, 1)
	b.Jal(0, "cmploop")
	b.L("cmpdiff")
	b.R(OpSUB, 10, 7, 8)
	b.Ret()
	b.L("cmpeq")
	b.Li(10, 0)
	b.Ret()

	b.L("hsum") // sum 16 signed halfwords at harr -> x10
	b.Li(5, harr)
	b.Li(6, 16)
	b.Li(10, 0)
	b.L("hloop")
	b.I(OpLH, 7, 5, 0)
	b.R(OpADD, 10, 10, 7)
	b.I(OpADDI, 5, 5, 2)
	b.I(OpADDI, 6, 6, -1)
	b.Br(OpBNE, 6, 0, "hloop")
	b.Ret()

	text, err := b.Assemble()
	if err != nil {
		return nil, err
	}

	data := make([]byte, 0x200)
	copy(data, []byte("the quick brown fox jumps over the lazy dog"))
	hvals := []int16{1000, -700, 123, -1, 32767, -32768, 55, -999, 13, 0, 8191, -4096, 77, -77, 500, -500}
	for i, v := range hvals {
		data[0x80+2*i] = byte(v)
		data[0x80+2*i+1] = byte(uint16(v) >> 8)
	}
	img := &Image{
		Name:     "mix",
		Entry:    textBase,
		TextBase: textBase,
		Text:     text,
		Data:     []prog.Segment{{Addr: dataBase, Data: data}},
	}
	return WriteELF(img), nil
}
