package machine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/prog"
	"repro/internal/refsim"
	"repro/internal/workload"
)

func loadKernel(t testing.TB, name string) *prog.Program {
	t.Helper()
	k, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return k.Load()
}

// batchCfgs builds a spread of configurations for one batch: every
// scheme under test over alternating memory systems, so lanes differ in
// scheme counters, register-stack shapes, and difference machinery.
func batchCfgs(tr *refsim.Trace) []Config {
	memsys := []MemSystemKind{MemBackward3a, MemBackward3b, MemForward}
	var cfgs []Config
	for i, name := range []string{"tight4", "tight2", "direct", "loose", "loose-tiny"} {
		mk := schemesUnderTest()[name]
		cfgs = append(cfgs, Config{
			Scheme:    mk(),
			Predictor: bpred.NewBimodal(256),
			Speculate: true,
			MemSystem: memsys[i%len(memsys)],
			RefTrace:  tr,
		})
	}
	return cfgs
}

// TestRunBatchMatchesRun: a batch of heterogeneous lanes over one
// program must produce, lane for lane, the identical Results of
// independent machine.Run calls. The batch runs twice so the second
// pass exercises chassis reuse (Reset) across differing lane shapes.
func TestRunBatchMatchesRun(t *testing.T) {
	for _, kn := range []string{"fib", "bubble", "pagedemo"} {
		p := loadKernel(t, kn)
		tr := refsim.MustRecord(p, 0)
		var want []*Result
		for _, cfg := range batchCfgs(tr) {
			res, err := Run(p, cfg)
			if err != nil {
				t.Fatalf("%s: solo run: %v", kn, err)
			}
			want = append(want, res)
		}
		for pass := 0; pass < 2; pass++ {
			results, errs := RunBatch(p, batchCfgs(tr))
			for i, res := range results {
				if errs[i] != nil {
					t.Fatalf("%s pass %d lane %d: %v", kn, pass, i, errs[i])
				}
				if err := resultsIdentical(want[i], res); err != nil {
					t.Fatalf("%s pass %d lane %d diverged from solo run: %v", kn, pass, i, err)
				}
				if d := res.Mem.Diff(want[i].Mem); d != "" {
					t.Fatalf("%s pass %d lane %d: memory diverged: %s", kn, pass, i, d)
				}
			}
		}
	}
}

// TestRunBatchLaneRetirement: lanes finishing at very different cycle
// counts retire independently — survivors keep running and every slot
// still gets its own correct result. An erroring lane (undersized
// difference buffer deadlock) retires with its error without
// disturbing the completing lanes.
func TestRunBatchLaneRetirement(t *testing.T) {
	p := loadKernel(t, "sieve")
	mkFast := func() Config {
		return Config{
			Scheme:    core.NewSchemeTight(4, 0),
			Predictor: bpred.NewBimodal(256),
			Speculate: true,
			MemSystem: MemBackward3b,
		}
	}
	mkSlow := func() Config { // non-speculative: stalls at every branch
		return Config{
			Scheme:    core.NewSchemeE(2, 8, 0),
			Speculate: false,
			MemSystem: MemBackward3b,
		}
	}
	mkDead := func() Config { // deadlocks on a full difference buffer
		return Config{
			Scheme:         core.NewSchemeE(2, 1000, 4),
			Speculate:      false,
			MemSystem:      MemBackward3a,
			BufferCap:      3,
			WatchdogCycles: 5_000,
		}
	}
	soloFast, err := Run(p, mkFast())
	if err != nil {
		t.Fatal(err)
	}
	soloSlow, err := Run(p, mkSlow())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, mkDead()); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("undersized-buffer configuration should deadlock solo, got %v", err)
	}
	if soloFast.Stats.Cycles >= soloSlow.Stats.Cycles {
		t.Fatalf("retirement not exercised: fast lane (%d cycles) should finish before slow lane (%d)",
			soloFast.Stats.Cycles, soloSlow.Stats.Cycles)
	}

	results, errs := RunBatch(p, []Config{mkFast(), mkDead(), mkSlow()})
	if errs[0] != nil {
		t.Fatalf("fast lane: %v", errs[0])
	}
	if err := resultsIdentical(soloFast, results[0]); err != nil {
		t.Fatalf("fast lane diverged: %v", err)
	}
	if !errors.Is(errs[1], ErrDeadlock) {
		t.Fatalf("deadlock lane: got %v, want %v", errs[1], ErrDeadlock)
	}
	if errs[2] != nil {
		t.Fatalf("slow lane: %v", errs[2])
	}
	if err := resultsIdentical(soloSlow, results[2]); err != nil {
		t.Fatalf("slow lane diverged: %v", err)
	}
	s := ReadBatchStats()
	if s.Batches == 0 || s.Lanes < 3 || s.MaxWidth < 3 {
		t.Fatalf("batch counters not maintained: %+v", s)
	}
	if s.WallCycles > 0 && s.Occupancy() <= 0 {
		t.Fatalf("occupancy not maintained: %+v", s)
	}
}

// TestRunPooledPreservesHandedOutMemory: a Result's memory image must
// survive the chassis that produced it being reused for another run —
// the pool may recycle everything except state handed to callers.
func TestRunPooledPreservesHandedOutMemory(t *testing.T) {
	cfg := func() Config {
		return Config{
			Scheme:    core.NewSchemeTight(4, 0),
			Predictor: bpred.NewBimodal(256),
			Speculate: true,
			MemSystem: MemBackward3b,
		}
	}
	p1 := loadKernel(t, "memcpy")
	p2 := loadKernel(t, "bubble")
	want, err := Run(p1, cfg())
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunPooled(p1, cfg())
	if err != nil {
		t.Fatal(err)
	}
	// Churn the pool with a different program; p1's result must not move.
	for i := 0; i < 4; i++ {
		if _, err := RunPooled(p2, cfg()); err != nil {
			t.Fatal(err)
		}
	}
	if d := got.Mem.Diff(want.Mem); d != "" {
		t.Fatalf("handed-out memory corrupted by chassis reuse: %s", d)
	}
	if err := resultsIdentical(want, got); err != nil {
		t.Fatalf("pooled run diverged: %v", err)
	}
}

// gauntletCfg builds shape-changing configuration i with fresh per-run
// state (scheme, predictor) on every call, so a reference machine and a
// reused chassis can start from identical configurations.
func gauntletCfg(i int) Config {
	switch i {
	case 0:
		return Config{Scheme: core.NewSchemeTight(4, 0), Predictor: bpred.NewBimodal(256), Speculate: true, MemSystem: MemBackward3b}
	case 1:
		return Config{Scheme: core.NewSchemeLoose(2, 4, 12), Predictor: bpred.NewBimodal(128), Speculate: true, MemSystem: MemForward}
	case 2:
		return Config{Scheme: core.NewSchemeDirect(2, 4, 12, 0), Predictor: bpred.NewTaken(), Speculate: true, MemSystem: MemBackward3a}
	default:
		tm := DefaultTiming
		tm.Window = 16
		tm.LSQ = 8
		return Config{Scheme: core.NewSchemeE(2, 8, 0), Speculate: false, MemSystem: MemBackward3b, Timing: tm}
	}
}

// TestResetMatchesNew drives one chassis through a gauntlet of
// shape-changing configurations — different schemes (register-stack
// shapes), memory systems, predictors, and window sizes — and requires
// every Reset run to match a fresh machine exactly.
func TestResetMatchesNew(t *testing.T) {
	p := loadKernel(t, "crc")
	var m *Machine
	for i := 0; i < 4; i++ {
		ref, err := Run(p, gauntletCfg(i))
		if err != nil {
			t.Fatalf("cfg %d fresh: %v", i, err)
		}
		if m == nil {
			m, err = New(p, gauntletCfg(i))
		} else {
			err = m.Reset(p, gauntletCfg(i))
		}
		if err != nil {
			t.Fatalf("cfg %d chassis: %v", i, err)
		}
		got, err := m.RunLoop()
		if err != nil {
			t.Fatalf("cfg %d chassis run: %v", i, err)
		}
		if err := resultsIdentical(ref, got); err != nil {
			t.Fatalf("cfg %d: reset chassis diverged from fresh machine: %v", i, err)
		}
		if d := got.Mem.Diff(ref.Mem); d != "" {
			t.Fatalf("cfg %d: memory diverged: %s", i, d)
		}
	}
}

// TestConcurrentBatches runs several batches over shared programs and
// memoized traces concurrently (exercised under -race by `make race`):
// lanes share the trace read-only, chassis move through the pool, and
// every lane must still match its solo run.
func TestConcurrentBatches(t *testing.T) {
	kernels := []string{"fib", "bubble", "sieve", "memcpy"}
	type ref struct {
		p    *prog.Program
		tr   *refsim.Trace
		want []*Result
	}
	refs := make([]ref, len(kernels))
	for i, kn := range kernels {
		p := loadKernel(t, kn)
		tr := refsim.MustRecord(p, 0)
		var want []*Result
		for _, cfg := range batchCfgs(tr) {
			res, err := Run(p, cfg)
			if err != nil {
				t.Fatalf("%s: %v", kn, err)
			}
			want = append(want, res)
		}
		refs[i] = ref{p: p, tr: tr, want: want}
	}
	var wg sync.WaitGroup
	errc := make(chan error, 4*len(refs))
	for round := 0; round < 4; round++ {
		for i := range refs {
			wg.Add(1)
			go func(r ref, tag int) {
				defer wg.Done()
				results, errs := RunBatch(r.p, batchCfgs(r.tr))
				for li := range results {
					if errs[li] != nil {
						errc <- fmt.Errorf("worker %d lane %d: %w", tag, li, errs[li])
						return
					}
					if err := resultsIdentical(r.want[li], results[li]); err != nil {
						errc <- fmt.Errorf("worker %d lane %d: %w", tag, li, err)
						return
					}
				}
			}(refs[i], round*len(refs)+i)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
