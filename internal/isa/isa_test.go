package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpTableComplete(t *testing.T) {
	for op := OpInvalid + 1; op < Op(NumOps()); op++ {
		if op.String() == "" || strings.HasPrefix(op.String(), "op(") {
			t.Errorf("op %d has no name", op)
		}
		if !op.Valid() {
			t.Errorf("op %d not valid", op)
		}
	}
	if OpInvalid.Valid() {
		t.Error("OpInvalid must not be valid")
	}
	if Op(NumOps()).Valid() {
		t.Error("out-of-range op must not be valid")
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := OpInvalid + 1; op < Op(NumOps()); op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName accepted bogus mnemonic")
	}
}

func TestTrapFaultPartition(t *testing.T) {
	traps := map[Op]bool{OpADDV: true, OpSUBV: true, OpMULV: true, OpADDIV: true, OpTRAP: true}
	faults := map[Op]bool{
		OpDIV: true, OpREM: true,
		OpLW: true, OpLB: true, OpLBU: true, OpSW: true, OpSB: true,
		OpLH: true, OpLHU: true, OpSH: true,
		OpVLW: true, OpVSW: true,
		OpJRA: true, OpJALRA: true,
		OpInvalid: true,
	}
	for op := Op(0); op < Op(NumOps()); op++ {
		if op.CanTrap() != traps[op] {
			t.Errorf("%v CanTrap = %v", op, op.CanTrap())
		}
		if op.CanFault() != faults[op] {
			t.Errorf("%v CanFault = %v", op, op.CanFault())
		}
		if op.CanTrap() && op.CanFault() {
			t.Errorf("%v both traps and faults", op)
		}
	}
}

func TestBranchesAreOnlyBRepairSources(t *testing.T) {
	// "Only those instructions containing conditional branches can cause
	// B-repairs" (§2.2).
	n := 0
	for op := OpInvalid + 1; op < Op(NumOps()); op++ {
		if op.Class() == ClassBranch {
			n++
			in := Inst{Op: op}
			if !in.IsBranch() {
				t.Errorf("%v class branch but IsBranch false", op)
			}
		}
	}
	if n != 6 {
		t.Errorf("expected 6 conditional branch opcodes, got %d", n)
	}
}

func TestSourcesAndDest(t *testing.T) {
	in := Inst{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3}
	rs, n := in.Sources()
	if n != 2 || rs[0] != 2 || rs[1] != 3 {
		t.Errorf("ADD sources = %v, %d", rs, n)
	}
	if d, ok := in.Dest(); !ok || d != 1 {
		t.Errorf("ADD dest = %v, %v", d, ok)
	}
	st := Inst{Op: OpSW, Rs1: 4, Rs2: 5}
	if _, ok := st.Dest(); ok {
		t.Error("SW has no dest")
	}
	rs, n = st.Sources()
	if n != 2 || rs[0] != 4 || rs[1] != 5 {
		t.Errorf("SW sources = %v, %d", rs, n)
	}
	j := Inst{Op: OpJ, Imm: 7}
	if _, n := j.Sources(); n != 0 {
		t.Error("J reads no registers")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		in := Inst{
			Op:  Op(1 + rng.Intn(NumOps()-1)),
			Rd:  Reg(rng.Intn(NumRegs)),
			Rs1: Reg(rng.Intn(NumRegs)),
			Rs2: Reg(rng.Intn(NumRegs)),
		}
		if in.Op.HasImmWord() {
			in.Imm = int32(rng.Uint32())
		}
		words := in.Encode(nil)
		got, n, err := Decode(words)
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		if n != len(words) || got != in {
			t.Fatalf("round trip %v -> %v", in, got)
		}
	}
}

func TestEncodeProgramRoundTrip(t *testing.T) {
	insts := []Inst{
		{Op: OpADDI, Rd: 1, Rs1: 0, Imm: 42},
		{Op: OpADD, Rd: 2, Rs1: 1, Rs2: 1},
		{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: -3},
		{Op: OpHALT},
	}
	words := EncodeProgram(insts)
	got, err := DecodeProgram(words)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(insts) {
		t.Fatalf("len %d != %d", len(got), len(insts))
	}
	for i := range insts {
		if got[i] != insts[i] {
			t.Errorf("inst %d: %v != %v", i, got[i], insts[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("empty stream must fail")
	}
	if _, _, err := Decode([]uint32{uint32(200) << 24}); err == nil {
		t.Error("invalid opcode must fail")
	}
	// ADDI needs an immediate word.
	if _, _, err := Decode([]uint32{uint32(OpADDI) << 24}); err == nil {
		t.Error("truncated immediate must fail")
	}
	if _, err := DecodeProgram([]uint32{uint32(OpADD) << 24, 0xFF000000}); err == nil {
		t.Error("invalid second instruction must fail")
	}
}

func TestExceptionRepairPoints(t *testing.T) {
	// Paper §2.2: trap repairs to the right of the violator, fault to
	// the left.
	trap := Exception{Code: ExcCodeOverflow, PC: 10}
	if trap.Kind() != ExcTrap || trap.PreciseRepairPC() != 11 {
		t.Errorf("trap repair point = %d", trap.PreciseRepairPC())
	}
	fault := Exception{Code: ExcCodePageFault, PC: 10, Addr: 0x1000}
	if fault.Kind() != ExcFault || fault.PreciseRepairPC() != 10 {
		t.Errorf("fault repair point = %d", fault.PreciseRepairPC())
	}
	if ExcCodeNone.Kind() != ExcNone {
		t.Error("none kind")
	}
}

func TestInstStringFormats(t *testing.T) {
	cases := map[string]Inst{
		"add r1, r2, r3":  {Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		"addi r1, r2, -5": {Op: OpADDI, Rd: 1, Rs1: 2, Imm: -5},
		"lui r4, 255":     {Op: OpLUI, Rd: 4, Imm: 255},
		"lw r1, 8(r2)":    {Op: OpLW, Rd: 1, Rs1: 2, Imm: 8},
		"sw r3, 8(r2)":    {Op: OpSW, Rs2: 3, Rs1: 2, Imm: 8},
		"beq r1, r2, +4":  {Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: 4},
		"j 12":            {Op: OpJ, Imm: 12},
		"jal r31, 12":     {Op: OpJAL, Rd: 31, Imm: 12},
		"jr r31":          {Op: OpJR, Rs1: 31},
		"jalr r1, r2":     {Op: OpJALR, Rd: 1, Rs1: 2},
		"trap 3":          {Op: OpTRAP, Imm: 3},
		"halt":            {Op: OpHALT},
		"nop":             {Op: OpNOP},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", in.Op, got, want)
		}
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	f := func(opRaw uint8, rd, rs1, rs2 uint8, imm int32) bool {
		op := Op(1 + int(opRaw)%(NumOps()-1))
		in := Inst{Op: op, Rd: Reg(rd % NumRegs), Rs1: Reg(rs1 % NumRegs), Rs2: Reg(rs2 % NumRegs)}
		if op.HasImmWord() {
			in.Imm = imm
		}
		words := in.Encode(nil)
		got, _, err := Decode(words)
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAllStringsRender(t *testing.T) {
	// Every opcode renders in its format without panicking or emitting
	// placeholder text, and class/kind/code names are all defined.
	for op := OpInvalid + 1; op < Op(NumOps()); op++ {
		in := Inst{Op: op, Rd: 1, Rs1: 2, Rs2: 3, Imm: 5}
		s := in.String()
		if s == "" || strings.Contains(s, "???") {
			t.Errorf("%v renders %q", op, s)
		}
		if op.Class().String() == "" {
			t.Errorf("%v class unnamed", op)
		}
	}
	for c := ExcCode(0); c <= ExcCodeBadInst; c++ {
		if strings.HasPrefix(c.String(), "exccode(") {
			t.Errorf("code %d unnamed", c)
		}
	}
	for k := ExcNone; k <= ExcFault; k++ {
		if strings.HasPrefix(k.String(), "exckind(") {
			t.Errorf("kind %d unnamed", k)
		}
	}
	if Reg(7).String() != "r7" {
		t.Error("reg name")
	}
}

func TestExceptionStrings(t *testing.T) {
	cases := []Exception{
		{Code: ExcCodeSoftware, PC: 3, Info: 9},
		{Code: ExcCodePageFault, PC: 4, Addr: 0x8000},
		{Code: ExcCodeMisaligned, PC: 5, Addr: 0x13},
		{Code: ExcCodeOverflow, PC: 6},
	}
	for _, e := range cases {
		s := e.String()
		if !strings.Contains(s, "pc=") {
			t.Errorf("exception string %q", s)
		}
	}
}

func TestOperandMetadataConsistency(t *testing.T) {
	// Formats and operand-usage flags must agree: e.g. FormatRRR ops
	// read both sources and write rd; stores never write rd.
	for op := OpInvalid + 1; op < Op(NumOps()); op++ {
		switch op.Format() {
		case FormatRRR:
			if !op.ReadsRs1() || !op.ReadsRs2() || !op.WritesRd() {
				t.Errorf("%v: FormatRRR flags", op)
			}
		case FormatBr:
			if !op.ReadsRs1() || !op.ReadsRs2() || op.WritesRd() {
				t.Errorf("%v: FormatBr flags", op)
			}
		}
		if op.Class() == ClassStore && op.WritesRd() {
			t.Errorf("%v: store writes rd", op)
		}
		if op.CanExcept() != (op.CanTrap() || op.CanFault()) {
			t.Errorf("%v: CanExcept inconsistent", op)
		}
	}
}

func TestVectorOpsInFormats(t *testing.T) {
	if v := (Inst{Op: OpVLW, Rd: 8, Rs1: 2, Imm: 4}).String(); !strings.Contains(v, "vlw r8, 4(r2)") {
		t.Errorf("vlw string: %q", v)
	}
	if v := (Inst{Op: OpVSW, Rs2: 8, Rs1: 2, Imm: 4}).String(); !strings.Contains(v, "vsw r8, 4(r2)") {
		t.Errorf("vsw string: %q", v)
	}
}
