package isa

import "testing"

// FuzzDecode checks the binary decoder never panics and that whatever
// it accepts re-encodes to the same bytes (canonical round trip).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add((func() []byte {
		words := EncodeProgram([]Inst{
			{Op: OpADDI, Rd: 1, Imm: 42},
			{Op: OpADD, Rd: 2, Rs1: 1, Rs2: 1},
			{Op: OpHALT},
		})
		b := make([]byte, 0, len(words)*4)
		for _, w := range words {
			b = append(b, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
		}
		return b
	})())
	f.Fuzz(func(t *testing.T, raw []byte) {
		words := make([]uint32, len(raw)/4)
		for i := range words {
			words[i] = uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 | uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24
		}
		insts, err := DecodeProgram(words)
		if err != nil {
			return
		}
		re := EncodeProgram(insts)
		// Decoding zeroes reserved bits, so compare via a second
		// round trip instead of raw words.
		again, err := DecodeProgram(re)
		if err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", err)
		}
		if len(again) != len(insts) {
			t.Fatalf("round trip length %d != %d", len(again), len(insts))
		}
		for i := range insts {
			if again[i] != insts[i] {
				t.Fatalf("inst %d: %v != %v", i, again[i], insts[i])
			}
		}
	})
}
