package isa

import "fmt"

// Binary instruction encoding. The first word of every instruction is
//
//	[31:24] opcode (8 bits)
//	[23:19] rd     (5 bits)
//	[18:14] rs1    (5 bits)
//	[13:9]  rs2    (5 bits)
//	 [8:0]  zero
//
// Formats that carry an immediate (FormatRRI, FormatRI, FormatMem,
// FormatBr, FormatJ, and TRAP) append a second word holding the full
// 32-bit immediate. EncodeProgram and DecodeProgram handle the variable
// length. The simulators operate on decoded []Inst; the binary form
// exists for tooling (ckptasm, round-trip tests).

// HasImmWord reports whether the encoded form of the opcode carries a
// trailing 32-bit immediate word.
func (op Op) HasImmWord() bool {
	switch op.Format() {
	case FormatRRR, FormatJR:
		return false
	case FormatSys:
		return op == OpTRAP
	default:
		return true
	}
}

// Encode appends the binary encoding of in to buf and returns the
// extended slice. The encoding is one or two 32-bit words.
func (in Inst) Encode(buf []uint32) []uint32 {
	w := uint32(in.Op)<<24 | uint32(in.Rd&31)<<19 | uint32(in.Rs1&31)<<14 | uint32(in.Rs2&31)<<9
	buf = append(buf, w)
	if in.Op.HasImmWord() {
		buf = append(buf, uint32(in.Imm))
	}
	return buf
}

// DecodeError reports a malformed binary instruction stream.
type DecodeError struct {
	Offset int    // word offset of the faulty instruction
	Reason string // human-readable description
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("isa: decode error at word %d: %s", e.Offset, e.Reason)
}

// Decode decodes one instruction starting at words[0] and returns it
// together with the number of words consumed.
func Decode(words []uint32) (Inst, int, error) {
	if len(words) == 0 {
		return Inst{}, 0, &DecodeError{Offset: 0, Reason: "empty stream"}
	}
	w := words[0]
	op := Op(w >> 24)
	if !op.Valid() {
		return Inst{}, 0, &DecodeError{Offset: 0, Reason: fmt.Sprintf("invalid opcode %d", uint8(op))}
	}
	in := Inst{
		Op:  op,
		Rd:  Reg(w >> 19 & 31),
		Rs1: Reg(w >> 14 & 31),
		Rs2: Reg(w >> 9 & 31),
	}
	n := 1
	if op.HasImmWord() {
		if len(words) < 2 {
			return Inst{}, 0, &DecodeError{Offset: 0, Reason: "truncated immediate"}
		}
		in.Imm = int32(words[1])
		n = 2
	}
	return in, n, nil
}

// EncodeProgram encodes a sequence of instructions into binary words.
func EncodeProgram(insts []Inst) []uint32 {
	buf := make([]uint32, 0, len(insts)*2)
	for _, in := range insts {
		buf = in.Encode(buf)
	}
	return buf
}

// DecodeProgram decodes a full binary word stream back to instructions.
func DecodeProgram(words []uint32) ([]Inst, error) {
	var insts []Inst
	for off := 0; off < len(words); {
		in, n, err := Decode(words[off:])
		if err != nil {
			de := err.(*DecodeError)
			de.Offset += off
			return nil, de
		}
		insts = append(insts, in)
		off += n
	}
	return insts, nil
}
