package refsim

import (
	"fmt"
	"sync"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
)

// Oracle is the observable surface of the reference model that the
// out-of-order machines consult while simulating: the architectural PC,
// completion state, retirement/exception progress, and a Step that
// advances one architectural attempt. Both the live Shadow interpreter
// and a trace Replay implement it, and they are observationally
// indistinguishable — a machine run produces bit-identical results
// against either.
type Oracle interface {
	PC() int
	Halted() bool
	Retired() int
	ExcCount() int
	// Steps is the number of attempts executed — the StateAt boundary
	// index. Not derivable from Retired+ExcCount (a trap attempt bumps
	// both).
	Steps() int
	Step() StepResult
}

// traceStep is one recorded Shadow.Step: what Step returned plus the
// shadow's observable state immediately after it, and the cumulative
// counts of state deltas (register writes, memory writes, page maps)
// after it — step i's own deltas occupy [step[i-1].end, step[i].end) of
// the corresponding delta streams.
type traceStep struct {
	res         StepResult
	postPC      int
	postRetired int
	postExcs    int
	regEnd      uint32
	memEnd      uint32
	mapEnd      uint32
}

// regDelta is one architectural register write.
type regDelta struct {
	r isa.Reg
	v uint32
}

// memDelta is one architectural memory write (aligned longword + mask).
type memDelta struct {
	addr uint32
	data uint32
	mask uint8
}

// chunkList is append-only chunked storage, sized like the step chunks:
// recording never re-copies, and random access stays O(1).
type chunkList[T any] struct {
	chunks [][]T
	n      int
}

func (c *chunkList[T]) add(v T) {
	if c.n&(1<<traceChunkShift-1) == 0 {
		c.chunks = append(c.chunks, make([]T, 0, 1<<traceChunkShift))
	}
	last := &c.chunks[len(c.chunks)-1]
	*last = append(*last, v)
	c.n++
}

func (c *chunkList[T]) at(i int) *T {
	return &c.chunks[i>>traceChunkShift][i&(1<<traceChunkShift-1)]
}

// Trace is a recorded architectural event stream of one complete Shadow
// run of a program: every StepResult in order, together with the
// post-step PC/retired/exception progress needed to replay the shadow's
// observable state without re-executing the interpreter. Record once,
// replay for every machine configuration in a sweep — the
// store-vs-recompute trade applied to the golden model.
//
// A Trace is immutable after Record and safe for concurrent Replays.
//
// Steps are stored in fixed-size chunks rather than one flat slice:
// long programs record hundreds of thousands of steps, and growing a
// flat slice would repeatedly memmove tens of megabytes. Chunks make
// recording append-only with no re-copying.
type Trace struct {
	prog   *prog.Program
	chunks [][]traceStep
	n      int
	// State-delta streams, indexed by the cumulative end offsets stored
	// in each traceStep. They let Replay.StateAt reconstruct the full
	// architectural state at any step boundary without re-running the
	// interpreter.
	regs chunkList[regDelta]
	mems chunkList[memDelta]
	maps chunkList[uint32]
	// excs is the architectural exception log of the recorded run.
	excs []isa.Exception
}

// traceChunkShift sizes chunks at 4096 steps (a few hundred KiB each).
const traceChunkShift = 12

func (t *Trace) at(i int) *traceStep {
	return &t.chunks[i>>traceChunkShift][i&(1<<traceChunkShift-1)]
}

// Program returns the program this trace was recorded from. Consumers
// validate by pointer identity: a trace only replays correctly against
// the exact program value it was recorded from.
func (t *Trace) Program() *prog.Program { return t.prog }

// Steps returns the number of recorded architectural attempts.
func (t *Trace) Steps() int { return t.n }

// Record runs a fresh Shadow of p to completion and records every step.
// maxSteps bounds the attempt count (0 means DefaultMaxSteps); a program
// still running at the bound yields an error rather than an incomplete
// trace, because a partial trace would silently diverge from a live
// shadow once exhausted.
func Record(p *prog.Program, maxSteps int) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	s := NewShadow(p)
	t := &Trace{prog: p}
	s.hooks = Options{
		OnRegWrite: func(r isa.Reg, v uint32) { t.regs.add(regDelta{r, v}) },
		OnMemWrite: func(addr, data uint32, mask uint8) { t.mems.add(memDelta{addr, data, mask}) },
		OnMap:      func(base uint32) { t.maps.add(base) },
	}
	for !s.Halted() {
		if t.n >= maxSteps {
			return nil, fmt.Errorf("refsim: trace of %q exceeds %d steps without halting", p.Name, maxSteps)
		}
		r := s.Step()
		if t.n&(1<<traceChunkShift-1) == 0 {
			t.chunks = append(t.chunks, make([]traceStep, 0, 1<<traceChunkShift))
		}
		if r.Exc.Code != isa.ExcCodeNone {
			t.excs = append(t.excs, r.Exc)
		}
		c := &t.chunks[len(t.chunks)-1]
		*c = append(*c, traceStep{
			res:         r,
			postPC:      s.PC(),
			postRetired: s.Retired(),
			postExcs:    s.ExcCount(),
			regEnd:      uint32(t.regs.n),
			memEnd:      uint32(t.mems.n),
			mapEnd:      uint32(t.maps.n),
		})
		t.n++
	}
	return t, nil
}

// MustRecord is Record but panics on error.
func MustRecord(p *prog.Program, maxSteps int) *Trace {
	t, err := Record(p, maxSteps)
	if err != nil {
		panic(err)
	}
	return t
}

// programMemo is the per-program cache slot attached to prog.Program:
// the recorded trace and the default-options reference run, each
// computed at most once per process and collected together with the
// program.
type programMemo struct {
	traceOnce sync.Once
	trace     *Trace
	traceErr  error
	runOnce   sync.Once
	run       *Result
	runErr    error
}

func memoOf(p *prog.Program) *programMemo {
	if m, ok := p.Memo().(*programMemo); ok {
		return m
	}
	return p.MemoOrStore(&programMemo{}).(*programMemo)
}

// CachedTrace records a trace of p once per process and returns it on
// every subsequent call, memoized on the program itself (so generated
// programs are collected together with their traces). Returns an error
// if the program does not halt within DefaultMaxSteps.
func CachedTrace(p *prog.Program) (*Trace, error) {
	m := memoOf(p)
	m.traceOnce.Do(func() {
		m.trace, m.traceErr = Record(p, 0)
	})
	return m.trace, m.traceErr
}

// CachedRun interprets p once per process with default Options and
// returns the shared Result on every subsequent call. Callers must
// treat the Result as read-only.
func CachedRun(p *prog.Program) (*Result, error) {
	m := memoOf(p)
	m.runOnce.Do(func() {
		m.run, m.runErr = Run(p, Options{})
	})
	return m.run, m.runErr
}

// MustCachedRun is CachedRun but panics on error.
func MustCachedRun(p *prog.Program) *Result {
	r, err := CachedRun(p)
	if err != nil {
		panic(err)
	}
	return r
}

// Exceptions returns the architectural exception log of the recorded
// run. Callers must treat the slice as read-only.
func (t *Trace) Exceptions() []isa.Exception { return t.excs }

// Retired returns the number of instructions the recorded run
// architecturally completed.
func (t *Trace) Retired() int {
	if t.n == 0 {
		return 0
	}
	return t.at(t.n - 1).postRetired
}

// FinalResult assembles the architectural end state of the recorded run
// as a Result, reconstructed purely from the trace (the interpreter is
// not re-run). The memory is a fresh copy owned by the caller; the
// exception slice is shared with the trace and read-only.
func (t *Trace) FinalResult() *Result {
	st := t.Replay().StateAt(t.n)
	return &Result{
		Regs:       st.Regs,
		Mem:        st.Mem,
		Exceptions: t.excs,
		Halted:     true, // Record only returns complete traces
		Retired:    t.Retired(),
	}
}

// Replay walks a recorded Trace, presenting the same observable surface
// as the live Shadow it was recorded from.
type Replay struct {
	t       *Trace
	i       int // next step index
	pc      int
	retired int
	excs    int
	halted  bool

	// StateAt cursor: the reconstructed architectural state after
	// sStep steps, plus the next unapplied index into each delta
	// stream. Monotonic forward queries advance incrementally; a
	// backward seek rebuilds from the program image.
	sMem  *mem.Memory
	sRegs [isa.NumRegs]uint32
	sStep int
	sReg  int
	sMemI int
	sMap  int
}

// Replay returns a fresh replayer positioned at the program entry.
func (t *Trace) Replay() *Replay {
	return &Replay{t: t, pc: t.prog.Entry}
}

// PC returns the instruction index of the next architectural attempt.
func (r *Replay) PC() int { return r.pc }

// Halted reports whether the architectural program has finished.
func (r *Replay) Halted() bool { return r.halted }

// Retired returns the number of architecturally completed instructions.
func (r *Replay) Retired() int { return r.retired }

// ExcCount returns the number of exceptions observed so far.
func (r *Replay) ExcCount() int { return r.excs }

// Steps returns the number of attempts replayed so far (the StateAt
// boundary index of the replay cursor).
func (r *Replay) Steps() int { return r.i }

// Step replays one recorded attempt. Like Shadow.Step, calling Step
// after the program halted returns Halted without effect.
func (r *Replay) Step() StepResult {
	if r.halted || r.i >= r.t.n {
		return StepResult{PC: r.pc, Halted: true}
	}
	s := r.t.at(r.i)
	r.i++
	r.pc = s.postPC
	r.retired = s.postRetired
	r.excs = s.postExcs
	r.halted = s.res.Halted
	return s.res
}

// ArchState is a standalone architectural register/memory snapshot, as
// reconstructed by Replay.StateAt. The memory is owned by the caller.
type ArchState struct {
	Regs [isa.NumRegs]uint32
	Mem  *mem.Memory
}

// StateAt returns the architectural state at the boundary after dynamic
// step n of the recorded run: n == 0 is the initial program image,
// n == Steps() the final state. It reconstructs state by applying the
// recorded per-step deltas, never re-running the interpreter; the
// replay keeps a cursor, so a monotonically increasing sequence of
// queries costs one pass over the trace in total (a backward seek
// restarts from the image). The returned snapshot is a deep copy,
// independent of later queries. Panics if n is out of range.
//
// StateAt is independent of the Step replay cursor; using both on one
// Replay is fine (but a Replay is not safe for concurrent use).
func (r *Replay) StateAt(n int) *ArchState {
	if n < 0 || n > r.t.n {
		panic(fmt.Sprintf("refsim: StateAt(%d) out of range [0,%d]", n, r.t.n))
	}
	if r.sMem == nil || n < r.sStep {
		r.sMem = r.t.prog.NewMemory()
		r.sRegs = [isa.NumRegs]uint32{}
		r.sStep, r.sReg, r.sMemI, r.sMap = 0, 0, 0, 0
	}
	for ; r.sStep < n; r.sStep++ {
		s := r.t.at(r.sStep)
		// Within a step, writes precede maps (a freshly mapped page is
		// only touched by later steps; the excepting attempt that maps
		// it never writes it).
		for ; r.sReg < int(s.regEnd); r.sReg++ {
			d := r.t.regs.at(r.sReg)
			r.sRegs[d.r] = d.v
		}
		for ; r.sMemI < int(s.memEnd); r.sMemI++ {
			d := r.t.mems.at(r.sMemI)
			r.sMem.WriteMasked(d.addr, d.data, d.mask)
		}
		for ; r.sMap < int(s.mapEnd); r.sMap++ {
			r.sMem.Map(*r.t.maps.at(r.sMap), mem.PageSize)
		}
	}
	return &ArchState{Regs: r.sRegs, Mem: r.sMem.Clone()}
}

var (
	_ Oracle = (*Shadow)(nil)
	_ Oracle = (*Replay)(nil)
)
