package machine

import (
	"testing"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/workload"
)

// noopProbe observes both hook points and mutates nothing.
type noopProbe struct {
	preIssues   int
	writebacks  int
	sawVecElems bool
}

func (p *noopProbe) PreIssue(m *Machine, seq uint64, pc int, in isa.Inst) {
	p.preIssues++
	if in.Op.IsVector() {
		// Cracked elements must never reach the probe as the raw vector
		// instruction.
		panic("probe saw an uncracked vector instruction")
	}
	_ = m.Precise()
	_ = m.OnTruePathAt(pc)
}

func (p *noopProbe) PostWriteback(m *Machine, w Writeback) {
	p.writebacks++
	if w.op.ElemCount > 1 {
		p.sawVecElems = true
	}
	_, _ = w.StoreMask()
}

// TestProbeNoopIdentical runs every kernel under every scheme with a
// nil Probe and with an observation-only Probe, and requires identical
// Results — the seam must be invisible unless a probe mutates state.
func TestProbeNoopIdentical(t *testing.T) {
	for _, k := range workload.Kernels() {
		p := k.Load()
		for sName, mk := range schemesUnderTest() {
			t.Run(k.Name+"/"+sName, func(t *testing.T) {
				mkCfg := func() Config {
					return Config{
						Scheme:    mk(),
						Predictor: bpred.NewBimodal(256),
						Speculate: true,
						MemSystem: MemBackward3b,
					}
				}
				bare, err := Run(p, mkCfg())
				if err != nil {
					t.Fatalf("nil probe: %v", err)
				}
				probe := &noopProbe{}
				cfg := mkCfg()
				cfg.Probe = probe
				probed, err := Run(p, cfg)
				if err != nil {
					t.Fatalf("noop probe: %v", err)
				}
				if err := resultsIdentical(bare, probed); err != nil {
					t.Fatalf("observation-only probe changed results: %v", err)
				}
				if int64(probe.preIssues) != probed.Stats.Issued {
					t.Fatalf("PreIssue fired %d times, %d issues recorded", probe.preIssues, probed.Stats.Issued)
				}
				if probe.writebacks == 0 {
					t.Fatal("PostWriteback never fired")
				}
			})
		}
	}
}

// TestProbeSeesPreciseMode: the seam fires during single-step
// re-execution too (the injector relies on counting every issue event).
func TestProbeSeesPreciseMode(t *testing.T) {
	k, err := workload.ByName("vecfault")
	if err != nil {
		t.Fatal(err)
	}
	probe := &noopProbe{}
	res, err := Run(k.Load(), Config{
		Scheme:    core.NewSchemeE(4, 8, 0),
		Speculate: false,
		Probe:     probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PreciseInsts == 0 {
		t.Fatal("expected precise-mode execution on vecfault")
	}
	if int64(probe.preIssues) != res.Stats.Issued {
		t.Fatalf("PreIssue fired %d times, %d issues recorded", probe.preIssues, res.Stats.Issued)
	}
	if !probe.sawVecElems {
		t.Fatal("expected cracked vector elements at writeback")
	}
}

// TestProbeNilZeroAlloc: a nil probe adds no allocations to a machine
// run — the seam is two pointer tests on the hot path.
func TestProbeNilZeroAlloc(t *testing.T) {
	k, err := workload.ByName("sieve")
	if err != nil {
		t.Fatal(err)
	}
	p := k.Load()
	probe := &noopProbe{}
	run := func(withProbe bool) float64 {
		return testing.AllocsPerRun(3, func() {
			cfg := Config{
				Scheme:    core.NewSchemeE(4, 64, 0),
				Speculate: false,
			}
			if withProbe {
				cfg.Probe = probe
			}
			if _, err := Run(p, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	bare, probed := run(false), run(true)
	if bare != probed {
		t.Fatalf("probe seam changed allocation count: nil=%v noop=%v", bare, probed)
	}
}
