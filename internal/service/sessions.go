package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/asm"
	"repro/internal/machine"
	"repro/internal/rv32"
	"repro/internal/session"
	"repro/internal/workload"
)

// Session-manager defaults (Config fields override).
const (
	defaultSessionCap = 8
	defaultSessionTTL = 15 * time.Minute
)

// sessionManager owns the daemon's live debug sessions: a bounded id ->
// session map plus the idle-TTL janitor that reaps sessions whose
// client vanished. Unlike jobs, sessions are stateful and exclusive —
// there is no coalescing and no cache, so the manager's job is purely
// lifecycle: admit (under the cap), hand out, evict, and drain.
type sessionManager struct {
	cap int
	ttl time.Duration

	mu       sync.Mutex
	sessions map[string]*session.Session
	nextID   int64

	created atomic.Int64
	evicted atomic.Int64
	closed  atomic.Int64
	rewinds atomic.Int64
}

func newSessionManager(cap int, ttl time.Duration) *sessionManager {
	if cap <= 0 {
		cap = defaultSessionCap
	}
	if ttl <= 0 {
		ttl = defaultSessionTTL
	}
	return &sessionManager{cap: cap, ttl: ttl, sessions: make(map[string]*session.Session)}
}

// errSessionCap rejects creation beyond the session cap (HTTP 429).
var errSessionCap = errors.New("session cap reached; close one or wait for idle eviction")

// add admits a new session or reports cap exhaustion.
func (sm *sessionManager) add(sess func(id string) (*session.Session, error)) (*session.Session, error) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if len(sm.sessions) >= sm.cap {
		return nil, fmt.Errorf("%w (%d open)", errSessionCap, sm.cap)
	}
	sm.nextID++
	id := fmt.Sprintf("s-%d", sm.nextID)
	s, err := sess(id)
	if err != nil {
		return nil, err
	}
	sm.sessions[id] = s
	sm.created.Add(1)
	return s, nil
}

func (sm *sessionManager) get(id string) (*session.Session, bool) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	s, ok := sm.sessions[id]
	return s, ok
}

// remove closes and forgets a session (DELETE verb).
func (sm *sessionManager) remove(id, reason string) bool {
	sm.mu.Lock()
	s, ok := sm.sessions[id]
	delete(sm.sessions, id)
	sm.mu.Unlock()
	if ok {
		s.Close(reason)
		sm.closed.Add(1)
	}
	return ok
}

// sweep evicts sessions idle longer than the TTL. A session with a verb
// in flight reports idle 0, so streaming runs are never reaped.
func (sm *sessionManager) sweep(now time.Time) {
	sm.mu.Lock()
	var victims []*session.Session
	for id, s := range sm.sessions {
		if s.IdleFor(now) > sm.ttl {
			victims = append(victims, s)
			delete(sm.sessions, id)
		}
	}
	sm.mu.Unlock()
	for _, s := range victims {
		s.Close("idle timeout")
		sm.evicted.Add(1)
	}
}

// janitor runs sweep until ctx ends.
func (sm *sessionManager) janitor(ctx context.Context) {
	period := sm.ttl / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > 30*time.Second {
		period = 30 * time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			sm.sweep(now)
		}
	}
}

// closeAll closes every open session — the drain path. Close interrupts
// streaming runs, so their clients get a terminal "closed" event before
// the listener stops.
func (sm *sessionManager) closeAll(reason string) {
	sm.mu.Lock()
	victims := make([]*session.Session, 0, len(sm.sessions))
	for id, s := range sm.sessions {
		victims = append(victims, s)
		delete(sm.sessions, id)
	}
	sm.mu.Unlock()
	for _, s := range victims {
		s.Close(reason)
		sm.closed.Add(1)
	}
}

func (sm *sessionManager) open() int {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return len(sm.sessions)
}

// metricsView is the /metrics "sessions" section.
func (sm *sessionManager) metricsView() any {
	return map[string]int64{
		"open":    int64(sm.open()),
		"created": sm.created.Load(),
		"evicted": sm.evicted.Load(),
		"closed":  sm.closed.Load(),
		"rewinds": sm.rewinds.Load(),
	}
}

// sessionSummary is one GET /sessions row: the cheap fields readable
// without taking the session's verb lock, so listing never blocks on a
// streaming run.
type sessionSummary struct {
	ID      string        `json:"id"`
	State   session.State `json:"state"`
	Program string        `json:"program"`
	IdleMS  int64         `json:"idle_ms"`
}

func (sm *sessionManager) list(now time.Time) []sessionSummary {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	out := make([]sessionSummary, 0, len(sm.sessions))
	for id, s := range sm.sessions {
		out = append(out, sessionSummary{
			ID:      id,
			State:   s.State(),
			Program: s.Program().Name,
			IdleMS:  s.IdleFor(now).Milliseconds(),
		})
	}
	return out
}

// --- HTTP layer ---

// sessionError maps session/machine errors onto HTTP statuses: busy
// verbs and rewind races are 409 (retryable conflicts), closed sessions
// are 410 (the resource is gone for good), unrewindable targets are 422
// (the request is well-formed but this machine state refuses it).
func sessionError(w http.ResponseWriter, err error) {
	var te *session.TransitionError
	switch {
	case errors.Is(err, session.ErrBusy), errors.Is(err, machine.ErrRewindBusy):
		httpError(w, http.StatusConflict, err.Error())
	case errors.Is(err, session.ErrClosed):
		httpError(w, http.StatusGone, err.Error())
	case errors.Is(err, machine.ErrNotRewindable):
		httpError(w, http.StatusUnprocessableEntity, err.Error())
	case errors.As(err, &te):
		httpError(w, http.StatusConflict, err.Error())
	default:
		httpError(w, http.StatusBadRequest, err.Error())
	}
}

// sessionCreateRequest is the POST /sessions body. Exactly one program
// source: a built-in workload by name, assembly source text, or a
// compiled rv32 image.
type sessionCreateRequest struct {
	Workload string `json:"workload,omitempty"`
	// Asm is assembly source assembled under Name (default "adhoc").
	Asm string `json:"asm,omitempty"`
	// RV32 is a compiled rv32 image (flat binary or ELF32, base64 over
	// JSON), loaded under Name (default "rv32").
	RV32    []byte      `json:"rv32,omitempty"`
	Name    string      `json:"name,omitempty"`
	Machine MachineSpec `json:"machine"`
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req sessionCreateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad session spec: %v", err))
		return
	}
	sources := 0
	for _, have := range []bool{req.Workload != "", req.Asm != "", len(req.RV32) != 0} {
		if have {
			sources++
		}
	}
	if sources != 1 {
		httpError(w, http.StatusBadRequest, "exactly one of workload, asm, or rv32 is required")
		return
	}
	if err := req.Machine.canonicalize(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	sess, err := s.sessions.add(func(id string) (*session.Session, error) {
		cfg, err := req.Machine.machineConfig()
		if err != nil {
			return nil, err
		}
		if req.Workload != "" {
			k, err := workload.ByName(req.Workload)
			if err != nil {
				return nil, err
			}
			return session.New(id, k.Load(), cfg)
		}
		if len(req.RV32) != 0 {
			name := req.Name
			if name == "" {
				name = "rv32"
			}
			prg, err := rv32.LoadProgram(name, req.RV32)
			if err != nil {
				return nil, err
			}
			return session.New(id, prg, cfg)
		}
		name := req.Name
		if name == "" {
			name = "adhoc"
		}
		prg, err := asm.Assemble(name, req.Asm)
		if err != nil {
			return nil, err
		}
		return session.New(id, prg, cfg)
	})
	if err != nil {
		if errors.Is(err, errSessionCap) {
			httpError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	v, err := sess.Inspect()
	if err != nil {
		sessionError(w, err)
		return
	}
	w.Header().Set("Location", "/sessions/"+sess.ID)
	writeJSON(w, http.StatusCreated, v)
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sessions": s.sessions.list(time.Now())})
}

// sessionByID resolves {id} or answers 404.
func (s *Server) sessionByID(w http.ResponseWriter, r *http.Request) (*session.Session, bool) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such session")
	}
	return sess, ok
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessionByID(w, r)
	if !ok {
		return
	}
	v, err := sess.Inspect()
	if err != nil {
		sessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleSessionStep(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessionByID(w, r)
	if !ok {
		return
	}
	var req struct {
		N int `json:"n,omitempty"`
	}
	if err := decodeBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	v, err := sess.Step(req.N)
	if err != nil {
		sessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// sessionRunRequest is the POST /sessions/{id}/run body. Zero targets
// mean "run to completion".
type sessionRunRequest struct {
	ToCycle int64 `json:"to_cycle,omitempty"`
	ToPC    *int  `json:"to_pc,omitempty"`
	// Stride is the event-stream granularity in cycles (default 1024).
	Stride int64 `json:"stride,omitempty"`
}

// handleSessionRun streams NDJSON cycle events while the run verb
// advances the machine; the response ends with one terminal event
// (paused | done | error | closed). The request context is the client's
// lease: disconnect pauses the run.
func (s *Server) handleSessionRun(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessionByID(w, r)
	if !ok {
		return
	}
	var req sessionRunRequest
	if err := decodeBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Headers go out lazily on the first event so verb-admission errors
	// (busy, closed) can still answer with a proper status code.
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	started := false
	sink := func(e session.Event) error {
		if !started {
			started = true
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
		}
		if err := enc.Encode(e); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	var err error
	if req.ToPC != nil {
		_, err = sess.RunToPC(r.Context(), *req.ToPC, req.Stride, sink)
	} else {
		target := req.ToCycle
		if target <= 0 {
			target = 1 << 62 // run to completion
		}
		_, err = sess.RunToCycle(r.Context(), target, req.Stride, sink)
	}
	if err != nil && !started {
		sessionError(w, err)
	}
}

func (s *Server) handleSessionCheckpoints(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessionByID(w, r)
	if !ok {
		return
	}
	targets, err := sess.Checkpoints()
	if err != nil {
		sessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"checkpoints": targets})
}

// sessionRewindRequest is the POST /sessions/{id}/rewind body. With a
// machine spec, the boundary is re-materialized under that new
// configuration instead of repaired in place.
type sessionRewindRequest struct {
	Seq     uint64       `json:"seq"`
	Machine *MachineSpec `json:"machine,omitempty"`
}

func (s *Server) handleSessionRewind(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessionByID(w, r)
	if !ok {
		return
	}
	var req sessionRewindRequest
	if err := decodeBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var info *machine.RewindInfo
	var err error
	if req.Machine != nil {
		spec := *req.Machine
		if err := spec.canonicalize(); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		cfg, cerr := spec.machineConfig()
		if cerr != nil {
			httpError(w, http.StatusBadRequest, cerr.Error())
			return
		}
		info, err = sess.RewindNewConfig(req.Seq, cfg)
	} else {
		info, err = sess.Rewind(req.Seq)
	}
	if err != nil {
		sessionError(w, err)
		return
	}
	s.sessions.rewinds.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"rewound": info})
}

func (s *Server) handleSessionMem(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessionByID(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	addr, err := strconv.ParseUint(q.Get("addr"), 0, 32)
	if err != nil {
		httpError(w, http.StatusBadRequest, "addr: want a 32-bit address (decimal or 0x hex)")
		return
	}
	words := 16
	if ws := q.Get("words"); ws != "" {
		if words, err = strconv.Atoi(ws); err != nil || words <= 0 {
			httpError(w, http.StatusBadRequest, "words: want a positive count")
			return
		}
	}
	mem, err := sess.Memory(uint32(addr), words)
	if err != nil {
		sessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"memory": mem})
}

func (s *Server) handleSessionDivergence(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessionByID(w, r)
	if !ok {
		return
	}
	d, err := sess.CheckDivergence()
	if err != nil {
		sessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.remove(id, "closed by client") {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": string(session.StateClosed)})
}

// decodeBody decodes an optional JSON body: an empty body leaves v at
// its zero value, unknown fields are rejected.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("bad request body: %v", err)
	}
	return nil
}
