package diff

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/isa"
)

// Algo selects the backward-difference repair algorithm.
type Algo uint8

// Repair algorithms.
const (
	// Simple is Algorithm 3(a): every recovered cached line is
	// conservatively marked dirty, guaranteeing the next replacement
	// writes it back whether or not memory was actually wrong.
	Simple Algo = iota
	// Sophisticated is Algorithm 3(b): the purged dirty bit saved in
	// each entry and a per-line hazard bit drive the Table 1 next-state
	// functions, keeping lines clean whenever memory is still correct.
	Sophisticated
)

// String returns a readable algorithm name.
func (a Algo) String() string {
	if a == Simple {
		return "3(a)-simple"
	}
	return "3(b)-sophisticated"
}

// Backward is the backward-difference memory system of §3.2.2: stores
// write the cache immediately (current space semantics) and push undo
// records; Repair pops them to reconstruct an earlier logical space.
//
// Capacity models the hardware buffer (a bidirectional shift register in
// the paper). Theorem 7: (2c-1)·W entries are necessary and sufficient
// to handle all possible repairs without extra stalls, where c is the
// number of active checkpoints and W the per-checkpoint write limit.
// Entries older than the oldest live checkpoint are dead and may be
// discarded on overflow; if the buffer fills with live entries, Store
// reports ok=false and the machine must stall the store.
type Backward struct {
	cache    *cache.Cache
	algo     Algo
	capacity int // 0 = unbounded
	entries  []Entry
	oldest   uint64 // oldest live checkpoint id
	stats    Stats
}

// NewBackward builds a backward-difference system over a cache.
// capacity 0 means unbounded.
func NewBackward(c *cache.Cache, algo Algo, capacity int) *Backward {
	return &Backward{cache: c, algo: algo, capacity: capacity,
		entries: make([]Entry, 0, entryArenaCap(capacity))}
}

// Reset restores the buffer to the state NewBackward(c, algo, capacity)
// would build, keeping the entry arena for reuse.
func (b *Backward) Reset(c *cache.Cache, algo Algo, capacity int) {
	b.cache = c
	b.algo = algo
	b.capacity = capacity
	if want := entryArenaCap(capacity); cap(b.entries) < want {
		b.entries = make([]Entry, 0, want)
	} else {
		b.entries = b.entries[:0]
	}
	b.oldest = 0
	b.stats = Stats{}
}

// Cache returns the underlying cache.
func (b *Backward) Cache() *cache.Cache { return b.cache }

// Algo returns the repair algorithm in use.
func (b *Backward) Algo() Algo { return b.algo }

// Occupancy returns the current number of buffered entries.
func (b *Backward) Occupancy() int { return len(b.entries) }

// Stats implements MemSystem.
func (b *Backward) Stats() Stats { return b.stats }

// UndoneCounter implements MemSystem.
func (b *Backward) UndoneCounter() *int { return &b.stats.Undone }

// Load implements MemSystem: reads go straight to the cache, which holds
// the current logical space.
func (b *Backward) Load(addr uint32) (uint32, bool, isa.ExcCode) {
	return b.cache.ReadLongword(addr)
}

// CheckAccess implements MemSystem.
func (b *Backward) CheckAccess(addr, size uint32) isa.ExcCode {
	return b.cache.CheckAccess(addr, size)
}

// Peek implements MemSystem: the cache holds the current logical space,
// so a cached line wins and backing memory answers the rest.
func (b *Backward) Peek(addr uint32) (uint32, bool) {
	return peekCache(b.cache, addr)
}

// peekCache reads one longword through a cache without side effects:
// the cached copy if the line is present, else the backing memory.
func peekCache(c *cache.Cache, addr uint32) (uint32, bool) {
	base := addr &^ 3
	if v, present := c.PeekLongword(base); present {
		return v, true
	}
	v, exc := c.Backing().Read32(base)
	if exc != isa.ExcCodeNone {
		return 0, false
	}
	return v, true
}

// Store implements MemSystem: the write is performed on the cache and
// the overwritten longword (with the purged dirty bit, for Algorithm
// 3(b)) is pushed onto the difference.
func (b *Backward) Store(ckpt uint64, addr uint32, data uint32, mask uint8) (bool, bool, isa.ExcCode) {
	if b.capacity > 0 && len(b.entries) >= b.capacity {
		b.compact()
		if len(b.entries) >= b.capacity {
			b.stats.StallStores++
			return false, false, isa.ExcCodeNone
		}
	}
	wr, exc := b.cache.WriteLongword(addr, data, mask)
	if exc != isa.ExcCodeNone {
		return true, false, exc
	}
	b.entries = append(b.entries, Entry{
		Addr:       addr &^ 3,
		Mask:       mask,
		Data:       wr.Old,
		Ckpt:       ckpt,
		SavedDirty: wr.WasDirty,
	})
	b.stats.Pushes++
	if len(b.entries) > b.stats.MaxOccupancy {
		b.stats.MaxOccupancy = len(b.entries)
	}
	return true, wr.Hit, isa.ExcCodeNone
}

// compact discards dead entries — entries whose checkpoint id is below
// the oldest live checkpoint and which therefore can never be needed by
// any future repair (the paper's "the overflowed entry is simply
// discarded"). Because pushes happen in memory-modification order, dead
// entries can interleave with live ones; compaction filters them out
// wherever they sit, preserving the relative order of live entries.
func (b *Backward) compact() {
	kept := b.entries[:0]
	dropped := 0
	for _, e := range b.entries {
		if e.Ckpt >= b.oldest {
			kept = append(kept, e)
		} else {
			dropped++
		}
	}
	// Only bounded buffers report overflow discards; eager reclamation
	// of an unbounded buffer is a simulator memory optimisation, not a
	// hardware event.
	if b.capacity > 0 {
		b.stats.Overflowed += dropped
	}
	b.entries = kept
}

// Release implements MemSystem. In the bounded (hardware) buffer, dead
// entries are dropped lazily on overflow, matching the shift register;
// an unbounded buffer compacts eagerly once enough dead entries
// accumulate, so simulation memory stays proportional to the live
// window rather than to the run length.
func (b *Backward) Release(oldestLive uint64) {
	if oldestLive > b.oldest {
		b.oldest = oldestLive
	}
	if b.capacity == 0 && len(b.entries) > 256 && b.entries[0].Ckpt < b.oldest {
		b.compact()
	}
}

// Repair implements MemSystem: restore the logical space of checkpoint
// `to` by undoing, newest first, every entry whose operation carried a
// checkpoint identification >= to (those operations sit to the right of
// the checkpoint in the issuing stream).
//
// Entries carrying older identifications can interleave with the undone
// ones, because pushes happen in memory-modification order; they belong
// to instructions left of the repair point and are preserved in place
// (they remain needed if an even older checkpoint is repaired to
// later). For any single longword the load/store queue enforces
// program-order writes, so the undone entries are always the newest
// entries for the addresses they cover; undoing them newest-first
// restores exactly the checkpoint's logical space.
func (b *Backward) Repair(to uint64) {
	b.stats.Repairs++
	// Pass 1: undo matching entries newest-first.
	for i := len(b.entries) - 1; i >= 0; i-- {
		if b.entries[i].Ckpt >= to {
			b.applyUndo(b.entries[i], b.lineWrittenLater(i, to))
			b.stats.Undone++
		}
	}
	// Pass 2: stable-compact the surviving entries in push order.
	kept := b.entries[:0]
	for _, e := range b.entries {
		if e.Ckpt < to {
			kept = append(kept, e)
		}
	}
	b.entries = kept
}

// lineWrittenLater reports whether any entry that stays live (Ckpt <
// to) was pushed AFTER entry i and touches the same cache line. Such an
// entry is an instructionally-older write that executed later (the
// load/store queue orders same-longword accesses only), so the line's
// saved dirty bit from entry i cannot be trusted to mean "the memory
// copy matched this line when the write executed": the kept write's
// data may live only in the cache. The undo then treats the entry's
// saved dirty bit as set, which is always conservative-safe.
func (b *Backward) lineWrittenLater(i int, to uint64) bool {
	mask := ^uint32(b.cache.Config().LineBytes - 1)
	line := b.entries[i].Addr & mask
	for j := i + 1; j < len(b.entries); j++ {
		if b.entries[j].Ckpt < to && b.entries[j].Addr&mask == line {
			return true
		}
	}
	return false
}

// applyUndo recovers one longword per Algorithm 3(a)/3(b). sameLineKept
// forces the conservative saved-dirty treatment (see lineWrittenLater).
func (b *Backward) applyUndo(e Entry, sameLineKept bool) {
	present, _ := b.cache.Present(e.Addr)
	if !present {
		// Case 1: the modified line has been replaced, so its (wrong)
		// data was written back; patch main memory directly.
		b.cache.RecoverInMemory(e.Addr, e.Data, e.Mask)
		return
	}
	// Case 2: the line is still cached.
	if b.cache.Policy() == cache.WriteThrough {
		// Under write-through cache and memory never diverge: recover
		// both and keep the line clean.
		b.cache.RecoverInCache(e.Addr, e.Data, e.Mask, false, false)
		b.cache.RecoverInMemory(e.Addr, e.Data, e.Mask)
		return
	}
	switch b.algo {
	case Simple:
		// Conservative: always set dirty so the next replacement writes
		// back, making memory correct whether or not it was.
		b.cache.RecoverInCache(e.Addr, e.Data, e.Mask, true, false)
	case Sophisticated:
		d, h := b.cache.LineBits(e.Addr)
		nd, nh := Table1(h, e.SavedDirty || sameLineKept, d)
		if d && !nd {
			// 3(a) would have left this line dirty; 3(b) proved memory
			// still correct and cleared it.
			b.cache.CountAvoidedWriteBack()
		}
		b.cache.RecoverInCache(e.Addr, e.Data, e.Mask, nd, nh)
	default:
		panic(fmt.Sprintf("diff: unknown algorithm %d", b.algo))
	}
}

// Finish implements MemSystem.
func (b *Backward) Finish() {
	b.entries = b.entries[:0]
	b.cache.FlushAll()
}

var _ MemSystem = (*Backward)(nil)
