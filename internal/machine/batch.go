// Batch-lockstep execution: one program, B configurations, advanced in
// lockstep over one shared memoized trace/decode stream.
//
// Every sweep in the experiments re-runs the same program under many
// configurations, so the dominant redundant work is per-run setup (a
// fresh machine is ~76 allocations) and cold-cache walks of the shared
// reference trace. RunBatch removes both: lanes draw their chassis from
// a process-wide pool and are rebuilt in place (Machine.Reset), and the
// scheduler always advances the lane with the smallest cycle count, so
// all live lanes stay within one event of each other and walk the same
// region of the shared trace together. Lane state that varies per
// configuration (scheme counters, checkpoint windows, FU pools,
// predictor state) lives inside each lane's Machine; the batch keeps its
// own bookkeeping — cycles, retirement, results — struct-of-arrays so
// the scheduling loop touches contiguous lane slots.
//
// Composition with the event-driven skipper (Machine.skipIdle): a lane's
// Step already jumps to that lane's next event, and because the
// scheduler picks the minimum-cycle lane, the batch as a whole advances
// to the earliest next event across live lanes. Lanes finish at
// different cycles; a finished lane retires from the batch (its chassis
// returns to the pool) and the survivors continue. Results are identical
// to B independent machine.Run calls — the lanes share no mutable state.
package machine

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/prog"
)

// chassis pools retired machines for in-place rebuilding. Machines from
// the pool are always Reset before use and never shared between lanes.
var chassis sync.Pool

// acquire returns a machine rebuilt for one run of p, drawing a pooled
// chassis when one is available.
func acquire(p *prog.Program, cfg Config) (*Machine, error) {
	if v := chassis.Get(); v != nil {
		m := v.(*Machine)
		if err := m.Reset(p, cfg); err == nil {
			return m, nil
		}
		// A Reset error leaves the chassis unusable; fall through to New,
		// which reports the same validation error if cfg is at fault.
	}
	return New(p, cfg)
}

// release returns a finished machine's chassis to the pool.
func release(m *Machine) { chassis.Put(m) }

// RunPooled is Run drawing its machine from the chassis pool: identical
// results, amortised setup. Singleton runs routed here still benefit
// from chassis reuse even when no batching is possible.
func RunPooled(p *prog.Program, cfg Config) (*Result, error) {
	m, err := acquire(p, cfg)
	if err != nil {
		return nil, err
	}
	res, err := m.RunLoop()
	release(m)
	singleRuns.Add(1)
	return res, err
}

// RunBatch runs p once per configuration, advancing all lanes in
// lockstep, and returns per-lane results and errors (slot i corresponds
// to cfgs[i]). A lane whose configuration fails validation gets its
// error while the remaining lanes still run; a lane that aborts
// mid-flight (cycle limit, deadlock) retires with both its partial
// result and its error, exactly as machine.Run would return them.
func RunBatch(p *prog.Program, cfgs []Config) ([]*Result, []error) {
	n := len(cfgs)
	results := make([]*Result, n)
	errs := make([]error, n)
	if n == 0 {
		return results, errs
	}
	batches.Add(1)
	batchLanes.Add(int64(n))
	for {
		cur := maxWidth.Load()
		if int64(n) <= cur || maxWidth.CompareAndSwap(cur, int64(n)) {
			break
		}
	}

	// SoA batch bookkeeping: lanes[i], idx[i], and cycles[i] describe
	// live lane i; retirement swap-removes a slot so the scheduling scan
	// stays dense.
	lanes := make([]*Machine, 0, n)
	idx := make([]int, 0, n)
	cycles := make([]int64, 0, n)
	for i, cfg := range cfgs {
		m, err := acquire(p, cfg)
		if err != nil {
			errs[i] = err
			continue
		}
		lanes = append(lanes, m)
		idx = append(idx, i)
		cycles = append(cycles, 0)
	}

	var sumLaneCycles, batchCycles int64
	for len(lanes) > 0 {
		// Pick the laggard lane and the runner-up horizon: advancing the
		// minimum-cycle lane until it passes the second-smallest cycle
		// keeps the batch in lockstep while letting the lane's own
		// event-driven skip jump idle stretches in one step. Lanes run
		// neck-and-neck most of the time (same program), so a strict
		// handover every time the laggard noses ahead would pay the
		// O(B) scheduling scan per simulated cycle; the quantum lets the
		// chosen lane run a bounded stretch past the horizon instead,
		// amortising the scan while keeping all live lanes within one
		// quantum of the same trace region.
		const quantum = 16384
		li := 0
		minC := cycles[0]
		horizon := int64(math.MaxInt64) - quantum
		for j := 1; j < len(lanes); j++ {
			if c := cycles[j]; c < minC {
				horizon = minC
				minC, li = c, j
			} else if c < horizon {
				horizon = c
			}
		}
		horizon += quantum
		m := lanes[li]
		alive := true
		for alive && m.Cycle() <= horizon {
			alive = m.Step()
		}
		cycles[li] = m.Cycle()
		if alive {
			continue
		}
		i := idx[li]
		results[i], errs[i] = m.Finish()
		release(m)
		sumLaneCycles += cycles[li]
		if cycles[li] > batchCycles {
			batchCycles = cycles[li]
		}
		last := len(lanes) - 1
		lanes[li], idx[li], cycles[li] = lanes[last], idx[last], cycles[last]
		lanes, idx, cycles = lanes[:last], idx[:last], cycles[:last]
	}
	laneCycles.Add(sumLaneCycles)
	wallCycles.Add(batchCycles)
	return results, errs
}

// Process-wide batch instrumentation, mirrored onto the service /metrics
// endpoint and sampled by cmd/bench.
var (
	batches    atomic.Int64
	batchLanes atomic.Int64
	singleRuns atomic.Int64
	maxWidth   atomic.Int64
	laneCycles atomic.Int64 // sum of per-lane final cycle counts
	wallCycles atomic.Int64 // sum of per-batch maximum lane cycle counts
)

// BatchStats is a snapshot of the process-wide batch counters.
type BatchStats struct {
	// Batches and Lanes count RunBatch calls and the lanes they carried;
	// Lanes/Batches is the average batch width.
	Batches int64
	Lanes   int64
	// SingleRuns counts RunPooled calls (runs that could not be grouped
	// into a batch but still reused a pooled chassis).
	SingleRuns int64
	// MaxWidth is the widest batch seen.
	MaxWidth int64
	// LaneCycles / WallCycles is the average number of live lanes over a
	// batch's lifetime (lane occupancy): LaneCycles sums every lane's
	// final cycle count, WallCycles sums each batch's longest lane.
	LaneCycles int64
	WallCycles int64
}

// Occupancy returns average live lanes over batch lifetimes, or 0 when
// no batch has completed.
func (s BatchStats) Occupancy() float64 {
	if s.WallCycles == 0 {
		return 0
	}
	return float64(s.LaneCycles) / float64(s.WallCycles)
}

// AvgWidth returns the average batch width, or 0 when no batch ran.
func (s BatchStats) AvgWidth() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Lanes) / float64(s.Batches)
}

// ReadBatchStats returns the current process-wide batch counters
// (monotonic; subtract two snapshots for an interval).
func ReadBatchStats() BatchStats {
	return BatchStats{
		Batches:    batches.Load(),
		Lanes:      batchLanes.Load(),
		SingleRuns: singleRuns.Load(),
		MaxWidth:   maxWidth.Load(),
		LaneCycles: laneCycles.Load(),
		WallCycles: wallCycles.Load(),
	}
}
