package machine

import (
	"repro/internal/isa"
	"repro/internal/ooo"
	"repro/internal/sem"
)

// Probe is the machine's observation and fault-injection seam. A probe
// installed via Config.Probe is invoked at two pipeline points:
//
//   - PreIssue, immediately before an operation issues (before its
//     operands are read from the register file and before the shadow
//     oracle steps), with the sequence number and fetch PC it will
//     issue under and the micro-operation being issued (for vector
//     instructions, the cracked element);
//   - PostWriteback, immediately before a finished operation's result
//     is delivered (register write/broadcast, scheme bookkeeping,
//     branch resolution).
//
// Both fire in every mode, including single-step (precise) execution.
// A nil Probe costs one pointer test per event and changes nothing:
// the hot path, the PR-2 fast paths, and every artefact byte stay
// identical (TestProbeNoopIdentical, TestRunAllByteIdenticalNoopProbe).
//
// Probes may mutate machine state only through the documented
// fault-injection surface: CorruptReg, CorruptMem, and the Writeback
// mutators. The machine is deterministic, so an injected run's prefix
// up to the probe's first mutation is identical to the fault-free run —
// the property the campaign planner in internal/fault builds on.
type Probe interface {
	PreIssue(m *Machine, seq uint64, pc int, in isa.Inst)
	PostWriteback(m *Machine, w Writeback)
}

// Writeback is the probe's view of one operation about to deliver. The
// accessors expose what outcome classification and campaign planning
// need; the mutators are the detected/silent FU-corruption injection
// points.
type Writeback struct {
	op *ooo.Op
}

// Seq returns the operation's sequence number.
func (w Writeback) Seq() uint64 { return w.op.Seq }

// PC returns the instruction index the operation issued from.
func (w Writeback) PC() int { return w.op.PC }

// Inst returns the micro-operation (the cracked element for vectors).
func (w Writeback) Inst() isa.Inst { return w.op.Inst }

// Result returns the computed result value (meaningful only for
// operations with a destination).
func (w Writeback) Result() uint32 { return w.op.Result }

// Exc returns the exception code the operation will deliver with.
func (w Writeback) Exc() isa.ExcCode { return w.op.Exc }

// OnTruePath reports whether the operation issued on the architecturally
// correct path.
func (w Writeback) OnTruePath() bool { return w.op.OnTruePath }

// Accessed reports whether a memory operation reached its access stage
// (true also for accesses that faulted there).
func (w Writeback) Accessed() bool { return w.op.Accessed }

// IsLoad reports whether the operation is a load.
func (w Writeback) IsLoad() bool { return w.op.IsLoad() }

// IsStore reports whether the operation is a store.
func (w Writeback) IsStore() bool { return w.op.IsStore() }

// Addr returns a memory operation's effective address.
func (w Writeback) Addr() uint32 { return w.op.Addr }

// StoreMask returns the aligned longword address and byte mask a store
// wrote (zero mask for non-stores).
func (w Writeback) StoreMask() (aligned uint32, mask uint8) {
	if !w.op.IsStore() {
		return 0, 0
	}
	aligned, _, mask = sem.StoreBytes(w.op.Inst.Op, w.op.Addr, w.op.BVal)
	return aligned, mask
}

// CorruptResult XORs mask into the operation's result just before
// delivery, modelling a silent functional-unit fault: the corrupt value
// is written to the current register space (and the backups delivery
// normally updates) and broadcast to waiting consumers.
func (w Writeback) CorruptResult(mask uint32) { w.op.Result ^= mask }

// ForceException flags the operation with code as if detection hardware
// (a parity or residue check) had caught a fault on it, leaving the
// result delivery itself untouched. No-op if the operation already
// carries an architectural exception. The repair scheme sees it exactly
// like any excepting operation: the owning checkpoint cannot retire,
// and E-repair eventually rewinds and re-executes precisely.
func (w Writeback) ForceException(code isa.ExcCode) {
	if w.op.Exc == isa.ExcCodeNone {
		w.op.Exc = code
	}
}

// CorruptReg XORs mask into register r's current-space value cell — a
// register-file single-event upset. See regfile.File.Corrupt for the
// exact semantics under pending reservations.
func (m *Machine) CorruptReg(r isa.Reg, mask uint32) {
	m.regs.Corrupt(r, mask)
}

// CorruptMem XORs mask into the longword at the aligned address addr,
// wherever its current-space copy lives: the cache line if present
// (preserving dirty/hazard bits), else backing memory. Returns false if
// the address is unmapped, in which case nothing is flipped. The flip
// bypasses the difference buffer — like a real particle strike, no undo
// record exists, so only state still covered by a later repair or
// overwrite is recoverable.
func (m *Machine) CorruptMem(addr uint32, mask uint32) bool {
	addr &^= 3
	if v, present := m.dcache.PeekLongword(addr); present {
		dirty, hazard := m.dcache.LineBits(addr)
		m.dcache.RecoverInCache(addr, v^mask, 0b1111, dirty, hazard)
		return true
	}
	v, exc := m.backing.ReadMasked(addr)
	if exc != isa.ExcCodeNone {
		return false
	}
	m.backing.WriteMasked(addr, v^mask, 0b1111)
	return true
}

// Precise reports whether the machine is in single-step (precise) mode.
func (m *Machine) Precise() bool { return m.mode == modePrecise }

// OracleRetired returns the shadow oracle's retirement count at the
// probe point — the architectural progress coordinate a PreIssue event
// maps to on the reference trace (refsim.Trace.StepAtRetired turns it
// back into a trace step boundary).
func (m *Machine) OracleRetired() int { return m.shadow.Retired() }

// OnTruePathAt reports whether an instruction issuing now at pc lies on
// the architecturally correct path: the shadow oracle is aligned,
// running, and about to execute pc. Precise-mode issue is always on the
// true path, but is reported by Precise, not here (the shadow may
// lawfully be ahead of the machine during precise re-execution).
func (m *Machine) OnTruePathAt(pc int) bool {
	return m.aligned && !m.shadow.Halted() && m.shadow.PC() == pc
}
