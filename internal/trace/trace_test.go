package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRenderSingleStack(t *testing.T) {
	s := Snapshot{
		Title:      "t1",
		StackNames: []string{""},
		Stacks: [][]core.View{{
			{BornSeq: 4, PC: 4, Active: 3},
			{BornSeq: 8, PC: 8, Active: 5, Except: true},
		}},
	}
	out := Render(s)
	for _, want := range []string{"t1", "CP@pc4", "CP@pc8", "active2", "active1", "cnt=3", "cnt=5 EXC", "backup1", "backup2", "issuing"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Render(Snapshot{Title: "empty", Stacks: [][]core.View{{}}, StackNames: []string{""}})
	if !strings.Contains(out, "no active checkpoints") {
		t.Errorf("empty render: %s", out)
	}
}

func TestRenderPendFlag(t *testing.T) {
	s := Snapshot{
		StackNames: []string{"B"},
		Stacks:     [][]core.View{{{BornSeq: 3, PC: 3, Pend: true}}},
	}
	out := Render(s)
	if !strings.Contains(out, "pend") || !strings.Contains(out, "[B-repair spaces]") {
		t.Errorf("pend render: %s", out)
	}
}

func TestCaptureFromScheme(t *testing.T) {
	sch := core.NewSchemeTight(3, 0)
	// Capture before Restart: no checkpoints, but must not panic and
	// must identify one stack.
	snap := Capture("x", sch)
	if len(snap.Stacks) != 1 || snap.StackNames[0] != "" {
		t.Errorf("capture: %+v", snap)
	}
	two := core.NewSchemeDirect(2, 3, 8, 0)
	snap = Capture("y", two)
	if len(snap.Stacks) != 2 || snap.StackNames[0] != "E" || snap.StackNames[1] != "B" {
		t.Errorf("two-stack capture: %+v", snap)
	}
}

func TestSeries(t *testing.T) {
	a := Snapshot{Title: "a", Stacks: [][]core.View{{}}, StackNames: []string{""}}
	b := Snapshot{Title: "b", Stacks: [][]core.View{{}}, StackNames: []string{""}}
	out := Series(a, b)
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("series: %s", out)
	}
	if strings.Index(out, "a") > strings.Index(out, "b") {
		t.Error("series order")
	}
}
