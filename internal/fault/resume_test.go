package fault

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// memCkpt is an in-memory Checkpointer; onSave (optional) observes
// every persisted record, which is how the kill test injects its
// mid-campaign cancellation.
type memCkpt struct {
	mu     sync.Mutex
	data   []byte
	ok     bool
	saves  int
	onSave func(data []byte, saves int)
}

func (c *memCkpt) Load() ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.ok {
		return nil, false
	}
	return append([]byte(nil), c.data...), true
}

func (c *memCkpt) Save(data []byte) error {
	c.mu.Lock()
	c.data = append([]byte(nil), data...)
	c.ok = true
	c.saves++
	saves := c.saves
	cb := c.onSave
	c.mu.Unlock()
	if cb != nil {
		cb(data, saves)
	}
	return nil
}

// doneCount unmarshals a progress record and reports how many
// completed injections it carries.
func doneCount(t *testing.T, data []byte) int {
	t.Helper()
	var pf progressFile
	if err := json.Unmarshal(data, &pf); err != nil {
		t.Fatalf("bad progress record: %v", err)
	}
	return len(pf.Done)
}

// TestResumeByteIdentity is the crash-resume acceptance test: a
// campaign killed mid-flight (context cancelled from inside the
// checkpointer, as a process kill would at an arbitrary point) and
// then resumed produces a report whose outcome table is byte-identical
// to an uninterrupted run's — resumption changes wall-clock, never
// results.
func TestResumeByteIdentity(t *testing.T) {
	p := loadKernel(t, "dotprod")
	cc := Config{Seed: 1987, MaxWords: 8}

	scratch, err := Run(context.Background(), p, schemeE, cc)
	if err != nil {
		t.Fatal(err)
	}
	n := len(scratch.Plan.Exec)
	if n < 8 {
		t.Fatalf("campaign too small to interrupt meaningfully: %d injections", n)
	}

	// Kill: cancel once at least half the injections are persisted.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ck := &memCkpt{}
	ck.onSave = func(data []byte, _ int) {
		if doneCount(t, data) >= n/2 {
			cancel()
		}
	}
	kcc := cc
	kcc.Ckpt = ck
	kcc.CkptEvery = n / 8
	if _, err := Run(ctx, p, schemeE, kcc); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed campaign returned %v, want context.Canceled", err)
	}
	saved := doneCount(t, ck.data)
	if saved < n/2 || saved >= n {
		t.Fatalf("kill persisted %d of %d injections, want a strict mid-point", saved, n)
	}

	// Resume with the same checkpointer.
	ck.onSave = nil
	resumed, err := Run(context.Background(), p, schemeE, kcc)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed < n/2 {
		t.Fatalf("resumed only %d of %d injections, want >= %d", resumed.Resumed, n, n/2)
	}
	if !reflect.DeepEqual(resumed.Results, scratch.Results) {
		t.Fatal("resumed per-injection results differ from the uninterrupted run")
	}
	if got, want := resumed.Table("FC").String(), scratch.Table("FC").String(); got != want {
		t.Fatalf("resumed outcome table differs:\n%s\nvs\n%s", got, want)
	}
}

// TestResumeRejectsForeignRecords: progress records from a different
// plan (different seed) or outright garbage are ignored — the campaign
// recomputes everything rather than splicing in stale outcomes.
func TestResumeRejectsForeignRecords(t *testing.T) {
	p := loadKernel(t, "fib")
	ck := &memCkpt{}
	cc := Config{Seed: 1987, MaxWords: 4, Ckpt: ck, CkptEvery: 4}
	first, err := Run(context.Background(), p, schemeE, cc)
	if err != nil {
		t.Fatal(err)
	}
	if first.Resumed != 0 {
		t.Fatalf("fresh campaign reported %d resumed injections", first.Resumed)
	}
	if !ck.ok {
		t.Fatal("campaign never checkpointed")
	}

	// Different seed => different plan fingerprint => record ignored.
	other := cc
	other.Seed = 7
	rep, err := Run(context.Background(), p, schemeE, other)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != 0 {
		t.Fatalf("foreign-plan record resumed %d injections, want 0", rep.Resumed)
	}

	// Garbage record => ignored, campaign still completes clean.
	ck.data, ck.ok = []byte("{not json"), true
	rep2, err := Run(context.Background(), p, schemeE, cc)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != 0 {
		t.Fatalf("garbage record resumed %d injections, want 0", rep2.Resumed)
	}
	if got, want := rep2.Table("FC").String(), first.Table("FC").String(); got != want {
		t.Fatalf("campaign after garbage record differs:\n%s\nvs\n%s", got, want)
	}
}

// TestPlacementOptimal: the placement DP's replay cost is never worse
// than naive uniform spacing (it optimizes over a candidate set that
// contains the uniform choice) and never worse than no snapshots at
// all; the chosen points are well-formed.
func TestPlacementOptimal(t *testing.T) {
	for _, name := range []string{"fib", "dotprod", "bubble"} {
		t.Run(name, func(t *testing.T) {
			p := loadKernel(t, name)
			plan, err := PlanOnly(p, schemeE, Config{Seed: 1987, SnapshotBudget: 8})
			if err != nil {
				t.Fatal(err)
			}
			pl := plan.Placement
			if pl == nil {
				t.Fatal("no placement on a non-empty plan")
			}
			if pl.ReplayCycles > pl.UniformReplayCycles {
				t.Fatalf("DP replay %d > uniform replay %d", pl.ReplayCycles, pl.UniformReplayCycles)
			}
			if pl.ReplayCycles > pl.FullReplayCycles {
				t.Fatalf("DP replay %d > full replay %d", pl.ReplayCycles, pl.FullReplayCycles)
			}
			if len(pl.Events) == 0 || len(pl.Events) > pl.Budget {
				t.Fatalf("chose %d snapshot points under budget %d", len(pl.Events), pl.Budget)
			}
			if len(pl.Events) != len(pl.Steps) || len(pl.Events) != len(pl.Cycles) {
				t.Fatalf("ragged placement: %d events, %d steps, %d cycles",
					len(pl.Events), len(pl.Steps), len(pl.Cycles))
			}
			for i := 1; i < len(pl.Events); i++ {
				if pl.Events[i] <= pl.Events[i-1] {
					t.Fatalf("events not ascending: %v", pl.Events)
				}
				if pl.Steps[i] < pl.Steps[i-1] {
					t.Fatalf("steps not monotone: %v", pl.Steps)
				}
			}
			if pl.Events[0] != 0 {
				t.Fatalf("first snapshot point is event %d, want 0 (earliest injections need a source)", pl.Events[0])
			}
		})
	}
}

// TestPlacementTightBudget: a budget of 1 degenerates to replay-from-
// start, which must equal the no-snapshot cost.
func TestPlacementTightBudget(t *testing.T) {
	p := loadKernel(t, "fib")
	plan, err := PlanOnly(p, schemeE, Config{Seed: 1987, SnapshotBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	pl := plan.Placement
	if pl == nil {
		t.Fatal("no placement")
	}
	if len(pl.Events) != 1 || pl.Events[0] != 0 {
		t.Fatalf("budget 1 chose %v, want [0]", pl.Events)
	}
	if pl.ReplayCycles != pl.FullReplayCycles {
		t.Fatalf("budget-1 replay %d != full replay %d", pl.ReplayCycles, pl.FullReplayCycles)
	}
}
