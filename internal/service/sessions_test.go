package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/session"
)

// spinAsm is a counted loop long enough (~1M steps, comfortably under
// the reference interpreter's trace bound) that streaming runs are
// reliably still in flight when a test interrupts them; no test runs it
// to completion.
const spinAsm = `
    addi r1, r0, 25000
    slli r1, r1, 3         ; 200000 iterations
loop:
    beq  r1, r0, done
    addi r2, r2, 1
    addi r1, r1, -1
    j    loop
done:
    sw   r2, out(r0)
    halt
.data 0x1000
out: .word 0
`

func postSession(t *testing.T, url string, body any) (int, session.View, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/sessions", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var v session.View
	if resp.StatusCode == http.StatusCreated {
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("bad create response %q: %v", data, err)
		}
	}
	return resp.StatusCode, v, string(data)
}

// postVerb posts a JSON body to a session verb and decodes the reply.
func postVerb(t *testing.T, url, id, verb string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fmt.Sprintf("%s/sessions/%s/%s", url, id, verb), "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("bad %s response %q: %v", verb, data, err)
		}
	}
	return resp.StatusCode
}

func getSession(t *testing.T, url, id string) (int, session.View) {
	t.Helper()
	resp, err := http.Get(url + "/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v session.View
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("bad session view %q: %v", data, err)
		}
	}
	return resp.StatusCode, v
}

// runSession streams a run verb to completion of the HTTP response and
// returns the decoded events (last one is the terminal event).
func runSession(t *testing.T, url, id string, body any) []session.Event {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/sessions/"+id+"/run", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("run: status %d: %s", resp.StatusCode, data)
	}
	var events []session.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e session.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) == 0 {
		t.Fatal("run streamed no events")
	}
	return events
}

// TestSessionLifecycleHTTP walks the whole verb surface over the wire:
// create, list, step, streamed run, checkpoints, rewind, divergence,
// run to completion, metrics/healthz accounting, delete.
func TestSessionLifecycleHTTP(t *testing.T) {
	base := runtime.NumGoroutine()
	s := MustNew(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())

	code, v, raw := postSession(t, ts.URL, map[string]any{"workload": "fib"})
	if code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", code, raw)
	}
	if v.State != session.StateCreated || v.Program != "fib" {
		t.Fatalf("create view: %+v", v)
	}
	id := v.ID

	var sv session.View
	if code := postVerb(t, ts.URL, id, "step", map[string]any{"n": 3}, &sv); code != http.StatusOK {
		t.Fatalf("step: status %d", code)
	}
	if sv.Cycle == 0 || sv.State != session.StatePaused {
		t.Fatalf("step view: %+v", sv)
	}

	events := runSession(t, ts.URL, id, map[string]any{"to_cycle": sv.Cycle + 100, "stride": 16})
	last := events[len(events)-1]
	if last.Type != "paused" && last.Type != "done" {
		t.Fatalf("terminal event: %+v", last)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			t.Fatalf("events regressed: %+v after %+v", events[i], events[i-1])
		}
	}

	var cks struct {
		Checkpoints []struct {
			Seq        uint64 `json:"seq"`
			Rewindable bool   `json:"rewindable"`
			Steps      int    `json:"steps"`
		} `json:"checkpoints"`
	}
	resp, err := http.Get(ts.URL + "/sessions/" + id + "/checkpoints")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&cks); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(cks.Checkpoints) == 0 {
		t.Fatal("no live checkpoints reported")
	}

	// Rewind the first target that accepts (they can be transiently
	// busy); then the machine must sit clean on a golden boundary.
	rewound := false
	for _, ck := range cks.Checkpoints {
		if !ck.Rewindable {
			continue
		}
		var out map[string]json.RawMessage
		if code := postVerb(t, ts.URL, id, "rewind", map[string]any{"seq": ck.Seq}, &out); code == http.StatusOK {
			rewound = true
			break
		}
	}
	if !rewound {
		t.Fatal("no checkpoint accepted a rewind")
	}
	var div session.Divergence
	resp, err = http.Get(ts.URL + "/sessions/" + id + "/divergence")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&div); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !div.Comparable || div.Diverged {
		t.Fatalf("divergence after rewind: %+v", div)
	}

	events = runSession(t, ts.URL, id, map[string]any{})
	if events[len(events)-1].Type != "done" {
		t.Fatalf("terminal event after full run: %+v", events[len(events)-1])
	}
	if _, v = getSession(t, ts.URL, id); !v.Done || v.Rewinds != 1 {
		t.Fatalf("final view: %+v", v)
	}

	// Memory verb: fib stores its result at 0x1000.
	resp, err = http.Get(ts.URL + "/sessions/" + id + "/mem?addr=0x1000&words=1")
	if err != nil {
		t.Fatal(err)
	}
	var mv struct {
		Memory []struct {
			Value  uint32 `json:"value"`
			Mapped bool   `json:"mapped"`
		} `json:"memory"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(mv.Memory) != 1 || !mv.Memory[0].Mapped || mv.Memory[0].Value == 0 {
		t.Fatalf("mem view: %+v", mv)
	}

	m := getMetrics(t, ts.URL)
	if got := counter(m, "sessions", "open"); got != 1 {
		t.Fatalf("metrics sessions.open = %d", got)
	}
	if got := counter(m, "sessions", "created"); got != 1 {
		t.Fatalf("metrics sessions.created = %d", got)
	}
	if got := counter(m, "sessions", "rewinds"); got != 1 {
		t.Fatalf("metrics sessions.rewinds = %d", got)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	if code, _ := getSession(t, ts.URL, id); code != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", code)
	}

	ts.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(t, base)
}

// TestSessionRewindEquivalenceHTTP is the acceptance scenario over the
// wire: rewinding mid-run and re-running to completion reproduces the
// fresh run's architectural registers exactly.
func TestSessionRewindEquivalenceHTTP(t *testing.T) {
	s := MustNew(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Drain(context.Background())
	}()
	mkBody := map[string]any{"workload": "bubble", "machine": map[string]any{"scheme": "b", "c": 4}}

	code, fresh, raw := postSession(t, ts.URL, mkBody)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", code, raw)
	}
	runSession(t, ts.URL, fresh.ID, map[string]any{})
	_, freshV := getSession(t, ts.URL, fresh.ID)
	if !freshV.Done {
		t.Fatalf("fresh run not done: %+v", freshV)
	}

	code, v, raw := postSession(t, ts.URL, mkBody)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", code, raw)
	}
	runSession(t, ts.URL, v.ID, map[string]any{"to_cycle": freshV.Cycle / 2})

	// Rewind whichever live target accepts, stepping forward when all
	// are transiently refused.
	rewound := false
	for !rewound {
		var cks struct {
			Checkpoints []struct {
				Seq        uint64 `json:"seq"`
				Rewindable bool   `json:"rewindable"`
			} `json:"checkpoints"`
		}
		resp, err := http.Get(ts.URL + "/sessions/" + v.ID + "/checkpoints")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&cks); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for _, ck := range cks.Checkpoints {
			if ck.Rewindable && postVerb(t, ts.URL, v.ID, "rewind", map[string]any{"seq": ck.Seq}, nil) == http.StatusOK {
				rewound = true
				break
			}
		}
		if !rewound {
			var sv session.View
			if code := postVerb(t, ts.URL, v.ID, "step", map[string]any{"n": 1}, &sv); code != http.StatusOK {
				t.Fatalf("step: status %d", code)
			}
			if sv.Done {
				t.Fatal("reached completion without a successful rewind")
			}
		}
	}

	runSession(t, ts.URL, v.ID, map[string]any{})
	_, endV := getSession(t, ts.URL, v.ID)
	if !endV.Done {
		t.Fatalf("rewound run not done: %+v", endV)
	}
	if endV.Regs != freshV.Regs {
		t.Fatalf("registers diverged after rewind+rerun:\n%v\n%v", endV.Regs, freshV.Regs)
	}
	if endV.Exceptions != freshV.Exceptions {
		t.Fatalf("exception count diverged: %d vs %d", endV.Exceptions, freshV.Exceptions)
	}
}

// TestSessionVerbConflict: while a run verb holds the session, every
// other verb answers 409 and stays harmless.
func TestSessionVerbConflict(t *testing.T) {
	s := MustNew(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Drain(context.Background())
	}()

	code, v, raw := postSession(t, ts.URL, map[string]any{"workload": "sieve"})
	if code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", code, raw)
	}
	sess, ok := s.sessions.get(v.ID)
	if !ok {
		t.Fatal("session not registered")
	}

	// Hold the verb lock deterministically: a direct run whose sink
	// blocks until released.
	started := make(chan struct{})
	release := make(chan struct{})
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		first := true
		sess.RunToCycle(context.Background(), 1<<40, 1, func(session.Event) error {
			if first {
				first = false
				close(started)
				<-release
			}
			return nil
		})
	}()
	<-started

	if code, _ := getSession(t, ts.URL, v.ID); code != http.StatusConflict {
		t.Fatalf("inspect during run: status %d", code)
	}
	if code := postVerb(t, ts.URL, v.ID, "rewind", map[string]any{"seq": 0}, nil); code != http.StatusConflict {
		t.Fatalf("rewind during run: status %d", code)
	}
	if code := postVerb(t, ts.URL, v.ID, "step", nil, nil); code != http.StatusConflict {
		t.Fatalf("step during run: status %d", code)
	}
	// Listing never blocks on the busy session.
	resp, err := http.Get(ts.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	close(release)
	<-runDone
	if code, _ := getSession(t, ts.URL, v.ID); code != http.StatusOK {
		t.Fatalf("inspect after run: status %d", code)
	}
}

// TestSessionAbandonedRunEvicted is the goroutine-leak scenario: the
// client vanishes mid-stream, the run pauses, the idle janitor evicts
// the session, and nothing leaks.
func TestSessionAbandonedRunEvicted(t *testing.T) {
	base := runtime.NumGoroutine()
	s := MustNew(Config{Workers: 1, SessionTTL: 100 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())

	code, v, raw := postSession(t, ts.URL, map[string]any{"asm": spinAsm, "name": "spin"})
	if code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", code, raw)
	}

	// Stream a long run, read one event, then vanish.
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(map[string]any{"stride": 64})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/sessions/"+v.ID+"/run", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no first event")
	}
	cancel()
	resp.Body.Close()

	// The janitor must reap the abandoned session.
	deadline := time.Now().Add(5 * time.Second)
	for s.sessions.open() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned session never evicted (open=%d)", s.sessions.open())
		}
		time.Sleep(10 * time.Millisecond)
	}
	m := getMetrics(t, ts.URL)
	if got := counter(m, "sessions", "evicted"); got != 1 {
		t.Fatalf("metrics sessions.evicted = %d", got)
	}

	ts.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(t, base)
}

// TestSessionDrainClosesStream: Drain closes open sessions first, so a
// connected streaming client receives a terminal "closed" event with
// the drain reason before the listener goes away.
func TestSessionDrainClosesStream(t *testing.T) {
	base := runtime.NumGoroutine()
	s := MustNew(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())

	code, v, raw := postSession(t, ts.URL, map[string]any{"asm": spinAsm, "name": "spin"})
	if code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", code, raw)
	}

	firstEvent := make(chan struct{})
	terminal := make(chan session.Event, 1)
	go func() {
		body, _ := json.Marshal(map[string]any{"stride": 64})
		resp, err := http.Post(ts.URL+"/sessions/"+v.ID+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			close(terminal)
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		first := true
		var last session.Event
		for sc.Scan() {
			json.Unmarshal(sc.Bytes(), &last)
			if first {
				first = false
				close(firstEvent)
			}
		}
		terminal <- last
	}()
	<-firstEvent

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-terminal:
		if e.Type != "closed" || e.Reason != "daemon draining" {
			t.Fatalf("terminal event: %+v", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream never delivered the drain event")
	}
	if s.sessions.open() != 0 {
		t.Fatalf("sessions survived drain: %d", s.sessions.open())
	}

	ts.Close()
	settleGoroutines(t, base)
}

// TestSessionCapAndBadRequests pins the admission errors.
func TestSessionCapAndBadRequests(t *testing.T) {
	s := MustNew(Config{Workers: 1, SessionCap: 1})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Drain(context.Background())
	}()

	code, v, raw := postSession(t, ts.URL, map[string]any{"workload": "fib"})
	if code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", code, raw)
	}
	if code, _, _ := postSession(t, ts.URL, map[string]any{"workload": "fib"}); code != http.StatusTooManyRequests {
		t.Fatalf("create past cap: status %d", code)
	}
	for _, bad := range []map[string]any{
		{}, {"workload": "fib", "asm": spinAsm},
		{"workload": "no-such-kernel"}, {"asm": "not an instruction"},
		{"workload": "fib", "machine": map[string]any{"scheme": "marvelous"}},
	} {
		if code, _, raw := postSession(t, ts.URL, bad); code != http.StatusBadRequest && code != http.StatusTooManyRequests {
			t.Fatalf("bad create %v: status %d: %s", bad, code, raw)
		}
	}

	if code := postVerb(t, ts.URL, v.ID, "rewind", map[string]any{"seq": 1 << 40}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("rewind unknown seq: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/sessions/" + v.ID + "/mem?addr=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mem addr: status %d", resp.StatusCode)
	}
	if code := postVerb(t, ts.URL, "s-999", "step", nil, nil); code != http.StatusNotFound {
		t.Fatalf("verb on unknown session: status %d", code)
	}
}
