package diff

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
)

// This file model-checks the backward-difference repair algorithms
// over single-line histories with one repair; model_test.go extends the
// check to multiple lines, interleaved releases, and repeated repairs
// (which is what exposed the need for persistent hazard bits and the
// same-line reordering guard — see DESIGN.md §6).
//
// The printed Table 1 in our scan of the paper is partially illegible,
// so Table1's next-state functions were derived from the paper's
// specification of the bits (DESIGN.md). The check below validates the
// derivation exhaustively: over every sequence of writes, evictions and
// refills of one cache line, and every possible repair suffix,
// Algorithm 3(b) must restore the checkpoint's logical value and
// satisfy Theorem 6 — the dirty bit is set after repair if and only if
// main memory is inconsistent with the cached line.

// lineEvent is one step of a model history.
type lineEvent uint8

const (
	evWrite lineEvent = iota // masked write to the watched longword
	evEvict                  // touch a conflicting address, evicting the line
	evTouch                  // read the watched longword (refill if absent)
)

const (
	watched  = uint32(0x00) // the longword under test
	conflict = uint32(0x40) // maps to the same (only) set, 1-way: evicts
)

// runHistory replays a history on a fresh 1-line cache + backward
// difference, then repairs the last undo writes, returning the harness
// state for checking. Values written are 10,20,30,... in event order.
func runHistory(t *testing.T, algo Algo, history []lineEvent, undo int) (b *Backward, c *cache.Cache, keptVal uint32) {
	t.Helper()
	m := mem.New()
	m.Map(0, mem.PageSize)
	c = cache.MustNew(cache.Config{Sets: 1, Ways: 1, LineBytes: 16, Policy: cache.WriteBack}, m)
	b = NewBackward(c, algo, 0)

	var writeSeqs []uint64
	var values []uint32 // logical value after each write
	cur := uint32(0)
	seq := uint64(1)
	for i, ev := range history {
		switch ev {
		case evWrite:
			v := uint32(10 * (i + 1))
			ok, _, exc := b.Store(seq, watched, v, 0b1111)
			if !ok || exc != 0 {
				t.Fatalf("store failed: %v %v", ok, exc)
			}
			writeSeqs = append(writeSeqs, seq)
			cur = v
			values = append(values, cur)
			seq++
		case evEvict:
			if _, _, exc := b.Load(conflict); exc != 0 {
				t.Fatalf("evict load: %v", exc)
			}
		case evTouch:
			if _, _, exc := b.Load(watched); exc != 0 {
				t.Fatalf("touch load: %v", exc)
			}
		}
	}
	if undo > len(writeSeqs) {
		t.Fatalf("undo %d > writes %d", undo, len(writeSeqs))
	}
	keptVal = 0
	if kept := len(writeSeqs) - undo; kept > 0 {
		keptVal = values[kept-1]
	}
	if undo > 0 {
		b.Repair(writeSeqs[len(writeSeqs)-undo])
	}
	return b, c, keptVal
}

// logicalValue reads the post-repair value of the watched longword:
// the cache copy if present, else main memory.
func logicalValue(c *cache.Cache) uint32 {
	if v, present := c.PeekLongword(watched); present {
		return v
	}
	v, _ := c.Backing().Read32(watched)
	return v
}

// enumerate generates every history of the given length.
func enumerate(length int, f func([]lineEvent)) {
	hist := make([]lineEvent, length)
	var rec func(i int)
	rec = func(i int) {
		if i == length {
			f(hist)
			return
		}
		for ev := evWrite; ev <= evTouch; ev++ {
			hist[i] = ev
			rec(i + 1)
		}
	}
	rec(0)
}

func countWrites(h []lineEvent) int {
	n := 0
	for _, ev := range h {
		if ev == evWrite {
			n++
		}
	}
	return n
}

// TestTable1ModelCheck validates Algorithm 3(b) + Table 1 over every
// 1-to-6-event history and every repair suffix (Theorem 5 and
// Theorem 6).
func TestTable1ModelCheck(t *testing.T) {
	for length := 1; length <= 6; length++ {
		enumerate(length, func(h []lineEvent) {
			writes := countWrites(h)
			for undo := 0; undo <= writes; undo++ {
				name := fmt.Sprintf("%v/undo%d", h, undo)
				b, c, keptVal := runHistory(t, Sophisticated, append([]lineEvent(nil), h...), undo)
				_ = b
				// Theorem 5(1): the cache/memory content reflects the
				// execution result up to the checkpoint repaired to.
				if got := logicalValue(c); got != keptVal {
					t.Fatalf("%s: logical value %d, want %d", name, got, keptVal)
				}
				// Theorem 6: dirty iff memory inconsistent with the line.
				if cv, present := c.PeekLongword(watched); present {
					mv, _ := c.Backing().Read32(watched)
					dirty, _ := c.LineBits(watched)
					if dirty != (cv != mv) {
						t.Fatalf("%s: dirty=%v but cache=%d mem=%d", name, dirty, cv, mv)
					}
				}
				// Flushing must leave main memory holding the repaired
				// value (no lost write-backs).
				c.FlushAll()
				if mv, _ := c.Backing().Read32(watched); mv != keptVal {
					t.Fatalf("%s: after flush mem=%d, want %d", name, mv, keptVal)
				}
			}
		})
	}
}

// TestSimpleAlgorithmModelCheck validates Algorithm 3(a): it must also
// restore the checkpoint value, and conservatively marks recovered
// cached lines dirty so the next replacement rewrites memory.
func TestSimpleAlgorithmModelCheck(t *testing.T) {
	for length := 1; length <= 6; length++ {
		enumerate(length, func(h []lineEvent) {
			writes := countWrites(h)
			for undo := 0; undo <= writes; undo++ {
				name := fmt.Sprintf("%v/undo%d", h, undo)
				_, c, keptVal := runHistory(t, Simple, append([]lineEvent(nil), h...), undo)
				if got := logicalValue(c); got != keptVal {
					t.Fatalf("%s: logical value %d, want %d", name, got, keptVal)
				}
				// Conservative correctness: flush yields the right memory.
				c.FlushAll()
				if mv, _ := c.Backing().Read32(watched); mv != keptVal {
					t.Fatalf("%s: after flush mem=%d, want %d", name, mv, keptVal)
				}
			}
		})
	}
}

// TestSophisticatedNeverDirtierThanSimple: 3(b)'s whole point is
// avoiding unnecessary write-backs; over all histories it must never
// leave a line dirty where 3(a) would not (both always restore the same
// values, so comparing dirty bits is meaningful).
func TestSophisticatedNeverDirtierThanSimple(t *testing.T) {
	for length := 1; length <= 6; length++ {
		enumerate(length, func(h []lineEvent) {
			writes := countWrites(h)
			for undo := 1; undo <= writes; undo++ {
				_, cSimple, _ := runHistory(t, Simple, append([]lineEvent(nil), h...), undo)
				_, cSoph, _ := runHistory(t, Sophisticated, append([]lineEvent(nil), h...), undo)
				_, sPresent := cSimple.PeekLongword(watched)
				_, bPresent := cSoph.PeekLongword(watched)
				if sPresent != bPresent {
					t.Fatalf("%v/undo%d: presence differs", h, undo)
				}
				if sPresent {
					sd, _ := cSimple.LineBits(watched)
					bd, _ := cSoph.LineBits(watched)
					if bd && !sd {
						t.Fatalf("%v/undo%d: 3(b) dirty where 3(a) clean", h, undo)
					}
				}
			}
		})
	}
}

// TestTable1Function spot-checks the next-state function against the
// derivation in the Table1 doc comment.
func TestTable1Function(t *testing.T) {
	cases := []struct {
		h, s, d      bool
		wantD, wantH bool
	}{
		{true, false, false, true, true},
		{true, false, true, true, true},
		{true, true, false, true, true},
		{true, true, true, true, true},
		{false, false, true, false, false}, // clean-before, dirty-now: memory still right
		{false, true, true, true, false},   // ordinary dirty chain
		{false, false, false, true, true},  // memory matched the undone data
		{false, true, false, true, true},   // write-back evidence
	}
	for _, c := range cases {
		d, h := Table1(c.h, c.s, c.d)
		if d != c.wantD || h != c.wantH {
			t.Errorf("Table1(h=%v,s=%v,d=%v) = (%v,%v), want (%v,%v)",
				c.h, c.s, c.d, d, h, c.wantD, c.wantH)
		}
	}
}

// TestWriteThroughModelCheck repeats the history model-check under a
// write-through cache: cache and memory never diverge, so after any
// repair both hold the checkpoint value and the line is clean.
func TestWriteThroughModelCheck(t *testing.T) {
	runWT := func(history []lineEvent, undo int) (*cache.Cache, uint32) {
		m := mem.New()
		m.Map(0, mem.PageSize)
		c := cache.MustNew(cache.Config{Sets: 1, Ways: 1, LineBytes: 16, Policy: cache.WriteThrough}, m)
		b := NewBackward(c, Sophisticated, 0)
		var writeSeqs []uint64
		var values []uint32
		seq := uint64(1)
		for i, ev := range history {
			switch ev {
			case evWrite:
				v := uint32(10 * (i + 1))
				b.Store(seq, watched, v, 0b1111)
				writeSeqs = append(writeSeqs, seq)
				values = append(values, v)
				seq++
			case evEvict:
				b.Load(conflict)
			case evTouch:
				b.Load(watched)
			}
		}
		kept := uint32(0)
		if k := len(writeSeqs) - undo; k > 0 {
			kept = values[k-1]
		}
		if undo > 0 {
			b.Repair(writeSeqs[len(writeSeqs)-undo])
		}
		return c, kept
	}
	for length := 1; length <= 5; length++ {
		enumerate(length, func(h []lineEvent) {
			writes := countWrites(h)
			for undo := 0; undo <= writes; undo++ {
				c, kept := runWT(append([]lineEvent(nil), h...), undo)
				if mv, _ := c.Backing().Read32(watched); mv != kept {
					t.Fatalf("%v/undo%d: memory=%d want %d", h, undo, mv, kept)
				}
				if cv, present := c.PeekLongword(watched); present {
					if cv != kept {
						t.Fatalf("%v/undo%d: cache=%d want %d", h, undo, cv, kept)
					}
					if dirty, _ := c.LineBits(watched); dirty {
						t.Fatalf("%v/undo%d: write-through line dirty after repair", h, undo)
					}
				}
			}
		})
	}
}

// TestBackwardRepairIdempotent: repairing to the same checkpoint twice
// is a no-op the second time (all newer entries already popped).
func TestBackwardRepairIdempotent(t *testing.T) {
	b, _, _ := newBD(t, Sophisticated, 0)
	b.Store(1, 0x10, 11, 0b1111)
	b.Store(2, 0x10, 22, 0b1111)
	b.Repair(2)
	v1, _, _ := b.Load(0x10)
	b.Repair(2)
	v2, _, _ := b.Load(0x10)
	if v1 != 11 || v2 != 11 {
		t.Errorf("idempotence: %d then %d", v1, v2)
	}
}

// TestTwoRepairSequences exhaustively checks histories with TWO repair
// sequences separated by further writes/evictions — the pattern that
// breaks per-repair hazard clearing (the paper's literal rule) and
// motivated persistent hazard bits: after the first repair leaves
// memory holding undone data, the second repair must not conclude the
// line is clean. Re-enabling the literal rule (cache.ClearAllHazards at
// the top of Backward.Repair) makes this test fail at the minimal
// counterexample h1=WWEW/undo1=2, undo2=1 — see DESIGN.md §6.
func TestTwoRepairSequences(t *testing.T) {
	for len1 := 1; len1 <= 4; len1++ {
		enumerate(len1, func(h1 []lineEvent) {
			for len2 := 0; len2 <= 2; len2++ {
				enumerate(len2, func(h2 []lineEvent) {
					w1 := countWrites(h1)
					w2 := countWrites(h2)
					for undo1 := 1; undo1 <= w1; undo1++ {
						for undo2 := 0; undo2 <= w1-undo1+w2; undo2++ {
							checkTwoRepairs(t, append([]lineEvent(nil), h1...), undo1,
								append([]lineEvent(nil), h2...), undo2)
						}
					}
				})
			}
		})
	}
}

func checkTwoRepairs(t *testing.T, h1 []lineEvent, undo1 int, h2 []lineEvent, undo2 int) {
	t.Helper()
	m := mem.New()
	m.Map(0, mem.PageSize)
	c := cache.MustNew(cache.Config{Sets: 1, Ways: 1, LineBytes: 16, Policy: cache.WriteBack}, m)
	b := NewBackward(c, Sophisticated, 0)

	var seqs []uint64
	var values []uint32
	seq := uint64(1)
	vcounter := uint32(0)
	play := func(h []lineEvent) {
		for _, ev := range h {
			switch ev {
			case evWrite:
				// Globally unique values: Theorem 6 reasons about
				// consistency semantically, so coincidentally equal
				// values would make the iff check spuriously strict.
				vcounter += 7
				v := vcounter
				b.Store(seq, watched, v, 0b1111)
				seqs = append(seqs, seq)
				values = append(values, v)
				seq++
			case evEvict:
				b.Load(conflict)
			case evTouch:
				b.Load(watched)
			}
		}
	}
	repair := func(undo int) uint32 {
		if undo == 0 {
			if len(values) == 0 {
				return 0
			}
			return values[len(values)-1]
		}
		to := seqs[len(seqs)-undo]
		b.Repair(to)
		seqs = seqs[:len(seqs)-undo]
		values = values[:len(values)-undo]
		seq = to
		if len(values) == 0 {
			return 0
		}
		return values[len(values)-1]
	}

	play(h1)
	repair(undo1)
	play(h2)
	want := repair(undo2)

	name := func() string {
		return "h1=" + lineStr(h1) + " u1=" + itos(undo1) + " h2=" + lineStr(h2) + " u2=" + itos(undo2)
	}
	if got := logicalValue(c); got != want {
		t.Fatalf("%s: value %d, want %d", name(), got, want)
	}
	// Theorem 6 must hold after the SECOND repair too (the iff check is
	// only meaningful right after a repair; between repairs a write may
	// legitimately leave dirty set).
	if undo2 > 0 {
		if cv, present := c.PeekLongword(watched); present {
			mv, _ := c.Backing().Read32(watched)
			dirty, _ := c.LineBits(watched)
			if dirty != (cv != mv) {
				t.Fatalf("%s: dirty=%v cache=%d mem=%d", name(), dirty, cv, mv)
			}
		}
	}
	c.FlushAll()
	if mv, _ := c.Backing().Read32(watched); mv != want {
		t.Fatalf("%s: after flush mem=%d, want %d", name(), mv, want)
	}
}

func lineStr(h []lineEvent) string {
	s := ""
	for _, e := range h {
		s += string("WET"[e])
	}
	return s
}

func itos(i int) string { return string(rune('0' + i)) }

// TestSameLineReorderingGuard deterministically pins the second
// soundness hole the random model check found: an instructionally-older
// store to a DIFFERENT longword of the same cache line executes after a
// younger one (legal — the LSQ orders per longword), the younger one is
// undone, and the line must NOT be marked clean: the kept older write's
// data lives only in the cache.
func TestSameLineReorderingGuard(t *testing.T) {
	m := mem.New()
	m.Map(0, mem.PageSize)
	c := cache.MustNew(cache.Config{Sets: 1, Ways: 1, LineBytes: 16, Policy: cache.WriteBack}, m)
	b := NewBackward(c, Sophisticated, 0)

	// Younger store (seq 10) to 0x00 executes FIRST on a clean line:
	// its entry records SavedDirty=false.
	b.Store(10, 0x00, 111, 0b1111)
	// Older store (seq 5) to 0x04 — same line, different longword —
	// executes later.
	b.Store(5, 0x04, 222, 0b1111)

	// Repair to 10: undo only the younger store. Without the guard,
	// Table1(H=0, S=0, D=1) would conclude cache == memory and clear
	// the dirty bit, although 222 exists only in the cache.
	b.Repair(10)

	if v, _, _ := b.Load(0x00); v != 0 {
		t.Fatalf("0x00 = %d after undo", v)
	}
	if v, _, _ := b.Load(0x04); v != 222 {
		t.Fatalf("0x04 = %d (kept write lost)", v)
	}
	dirty, _ := c.LineBits(0x00)
	if !dirty {
		t.Fatal("line marked clean while holding a kept write absent from memory")
	}
	// Evict and verify the kept write reached memory via write-back.
	c.ReadLongword(0x40)
	if v, _ := m.Read32(0x04); v != 222 {
		t.Fatalf("memory 0x04 = %d after eviction", v)
	}
	if v, _ := m.Read32(0x00); v != 0 {
		t.Fatalf("memory 0x00 = %d after eviction", v)
	}
}
