// Package asm implements a two-pass assembler for the simulator ISA.
//
// Syntax overview (one statement per line, ';' or '#' start a comment):
//
//	.text                 ; switch to code (default)
//	.data 0x1000          ; switch to data at the given byte address
//	.entry main           ; set the entry point (default: first instruction)
//	.word 1, 2, 0x30      ; emit longwords (data mode)
//	.byte 1, 2, 3         ; emit bytes (data mode)
//	.space 64             ; reserve zeroed bytes (data mode)
//
//	main:                 ; labels end with ':'
//	    addi r1, r0, 10
//	loop:
//	    beq  r1, r0, done ; branch targets are labels (or numeric offsets)
//	    addi r1, r1, -1
//	    j    loop         ; jump targets are labels (or absolute indices)
//	done:
//	    lw   r2, table(r0)
//	    halt
//
// Code labels resolve to instruction indices; data labels resolve to
// byte addresses. Branch immediates are encoded relative to pc+1, jump
// immediates as absolute instruction indices, matching internal/isa.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Error reports an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type symbol struct {
	value  int32
	isCode bool
}

type dataChunk struct {
	addr  uint32
	bytes []byte
}

type assembler struct {
	name    string
	lines   []string
	symbols map[string]symbol
	code    []srcInst
	chunks  []dataChunk
	entry   string
	inData  bool
	dataPos uint32
	curData *dataChunk
}

type srcInst struct {
	line   int
	op     isa.Op
	fields []string // raw operand fields
}

// Assemble assembles source text into a program.
func Assemble(name, src string) (*prog.Program, error) {
	a := &assembler{
		name:    name,
		lines:   strings.Split(src, "\n"),
		symbols: make(map[string]symbol),
	}
	if err := a.pass1(); err != nil {
		return nil, err
	}
	return a.pass2()
}

// MustAssemble assembles known-good source, panicking on error. Used by
// the built-in workload kernels, whose sources are compiled into the
// binary and covered by tests.
func MustAssemble(name, src string) *prog.Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

// pass1 scans lines, records label values, and collects instruction and
// data statements for pass2.
func (a *assembler) pass1() error {
	for ln, raw := range a.lines {
		line := stripComment(raw)
		lineNo := ln + 1
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !validIdent(label) {
				return &Error{lineNo, fmt.Sprintf("invalid label %q", label)}
			}
			if _, dup := a.symbols[label]; dup {
				return &Error{lineNo, fmt.Sprintf("duplicate label %q", label)}
			}
			if a.inData {
				a.symbols[label] = symbol{value: int32(a.dataPos), isCode: false}
			} else {
				a.symbols[label] = symbol{value: int32(len(a.code)), isCode: true}
			}
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if err := a.directive(lineNo, line); err != nil {
				return err
			}
			continue
		}
		if a.inData {
			return &Error{lineNo, "instruction in data section"}
		}
		mnemonic, rest := splitWord(line)
		op, ok := isa.OpByName(strings.ToLower(mnemonic))
		if !ok {
			return &Error{lineNo, fmt.Sprintf("unknown mnemonic %q", mnemonic)}
		}
		a.code = append(a.code, srcInst{line: lineNo, op: op, fields: splitOperands(rest)})
	}
	return nil
}

func (a *assembler) directive(lineNo int, line string) error {
	word, rest := splitWord(line)
	switch word {
	case ".text":
		a.inData = false
		a.curData = nil
	case ".data":
		v, err := parseNum(rest)
		if err != nil {
			return &Error{lineNo, fmt.Sprintf(".data address: %v", err)}
		}
		a.inData = true
		a.dataPos = uint32(v)
		a.chunks = append(a.chunks, dataChunk{addr: a.dataPos})
		a.curData = &a.chunks[len(a.chunks)-1]
	case ".entry":
		a.entry = strings.TrimSpace(rest)
	case ".word", ".byte":
		if !a.inData || a.curData == nil {
			return &Error{lineNo, word + " outside data section"}
		}
		for _, f := range splitOperands(rest) {
			v, err := a.resolveLate(f)
			if err != nil {
				return &Error{lineNo, err.Error()}
			}
			if word == ".word" {
				a.curData.bytes = append(a.curData.bytes, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
				a.dataPos += 4
			} else {
				a.curData.bytes = append(a.curData.bytes, byte(v))
				a.dataPos++
			}
		}
	case ".space":
		if !a.inData || a.curData == nil {
			return &Error{lineNo, ".space outside data section"}
		}
		v, err := parseNum(strings.TrimSpace(rest))
		if err != nil || v < 0 {
			return &Error{lineNo, fmt.Sprintf(".space size: %v", err)}
		}
		a.curData.bytes = append(a.curData.bytes, make([]byte, v)...)
		a.dataPos += uint32(v)
	default:
		return &Error{lineNo, fmt.Sprintf("unknown directive %q", word)}
	}
	return nil
}

// resolveLate resolves a value that may reference a label. During pass1
// data emission, only already-defined labels can be referenced; numeric
// values always work. (Forward data references are rare enough in the
// built-in kernels not to warrant a third pass.)
func (a *assembler) resolveLate(f string) (int32, error) {
	if v, err := parseNum(f); err == nil {
		return v, nil
	}
	if s, ok := a.symbols[f]; ok {
		return s.value, nil
	}
	return 0, fmt.Errorf("undefined or forward symbol %q in data", f)
}

// pass2 encodes instructions with all labels resolved.
func (a *assembler) pass2() (*prog.Program, error) {
	p := &prog.Program{
		Name:    a.name,
		Code:    make([]isa.Inst, 0, len(a.code)),
		Symbols: make(map[string]int32, len(a.symbols)),
	}
	for name, s := range a.symbols {
		p.Symbols[name] = s.value
	}
	for pc, si := range a.code {
		in, err := a.encode(pc, si)
		if err != nil {
			return nil, err
		}
		p.Code = append(p.Code, in)
	}
	for _, c := range a.chunks {
		if len(c.bytes) > 0 {
			p.Data = append(p.Data, prog.Segment{Addr: c.addr, Data: c.bytes})
		}
	}
	if a.entry != "" {
		s, ok := a.symbols[a.entry]
		if !ok || !s.isCode {
			return nil, &Error{0, fmt.Sprintf(".entry %q: no such code label", a.entry)}
		}
		p.Entry = int(s.value)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (a *assembler) encode(pc int, si srcInst) (isa.Inst, error) {
	in := isa.Inst{Op: si.op}
	f := si.fields
	need := func(n int) error {
		if len(f) != n {
			return &Error{si.line, fmt.Sprintf("%s expects %d operands, got %d", si.op, n, len(f))}
		}
		return nil
	}
	var err error
	switch si.op.Format() {
	case isa.FormatRRR:
		if err = need(3); err != nil {
			return in, err
		}
		if in.Rd, err = a.reg(si.line, f[0]); err != nil {
			return in, err
		}
		if in.Rs1, err = a.reg(si.line, f[1]); err != nil {
			return in, err
		}
		in.Rs2, err = a.reg(si.line, f[2])
	case isa.FormatRRI:
		if err = need(3); err != nil {
			return in, err
		}
		if in.Rd, err = a.reg(si.line, f[0]); err != nil {
			return in, err
		}
		if in.Rs1, err = a.reg(si.line, f[1]); err != nil {
			return in, err
		}
		in.Imm, err = a.value(si.line, f[2])
	case isa.FormatRI:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = a.reg(si.line, f[0]); err != nil {
			return in, err
		}
		in.Imm, err = a.value(si.line, f[1])
	case isa.FormatMem:
		if err = need(2); err != nil {
			return in, err
		}
		var dataReg isa.Reg
		if dataReg, err = a.reg(si.line, f[0]); err != nil {
			return in, err
		}
		if si.op.Class() == isa.ClassStore {
			in.Rs2 = dataReg
		} else {
			in.Rd = dataReg
		}
		in.Imm, in.Rs1, err = a.memOperand(si.line, f[1])
	case isa.FormatBr:
		if err = need(3); err != nil {
			return in, err
		}
		if in.Rs1, err = a.reg(si.line, f[0]); err != nil {
			return in, err
		}
		if in.Rs2, err = a.reg(si.line, f[1]); err != nil {
			return in, err
		}
		in.Imm, err = a.branchTarget(si.line, pc, f[2])
	case isa.FormatJ:
		if si.op.WritesRd() {
			if err = need(2); err != nil {
				return in, err
			}
			if in.Rd, err = a.reg(si.line, f[0]); err != nil {
				return in, err
			}
			in.Imm, err = a.codeTarget(si.line, f[1])
		} else {
			if err = need(1); err != nil {
				return in, err
			}
			in.Imm, err = a.codeTarget(si.line, f[0])
		}
	case isa.FormatJR:
		if si.op.WritesRd() {
			if err = need(2); err != nil {
				return in, err
			}
			if in.Rd, err = a.reg(si.line, f[0]); err != nil {
				return in, err
			}
			in.Rs1, err = a.reg(si.line, f[1])
		} else {
			if err = need(1); err != nil {
				return in, err
			}
			in.Rs1, err = a.reg(si.line, f[0])
		}
	case isa.FormatJRI:
		if si.op.WritesRd() {
			if err = need(2); err != nil {
				return in, err
			}
			if in.Rd, err = a.reg(si.line, f[0]); err != nil {
				return in, err
			}
			in.Imm, in.Rs1, err = a.memOperand(si.line, f[1])
		} else {
			if err = need(1); err != nil {
				return in, err
			}
			in.Imm, in.Rs1, err = a.memOperand(si.line, f[0])
		}
	case isa.FormatSys:
		if si.op == isa.OpTRAP {
			if err = need(1); err != nil {
				return in, err
			}
			in.Imm, err = a.value(si.line, f[0])
		} else if err = need(0); err != nil {
			return in, err
		}
	}
	return in, err
}

var regAliases = map[string]isa.Reg{"zero": 0, "sp": 30, "ra": 31, "fp": 29}

func (a *assembler) reg(line int, f string) (isa.Reg, error) {
	f = strings.ToLower(strings.TrimSpace(f))
	if r, ok := regAliases[f]; ok {
		return r, nil
	}
	if strings.HasPrefix(f, "r") {
		if n, err := strconv.Atoi(f[1:]); err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, &Error{line, fmt.Sprintf("bad register %q", f)}
}

// value resolves a numeric or symbolic immediate.
func (a *assembler) value(line int, f string) (int32, error) {
	f = strings.TrimSpace(f)
	if v, err := parseNum(f); err == nil {
		return v, nil
	}
	if s, ok := a.symbols[f]; ok {
		return s.value, nil
	}
	return 0, &Error{line, fmt.Sprintf("bad immediate %q", f)}
}

// memOperand parses "imm(rs)" with imm numeric or symbolic, or a bare
// symbol/number meaning offset off r0.
func (a *assembler) memOperand(line int, f string) (int32, isa.Reg, error) {
	f = strings.TrimSpace(f)
	open := strings.Index(f, "(")
	if open < 0 {
		imm, err := a.value(line, f)
		return imm, 0, err
	}
	if !strings.HasSuffix(f, ")") {
		return 0, 0, &Error{line, fmt.Sprintf("bad memory operand %q", f)}
	}
	immPart := strings.TrimSpace(f[:open])
	var imm int32
	var err error
	if immPart != "" {
		if imm, err = a.value(line, immPart); err != nil {
			return 0, 0, err
		}
	}
	r, err := a.reg(line, f[open+1:len(f)-1])
	return imm, r, err
}

func (a *assembler) branchTarget(line, pc int, f string) (int32, error) {
	f = strings.TrimSpace(f)
	if s, ok := a.symbols[f]; ok && s.isCode {
		return s.value - int32(pc) - 1, nil
	}
	if v, err := parseNum(f); err == nil {
		return v, nil // already a relative displacement
	}
	return 0, &Error{line, fmt.Sprintf("bad branch target %q", f)}
}

func (a *assembler) codeTarget(line int, f string) (int32, error) {
	f = strings.TrimSpace(f)
	if s, ok := a.symbols[f]; ok && s.isCode {
		return s.value, nil
	}
	if v, err := parseNum(f); err == nil {
		return v, nil
	}
	return 0, &Error{line, fmt.Sprintf("bad jump target %q", f)}
}

func splitWord(s string) (first, rest string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i+1:])
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseNum(s string) (int32, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, err
	}
	if v < -1<<31 || v > 1<<32-1 {
		return 0, fmt.Errorf("value %d out of 32-bit range", v)
	}
	return int32(uint32(v)), nil
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Disassemble renders a program listing with instruction indices,
// matching the assembler's input syntax where possible.
func Disassemble(p *prog.Program) string {
	var b strings.Builder
	labels := make(map[int32][]string)
	for name, v := range p.Symbols {
		labels[v] = append(labels[v], name)
	}
	for pc, in := range p.Code {
		for _, l := range labels[int32(pc)] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "%4d:  %s\n", pc, in)
	}
	return b.String()
}
