package experiments

import (
	"bytes"
	"testing"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/refsim"
)

// observeProbe watches both machine hook points without mutating state.
type observeProbe struct{ events int }

func (p *observeProbe) PreIssue(*machine.Machine, uint64, int, isa.Inst) { p.events++ }
func (p *observeProbe) PostWriteback(m *machine.Machine, w machine.Writeback) {
	p.events++
	_ = w.Seq()
}

// TestRunAllByteIdenticalNoopProbe regenerates every artefact with an
// observation-only machine.Probe installed on every run and requires
// the output byte-identical to a probe-free pass — the probe seam added
// for fault injection must be invisible unless a probe mutates state.
func TestRunAllByteIdenticalNoopProbe(t *testing.T) {
	defer SetProbeFactory(nil)
	var bare, probed bytes.Buffer
	SetProbeFactory(nil)
	RunAll(&bare)
	SetProbeFactory(func() machine.Probe { return &observeProbe{} })
	RunAll(&probed)
	if !bytes.Equal(bare.Bytes(), probed.Bytes()) {
		a, b := bare.String(), probed.String()
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := max(i-200, 0)
		t.Fatalf("noop probe changed experiment output at byte %d:\nbare:   %q\nprobed: %q",
			i, a[lo:min(i+200, len(a))], b[lo:min(i+200, len(b))])
	}
}

// TestRunAllByteIdenticalFastPathsThreeWay regenerates every artefact
// (F1-F8, T1, C1-C12, A1-A6) three ways — naive (fast paths off,
// one-cycle-at-a-time live-shadow oracle), fast-path unbatched (trace
// replay + cycle skipping, one machine per run), and batch-lockstep
// (fast paths + RunBatch lanes + pooled chassis) — and requires all
// three outputs byte-for-byte identical: the acceptance bar for the
// whole optimisation stack.
func TestRunAllByteIdenticalFastPathsThreeWay(t *testing.T) {
	defer SetFastPaths(true)
	defer SetBatching(true)
	legs := []struct {
		name     string
		fast     bool
		batching bool
	}{
		{"batched", true, true},
		{"fast-unbatched", true, false},
		{"naive", false, false},
	}
	outs := make([]bytes.Buffer, len(legs))
	for li, leg := range legs {
		SetFastPaths(leg.fast)
		SetBatching(leg.batching)
		RunAll(&outs[li])
	}
	for li := 1; li < len(legs); li++ {
		a, b := outs[0].String(), outs[li].String()
		if a == b {
			continue
		}
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := max(i-200, 0)
		t.Fatalf("%s and %s legs diverge at byte %d:\n%s: %q\n%s: %q",
			legs[0].name, legs[li].name, i,
			legs[0].name, a[lo:min(i+200, len(a))],
			legs[li].name, b[lo:min(i+200, len(b))])
	}
}

// TestSimRunUsesTraceReplay pins the fast path actually engaging: after
// a simRun of a kernel, the program carries a cached reference trace.
func TestSimRunUsesTraceReplay(t *testing.T) {
	if !FastPaths() {
		t.Fatal("fast paths must default to on")
	}
	j := kernelJob("fib", machine.Config{
		Scheme:    core.NewSchemeTight(4, 0),
		Predictor: bpred.NewBimodal(256),
		Speculate: true,
		MemSystem: machine.MemBackward3b,
	})
	if _, err := simRun(j.prog, j.cfg); err != nil {
		t.Fatal(err)
	}
	tr, err := refsim.CachedTrace(j.prog)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Steps() == 0 {
		t.Fatal("cached trace is empty")
	}
}
