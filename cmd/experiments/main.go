// Command experiments regenerates every table and figure of the
// reproduction (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for a captured run with commentary).
//
// Usage:
//
//	experiments           # run everything
//	experiments -list     # list experiment IDs
//	experiments -id C7    # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	id := flag.String("id", "", "run a single experiment by ID (e.g. C7)")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}
	if *id != "" {
		e, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *id)
			os.Exit(1)
		}
		for _, t := range e.Run() {
			fmt.Println(t.String())
		}
		return
	}
	experiments.RunAll(os.Stdout)
}
