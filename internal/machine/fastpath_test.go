package machine

import (
	"fmt"
	"testing"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/refsim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// resultsIdentical compares two machine Results field by field —
// cycles, stats, stall breakdown, final architectural state, scheme and
// memory-system counters — returning a description of the first
// difference.
func resultsIdentical(a, b *Result) error {
	if a.Halted != b.Halted {
		return fmt.Errorf("Halted: %v vs %v", a.Halted, b.Halted)
	}
	if a.ShadowHalted != b.ShadowHalted {
		return fmt.Errorf("ShadowHalted: %v vs %v", a.ShadowHalted, b.ShadowHalted)
	}
	if a.Regs != b.Regs {
		return fmt.Errorf("registers differ: %v vs %v", a.Regs, b.Regs)
	}
	if a.Stats != b.Stats {
		return fmt.Errorf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Scheme != b.Scheme {
		return fmt.Errorf("scheme stats differ: %+v vs %+v", a.Scheme, b.Scheme)
	}
	if a.Cache != b.Cache {
		return fmt.Errorf("cache stats differ: %+v vs %+v", a.Cache, b.Cache)
	}
	if a.Diff != b.Diff {
		return fmt.Errorf("diff stats differ: %+v vs %+v", a.Diff, b.Diff)
	}
	if a.PredictorAccuracy != b.PredictorAccuracy {
		return fmt.Errorf("predictor accuracy differs: %v vs %v", a.PredictorAccuracy, b.PredictorAccuracy)
	}
	if len(a.Exceptions) != len(b.Exceptions) {
		return fmt.Errorf("exception counts differ: %d vs %d", len(a.Exceptions), len(b.Exceptions))
	}
	for i := range a.Exceptions {
		if a.Exceptions[i] != b.Exceptions[i] {
			return fmt.Errorf("exception %d differs: %v vs %v", i, a.Exceptions[i], b.Exceptions[i])
		}
	}
	return nil
}

// TestTraceReplayFidelity runs every kernel under every scheme and
// memory system twice — once with a live shadow interpreter and once
// driven by a recorded reference trace — and requires identical Results
// (cycles, stats, final state) plus a passing MatchRef on both.
func TestTraceReplayFidelity(t *testing.T) {
	for _, k := range workload.Kernels() {
		p := k.Load()
		tr, err := refsim.Record(p, 0)
		if err != nil {
			t.Fatalf("%s: record: %v", k.Name, err)
		}
		ref, err := refsim.Run(p, refsim.Options{})
		if err != nil {
			t.Fatalf("%s: refsim: %v", k.Name, err)
		}
		for sName, mk := range schemesUnderTest() {
			for _, ms := range []MemSystemKind{MemBackward3a, MemBackward3b, MemForward} {
				t.Run(fmt.Sprintf("%s/%s/%s", k.Name, sName, ms), func(t *testing.T) {
					mkCfg := func() Config {
						return Config{
							Scheme:    mk(),
							Predictor: bpred.NewBimodal(256),
							Speculate: true,
							MemSystem: ms,
						}
					}
					live, err := Run(p, mkCfg())
					if err != nil {
						t.Fatalf("live: %v", err)
					}
					cfg := mkCfg()
					cfg.RefTrace = tr
					replay, err := Run(p, cfg)
					if err != nil {
						t.Fatalf("replay: %v", err)
					}
					if err := resultsIdentical(live, replay); err != nil {
						t.Fatalf("trace-driven run diverged: %v", err)
					}
					if err := replay.MatchRef(ref); err != nil {
						t.Fatalf("trace-driven run fails golden model: %v", err)
					}
				})
			}
		}
	}
}

// TestTraceProgramMismatchRejected: a trace only replays against the
// program value it was recorded from.
func TestTraceProgramMismatchRejected(t *testing.T) {
	k1, _ := workload.ByName("fib")
	k2 := workload.Kernel{Name: "fib-copy", Source: k1.Source}
	tr := refsim.MustRecord(k2.Load(), 0)
	_, err := New(k1.Load(), Config{
		Scheme:    core.NewSchemeTight(4, 0),
		Predictor: bpred.NewBimodal(256),
		Speculate: true,
		RefTrace:  tr,
	})
	if err == nil {
		t.Fatal("RefTrace from a different program instance must be rejected")
	}
}

// TestCycleSkipEquivalence runs every kernel with event-driven cycle
// skipping forced off and on, asserting bit-identical Results — equal
// Cycle() counts, stall breakdowns, and architectural state. Covers the
// stall-heavy configurations (slow memory, tiny windows, repair-busy
// shift registers) where skipping actually engages.
func TestCycleSkipEquivalence(t *testing.T) {
	cfgs := []struct {
		name string
		mk   func() Config
	}{
		{"tight4/backward-3b", func() Config {
			return Config{
				Scheme:    core.NewSchemeTight(4, 0),
				Predictor: bpred.NewBimodal(256),
				Speculate: true,
				MemSystem: MemBackward3b,
			}
		}},
		{"loose-tiny/backward-3a", func() Config {
			return Config{
				Scheme:    core.NewSchemeLoose(1, 2, 6),
				Predictor: bpred.NewBimodal(128),
				Speculate: true,
				MemSystem: MemBackward3a,
			}
		}},
		{"direct/forward/narrow", func() Config {
			tm := DefaultTiming
			tm.IssueWidth = 1
			tm.Window = 8
			tm.LSQ = 4
			tm.CacheMiss = 24
			tm.MemPorts = 1
			return Config{
				Scheme:    core.NewSchemeDirect(2, 4, 12, 0),
				Predictor: bpred.NewBimodal(128),
				Speculate: true,
				MemSystem: MemForward,
				Timing:    tm,
			}
		}},
	}
	for _, k := range workload.Kernels() {
		p := k.Load()
		for _, c := range cfgs {
			t.Run(k.Name+"/"+c.name, func(t *testing.T) {
				slowCfg := c.mk()
				slowCfg.DisableCycleSkip = true
				slow, err := Run(p, slowCfg)
				if err != nil {
					t.Fatalf("skip-off: %v", err)
				}
				fast, err := Run(p, c.mk())
				if err != nil {
					t.Fatalf("skip-on: %v", err)
				}
				if fast.Stats.Cycles != slow.Stats.Cycles {
					t.Fatalf("Cycle() diverged: skip-on=%d skip-off=%d", fast.Stats.Cycles, slow.Stats.Cycles)
				}
				if err := resultsIdentical(slow, fast); err != nil {
					t.Fatalf("cycle skipping changed results: %v", err)
				}
			})
		}
	}
}

// TestCycleSkipEquivalenceRandom extends the equivalence check to
// random programs with latency jitter, exceptions, and undersized
// buffers — the paths where idle-stretch detection is most delicate
// (repair shift registers, stuck-pipeline escapes, precise mode).
func TestCycleSkipEquivalenceRandom(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		p := workload.Random(seed, workload.DefaultRandomOpts)
		mkCfg := func() Config {
			cfg := Config{
				Scheme:    core.NewSchemeLoose(1, 2, 6),
				Predictor: bpred.NewBimodal(128),
				Speculate: true,
				MemSystem: MemBackward3b,
			}
			cfg.Timing = DefaultTiming
			cfg.Timing.ExtraLatency = func(s uint64) int { return int((s*2654435761 + 3) % 5) }
			return cfg
		}
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			slowCfg := mkCfg()
			slowCfg.DisableCycleSkip = true
			slow, err := Run(p, slowCfg)
			if err != nil {
				t.Fatalf("skip-off: %v", err)
			}
			fast, err := Run(p, mkCfg())
			if err != nil {
				t.Fatalf("skip-on: %v", err)
			}
			if err := resultsIdentical(slow, fast); err != nil {
				t.Fatalf("cycle skipping changed results: %v", err)
			}
		})
	}
}

// TestCycleSkipDeadlockTiming pins the watchdog path: an undersized
// difference buffer deadlocks on exactly the same cycle number with
// skipping on and off, and skipping makes the abort cheap to reach.
func TestCycleSkipDeadlockTiming(t *testing.T) {
	k, _ := workload.ByName("sieve")
	p := k.Load()
	mkCfg := func(skip bool) Config {
		return Config{
			Scheme:           core.NewSchemeE(2, 1000, 4),
			Speculate:        false,
			MemSystem:        MemBackward3a,
			BufferCap:        3,
			WatchdogCycles:   5_000,
			DisableCycleSkip: !skip,
		}
	}
	fast, errFast := Run(p, mkCfg(true))
	slow, errSlow := Run(p, mkCfg(false))
	if (errFast == nil) != (errSlow == nil) {
		t.Fatalf("outcome diverged: skip-on err=%v skip-off err=%v", errFast, errSlow)
	}
	if errFast == nil {
		t.Skip("configuration did not deadlock; covered by equivalence tests")
	}
	if fast.Stats.Cycles != slow.Stats.Cycles {
		t.Fatalf("deadlock cycle diverged: skip-on=%d skip-off=%d", fast.Stats.Cycles, slow.Stats.Cycles)
	}
	if fast.Stats.StallCycles != slow.Stats.StallCycles {
		t.Fatalf("stall breakdown diverged:\nskip-on:  %v\nskip-off: %v", fast.Stats.StallCycles, slow.Stats.StallCycles)
	}
	var total int64
	for r := 0; r < int(stats.NumStallReasons); r++ {
		total += fast.Stats.StallCycles[r]
	}
	if total == 0 {
		t.Fatal("expected bulk-accounted stall cycles in the deadlocked run")
	}
}
