package stats

import "testing"

func TestDist(t *testing.T) {
	var d Dist
	if d.String() != "n=0" || d.Min() != 0 || d.Max() != 0 || d.Mean() != 0 || d.Percentile(50) != 0 {
		t.Fatalf("zero-value Dist misbehaves: %s", d.String())
	}
	for _, v := range []int64{5, 1, 9, 3, 7} {
		d.Add(v)
	}
	if d.N() != 5 {
		t.Fatalf("N = %d", d.N())
	}
	if d.Min() != 1 || d.Max() != 9 {
		t.Fatalf("min/max = %d/%d", d.Min(), d.Max())
	}
	if d.Mean() != 5 {
		t.Fatalf("mean = %v", d.Mean())
	}
	if p := d.Percentile(50); p != 5 {
		t.Fatalf("p50 = %d", p)
	}
	if p := d.Percentile(0); p != 1 {
		t.Fatalf("p0 = %d", p)
	}
	if p := d.Percentile(100); p != 9 {
		t.Fatalf("p100 = %d", p)
	}
	// Adding after a sorted query keeps order statistics correct.
	d.Add(0)
	if d.Min() != 0 || d.Max() != 9 || d.N() != 6 {
		t.Fatalf("after re-add: %s", d.String())
	}
}
