package refsim

import (
	"fmt"
	"sync"

	"repro/internal/prog"
)

// Oracle is the observable surface of the reference model that the
// out-of-order machines consult while simulating: the architectural PC,
// completion state, retirement/exception progress, and a Step that
// advances one architectural attempt. Both the live Shadow interpreter
// and a trace Replay implement it, and they are observationally
// indistinguishable — a machine run produces bit-identical results
// against either.
type Oracle interface {
	PC() int
	Halted() bool
	Retired() int
	ExcCount() int
	Step() StepResult
}

// traceStep is one recorded Shadow.Step: what Step returned plus the
// shadow's observable state immediately after it.
type traceStep struct {
	res         StepResult
	postPC      int
	postRetired int
	postExcs    int
}

// Trace is a recorded architectural event stream of one complete Shadow
// run of a program: every StepResult in order, together with the
// post-step PC/retired/exception progress needed to replay the shadow's
// observable state without re-executing the interpreter. Record once,
// replay for every machine configuration in a sweep — the
// store-vs-recompute trade applied to the golden model.
//
// A Trace is immutable after Record and safe for concurrent Replays.
//
// Steps are stored in fixed-size chunks rather than one flat slice:
// long programs record hundreds of thousands of steps, and growing a
// flat slice would repeatedly memmove tens of megabytes. Chunks make
// recording append-only with no re-copying.
type Trace struct {
	prog   *prog.Program
	chunks [][]traceStep
	n      int
}

// traceChunkShift sizes chunks at 4096 steps (a few hundred KiB each).
const traceChunkShift = 12

func (t *Trace) at(i int) *traceStep {
	return &t.chunks[i>>traceChunkShift][i&(1<<traceChunkShift-1)]
}

// Program returns the program this trace was recorded from. Consumers
// validate by pointer identity: a trace only replays correctly against
// the exact program value it was recorded from.
func (t *Trace) Program() *prog.Program { return t.prog }

// Steps returns the number of recorded architectural attempts.
func (t *Trace) Steps() int { return t.n }

// Record runs a fresh Shadow of p to completion and records every step.
// maxSteps bounds the attempt count (0 means DefaultMaxSteps); a program
// still running at the bound yields an error rather than an incomplete
// trace, because a partial trace would silently diverge from a live
// shadow once exhausted.
func Record(p *prog.Program, maxSteps int) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	s := NewShadow(p)
	t := &Trace{prog: p}
	for !s.Halted() {
		if t.n >= maxSteps {
			return nil, fmt.Errorf("refsim: trace of %q exceeds %d steps without halting", p.Name, maxSteps)
		}
		r := s.Step()
		if t.n&(1<<traceChunkShift-1) == 0 {
			t.chunks = append(t.chunks, make([]traceStep, 0, 1<<traceChunkShift))
		}
		c := &t.chunks[len(t.chunks)-1]
		*c = append(*c, traceStep{
			res:         r,
			postPC:      s.PC(),
			postRetired: s.Retired(),
			postExcs:    s.ExcCount(),
		})
		t.n++
	}
	return t, nil
}

// MustRecord is Record but panics on error.
func MustRecord(p *prog.Program, maxSteps int) *Trace {
	t, err := Record(p, maxSteps)
	if err != nil {
		panic(err)
	}
	return t
}

// programMemo is the per-program cache slot attached to prog.Program:
// the recorded trace and the default-options reference run, each
// computed at most once per process and collected together with the
// program.
type programMemo struct {
	traceOnce sync.Once
	trace     *Trace
	traceErr  error
	runOnce   sync.Once
	run       *Result
	runErr    error
}

func memoOf(p *prog.Program) *programMemo {
	if m, ok := p.Memo().(*programMemo); ok {
		return m
	}
	return p.MemoOrStore(&programMemo{}).(*programMemo)
}

// CachedTrace records a trace of p once per process and returns it on
// every subsequent call, memoized on the program itself (so generated
// programs are collected together with their traces). Returns an error
// if the program does not halt within DefaultMaxSteps.
func CachedTrace(p *prog.Program) (*Trace, error) {
	m := memoOf(p)
	m.traceOnce.Do(func() {
		m.trace, m.traceErr = Record(p, 0)
	})
	return m.trace, m.traceErr
}

// CachedRun interprets p once per process with default Options and
// returns the shared Result on every subsequent call. Callers must
// treat the Result as read-only.
func CachedRun(p *prog.Program) (*Result, error) {
	m := memoOf(p)
	m.runOnce.Do(func() {
		m.run, m.runErr = Run(p, Options{})
	})
	return m.run, m.runErr
}

// MustCachedRun is CachedRun but panics on error.
func MustCachedRun(p *prog.Program) *Result {
	r, err := CachedRun(p)
	if err != nil {
		panic(err)
	}
	return r
}

// Replay walks a recorded Trace, presenting the same observable surface
// as the live Shadow it was recorded from.
type Replay struct {
	t       *Trace
	i       int // next step index
	pc      int
	retired int
	excs    int
	halted  bool
}

// Replay returns a fresh replayer positioned at the program entry.
func (t *Trace) Replay() *Replay {
	return &Replay{t: t, pc: t.prog.Entry}
}

// PC returns the instruction index of the next architectural attempt.
func (r *Replay) PC() int { return r.pc }

// Halted reports whether the architectural program has finished.
func (r *Replay) Halted() bool { return r.halted }

// Retired returns the number of architecturally completed instructions.
func (r *Replay) Retired() int { return r.retired }

// ExcCount returns the number of exceptions observed so far.
func (r *Replay) ExcCount() int { return r.excs }

// Step replays one recorded attempt. Like Shadow.Step, calling Step
// after the program halted returns Halted without effect.
func (r *Replay) Step() StepResult {
	if r.halted || r.i >= r.t.n {
		return StepResult{PC: r.pc, Halted: true}
	}
	s := r.t.at(r.i)
	r.i++
	r.pc = s.postPC
	r.retired = s.postRetired
	r.excs = s.postExcs
	r.halted = s.res.Halted
	return s.res
}

var (
	_ Oracle = (*Shadow)(nil)
	_ Oracle = (*Replay)(nil)
)
