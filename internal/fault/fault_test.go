package fault

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/prog"
	"repro/internal/workload"
)

// schemeE is the campaign configuration the covered-class claim is made
// for: schemeE with checkpoints every 8 instructions, non-speculative
// (the paper's E-repair machine; fault coverage is a property of the
// repair scheme, not of branch prediction).
func schemeE() machine.Config {
	return machine.Config{
		Scheme:    core.NewSchemeE(4, 8, 0),
		Speculate: false,
		MemSystem: machine.MemBackward3b,
	}
}

func loadKernel(t *testing.T, name string) *prog.Program {
	t.Helper()
	k, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return k.Load()
}

// TestCoveredClassesRepairedCleanly is the campaign's headline claim:
// for the detected fault models (the classes checkpoint repair covers),
// exhaustive seeded injection over kernel workloads yields zero silent
// corruption, zero hangs, and zero crashes — every fired fault is
// either repaired to a byte-identical final state or architecturally
// masked — and interval equivalence classes let the plan cover at least
// 5x as many raw fault points as it executes.
func TestCoveredClassesRepairedCleanly(t *testing.T) {
	for _, name := range []string{"fib", "memcpy", "dotprod", "divzero"} {
		t.Run(name, func(t *testing.T) {
			p := loadKernel(t, name)
			rep, err := Run(context.Background(), p, schemeE, Config{Seed: 1987, Models: CoveredModels(), Stride: 1})
			if err != nil {
				t.Fatal(err)
			}
			if bad := rep.CoveredBad(); len(bad) != 0 {
				for _, b := range bad {
					t.Errorf("%s: %s -> %s (%s)", name, b.Inj, b.Outcome, b.Detail)
				}
				t.Fatalf("%d covered-class injections escaped repair", len(bad))
			}
			repaired := rep.Count(FUDetected, Repaired) + rep.Count(SpuriousExc, Repaired)
			if repaired == 0 {
				t.Fatalf("no covered-class injection exercised a repair\n%s", rep)
			}
			for _, r := range rep.Results {
				if r.Outcome == Repaired && !r.Fired {
					t.Fatalf("%s classified Repaired without firing", r.Inj)
				}
				if r.Outcome == Repaired && r.RepairDelta <= 0 {
					t.Fatalf("%s classified Repaired with repair delta %d", r.Inj, r.RepairDelta)
				}
			}
			if rep.BaselineRepairs == 0 && rep.Plan.CoverageRatio() < 5 {
				t.Fatalf("coverage ratio %.2f < 5 (raw=%d exec=%d)",
					rep.Plan.CoverageRatio(), rep.Plan.Raw, len(rep.Plan.Exec))
			}
		})
	}
}

// TestCampaignDeterministicAcrossWorkers: the same seed yields
// byte-identical reports and identical per-injection results at any
// worker count.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	p := loadKernel(t, "fib")
	cc := Config{Seed: 7, Stride: 2, MaxWords: 4}
	cc.Workers = 1
	seq, err := Run(context.Background(), p, schemeE, cc)
	if err != nil {
		t.Fatal(err)
	}
	cc.Workers = 8
	par, err := Run(context.Background(), p, schemeE, cc)
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatalf("report differs across worker counts:\n-j1:\n%s\n-j8:\n%s", seq, par)
	}
	if !reflect.DeepEqual(seq.Results, par.Results) {
		t.Fatal("per-injection results differ across worker counts")
	}
}

// TestPrunedPointsAreMasked validates the dead-value pruning rule by
// sampling statically-pruned points and re-running them at full
// fidelity: every one must classify as Masked.
func TestPrunedPointsAreMasked(t *testing.T) {
	var pruned []Injection
	var progs []*prog.Program
	dst := uint32(loadKernel(t, "memcpy").Symbols["dst"])
	for _, tc := range []struct {
		kernel string
		cc     Config
	}{
		{"fib", Config{Seed: 11, Models: []Model{RegFlip, FUCorrupt}, Stride: 1}},
		// Target the copy destination: flips landing there before the
		// byte store that overwrites them are dead.
		{"memcpy", Config{Seed: 11, Models: []Model{MemFlip}, Stride: 2,
			Words: []uint32{dst, dst + 4, dst + 8, dst + 12}}},
	} {
		p := loadKernel(t, tc.kernel)
		run, rec, err := newCampaignRun(p, schemeE, &tc.cc)
		if err != nil {
			t.Fatal(err)
		}
		plan := buildPlan(rec, run.repairs, &tc.cc)
		if len(plan.Pruned) == 0 {
			t.Fatalf("%s: pruning found no dead points to validate", tc.kernel)
		}
		step := len(plan.Pruned)/20 + 1
		for i := 0; i < len(plan.Pruned); i += step {
			pruned = append(pruned, plan.Pruned[i])
			progs = append(progs, p)
		}
	}
	for i, inj := range pruned {
		res, err := Replay(context.Background(), progs[i], schemeE, Config{}, []Injection{inj})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Outcome != Masked {
			t.Errorf("%s on %s: pruned as dead but ran to %s (%s)",
				inj, progs[i].Name, res[0].Outcome, res[0].Detail)
		}
	}
}

// TestClassMembersMatchRepresentative validates interval-equivalence
// collapsing: sampled non-representative members of each class, run at
// full fidelity, classify the same as the executed representative.
func TestClassMembersMatchRepresentative(t *testing.T) {
	p := loadKernel(t, "dotprod")
	rep, err := Run(context.Background(), p, schemeE, Config{Seed: 3, Models: CoveredModels(), Stride: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sample []Injection
	var want []Outcome
	for i, members := range rep.Plan.Members {
		if len(members) < 2 {
			continue
		}
		for _, j := range []int{len(members) / 2, len(members) - 1} {
			if members[j] == rep.Plan.Exec[i] {
				continue
			}
			sample = append(sample, members[j])
			want = append(want, rep.Results[i].Outcome)
		}
	}
	if len(sample) == 0 {
		t.Fatal("no multi-member equivalence classes to validate")
	}
	if len(sample) > 24 {
		sample, want = sample[:24], want[:24]
	}
	got, err := Replay(context.Background(), p, schemeE, Config{}, sample)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Outcome != want[i] {
			t.Errorf("class member %s -> %s, representative -> %s",
				sample[i], got[i].Outcome, want[i])
		}
	}
}

// TestCampaignConcurrentWorkers drives a full-model campaign at 16
// workers — under -race this exercises the fan-out for data races
// across concurrent injected machines.
func TestCampaignConcurrentWorkers(t *testing.T) {
	p := loadKernel(t, "fib")
	rep, err := Run(context.Background(), p, schemeE, Config{Seed: 42, Stride: 2, MaxWords: 4, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Plan.Exec) < 32 {
		t.Fatalf("campaign too small to exercise concurrency: %d runs", len(rep.Plan.Exec))
	}
	for _, m := range CoveredModels() {
		if n := rep.Count(m, SDC) + rep.Count(m, Hang) + rep.Count(m, Crash); n != 0 {
			t.Fatalf("%s: %d covered-class escapes", m, n)
		}
	}
}
