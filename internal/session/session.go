package session

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/prog"
	"repro/internal/refsim"
)

// Session is one stateful debug session: a live machine bound to a
// program and its memoized golden trace. Verbs are mutually exclusive —
// each takes the session for its full duration and concurrent callers
// fail fast with ErrBusy — so the machine only ever advances under one
// driver.
type Session struct {
	ID string

	prog *prog.Program
	tr   *refsim.Trace

	// mu serializes verbs and guards every field below. Verbs acquire
	// it with TryLock: a held lock means a verb is in flight, and the
	// correct debugger-facing answer is "busy", not a queue.
	mu      sync.Mutex
	m       *machine.Machine
	state   State
	rewinds int64

	// ctl guards the interrupt plumbing, which Close must reach while
	// mu is held by a running verb.
	ctl         sync.Mutex
	runCancel   context.CancelFunc
	closing     bool
	closeReason string

	// lastUsed is the completion time of the most recent verb, read by
	// the manager's idle-TTL janitor (guarded by ctl: the janitor must
	// not block on a long-running verb holding mu).
	lastUsed time.Time
}

// New builds a session: records (or reuses) the program's golden trace
// and constructs the machine with rewind recording enabled. cfg.Scheme
// must be a fresh instance (schemes are stateful). The program must
// halt within the reference interpreter's step bound — a trace is what
// powers rewind verification and divergence checks.
func New(id string, p *prog.Program, cfg machine.Config) (*Session, error) {
	tr, err := refsim.CachedTrace(p)
	if err != nil {
		return nil, fmt.Errorf("session: recording golden trace: %w", err)
	}
	cfg.RefTrace = tr
	cfg.Rewindable = true
	m, err := machine.New(p, cfg)
	if err != nil {
		return nil, err
	}
	return &Session{ID: id, prog: p, tr: tr, m: m, state: StateCreated, lastUsed: time.Now()}, nil
}

// Trace returns the session's golden trace (read-only).
func (s *Session) Trace() *refsim.Trace { return s.tr }

// Program returns the program under debug.
func (s *Session) Program() *prog.Program { return s.prog }

// begin acquires the session for one verb, or fails fast.
func (s *Session) begin() error {
	if !s.mu.TryLock() {
		return ErrBusy
	}
	if s.state == StateClosed {
		s.mu.Unlock()
		return ErrClosed
	}
	return nil
}

// end releases the session after a verb and stamps idle time.
func (s *Session) end() {
	s.ctl.Lock()
	s.lastUsed = time.Now()
	s.ctl.Unlock()
	s.mu.Unlock()
}

// IdleFor reports how long the session has been idle. A session with a
// verb in flight is not idle (the janitor must not reap a streaming
// run just because it started long ago).
func (s *Session) IdleFor(now time.Time) time.Duration {
	if !s.mu.TryLock() {
		return 0
	}
	defer s.mu.Unlock()
	s.ctl.Lock()
	defer s.ctl.Unlock()
	return now.Sub(s.lastUsed)
}

// State returns the current lifecycle state without taking the verb
// lock (a streaming run reports "running").
func (s *Session) State() State {
	s.ctl.Lock()
	defer s.ctl.Unlock()
	return s.stateLocked()
}

// stateLocked reads state under ctl only; writers hold both mu and ctl.
func (s *Session) stateLocked() State { return s.state }

// setState transitions under both locks so State() is race-free.
// Callers hold mu.
func (s *Session) setState(next State) error {
	s.ctl.Lock()
	defer s.ctl.Unlock()
	return s.to(next)
}

// --- views ---

// View is the inspectable snapshot of a session.
type View struct {
	ID         string               `json:"id"`
	State      State                `json:"state"`
	Program    string               `json:"program"`
	Scheme     string               `json:"scheme"`
	Cycle      int64                `json:"cycle"`
	FetchPC    int                  `json:"fetch_pc"`
	Done       bool                 `json:"done"`
	Fatal      string               `json:"fatal,omitempty"`
	InFlight   int                  `json:"in_flight"`
	Precise    bool                 `json:"precise"`
	Retired    int                  `json:"retired"`
	Exceptions int                  `json:"exceptions"`
	TraceSteps int                  `json:"trace_steps"`
	Rewinds    int64                `json:"rewinds"`
	Regs       [isa.NumRegs]uint32 `json:"regs"`
	Stats      core.Stats          `json:"scheme_stats"`
}

// view builds a View; callers hold mu.
func (s *Session) view() View {
	v := View{
		ID:         s.ID,
		State:      s.stateLocked(),
		Program:    s.prog.Name,
		Scheme:     s.m.Scheme().Name(),
		Cycle:      s.m.Cycle(),
		FetchPC:    s.m.FetchPC(),
		Done:       s.m.Done(),
		InFlight:   s.m.InFlight(),
		Precise:    s.m.Precise(),
		Retired:    s.m.OracleRetired(),
		Exceptions: len(s.m.Exceptions()),
		TraceSteps: s.tr.Steps(),
		Rewinds:    s.rewinds,
		Regs:       s.m.RegsSnapshot(),
		Stats:      s.m.Scheme().Stats(),
	}
	if err := s.m.Fatal(); err != nil {
		v.Fatal = err.Error()
	}
	return v
}

// Inspect returns the session snapshot.
func (s *Session) Inspect() (View, error) {
	if err := s.begin(); err != nil {
		return View{}, err
	}
	defer s.end()
	return s.view(), nil
}

// --- events ---

// Event is one NDJSON stream record emitted while a run verb advances
// the machine.
type Event struct {
	Type       string `json:"type"` // cycle | paused | done | error | closed
	Cycle      int64  `json:"cycle"`
	FetchPC    int    `json:"fetch_pc"`
	InFlight   int    `json:"in_flight"`
	Retired    int    `json:"retired"`
	Exceptions int    `json:"exceptions"`
	ERepairs   int    `json:"e_repairs"`
	BRepairs   int    `json:"b_repairs"`
	Ckpts      int    `json:"checkpoints"`
	Reason     string `json:"reason,omitempty"`
}

// Sink consumes stream events. A write error is treated as a client
// disconnect and pauses the run.
type Sink func(Event) error

func (s *Session) event(typ, reason string) Event {
	st := s.m.Scheme().Stats()
	return Event{
		Type:       typ,
		Cycle:      s.m.Cycle(),
		FetchPC:    s.m.FetchPC(),
		InFlight:   s.m.InFlight(),
		Retired:    s.m.OracleRetired(),
		Exceptions: len(s.m.Exceptions()),
		ERepairs:   st.ERepairs,
		BRepairs:   st.BRepairs,
		Ckpts:      st.Checkpoints,
		Reason:     reason,
	}
}

// --- run verbs ---

// Step advances the machine by up to n cycles (cycle-skip may cover
// more wall-clock cycles per Step) and returns the resulting view.
func (s *Session) Step(n int) (View, error) {
	if n <= 0 {
		n = 1
	}
	return s.run(context.Background(), nil, 0, func() bool {
		n--
		return n < 0
	})
}

// RunToCycle advances until the machine's cycle counter reaches c,
// streaming an event to sink every stride cycles (stride <= 0 picks a
// coarse default). ctx cancellation — a vanished client — pauses the
// run and returns.
func (s *Session) RunToCycle(ctx context.Context, c int64, stride int64, sink Sink) (View, error) {
	return s.run(ctx, sink, stride, func() bool { return s.m.Cycle() >= c })
}

// RunToPC advances until the fetch stage sits at pc.
func (s *Session) RunToPC(ctx context.Context, pc int, stride int64, sink Sink) (View, error) {
	return s.run(ctx, sink, stride, func() bool { return s.m.FetchPC() == pc })
}

// run is the shared run-verb body: transition to running, advance until
// the predicate holds (checked between cycles), the machine finishes,
// the client disconnects, or the session is closed out from under us;
// then transition back to paused and report how the run ended via the
// terminal event.
func (s *Session) run(ctx context.Context, sink Sink, stride int64, done func() bool) (View, error) {
	if err := s.begin(); err != nil {
		return View{}, err
	}
	defer s.end()
	if err := s.setState(StateRunning); err != nil {
		return View{}, err
	}

	// Arm the interrupt: Close cancels this context to stop a streaming
	// run it cannot otherwise reach.
	runCtx, cancel := context.WithCancel(ctx)
	s.ctl.Lock()
	s.runCancel = cancel
	s.ctl.Unlock()
	defer func() {
		cancel()
		s.ctl.Lock()
		s.runCancel = nil
		s.ctl.Unlock()
	}()

	if stride <= 0 {
		stride = 1024
	}
	nextEmit := s.m.Cycle()
	reason := "target reached"
	for !done() {
		if runCtx.Err() != nil {
			reason = "interrupted"
			break
		}
		if !s.m.Step() {
			if err := s.m.Fatal(); err != nil {
				reason = "fatal: " + err.Error()
			} else {
				reason = "program completed"
			}
			break
		}
		if sink != nil && s.m.Cycle() >= nextEmit {
			nextEmit = s.m.Cycle() + stride
			if err := sink(s.event("cycle", "")); err != nil {
				reason = "client disconnected"
				break
			}
		}
	}

	if err := s.setState(StatePaused); err != nil {
		return View{}, err
	}
	s.ctl.Lock()
	closing, closeReason := s.closing, s.closeReason
	s.ctl.Unlock()
	if sink != nil {
		typ := "paused"
		switch {
		case closing:
			// The session is being closed out from under this run (drain
			// or DELETE); tell the streaming client before the connection
			// drops.
			typ, reason = "closed", closeReason
		case s.m.Done():
			typ = "done"
		case s.m.Fatal() != nil:
			typ = "error"
		}
		sink(s.event(typ, reason)) // best-effort: client may be gone
	}
	return s.view(), nil
}

// --- inspection verbs ---

// Word is one inspected memory longword.
type Word struct {
	Addr   uint32 `json:"addr"`
	Value  uint32 `json:"value"`
	Mapped bool   `json:"mapped"`
}

// Memory reads words aligned longwords starting at addr, as the current
// logical space observes them (non-perturbing).
func (s *Session) Memory(addr uint32, words int) ([]Word, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	if words <= 0 {
		words = 1
	}
	if words > 4096 {
		words = 4096
	}
	addr &^= 3
	out := make([]Word, 0, words)
	for i := 0; i < words; i++ {
		a := addr + uint32(i)*4
		v, ok := s.m.PeekMem(a)
		out = append(out, Word{Addr: a, Value: v, Mapped: ok})
	}
	return out, nil
}

// Checkpoints lists the machine's live rewind targets.
func (s *Session) Checkpoints() ([]machine.RewindInfo, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	return s.m.RewindTargets(), nil
}

// Divergence is the result of auditing the machine's architectural
// state against the golden trace.
type Divergence struct {
	// Comparable reports whether the machine currently rests on a
	// recorded architectural boundary (right after create, a rewind, or
	// completion). When false, Reason says why and the rest is empty.
	Comparable bool   `json:"comparable"`
	Reason     string `json:"reason,omitempty"`
	Boundary   int    `json:"boundary,omitempty"` // golden step index compared against
	Diverged   bool   `json:"diverged"`
	// Mismatches lists human-readable differences (registers first,
	// then sampled memory), capped.
	Mismatches []string `json:"mismatches,omitempty"`
}

// CheckDivergence compares registers and mapped memory against
// Replay.StateAt at the machine's current golden boundary.
func (s *Session) CheckDivergence() (Divergence, error) {
	if err := s.begin(); err != nil {
		return Divergence{}, err
	}
	defer s.end()
	gb, ok := s.m.GoldenBoundary()
	if !ok {
		return Divergence{
			Reason: "machine is not at a recorded architectural boundary (pause with in-flight operations); rewind or run to completion first",
		}, nil
	}
	st := s.tr.Replay().StateAt(gb.Steps)
	d := Divergence{Comparable: true, Boundary: gb.Steps}
	regs := s.m.RegsSnapshot()
	for i := 0; i < isa.NumRegs && len(d.Mismatches) < 16; i++ {
		if regs[i] != st.Regs[i] {
			d.Mismatches = append(d.Mismatches, fmt.Sprintf("r%d: machine=%#x golden=%#x", i, regs[i], st.Regs[i]))
		}
	}
	for addr := uint32(0); addr < 1<<22 && len(d.Mismatches) < 16; addr += 4 {
		if !st.Mem.Mapped(addr) {
			addr += 4092 // skip to next page boundary (loop adds 4)
			continue
		}
		want, exc := st.Mem.Read32(addr)
		if exc != 0 {
			continue
		}
		if got, ok := s.m.PeekMem(addr); !ok || got != want {
			d.Mismatches = append(d.Mismatches, fmt.Sprintf("mem[%#x]: machine=%#x golden=%#x", addr, got, want))
		}
	}
	d.Diverged = len(d.Mismatches) > 0
	return d, nil
}

// --- rewind verbs ---

// Rewind restores the live checkpoint with BornSeq seq through the
// scheme's repair paths and leaves the session paused on that boundary.
func (s *Session) Rewind(seq uint64) (*machine.RewindInfo, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	info, err := s.m.Rewind(seq)
	if err != nil {
		return nil, err
	}
	s.rewinds++
	return info, nil
}

// RewindNewConfig re-materializes the boundary of checkpoint seq under
// a different machine configuration: the golden state at the boundary
// seeds a fresh machine (machine.NewAt) which replaces the session's.
// cfg.Scheme must be a fresh instance.
func (s *Session) RewindNewConfig(seq uint64, cfg machine.Config) (*machine.RewindInfo, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	var target *machine.RewindInfo
	for _, t := range s.m.RewindTargets() {
		if t.Seq == seq {
			t := t
			target = &t
			break
		}
	}
	if target == nil {
		return nil, fmt.Errorf("%w: no live checkpoint with seq %d", machine.ErrNotRewindable, seq)
	}
	if target.Steps < 0 {
		return nil, fmt.Errorf("%w: checkpoint %d has no golden boundary record", machine.ErrNotRewindable, seq)
	}
	cfg.RefTrace = s.tr
	cfg.Rewindable = true
	m, err := machine.NewAt(s.prog, cfg, target.Steps)
	if err != nil {
		return nil, err
	}
	s.m = m
	s.rewinds++
	return target, nil
}

// --- close ---

// Close interrupts any in-flight verb, transitions the session to
// closed, and releases the machine. Idempotent. The reason is reported
// to a streaming client through the run verb's terminal event.
func (s *Session) Close(reason string) {
	s.ctl.Lock()
	if s.closing {
		s.ctl.Unlock()
		return
	}
	s.closing = true
	s.closeReason = reason
	if s.runCancel != nil {
		s.runCancel() // unblocks a streaming run; it emits its terminal event
	}
	s.ctl.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctl.Lock()
	defer s.ctl.Unlock()
	// Transition table: closed is reachable from every live state.
	s.state = StateClosed
	s.m = nil // release the machine's memory promptly
}
