package rv32_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"sort"
	"testing"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/refsim"
	"repro/internal/rv32"
)

// golden mirrors the gen/main.go record format.
type golden struct {
	Entry      int    `json:"entry"`
	Retired    int    `json:"retired"`
	Halted     bool   `json:"halted"`
	Exceptions int    `json:"exceptions"`
	StateHash  string `json:"state_hash"`
}

func loadGolden(t *testing.T) map[string]golden {
	t.Helper()
	var g map[string]golden
	if err := json.Unmarshal(rv32.GoldenJSON(), &g); err != nil {
		t.Fatalf("golden.json: %v", err)
	}
	return g
}

// TestCorpusRegeneration: the committed binaries are exactly what the
// in-tree builders produce — the corpus is hermetic and reviewable.
func TestCorpusRegeneration(t *testing.T) {
	built, err := rv32.BuildCorpus()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for f := range built {
		names = append(names, f)
	}
	sort.Strings(names)
	if len(names) != len(rv32.CorpusNames()) {
		t.Errorf("builders produce %d binaries, corpus embeds %d", len(names), len(rv32.CorpusNames()))
	}
	for _, f := range names {
		name := f[:len(f)-len(".bin")] // .elf has the same length
		committed, err := rv32.CorpusBytes(name)
		if err != nil {
			t.Errorf("%s: not committed: %v", f, err)
			continue
		}
		if !bytes.Equal(committed, built[f]) {
			t.Errorf("%s: committed bytes differ from builder output; re-run go run ./internal/rv32/gen", f)
		}
	}
}

// TestCorpusGolden: every corpus binary translates, runs to a halt on
// refsim, and reproduces the committed golden digest exactly —
// retirement count, exception count, and the SHA-256 of the full final
// architectural state.
func TestCorpusGolden(t *testing.T) {
	goldens := loadGolden(t)
	if len(goldens) != len(rv32.CorpusNames()) {
		t.Fatalf("golden.json has %d entries, corpus has %d", len(goldens), len(rv32.CorpusNames()))
	}
	for _, name := range rv32.CorpusNames() {
		t.Run(name, func(t *testing.T) {
			want, ok := goldens[name]
			if !ok {
				t.Fatalf("no golden entry for %s", name)
			}
			p, err := rv32.CorpusProgram(name)
			if err != nil {
				t.Fatal(err)
			}
			res := refsim.MustRun(p, refsim.Options{})
			if !res.Halted {
				t.Fatal("did not halt")
			}
			st := &refsim.ArchState{Regs: res.Regs, Mem: res.Mem}
			got := golden{p.Entry, res.Retired, res.Halted, len(res.Exceptions), st.Hash()}
			if got != want {
				t.Errorf("digest drift:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestCorpusSemantics cross-checks the programs' computed results
// against independent Go implementations — the strongest evidence the
// whole decode→translate→execute pipeline preserves rv32 semantics.
func TestCorpusSemantics(t *testing.T) {
	run := func(t *testing.T, name string) *refsim.Result {
		t.Helper()
		p, err := rv32.CorpusProgram(name)
		if err != nil {
			t.Fatal(err)
		}
		res := refsim.MustRun(p, refsim.Options{})
		if !res.Halted {
			t.Fatal("did not halt")
		}
		return res
	}

	t.Run("crc32", func(t *testing.T) {
		// The program computes CRC-32/IEEE (reflected 0xEDB88320, init
		// and final-xor all-ones) over its 64-byte message — exactly
		// hash/crc32.ChecksumIEEE.
		res := run(t, "crc32")
		msg := make([]byte, 64)
		copy(msg, []byte("checkpoint repair for out-of-order execution machines, 1987."))
		want := crc32.ChecksumIEEE(msg)
		got, _ := res.Mem.Read32(0x1800)
		if got != want {
			t.Errorf("crc = %#08x, want %#08x", got, want)
		}
	})

	t.Run("fib", func(t *testing.T) {
		res := run(t, "fib")
		got, _ := res.Mem.Read32(0x1000)
		if got != 144 { // fib(12)
			t.Errorf("fib(12) = %d, want 144", got)
		}
	})

	t.Run("sort", func(t *testing.T) {
		res := run(t, "sort")
		// Reproduce the program's LCG fill, sort signed ascending, and
		// fold the same order-sensitive checksum.
		vals := make([]uint32, 32)
		x := uint32(12345)
		for i := range vals {
			x = x*1103515245 + 12345
			vals[i] = x
		}
		sort.Slice(vals, func(i, j int) bool { return int32(vals[i]) < int32(vals[j]) })
		var sum uint32
		for k, v := range vals {
			got, _ := res.Mem.Read32(uint32(0x1000 + 4*k))
			if got != v {
				t.Errorf("arr[%d] = %#x, want %#x", k, got, v)
			}
			sum += v * uint32(k)
		}
		got, _ := res.Mem.Read32(0x1100)
		if got != sum {
			t.Errorf("checksum = %#x, want %#x", got, sum)
		}
	})

	t.Run("mix", func(t *testing.T) {
		res := run(t, "mix")
		const src, dst, res0 = 0x2000, 0x2100, 0x2180
		want := "the quick brown fox jumps over the lazy dog"
		for i := 0; i <= len(want); i++ { // incl. the NUL
			s, _ := res.Mem.Read8(uint32(src + i))
			d, _ := res.Mem.Read8(uint32(dst + i))
			if s != d {
				t.Fatalf("strcpy byte %d: src %#x dst %#x", i, s, d)
			}
		}
		hvals := []int16{1000, -700, 123, -1, 32767, -32768, 55, -999, 13, 0, 8191, -4096, 77, -77, 500, -500}
		var hsum int32
		for _, v := range hvals {
			hsum += int32(v)
		}
		checks := []struct {
			off  uint32
			want uint32
			what string
		}{
			{0, 0, "strcmp result"},
			{4, uint32(hsum) & 0xffff, "halfword sum (sh-stored)"},
			{8, uint32(hsum / 3), "div"},
			{12, uint32(hsum % 3), "rem"},
			{16, 0, "sltu of exact mul"},
		}
		for _, c := range checks {
			got, _ := res.Mem.Read32(res0 + c.off)
			if got != c.want {
				t.Errorf("%s = %d, want %d", c.what, got, c.want)
			}
		}
	})
}

// corpusSchemes is the five-scheme matrix the zero-divergence claim
// runs over: the paper's three combined schemes at two sizes plus the
// pure E machine.
func corpusSchemes() map[string]func() machine.Config {
	return map[string]func() machine.Config{
		"tight4": func() machine.Config {
			return machine.Config{Scheme: core.NewSchemeTight(4, 0), Predictor: bpred.NewBimodal(256), Speculate: true, MemSystem: machine.MemBackward3a}
		},
		"tight2": func() machine.Config {
			return machine.Config{Scheme: core.NewSchemeTight(2, 0), Predictor: bpred.NewGShare(256, 6), Speculate: true, MemSystem: machine.MemBackward3b}
		},
		"direct": func() machine.Config {
			return machine.Config{Scheme: core.NewSchemeDirect(2, 4, 12, 0), Predictor: bpred.NewBimodal(256), Speculate: true, MemSystem: machine.MemForward}
		},
		"loose": func() machine.Config {
			return machine.Config{Scheme: core.NewSchemeLoose(2, 4, 12), Predictor: bpred.NewBTFN(), Speculate: true, MemSystem: machine.MemBackward3b}
		},
		"schemeE": func() machine.Config {
			return machine.Config{Scheme: core.NewSchemeE(2, 8, 0), Speculate: false, MemSystem: machine.MemBackward3b}
		},
	}
}

// TestCorpusAllSchemes is the acceptance bar: every corpus binary —
// real compiled rv32 code with calls, indirect returns, demand paging,
// traps, and byte/halfword traffic — matches the reference interpreter
// byte-identically under all five repair schemes.
func TestCorpusAllSchemes(t *testing.T) {
	for _, name := range rv32.CorpusNames() {
		p, err := rv32.CorpusProgram(name)
		if err != nil {
			t.Fatal(err)
		}
		ref := refsim.MustRun(p, refsim.Options{})
		for sName, mk := range corpusSchemes() {
			t.Run(fmt.Sprintf("%s/%s", name, sName), func(t *testing.T) {
				res, err := machine.Run(p, mk())
				if err != nil {
					t.Fatalf("machine: %v", err)
				}
				if err := res.MatchRef(ref); err != nil {
					t.Fatalf("divergence from refsim: %v", err)
				}
			})
		}
	}
}

// TestCorpusFaultCampaign: a strided fault campaign over a real
// compiled binary reports zero silent corruption, zero hangs, and zero
// crashes for the covered fault classes — the paper's repair claim
// holds on real code, not just hand-written kernels.
func TestCorpusFaultCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	p, err := rv32.CorpusProgram("crc32")
	if err != nil {
		t.Fatal(err)
	}
	mk := func() machine.Config {
		return machine.Config{Scheme: core.NewSchemeE(4, 8, 0), Speculate: false, MemSystem: machine.MemBackward3b}
	}
	rep, err := fault.Run(context.Background(), p, mk, fault.Config{
		Seed:   1987,
		Models: fault.CoveredModels(),
		Stride: 23, // bound the run: ~1/23rd of the event axis
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad := rep.CoveredBad(); len(bad) != 0 {
		for _, b := range bad {
			t.Errorf("%s -> %s (%s)", b.Inj, b.Outcome, b.Detail)
		}
		t.Fatalf("%d covered-class injections escaped repair on real code", len(bad))
	}
	if rep.CountOutcome(fault.Repaired) == 0 {
		t.Fatalf("no injection exercised a repair\n%s", rep)
	}
}

// TestLoadProgramMemoized: identical bytes yield the identical
// *prog.Program instance (the content-hash interning that keeps
// reference-trace memos shared), different bytes do not.
func TestLoadProgramMemoized(t *testing.T) {
	data, err := rv32.CorpusBytes("fib")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := rv32.LoadProgram("fib", data)
	if err != nil {
		t.Fatal(err)
	}
	dup := make([]byte, len(data))
	copy(dup, data)
	p2, err := rv32.LoadProgram("fib", dup)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("same content loaded to distinct program instances")
	}
	p3, err := rv32.LoadProgram("fib2", data)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p3 {
		t.Error("different name shares a program instance")
	}
}
