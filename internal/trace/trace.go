// Package trace renders checkpoint-window snapshots as text diagrams in
// the style of the paper's Figures 3, 4 and 7: the issuing instruction
// stream with active checkpoints marked on it, each checkpoint labelled
// with its shift-register state (count, except, pend) and the backup
// space assigned to it.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Snapshot is one renderable machine instant.
type Snapshot struct {
	Title string
	// Stacks holds the active checkpoints per register-file stack,
	// oldest first, as returned by core.Inspectable.
	Stacks [][]core.View
	// StackNames labels each stack ("E", "B", or "" for single-stack
	// schemes).
	StackNames []string
}

// Capture snapshots a scheme's checkpoint state.
func Capture(title string, s core.Scheme) Snapshot {
	snap := Snapshot{Title: title}
	insp, ok := s.(core.Inspectable)
	if !ok {
		return snap
	}
	snap.Stacks = insp.Views()
	switch len(snap.Stacks) {
	case 1:
		snap.StackNames = []string{""}
	case 2:
		snap.StackNames = []string{"E", "B"}
	default:
		for i := range snap.Stacks {
			snap.StackNames = append(snap.StackNames, fmt.Sprintf("s%d", i))
		}
	}
	return snap
}

// Render draws the snapshot. Example output (one stack, two active
// checkpoints, echoing Figure 4's activeE,2(t1)=A, activeE,1(t1)=B):
//
//	t1: ──▌CP@8──────▌CP@16─────▶ issuing
//	       active2       active1
//	       cnt=3         cnt=5
//	       backup2       backup1
func Render(s Snapshot) string {
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	for si, cks := range s.Stacks {
		name := ""
		if si < len(s.StackNames) {
			name = s.StackNames[si]
		}
		renderStack(&b, name, cks)
	}
	return b.String()
}

func renderStack(b *strings.Builder, name string, cks []core.View) {
	if name != "" {
		fmt.Fprintf(b, "  [%s-repair spaces]\n", name)
	}
	if len(cks) == 0 {
		fmt.Fprintf(b, "  (no active checkpoints)\n")
		return
	}
	cells := make([]string, len(cks))
	for i, c := range cks {
		cells[i] = fmt.Sprintf("▌CP@pc%d", c.PC)
	}
	fmt.Fprintf(b, "  ──%s──▶ issuing\n", strings.Join(cells, "────"))

	// Label rows. Index i increases from right (newest) to left
	// (oldest) in the paper's convention: active_{n-i}.
	n := len(cks)
	row := func(label func(c core.View, idx int) string) {
		var parts []string
		for i, c := range cks {
			parts = append(parts, pad(label(c, n-i), len(cells[i])+4))
		}
		fmt.Fprintf(b, "    %s\n", strings.Join(parts, ""))
	}
	row(func(c core.View, idx int) string { return fmt.Sprintf("active%d", idx) })
	row(func(c core.View, idx int) string {
		flags := fmt.Sprintf("cnt=%d", c.Active)
		if c.Except {
			flags += " EXC"
		}
		if c.Pend {
			flags += " pend"
		}
		return flags
	})
	row(func(c core.View, idx int) string { return fmt.Sprintf("backup%d", idx) })
}

func pad(s string, w int) string {
	if len([]rune(s)) >= w {
		return s + " "
	}
	return s + strings.Repeat(" ", w-len([]rune(s)))
}

// Series renders a sequence of snapshots separated by blank lines —
// the t1/t2 progressions of Figures 4 and 7.
func Series(snaps ...Snapshot) string {
	parts := make([]string, len(snaps))
	for i, s := range snaps {
		parts[i] = Render(s)
	}
	return strings.Join(parts, "\n")
}
