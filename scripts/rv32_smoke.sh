#!/bin/sh
# rv32 frontend smoke test: real compiled rv32 binaries through every
# layer that ships them.
#
#   1. local sweep: every embedded corpus binary runs on the
#      out-of-order machine under three scheme shapes with the golden
#      check on (byte-identical architectural state vs the reference
#      interpreter), plus a translation listing sanity check;
#   2. serving: boot ckptd and submit a corpus-reference sim job, an
#      inline-image sim job (the binary shipped in the spec), and a
#      mini fault campaign over a corpus binary (strided, covered
#      models only) which must report zero SDC / hang / crash;
#   3. debugging: a scripted ckptdbg session loads a compiled binary
#      with loadrv32, runs it to completion, and reads the result out
#      of simulated memory;
#   4. SIGTERM the daemon and require a clean drain.
#
# Used by `make rv32-smoke` (and therefore `make ci`).
set -eu

workdir=$(mktemp -d)
addrfile="$workdir/ckptd.addr"
logfile="$workdir/ckptd.log"
status=1

cleanup() {
    if [ -n "${ckptd_pid:-}" ] && kill -0 "$ckptd_pid" 2>/dev/null; then
        kill -TERM "$ckptd_pid" 2>/dev/null || true
        wait "$ckptd_pid" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ]; then
        echo "--- ckptd log ---" >&2
        cat "$logfile" >&2 || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/ckptsim" ./cmd/ckptsim
go build -o "$workdir/ckptasm" ./cmd/ckptasm
go build -o "$workdir/ckptd" ./cmd/ckptd
go build -o "$workdir/ckptdbg" ./cmd/ckptdbg

# Phase 1: local corpus sweep with the golden check on. Three scheme
# shapes cover the combined schemes and the pure E machine.
for name in crc32 fib mix sort; do
    for args in "-scheme tight -c 4" "-scheme loose -ce 2 -cb 4 -dist 12" "-scheme e -c 4 -dist 8 -nospec"; do
        # shellcheck disable=SC2086
        "$workdir/ckptsim" -kernel "rv32:$name" $args >"$workdir/sim.out" 2>&1 || {
            echo "rv32-smoke: ckptsim rv32:$name $args failed" >&2
            cat "$workdir/sim.out" >&2
            exit 1
        }
        grep -q "golden check: machine state matches" "$workdir/sim.out" || {
            echo "rv32-smoke: rv32:$name $args skipped the golden check" >&2
            exit 1
        }
    done
done
echo "rv32-smoke: corpus sweep ok (4 binaries x 3 schemes, golden-checked)"

# A flat binary straight from disk must autodetect too, and the
# translation listing must decode real instructions.
"$workdir/ckptsim" -prog internal/rv32/testdata/fib.bin -scheme tight >"$workdir/sim.out" 2>&1
grep -q "golden check: machine state matches" "$workdir/sim.out"
"$workdir/ckptasm" -rv32 crc32 >"$workdir/listing.out"
grep -q "jal x1" "$workdir/listing.out" || {
    echo "rv32-smoke: translation listing missing expected rv32 disassembly" >&2
    exit 1
}

# Phase 2: the serving path.
"$workdir/ckptd" -addr 127.0.0.1:0 -addrfile "$addrfile" -workers 2 \
    >"$logfile" 2>&1 &
ckptd_pid=$!

i=0
while [ ! -s "$addrfile" ]; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "rv32-smoke: ckptd never wrote $addrfile" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$addrfile")
echo "rv32-smoke: ckptd on $addr"

# Corpus-reference sim job.
curl -sf -X POST "http://$addr/jobs?wait=1" -H 'Content-Type: application/json' \
    -d '{"kind":"sim","program":{"kind":"rv32","name":"fib"}}' >"$workdir/job1.out"
grep -q '"halted": *true' "$workdir/job1.out" || {
    echo "rv32-smoke: corpus-reference sim job did not halt" >&2
    cat "$workdir/job1.out" >&2
    exit 1
}

# Inline-image sim job: the compiled binary ships inside the spec.
b64=$(base64 <internal/rv32/testdata/crc32.bin | tr -d '\n')
printf '{"kind":"sim","program":{"kind":"rv32","name":"crc32-wire","data":"%s"}}' "$b64" >"$workdir/job2.json"
curl -sf -X POST "http://$addr/jobs?wait=1" -H 'Content-Type: application/json' \
    -d @"$workdir/job2.json" >"$workdir/job2.out"
grep -q '"halted": *true' "$workdir/job2.out" || {
    echo "rv32-smoke: inline-image sim job did not halt" >&2
    cat "$workdir/job2.out" >&2
    exit 1
}

# Mini fault campaign over real compiled code: strided to stay quick,
# covered models only, and repair must hold (zero SDC / hang / crash).
curl -sf -X POST "http://$addr/jobs?wait=1" -H 'Content-Type: application/json' \
    -d '{"kind":"campaign","workload":"rv32:crc32","machine":{"scheme":"e","dist":8},"campaign":{"models":["fu-detected","spurious-exc"],"stride":37}}' \
    >"$workdir/job3.out"
grep -q '"sdc": *0' "$workdir/job3.out" || {
    echo "rv32-smoke: campaign reported silent corruption on rv32 code" >&2
    cat "$workdir/job3.out" >&2
    exit 1
}
grep -q '"hang": *0' "$workdir/job3.out" && grep -q '"crash": *0' "$workdir/job3.out" || {
    echo "rv32-smoke: campaign reported hangs or crashes on rv32 code" >&2
    cat "$workdir/job3.out" >&2
    exit 1
}
grep -q '"sdc": *0' "$workdir/job3.out" && ! grep -q '"executed": *0,' "$workdir/job3.out" || {
    echo "rv32-smoke: campaign executed no injections" >&2
    cat "$workdir/job3.out" >&2
    exit 1
}
echo "rv32-smoke: serving ok (reference + inline sim jobs, campaign clean)"

# Phase 3: a time-travel debug session on a compiled binary. fib leaves
# fib(12) = 144 (0x90) at 0x1000.
"$workdir/ckptdbg" -addr "http://$addr" -e >"$workdir/dbg.out" 2>"$workdir/dbg.err" <<'EOF'
loadrv32 internal/rv32/testdata/fib.bin scheme=tight c=4
run
mem 0x1000 1
close
EOF
grep -q '"type":"done"' "$workdir/dbg.out" || {
    echo "rv32-smoke: debug session never completed" >&2
    cat "$workdir/dbg.out" "$workdir/dbg.err" >&2
    exit 1
}
grep -q '"value":144' "$workdir/dbg.out" || {
    echo "rv32-smoke: fib(12) result not visible in session memory" >&2
    cat "$workdir/dbg.out" >&2
    exit 1
}
echo "rv32-smoke: debug session ok (loadrv32, run, memory readback)"

# Phase 4: clean drain.
kill -TERM "$ckptd_pid"
if ! wait "$ckptd_pid"; then
    echo "rv32-smoke: ckptd did not exit cleanly on SIGTERM" >&2
    exit 1
fi
ckptd_pid=""
grep -q "drained clean" "$logfile" || {
    echo "rv32-smoke: ckptd log missing clean-drain marker" >&2
    exit 1
}

status=0
echo "rv32-smoke: ok (corpus golden-checked, wire jobs halted, campaign clean, drain clean)"
