package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/service"
)

// Heartbeat is a worker-side agent: it announces the worker to the
// coordinator on an interval, carrying current queue depth so the
// coordinator's capacity view stays fresh between probes. The worker
// itself is just a plain ckptd server — membership is the only thing
// that makes it a cluster node.
type Heartbeat struct {
	srv      *service.Server
	id       string
	addr     string // this worker's base URL, as the coordinator should dial it
	join     string // coordinator base URL
	interval time.Duration
	hc       *http.Client

	stop    chan struct{}
	stopped sync.WaitGroup
}

// NewHeartbeat builds the agent. interval <= 0 selects 5s.
func NewHeartbeat(srv *service.Server, id, advertiseAddr, coordinatorURL string, interval time.Duration) *Heartbeat {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	return &Heartbeat{
		srv:      srv,
		id:       id,
		addr:     advertiseAddr,
		join:     coordinatorURL,
		interval: interval,
		hc:       &http.Client{Timeout: 10 * time.Second},
		stop:     make(chan struct{}),
	}
}

// Start sends one immediate registration (returning its error, so a
// worker pointed at a bad coordinator fails loudly at startup) and
// then heartbeats in the background until Stop.
func (h *Heartbeat) Start() error {
	err := h.beat()
	h.stopped.Add(1)
	go h.loop()
	return err
}

// Stop halts the heartbeat loop.
func (h *Heartbeat) Stop() {
	close(h.stop)
	h.stopped.Wait()
}

func (h *Heartbeat) loop() {
	defer h.stopped.Done()
	t := time.NewTicker(h.interval)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			h.beat() // transient failures are fine; the next beat retries
		}
	}
}

func (h *Heartbeat) beat() error {
	depth, running := h.srv.QueueStats()
	body, err := json.Marshal(RegisterRequest{
		ID:         h.id,
		Addr:       h.addr,
		Version:    buildinfo.Version(),
		QueueDepth: depth,
		Running:    running,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), h.interval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.join+"/cluster/register", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.hc.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: register with %s: %w", h.join, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: register with %s: %s", h.join, resp.Status)
	}
	return nil
}
