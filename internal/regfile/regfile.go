// Package regfile implements the paper's copy technique for
// checkpointed registers (Algorithm 2, Figure 5).
//
// Each register "bit" is physically replicated once per logical space:
// one cell for the current space and one per backup space, organised as
// hardware stacks with the newest checkpoint on top. Establishing a
// checkpoint pushes the current cells onto a stack; repair recalls a
// backup into current. Neither operation moves data through the
// register file ports, which is the technique's selling point — at the
// price of multiplying storage by the number of spaces (Cost quantifies
// the Figure 5 overhead).
//
// A File can maintain several independent stacks over the same current
// space because the directly combined scheme of §5.1 keeps separate
// E-repair and B-repair backup spaces (c_E + c_B + 1 logical spaces in
// total); single-mechanism schemes use one stack.
//
// Beyond values, every cell carries the reservation state of the
// Tomasulo-style dependency machinery ("the destination registers are
// marked reserved ... on the current cells"): a pending flag and the
// tag of the producing operation. A delivering operation writes a cell
// only when the cell still carries its tag, which makes out-of-order
// delivery respect write-after-write ordering independently in every
// logical space — a checkpoint pushed between two writers of the same
// register keeps the elder's value while current keeps the younger's.
package regfile

import (
	"fmt"

	"repro/internal/isa"
)

// space is one logical space's worth of register cells.
type space struct {
	val     [isa.NumRegs]uint32
	pending [isa.NumRegs]bool
	tag     [isa.NumRegs]uint64
}

// File is a checkpointed register file: one current space plus one or
// more backup stacks.
type File struct {
	caps    []int
	current space
	// stacks[s][0] is the newest checkpoint of stack s, matching the
	// paper's "hardware stack with backupE,1 being the top entry".
	stacks [][]space
	stats  Stats
}

// Stats counts register-file checkpoint events.
type Stats struct {
	Pushes     int
	Recalls    int
	Drops      int
	Deliveries int
	CellWrites int // cells actually written by deliveries
}

// New returns a register file with one backup stack of capacity c.
func New(c int) *File { return NewStacks(c) }

// NewStacks returns a register file with one backup stack per given
// capacity.
func NewStacks(caps ...int) *File {
	for _, c := range caps {
		if c < 0 {
			panic(fmt.Sprintf("regfile: negative backup count %d", c))
		}
	}
	f := &File{caps: append([]int(nil), caps...), stacks: make([][]space, len(caps))}
	for s, c := range caps {
		f.stacks[s] = make([]space, 0, c)
	}
	return f
}

// Reset restores the file to the state NewStacks(caps...) would build,
// reusing the existing stack storage when the capacities match (the
// common case when a machine chassis is re-run with a same-shape
// configuration).
func (f *File) Reset(caps ...int) {
	for _, c := range caps {
		if c < 0 {
			panic(fmt.Sprintf("regfile: negative backup count %d", c))
		}
	}
	sameShape := len(caps) == len(f.caps)
	if sameShape {
		for i, c := range caps {
			if c != f.caps[i] {
				sameShape = false
				break
			}
		}
	}
	f.current = space{}
	f.stats = Stats{}
	if sameShape {
		for s := range f.stacks {
			f.stacks[s] = f.stacks[s][:0]
		}
		return
	}
	f.caps = append(f.caps[:0], caps...)
	f.stacks = f.stacks[:0]
	for _, c := range caps {
		f.stacks = append(f.stacks, make([]space, 0, c))
	}
}

// Stacks returns the number of backup stacks.
func (f *File) Stacks() int { return len(f.stacks) }

// Capacity returns the capacity of stack s.
func (f *File) Capacity(s int) int { return f.caps[s] }

// Depth returns the number of occupied backups in stack s.
func (f *File) Depth(s int) int { return len(f.stacks[s]) }

// Stats returns a copy of the event counters.
func (f *File) Stats() Stats { return f.stats }

// Read returns the current-space view of register r: its value if no
// operation is pending on it, otherwise the tag of the producer to wait
// for. R0 always reads zero and is never pending.
func (f *File) Read(r isa.Reg) (val uint32, pending bool, tag uint64) {
	if r == 0 {
		return 0, false, 0
	}
	return f.current.val[r], f.current.pending[r], f.current.tag[r]
}

// Corrupt XORs mask into the current-space value cell of r, modelling a
// single-event upset in the working register file. Backups, pending
// flags, and tags are untouched: the flip hits the stored bits only, so
// a cell awaiting a pending producer still gets overwritten by the
// delivery, exactly like real bit-flip hardware faults under register
// renaming. Corrupting R0 is a no-op (it reads as zero regardless).
func (f *File) Corrupt(r isa.Reg, mask uint32) {
	if r == 0 {
		return
	}
	f.current.val[r] ^= mask
}

// Reserve marks r reserved in the current space by the operation with
// the given tag (instruction issue). Reserving R0 is a no-op.
func (f *File) Reserve(r isa.Reg, tag uint64) {
	if r == 0 {
		return
	}
	f.current.pending[r] = true
	f.current.tag[r] = tag
}

// Push establishes a checkpoint on stack s: the current cells,
// including their reservation state, go on top. It panics if the stack
// is full — schemes must check their stall condition first.
func (f *File) Push(s int) {
	st := f.stacks[s]
	if len(st) >= f.caps[s] {
		panic(fmt.Sprintf("regfile: push on full stack %d", s))
	}
	st = append(st, space{})
	copy(st[1:], st[:len(st)-1])
	st[0] = f.current
	f.stacks[s] = st
	f.stats.Pushes++
}

// Deliver writes an execution result into the current space and, for
// each stack, its newest depths[s] backups — the spaces whose
// checkpoints were established at or after the producing operation
// issued and therefore must reflect it. Each cell is written only if it
// still carries the operation's tag, preserving per-space WAW order.
// Depths are clamped to stack occupancy.
func (f *File) Deliver(depths []int, r isa.Reg, v uint32, tag uint64) {
	if r == 0 {
		return
	}
	f.stats.Deliveries++
	if f.current.pending[r] && f.current.tag[r] == tag {
		f.current.val[r] = v
		f.current.pending[r] = false
		f.stats.CellWrites++
	}
	for s, st := range f.stacks {
		d := depths[s]
		if d > len(st) {
			d = len(st)
		}
		for i := 0; i < d; i++ {
			sp := &st[i]
			if sp.pending[r] && sp.tag[r] == tag {
				sp.val[r] = v
				sp.pending[r] = false
				f.stats.CellWrites++
			}
		}
	}
}

// Cancel withdraws a reservation without delivering a value: the
// producing operation faulted, so architecturally it never executed and
// r keeps its prior value in every logical space. Cells are cleared
// only where they still carry the operation's tag, in the current space
// and the newest depths[s] backups of each stack (the same spaces a
// delivery would have written). It returns the current-space value of r
// so the machine can unblock waiting consumers.
func (f *File) Cancel(depths []int, r isa.Reg, tag uint64) uint32 {
	if r == 0 {
		return 0
	}
	if f.current.pending[r] && f.current.tag[r] == tag {
		f.current.pending[r] = false
	}
	for s, st := range f.stacks {
		d := depths[s]
		if d > len(st) {
			d = len(st)
		}
		for i := 0; i < d; i++ {
			sp := &st[i]
			if sp.pending[r] && sp.tag[r] == tag {
				sp.pending[r] = false
			}
		}
	}
	return f.current.val[r]
}

// RecallAt restores the k-th newest checkpoint of stack s (k=1 is the
// newest) into the current space and pops backups 1..k of that stack.
// Pending cells may legitimately remain in the recalled space: they
// belong to still-active instructions older than the checkpoint, which
// are not squashed by the repair.
func (f *File) RecallAt(s, k int) {
	st := f.stacks[s]
	if k < 1 || k > len(st) {
		panic(fmt.Sprintf("regfile: RecallAt(%d,%d) with depth %d", s, k, len(st)))
	}
	f.current = st[k-1]
	f.stacks[s] = append(st[:0], st[k:]...)
	f.stats.Recalls++
}

// RecallOldest restores the oldest checkpoint of stack s into current
// and empties the stack. Used by E-repairs, after which every active
// instruction is squashed; by Theorem 4 the recalled space has no
// pending cells, and the call panics if that invariant is violated.
func (f *File) RecallOldest(s int) {
	st := f.stacks[s]
	if len(st) == 0 {
		panic("regfile: RecallOldest with no checkpoints")
	}
	oldest := st[len(st)-1]
	for r := 1; r < isa.NumRegs; r++ {
		if oldest.pending[r] {
			panic(fmt.Sprintf("regfile: Theorem 4 violation: r%d pending in oldest backup at recall", r))
		}
	}
	f.current = oldest
	f.stacks[s] = st[:0]
	f.stats.Recalls++
}

// DropOldest retires the oldest checkpoint of stack s without
// recalling it (its repair window has passed).
func (f *File) DropOldest(s int) {
	st := f.stacks[s]
	if len(st) == 0 {
		panic("regfile: DropOldest on empty stack")
	}
	f.stacks[s] = st[:len(st)-1]
	f.stats.Drops++
}

// PopNewest discards the n newest checkpoints of stack s (checkpoints
// invalidated by a repair that restored an older state).
func (f *File) PopNewest(s, n int) {
	st := f.stacks[s]
	if n < 0 || n > len(st) {
		panic(fmt.Sprintf("regfile: PopNewest(%d,%d) with depth %d", s, n, len(st)))
	}
	f.stacks[s] = append(st[:0], st[n:]...)
	f.stats.Drops += n
}

// TransferOldest moves the oldest checkpoint of stack `from` to become
// the newest checkpoint of stack `to` — the loose scheme's graduation
// of an aged B backup space into an E backup space ("BackupE,cB is
// pushed onto the E-repair hardware stack", Algorithm 4 case 2). The
// age ordering is preserved because every graduating space is older
// than everything in the B stack and younger than everything in the E
// stack.
func (f *File) TransferOldest(from, to int) {
	src := f.stacks[from]
	if len(src) == 0 {
		panic("regfile: TransferOldest from empty stack")
	}
	if len(f.stacks[to]) >= f.caps[to] {
		panic("regfile: TransferOldest to full stack")
	}
	sp := src[len(src)-1]
	f.stacks[from] = src[:len(src)-1]
	dst := f.stacks[to]
	dst = append(dst, space{})
	copy(dst[1:], dst[:len(dst)-1])
	dst[0] = sp
	f.stacks[to] = dst
}

// Clear empties every stack (E-repair resets the whole window).
func (f *File) Clear() {
	for s := range f.stacks {
		f.stacks[s] = f.stacks[s][:0]
	}
}

// Snapshot returns the register values of the current space.
func (f *File) Snapshot() [isa.NumRegs]uint32 { return f.current.val }

// SeedCurrent loads the current space wholesale from an architectural
// snapshot, clearing every reservation. Used by machines that begin a
// run at a mid-program architectural boundary (machine.NewAt) rather
// than the zeroed entry state. R0 stays hardwired to zero.
func (f *File) SeedCurrent(vals [isa.NumRegs]uint32) {
	f.current = space{val: vals}
	f.current.val[0] = 0
}

// BackupSnapshot returns the register values of the k-th newest backup
// of stack s (k=1 is the newest). Used by invariant audits comparing
// backup spaces against the shadow interpreter.
func (f *File) BackupSnapshot(s, k int) [isa.NumRegs]uint32 {
	st := f.stacks[s]
	if k < 1 || k > len(st) {
		panic(fmt.Sprintf("regfile: BackupSnapshot(%d,%d) with depth %d", s, k, len(st)))
	}
	return st[k-1].val
}

// OldestHasPending reports whether the oldest backup of stack s has any
// reserved cell; schemes use it to audit Theorem 4.
func (f *File) OldestHasPending(s int) bool {
	st := f.stacks[s]
	if len(st) == 0 {
		return false
	}
	sp := &st[len(st)-1]
	for r := 1; r < isa.NumRegs; r++ {
		if sp.pending[r] {
			return true
		}
	}
	return false
}

// CurrentPending reports whether register r is reserved in the current
// space, and by which tag.
func (f *File) CurrentPending(r isa.Reg) (bool, uint64) {
	if r == 0 {
		return false, 0
	}
	return f.current.pending[r], f.current.tag[r]
}

// CostModel quantifies the Figure 5 hardware overhead of the copy
// technique.
type CostModel struct {
	BackupSpaces int // total backup spaces across stacks
	CellsPerBit  int // backups + 1 (current)
	TotalBits    int // NumRegs * 32 * CellsPerBit
	// ResultLinePairs is the number of word/bit line pairs needed to
	// deliver results: current plus all but the oldest backup of each
	// stack. Theorem 4 removes the need for delivery lines to the
	// oldest backup ("there is no need for such lines for the
	// backupE,2 cell" in the paper's c=2 figure).
	ResultLinePairs int
	// SharedControlLines counts the push-enable and recall-enable lines
	// shared by all bits, per stack.
	SharedControlLines int
}

// Cost returns the hardware cost model for the given stack capacities.
func Cost(caps ...int) CostModel {
	total := 0
	lines := 1 // current
	for _, c := range caps {
		total += c
		if c > 0 {
			lines += c - 1
		}
	}
	return CostModel{
		BackupSpaces:       total,
		CellsPerBit:        total + 1,
		TotalBits:          isa.NumRegs * 32 * (total + 1),
		ResultLinePairs:    lines,
		SharedControlLines: 2 * len(caps),
	}
}
