package service

import (
	"strings"
	"testing"
)

func mustKey(t *testing.T, s Spec) string {
	t.Helper()
	k, _, err := s.Key()
	if err != nil {
		t.Fatalf("Key(%+v): %v", s, err)
	}
	return k
}

// TestKeyNormalization: specs that spell the same job differently —
// defaults omitted vs. spelled out, mixed case, unsorted model lists,
// job-scoped fields like timeouts — must land on the same cache entry.
func TestKeyNormalization(t *testing.T) {
	boolp := func(b bool) *bool { return &b }
	pairs := []struct {
		name string
		a, b Spec
	}{
		{
			"sim defaults spelled out",
			Spec{Kind: "sim", Workload: "fib"},
			Spec{Kind: " SIM ", Workload: " Fib ", Machine: MachineSpec{
				Scheme: "TIGHT", C: 4, Mem: "3B", Predictor: "Bimodal", Speculate: boolp(true),
			}},
		},
		{
			"timeout is job-scoped, not result-scoped",
			Spec{Kind: "sim", Workload: "memcpy"},
			Spec{Kind: "sim", Workload: "memcpy", TimeoutMS: 30000},
		},
		{
			"predictor irrelevant when not speculating",
			Spec{Kind: "sim", Workload: "fib", Machine: MachineSpec{Speculate: boolp(false)}},
			Spec{Kind: "sim", Workload: "fib", Machine: MachineSpec{Speculate: boolp(false), Predictor: "gshare"}},
		},
		{
			"scheme-irrelevant machine fields are zeroed",
			Spec{Kind: "sim", Workload: "fib", Machine: MachineSpec{Scheme: "b", C: 4}},
			Spec{Kind: "sim", Workload: "fib", Machine: MachineSpec{Scheme: "b", C: 4, CE: 9, CB: 7, Dist: 3, W: 2}},
		},
		{
			"sweep ID case-insensitive",
			Spec{Kind: "sweep", Experiment: "c5"},
			Spec{Kind: "sweep", Experiment: "C5"},
		},
		{
			"sweep ignores workload and machine",
			Spec{Kind: "sweep", Experiment: "F1"},
			Spec{Kind: "sweep", Experiment: "F1", Workload: "fib", Machine: MachineSpec{Scheme: "loose"}},
		},
		{
			"campaign default models == full sorted list",
			Spec{Kind: "campaign", Workload: "fib", Campaign: &CampaignSpec{}},
			Spec{Kind: "campaign", Workload: "fib", Campaign: &CampaignSpec{
				Models: []string{"spurious-exc", "reg-flip", "mem-flip", "fu-corrupt", "fu-detected"},
			}},
		},
		{
			"campaign nil spec == default spec",
			Spec{Kind: "campaign", Workload: "fib"},
			Spec{Kind: "campaign", Workload: "fib", Campaign: &CampaignSpec{Seed: 1987, Stride: 1, MaxWords: 8}},
		},
		{
			"campaign duplicate model names collapse",
			Spec{Kind: "campaign", Workload: "fib", Campaign: &CampaignSpec{Models: []string{"reg-flip"}}},
			Spec{Kind: "campaign", Workload: "fib", Campaign: &CampaignSpec{Models: []string{"reg-flip", "reg-flip"}}},
		},
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			ka, kb := mustKey(t, p.a), mustKey(t, p.b)
			if ka != kb {
				ca, _ := p.a.Canonicalize()
				cb, _ := p.b.Canonicalize()
				t.Fatalf("keys differ:\n a=%s %+v\n b=%s %+v", ka, ca, kb, cb)
			}
		})
	}
}

// TestKeyUniqueness: specs that describe different jobs must never
// collide — a collision would silently serve one job's result for
// another.
func TestKeyUniqueness(t *testing.T) {
	boolp := func(b bool) *bool { return &b }
	specs := []Spec{
		{Kind: "sim", Workload: "fib"},
		{Kind: "sim", Workload: "memcpy"},
		{Kind: "sim", Workload: "fib", Machine: MachineSpec{Scheme: "b"}},
		{Kind: "sim", Workload: "fib", Machine: MachineSpec{Scheme: "tight", C: 8}},
		{Kind: "sim", Workload: "fib", Machine: MachineSpec{Scheme: "tight", W: 4}},
		{Kind: "sim", Workload: "fib", Machine: MachineSpec{Scheme: "loose"}},
		{Kind: "sim", Workload: "fib", Machine: MachineSpec{Scheme: "loose", CE: 3}},
		{Kind: "sim", Workload: "fib", Machine: MachineSpec{Scheme: "loose", Dist: 8}},
		{Kind: "sim", Workload: "fib", Machine: MachineSpec{Scheme: "direct"}},
		{Kind: "sim", Workload: "fib", Machine: MachineSpec{Scheme: "e", Speculate: boolp(false)}},
		{Kind: "sim", Workload: "fib", Machine: MachineSpec{Predictor: "gshare"}},
		{Kind: "sim", Workload: "fib", Machine: MachineSpec{Mem: "3a"}},
		{Kind: "sim", Workload: "fib", Machine: MachineSpec{Mem: "forward"}},
		{Kind: "sim", Workload: "fib", Machine: MachineSpec{BufferCap: 32}},
		{Kind: "sim", Workload: "fib", Machine: MachineSpec{Speculate: boolp(false)}},
		{Kind: "sweep", Experiment: "C5"},
		{Kind: "sweep", Experiment: "C7"},
		{Kind: "campaign", Workload: "fib"},
		{Kind: "campaign", Workload: "fib", Campaign: &CampaignSpec{Seed: 7}},
		{Kind: "campaign", Workload: "fib", Campaign: &CampaignSpec{Stride: 2}},
		{Kind: "campaign", Workload: "fib", Campaign: &CampaignSpec{MaxWords: 4}},
		{Kind: "campaign", Workload: "fib", Campaign: &CampaignSpec{Models: []string{"reg-flip"}}},
		{Kind: "campaign", Workload: "memcpy"},
	}
	seen := map[string]Spec{}
	for _, s := range specs {
		k := mustKey(t, s)
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision %s:\n  %+v\n  %+v", k, prev, s)
		}
		seen[k] = s
	}
}

// TestSpecValidation: malformed specs are rejected at canonicalization
// time with a message naming the problem, never at execution time.
func TestSpecValidation(t *testing.T) {
	boolp := func(b bool) *bool { return &b }
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"missing kind", Spec{}, "kind missing"},
		{"unknown kind", Spec{Kind: "bake"}, "unknown job kind"},
		{"sim without workload", Spec{Kind: "sim"}, "needs a workload"},
		{"unknown workload", Spec{Kind: "sim", Workload: "quake"}, "unknown kernel"},
		{"unknown experiment", Spec{Kind: "sweep", Experiment: "ZZ9"}, "unknown experiment"},
		{"unknown scheme", Spec{Kind: "sim", Workload: "fib", Machine: MachineSpec{Scheme: "z"}}, "unknown scheme"},
		{"tight c too small", Spec{Kind: "sim", Workload: "fib", Machine: MachineSpec{Scheme: "tight", C: 1}}, "c >= 2"},
		{"scheme e speculative", Spec{Kind: "sim", Workload: "fib", Machine: MachineSpec{Scheme: "e", Speculate: boolp(true)}}, "non-speculative"},
		{"unknown predictor", Spec{Kind: "sim", Workload: "fib", Machine: MachineSpec{Predictor: "psychic"}}, "unknown predictor"},
		{"unknown mem", Spec{Kind: "sim", Workload: "fib", Machine: MachineSpec{Mem: "2a"}}, "unknown memory system"},
		{"negative timeout", Spec{Kind: "sim", Workload: "fib", TimeoutMS: -1}, "negative timeout"},
		{"negative machine param", Spec{Kind: "sim", Workload: "fib", Machine: MachineSpec{C: -1}}, "negative machine parameter"},
		{"unknown fault model", Spec{Kind: "campaign", Workload: "fib", Campaign: &CampaignSpec{Models: []string{"gamma-ray"}}}, "unknown fault model"},
		{"negative stride", Spec{Kind: "campaign", Workload: "fib", Campaign: &CampaignSpec{Stride: -2}}, "negative campaign stride"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := tc.spec.Key()
			if err == nil {
				t.Fatalf("spec %+v canonicalized without error", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCanonicalizeIdempotent: canonicalizing a canonical spec is a
// fixed point — re-submission of a canonical spec can't drift the key.
func TestCanonicalizeIdempotent(t *testing.T) {
	for _, s := range []Spec{
		{Kind: "sim", Workload: "fib"},
		{Kind: "sweep", Experiment: "c5"},
		{Kind: "campaign", Workload: "memcpy", Campaign: &CampaignSpec{Seed: 3, Models: []string{"mem-flip"}}},
	} {
		c1, err := s.Canonicalize()
		if err != nil {
			t.Fatal(err)
		}
		k1 := mustKey(t, c1)
		if k0 := mustKey(t, s); k0 != k1 {
			t.Fatalf("key changed after canonicalization: %s vs %s", k0, k1)
		}
	}
}
