package diff

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
)

// Model-based property test: arbitrary interleavings of stores,
// releases, and repairs — under the machine's contract (per-address
// writes in ascending sequence order, repairs only above the release
// boundary, sequence rewind after repair) — must leave every longword
// holding exactly what a naive per-address history model says.

type histEntry struct {
	seq uint64
	val uint32
}

type model struct {
	hist map[uint32][]histEntry
}

func newModel() *model { return &model{hist: make(map[uint32][]histEntry)} }

func (m *model) store(seq uint64, addr, val uint32) {
	m.hist[addr] = append(m.hist[addr], histEntry{seq, val})
}

func (m *model) repair(to uint64) {
	for a, h := range m.hist {
		kept := h[:0]
		for _, e := range h {
			if e.seq < to {
				kept = append(kept, e)
			}
		}
		m.hist[a] = kept
	}
}

func (m *model) value(addr uint32) uint32 {
	h := m.hist[addr]
	if len(h) == 0 {
		return 0
	}
	return h[len(h)-1].val
}

func runModelCheck(t *testing.T, mk func(c *cache.Cache) MemSystem, seeds int) {
	t.Helper()
	addrs := []uint32{0x00, 0x10, 0x40, 0x50, 0x100, 0x104}
	for seed := int64(0); seed < int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(seed))
		backing := mem.New()
		backing.Map(0, mem.PageSize)
		// A tiny cache forces evictions and refills mid-history.
		c := cache.MustNew(cache.Config{Sets: 2, Ways: 1, LineBytes: 16, Policy: cache.WriteBack}, backing)
		sys := mk(c)
		mod := newModel()

		nextSeq := uint64(1)
		released := uint64(0) // boundary: seqs < released can never repair

		for step := 0; step < 400; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4, 5: // store
				addr := addrs[rng.Intn(len(addrs))]
				val := rng.Uint32()
				seq := nextSeq
				nextSeq++
				ok, _, exc := sys.Store(seq, addr, val, 0b1111)
				if !ok || exc != 0 {
					t.Fatalf("seed %d step %d: store failed", seed, step)
				}
				mod.store(seq, addr, val)
			case 6: // release: advance the dead boundary
				if nextSeq > released {
					released += uint64(rng.Intn(int(nextSeq-released))) + 0
					sys.Release(released)
					// Releasing also lets the forward system apply
					// entries; the model's values are unaffected.
				}
			case 7, 8: // repair to a live boundary
				if nextSeq > released+1 {
					to := released + 1 + uint64(rng.Intn(int(nextSeq-released-1)))
					sys.Repair(to)
					mod.repair(to)
					nextSeq = to // sequence rewind, as the machine does
				}
			case 9: // read-check one address immediately
				addr := addrs[rng.Intn(len(addrs))]
				v, _, exc := sys.Load(addr)
				if exc != 0 {
					t.Fatalf("seed %d step %d: load fault", seed, step)
				}
				if want := mod.value(addr); v != want {
					t.Fatalf("seed %d step %d: %#x = %d, want %d", seed, step, addr, v, want)
				}
			}
		}
		// Final check of every address through the speculative view...
		for _, a := range addrs {
			v, _, _ := sys.Load(a)
			if want := mod.value(a); v != want {
				t.Fatalf("seed %d final: %#x = %d, want %d", seed, a, v, want)
			}
		}
		// ...and through main memory after draining.
		sys.Finish()
		for _, a := range addrs {
			v, _ := backing.Read32(a)
			if want := mod.value(a); v != want {
				t.Fatalf("seed %d drained: %#x = %d, want %d", seed, a, v, want)
			}
		}
	}
}

func TestModelBackwardSimple(t *testing.T) {
	runModelCheck(t, func(c *cache.Cache) MemSystem { return NewBackward(c, Simple, 0) }, 60)
}

func TestModelBackwardSophisticated(t *testing.T) {
	runModelCheck(t, func(c *cache.Cache) MemSystem { return NewBackward(c, Sophisticated, 0) }, 60)
}

func TestModelForward(t *testing.T) {
	runModelCheck(t, func(c *cache.Cache) MemSystem { return NewForward(c, 0) }, 60)
}

func TestModelBackwardWriteThrough(t *testing.T) {
	runModelCheck(t, func(c *cache.Cache) MemSystem {
		wt := cache.MustNew(cache.Config{Sets: 2, Ways: 1, LineBytes: 16, Policy: cache.WriteThrough}, c.Backing())
		return NewBackward(wt, Sophisticated, 0)
	}, 40)
}
