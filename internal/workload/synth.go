package workload

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/asm"
	"repro/internal/prog"
)

// SynthConfig parameterises the synthetic branchy workload used for the
// paper's §2.2 analysis (experiment C1 and friends). The generated
// program is a loop whose branch outcomes come from an in-program
// linear congruential generator, so they are data-dependent and
// effectively random — table predictors sit near 50% while the
// fixed-accuracy synthetic predictor imposes exactly the hit ratio
// under study.
type SynthConfig struct {
	Name            string
	Iters           int    // loop iterations
	BranchesPerIter int    // conditional branches per iteration
	FillerPerBranch int    // extra ALU instructions per branch (controls b)
	StoresPerIter   int    // memory writes per iteration
	ExcMask         uint32 // overflow trap when (lcg & ExcMask) == 0; 0 disables
	Seed            uint32 // initial LCG state
}

// DefaultSynth is the paper's §2.2 parameter point: roughly one
// conditional branch every four instructions.
var DefaultSynth = SynthConfig{
	Name:            "synth-b4",
	Iters:           2000,
	BranchesPerIter: 8,
	FillerPerBranch: 0,
	StoresPerIter:   2,
	Seed:            0xDEAD4,
}

// synthCache memoizes generated synthetic programs per normalized
// config — generation is deterministic, and sharing one *prog.Program
// instance per config lets per-program caches further down the stack
// (the reference-trace cache) persist across experiment regenerations.
var synthCache sync.Map // SynthConfig -> *prog.Program

// Synth generates the synthetic branchy program.
func Synth(cfg SynthConfig) *prog.Program {
	if cfg.Iters <= 0 {
		cfg.Iters = 1000
	}
	if cfg.BranchesPerIter <= 0 {
		cfg.BranchesPerIter = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x1234567
	}
	if p, ok := synthCache.Load(cfg); ok {
		return p.(*prog.Program)
	}
	p, _ := synthCache.LoadOrStore(cfg, synthesize(cfg))
	return p.(*prog.Program)
}

// synthesize builds the program for a normalized config.
func synthesize(cfg SynthConfig) *prog.Program {
	var b strings.Builder
	emit := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	// Constants: r19 = LCG multiplier, r18 = overflow bait, r20 = LCG
	// state, r21 = iteration counter, r5 = accumulator.
	emit("    lui  r19, 0x41C6")
	emit("    ori  r19, r19, 0x4E6D")
	emit("    lui  r18, 0x7ff0")
	emit("    lui  r20, 0x%x", cfg.Seed>>16)
	emit("    ori  r20, r20, 0x%x", cfg.Seed&0xffff)
	emit("    addi r21, r0, %d", cfg.Iters)
	emit("outer:")
	emit("    mul  r20, r20, r19")
	emit("    addi r20, r20, 12345")
	for j := 0; j < cfg.BranchesPerIter; j++ {
		shift := (j*5 + 3) % 29
		emit("    srli r22, r20, %d", shift)
		emit("    andi r22, r22, 1")
		emit("    beq  r22, r0, skip%d", j)
		emit("    addi r5, r5, %d", j+1)
		emit("skip%d:", j)
		for f := 0; f < cfg.FillerPerBranch; f++ {
			emit("    add  r%d, r%d, r22", 6+(f%4), 6+(f%4))
		}
	}
	for s := 0; s < cfg.StoresPerIter; s++ {
		emit("    srli r23, r20, %d", (s*7+2)%24)
		emit("    andi r23, r23, 0xfc")
		emit("    sw   r5, scratch(r23)")
	}
	if cfg.ExcMask != 0 {
		emit("    andi r24, r20, 0x%x", cfg.ExcMask)
		emit("    bne  r24, r0, noexc")
		emit("    addv r25, r18, r18") // 0x7ff00000 + 0x7ff00000 overflows
		emit("noexc:")
	}
	emit("    addi r21, r21, -1")
	emit("    bne  r21, r0, outer")
	emit("    sw   r5, sres(r0)")
	emit("    halt")
	emit(".data 0x4000")
	emit("scratch: .space 256")
	emit("sres: .word 0")

	name := cfg.Name
	if name == "" {
		name = "synth"
	}
	return asm.MustAssemble(name, b.String())
}
