package fault

import (
	"sort"

	"repro/internal/refsim"
)

// Placement is the campaign's checkpoint-placement solution, following
// the interval formulation of Dietrich et al. (ICCAD'23): given the
// executed injection set and a snapshot budget K, choose reference
// snapshot points so the expected total replay — the cycles spent
// re-reaching each injection site from the nearest snapshot at or
// below it — is minimal.
//
// Candidate positions are the checkpoint-interval class starts of the
// baseline run (the events where the cumulative checkpoint count
// changes, plus event 0): the same equivalence structure that already
// collapses detected-fault classes bounds where a snapshot can add
// information, and it keeps the DP quadratic in the class count rather
// than the event count. The DP is exact over that candidate set, so
// ReplayCycles <= UniformReplayCycles always holds (the uniform
// baseline is one particular candidate subset).
type Placement struct {
	// Budget is the snapshot budget the solution was computed for.
	Budget int `json:"budget"`
	// Events are the chosen candidate positions (issue-event indices of
	// the baseline run), ascending; Events[0] is always the first event.
	Events []int `json:"events"`
	// Steps are the reference-trace step boundaries of the chosen
	// events (via StepAtRetired) — the refsim.SnapshotSet input.
	Steps []int `json:"steps"`
	// Cycles are the machine cycles of the chosen events.
	Cycles []int64 `json:"cycles"`
	// ReplayCycles is the expected total replay under this placement:
	// the sum over executed injections of the cycle distance from the
	// nearest chosen point at or below the injection's event.
	ReplayCycles int64 `json:"replay_cycles"`
	// UniformReplayCycles is the same metric for K naive uniformly
	// spaced targets on the cycle axis, snapped to candidates.
	UniformReplayCycles int64 `json:"uniform_replay_cycles"`
	// FullReplayCycles is the no-snapshot cost: every injection replays
	// from the first event.
	FullReplayCycles int64 `json:"full_replay_cycles"`
	// Candidates is the number of candidate positions considered.
	Candidates int `json:"candidates"`
}

// buildPlacement solves the placement DP for the plan's executed
// injections. Returns nil when there is nothing to place.
func buildPlacement(tr *refsim.Trace, events []Event, plan *Plan, budget int) *Placement {
	if len(plan.Exec) == 0 || len(events) == 0 {
		return nil
	}
	if budget <= 0 {
		budget = 16
	}

	// Candidate positions: event 0 plus every checkpoint-interval start.
	var cand []int
	for e := range events {
		if e == 0 || events[e].Ckpts != events[e-1].Ckpts {
			cand = append(cand, e)
		}
	}
	m := len(cand)
	candCycle := make([]int64, m)
	for i, e := range cand {
		candCycle[i] = events[e].Cycle
	}

	// Bucket the executed injections into candidate slots: slot j holds
	// the injections whose event lies in [cand[j], cand[j+1]).
	cnt := make([]int64, m)
	sum := make([]int64, m)
	for _, inj := range plan.Exec {
		j := sort.Search(m, func(i int) bool { return cand[i] > inj.Event }) - 1
		cnt[j]++
		sum[j] += events[inj.Event].Cycle
	}
	// Prefix sums over slots: C[j]/SX[j] cover slots [0, j).
	C := make([]int64, m+1)
	SX := make([]int64, m+1)
	for j := 0; j < m; j++ {
		C[j+1] = C[j] + cnt[j]
		SX[j+1] = SX[j] + sum[j]
	}
	// cost(i, j): injections in slots [i, j) replay from cand[i].
	cost := func(i, j int) int64 {
		return SX[j] - SX[i] - candCycle[i]*(C[j]-C[i])
	}

	// f[k][j] = min cost of covering slots [0, j) with k chosen
	// candidates, the first of which must be candidate 0 (otherwise the
	// earliest injections have no source). Quadratic in m per k.
	K := budget
	if K > m {
		K = m
	}
	const inf = int64(1) << 62
	prev := make([]int64, m+1)
	cur := make([]int64, m+1)
	par := make([][]int, K+1)
	for j := 0; j <= m; j++ {
		prev[j] = inf
	}
	for j := 1; j <= m; j++ {
		prev[j] = cost(0, j)
	}
	par[1] = make([]int, m+1) // all zero: k=1 always starts at candidate 0
	bestCost, bestK := prev[m], 1
	for k := 2; k <= K; k++ {
		par[k] = make([]int, m+1)
		for j := 0; j <= m; j++ {
			cur[j] = inf
		}
		for j := k; j <= m; j++ {
			for i := k - 1; i < j; i++ {
				if prev[i] == inf {
					continue
				}
				if c := prev[i] + cost(i, j); c < cur[j] {
					cur[j] = c
					par[k][j] = i
				}
			}
		}
		if cur[m] < bestCost {
			bestCost, bestK = cur[m], k
		}
		prev, cur = cur, prev
	}

	// Recover the chosen candidate indices for the best k: par[k][j] is
	// the k-th choice when k choices cover slots [0, j).
	chosen := make([]int, bestK)
	j := m
	for k := bestK; k >= 1; k-- {
		chosen[k-1] = par[k][j]
		j = par[k][j]
	}

	p := &Placement{
		Budget:              budget,
		Candidates:          m,
		ReplayCycles:        bestCost,
		FullReplayCycles:    cost(0, m),
		UniformReplayCycles: uniformCost(cand, candCycle, events, plan, K),
	}
	for _, ci := range chosen {
		e := cand[ci]
		p.Events = append(p.Events, e)
		p.Cycles = append(p.Cycles, candCycle[ci])
		p.Steps = append(p.Steps, tr.StepAtRetired(events[e].Retired))
	}
	return p
}

// uniformCost evaluates the naive baseline: K targets evenly spaced on
// the cycle axis, each snapped to the greatest candidate at or below
// it, then the same replay-cost metric as the DP.
func uniformCost(cand []int, candCycle []int64, events []Event, plan *Plan, K int) int64 {
	maxCycle := candCycle[0]
	for _, inj := range plan.Exec {
		if c := events[inj.Event].Cycle; c > maxCycle {
			maxCycle = c
		}
	}
	span := maxCycle - candCycle[0]
	chosen := map[int]bool{0: true}
	for t := 1; t < K; t++ {
		target := candCycle[0] + span*int64(t)/int64(K)
		i := sort.Search(len(candCycle), func(i int) bool { return candCycle[i] > target }) - 1
		chosen[i] = true
	}
	idxs := make([]int, 0, len(chosen))
	for i := range chosen {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	// Same accounting as the DP: the replay source is the nearest chosen
	// candidate at or before the injection in *event order* (a same-cycle
	// snapshot later in program order is not a legal source).
	var total int64
	for _, inj := range plan.Exec {
		s := sort.Search(len(cand), func(i int) bool { return cand[i] > inj.Event }) - 1
		k := sort.Search(len(idxs), func(i int) bool { return idxs[i] > s }) - 1
		total += events[inj.Event].Cycle - candCycle[idxs[k]]
	}
	return total
}
