package machine

import (
	"fmt"
	"testing"

	"repro/internal/cache"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/prog"
	"repro/internal/refsim"
	"repro/internal/workload"
)

// schemesUnderTest builds one fresh instance of every scheme
// configuration the matrix runs. Schemes are stateful, so each test run
// needs its own.
func schemesUnderTest() map[string]func() core.Scheme {
	return map[string]func() core.Scheme{
		"tight4":     func() core.Scheme { return core.NewSchemeTight(4, 0) },
		"tight2":     func() core.Scheme { return core.NewSchemeTight(2, 0) },
		"direct":     func() core.Scheme { return core.NewSchemeDirect(2, 4, 12, 0) },
		"loose":      func() core.Scheme { return core.NewSchemeLoose(2, 4, 12) },
		"loose-tiny": func() core.Scheme { return core.NewSchemeLoose(1, 2, 6) },
	}
}

func runBoth(t *testing.T, p *prog.Program, cfg Config) {
	t.Helper()
	ref, err := refsim.Run(p, refsim.Options{})
	if err != nil {
		t.Fatalf("refsim: %v", err)
	}
	if !ref.Halted {
		t.Fatalf("refsim did not halt")
	}
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	if err := res.MatchRef(ref); err != nil {
		t.Fatalf("golden mismatch: %v", err)
	}
}

// TestKernelsAllSchemes is the master correctness matrix: every kernel
// on every combined scheme and memory system must match the golden
// model exactly (registers, memory, exception sequence).
func TestKernelsAllSchemes(t *testing.T) {
	memKinds := []MemSystemKind{MemBackward3a, MemBackward3b, MemForward}
	for _, k := range workload.Kernels() {
		p := k.Load()
		for name, mk := range schemesUnderTest() {
			for _, mem := range memKinds {
				t.Run(fmt.Sprintf("%s/%s/%s", k.Name, name, mem), func(t *testing.T) {
					cfg := Config{
						Scheme:    mk(),
						Predictor: bpred.NewBimodal(256),
						MemSystem: mem,
						Speculate: true,
					}
					runBoth(t, p, cfg)
				})
			}
		}
	}
}

// TestKernelsSchemeE runs the pure E-repair scheme in its safe
// configuration: no branch speculation.
func TestKernelsSchemeE(t *testing.T) {
	for _, k := range workload.Kernels() {
		for _, c := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/c%d", k.Name, c), func(t *testing.T) {
				cfg := Config{
					Scheme:    core.NewSchemeE(c, 8, 0),
					Speculate: false,
					MemSystem: MemBackward3b,
				}
				runBoth(t, k.Load(), cfg)
			})
		}
	}
}

// TestKernelsSchemeB runs the pure B-repair scheme on exception-free
// kernels.
func TestKernelsSchemeB(t *testing.T) {
	for _, k := range workload.Kernels() {
		if k.Excepts {
			continue
		}
		for _, c := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/c%d", k.Name, c), func(t *testing.T) {
				cfg := Config{
					Scheme:    core.NewSchemeB(c),
					Predictor: bpred.NewBimodal(256),
					Speculate: true,
					MemSystem: MemForward,
				}
				runBoth(t, k.Load(), cfg)
			})
		}
	}
}

// TestPredictors runs a branchy kernel under every predictor.
func TestPredictors(t *testing.T) {
	p, err := workload.ByName("bubble")
	if err != nil {
		t.Fatal(err)
	}
	preds := []bpred.Predictor{
		bpred.NewNotTaken(),
		bpred.NewTaken(),
		bpred.NewBTFN(),
		bpred.NewBimodal(64),
		bpred.NewGShare(256, 6),
		bpred.NewOracle(),
		bpred.NewSynthetic(0.85, 1),
		bpred.NewSynthetic(0.5, 2),
	}
	for _, pr := range preds {
		t.Run(pr.Name(), func(t *testing.T) {
			cfg := Config{
				Scheme:    core.NewSchemeTight(4, 0),
				Predictor: pr,
				Speculate: true,
				MemSystem: MemBackward3b,
			}
			runBoth(t, p.Load(), cfg)
		})
	}
}

// TestOracleHasNoMispredicts checks the oracle predictor eliminates
// B-repairs on the true path.
func TestOracleHasNoMispredicts(t *testing.T) {
	p, _ := workload.ByName("bubble")
	cfg := Config{
		Scheme:    core.NewSchemeTight(4, 0),
		Predictor: bpred.NewOracle(),
		Speculate: true,
		MemSystem: MemBackward3b,
	}
	res, err := Run(p.Load(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Mispredicts != 0 {
		t.Errorf("oracle mispredicted %d times", res.Stats.Mispredicts)
	}
	if !res.ShadowHalted {
		t.Error("shadow alignment lost under oracle prediction")
	}
}

// TestRandomProperty is the main property-based shakedown: random
// programs (with dynamic faults, traps, demand paging, data-dependent
// branches) under random scheme/memory/timing configurations must match
// the golden model.
func TestRandomProperty(t *testing.T) {
	memKinds := []MemSystemKind{MemBackward3a, MemBackward3b, MemForward}
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		p := workload.Random(seed, workload.DefaultRandomOpts)
		i := 0
		for name, mk := range schemesUnderTest() {
			mem := memKinds[(int(seed)+i)%len(memKinds)]
			i++
			t.Run(fmt.Sprintf("seed%d/%s/%s", seed, name, mem), func(t *testing.T) {
				cfg := Config{
					Scheme:    mk(),
					Predictor: bpred.NewBimodal(128),
					MemSystem: mem,
					Speculate: true,
				}
				// Latency jitter: unpredictable execution times (§2.1).
				cfg.Timing = DefaultTiming
				cfg.Timing.ExtraLatency = func(s uint64) int {
					return int((s*2654435761 + uint64(seed)) % 5)
				}
				runBoth(t, p, cfg)
			})
		}
	}
}

// TestRandomPropertySchemeB runs exception-free random programs on the
// pure B scheme.
func TestRandomPropertySchemeB(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		p := workload.Random(seed, workload.ExceptionFreeRandomOpts)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := Config{
				Scheme:    core.NewSchemeB(3),
				Predictor: bpred.NewGShare(128, 5),
				Speculate: true,
				MemSystem: MemForward,
			}
			runBoth(t, p, cfg)
		})
	}
}

// TestLoopNestProperty runs nested-loop programs (correlated branch
// history, inner branches resolving while outer ones stay pending)
// through the golden matrix.
func TestLoopNestProperty(t *testing.T) {
	memKinds := []MemSystemKind{MemBackward3a, MemBackward3b, MemForward}
	for seed := int64(0); seed < 12; seed++ {
		p := workload.LoopNest(seed, workload.DefaultLoopNest)
		i := 0
		for name, mk := range schemesUnderTest() {
			mem := memKinds[(int(seed)+i)%len(memKinds)]
			i++
			t.Run(fmt.Sprintf("seed%d/%s/%s", seed, name, mem), func(t *testing.T) {
				cfg := Config{
					Scheme:    mk(),
					Predictor: bpred.NewGShare(512, 8),
					MemSystem: mem,
					Speculate: true,
				}
				runBoth(t, p, cfg)
			})
		}
	}
}

// TestStressLongRandom runs a few large random programs end to end
// (thousands of architectural instructions, heavy exception mix).
func TestStressLongRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("long stress run")
	}
	opts := workload.DefaultRandomOpts
	opts.BodyLen = 120
	opts.Iters = 60
	for seed := int64(500); seed < 506; seed++ {
		p := workload.Random(seed, opts)
		cfg := Config{
			Scheme:    core.NewSchemeTight(6, 0),
			Predictor: bpred.NewBimodal(512),
			MemSystem: MemBackward3b,
			Speculate: true,
		}
		cfg.Timing = DefaultTiming
		cfg.Timing.ExtraLatency = func(s uint64) int { return int(s % 4) }
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) { runBoth(t, p, cfg) })
	}
}

// TestBufferCapMatrix: bounded difference buffers sized at the safe
// bound must stay golden (no silent corruption from overflow-discard).
func TestBufferCapMatrix(t *testing.T) {
	for _, k := range []string{"sieve", "memcpy"} {
		kn, _ := workload.ByName(k)
		p := kn.Load()
		for _, cap := range []int{64, 256} {
			t.Run(fmt.Sprintf("%s/cap%d", k, cap), func(t *testing.T) {
				cfg := Config{
					Scheme:    core.NewSchemeTight(4, 0),
					Predictor: bpred.NewBimodal(256),
					MemSystem: MemBackward3a,
					Speculate: true,
					BufferCap: cap,
				}
				runBoth(t, p, cfg)
			})
		}
	}
}

// TestRandomPropertyWiderConfigs varies predictors, write limits, cache
// geometry and buffer caps across random programs.
func TestRandomPropertyWiderConfigs(t *testing.T) {
	type cfgMk func() Config
	cfgs := []cfgMk{
		func() Config {
			return Config{
				Scheme:    core.NewSchemeTight(4, 0),
				Predictor: bpred.NewOracle(),
				Speculate: true,
				MemSystem: MemBackward3b,
			}
		},
		func() Config {
			return Config{
				Scheme:    core.NewSchemeTight(6, 0),
				Predictor: bpred.NewSynthetic(0.85, 11),
				Speculate: true,
				MemSystem: MemForward,
			}
		},
		func() Config {
			c := Config{
				Scheme:    core.NewSchemeDirect(3, 3, 10, 4), // W enforced
				Predictor: bpred.NewBTFN(),
				Speculate: true,
				MemSystem: MemBackward3a,
				BufferCap: 128,
			}
			return c
		},
		func() Config {
			c := Config{
				Scheme:    core.NewSchemeE(3, 6, 3),
				Speculate: false,
				MemSystem: MemBackward3a,
				BufferCap: 64,
			}
			c.Cache = cacheTiny()
			return c
		},
	}
	for seed := int64(200); seed < 212; seed++ {
		p := workload.Random(seed, workload.DefaultRandomOpts)
		for i, mk := range cfgs {
			t.Run(fmt.Sprintf("seed%d/cfg%d", seed, i), func(t *testing.T) {
				runBoth(t, p, mk())
			})
		}
	}
}

// TestPublicSteppingAPI drives a run manually through Step/Finish and
// captures mid-run checkpoint snapshots.
func TestPublicSteppingAPI(t *testing.T) {
	k, _ := workload.ByName("fib")
	p := k.Load()
	m, err := New(p, Config{
		Scheme:    core.NewSchemeTight(3, 0),
		Predictor: bpred.NewBimodal(64),
		Speculate: true,
		MemSystem: MemBackward3b,
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	sawCheckpoint := false
	for m.Step() {
		steps++
		if insp, ok := m.Scheme().(core.Inspectable); ok {
			for _, st := range insp.Views() {
				if len(st) > 0 {
					sawCheckpoint = true
				}
			}
		}
		if m.InFlight() < 0 {
			t.Fatal("negative occupancy")
		}
	}
	res, err := m.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Done() || !res.Halted {
		t.Error("stepped run did not complete")
	}
	if int64(steps) > m.Cycle() || steps == 0 {
		t.Errorf("steps %d vs cycles %d", steps, m.Cycle())
	}
	if !sawCheckpoint {
		t.Error("never observed an active checkpoint via Views")
	}
	ref, _ := refsim.Run(p, refsim.Options{})
	if err := res.MatchRef(ref); err != nil {
		t.Fatalf("stepped run mismatch: %v", err)
	}
	// Step after completion is inert.
	if m.Step() {
		t.Error("Step after completion returned true")
	}
}

func cacheTiny() cache.Config {
	return cache.Config{Sets: 2, Ways: 1, LineBytes: 16, Policy: cache.WriteBack}
}
