package bpred

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/isa"
)

var fwd = isa.Inst{Op: isa.OpBEQ, Imm: 4}
var bwd = isa.Inst{Op: isa.OpBNE, Imm: -4}

func TestStatic(t *testing.T) {
	nt := NewNotTaken()
	tk := NewTaken()
	for pc := 0; pc < 10; pc++ {
		if nt.Predict(pc, fwd, OracleHint{}) {
			t.Fatal("not-taken predicted taken")
		}
		if !tk.Predict(pc, fwd, OracleHint{}) {
			t.Fatal("taken predicted not-taken")
		}
	}
}

func TestBTFN(t *testing.T) {
	p := NewBTFN()
	if p.Predict(0, fwd, OracleHint{}) {
		t.Error("forward branch predicted taken")
	}
	if !p.Predict(0, bwd, OracleHint{}) {
		t.Error("backward branch predicted not-taken")
	}
}

func TestBimodalLearns(t *testing.T) {
	p := NewBimodal(16)
	// Train strongly not-taken at pc 3.
	for i := 0; i < 4; i++ {
		p.Update(3, false)
	}
	if p.Predict(3, fwd, OracleHint{}) {
		t.Error("did not learn not-taken")
	}
	// Hysteresis: one taken outcome must not flip a strong counter.
	p.Update(3, true)
	if p.Predict(3, fwd, OracleHint{}) {
		t.Error("flipped too eagerly")
	}
	p.Update(3, true)
	if !p.Predict(3, fwd, OracleHint{}) {
		t.Error("did not relearn taken")
	}
	p.Reset()
	if !p.Predict(3, fwd, OracleHint{}) {
		t.Error("reset should restore weakly-taken")
	}
}

func TestBimodalAliasing(t *testing.T) {
	p := NewBimodal(4)
	p.Update(1, false)
	p.Update(1, false)
	p.Update(1, false)
	// pc 5 aliases pc 1 in a 4-entry table.
	if p.Predict(5, fwd, OracleHint{}) {
		t.Error("aliased entry should predict not-taken")
	}
}

func TestGShareUsesHistory(t *testing.T) {
	p := NewGShare(64, 4)
	// Alternating outcomes at one PC: bimodal stays ~50%, gshare can
	// learn the pattern because history disambiguates.
	for i := 0; i < 200; i++ {
		taken := i%2 == 0
		p.Update(7, taken)
	}
	correct := 0
	for i := 200; i < 300; i++ {
		taken := i%2 == 0
		if p.Predict(7, fwd, OracleHint{}) == taken {
			correct++
		}
		p.Update(7, taken)
	}
	if correct < 90 {
		t.Errorf("gshare alternation accuracy %d%%", correct)
	}
}

func TestOracle(t *testing.T) {
	p := NewOracle()
	if !p.Predict(0, fwd, OracleHint{Known: true, Taken: true}) {
		t.Error("oracle ignored hint")
	}
	if p.Predict(0, fwd, OracleHint{Known: true, Taken: false}) {
		t.Error("oracle ignored hint")
	}
	if p.Predict(0, fwd, OracleHint{}) {
		t.Error("oracle fallback should be not-taken")
	}
}

func TestSyntheticAccuracy(t *testing.T) {
	for _, ratio := range []float64{0.5, 0.85, 0.95, 1.0} {
		p := NewSynthetic(ratio, 42)
		rng := rand.New(rand.NewSource(7))
		n, correct := 50000, 0
		for i := 0; i < n; i++ {
			actual := rng.Intn(2) == 0
			if p.Predict(i, fwd, OracleHint{Known: true, Taken: actual}) == actual {
				correct++
			}
		}
		got := float64(correct) / float64(n)
		if math.Abs(got-ratio) > 0.01 {
			t.Errorf("synthetic %.2f achieved %.4f", ratio, got)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := NewSynthetic(0.85, 9)
	b := NewSynthetic(0.85, 9)
	for i := 0; i < 1000; i++ {
		h := OracleHint{Known: true, Taken: i%3 == 0}
		if a.Predict(i, fwd, h) != b.Predict(i, fwd, h) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestTrackedAccuracy(t *testing.T) {
	tr := NewTracked(NewTaken())
	tr.Predict(1, fwd, OracleHint{})
	tr.Update(1, true) // correct
	tr.Predict(2, fwd, OracleHint{})
	tr.Update(2, false) // incorrect
	if tr.Correct != 1 || tr.Incorrect != 1 {
		t.Errorf("tracked: %d/%d", tr.Correct, tr.Incorrect)
	}
	if tr.Accuracy() != 0.5 {
		t.Errorf("accuracy %f", tr.Accuracy())
	}
	tr.Reset()
	if tr.Accuracy() != 0 || tr.Predicts != 0 {
		t.Error("reset")
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	for _, f := range []func(){
		func() { NewBimodal(3) },
		func() { NewGShare(100, 4) },
		func() { NewSynthetic(1.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
