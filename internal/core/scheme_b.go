package core

import (
	"fmt"

	"repro/internal/diff"
	"repro/internal/isa"
	"repro/internal/regfile"
)

// SchemeB is the checkpoint B-repair mechanism of §4: a checkpoint is
// established just to the right of every conditional branch, so a
// prediction miss repairs without discarding any useful work. Instead
// of countE there is a pend bit per checkpoint recording whether the
// prediction has been verified; the reuse rule for backup spaces is the
// relaxed one — a checkpoint retires as soon as it is the oldest and
// verified, regardless of active instructions.
//
// SchemeB has no E-repair capability: an exception raised by an
// operation that is provably on the correct path (no unverified older
// branch remains) is a fatal error. Use the §5 combined schemes for
// workloads that except.
type SchemeB struct {
	C int

	win  window
	regs *regfile.File
	mem  diff.MemSystem
	eng  Engine

	// blockedBranch is the sequence of a branch whose checkB could not
	// complete (all backup spaces pending). Issue stalls; the branch's
	// checkpoint is established when a space frees, or abandoned if the
	// branch resolves first — with no younger instructions issued, a
	// resolution needs no state restore.
	blockedBranch uint64
	blockedPC     int
	blocked       bool

	// excSeqs records delivered exceptions awaiting classification as
	// wrong-path noise (discarded by a B-repair) or correct-path
	// (fatal for this scheme).
	excSeqs []uint64

	stats Stats
}

// NewSchemeB returns a B-repair scheme with c backup spaces.
func NewSchemeB(c int) *SchemeB {
	if c < 1 {
		// Theorem 8: any machine that issues along a predicted path
		// needs at least one backupB space.
		panic("core: SchemeB needs at least one backup space (Theorem 8)")
	}
	return &SchemeB{C: c, win: newWindow(0, c)}
}

// Name implements Scheme.
func (s *SchemeB) Name() string { return fmt.Sprintf("schemeB(c=%d)", s.C) }

// Spaces implements Scheme.
func (s *SchemeB) Spaces() int { return s.C + 1 }

// RegStackCaps implements Scheme.
func (s *SchemeB) RegStackCaps() []int { return []int{s.C} }

// Attach implements Scheme.
func (s *SchemeB) Attach(regs *regfile.File, mem diff.MemSystem, eng Engine) {
	s.regs, s.mem, s.eng = regs, mem, eng
}

// Restart implements Scheme. SchemeB establishes no initial checkpoint:
// checkpoints exist only at branch boundaries.
func (s *SchemeB) Restart(_ int, _ uint64) {
	s.win.clear()
	s.regs.Clear()
	s.blocked = false
	s.excSeqs = s.excSeqs[:0]
}

// CanIssue implements Scheme.
func (s *SchemeB) CanIssue(_ isa.Inst, _ int) (bool, string) {
	if s.blocked {
		if !s.tryPending() {
			return false, "checkB blocked: all backup spaces pending verification"
		}
	}
	return true, ""
}

// OnIssue implements Scheme: the checkB action after each conditional
// branch.
func (s *SchemeB) OnIssue(op OpInfo, nextPC int) {
	if !op.IsBranch {
		return
	}
	if s.establish(op.Seq, nextPC) {
		return
	}
	s.blocked = true
	s.blockedBranch = op.Seq
	s.blockedPC = nextPC
}

func (s *SchemeB) tryPending() bool {
	if !s.blocked {
		return true
	}
	if s.establish(s.blockedBranch, s.blockedPC) {
		s.blocked = false
		return true
	}
	return false
}

// establish pushes a branch checkpoint, retiring the oldest if it has
// verified (the relaxed B reuse rule).
func (s *SchemeB) establish(branchSeq uint64, pc int) bool {
	if s.win.full() {
		old := s.win.oldest()
		if old.Pend {
			return false
		}
		s.win.recycle(s.win.retireOldest())
		s.regs.DropOldest(s.win.stack)
		s.stats.Retired++
		if next := s.win.oldest(); next != nil {
			s.mem.Release(next.BornSeq + 1)
		} else {
			s.mem.Release(branchSeq + 1)
		}
	}
	ck := s.win.take()
	ck.BornSeq, ck.PC, ck.BranchSeq, ck.Pend = branchSeq, pc, branchSeq, true
	s.win.push(ck)
	s.regs.Push(s.win.stack)
	s.stats.Checkpoints++
	return true
}

// Depths implements Scheme.
func (s *SchemeB) Depths(seq uint64, out []int) {
	out[0] = s.win.depthFor(seq)
}

// OnDeliver implements Scheme: SchemeB keeps no counts, but records
// exceptions for wrong-path/fatal classification.
func (s *SchemeB) OnDeliver(seq uint64, exc bool) {
	if exc {
		s.excSeqs = append(s.excSeqs, seq)
	}
}

// OnBranchResolve implements Scheme: verifyB / repairB.
func (s *SchemeB) OnBranchResolve(seq uint64, mispredicted bool, actualNext int) bool {
	if s.blocked && s.blockedBranch == seq {
		// The branch resolved before its checkpoint could be
		// established. Nothing issued after it, so a miss needs only a
		// fetch redirect.
		s.blocked = false
		if mispredicted {
			sq := s.eng.SquashAfter(seq)
			s.stats.SquashedOps += len(sq)
			s.mem.Repair(seq + 1)
			s.pruneExcSeqs(seq)
			s.eng.RedirectFetch(actualNext)
			s.stats.BRepairs++
		}
		return true
	}
	ck, idx := s.win.findBranch(seq)
	if ck == nil {
		// The branch's checkpoint was discarded by an older repair; its
		// resolution is stale.
		return true
	}
	if !mispredicted {
		ck.Pend = false
		return true
	}
	s.repairTo(ck, idx, actualNext)
	return true
}

// repairTo performs the B-repair to checkpoint ck at window index idx.
func (s *SchemeB) repairTo(ck *Checkpoint, idx int, actualNext int) {
	sq := s.eng.SquashAfter(ck.BornSeq)
	s.stats.SquashedOps += len(sq)
	s.regs.RecallAt(s.win.stack, s.win.depthFromNewest(idx))
	s.mem.Repair(ck.BornSeq + 1)
	s.win.popFrom(idx)
	s.pruneExcSeqs(ck.BornSeq)
	// A blocked checkB belongs to a branch younger than the repair
	// point; it was just squashed.
	s.blocked = false
	s.eng.RedirectFetch(actualNext)
	s.stats.BRepairs++
}

func (s *SchemeB) pruneExcSeqs(boundary uint64) {
	kept := s.excSeqs[:0]
	for _, e := range s.excSeqs {
		if e <= boundary {
			kept = append(kept, e)
		}
	}
	s.excSeqs = kept
}

// Tick implements Scheme. An exception becomes fatal once no unverified
// branch older than it remains — at that point it is provably on the
// correct path and SchemeB has no way to repair it.
func (s *SchemeB) Tick() (bool, error) {
	s.tryPending()
	for _, e := range s.excSeqs {
		wrongPathPossible := false
		for _, ck := range s.win.cks {
			if ck.Pend && ck.BornSeq < e {
				wrongPathPossible = true
				break
			}
		}
		if s.blocked && s.blockedBranch < e {
			wrongPathPossible = true
		}
		if !wrongPathPossible {
			return false, fmt.Errorf("core: schemeB cannot E-repair: correct-path exception from op %d", e)
		}
	}
	return false, nil
}

// Stats implements Scheme.
func (s *SchemeB) Stats() Stats { return s.stats }

var _ Scheme = (*SchemeB)(nil)

// Drain implements Scheme: SchemeB has no E-repair; surviving
// exceptions at drain time are fatal.
func (s *SchemeB) Drain() (bool, error) {
	if len(s.excSeqs) > 0 {
		return false, fmt.Errorf("core: schemeB cannot E-repair: %d exception(s) pending at drain", len(s.excSeqs))
	}
	return false, nil
}

// Views implements Inspectable.
func (s *SchemeB) Views() [][]View { return [][]View{viewsOf(&s.win, false, true)} }

// RewindTargets implements Rewinder.
func (s *SchemeB) RewindTargets(buf []RewindTarget) []RewindTarget {
	return appendTargets(buf, &s.win, false, true)
}

// RewindTo implements Rewinder.
func (s *SchemeB) RewindTo(bornSeq uint64) (int, bool) {
	pc, ok := rewindRecall(s.regs, &s.win, bornSeq)
	if !ok {
		return 0, false
	}
	dropAllBackups(s.regs)
	return pc, true
}
