# Developer entry points. CI runs `make ci`.

GO ?= go

.PHONY: build vet test race fastpath bench experiments profile ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# Race-check the concurrency-sensitive surface: the parallel experiment
# engine, the whole-machine golden tests it drives, and the memoized
# workload loaders shared across workers.
race:
	$(GO) test -race ./internal/experiments/ ./internal/machine/ ./internal/workload/

# Fast-path equivalence: cycle skipping and trace replay must change
# nothing observable (full-result diffs and byte-identical artefacts).
fastpath:
	$(GO) test -run 'FastPath|CycleSkip|Replay' ./internal/machine/ ./internal/experiments/ ./internal/refsim/

# Regenerate the BENCH_<n>.json perf record (see README "Performance").
bench:
	$(GO) run ./cmd/bench

# Profile the benchmark suite; inspect with `go tool pprof cpu.out`.
profile:
	$(GO) run ./cmd/bench -benchtime 200ms -o /dev/null -cpuprofile cpu.out -memprofile mem.out

experiments:
	$(GO) run ./cmd/experiments

ci: vet test fastpath race
