package experiments

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/refsim"
	"repro/internal/workload"
)

func TestPoolMapRunsEveryIndexOnce(t *testing.T) {
	p := NewPool(4)
	var counts [100]atomic.Int32
	if err := p.Map(context.Background(), len(counts), func(i int) {
		counts[i].Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Fatalf("index %d ran %d times", i, n)
		}
	}
}

func TestPoolMapNestedDoesNotDeadlock(t *testing.T) {
	p := NewPool(2) // 1 extra token: inner Maps mostly run inline
	var total atomic.Int32
	err := p.Map(context.Background(), 8, func(i int) {
		p.Map(context.Background(), 8, func(j int) {
			total.Add(1)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 64 {
		t.Fatalf("ran %d inner jobs, want 64", total.Load())
	}
}

func TestPoolMapSequentialWhenSizeOne(t *testing.T) {
	p := NewPool(1)
	order := make([]int, 0, 10)
	p.Map(context.Background(), 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v not sequential", order)
		}
	}
}

func TestPoolMapCancel(t *testing.T) {
	p := NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	if err := p.Map(ctx, 1000, func(i int) { ran.Add(1) }); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n > 8 {
		t.Fatalf("%d jobs ran after pre-cancelled context", n)
	}
}

func TestPoolMapPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	p.Map(context.Background(), 16, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
	t.Fatal("Map returned instead of panicking")
}

// TestParallelRunAllDeterministic is the tentpole acceptance check: the
// full artefact regeneration must be byte-identical no matter how many
// workers run it.
func TestParallelRunAllDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full RunAll in -short mode")
	}
	defer SetParallelism(0)

	SetParallelism(1)
	var seq bytes.Buffer
	RunAll(&seq)

	SetParallelism(8)
	var par bytes.Buffer
	RunAll(&par)

	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("parallel RunAll output differs from sequential (%d vs %d bytes)",
			seq.Len(), par.Len())
	}
}

func TestParallelRunAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	if err := RunAllContext(ctx, &buf); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParallelConcurrentMachineRuns drives many simultaneous machine
// simulations of the same shared program under -race: every run owns
// its scheme, predictor, memory and caches, so the only shared state is
// the read-only program and lookup tables.
func TestParallelConcurrentMachineRuns(t *testing.T) {
	k, err := workload.ByName("sieve")
	if err != nil {
		t.Fatal(err)
	}
	p := k.Load()
	ref := refsim.MustRun(p, refsim.Options{})
	results := make([]*machine.Result, 16)
	pool := NewPool(8)
	pool.Map(context.Background(), len(results), func(i int) {
		res, err := machine.Run(p, machine.Config{
			Scheme:    core.NewSchemeTight(4, 0),
			Predictor: bpred.NewBimodal(256),
			Speculate: true,
			MemSystem: machine.MemBackward3b,
		})
		if err != nil {
			t.Errorf("run %d: %v", i, err)
			return
		}
		results[i] = res
	})
	for i, res := range results {
		if res == nil {
			t.Fatalf("run %d missing", i)
		}
		if err := res.MatchRef(ref); err != nil {
			t.Fatalf("run %d diverged from reference: %v", i, err)
		}
		if res.Stats.Cycles != results[0].Stats.Cycles {
			t.Fatalf("run %d took %d cycles, run 0 took %d — runs are not independent",
				i, res.Stats.Cycles, results[0].Stats.Cycles)
		}
	}
}

func TestRunParallelMatchesRun(t *testing.T) {
	mk := func() machine.Config {
		return machine.Config{
			Scheme:    core.NewSchemeTight(4, 0),
			Predictor: bpred.NewBimodal(256),
			Speculate: true,
			MemSystem: machine.MemBackward3b,
		}
	}
	want := run("bubble", mk())
	jobs := []runJob{kernelJob("bubble", mk()), kernelJob("bubble", mk())}
	for i, res := range runParallel(context.Background(), jobs) {
		if res.Stats.Cycles != want.Stats.Cycles {
			t.Fatalf("job %d: %d cycles, want %d", i, res.Stats.Cycles, want.Stats.Cycles)
		}
	}
}
