package ooo

import (
	"testing"

	"repro/internal/isa"
)

func memOp(seq uint64, op isa.Op, addr uint32, addrReady bool) *Op {
	o := &Op{Seq: seq, Inst: isa.Inst{Op: op}, Addr: addr, AddrReady: addrReady, AReady: true, BReady: true}
	return o
}

func TestCaptureOperands(t *testing.T) {
	o := &Op{ATag: 5, BTag: 7}
	o.Capture(5, 100)
	if !o.AReady || o.AVal != 100 || o.BReady {
		t.Errorf("capture A: %+v", o)
	}
	o.Capture(7, 200)
	if !o.Ready() || o.BVal != 200 {
		t.Errorf("capture B: %+v", o)
	}
	// A second broadcast of the same tag must not clobber.
	o.Capture(5, 999)
	if o.AVal != 100 {
		t.Error("re-capture clobbered")
	}
}

func TestStationSquash(t *testing.T) {
	s := NewStation(8)
	for i := 1; i <= 5; i++ {
		s.Add(&Op{Seq: uint64(i)})
	}
	sq := s.SquashAfter(3)
	if len(sq) != 2 || s.Len() != 3 {
		t.Fatalf("squash: %d removed, %d left", len(sq), s.Len())
	}
	for _, o := range sq {
		if o.Seq <= 3 || o.State != StateSquashed {
			t.Errorf("bad squash victim: %+v", o)
		}
	}
}

func TestStationOrdering(t *testing.T) {
	s := NewStation(8)
	s.Add(&Op{Seq: 3})
	s.Add(&Op{Seq: 1})
	s.Add(&Op{Seq: 2})
	ops := s.Ops()
	for i := 1; i < len(ops); i++ {
		if ops[i].Seq < ops[i-1].Seq {
			t.Fatal("Ops not in sequence order")
		}
	}
}

func TestFUPool(t *testing.T) {
	p := NewFUPool("alu", 2, 3)
	d1, ok := p.Acquire(10, 0)
	if !ok || d1 != 13 {
		t.Fatalf("acquire 1: %d %v", d1, ok)
	}
	d2, ok := p.Acquire(10, 2)
	if !ok || d2 != 15 {
		t.Fatalf("acquire 2: %d %v", d2, ok)
	}
	if _, ok := p.Acquire(10, 0); ok {
		t.Fatal("third unit should be busy")
	}
	if _, ok := p.Acquire(13, 0); !ok {
		t.Fatal("unit 1 should free at its DoneAt")
	}
	// Zero-latency requests still take one cycle.
	q := NewFUPool("x", 1, 0)
	if d, _ := q.Acquire(5, 0); d != 6 {
		t.Errorf("min latency: %d", d)
	}
}

func TestLSQPerAddressOrdering(t *testing.T) {
	q := NewLSQ(8)
	st := memOp(1, isa.OpSW, 0x100, true)
	ld := memOp(2, isa.OpLW, 0x100, true)
	ldOther := memOp(3, isa.OpLW, 0x200, true)
	q.Add(st)
	q.Add(ld)
	q.Add(ldOther)
	if q.MayAccess(ld) {
		t.Error("load must wait for older same-longword store")
	}
	if !q.MayAccess(ldOther) {
		t.Error("independent load must proceed")
	}
	if !q.MayAccess(st) {
		t.Error("oldest store must proceed")
	}
	st.Accessed = true
	if !q.MayAccess(ld) {
		t.Error("load may proceed once the store accessed")
	}
}

func TestLSQUnknownAddressBlocks(t *testing.T) {
	q := NewLSQ(8)
	unk := memOp(1, isa.OpSW, 0, false)
	ld := memOp(2, isa.OpLW, 0x100, true)
	q.Add(unk)
	q.Add(ld)
	if q.MayAccess(ld) {
		t.Error("unknown-address elder must block")
	}
}

func TestLSQWARBlocking(t *testing.T) {
	q := NewLSQ(8)
	ld := memOp(1, isa.OpLW, 0x100, true)
	st := memOp(2, isa.OpSW, 0x100, true)
	q.Add(ld)
	q.Add(st)
	if q.MayAccess(st) {
		t.Error("store must wait for older same-longword load (WAR)")
	}
	ld.Accessed = true
	if !q.MayAccess(st) {
		t.Error("store may proceed after elder load accessed")
	}
}

func TestLSQLoadsPassLoads(t *testing.T) {
	q := NewLSQ(8)
	a := memOp(1, isa.OpLW, 0x100, true)
	b := memOp(2, isa.OpLW, 0x100, true)
	q.Add(a)
	q.Add(b)
	if !q.MayAccess(b) {
		t.Error("loads do not conflict with loads")
	}
}

func TestLSQByteOpsConflictWithinLongword(t *testing.T) {
	q := NewLSQ(8)
	sb := memOp(1, isa.OpSB, 0x101, true)
	lb := memOp(2, isa.OpLB, 0x102, true) // same longword, different byte
	q.Add(sb)
	q.Add(lb)
	if q.MayAccess(lb) {
		t.Error("byte ops in the same longword must order")
	}
}

func TestLSQSquash(t *testing.T) {
	q := NewLSQ(4)
	q.Add(memOp(1, isa.OpSW, 0x100, true))
	q.Add(memOp(5, isa.OpLW, 0x100, true))
	sq := q.SquashAfter(2)
	if len(sq) != 1 || q.Len() != 1 {
		t.Fatalf("squash %d/%d", len(sq), q.Len())
	}
}

func TestCapacityPanics(t *testing.T) {
	s := NewStation(1)
	s.Add(&Op{Seq: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("station overflow must panic")
			}
		}()
		s.Add(&Op{Seq: 2})
	}()
	q := NewLSQ(1)
	q.Add(memOp(1, isa.OpLW, 0, false))
	defer func() {
		if recover() == nil {
			t.Error("lsq overflow must panic")
		}
	}()
	q.Add(memOp(2, isa.OpLW, 0, false))
}

func TestFUPoolReset(t *testing.T) {
	p := NewFUPool("x", 1, 5)
	p.Acquire(0, 0)
	if _, ok := p.Acquire(1, 0); ok {
		t.Fatal("unit should be busy")
	}
	p.Reset()
	if _, ok := p.Acquire(1, 0); !ok {
		t.Fatal("reset should free units")
	}
}

func TestLSQBroadcast(t *testing.T) {
	q := NewLSQ(4)
	op := &Op{Seq: 1, Inst: isa.Inst{Op: isa.OpLW}, ATag: 9, State: StateWaiting}
	op.BReady = true
	q.Add(op)
	q.Broadcast(9, 77)
	if !op.AReady || op.AVal != 77 {
		t.Error("lsq broadcast missed")
	}
}

func TestStationRemoveMissing(t *testing.T) {
	s := NewStation(2)
	a := &Op{Seq: 1}
	s.Add(a)
	s.Remove(&Op{Seq: 99}) // not present: no-op
	if s.Len() != 1 {
		t.Error("remove of missing op changed station")
	}
	s.Remove(a)
	if s.Len() != 0 {
		t.Error("remove failed")
	}
	q := NewLSQ(2)
	m := &Op{Seq: 1, Inst: isa.Inst{Op: isa.OpLW}}
	q.Add(m)
	q.Remove(&Op{Seq: 99})
	if q.Len() != 1 {
		t.Error("lsq remove of missing op changed queue")
	}
}

func TestLastElem(t *testing.T) {
	scalar := &Op{Elem: 0, ElemCount: 1}
	if !scalar.LastElem() {
		t.Error("scalar is its own last element")
	}
	mid := &Op{Elem: 1, ElemCount: 4}
	last := &Op{Elem: 3, ElemCount: 4}
	if mid.LastElem() || !last.LastElem() {
		t.Error("vector element positions")
	}
}
