// Package client is a small Go client for the ckptd daemon. It speaks
// the HTTP/JSON API in internal/service and is what cmd/ckptload and
// the examples use; nothing in it is clever — one struct per wire
// shape, context on every call.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/service"
)

// Client talks to one ckptd instance.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8909".
	BaseURL string
	// HTTPClient defaults to a client with no overall timeout (job
	// waits are bounded by the caller's context instead).
	HTTPClient *http.Client
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: &http.Client{}}
}

// SubmitResponse mirrors the daemon's POST /jobs reply.
type SubmitResponse struct {
	Job    service.JobView `json:"job"`
	Result *service.Result `json:"result,omitempty"`
}

// ErrTooBusy is returned for 429 responses, carrying the daemon's
// Retry-After hint.
type ErrTooBusy struct {
	RetryAfter time.Duration
}

func (e *ErrTooBusy) Error() string {
	return fmt.Sprintf("ckptd: queue full, retry after %s", e.RetryAfter)
}

// apiError is any non-2xx reply that isn't backpressure.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("ckptd: %d: %s", e.Status, e.Msg)
}

// Submit enqueues a job asynchronously and returns its handle.
func (c *Client) Submit(ctx context.Context, spec service.Spec) (*SubmitResponse, error) {
	return c.submit(ctx, spec, false)
}

// Run submits a job and waits for its result on the same connection
// (the daemon's ?wait=1 path). Cancelling ctx aborts the wait and —
// if this was the job's only client — the execution itself.
func (c *Client) Run(ctx context.Context, spec service.Spec) (*SubmitResponse, error) {
	return c.submit(ctx, spec, true)
}

func (c *Client) submit(ctx context.Context, spec service.Spec, wait bool) (*SubmitResponse, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	url := c.BaseURL + "/jobs"
	if wait {
		url += "?wait=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		var sr SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			return nil, fmt.Errorf("ckptd: decode response: %w", err)
		}
		return &sr, nil
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		sec, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		if sec < 1 {
			sec = 1
		}
		return nil, &ErrTooBusy{RetryAfter: time.Duration(sec) * time.Second}
	default:
		return nil, readError(resp)
	}
}

// Job fetches a job's current state.
func (c *Client) Job(ctx context.Context, id string) (*service.JobView, error) {
	var jv service.JobView
	if err := c.get(ctx, "/jobs/"+id, &jv); err != nil {
		return nil, err
	}
	return &jv, nil
}

// Cancel cancels a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Result fetches a cached result by cache key or job ID.
func (c *Client) Result(ctx context.Context, ref string) (*service.Result, error) {
	var res service.Result
	if err := c.get(ctx, "/results/"+ref, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Metrics fetches the daemon's metrics document.
func (c *Client) Metrics(ctx context.Context) (map[string]any, error) {
	var m map[string]any
	if err := c.get(ctx, "/metrics", &m); err != nil {
		return nil, err
	}
	return m, nil
}

// Healthz fetches the typed health document. The document decodes even
// on a 503 (a draining daemon still reports its state); err is non-nil
// only when the daemon is unreachable or the body is not a health
// document.
func (c *Client) Healthz(ctx context.Context) (*service.Healthz, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h service.Healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("ckptd: decode healthz: %w", err)
	}
	return &h, nil
}

// HTTPStatus extracts the HTTP status code carried by an API error
// returned from this package (0 when err carries none, e.g. transport
// failures). Cluster dispatch uses it to tell a refusal (4xx/503,
// reroute or give up) from a worker that was never reached.
func HTTPStatus(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.Status
	}
	var busy *ErrTooBusy
	if errors.As(err, &busy) {
		return http.StatusTooManyRequests
	}
	return 0
}

// Healthy reports whether the daemon answers /healthz with 200.
func (c *Client) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (c *Client) get(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func readError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&e)
	if e.Error == "" {
		e.Error = resp.Status
	}
	return &apiError{Status: resp.StatusCode, Msg: e.Error}
}
