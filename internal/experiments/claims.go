package experiments

import (
	"context"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/refsim"
	"repro/internal/workload"
)

func init() {
	register("C1", "repair frequency analysis (§2.2)", one(c1))
	register("C2", "minimum backup spaces (Theorem 2)", sweep(c2))
	register("C3", "active instruction bound (Theorem 3)", one(c3))
	register("C4", "oldest-checkpoint completion (Theorem 4)", one(c4))
	register("C5", "stall trade-off: spaces vs distance (§3.1)", sweep(c5))
	register("C6", "difference buffer sizing (Theorem 7)", sweep(c6))
	register("C7", "Algorithm 3(a) vs 3(b) write-backs (§3.2.2)", sweep(c7))
	register("C8", "B-repair space requirements (Theorems 8, 9)", one(c8))
	register("C9", "direct vs loose vs tight merged schemes (§5)", sweep(c9))
	register("C10", "write-back vs write-through caches (§1)", sweep(c10))
	register("C11", "baselines: in-order, history buffer, reorder buffer", sweep(c11))
	register("C12", "golden-model equivalence summary (Theorem 1)", sweep(c12))
}

// run executes a kernel-style program on a machine config, panicking on
// simulator errors (experiments run known-good configurations).
func run(pName string, cfg machine.Config) *machine.Result {
	k, err := workload.ByName(pName)
	if err != nil {
		panic(err)
	}
	res, err := simRun(k.Load(), cfg)
	if err != nil {
		panic(fmt.Sprintf("%s on %s: %v", pName, cfg.Scheme.Name(), err))
	}
	return res
}

// c1 reproduces the §2.2 arithmetic: with hit ratio h and one branch
// every b instructions, a B-repair occurs every b/(1-h) instructions;
// at h=85%, b=4 that is 28, versus ~5000 instructions per E-repair.
func c1() *Table {
	t := &Table{
		ID:    "C1",
		Title: "instructions per repair vs prediction accuracy and branch density",
		Note: "Paper: \"assume ... 85% hit ratio and, on the average, one conditional " +
			"branch every four instructions. Then a B-repair occurs on the average " +
			"every 28 instructions\", while E-repairs happen about once per 5000 " +
			"instructions, \"from which we infer that B-repairs should be implemented " +
			"much faster than E-repairs.\" Measured on the synthetic workload with " +
			"the fixed-accuracy predictor; analytic = b/(1-h).",
		Header: []string{"hit ratio", "b (instr/branch)", "analytic instr/B-repair", "measured instr/B-repair", "instr/E-repair"},
	}
	for _, filler := range []int{0, 4} {
		scfg := workload.DefaultSynth
		scfg.Iters = 1500
		scfg.FillerPerBranch = filler
		scfg.ExcMask = 0xfff // roughly one overflow trap per 4096 iterations-with-hit
		p := workload.Synth(scfg)
		ref := refsim.MustCachedRun(p)
		b := float64(ref.Retired) / float64(ref.Branches)
		for _, h := range []float64{0.70, 0.85, 0.95} {
			cfg := machine.Config{
				Scheme:    core.NewSchemeTight(6, 0),
				Predictor: bpred.NewSynthetic(h, 7),
				Speculate: true,
				MemSystem: machine.MemBackward3b,
			}
			res, err := simRun(p, cfg)
			if err != nil {
				panic(err)
			}
			analytic := b / (1 - h)
			measured := res.Stats.InstsPerBRepair()
			perE := "n/a"
			if res.Stats.ERepairs > 0 {
				perE = fmt.Sprintf("%.0f", float64(res.Stats.Retired)/float64(res.Stats.ERepairs))
			}
			t.AddRow(fmt.Sprintf("%.0f%%", h*100), fmt.Sprintf("%.2f", b),
				fmt.Sprintf("%.1f", analytic), fmt.Sprintf("%.1f", measured), perE)
		}
	}
	return t
}

// c2 demonstrates Theorem 2: one backup space forces the pipeline to
// drain at every check; two avoid it; more help less and less.
func c2(ctx context.Context) *Table {
	t := &Table{
		ID:    "C2",
		Title: "schemeE issue stalls vs number of backup spaces (distance 8)",
		Note: "Theorem 2: a minimum of two backup spaces is required to avoid " +
			"draining the active instructions before performing checkE. Expect c=1 " +
			"to stall dramatically more than c=2, with diminishing returns beyond. " +
			"Non-speculative machine (pure schemeE), kernel workloads.",
		Header: []string{"kernel", "c=1 stalls", "c=2 stalls", "c=3 stalls", "c=4 stalls", "c=1 cycles", "c=2 cycles", "c=4 cycles"},
	}
	names := []string{"fib", "bubble", "matmul", "sieve"}
	cs := []int{1, 2, 3, 4}
	var jobs []runJob
	for _, name := range names {
		for _, c := range cs {
			jobs = append(jobs, kernelJob(name, machine.Config{
				Scheme:    core.NewSchemeE(c, 8, 0),
				Speculate: false,
				MemSystem: machine.MemBackward3b,
			}))
		}
	}
	results := runParallel(ctx, jobs)
	for i, name := range names {
		row := results[i*len(cs) : (i+1)*len(cs)]
		stall := func(j int) int64 { return row[j].Stats.StallCycles[1] } // StallScheme
		t.AddRow(name, stall(0), stall(1), stall(2), stall(3),
			row[0].Stats.Cycles, row[1].Stats.Cycles, row[3].Stats.Cycles)
	}
	return t
}

// c3 audits Theorem 3: the peak number of active instructions never
// exceeds the sum of the active checkpoints' fault repair range sizes
// (c segments of at most Distance instructions each).
func c3() *Table {
	t := &Table{
		ID:    "C3",
		Title: "peak active instructions vs the Theorem 3 bound (c x distance)",
		Note: "Theorem 3: when issue stalls, the maximal number of active " +
			"instructions is the sum of the instructions in the fault repair ranges " +
			"of all active checkpoints. With uniform checkpoints the bound is " +
			"c * distance; the observed peak must never exceed it (it may also be " +
			"capped by the machine window, 32 here).",
		Header: []string{"kernel", "c", "distance", "bound", "peak active", "ok"},
	}
	for _, name := range []string{"bubble", "sieve"} {
		for _, cfg := range []struct{ c, d int }{{2, 4}, {2, 8}, {4, 4}, {4, 8}} {
			res := run(name, machine.Config{
				Scheme:    core.NewSchemeE(cfg.c, cfg.d, 0),
				Speculate: false,
				MemSystem: machine.MemBackward3b,
			})
			bound := int64(cfg.c * cfg.d)
			if bound > 32 {
				bound = 32
			}
			ok := res.Stats.MaxWindow <= bound
			t.AddRow(name, cfg.c, cfg.d, bound, res.Stats.MaxWindow, ok)
		}
	}
	return t
}

// c4 reports the Theorem 4 invariant: every E-repair recall found the
// oldest backup space complete (no pending register cells). The
// register file enforces it with a hard panic, so completing the runs
// is the evidence; the table counts the recalls exercised.
func c4() *Table {
	t := &Table{
		ID:    "C4",
		Title: "Theorem 4: instructions left of the oldest checkpoint have finished",
		Note: "Every instruction to the left of activeE,c(t) has finished by t, so " +
			"the oldest backup space is always complete when an E-repair recalls it. " +
			"regfile.RecallOldest panics on any pending cell; these runs perform the " +
			"listed recalls without a violation.",
		Header: []string{"workload", "scheme", "E-repairs (recalls)", "violations"},
	}
	for _, name := range []string{"pagedemo", "divzero"} {
		for _, mk := range []func() core.Scheme{
			func() core.Scheme { return core.NewSchemeTight(4, 0) },
			func() core.Scheme { return core.NewSchemeLoose(2, 4, 12) },
			func() core.Scheme { return core.NewSchemeDirect(2, 4, 12, 0) },
		} {
			s := mk()
			res := run(name, machine.Config{
				Scheme:    s,
				Predictor: bpred.NewBimodal(256),
				Speculate: true,
				MemSystem: machine.MemBackward3b,
			})
			t.AddRow(name, s.Name(), res.Scheme.ERepairs, 0)
		}
	}
	return t
}

// c5 sweeps the §3.1 design space: more spaces or longer distances both
// reduce stalls, at different costs.
func c5(ctx context.Context) *Table {
	t := &Table{
		ID:    "C5",
		Title: "schemeE stall cycles across (c, distance) — sieve kernel",
		Note: "§3.1: \"The stalls can be reduced by increasing the value of either " +
			"of the two parameters at different prices\" — more spaces cost hardware, " +
			"longer distances discard more work per E-repair. Expect stalls to fall " +
			"along both axes and flatten once segments cover the pipeline depth.",
		Header: []string{"c \\ distance", "4", "8", "16", "32", "64"},
	}
	cs := []int{1, 2, 3, 4, 6}
	ds := []int{4, 8, 16, 32, 64}
	var jobs []runJob
	for _, c := range cs {
		for _, d := range ds {
			jobs = append(jobs, kernelJob("sieve", machine.Config{
				Scheme:    core.NewSchemeE(c, d, 0),
				Speculate: false,
				MemSystem: machine.MemBackward3b,
			}))
		}
	}
	results := runParallel(ctx, jobs)
	for i, c := range cs {
		row := []any{fmt.Sprint(c)}
		for j := range ds {
			row = append(row, results[i*len(ds)+j].Stats.StallCycles[1])
		}
		t.AddRow(row...)
	}
	return t
}

// c6 sweeps the backward-difference buffer capacity around the
// Theorem 7 bound (2c-1)W.
func c6(ctx context.Context) *Table {
	c, W := 3, 4
	bound := (2*c - 1) * W
	t := &Table{
		ID:    "C6",
		Title: fmt.Sprintf("store stalls vs difference-buffer capacity (c=%d, W=%d, (2c-1)W=%d)", c, W, bound),
		Note: "Theorem 7: a backward difference buffer of (2c-1)W entries is " +
			"necessary and sufficient to handle all possible repairs without extra " +
			"stalls. The hardware buffer reclaims dead entries only from its old " +
			"end, so capacities below the bound stall stores (or deadlock when far " +
			"too small); at and beyond the bound stalls vanish. Store-dense " +
			"workload, write limit W enforced by the scheme.",
		Header: []string{"capacity", "store-stall cycles", "max occupancy", "outcome"},
	}
	scfg := workload.SynthConfig{Name: "storeheavy", Iters: 400, BranchesPerIter: 2, StoresPerIter: 6, Seed: 99}
	p := workload.Synth(scfg)
	capacities := []int{W, 2 * W, bound - W/2, bound, bound + W, 4 * bound}
	// Deadlocking capacities are expected results here, so this sweep
	// goes through runJobs' error-tolerant outcomes rather than
	// runParallel's panic-on-error path.
	jobs := make([]runJob, len(capacities))
	for i, capacity := range capacities {
		jobs[i] = runJob{name: scfg.Name, prog: p, cfg: machine.Config{
			Scheme:         core.NewSchemeE(c, 1000, W), // W forces the checkpoints
			Speculate:      false,
			MemSystem:      machine.MemBackward3a,
			BufferCap:      capacity,
			WatchdogCycles: 20_000,
		}}
	}
	outs := runJobs(ctx, jobs)
	for i, capacity := range capacities {
		res, err := outs[i].res, outs[i].err
		outcome := "completed"
		var stalls, occ int64
		if err != nil {
			outcome = "DEADLOCK"
			if res != nil {
				stalls = res.Stats.StallCycles[8] // StallStoreBuf
				occ = int64(res.Diff.MaxOccupancy)
			}
		} else {
			stalls = res.Stats.StallCycles[8]
			occ = int64(res.Diff.MaxOccupancy)
		}
		t.AddRow(capacity, stalls, occ, outcome)
	}
	return t
}

// c7 runs the simulation the paper says is required: how many
// write-backs does Algorithm 3(b) save over 3(a)?
func c7(ctx context.Context) *Table {
	t := &Table{
		ID:    "C7",
		Title: "cache write-backs under Algorithm 3(a) vs 3(b)",
		Note: "§3.2.2: 3(b) \"is the optimal algorithm in terms of avoiding " +
			"unnecessarily setting dirty bits and thus avoiding unnecessary write " +
			"back activity after repair\", and its gain \"can not be derived by " +
			"analytical methods and must be measured with simulation\" — this is " +
			"that simulation. Repair-heavy runs (mispredicting predictor, small " +
			"cache); 3(b) never writes back more than 3(a).",
		Header: []string{"workload", "3(a) write-backs", "3(b) write-backs", "saved", "avoided dirty-sets"},
	}
	smallCache := cache.Config{Sets: 8, Ways: 1, LineBytes: 16, Policy: cache.WriteBack}
	progs := []string{"bubble", "sieve", "memcpy", "recfib"}
	memsys := []machine.MemSystemKind{machine.MemBackward3a, machine.MemBackward3b}
	var jobs []runJob
	for _, name := range progs {
		for _, ms := range memsys {
			jobs = append(jobs, kernelJob(name, machine.Config{
				Scheme:    core.NewSchemeTight(4, 0),
				Predictor: bpred.NewTaken(), // deliberately poor: many B-repairs
				Speculate: true,
				MemSystem: ms,
				Cache:     smallCache,
			}))
		}
	}
	results := runParallel(ctx, jobs)
	for i, name := range progs {
		a, b := results[2*i], results[2*i+1]
		t.AddRow(name, a.Cache.WriteBacks, b.Cache.WriteBacks,
			a.Cache.WriteBacks-b.Cache.WriteBacks, b.Cache.RepairWriteBacksAvoided)
	}
	return t
}

// c8 demonstrates Theorems 8 and 9 plus the B-space sweep.
func c8() *Table {
	t := &Table{
		ID:    "C8",
		Title: "issue stalls vs number of B backup spaces (schemeB, bubble kernel)",
		Note: "Theorem 8: any machine issuing along predicted paths needs at least " +
			"one backupB space (the constructors reject 0, and merged schemes " +
			"reject fewer than two spaces per Theorem 9). More B spaces let more " +
			"predictions stay simultaneously unverified; stalls fall until the " +
			"branch-resolution latency is covered.",
		Header: []string{"cB", "scheme-stall cycles", "cycles", "B-repairs"},
	}
	for _, c := range []int{1, 2, 3, 4, 8} {
		res := run("bubble", machine.Config{
			Scheme:    core.NewSchemeB(c),
			Predictor: bpred.NewBimodal(256),
			Speculate: true,
			MemSystem: machine.MemForward,
		})
		t.AddRow(c, res.Stats.StallCycles[1], res.Stats.Cycles, res.Stats.BRepairs)
	}
	return t
}

// c9 compares the three §5 schemes at comparable space budgets.
func c9(ctx context.Context) *Table {
	t := &Table{
		ID:    "C9",
		Title: "combined schemes at comparable logical-space budgets",
		Note: "§5: the direct combination is clean but wastes spaces; the tightly " +
			"merged scheme shares one set of checkpoints for both repairs; the " +
			"loosely merged scheme graduates a fraction of B checkpoints into E " +
			"checkpoints, reusing B spaces fast while keeping E spaces sparse. " +
			"Expect the merged schemes to match or beat direct with fewer spaces. " +
			"Exception-bearing workload (pagedemo) + branchy kernel (bubble).",
		Header: []string{"workload", "scheme", "spaces", "cycles", "IPC", "stall cyc", "E-repairs", "B-repairs"},
	}
	mks := []func() core.Scheme{
		func() core.Scheme { return core.NewSchemeDirect(2, 4, 16, 0) },
		func() core.Scheme { return core.NewSchemeLoose(2, 4, 16) },
		func() core.Scheme { return core.NewSchemeTight(6, 0) },
		func() core.Scheme { return core.NewSchemeTight(4, 0) },
	}
	names := []string{"bubble", "pagedemo", "recfib"}
	var jobs []runJob
	for _, name := range names {
		for _, mk := range mks {
			jobs = append(jobs, kernelJob(name, machine.Config{
				Scheme:    mk(),
				Predictor: bpred.NewBimodal(256),
				Speculate: true,
				MemSystem: machine.MemBackward3b,
			}))
		}
	}
	results := runParallel(ctx, jobs)
	for i, job := range jobs {
		s, res := job.cfg.Scheme, results[i]
		t.AddRow(job.name, s.Name(), s.Spaces(), res.Stats.Cycles,
			fmt.Sprintf("%.3f", res.Stats.IPC()), res.Stats.StallTotal(),
			res.Stats.ERepairs, res.Stats.BRepairs)
	}
	return t
}

// c10 compares write-back and write-through cache policies under the
// backward difference.
func c10(ctx context.Context) *Table {
	t := &Table{
		ID:    "C10",
		Title: "write-back vs write-through under the backward difference",
		Note: "The paper corrects [5]: \"the write-back activity in our algorithms " +
			"can be performed without any waiting or extra buffering space\". " +
			"Write-back needs no additional repair stalls relative to " +
			"write-through — the store-stall column (difference-buffer waiting) is " +
			"identical — while doing far fewer memory writes.",
		Header: []string{"kernel", "policy", "cycles", "store stalls", "mem writes (wb+through)", "repairs"},
	}
	names := []string{"sieve", "memcpy", "bubble"}
	pols := []cache.Policy{cache.WriteBack, cache.WriteThrough}
	var jobs []runJob
	for _, name := range names {
		for _, pol := range pols {
			cc := cache.DefaultConfig
			cc.Policy = pol
			jobs = append(jobs, kernelJob(name, machine.Config{
				Scheme:    core.NewSchemeTight(4, 0),
				Predictor: bpred.NewBimodal(256),
				Speculate: true,
				MemSystem: machine.MemBackward3b,
				Cache:     cc,
			}))
		}
	}
	results := runParallel(ctx, jobs)
	for i, job := range jobs {
		res, pol := results[i], pols[i%len(pols)]
		memWrites := res.Cache.WriteBacks
		if pol == cache.WriteThrough {
			memWrites = int(res.Diff.Pushes) // every store hits memory
		}
		t.AddRow(job.name, pol.String(), res.Stats.Cycles,
			res.Stats.StallCycles[8], memWrites,
			res.Stats.BRepairs+res.Stats.ERepairs)
	}
	return t
}

// c11 compares against the Smith–Pleszkun baselines and the in-order
// machine.
func c11(ctx context.Context) *Table {
	t := &Table{
		ID:    "C11",
		Title: "cycles and IPC vs baseline machines",
		Note: "The in-order pipeline needs no repair mechanism but forfeits " +
			"out-of-order execution and speculation. The history/reorder buffer " +
			"machines of [5] are per-instruction-checkpoint special cases of the " +
			"difference techniques (no speculation, as published). Sparse " +
			"checkpoints plus branch prediction should win on branchy code; the " +
			"oracle row shows the headroom a perfect predictor leaves.",
		Header: []string{"kernel", "in-order", "HB(8)", "ROB(8)", "tight(4)+bimodal", "tight(4)+oracle"},
	}
	names := []string{"fib", "bubble", "matmul", "sieve", "crc", "recfib"}
	// The four machine configurations of each kernel form one batch-able
	// job group; the in-order baseline is not a checkpointed machine run
	// and fans out separately.
	const perKernel = 4
	var jobs []runJob
	for _, name := range names {
		jobs = append(jobs,
			kernelJob(name, baseline.HistoryBufferConfig(8)),
			kernelJob(name, baseline.ReorderBufferConfig(8)),
			kernelJob(name, machine.Config{
				Scheme:    core.NewSchemeTight(4, 0),
				Predictor: bpred.NewBimodal(256),
				Speculate: true,
				MemSystem: machine.MemBackward3b,
			}),
			kernelJob(name, machine.Config{
				Scheme:    core.NewSchemeTight(4, 0),
				Predictor: bpred.NewOracle(),
				Speculate: true,
				MemSystem: machine.MemBackward3b,
			}))
	}
	results := runParallel(ctx, jobs)
	inord := make([]int64, len(names))
	parMap(ctx, len(names), func(i int) {
		k, _ := workload.ByName(names[i])
		res, err := baseline.InOrder(k.Load(), machine.DefaultTiming, cache.DefaultConfig)
		if err != nil {
			panic(err)
		}
		inord[i] = res.Cycles
	})
	for i, name := range names {
		row := results[i*perKernel : (i+1)*perKernel]
		t.AddRow(name, inord[i], row[0].Stats.Cycles, row[1].Stats.Cycles,
			row[2].Stats.Cycles, row[3].Stats.Cycles)
	}
	return t
}

// c12 summarises the golden-model equivalence evidence (Theorem 1 and
// the B-repair correctness argument).
func c12(ctx context.Context) *Table {
	t := &Table{
		ID:    "C12",
		Title: "golden-model equivalence: machine vs reference interpreter",
		Note: "Theorem 1: the E-repair mechanism always precisely handles " +
			"exceptions. Every configuration below runs every kernel and must " +
			"reproduce the reference interpreter's registers, memory, and exception " +
			"sequence exactly (wider randomised coverage lives in the test suite).",
		Header: []string{"scheme", "memsys", "kernels", "matched"},
	}
	mks := []func() core.Scheme{
		func() core.Scheme { return core.NewSchemeTight(4, 0) },
		func() core.Scheme { return core.NewSchemeLoose(2, 4, 12) },
		func() core.Scheme { return core.NewSchemeDirect(2, 4, 12, 0) },
	}
	memsys := []machine.MemSystemKind{machine.MemBackward3a, machine.MemBackward3b, machine.MemForward}
	kernels := workload.Kernels()
	// The reference runs are shared by every configuration; compute each
	// kernel's once, in parallel, then fan out the machine runs.
	refs := make([]*refsim.Result, len(kernels))
	parMap(ctx, len(kernels), func(i int) {
		refs[i] = refsim.MustCachedRun(kernels[i].Load())
	})
	type cell struct {
		schemeName     string
		total, matched int
	}
	cells := make([]cell, len(mks)*len(memsys))
	// One job per (scheme, memsys, kernel) triple, kernel-major so every
	// kernel's configurations form one batch-able group; runJobs
	// tolerates per-job errors, which count as mismatches here.
	var jobs []runJob
	for j := range kernels {
		for ci := range cells {
			mk, ms := mks[ci/len(memsys)], memsys[ci%len(memsys)]
			s := mk()
			cells[ci].schemeName = s.Name()
			jobs = append(jobs, runJob{name: kernels[j].Name, prog: kernels[j].Load(), cfg: machine.Config{
				Scheme:    s,
				Predictor: bpred.NewBimodal(256),
				Speculate: true,
				MemSystem: ms,
			}})
		}
	}
	outs := runJobs(ctx, jobs)
	for j := range kernels {
		for ci := range cells {
			o := outs[j*len(cells)+ci]
			cells[ci].total++
			if o.err == nil && o.res.MatchRef(refs[j]) == nil {
				cells[ci].matched++
			}
		}
	}
	for i, c := range cells {
		t.AddRow(c.schemeName, memsys[i%len(memsys)].String(), c.total, c.matched)
	}
	return t
}
