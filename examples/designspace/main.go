// Designspace: sweep the §5 scheme space against predictors on one
// kernel and print the cycle grid — the at-a-glance view of how repair
// scheme choice and prediction quality interact.
//
//	go run ./examples/designspace [kernel]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/refsim"
	"repro/internal/workload"
)

func main() {
	kernel := "bubble"
	if len(os.Args) > 1 {
		kernel = os.Args[1]
	}
	k, err := workload.ByName(kernel)
	if err != nil {
		log.Fatal(err)
	}
	p := k.Load()
	ref := refsim.MustRun(p, refsim.Options{})
	fmt.Printf("kernel %s: %d architectural instructions, %d branches (%.0f%% taken), %d exceptions\n\n",
		kernel, ref.Retired, ref.Branches, 100*float64(ref.Taken)/float64(max(1, ref.Branches)), len(ref.Exceptions))

	schemes := []struct {
		name string
		mk   func() core.Scheme
	}{
		{"schemeB(4)", func() core.Scheme { return core.NewSchemeB(4) }},
		{"tight(4)", func() core.Scheme { return core.NewSchemeTight(4, 0) }},
		{"tight(8)", func() core.Scheme { return core.NewSchemeTight(8, 0) }},
		{"loose(2,4)", func() core.Scheme { return core.NewSchemeLoose(2, 4, 16) }},
		{"direct(2,4)", func() core.Scheme { return core.NewSchemeDirect(2, 4, 16, 0) }},
	}
	preds := []struct {
		name string
		mk   func() bpred.Predictor
	}{
		{"nottaken", bpred.NewNotTaken},
		{"btfn", bpred.NewBTFN},
		{"bimodal", func() bpred.Predictor { return bpred.NewBimodal(1024) }},
		{"gshare", func() bpred.Predictor { return bpred.NewGShare(4096, 8) }},
		{"oracle", bpred.NewOracle},
	}

	fmt.Printf("cycles (golden-checked):\n%-12s", "")
	for _, pr := range preds {
		fmt.Printf("%10s", pr.name)
	}
	fmt.Println()
	for _, sc := range schemes {
		fmt.Printf("%-12s", sc.name)
		for _, pr := range preds {
			s := sc.mk()
			if _, isB := s.(*core.SchemeB); isB && k.Excepts {
				fmt.Printf("%10s", "n/a") // pure B cannot E-repair
				continue
			}
			res, err := machine.Run(p, machine.Config{
				Scheme:    s,
				Predictor: pr.mk(),
				Speculate: true,
				MemSystem: machine.MemBackward3b,
			})
			if err != nil {
				log.Fatalf("%s/%s: %v", sc.name, pr.name, err)
			}
			if err := res.MatchRef(ref); err != nil {
				log.Fatalf("%s/%s golden mismatch: %v", sc.name, pr.name, err)
			}
			fmt.Printf("%10d", res.Stats.Cycles)
		}
		fmt.Println()
	}
	fmt.Println("\nevery cell above reproduced the reference interpreter's state exactly")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
