package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/prog"
)

// LoopNestOpts parameterises the nested-loop generator.
type LoopNestOpts struct {
	Depth     int // nesting depth (1..4)
	TripCount int // iterations per level
	BodyLen   int // random instructions in the innermost body
	PMem      float64
	PExc      float64
}

// DefaultLoopNest is a three-deep nest, the shape that stresses
// checkpoint windows hardest: short inner trip counts make backward
// branches resolve quickly while outer branches stay pending.
var DefaultLoopNest = LoopNestOpts{Depth: 3, TripCount: 4, BodyLen: 10, PMem: 0.3, PExc: 0.05}

// LoopNest generates a random program shaped as a perfect loop nest.
// Unlike Random (one flat loop), the nest produces correlated branch
// histories (inner branches taken TripCount-1 times then not-taken),
// which two-level predictors learn and bimodal ones half-miss —
// exercising repair under realistic control structure.
func LoopNest(seed int64, o LoopNestOpts) *prog.Program {
	if o.Depth < 1 {
		o.Depth = 1
	}
	if o.Depth > 4 {
		o.Depth = 4
	}
	if o.TripCount < 2 {
		o.TripCount = 2
	}
	if o.BodyLen < 1 {
		o.BodyLen = 8
	}
	rng := rand.New(rand.NewSource(seed))
	var code []isa.Inst
	app := func(in isa.Inst) { code = append(code, in) }
	// Loop counters live in r20..r23; scratch registers r1..r12.
	counter := func(level int) isa.Reg { return isa.Reg(20 + level) }

	for r := isa.Reg(1); r <= 12; r++ {
		app(isa.Inst{Op: isa.OpADDI, Rd: r, Rs1: 0, Imm: int32(rng.Intn(2001) - 1000)})
	}

	var heads []int
	for lvl := 0; lvl < o.Depth; lvl++ {
		app(isa.Inst{Op: isa.OpADDI, Rd: counter(lvl), Rs1: 0, Imm: int32(o.TripCount)})
		heads = append(heads, len(code))
	}
	// Innermost body.
	reg := func() isa.Reg { return isa.Reg(1 + rng.Intn(12)) }
	for i := 0; i < o.BodyLen; i++ {
		x := rng.Float64()
		switch {
		case x < o.PMem:
			app(isa.Inst{Op: isa.OpANDI, Rd: 13, Rs1: reg(), Imm: 0xfc})
			if rng.Intn(2) == 0 {
				app(isa.Inst{Op: isa.OpLW, Rd: reg(), Rs1: 13, Imm: scratchBase})
			} else {
				app(isa.Inst{Op: isa.OpSW, Rs2: reg(), Rs1: 13, Imm: scratchBase})
			}
		case x < o.PMem+o.PExc:
			ops := []isa.Op{isa.OpADDV, isa.OpDIV, isa.OpREM}
			app(isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: reg(), Rs1: reg(), Rs2: reg()})
		default:
			ops := []isa.Op{isa.OpADD, isa.OpSUB, isa.OpXOR, isa.OpOR, isa.OpAND, isa.OpSLT, isa.OpMUL}
			app(isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: reg(), Rs1: reg(), Rs2: reg()})
		}
	}
	// Close the loops, innermost first.
	for lvl := o.Depth - 1; lvl >= 0; lvl-- {
		app(isa.Inst{Op: isa.OpADDI, Rd: counter(lvl), Rs1: counter(lvl), Imm: -1})
		// heads[lvl] points just past this level's counter init — i.e.
		// at the NEXT level's init — so taking the back-edge naturally
		// reinitialises every inner counter.
		app(isa.Inst{Op: isa.OpBNE, Rs1: counter(lvl), Rs2: 0, Imm: int32(heads[lvl] - len(code) - 1)})
	}
	// Epilogue: expose registers.
	for r := isa.Reg(1); r <= 12; r++ {
		app(isa.Inst{Op: isa.OpSW, Rs1: 0, Rs2: r, Imm: int32(resultBase + 4*uint32(r))})
	}
	app(isa.Inst{Op: isa.OpHALT})

	p := &prog.Program{
		Name: fmt.Sprintf("loopnest-%d", seed),
		Code: code,
		Data: []prog.Segment{
			{Addr: scratchBase, Data: make([]byte, 256)},
			{Addr: resultBase, Data: make([]byte, 256)},
		},
	}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("workload: loop nest invalid: %v", err))
	}
	return p
}
