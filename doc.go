// Package repro is a complete Go reproduction of Hwu & Patt,
// "Checkpoint Repair for Out-of-order Execution Machines" (ISCA 1987).
//
// The module root carries the benchmark harness (bench_test.go, one
// benchmark per reproduced figure/table/claim); the implementation
// lives under internal/:
//
//   - internal/core — the paper's contribution: the five checkpoint
//     repair schemes (E, B, direct, tight, loose);
//   - internal/regfile, internal/diff, internal/cache — the two
//     logical-space techniques (register copy; backward/forward
//     difference buffers over a cache);
//   - internal/machine, internal/ooo — the out-of-order machine the
//     schemes plug into;
//   - internal/baseline — the Smith–Pleszkun comparators;
//   - internal/experiments — regenerates every artefact (see
//     EXPERIMENTS.md);
//   - cmd/ckptsim, cmd/ckptasm, cmd/experiments — the tools.
//
// Start with README.md, DESIGN.md (system inventory, experiment index,
// deviations), and EXPERIMENTS.md (captured paper-vs-measured run).
package repro
