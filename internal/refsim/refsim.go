// Package refsim implements the in-order architectural reference
// interpreter — the golden model.
//
// It executes the sequential model of §2.1 of the checkpoint repair
// paper literally: an architectural program counter sequences through
// instructions one by one, finishing one before starting the next, with
// trivially precise exceptions. Every out-of-order machine in this
// repository, whatever its repair scheme, must produce exactly the same
// final registers, final memory, and exception sequence as this
// interpreter; the property-based tests in internal/machine enforce
// that.
package refsim

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/sem"
)

// DefaultMaxSteps bounds interpreter runs on possibly-diverging
// programs.
const DefaultMaxSteps = 2_000_000

// Options configures a reference run.
type Options struct {
	MaxSteps int // 0 means DefaultMaxSteps
	// OnBranch, if non-nil, is called for every executed conditional
	// branch with its PC and outcome. Used to gather branch statistics
	// and to train predictors offline.
	OnBranch func(pc int, taken bool, target int)
	// OnRetire, if non-nil, is called for every architecturally completed
	// instruction in order.
	OnRetire func(pc int, in isa.Inst)
	// OnMem, if non-nil, is called for every successful memory access
	// with its effective address. Used by trace-driven timing models
	// (the in-order baseline feeds these addresses to its cache).
	OnMem func(pc int, addr uint32, store bool)
	// OnRegWrite, if non-nil, observes every architectural register
	// write (r is never R0). Used by the trace recorder to capture
	// per-step state deltas for Replay.StateAt.
	OnRegWrite func(r isa.Reg, v uint32)
	// OnMemWrite, if non-nil, observes every architectural memory write
	// as the aligned longword address, data, and byte mask actually
	// stored.
	OnMemWrite func(addr, data uint32, mask uint8)
	// OnMap, if non-nil, observes demand paging: the handler mapped a
	// fresh zero page at base.
	OnMap func(base uint32)
}

// Result is the architectural outcome of a program run.
type Result struct {
	Regs       [isa.NumRegs]uint32
	Mem        *mem.Memory
	Exceptions []isa.Exception
	Halted     bool // reached HALT (or a halting exception)
	TimedOut   bool // exceeded MaxSteps before halting
	Retired    int  // architecturally completed instructions
	Branches   int  // conditional branches executed
	Taken      int  // conditional branches taken
	MemWrites  int  // stores retired
}

// RegsEqual reports whether the architectural registers match,
// ignoring R0.
func (r *Result) RegsEqual(o *Result) bool {
	for i := 1; i < isa.NumRegs; i++ {
		if r.Regs[i] != o.Regs[i] {
			return false
		}
	}
	return true
}

// ExceptionsEqual reports whether the exception sequences match.
func (r *Result) ExceptionsEqual(o *Result) bool {
	if len(r.Exceptions) != len(o.Exceptions) {
		return false
	}
	for i := range r.Exceptions {
		if r.Exceptions[i] != o.Exceptions[i] {
			return false
		}
	}
	return true
}

// Run executes the program to completion on the reference interpreter.
func Run(p *prog.Program, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	res := &Result{Mem: p.NewMemory()}
	pc := p.Entry
	for res.Retired < maxSteps {
		if pc < 0 || pc >= len(p.Code) {
			// Running off the code image is a bad-instruction fault, and
			// the handler for it halts the machine.
			res.Exceptions = append(res.Exceptions, isa.Exception{Code: isa.ExcCodeBadInst, PC: pc})
			res.Halted = true
			return res, nil
		}
		in := p.Code[pc]
		next, exc, halted := step(res, in, pc, opts)
		if exc.Code != isa.ExcCodeNone {
			res.Exceptions = append(res.Exceptions, exc)
			switch sem.HandlerAction(exc.Code) {
			case sem.ActResume:
				// Demand paging: map the faulting page, re-execute.
				res.Mem.Map(exc.Addr&^(mem.PageSize-1), mem.PageSize)
				if opts.OnMap != nil {
					opts.OnMap(exc.Addr &^ (mem.PageSize - 1))
				}
				continue
			case sem.ActSkip:
				pc++
				continue
			case sem.ActContinue:
				// Trap: the instruction completed; next already points
				// after it.
			case sem.ActHalt:
				res.Halted = true
				return res, nil
			}
		}
		if halted {
			res.Halted = true
			return res, nil
		}
		pc = next
	}
	res.TimedOut = true
	return res, nil
}

// step executes one instruction. It returns the next PC, the exception
// raised (ExcCodeNone if none), and whether the machine halted. Faulting
// instructions have no architectural effect; trapping instructions
// complete first.
func step(res *Result, in isa.Inst, pc int, opts Options) (next int, exc isa.Exception, halted bool) {
	a := res.Regs[in.Rs1]
	b := res.Regs[in.Rs2]
	next = pc + 1

	if in.Op.IsVector() {
		// Sequential element semantics: element i completes before
		// element i+1 starts; the first excepting element stops the
		// instruction with the exception reported at the instruction's
		// PC. Re-execution after a resume-kind handler redoes the
		// earlier elements, which is idempotent given unchanged state.
		for _, e := range sem.Expand(in) {
			if exc := execElem(res, e, pc, opts); exc.Code != isa.ExcCodeNone {
				return next, exc, false
			}
		}
		res.Retired++
		if opts.OnRetire != nil {
			opts.OnRetire(pc, in)
		}
		return next, isa.Exception{}, false
	}

	switch in.Op.Class() {
	case isa.ClassLoad:
		if exc := execElem(res, in, pc, opts); exc.Code != isa.ExcCodeNone {
			return next, exc, false
		}
	case isa.ClassStore:
		if exc := execElem(res, in, pc, opts); exc.Code != isa.ExcCodeNone {
			return next, exc, false
		}
	default:
		o := sem.EvalALU(in, a, b, pc)
		if o.Exc != isa.ExcCodeNone && o.Exc.Kind() == isa.ExcFault {
			return next, isa.Exception{Code: o.Exc, PC: pc}, false
		}
		if o.WroteRd {
			writeReg(res, in.Rd, o.Result, opts)
		}
		if in.IsBranch() {
			res.Branches++
			if o.Taken {
				res.Taken++
			}
			if opts.OnBranch != nil {
				opts.OnBranch(pc, o.Taken, o.Target)
			}
		}
		if o.Taken {
			next = o.Target
		}
		if o.Exc != isa.ExcCodeNone {
			// Trap: completes, then raises.
			res.Retired++
			if opts.OnRetire != nil {
				opts.OnRetire(pc, in)
			}
			return next, isa.Exception{Code: o.Exc, PC: pc, Info: o.TrapInfo}, false
		}
		if o.Halt {
			res.Retired++
			if opts.OnRetire != nil {
				opts.OnRetire(pc, in)
			}
			return next, isa.Exception{}, true
		}
	}
	res.Retired++
	if opts.OnRetire != nil {
		opts.OnRetire(pc, in)
	}
	return next, isa.Exception{}, false
}

// execElem executes one memory or ALU micro-operation (a scalar
// instruction, or one element of a vector instruction) against the
// architectural state, returning any exception attributed to pc.
func execElem(res *Result, e isa.Inst, pc int, opts Options) isa.Exception {
	a := res.Regs[e.Rs1]
	b := res.Regs[e.Rs2]
	switch e.Op.Class() {
	case isa.ClassLoad:
		addr := sem.EffAddr(e, a)
		size := sem.AccessSize(e.Op)
		if code := res.Mem.CheckRead(addr, size); code != isa.ExcCodeNone {
			return isa.Exception{Code: code, PC: pc, Addr: addr}
		}
		word, _ := res.Mem.ReadMasked(addr)
		writeReg(res, e.Rd, sem.LoadValue(e.Op, addr, word), opts)
		if opts.OnMem != nil {
			opts.OnMem(pc, addr, false)
		}
	case isa.ClassStore:
		addr := sem.EffAddr(e, a)
		size := sem.AccessSize(e.Op)
		if code := res.Mem.CheckWrite(addr, size); code != isa.ExcCodeNone {
			return isa.Exception{Code: code, PC: pc, Addr: addr}
		}
		aligned, data, mask := sem.StoreBytes(e.Op, addr, b)
		res.Mem.WriteMasked(aligned, data, mask)
		res.MemWrites++
		if opts.OnMemWrite != nil {
			opts.OnMemWrite(aligned, data, mask)
		}
		if opts.OnMem != nil {
			opts.OnMem(pc, addr, true)
		}
	default:
		o := sem.EvalALU(e, a, b, pc)
		if o.Exc != isa.ExcCodeNone {
			return isa.Exception{Code: o.Exc, PC: pc, Info: o.TrapInfo}
		}
		if o.WroteRd {
			writeReg(res, e.Rd, o.Result, opts)
		}
	}
	return isa.Exception{}
}

func writeReg(res *Result, r isa.Reg, v uint32, opts Options) {
	if r != 0 {
		res.Regs[r] = v
		if opts.OnRegWrite != nil {
			opts.OnRegWrite(r, v)
		}
	}
}

// MustRun is Run but panics on error; convenient in examples and
// experiment drivers operating on known-good programs.
func MustRun(p *prog.Program, opts Options) *Result {
	res, err := Run(p, opts)
	if err != nil {
		panic(fmt.Sprintf("refsim: %v", err))
	}
	return res
}
