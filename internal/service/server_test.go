package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// settleGoroutines waits for the goroutine count to drop back to at
// most base — the drain/cancel paths must not strand workers or
// waiters.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

type wireResp struct {
	Job    JobView         `json:"job"`
	Result json.RawMessage `json:"result"`
}

func postJob(t *testing.T, url string, spec Spec, wait bool) (int, wireResp) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	u := url + "/jobs"
	if wait {
		u += "?wait=1"
	}
	resp, err := http.Post(u, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wr wireResp
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &wr); err != nil {
			t.Fatalf("bad response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, wr
}

func getMetrics(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func counter(m map[string]any, group, name string) int64 {
	g, _ := m[group].(map[string]any)
	v, _ := g[name].(float64)
	return int64(v)
}

// TestSingleFlight64 is the acceptance scenario: 64 concurrent
// identical submissions run the simulation exactly once, every client
// gets byte-identical result bytes, and the daemon drains clean with
// no leaked goroutines (run under -race in make ci).
func TestSingleFlight64(t *testing.T) {
	base := runtime.NumGoroutine()
	s := MustNew(Config{Workers: 2, QueueCap: 8})
	ts := httptest.NewServer(s.Handler())

	spec := Spec{Kind: "sim", Workload: "fib"}
	const n = 64
	var wg sync.WaitGroup
	results := make([]json.RawMessage, n)
	codes := make([]int, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			code, wr := postJob(t, ts.URL, spec, true)
			codes[i], results[i] = code, wr.Result
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if len(results[i]) == 0 {
			t.Fatalf("request %d: no result", i)
		}
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("request %d result differs:\n%s\nvs\n%s", i, results[i], results[0])
		}
	}

	m := getMetrics(t, ts.URL)
	if got := counter(m, "executions", "started"); got != 1 {
		t.Fatalf("64 identical submissions started %d executions, want exactly 1", got)
	}
	if misses := counter(m, "cache", "misses"); misses != 1 {
		t.Fatalf("cache misses = %d, want 1", misses)
	}
	if shared := counter(m, "cache", "coalesced") + counter(m, "cache", "hits"); shared != n-1 {
		t.Fatalf("coalesced+hits = %d, want %d", shared, n-1)
	}

	// A later identical submission is a pure cache hit.
	code, wr := postJob(t, ts.URL, spec, true)
	if code != http.StatusOK || !wr.Job.CacheHit {
		t.Fatalf("re-submission: code=%d cache_hit=%v", code, wr.Job.CacheHit)
	}
	if !bytes.Equal(wr.Result, results[0]) {
		t.Fatal("cached result bytes differ from the original execution")
	}

	ts.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	settleGoroutines(t, base)
}

// newHookServer builds a server whose executions are controlled by the
// test: they block until released (or their context dies).
func newHookServer(cfg Config) (*Server, chan struct{}, chan struct{}) {
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	s := MustNew(cfg)
	s.executeHook = func(ctx context.Context, key string, spec Spec) (*Result, error) {
		started <- struct{}{}
		select {
		case <-release:
			return &Result{Key: key, Kind: spec.Kind, Spec: spec, Output: "done"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s, started, release
}

func simSpec(seed int) Spec {
	// Distinct specs (different campaign seeds) that never coalesce.
	return Spec{Kind: "campaign", Workload: "fib", Campaign: &CampaignSpec{Seed: int64(seed)}}
}

// TestBackpressure429: with one worker busy and the queue full, the
// next distinct submission is shed with 429 and a Retry-After hint —
// while an identical submission still coalesces (followers don't
// consume queue slots).
func TestBackpressure429(t *testing.T) {
	base := runtime.NumGoroutine()
	s, started, release := newHookServer(Config{Workers: 1, QueueCap: 1})
	ts := httptest.NewServer(s.Handler())

	// Job 1 occupies the worker; job 2 the single queue slot.
	code1, _ := postJob(t, ts.URL, simSpec(1), false)
	<-started
	code2, _ := postJob(t, ts.URL, simSpec(2), false)
	if code1 != http.StatusAccepted || code2 != http.StatusAccepted {
		t.Fatalf("setup: codes %d %d", code1, code2)
	}

	// A third distinct job has nowhere to go.
	body, _ := json.Marshal(simSpec(3))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// But an identical re-submission of job 2 coalesces fine.
	code4, wr4 := postJob(t, ts.URL, simSpec(2), false)
	if code4 != http.StatusAccepted || !wr4.Job.Coalesced {
		t.Fatalf("coalescing under full queue: code=%d coalesced=%v", code4, wr4.Job.Coalesced)
	}

	m := getMetrics(t, ts.URL)
	if got := counter(m, "jobs", "rejected"); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}

	close(release)
	ts.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	settleGoroutines(t, base)
}

// TestCancelPropagation: DELETE on the last interested job cancels the
// execution's context, unwinding the (hooked) simulation.
func TestCancelPropagation(t *testing.T) {
	base := runtime.NumGoroutine()
	s, started, release := newHookServer(Config{Workers: 1, QueueCap: 4})
	ts := httptest.NewServer(s.Handler())

	code, wr := postJob(t, ts.URL, simSpec(10), false)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	<-started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+wr.Job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var jv JobView
	json.NewDecoder(resp.Body).Decode(&jv)
	resp.Body.Close()
	if jv.State != StateFailed || !strings.Contains(jv.Error, "cancelled") {
		t.Fatalf("cancelled job state=%s err=%q", jv.State, jv.Error)
	}

	// The hooked execution sees ctx.Done and fails; nothing is cached.
	waitFor(t, func() bool {
		m := getMetrics(t, ts.URL)
		return counter(m, "executions", "failed") == 1
	}, "execution did not observe cancellation")
	if _, ok := s.cache.lookup(wr.Job.Key); ok {
		t.Fatal("cancelled execution was cached")
	}

	close(release)
	ts.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	settleGoroutines(t, base)
}

// TestClientDisconnectCancels: a ?wait=1 client going away withdraws
// its interest; as the only client, that kills the execution.
func TestClientDisconnectCancels(t *testing.T) {
	base := runtime.NumGoroutine()
	s, started, release := newHookServer(Config{Workers: 1, QueueCap: 4})
	ts := httptest.NewServer(s.Handler())

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(simSpec(20))
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/jobs?wait=1", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("disconnected request did not error client-side")
	}

	waitFor(t, func() bool {
		m := getMetrics(t, ts.URL)
		return counter(m, "executions", "failed") == 1
	}, "execution survived its only client disconnecting")

	close(release)
	ts.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	settleGoroutines(t, base)
}

// TestJobDeadline: timeout_ms fails the job (and, as the only
// interested party, the execution) without any client action.
func TestJobDeadline(t *testing.T) {
	base := runtime.NumGoroutine()
	s, started, release := newHookServer(Config{Workers: 1, QueueCap: 4})
	ts := httptest.NewServer(s.Handler())

	spec := simSpec(30)
	spec.TimeoutMS = 30
	code, wr := postJob(t, ts.URL, spec, false)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	<-started

	waitFor(t, func() bool {
		resp, err := http.Get(ts.URL + "/jobs/" + wr.Job.ID)
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var jv JobView
		json.NewDecoder(resp.Body).Decode(&jv)
		return jv.State == StateFailed && strings.Contains(jv.Error, "deadline")
	}, "job did not fail on its deadline")

	close(release)
	ts.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	settleGoroutines(t, base)
}

// TestDrainHardCancel: a drain whose context expires cancels running
// executions and still leaves zero workers behind.
func TestDrainHardCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	s, started, _ := newHookServer(Config{Workers: 1, QueueCap: 4})
	ts := httptest.NewServer(s.Handler())

	if code, _ := postJob(t, ts.URL, simSpec(40), false); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	<-started

	dctx, dcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer dcancel()
	if err := s.Drain(dctx); err == nil {
		t.Fatal("drain of a wedged execution returned nil before its deadline")
	}
	// After Drain returns, admission is closed and workers have exited.
	if ok := s.queue.tryEnqueue(&entry{}); ok {
		t.Fatal("queue accepted work after drain")
	}
	ts.Close()
	settleGoroutines(t, base)
}

// TestDrainRejectsNewWork: while draining, new submissions get a clean
// 503 (not 429 — the daemon is going away, not busy).
func TestDrainRejectsNewWork(t *testing.T) {
	s, _, release := newHookServer(Config{Workers: 1, QueueCap: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	close(release)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	body, _ := json.Marshal(simSpec(50))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining daemon answered %d, want 503", resp.StatusCode)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining daemon still passes health checks: %d", hz.StatusCode)
	}
}

// TestResultsEndpoint covers the /results round trip plus 404s and
// bad-spec 400s.
func TestResultsEndpoint(t *testing.T) {
	s := MustNew(Config{Workers: 2, QueueCap: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())

	code, wr := postJob(t, ts.URL, Spec{Kind: "sim", Workload: "fib"}, true)
	if code != http.StatusOK {
		t.Fatalf("submit: %d", code)
	}
	for _, ref := range []string{wr.Job.Key, wr.Job.ID} {
		resp, err := http.Get(ts.URL + "/results/" + ref)
		if err != nil {
			t.Fatal(err)
		}
		var res Result
		json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || res.Key != wr.Job.Key {
			t.Fatalf("GET /results/%s: %d key=%s", ref, resp.StatusCode, res.Key)
		}
		if res.Sim == nil || res.Sim.Retired == 0 {
			t.Fatalf("result missing sim summary: %+v", res)
		}
	}

	resp, _ := http.Get(ts.URL + "/results/no-such-key")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing result: %d", resp.StatusCode)
	}

	bad, _ := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"kind":"bake"}`))
	io.Copy(io.Discard, bad.Body)
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %d", bad.StatusCode)
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestExecuteKinds exercises the real dispatcher for each job kind at
// its cheapest configuration.
func TestExecuteKinds(t *testing.T) {
	for _, spec := range []Spec{
		{Kind: "sim", Workload: "fib"},
		{Kind: "campaign", Workload: "fib", Campaign: &CampaignSpec{Models: []string{"fu-detected"}, Stride: 8}},
	} {
		key, canon, err := spec.Key()
		if err != nil {
			t.Fatal(err)
		}
		res, err := execute(context.Background(), key, canon)
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		if res.Output == "" {
			t.Fatalf("%s: empty output", spec.Kind)
		}
		switch spec.Kind {
		case KindSim:
			if res.Sim == nil || !res.Sim.Halted {
				t.Fatalf("sim summary: %+v", res.Sim)
			}
		case KindCampaign:
			if res.Campaign == nil || res.Campaign.Executed == 0 {
				t.Fatalf("campaign summary: %+v", res.Campaign)
			}
			if res.Campaign.SDC+res.Campaign.Hang+res.Campaign.Crash != 0 {
				t.Fatalf("covered-model campaign escaped repair: %+v", res.Campaign)
			}
		}
	}
	// Cancelled context surfaces as an error for every kind.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, spec := range []Spec{
		{Kind: "sim", Workload: "fib"},
		{Kind: "sweep", Experiment: "C5"},
	} {
		key, canon, err := spec.Key()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := execute(ctx, key, canon); err == nil {
			t.Fatalf("%s: cancelled execute returned nil error", spec.Kind)
		}
	}
}

// TestMetricsBatchSection: /metrics exposes the batch-engine counters —
// a sim job runs on a pooled chassis (single_runs), a sweep job fans
// out into lockstep batches (batches, lanes, width, live lanes).
func TestMetricsBatchSection(t *testing.T) {
	s := MustNew(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := postJob(t, ts.URL, Spec{Kind: "sim", Workload: "fib"}, true); code != http.StatusOK {
		t.Fatalf("sim job: status %d", code)
	}
	if code, _ := postJob(t, ts.URL, Spec{Kind: "sweep", Experiment: "C5"}, true); code != http.StatusOK {
		t.Fatalf("sweep job: status %d", code)
	}

	m := getMetrics(t, ts.URL)
	b, ok := m["batch"].(map[string]any)
	if !ok {
		t.Fatalf("no batch section in metrics: %v", m)
	}
	if got := counter(m, "batch", "single_runs"); got < 1 {
		t.Fatalf("single_runs = %d, want >= 1 (the sim job draws a pooled chassis)", got)
	}
	if got := counter(m, "batch", "batches"); got < 1 {
		t.Fatalf("batches = %d, want >= 1 (the C5 sweep groups lanes)", got)
	}
	if lanes, batches := counter(m, "batch", "lanes"), counter(m, "batch", "batches"); lanes < batches {
		t.Fatalf("lanes = %d < batches = %d", lanes, batches)
	}
	if w, _ := b["avg_width"].(float64); w < 1 {
		t.Fatalf("avg_width = %v, want >= 1", w)
	}
	if live, _ := b["avg_live_lanes"].(float64); live <= 0 {
		t.Fatalf("avg_live_lanes = %v, want > 0", live)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestAbortFinishesCoalescedFollower is the regression test for the
// abort path: a follower that coalesces onto a leader's in-flight
// entry between the leader's acquire and its backpressure abort must
// resolve with the rejection error — before the fix, abort only
// removed the entry from the in-flight table and a raced-in follower
// waited forever on an execution nobody enqueued.
func TestAbortFinishesCoalescedFollower(t *testing.T) {
	s := MustNew(Config{Workers: 1, QueueCap: 1})
	defer s.Drain(context.Background())

	key, canon, err := Spec{Kind: "sim", Workload: "fib"}.Key()
	if err != nil {
		t.Fatal(err)
	}
	_, e, leader := s.cache.acquire(context.Background(), key, canon)
	if !leader {
		t.Fatal("expected to lead a fresh key")
	}
	// The follower acquires the same key and attaches its job — exactly
	// what handleSubmit does for a coalesced submission.
	_, e2, leader2 := s.cache.acquire(context.Background(), key, canon)
	if leader2 || e2 != e {
		t.Fatalf("expected to coalesce onto the leader's entry")
	}
	j := s.jobs.add(key, canon)
	e2.attach(j)

	// The leader's enqueue is rejected (queue full / draining): abort.
	s.cache.abort(e, errQueueFull)

	select {
	case <-j.done:
	case <-time.After(5 * time.Second):
		t.Fatal("coalesced follower hung after leader abort")
	}
	if res, errMsg, ok := j.terminal(); !ok || res != nil || !strings.Contains(errMsg, errQueueFull.Error()) {
		t.Fatalf("follower terminal state = (%v, %q, %v), want queue-full failure", res, errMsg, ok)
	}
	// A late attach after the abort must also resolve immediately.
	j2 := s.jobs.add(key, canon)
	e.attach(j2)
	if _, _, ok := j2.terminal(); !ok {
		t.Fatal("attach after abort did not finish the job")
	}
}

// TestDrainSubmitRace hammers Drain against concurrent submissions:
// every submission must either complete with a result or be rejected
// cleanly (503 draining / 429 shed) — never accepted and then dropped.
// Run under -race in make ci.
func TestDrainSubmitRace(t *testing.T) {
	base := runtime.NumGoroutine()
	s := MustNew(Config{Workers: 2, QueueCap: 4})
	ts := httptest.NewServer(s.Handler())

	var wg sync.WaitGroup
	results := make([]int, 32)
	bodies := make([]wireResp, 32)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct cheap sims would all coalesce; distinct campaign
			// seeds keep each submission an independent admission.
			code, wr := postJob(t, ts.URL, simSpec(1000+i), true)
			results[i], bodies[i] = code, wr
		}(i)
	}
	// Let a few submissions land, then drain concurrently.
	time.Sleep(2 * time.Millisecond)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	ts.Close()

	for i, code := range results {
		switch code {
		case http.StatusOK:
			// Accepted before the drain cut in: must carry its result.
			if len(bodies[i].Result) == 0 {
				t.Fatalf("submission %d accepted (200) but has no result: job=%+v", i, bodies[i].Job)
			}
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			// Rejected cleanly.
		default:
			t.Fatalf("submission %d: unexpected status %d (job=%+v)", i, code, bodies[i].Job)
		}
	}
	settleGoroutines(t, base)
}
