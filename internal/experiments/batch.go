package experiments

import (
	"context"
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/prog"
)

// batchingOff gates the batch-lockstep sweep engine. With batching on
// (the default), every sweep that runs several configurations of the
// same program groups them into machine.RunBatch lanes sharing the
// memoized reference trace, and singleton runs draw pooled chassis;
// with it off, each job is an independent machine.Run, reproducing the
// pre-batching execution path exactly. Tables are byte-identical either
// way — the three-way equivalence tests prove it.
var batchingOff atomic.Bool

// SetBatching enables or disables batch-lockstep sweep execution for
// subsequent experiment runs.
func SetBatching(on bool) { batchingOff.Store(!on) }

// Batching reports whether batch-lockstep sweep execution is enabled.
func Batching() bool { return !batchingOff.Load() }

// batchWidth is the number of lanes grouped into one lockstep batch.
// Lanes within a batch run on one goroutine; batches (and unrelated
// jobs) spread across the worker pool, so the width trades per-batch
// chassis/trace locality against sweep-level parallelism. Eight lanes
// covers most per-program sweep axes in one or two batches while
// leaving a typical sweep enough batches to fill the pool.
const batchWidth = 8

// jobOutcome is one sweep job's result or error. Sweeps that expect
// failures (deadlocking configurations) consume outcomes directly;
// runParallel panics on the first error instead.
type jobOutcome struct {
	res *machine.Result
	err error
}

// runJobs executes the jobs on the package pool and returns outcomes in
// job order. It is the batch-aware job-grouping choke point every sweep
// funnels through: jobs sharing a program are grouped, in first-seen
// order, into lockstep batches of up to batchWidth lanes, and each
// batch is one pool task. With batching (or the fast paths) off, every
// job runs individually through simRun.
func runJobs(ctx context.Context, jobs []runJob) []jobOutcome {
	outs := make([]jobOutcome, len(jobs))
	if !Batching() || !FastPaths() {
		parMap(ctx, len(jobs), func(i int) {
			outs[i].res, outs[i].err = simRun(jobs[i].prog, jobs[i].cfg)
		})
		return outs
	}
	batches := groupJobs(jobs)
	parMap(ctx, len(batches), func(bi int) {
		group := batches[bi]
		if len(group) == 1 {
			i := group[0]
			outs[i].res, outs[i].err = simRun(jobs[i].prog, jobs[i].cfg)
			return
		}
		p := jobs[group[0]].prog
		cfgs := make([]machine.Config, len(group))
		for j, i := range group {
			cfgs[j] = wire(p, jobs[i].cfg)
		}
		results, errs := machine.RunBatch(p, cfgs)
		for j, i := range group {
			outs[i] = jobOutcome{res: results[j], err: errs[j]}
		}
	})
	return outs
}

// groupJobs partitions job indices into batches: consecutive (in
// first-seen program order) jobs sharing a *prog.Program go to the same
// batch until it reaches batchWidth, then a fresh batch opens. Grouping
// is by pointer identity, matching the trace cache's memoization key.
func groupJobs(jobs []runJob) [][]int {
	var batches [][]int
	open := make(map[*prog.Program]int, 4) // program -> open batch index
	for i := range jobs {
		p := jobs[i].prog
		bi, ok := open[p]
		if !ok || len(batches[bi]) >= batchWidth {
			batches = append(batches, nil)
			bi = len(batches) - 1
			open[p] = bi
		}
		batches[bi] = append(batches[bi], i)
	}
	return batches
}
