package experiments

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// settleGoroutines waits for the goroutine count to drop back to at
// most base, failing the test if it never does. Pool workers return
// their tokens before exiting, so after a drained cancellation the
// count must settle.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // let finished goroutines park
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after cancellation: %d > %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunExperimentCancelledNoLeak cancels a sweep experiment before it
// starts and mid-flight, asserting both that the cancellation surfaces
// as ctx.Err() and that no pool workers are left behind.
func TestRunExperimentCancelledNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()

	// Already-cancelled context: the sweep must not dispatch anything.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunExperiment(ctx, "C5"); err != context.Canceled {
		t.Fatalf("pre-cancelled RunExperiment err = %v, want context.Canceled", err)
	}
	settleGoroutines(t, base)

	// Mid-sweep cancellation: cancel while the C5 (c × distance) sweep
	// is in flight. Depending on timing the sweep may finish first, so
	// accept either outcome — but never a leak, and never a partial
	// table presented as success.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel2()
	}()
	ts, err := RunExperiment(ctx2, "C5")
	switch {
	case err == nil:
		if len(ts) == 0 {
			t.Fatal("RunExperiment returned no error and no tables")
		}
	case err == context.Canceled:
		if ts != nil {
			t.Fatalf("cancelled RunExperiment returned partial tables: %v", ts)
		}
	default:
		t.Fatalf("RunExperiment err = %v", err)
	}
	cancel2()
	settleGoroutines(t, base)
}

// TestRunExperimentUnknownID keeps the error path deterministic.
func TestRunExperimentUnknownID(t *testing.T) {
	if _, err := RunExperiment(context.Background(), "ZZ9"); err == nil {
		t.Fatal("unknown experiment id did not error")
	}
}
