// Quickstart: assemble a small program, run it on an out-of-order
// machine with the tightly merged checkpoint repair scheme, and verify
// the result against the reference interpreter.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/refsim"
)

const source = `
; sum of the first 100 integers, with a software trap at the end
    addi r1, r0, 100      ; n
    addi r2, r0, 0        ; sum
loop:
    add  r2, r2, r1
    addi r1, r1, -1
    bne  r1, r0, loop
    sw   r2, answer(r0)
    trap 42               ; tell the "OS" we finished
    halt
.data 0x1000
answer: .word 0
`

func main() {
	// 1. Assemble.
	p, err := asm.Assemble("quickstart", source)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Configure a machine: out-of-order execution, branch prediction,
	// and the §5.2 tightly merged scheme with four backup spaces over a
	// backward-difference (Algorithm 3(b)) memory system.
	cfg := machine.Config{
		Scheme:    core.NewSchemeTight(4, 0),
		Predictor: bpred.NewBimodal(256),
		Speculate: true,
		MemSystem: machine.MemBackward3b,
	}

	// 3. Run.
	res, err := machine.Run(p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	answer, _ := res.Mem.Read32(0x1000)
	fmt.Printf("answer            = %d (expected 5050)\n", answer)
	fmt.Printf("cycles            = %d\n", res.Stats.Cycles)
	fmt.Printf("retired           = %d (IPC %.2f)\n", res.Stats.Retired, res.Stats.IPC())
	fmt.Printf("checkpoints       = %d established\n", res.Stats.Checkpoints)
	fmt.Printf("B-repairs         = %d (mispredicted branches undone)\n", res.Stats.BRepairs)
	fmt.Printf("E-repairs         = %d (exceptions handled precisely)\n", res.Stats.ERepairs)
	fmt.Printf("exceptions        = %v\n", res.Exceptions)

	// 4. Golden check: the out-of-order machine, wrong paths, repairs
	// and all, must be architecturally indistinguishable from simple
	// sequential execution.
	ref, err := refsim.Run(p, refsim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.MatchRef(ref); err != nil {
		log.Fatalf("golden mismatch: %v", err)
	}
	fmt.Println("golden check      = machine state matches sequential execution")
}
