package cache

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

func newCache(t *testing.T, cfg Config) (*Cache, *mem.Memory) {
	t.Helper()
	m := mem.New()
	m.Map(0, 4*mem.PageSize)
	c, err := New(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	return c, m
}

func TestConfigValidation(t *testing.T) {
	m := mem.New()
	bad := []Config{
		{Sets: 3, Ways: 1, LineBytes: 16},
		{Sets: 4, Ways: 0, LineBytes: 16},
		{Sets: 4, Ways: 1, LineBytes: 12},
		{Sets: 4, Ways: 1, LineBytes: 2},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, m); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestReadMissFillHit(t *testing.T) {
	c, m := newCache(t, Config{Sets: 4, Ways: 1, LineBytes: 16, Policy: WriteBack})
	m.Write32(0x40, 1234)
	v, hit, exc := c.ReadLongword(0x40)
	if exc != isa.ExcCodeNone || hit || v != 1234 {
		t.Fatalf("first read: v=%d hit=%v exc=%v", v, hit, exc)
	}
	v, hit, _ = c.ReadLongword(0x40)
	if !hit || v != 1234 {
		t.Fatalf("second read: v=%d hit=%v", v, hit)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Fills != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestWriteBackOnEviction(t *testing.T) {
	c, m := newCache(t, Config{Sets: 1, Ways: 1, LineBytes: 16, Policy: WriteBack})
	c.WriteLongword(0x00, 42, 0b1111)
	// Memory not yet updated.
	if v, _ := m.Read32(0x00); v != 0 {
		t.Fatal("write-back leaked early")
	}
	// Conflict evicts and writes back.
	c.ReadLongword(0x40)
	if v, _ := m.Read32(0x00); v != 42 {
		t.Errorf("write-back value: %d", v)
	}
	if c.Stats().WriteBacks != 1 {
		t.Errorf("writebacks: %d", c.Stats().WriteBacks)
	}
}

func TestWriteThroughKeepsClean(t *testing.T) {
	c, m := newCache(t, Config{Sets: 1, Ways: 1, LineBytes: 16, Policy: WriteThrough})
	c.WriteLongword(0x00, 42, 0b1111)
	if v, _ := m.Read32(0x00); v != 42 {
		t.Fatal("write-through must update memory")
	}
	if dirty, _ := c.LineBits(0x00); dirty {
		t.Error("write-through line dirty")
	}
	c.ReadLongword(0x40) // evict
	if c.Stats().WriteBacks != 0 {
		t.Error("write-through produced a write-back")
	}
}

func TestWriteResultOldData(t *testing.T) {
	c, _ := newCache(t, Config{Sets: 4, Ways: 2, LineBytes: 16, Policy: WriteBack})
	c.WriteLongword(0x10, 0x1111, 0b1111)
	wr, _ := c.WriteLongword(0x10, 0x2222, 0b1111)
	if wr.Old != 0x1111 || !wr.WasDirty || !wr.Hit {
		t.Errorf("write result: %+v", wr)
	}
}

func TestLRUReplacement(t *testing.T) {
	c, _ := newCache(t, Config{Sets: 1, Ways: 2, LineBytes: 16, Policy: WriteBack})
	c.ReadLongword(0x00) // A
	c.ReadLongword(0x40) // B
	c.ReadLongword(0x00) // touch A
	c.ReadLongword(0x80) // C should evict B (LRU)
	if p, _ := c.Present(0x00); !p {
		t.Error("A evicted")
	}
	if p, _ := c.Present(0x40); p {
		t.Error("B kept")
	}
	if p, _ := c.Present(0x80); !p {
		t.Error("C absent")
	}
}

func TestRecoverOperations(t *testing.T) {
	c, m := newCache(t, Config{Sets: 1, Ways: 1, LineBytes: 16, Policy: WriteBack})
	c.WriteLongword(0x00, 99, 0b1111)
	c.RecoverInCache(0x00, 11, 0b1111, true, true)
	if v, p := c.PeekLongword(0x00); !p || v != 11 {
		t.Errorf("recover in cache: %d %v", v, p)
	}
	d, h := c.LineBits(0x00)
	if !d || !h {
		t.Error("bits not applied")
	}
	c.RecoverInMemory(0x80, 7, 0b1111)
	if v, _ := m.Read32(0x80); v != 7 {
		t.Errorf("recover in memory: %d", v)
	}
	// Hazard bits are persistent (see BeginRepair doc): they clear when
	// the line provably matches memory again — on write-back...
	c.WriteLongword(0x40, 5, 0b1111) // conflicting line: evicts + writes back 0x00
	c.ReadLongword(0x00)             // refill
	if d, h := c.LineBits(0x00); d || h {
		t.Errorf("refetched line must be clean (d=%v h=%v)", d, h)
	}
}

func TestHazardClearsOnWriteBackAndRefill(t *testing.T) {
	c, m := newCache(t, Config{Sets: 1, Ways: 1, LineBytes: 16, Policy: WriteBack})
	c.WriteLongword(0x00, 7, 0b1111)
	c.RecoverInCache(0x00, 3, 0b1111, true, true) // dirty + hazard
	// Eviction writes back (memory := line) and the refill is clean.
	c.ReadLongword(0x40)
	if v, _ := m.Read32(0x00); v != 3 {
		t.Fatalf("write-back value %d", v)
	}
	c.ReadLongword(0x00)
	if d, h := c.LineBits(0x00); d || h {
		t.Errorf("post-refill bits d=%v h=%v", d, h)
	}
}

func TestCheckAccess(t *testing.T) {
	c, _ := newCache(t, DefaultConfig)
	if c.CheckAccess(0x2, 4) != isa.ExcCodeMisaligned {
		t.Error("misaligned")
	}
	if c.CheckAccess(0x10000, 4) != isa.ExcCodePageFault {
		t.Error("unmapped")
	}
	if c.CheckAccess(0x10, 4) != isa.ExcCodeNone {
		t.Error("valid access")
	}
	if c.Stats().Fills != 0 {
		t.Error("CheckAccess must not fill")
	}
}

func TestFlushAll(t *testing.T) {
	c, m := newCache(t, Config{Sets: 4, Ways: 2, LineBytes: 16, Policy: WriteBack})
	c.WriteLongword(0x00, 1, 0b1111)
	c.WriteLongword(0x10, 2, 0b1111)
	c.WriteLongword(0x20, 3, 0b1111)
	c.FlushAll()
	for i, want := range []uint32{1, 2, 3} {
		if v, _ := m.Read32(uint32(i * 0x10)); v != want {
			t.Errorf("flush %d: %d", i, v)
		}
	}
	if p, _ := c.Present(0x00); p {
		t.Error("flush must invalidate")
	}
}

func TestUnmappedLineFaults(t *testing.T) {
	c, _ := newCache(t, DefaultConfig)
	if _, _, exc := c.ReadLongword(0x100000); exc != isa.ExcCodePageFault {
		t.Errorf("read unmapped: %v", exc)
	}
	if _, exc := c.WriteLongword(0x100000, 1, 0b1111); exc != isa.ExcCodePageFault {
		t.Errorf("write unmapped: %v", exc)
	}
}

func TestByteMaskedWrite(t *testing.T) {
	c, _ := newCache(t, DefaultConfig)
	c.WriteLongword(0x10, 0xAABBCCDD, 0b1111)
	c.WriteLongword(0x10, 0x00EE0000, 0b0100)
	if v, _, _ := c.ReadLongword(0x10); v != 0xAAEECCDD {
		t.Errorf("masked write: %#x", v)
	}
}
