; Collatz trajectory length of 27 (should be 111 steps).
; Branches here are data-dependent and essentially unpredictable —
; a stress case for B-repair. Run with:
;   go run ./cmd/ckptsim -prog examples/progs/collatz.s -scheme tight -c 8
    addi r1, r0, 27
    addi r2, r0, 0        ; steps
    addi r3, r0, 1
loop:
    beq  r1, r3, done
    andi r4, r1, 1
    bne  r4, r0, odd
    srli r1, r1, 1        ; n /= 2
    j    next
odd:
    add  r5, r1, r1
    add  r1, r5, r1       ; n *= 3
    addi r1, r1, 1        ; n += 1
next:
    addi r2, r2, 1
    j    loop
done:
    sw   r2, steps(r0)
    halt
.data 0x1000
steps: .word 0
