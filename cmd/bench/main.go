// Command bench measures the simulator's hot paths with the standard
// testing.Benchmark driver and writes the results as JSON, so perf
// regressions show up in version control next to the changes that
// caused them (BENCH_<n>.json at the repo root, one file per measured
// PR).
//
// Usage:
//
//	go build -o bench ./cmd/bench && ./bench   # writes BENCH_7.json
//	go run ./cmd/bench -o out.json -benchtime 300ms
//	go run ./cmd/bench -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Each entry reports wall time, allocations, and — for whole-machine
// benchmarks — simulated instructions per second, alongside the
// baseline numbers captured on the pre-optimisation tree (same
// machine), so the file is a self-contained before/after record. The
// experiment/<ID> entries additionally time each sweep artefact three
// ways in alternating rounds — batch-lockstep, fast-path unbatched,
// and naive — and record the batch width and lane occupancy observed
// during the batched rounds. The runall section times full artefact
// regeneration sequentially and with the parallel experiment engine;
// the fault/ entries measure the fault-injection campaign engine
// (planning and injected-run throughput); the daemon section boots the
// ckptd serving core in-process and reports its simulated-instruction
// throughput over the ckptload default mix; the cluster section runs
// a sweep-and-campaign mix through an in-process coordinator at 1, 2,
// and 4 workers and records the sub-job dispatch counters.
//
// The report is stamped with the build's VCS state. A bench built from
// a dirty checkout refuses to run (its numbers would be untraceable);
// -allow-dirty overrides for local iteration and stamps "dirty": true
// prominently in the output.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bpred"
	"repro/internal/buildinfo"
	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/cluster/clustertest"
	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/refsim"
	"repro/internal/rv32"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/workload"
)

// baseline holds the pre-optimisation numbers (negative = not
// captured). Measured at benchtime=300ms on the tree before the flat
// page table, op free lists, and checkpoint recycling landed.
type baseline struct {
	NsPerOp     float64
	AllocsPerOp int64
}

var baselines = map[string]baseline{
	"machine/fib":           {72003, 757},
	"machine/bubble":        {584980, 4994},
	"machine/sieve":         {2641589, 21676},
	"machine/recfib":        {3798157, 31220},
	"memsys/backward-3a":    {2570710, -1},
	"memsys/backward-3b":    {3102511, -1},
	"memsys/forward":        {3691383, -1},
	"diff/backward-store":   {32.96, 0},
	"diff/backward-repair8": {628.1, -1},
	"refsim/sieve":          {170506, 5},
}

// The experiment/<ID> entries record two baselines. The primary one is
// measured in the same process, interleaved round-for-round with the
// fast-path measurement (experiments.SetFastPaths(false), which
// re-interprets the reference model on every run and disables cycle
// skipping); interleaving makes that ratio immune to host-throughput
// drift between bench runs, which on shared hosts easily exceeds the
// effect being measured. It is also a lower bound on the PR's effect:
// the unconditional micro-optimisations (conditional scheme-stats
// snapshots, the cached Undone counter, the slice-backed predictor
// tracker) speed the fast-paths-off run too. experimentBaselines below
// therefore additionally pins the full pre-change tree: the same
// artefact loop run from a worktree of the previous commit, interleaved
// round-for-round with this tree on the same machine (benchtime=200ms,
// 3 rounds each, min taken, 1 CPU).
var experimentBaselines = map[string]float64{
	"C1":  130437832,
	"C2":  6463771,
	"C5":  21747043,
	"C6":  21165321,
	"C7":  7295326,
	"C9":  8240133,
	"C10": 3550879,
	"C11": 16069485,
	"C12": 85538467,
	"A1":  46111031,
	"A4":  10643820,
	"A5":  8934348,
}

// entry is one benchmark's measurement.
type entry struct {
	Name           string  `json:"name"`
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	SimInstsPerSec float64 `json:"sim_insts_per_sec,omitempty"`
	// Fault-campaign entries only: injected machine runs per second.
	InjectionsPerSec float64 `json:"injections_per_sec,omitempty"`
	BaselineNsPerOp  float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocs   int64   `json:"baseline_allocs_per_op,omitempty"`
	SpeedupVsBase    float64 `json:"speedup_vs_baseline,omitempty"`
	// Experiment entries only: the pre-change-tree time (see
	// experimentBaselines) and the speedup over it.
	PreTreeNsPerOp   float64 `json:"pre_fastpath_tree_ns_per_op,omitempty"`
	SpeedupVsPreTree float64 `json:"speedup_vs_pre_fastpath_tree,omitempty"`
	// Experiment entries only (BENCH_5): the fast-path run with the
	// batch engine disabled, the speedup batching alone adds over it,
	// and the batch shape observed during the batched rounds — average
	// lanes per RunBatch call and average live lanes over batch
	// lifetimes (equal to the width when no lane retires early).
	UnbatchedNsPerOp   float64 `json:"unbatched_ns_per_op,omitempty"`
	SpeedupVsUnbatched float64 `json:"speedup_vs_unbatched,omitempty"`
	BatchAvgWidth      float64 `json:"batch_avg_width,omitempty"`
	BatchAvgLiveLanes  float64 `json:"batch_avg_live_lanes,omitempty"`
}

// report is the file layout of BENCH_<n>.json.
type report struct {
	Version    string  `json:"version"`
	Dirty      bool    `json:"dirty,omitempty"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Benchtime  string  `json:"benchtime"`
	Benchmarks []entry `json:"benchmarks"`
	RunAll     struct {
		SequentialNs int64   `json:"sequential_ns"`
		ParallelNs   int64   `json:"parallel_ns"`
		Workers      int     `json:"workers"`
		Speedup      float64 `json:"speedup"`
	} `json:"runall"`
	// Daemon reports the in-process ckptd serving core driven with the
	// ckptload default mix (BENCH_4 measured the same mix over real
	// HTTP against a separate daemon process).
	Daemon *daemonBench `json:"daemon,omitempty"`
	// Store reports cold-vs-warm daemon restart throughput over a
	// shared persistent store directory (BENCH_6).
	Store *storeBench `json:"store,omitempty"`
	// Campaign reports kill-and-resume campaign wall-clock vs
	// from-scratch, plus the checkpoint-placement solution (BENCH_6).
	Campaign *campaignBench `json:"campaign,omitempty"`
	// Cluster reports the distributed serving path: the same mix
	// through an in-process coordinator at 1, 2, and 4 workers
	// (BENCH_7).
	Cluster *clusterBench `json:"cluster,omitempty"`
}

// clusterBench is the coordinator/worker scaling section.
type clusterBench struct {
	// Note records the honesty caveat on this host (a single-core
	// container cannot show real scaling; the numbers bound the
	// coordination overhead instead — the BENCH_1 runall convention).
	Note   string         `json:"note,omitempty"`
	Scales []clusterScale `json:"scales"`
}

// clusterScale is one worker-count measurement.
type clusterScale struct {
	Workers        int                 `json:"workers"`
	Requests       int                 `json:"requests"`
	ElapsedMs      int64               `json:"elapsed_ms"`
	RPS            float64             `json:"rps"`
	Dispatch       cluster.CounterView `json:"dispatch"`
	LocalFallbacks int64               `json:"local_fallbacks"`
}

// daemonBench is the serving-layer throughput section.
type daemonBench struct {
	Workers        int     `json:"workers"`
	Requests       int     `json:"requests"`
	ElapsedMs      int64   `json:"elapsed_ms"`
	RPS            float64 `json:"rps"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	SimInsts       int64   `json:"sim_insts"`
	SimInstsPerSec float64 `json:"sim_insts_per_sec"`
	// Batch shape observed inside the daemon's executions.
	BatchSingleRuns int64 `json:"batch_single_runs"`
	BatchBatches    int64 `json:"batch_batches"`
}

func main() {
	out := flag.String("o", "BENCH_8.json", "output JSON path")
	benchtime := flag.Duration("benchtime", 300*time.Millisecond, "target time per benchmark")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after all benchmarks) to this file")
	allowDirty := flag.Bool("allow-dirty", false, "benchmark a dirty checkout anyway (output is stamped dirty)")
	version := buildinfo.Flag()
	flag.Parse()
	version()
	flag.Set("test.benchtime", benchtime.String())

	buildVersion := buildinfo.Version()
	dirty := strings.Contains(buildVersion, "dirty")
	if dirty {
		fmt.Fprintf(os.Stderr, "bench: DIRTY BUILD — %s does not correspond to any commit\n", buildVersion)
		if !*allowDirty {
			fatal(fmt.Errorf("refusing to benchmark a dirty checkout (numbers would be untraceable); commit first or pass -allow-dirty"))
		}
		fmt.Fprintln(os.Stderr, "bench: -allow-dirty set; the report will be stamped \"dirty\": true")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	rep := report{
		Version:    buildVersion,
		Dirty:      dirty,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  benchtime.String(),
	}

	machineCfg := func() machine.Config {
		return machine.Config{
			Scheme:    core.NewSchemeTight(4, 0),
			Predictor: bpred.NewBimodal(256),
			Speculate: true,
			MemSystem: machine.MemBackward3b,
		}
	}

	for _, name := range []string{"fib", "bubble", "sieve", "recfib"} {
		k, err := workload.ByName(name)
		if err != nil {
			fatal(err)
		}
		p := k.Load()
		var retired int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := machine.Run(p, machineCfg())
				if err != nil {
					b.Fatal(err)
				}
				retired = res.Stats.Retired
			}
		})
		rep.add("machine/"+name, r, retired)
	}

	// Compiled rv32 corpus binaries through the machine (BENCH_8):
	// CorpusProgram memoizes translation, so the loop measures
	// steady-state simulation of real compiled code, and the separate
	// frontend entry isolates decode+translate+validate throughput.
	for _, name := range rv32.CorpusNames() {
		p, err := rv32.CorpusProgram(name)
		if err != nil {
			fatal(err)
		}
		var retired int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := machine.Run(p, machineCfg())
				if err != nil {
					b.Fatal(err)
				}
				retired = res.Stats.Retired
			}
		})
		rep.add("rv32/"+name, r, retired)
	}
	{
		data, err := rv32.CorpusBytes("mix")
		if err != nil {
			fatal(err)
		}
		rep.add("rv32/frontend-mix", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				img, err := rv32.Load("mix", data)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := rv32.Translate(img); err != nil {
					b.Fatal(err)
				}
			}
		}), 0)
	}

	{
		k, _ := workload.ByName("sieve")
		p := k.Load()
		for _, ms := range []struct {
			label string
			kind  machine.MemSystemKind
		}{
			{"backward-3a", machine.MemBackward3a},
			{"backward-3b", machine.MemBackward3b},
			{"forward", machine.MemForward},
		} {
			var retired int64
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					cfg := machineCfg()
					cfg.MemSystem = ms.kind
					res, err := machine.Run(p, cfg)
					if err != nil {
						b.Fatal(err)
					}
					retired = res.Stats.Retired
				}
			})
			rep.add("memsys/"+ms.label, r, retired)
		}
	}

	newBD := func() *diff.Backward {
		m := mem.New()
		m.Map(0, mem.PageSize)
		c := cache.MustNew(cache.DefaultConfig, m)
		return diff.NewBackward(c, diff.Sophisticated, 0)
	}
	rep.add("diff/backward-store", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		bd := newBD()
		for i := 0; i < b.N; i++ {
			bd.Store(uint64(i+1), uint32(i%64)*4, uint32(i), 0b1111)
			if i%64 == 63 {
				bd.Release(uint64(i + 1))
			}
		}
	}), 0)
	rep.add("diff/backward-repair8", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		bd := newBD()
		for i := 0; i < b.N; i++ {
			base := uint64(i*8 + 1)
			for j := uint64(0); j < 8; j++ {
				bd.Store(base+j, uint32(j*4), uint32(i), 0b1111)
			}
			bd.Repair(base)
		}
	}), 0)

	{
		k, _ := workload.ByName("sieve")
		p := k.Load()
		var retired int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := refsim.Run(p, refsim.Options{})
				if err != nil {
					b.Fatal(err)
				}
				retired = int64(res.Retired)
			}
		})
		rep.add("refsim/sieve", r, retired)
	}

	// Fault-injection campaign throughput: plan once (the planning cost
	// is measured separately), then replay the executed-injection list —
	// the campaign's hot loop of full injected machine runs plus golden
	// classification. Reported as injected runs per second.
	{
		k, _ := workload.ByName("fib")
		p := k.Load()
		mkE := func() machine.Config {
			return machine.Config{
				Scheme:    core.NewSchemeE(4, 8, 0),
				Speculate: false,
				MemSystem: machine.MemBackward3b,
			}
		}
		cc := fault.Config{Seed: 1987, Stride: 2, MaxWords: 4, Workers: 1}
		rep.add("fault/plan-fib", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fault.PlanOnly(p, mkE, cc); err != nil {
					b.Fatal(err)
				}
			}
		}), 0)
		plan, err := fault.PlanOnly(p, mkE, cc)
		if err != nil {
			fatal(err)
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fault.Replay(context.Background(), p, mkE, cc, plan.Exec); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.addFault("fault/inject-fib", r, len(plan.Exec))
	}

	// Sweep-heavy artefact regeneration — the claims and ablations that
	// run hundreds of machine configurations per table. These are where
	// the shared reference-trace cache, event-driven cycle skipping, and
	// the batch-lockstep engine pay. Each artefact is timed three ways
	// in alternating rounds (five of each, minimum kept): batched (fast
	// paths + batch-lockstep lanes + pooled chassis), unbatched (fast
	// paths, one fresh machine per run — the pre-batching execution
	// path), and naive (fast paths off: live-shadow oracle, no cycle
	// skipping — the BENCH_2 baseline convention). Interleaving makes
	// the ratios same-process, same-moment comparisons immune to
	// host-throughput drift, and a warm-up pass keeps one-time assembly
	// and trace recording out of the first iteration. The batch width
	// and lane-occupancy counters are snapshotted around the loop; only
	// the batched rounds touch them.
	for _, id := range []string{"C1", "C2", "C5", "C6", "C7", "C9", "C10", "C11", "C12", "A1", "A4", "A5"} {
		e, ok := experiments.ByID(id)
		if !ok {
			fatal(fmt.Errorf("no experiment %s in the registry", id))
		}
		e.Run(context.Background())
		run := func() testing.BenchmarkResult {
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for _, t := range e.Run(context.Background()) {
						_ = t.String()
					}
				}
			})
		}
		var batched, unbatched, naive testing.BenchmarkResult
		bs0 := machine.ReadBatchStats()
		for round := 0; round < 5; round++ {
			experiments.SetFastPaths(true)
			experiments.SetBatching(true)
			bt := run()
			experiments.SetBatching(false)
			u := run()
			experiments.SetFastPaths(false)
			s := run()
			experiments.SetFastPaths(true)
			experiments.SetBatching(true)
			if round == 0 || bt.NsPerOp() < batched.NsPerOp() {
				batched = bt
			}
			if round == 0 || u.NsPerOp() < unbatched.NsPerOp() {
				unbatched = u
			}
			if round == 0 || s.NsPerOp() < naive.NsPerOp() {
				naive = s
			}
		}
		bs1 := machine.ReadBatchStats()
		rep.addExperiment(id, batched, unbatched, naive, bs0, bs1)
	}

	// Full artefact regeneration, sequential then parallel. One warm-up
	// pass is charged to neither so assembler and page-table warm state
	// don't bias the first timing.
	experiments.RunAll(io.Discard)
	experiments.SetParallelism(1)
	seqStart := time.Now()
	experiments.RunAll(io.Discard)
	rep.RunAll.SequentialNs = time.Since(seqStart).Nanoseconds()
	experiments.SetParallelism(0)
	parStart := time.Now()
	experiments.RunAll(io.Discard)
	rep.RunAll.ParallelNs = time.Since(parStart).Nanoseconds()
	rep.RunAll.Workers = experiments.Parallelism()
	rep.RunAll.Speedup = float64(rep.RunAll.SequentialNs) / float64(rep.RunAll.ParallelNs)

	rep.Daemon = benchDaemon()
	rep.Store = benchStore()
	rep.Campaign = benchCampaign()
	rep.Cluster = benchCluster()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
	fmt.Printf("wrote %s (%d benchmarks, runall speedup %.2fx on %d worker(s))\n",
		*out, len(rep.Benchmarks), rep.RunAll.Speedup, rep.RunAll.Workers)
}

func (rep *report) add(name string, r testing.BenchmarkResult, simInsts int64) {
	e := entry{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if simInsts > 0 && e.NsPerOp > 0 {
		e.SimInstsPerSec = float64(simInsts) * 1e9 / e.NsPerOp
	}
	if base, ok := baselines[name]; ok {
		e.BaselineNsPerOp = base.NsPerOp
		if base.AllocsPerOp >= 0 {
			e.BaselineAllocs = base.AllocsPerOp
		}
		if e.NsPerOp > 0 {
			e.SpeedupVsBase = base.NsPerOp / e.NsPerOp
		}
	}
	rep.Benchmarks = append(rep.Benchmarks, e)
	fmt.Printf("%-24s %12.1f ns/op %8d allocs/op %10d B/op\n",
		name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
}

// addFault records a fault-campaign entry: ns/op covers one whole
// replay of n injections, so throughput is n injected runs per op.
func (rep *report) addFault(name string, r testing.BenchmarkResult, n int) {
	e := entry{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if e.NsPerOp > 0 {
		e.InjectionsPerSec = float64(n) * 1e9 / e.NsPerOp
	}
	rep.Benchmarks = append(rep.Benchmarks, e)
	fmt.Printf("%-24s %12.1f ns/op %8d allocs/op %10d B/op  %8.0f injections/s\n",
		name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp, e.InjectionsPerSec)
}

func (rep *report) addExperiment(id string, batched, unbatched, naive testing.BenchmarkResult, bs0, bs1 machine.BatchStats) {
	e := entry{
		Name:        "experiment/" + id,
		NsPerOp:     float64(batched.T.Nanoseconds()) / float64(batched.N),
		AllocsPerOp: batched.AllocsPerOp(),
		BytesPerOp:  batched.AllocedBytesPerOp(),
	}
	e.BaselineNsPerOp = float64(naive.T.Nanoseconds()) / float64(naive.N)
	e.BaselineAllocs = naive.AllocsPerOp()
	e.UnbatchedNsPerOp = float64(unbatched.T.Nanoseconds()) / float64(unbatched.N)
	if e.NsPerOp > 0 {
		e.SpeedupVsBase = e.BaselineNsPerOp / e.NsPerOp
		e.SpeedupVsUnbatched = e.UnbatchedNsPerOp / e.NsPerOp
	}
	if pre, ok := experimentBaselines[id]; ok {
		e.PreTreeNsPerOp = pre
		if e.NsPerOp > 0 {
			e.SpeedupVsPreTree = pre / e.NsPerOp
		}
	}
	d := machine.BatchStats{
		Batches:    bs1.Batches - bs0.Batches,
		Lanes:      bs1.Lanes - bs0.Lanes,
		LaneCycles: bs1.LaneCycles - bs0.LaneCycles,
		WallCycles: bs1.WallCycles - bs0.WallCycles,
	}
	e.BatchAvgWidth = d.AvgWidth()
	e.BatchAvgLiveLanes = d.Occupancy()
	rep.Benchmarks = append(rep.Benchmarks, e)
	fmt.Printf("%-24s %12.1f ns/op %8d allocs/op %10d B/op  %5.2fx vs naive, %5.2fx vs unbatched, width %.1f, live %.1f\n",
		e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp, e.SpeedupVsBase, e.SpeedupVsUnbatched, e.BatchAvgWidth, e.BatchAvgLiveLanes)
}

// benchDaemon boots the ckptd serving core in-process (same worker
// count as the daemon's default) and drives it with a ckptload-style
// mix — two passes over 128 distinct specs (112 single sims plus 16
// sweep jobs, which route through the batch-lockstep engine), eight
// concurrent clients, so the second pass exercises the result cache —
// then reports the daemon's own sim-insts/sec metric. BENCH_4 measured
// an all-sim mix over real HTTP against a separate process; the
// in-process transport shaves constant per-request cost from both
// sides of any comparison, while sim-insts/sec is dominated by
// execution throughput either way.
func benchDaemon() *daemonBench {
	const (
		nSpecs  = 128
		clients = 8
		passes  = 2
	)
	srv := service.MustNew(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	mix := buildMix(nSpecs)

	bs0 := machine.ReadBatchStats()
	start := time.Now()
	for pass := 0; pass < passes; pass++ {
		driveMix(ctx, cl, mix, clients)
	}
	elapsed := time.Since(start)
	met, err := cl.Metrics(ctx)
	if err != nil {
		fatal(err)
	}
	bs1 := machine.ReadBatchStats()
	if err := srv.Drain(ctx); err != nil {
		fatal(err)
	}

	d := &daemonBench{
		Workers:         2, // service.Config default, same as ckptd's -workers default
		Requests:        passes * nSpecs,
		ElapsedMs:       elapsed.Milliseconds(),
		RPS:             float64(passes*nSpecs) / elapsed.Seconds(),
		CacheHits:       int64(nested(met, "cache", "hits")),
		CacheMisses:     int64(nested(met, "cache", "misses")),
		SimInsts:        int64(metNum(met, "sim_insts")),
		SimInstsPerSec:  metNum(met, "sim_insts_per_sec"),
		BatchSingleRuns: bs1.SingleRuns - bs0.SingleRuns,
		BatchBatches:    bs1.Batches - bs0.Batches,
	}
	fmt.Printf("%-24s %d req in %d ms (%.0f rps), %d hits/%d misses, %.0f sim insts/s\n",
		"daemon/ckptload-mix", d.Requests, d.ElapsedMs, d.RPS, d.CacheHits, d.CacheMisses, d.SimInstsPerSec)
	return d
}

// benchCluster drives a sweep-and-campaign-heavy mix through an
// in-process cluster (real HTTP between coordinator and workers) at
// 1, 2, and 4 workers. Sweeps fan out as batch sub-jobs and campaigns
// as plan shards, so the dispatch counters show the sub-job traffic;
// each scale gets a fresh cluster so no result cache carries over.
func benchCluster() *clusterBench {
	const clients = 8
	mix := buildMix(48)
	for _, seed := range []int64{7001, 7002, 7003, 7004} {
		mix = append(mix, service.Spec{Kind: "campaign", Workload: "fib",
			Campaign: &service.CampaignSpec{Seed: seed, Stride: 8, Models: []string{"fu-detected"}}})
	}

	cb := &clusterBench{
		Note: "single host: workers share the machine's cores, so rps is flat by design; " +
			"the spread across scales bounds routing+serialization overhead, and the dispatch " +
			"counters show the sub-job fan-out (cf. BENCH_1 runall note)",
	}
	for _, nWorkers := range []int{1, 2, 4} {
		cl, err := clustertest.Start(clustertest.Config{Workers: nWorkers})
		if err != nil {
			fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		start := time.Now()
		driveMix(ctx, client.New(cl.CoordURL), mix, clients)
		elapsed := time.Since(start)
		counters := cl.Coord.Dispatcher().Counters()
		view := cl.Coord.MetricsView()
		fallbacks, _ := view["local_fallbacks"].(int64)
		cancel()
		cl.Close()

		cb.Scales = append(cb.Scales, clusterScale{
			Workers:        nWorkers,
			Requests:       len(mix),
			ElapsedMs:      elapsed.Milliseconds(),
			RPS:            float64(len(mix)) / elapsed.Seconds(),
			Dispatch:       counters,
			LocalFallbacks: fallbacks,
		})
		fmt.Printf("%-24s %d req in %d ms (%.0f rps), %d dispatched, %d retries, %d peer fetches, %d fallbacks\n",
			fmt.Sprintf("cluster/%d-workers", nWorkers), len(mix), elapsed.Milliseconds(),
			float64(len(mix))/elapsed.Seconds(), counters.Dispatched, counters.Retries,
			counters.PeerFetches, fallbacks)
	}
	return cb
}

// buildMix assembles the ckptload-style spec mix: seven single sims
// per sweep job, cycling kernels and schemes so every spec is distinct.
func buildMix(nSpecs int) []service.Spec {
	kernels := []string{"fib", "memcpy", "dotprod", "listsum", "bubble", "crc"}
	schemes := []service.MachineSpec{
		{},
		{Scheme: "b"},
		{Scheme: "tight", C: 8},
		{Scheme: "loose"},
		{Scheme: "direct"},
	}
	sweeps := []string{"C2", "C5", "C7", "C9", "C10", "C11", "A4", "A5"}
	mix := make([]service.Spec, 0, nSpecs)
	for i := 0; len(mix) < nSpecs; i++ {
		if i%8 == 7 {
			mix = append(mix, service.Spec{
				Kind:       "sweep",
				Experiment: sweeps[(i/8)%len(sweeps)],
			})
			continue
		}
		mix = append(mix, service.Spec{
			Kind:     "sim",
			Workload: kernels[i%len(kernels)],
			Machine:  schemes[(i/len(kernels))%len(schemes)],
		})
	}
	return mix
}

// driveMix submits every spec through the client with bounded
// concurrency, failing the bench on any job error.
func driveMix(ctx context.Context, cl *client.Client, mix []service.Spec, clients int) {
	sem := make(chan struct{}, clients)
	var wg sync.WaitGroup
	for _, spec := range mix {
		sem <- struct{}{}
		wg.Add(1)
		go func(spec service.Spec) {
			defer wg.Done()
			defer func() { <-sem }()
			sr, err := cl.Run(ctx, spec)
			if err != nil {
				fatal(fmt.Errorf("bench mix: %w", err))
			}
			if sr.Job.State != service.StateDone {
				fatal(fmt.Errorf("bench mix: job %s: state=%s error=%q", sr.Job.ID, sr.Job.State, sr.Job.Error))
			}
		}(spec)
	}
	wg.Wait()
}

// storeBench is the cold-vs-warm restart section: the same spec mix
// executed by a fresh daemon with an empty store directory, then by a
// second fresh daemon over the now-populated directory. The warm
// daemon never simulates — every answer comes off disk — so the ratio
// is the end-to-end value of persistence across a restart.
type storeBench struct {
	Specs       int     `json:"specs"`
	ColdMs      int64   `json:"cold_ms"`
	WarmMs      int64   `json:"warm_ms"`
	Speedup     float64 `json:"speedup"`
	DiskHits    int64   `json:"disk_hits"`
	DiskEntries int64   `json:"disk_entries"`
	DiskBytes   int64   `json:"disk_bytes"`
}

func benchStore() *storeBench {
	const (
		nSpecs  = 128
		clients = 8
	)
	dir, err := os.MkdirTemp("", "bench-store-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	mix := buildMix(nSpecs)

	// StoreMinCost 0: persist everything, so the warm pass is pure
	// store reads with no recompute-threshold gaps. Earlier bench
	// sections already warmed the process-wide trace memos, which only
	// makes the cold pass faster — the reported speedup is a floor.
	boot := func() *service.Server {
		return service.MustNew(service.Config{StoreDir: dir})
	}
	run := func(srv *service.Server) (time.Duration, map[string]any) {
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		cl := client.New(ts.URL)
		start := time.Now()
		driveMix(ctx, cl, mix, clients)
		elapsed := time.Since(start)
		met, err := cl.Metrics(ctx)
		if err != nil {
			fatal(err)
		}
		if err := srv.Drain(ctx); err != nil {
			fatal(err)
		}
		return elapsed, met
	}

	cold, _ := run(boot())
	warm, met := run(boot()) // a fresh daemon over the populated store

	s := &storeBench{
		Specs:       nSpecs,
		ColdMs:      cold.Milliseconds(),
		WarmMs:      warm.Milliseconds(),
		Speedup:     float64(cold.Nanoseconds()) / float64(warm.Nanoseconds()),
		DiskHits:    int64(nested(met, "store", "disk_hits")),
		DiskEntries: int64(nested(met, "store", "disk_entries")),
		DiskBytes:   int64(nested(met, "store", "disk_bytes")),
	}
	fmt.Printf("%-24s cold %d ms -> warm %d ms (%.1fx), %d disk hits, %d entries, %d B\n",
		"store/restart", s.ColdMs, s.WarmMs, s.Speedup, s.DiskHits, s.DiskEntries, s.DiskBytes)
	return s
}

// campaignBench is the kill-and-resume section: one campaign run from
// scratch, the same campaign killed mid-flight (context cancel once
// half its injections are checkpointed), then resumed from the saved
// progress record. The resumed run's outcome table must be
// byte-identical to the from-scratch run's.
type campaignBench struct {
	Workload    string  `json:"workload"`
	Injections  int     `json:"injections"`
	ScratchMs   int64   `json:"scratch_ms"`
	KilledDone  int     `json:"killed_done"`
	ResumeMs    int64   `json:"resume_ms"`
	ResumeRatio float64 `json:"resume_ratio"`
	Resumed     int     `json:"resumed"`
	// Placement is the checkpoint-placement solution of the campaign's
	// plan: optimal-DP vs naive uniform spacing vs no snapshots, in
	// total replay cycles over the injection set.
	PlacementBudget      int     `json:"placement_budget"`
	PlacementSnapshots   int     `json:"placement_snapshots"`
	ReplayCycles         int64   `json:"replay_cycles"`
	UniformReplayCycles  int64   `json:"uniform_replay_cycles"`
	FullReplayCycles     int64   `json:"full_replay_cycles"`
	ImprovementVsUniform float64 `json:"improvement_vs_uniform"`
}

// killingCkpt is an in-memory fault.Checkpointer that cancels the
// campaign's context once killAt injections have been persisted —
// the process-internal stand-in for kill -9 halfway through.
type killingCkpt struct {
	mu     sync.Mutex
	data   []byte
	ok     bool
	cancel context.CancelFunc
	killAt int
}

func (c *killingCkpt) Load() ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.ok {
		return nil, false
	}
	return append([]byte(nil), c.data...), true
}

func (c *killingCkpt) Save(b []byte) error {
	c.mu.Lock()
	c.data = append(c.data[:0], b...)
	c.ok = true
	kill := false
	if c.cancel != nil {
		var pf struct {
			Done []json.RawMessage `json:"done"`
		}
		json.Unmarshal(b, &pf)
		kill = len(pf.Done) >= c.killAt
	}
	c.mu.Unlock()
	if kill {
		c.cancel()
	}
	return nil
}

func benchCampaign() *campaignBench {
	k, err := workload.ByName("dotprod")
	if err != nil {
		fatal(err)
	}
	p := k.Load()
	mk := func() machine.Config {
		return machine.Config{
			Scheme:    core.NewSchemeE(4, 8, 0),
			Speculate: false,
			MemSystem: machine.MemBackward3b,
		}
	}
	cc := fault.Config{Seed: 1987, MaxWords: 8}

	// From-scratch wall-clock (no checkpointer).
	start := time.Now()
	scratch, err := fault.Run(context.Background(), p, mk, cc)
	if err != nil {
		fatal(err)
	}
	scratchMs := time.Since(start)
	n := len(scratch.Plan.Exec)

	// Kill at 50%: save every ~5% so the cancel lands near the target.
	ck := &killingCkpt{killAt: n / 2}
	ctx, cancel := context.WithCancel(context.Background())
	ck.cancel = cancel
	kcc := cc
	kcc.Ckpt = ck
	kcc.CkptEvery = n / 20
	if _, err := fault.Run(ctx, p, mk, kcc); err == nil {
		fatal(fmt.Errorf("campaign bench: killed run unexpectedly completed"))
	}
	ck.cancel = nil
	var pf struct {
		Done []json.RawMessage `json:"done"`
	}
	json.Unmarshal(ck.data, &pf)

	// Resume from the saved record.
	start = time.Now()
	resumed, err := fault.Run(context.Background(), p, mk, kcc)
	if err != nil {
		fatal(err)
	}
	resumeMs := time.Since(start)
	if got, want := resumed.Table("FC").String(), scratch.Table("FC").String(); got != want {
		fatal(fmt.Errorf("campaign bench: resumed outcome table differs from from-scratch run:\n%s\nvs\n%s", got, want))
	}

	c := &campaignBench{
		Workload:    p.Name,
		Injections:  n,
		ScratchMs:   scratchMs.Milliseconds(),
		KilledDone:  len(pf.Done),
		ResumeMs:    resumeMs.Milliseconds(),
		ResumeRatio: float64(resumeMs.Nanoseconds()) / float64(scratchMs.Nanoseconds()),
		Resumed:     resumed.Resumed,
	}
	if pl := scratch.Plan.Placement; pl != nil {
		c.PlacementBudget = pl.Budget
		c.PlacementSnapshots = len(pl.Events)
		c.ReplayCycles = pl.ReplayCycles
		c.UniformReplayCycles = pl.UniformReplayCycles
		c.FullReplayCycles = pl.FullReplayCycles
		if pl.UniformReplayCycles > 0 {
			c.ImprovementVsUniform = 1 - float64(pl.ReplayCycles)/float64(pl.UniformReplayCycles)
		}
	}
	fmt.Printf("%-24s %d injections: scratch %d ms, killed at %d done, resume %d ms (%.2fx of scratch); placement %d/%d snapshots, replay %d cyc vs uniform %d vs full %d\n",
		"campaign/kill-resume", c.Injections, c.ScratchMs, c.KilledDone, c.ResumeMs, c.ResumeRatio,
		c.PlacementSnapshots, c.PlacementBudget, c.ReplayCycles, c.UniformReplayCycles, c.FullReplayCycles)
	return c
}

// metNum reads a top-level numeric metric from a /metrics document.
func metNum(m map[string]any, key string) float64 {
	v, _ := m[key].(float64)
	return v
}

// nested reads a numeric metric one map level down.
func nested(m map[string]any, section, key string) float64 {
	s, _ := m[section].(map[string]any)
	v, _ := s[key].(float64)
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
