package workload

import (
	"sync"
	"testing"
)

// TestLoadMemoized: Load assembles a kernel once per process; every
// later call returns the same *prog.Program, so per-program caches
// further down the stack (the reference-trace cache) hit across runs.
func TestLoadMemoized(t *testing.T) {
	for _, k := range Kernels() {
		if k.Load() != k.Load() {
			t.Fatalf("%s: Load returned distinct program instances", k.Name)
		}
	}
}

// TestLoadConcurrent hammers Load from many goroutines for every
// kernel; run under -race (the Makefile race target covers this
// package) it proves the memoization is concurrency-safe, and it pins
// the single-winner property: all callers observe one instance.
func TestLoadConcurrent(t *testing.T) {
	for _, k := range Kernels() {
		const goroutines = 16
		got := make([]any, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					got[g] = k.Load()
				}
			}(g)
		}
		wg.Wait()
		for g := 1; g < goroutines; g++ {
			if got[g] != got[0] {
				t.Fatalf("%s: goroutines observed different program instances", k.Name)
			}
		}
	}
}
