#!/bin/sh
# Cluster smoke test: boot a coordinator with two workers plus an
# independent single-node daemon (all real ckptd processes on free
# ports), push one sweep, one campaign, and two sims through the
# cluster path with ckptload -diff-addr, and require the coordinator's
# assembled outputs to be byte-identical to the single node's. Then
# SIGTERM everything and require clean drains.
#
# Used by `make cluster-smoke` (and therefore `make ci`).
set -eu

workdir=$(mktemp -d)
status=1

pids=""
cleanup() {
    for pid in $pids; do
        if kill -0 "$pid" 2>/dev/null; then
            kill -TERM "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    if [ "$status" -ne 0 ]; then
        for log in "$workdir"/*.log; do
            echo "--- $log ---" >&2
            cat "$log" >&2 || true
        done
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/ckptd" ./cmd/ckptd
go build -o "$workdir/ckptload" ./cmd/ckptload

# wait_addr <file>: block until a daemon publishes its bound address.
wait_addr() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "cluster-smoke: no address in $1 after 5s" >&2
            exit 1
        fi
        sleep 0.1
    done
    cat "$1"
}

"$workdir/ckptd" -coordinator -addr 127.0.0.1:0 -addrfile "$workdir/coord.addr" \
    -workers 2 >"$workdir/coord.log" 2>&1 &
pids="$pids $!"
coord=$(wait_addr "$workdir/coord.addr")
echo "cluster-smoke: coordinator on $coord"

for w in 1 2; do
    "$workdir/ckptd" -worker -join "http://$coord" -addr 127.0.0.1:0 \
        -addrfile "$workdir/worker$w.addr" -worker-id "smoke-w$w" \
        -heartbeat 1s -workers 2 >"$workdir/worker$w.log" 2>&1 &
    pids="$pids $!"
    wait_addr "$workdir/worker$w.addr" >/dev/null
done
echo "cluster-smoke: 2 workers registered"

"$workdir/ckptd" -addr 127.0.0.1:0 -addrfile "$workdir/single.addr" \
    -workers 2 >"$workdir/single.log" 2>&1 &
pids="$pids $!"
single=$(wait_addr "$workdir/single.addr")
echo "cluster-smoke: single-node reference on $single"

# The diff run: same specs to the coordinator and the lone daemon,
# byte-compared. Exits non-zero on any divergence.
"$workdir/ckptload" -addr "http://$coord" -diff-addr "http://$single" \
    >"$workdir/ckptload.out" 2>&1 || {
    echo "cluster-smoke: cluster output diverged from single node" >&2
    cat "$workdir/ckptload.out" >&2
    exit 1
}
cat "$workdir/ckptload.out"

# The cluster must actually have dispatched sub-jobs (otherwise this
# proved nothing): the coordinator's /metrics cluster section says so.
dispatched=$(curl -sf "http://$coord/metrics" \
    | sed -n 's/.*"dispatched":[[:space:]]*\([0-9][0-9]*\).*/\1/p' | head -n 1)
if [ -z "$dispatched" ] || [ "$dispatched" -eq 0 ]; then
    echo "cluster-smoke: coordinator never dispatched a sub-job" >&2
    exit 1
fi
echo "cluster-smoke: $dispatched sub-jobs dispatched to workers"

# Graceful shutdown, workers first so the coordinator sees them leave.
for pid in $pids; do
    kill -TERM "$pid" 2>/dev/null || true
done
for pid in $pids; do
    if ! wait "$pid"; then
        echo "cluster-smoke: a daemon did not exit cleanly on SIGTERM" >&2
        exit 1
    fi
done
pids=""

for log in coord worker1 worker2 single; do
    grep -q "drained clean" "$workdir/$log.log" || {
        echo "cluster-smoke: $log missing clean-drain marker" >&2
        exit 1
    }
done

status=0
echo "cluster-smoke: ok (byte-identical cluster vs single-node, clean drains)"
