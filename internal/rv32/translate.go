package rv32

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Translation: one internal instruction per rv32 word, identity
// address mapping (instruction index = byte address / 4). The whole
// lowering table lives in lower(); DESIGN.md §12 documents it.
//
// The text bytes are also mapped into data memory at their rv32
// addresses, so PC-relative data reads (jump tables, inline rodata)
// work — a von Neumann read view over a Harvard execution model.
// Self-modifying code stays excluded, exactly as in the paper's
// execution model: stores into the text region hit data memory only.

// maxTextBase bounds the halt-padding prefix that a non-zero text base
// costs under the identity mapping (1 MiB of address space = 256K
// padding slots).
const maxTextBase = 1 << 20

// TranslateError reports an rv32 instruction with no internal-ISA
// lowering.
type TranslateError struct {
	Name   string
	Addr   uint32 // byte address of the offending word
	Reason string
}

func (e *TranslateError) Error() string {
	return fmt.Sprintf("rv32: translate %q at %#x: %s", e.Name, e.Addr, e.Reason)
}

// Translate lowers a loaded image into an executable program over the
// internal ISA.
func Translate(img *Image) (*prog.Program, error) {
	if img.TextBase%4 != 0 {
		return nil, &TranslateError{img.Name, img.TextBase, "text base not 4-aligned"}
	}
	if img.TextBase > maxTextBase {
		return nil, &TranslateError{img.Name, img.TextBase, fmt.Sprintf("text base above %#x unsupported by the identity mapping", maxTextBase)}
	}
	if len(img.Text) == 0 || len(img.Text)%4 != 0 {
		return nil, &TranslateError{img.Name, img.TextBase, "text size not a positive multiple of 4"}
	}
	textEnd := img.TextBase + uint32(len(img.Text))
	if img.Entry < img.TextBase || img.Entry >= textEnd || img.Entry%4 != 0 {
		return nil, &TranslateError{img.Name, img.Entry, "entry outside text or misaligned"}
	}

	pad := int(img.TextBase / 4)
	code := make([]isa.Inst, pad, pad+len(img.Text)/4)
	for i := range code {
		// Nothing legitimate executes below the text base; landing there
		// stops the machine like running off the image does.
		code[i] = isa.Inst{Op: isa.OpHALT}
	}
	for off := 0; off < len(img.Text); off += 4 {
		addr := img.TextBase + uint32(off)
		w := binary.LittleEndian.Uint32(img.Text[off:])
		in, err := lower(w, addr)
		if err != nil {
			if _, undecodable := err.(*DecodeError); undecodable {
				// A data word inside the text image (inline constant
				// pool, rodata after code). It is readable through the
				// data view; executing it halts.
				code = append(code, isa.Inst{Op: isa.OpHALT})
				continue
			}
			return nil, &TranslateError{img.Name, addr, err.Error()}
		}
		code = append(code, in)
	}

	// Data words inside the text image can decode as branches or jumps
	// whose targets land outside the image (prog.Validate rejects
	// those). They were never meant to execute, so — like undecodable
	// data words — they lower to halting instructions. Decodable data
	// words with in-range targets stay as harmless ordinary
	// instructions; all engines agree on them either way.
	for pc, in := range code {
		var target int
		switch in.Op.Format() {
		case isa.FormatBr:
			target = pc + 1 + int(in.Imm)
		case isa.FormatJ:
			target = int(in.Imm)
		default:
			continue
		}
		if target < 0 || target >= len(code) {
			code[pc] = isa.Inst{Op: isa.OpHALT}
		}
	}

	p := &prog.Program{
		Name:  img.Name,
		Code:  code,
		Entry: int(img.Entry / 4),
		Symbols: map[string]int32{
			"_start": int32(img.Entry / 4),
		},
	}
	text := make([]byte, len(img.Text))
	copy(text, img.Text)
	p.Data = append(p.Data, prog.Segment{Addr: img.TextBase, Data: text})
	p.Data = append(p.Data, img.Data...)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// lower translates one decodable rv32 word at the given byte address
// into the equivalent internal instruction.
func lower(w, addr uint32) (isa.Inst, error) {
	rin, err := Decode(w)
	if err != nil {
		return isa.Inst{}, err
	}
	rd, rs1, rs2 := isa.Reg(rin.Rd), isa.Reg(rin.Rs1), isa.Reg(rin.Rs2)
	pc := int32(addr / 4)

	rrr := func(op isa.Op) (isa.Inst, error) {
		return isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
	}
	rri := func(op isa.Op) (isa.Inst, error) {
		return isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: rin.Imm}, nil
	}
	load := func(op isa.Op) (isa.Inst, error) {
		return isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: rin.Imm}, nil
	}
	store := func(op isa.Op) (isa.Inst, error) {
		return isa.Inst{Op: op, Rs2: rs2, Rs1: rs1, Imm: rin.Imm}, nil
	}
	branch := func(op isa.Op) (isa.Inst, error) {
		target := addr + uint32(rin.Imm)
		if target%4 != 0 {
			// A genuine rv32i branch target is always word-aligned (we
			// require non-RVC code); a 2-aligned target means this word
			// is data that happens to decode — treat it like any other
			// data word (DecodeError → halting slot).
			return isa.Inst{}, &DecodeError{w, fmt.Sprintf("branch target %#x not 4-aligned (data word or RVC code)", target)}
		}
		return isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: int32(target/4) - pc - 1}, nil
	}

	switch rin.Op {
	case OpLUI:
		return isa.Inst{Op: isa.OpLI, Rd: rd, Imm: rin.Imm}, nil
	case OpAUIPC:
		// The instruction's absolute address is known at translation
		// time, so auipc collapses to a constant load.
		return isa.Inst{Op: isa.OpLI, Rd: rd, Imm: int32(addr) + rin.Imm}, nil
	case OpJAL:
		target := addr + uint32(rin.Imm)
		if target%4 != 0 {
			return isa.Inst{}, &DecodeError{w, fmt.Sprintf("jump target %#x not 4-aligned (data word or RVC code)", target)}
		}
		if rd == 0 {
			return isa.Inst{Op: isa.OpJ, Imm: int32(target / 4)}, nil
		}
		return isa.Inst{Op: isa.OpJALA, Rd: rd, Imm: int32(target / 4)}, nil
	case OpJALR:
		if rd == 0 {
			return isa.Inst{Op: isa.OpJRA, Rs1: rs1, Imm: rin.Imm}, nil
		}
		return isa.Inst{Op: isa.OpJALRA, Rd: rd, Rs1: rs1, Imm: rin.Imm}, nil
	case OpBEQ:
		return branch(isa.OpBEQ)
	case OpBNE:
		return branch(isa.OpBNE)
	case OpBLT:
		return branch(isa.OpBLT)
	case OpBGE:
		return branch(isa.OpBGE)
	case OpBLTU:
		return branch(isa.OpBLTU)
	case OpBGEU:
		return branch(isa.OpBGEU)
	case OpLB:
		return load(isa.OpLB)
	case OpLH:
		return load(isa.OpLH)
	case OpLW:
		return load(isa.OpLW)
	case OpLBU:
		return load(isa.OpLBU)
	case OpLHU:
		return load(isa.OpLHU)
	case OpSB:
		return store(isa.OpSB)
	case OpSH:
		return store(isa.OpSH)
	case OpSW:
		return store(isa.OpSW)
	case OpADDI:
		return rri(isa.OpADDI)
	case OpSLTI:
		return rri(isa.OpSLTI)
	case OpSLTIU:
		return rri(isa.OpSLTIU)
	case OpXORI:
		return rri(isa.OpXORI)
	case OpORI:
		return rri(isa.OpORI)
	case OpANDI:
		return rri(isa.OpANDI)
	case OpSLLI:
		return rri(isa.OpSLLI)
	case OpSRLI:
		return rri(isa.OpSRLI)
	case OpSRAI:
		return rri(isa.OpSRAI)
	case OpADD:
		return rrr(isa.OpADD)
	case OpSUB:
		return rrr(isa.OpSUB)
	case OpSLL:
		return rrr(isa.OpSLL)
	case OpSLT:
		return rrr(isa.OpSLT)
	case OpSLTU:
		return rrr(isa.OpSLTU)
	case OpXOR:
		return rrr(isa.OpXOR)
	case OpSRL:
		return rrr(isa.OpSRL)
	case OpSRA:
		return rrr(isa.OpSRA)
	case OpOR:
		return rrr(isa.OpOR)
	case OpAND:
		return rrr(isa.OpAND)
	case OpMUL:
		return rrr(isa.OpMUL)
	case OpDIV:
		// Divergence note: rv32 DIV by zero returns -1; the internal
		// ISA faults (ActSkip leaves rd unchanged). DESIGN.md §12.
		return rrr(isa.OpDIV)
	case OpREM:
		return rrr(isa.OpREM)
	case OpMULH, OpMULHSU, OpMULHU, OpDIVU, OpREMU:
		return isa.Inst{}, fmt.Errorf("%v has no internal-ISA lowering", rin.Op)
	case OpFENCE, OpFENCEI:
		// Single memory, no reordering across the architectural model.
		return isa.Inst{Op: isa.OpNOP}, nil
	case OpECALL:
		// Environment call → software trap 0: logged, execution
		// continues (ActContinue).
		return isa.Inst{Op: isa.OpTRAP, Imm: 0}, nil
	case OpEBREAK:
		// Termination convention: ebreak stops the machine.
		return isa.Inst{Op: isa.OpHALT}, nil
	}
	return isa.Inst{}, fmt.Errorf("unhandled rv32 op %v", rin.Op)
}

// Listing renders a side-by-side translation listing: address, raw
// word, rv32 disassembly, and the lowered internal instruction. Used
// by ckptasm's -rv32 mode for corpus inspection.
func Listing(img *Image) (string, error) {
	p, err := Translate(img)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "; %s: text [%#x,%#x) entry %#x, %d data segment(s)\n",
		img.Name, img.TextBase, img.TextBase+uint32(len(img.Text)), img.Entry, len(img.Data))
	for off := 0; off < len(img.Text); off += 4 {
		addr := img.TextBase + uint32(off)
		w := binary.LittleEndian.Uint32(img.Text[off:])
		pc := int(addr / 4)
		mark := "  "
		if pc == p.Entry {
			mark = "=>"
		}
		rin, err := Decode(w)
		if err != nil {
			fmt.Fprintf(&b, "%s %#08x: %08x  %-28s %s\n", mark, addr, w, ".word (data)", p.Code[pc])
			continue
		}
		fmt.Fprintf(&b, "%s %#08x: %08x  %-28s %s\n", mark, addr, w, rin.String(), p.Code[pc])
	}
	return b.String(), nil
}
