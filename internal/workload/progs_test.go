package workload

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
	"repro/internal/refsim"
)

// TestExampleProgramsAssembleAndRun keeps the sample .s programs under
// examples/progs working: they must assemble, run to completion on the
// reference interpreter, and produce their documented results.
func TestExampleProgramsAssembleAndRun(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "progs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("no examples/progs: %v", err)
	}
	want := map[string]struct {
		addr uint32
		val  uint32
	}{
		"gcd.s":     {0x1000, 21},
		"collatz.s": {0x1000, 111},
	}
	ran := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".s" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		p, err := asm.Assemble(e.Name(), string(src))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		res, err := refsim.Run(p, refsim.Options{})
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if !res.Halted {
			t.Fatalf("%s: did not halt", e.Name())
		}
		if w, ok := want[e.Name()]; ok {
			v, _ := res.Mem.Read32(w.addr)
			if v != w.val {
				t.Errorf("%s: result %d, want %d", e.Name(), v, w.val)
			}
		}
		ran++
	}
	if ran < 3 {
		t.Errorf("only %d sample programs found", ran)
	}
	// vsum.s: z = x + y elementwise.
	src, _ := os.ReadFile(filepath.Join(dir, "vsum.s"))
	p, _ := asm.Assemble("vsum", string(src))
	res, _ := refsim.Run(p, refsim.Options{})
	for i := uint32(0); i < 16; i++ {
		v, _ := res.Mem.Read32(uint32(p.Symbols["zs"]) + 4*i)
		if v != (i+1)+10*(i+1) {
			t.Errorf("vsum z[%d] = %d", i, v)
		}
	}
}
