package experiments

import (
	"context"
	"fmt"

	"repro/internal/asm"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/prog"
	"repro/internal/workload"
)

// The A-series are ablations of this reproduction's design choices —
// not artefacts of the paper, but the studies its §3.1/§6 discussion
// anticipates ("simulation and hardware design are being conducted to
// evaluate the time and hardware overhead incurred").

func init() {
	register("A1", "ablation: predictor quality vs repair machinery value", sweep(a1))
	register("A2", "ablation: machine width vs checkpoint overhead", sweep(a2))
	register("A3", "ablation: precise-mode budget after E-repair", sweep(a3))
	register("A4", "ablation: checkpoint distance under frequent exceptions", sweep(a4))
	register("A5", "ablation: memory checkpointing technique", sweep(a5))
}

// a1: the B-repair machinery's value is proportional to how often the
// predictor is wrong; the E machinery's cost is independent of it.
func a1(ctx context.Context) *Table {
	t := &Table{
		ID:    "A1",
		Title: "predictor quality on the branchy synthetic workload (tight(4))",
		Note: "B-repair cost scales with misprediction rate; at oracle accuracy the " +
			"repair machinery is pure insurance. The machinery itself never hurts: " +
			"cycles fall monotonically with accuracy.",
		Header: []string{"predictor", "accuracy", "B-repairs", "wrong-path ops", "cycles", "IPC"},
	}
	scfg := workload.DefaultSynth
	scfg.Iters = 800
	p := workload.Synth(scfg)
	preds := []bpred.Predictor{
		bpred.NewNotTaken(),
		bpred.NewBTFN(),
		bpred.NewBimodal(1024),
		bpred.NewSynthetic(0.85, 3),
		bpred.NewSynthetic(0.95, 3),
		bpred.NewOracle(),
	}
	jobs := make([]runJob, len(preds))
	for i, pr := range preds {
		jobs[i] = runJob{name: "synth", prog: p, cfg: machine.Config{
			Scheme:    core.NewSchemeTight(4, 0),
			Predictor: pr,
			Speculate: true,
			MemSystem: machine.MemBackward3b,
		}}
	}
	for i, res := range runParallel(ctx, jobs) {
		t.AddRow(preds[i].Name(), fmt.Sprintf("%.1f%%", res.PredictorAccuracy*100),
			res.Stats.BRepairs, res.Stats.WrongPath, res.Stats.Cycles,
			fmt.Sprintf("%.3f", res.Stats.IPC()))
	}
	return t
}

// a2: scaling the machine (issue width, window, units) should expose
// more ILP without the checkpoint machinery becoming the bottleneck.
func a2(ctx context.Context) *Table {
	t := &Table{
		ID:    "A2",
		Title: "machine width scaling (matmul kernel, tight(6))",
		Note: "Checkpoint bookkeeping must not cap a wider pipeline: IPC grows with " +
			"width while the scheme-stall share stays small. The window and CDB " +
			"scale with the issue width.",
		Header: []string{"width", "window", "cycles", "IPC", "scheme stalls", "rs-full stalls"},
	}
	k, _ := workload.ByName("matmul")
	p := k.Load()
	widths := []int{1, 2, 4, 8}
	jobs := make([]runJob, len(widths))
	tms := make([]machine.Timing, len(widths))
	for i, w := range widths {
		tm := machine.DefaultTiming
		tm.IssueWidth = w
		tm.CDBWidth = w
		tm.ALUUnits = w
		tm.MemPorts = (w + 1) / 2
		tm.Window = 16 * w
		tm.LSQ = 8 * w
		tms[i] = tm
		jobs[i] = runJob{name: "matmul", prog: p, cfg: machine.Config{
			Scheme:    core.NewSchemeTight(6, 0),
			Predictor: bpred.NewBimodal(1024),
			Speculate: true,
			MemSystem: machine.MemBackward3b,
			Timing:    tm,
		}}
	}
	for i, res := range runParallel(ctx, jobs) {
		t.AddRow(widths[i], tms[i].Window, res.Stats.Cycles, fmt.Sprintf("%.3f", res.Stats.IPC()),
			res.Stats.StallCycles[1], res.Stats.StallCycles[2])
	}
	return t
}

// a3: the paper's single-step phase runs "until ... all the
// instructions in the E-repair range ... have finished"; the budget
// controls how long the machine crawls after each repair.
func a3(ctx context.Context) *Table {
	t := &Table{
		ID:    "A3",
		Title: "precise-mode budget after E-repairs (pagedemo kernel, tight(4))",
		Note: "A tiny budget exits single-step mode before re-reaching the " +
			"exception, forcing extra repair rounds; a huge budget crawls through " +
			"work that full-speed mode would overlap. Correctness is identical " +
			"everywhere (golden-checked by the suite); only cycles move.",
		Header: []string{"budget", "E-repairs", "precise insts", "cycles"},
	}
	budgets := []int{2, 8, 32, 64, 256}
	jobs := make([]runJob, len(budgets))
	for i, budget := range budgets {
		jobs[i] = kernelJob("pagedemo", machine.Config{
			Scheme:        core.NewSchemeTight(4, 0),
			Predictor:     bpred.NewBimodal(1024),
			Speculate:     true,
			MemSystem:     machine.MemBackward3b,
			PreciseBudget: budget,
		})
	}
	for i, res := range runParallel(ctx, jobs) {
		t.AddRow(budgets[i], res.Stats.ERepairs, res.Stats.PreciseInsts, res.Stats.Cycles)
	}
	return t
}

// a4: §3.1 advises few spaces and large distances because "E-repair is
// a rare event ... up to a reasonable point". When exceptions are NOT
// rare, longer distances discard more useful work per repair and the
// advice inverts.
func a4(ctx context.Context) *Table {
	t := &Table{
		ID:    "A4",
		Title: "checkpoint distance when exceptions are frequent (schemeE(2))",
		Note: "With roughly one overflow trap per 250 instructions — 20x the " +
			"paper's assumed rate — each E-repair discards on average half a " +
			"segment of useful work, so total cycles eventually grow with distance: " +
			"the \"reasonable point\" the paper warns about. Squashed-op counts " +
			"grow with distance throughout.",
		Header: []string{"distance", "E-repairs", "squashed ops", "precise insts", "cycles"},
	}
	scfg := workload.SynthConfig{Name: "excheavy", Iters: 600, BranchesPerIter: 2, StoresPerIter: 1, ExcMask: 0x7, Seed: 5}
	p := workload.Synth(scfg)
	ds := []int{4, 8, 16, 32, 64}
	jobs := make([]runJob, len(ds))
	for i, d := range ds {
		jobs[i] = runJob{name: scfg.Name, prog: p, cfg: machine.Config{
			Scheme:    core.NewSchemeE(2, d, 0),
			Speculate: false,
			MemSystem: machine.MemBackward3b,
		}}
	}
	for i, res := range runParallel(ctx, jobs) {
		t.AddRow(ds[i], res.Stats.ERepairs, res.Scheme.SquashedOps, res.Stats.PreciseInsts, res.Stats.Cycles)
	}
	return t
}

// a5: backward (immediate write, undo on repair) vs forward (deferred
// write, discard on repair) across workload characters.
func a5(ctx context.Context) *Table {
	t := &Table{
		ID:    "A5",
		Title: "memory technique across workloads (tight(4), bimodal)",
		Note: "Backward differences pay per repair: the buffer pops undo entries " +
			"serially (charged one cycle each), so cost grows with squashed " +
			"stores. Forward differences discard in place — repair is free — at " +
			"the price of load snooping and retirement traffic. The forward " +
			"system therefore wins on B-repair-heavy runs, which is exactly " +
			"§4.1.2's argument for pairing forward differences with frequent " +
			"B-repairs and backward differences with rare E-repairs.",
		Header: []string{"kernel", "memsys", "cycles", "max buf occupancy", "undone", "discarded"},
	}
	names := []string{"sieve", "memcpy", "bubble", "hanoi"}
	memsys := []machine.MemSystemKind{machine.MemBackward3a, machine.MemBackward3b, machine.MemForward}
	var jobs []runJob
	for _, name := range names {
		for _, ms := range memsys {
			jobs = append(jobs, kernelJob(name, machine.Config{
				Scheme:    core.NewSchemeTight(4, 0),
				Predictor: bpred.NewBimodal(1024),
				Speculate: true,
				MemSystem: ms,
			}))
		}
	}
	for i, res := range runParallel(ctx, jobs) {
		t.AddRow(jobs[i].name, memsys[i%len(memsys)].String(), res.Stats.Cycles,
			res.Diff.MaxOccupancy, res.Diff.Undone, res.Diff.Discarded)
	}
	return t
}

func init() {
	register("A6", "ablation: multi-operation (vector) instructions", one(a6))
}

// a6: the §6 extension — instructions containing k operations (the
// paper's incr(k)). Vector encoding cuts fetch/issue slots per
// operation and shrinks the instruction count between checkpoints.
func a6() *Table {
	t := &Table{
		ID:    "A6",
		Title: "vector vs scalar encoding of the same 32-element add",
		Note: "Vector instructions carry VectorLen=4 operations, so the scheme's " +
			"issueE performs incr(4) per instruction (§3.1's k) and a checkpoint " +
			"range of D instructions can hold up to 4D memory writes — the reason " +
			"Definition 3 bounds writes (W) separately from instructions. Same " +
			"computation, same machine, two encodings.",
		Header: []string{"encoding", "retired instrs", "issued ops", "ops/instr", "cycles", "checkpoints"},
	}
	scalarSrc := `
    addi r1, r0, 32
    addi r2, r0, vx
    addi r3, r0, vy
    addi r4, r0, vz
sloop:
    lw   r8, 0(r2)
    lw   r9, 0(r3)
    add  r10, r8, r9
    sw   r10, 0(r4)
    addi r2, r2, 4
    addi r3, r3, 4
    addi r4, r4, 4
    addi r1, r1, -1
    bne  r1, r0, sloop
    halt
.data 0x1000
vx: .space 128
vy: .space 128
vz: .space 128
`
	scalar := asmMust("scalar-add", scalarSrc)
	k, _ := workload.ByName("vecadd")
	vector := k.Load()
	for _, row := range []struct {
		name string
		p    *prog.Program
	}{{"scalar", scalar}, {"vector", vector}} {
		res, err := simRun(row.p, machine.Config{
			Scheme:    core.NewSchemeTight(4, 0),
			Predictor: bpred.NewOracle(),
			Speculate: true,
			MemSystem: machine.MemBackward3b,
		})
		if err != nil {
			panic(err)
		}
		ratio := float64(res.Stats.Issued) / float64(res.Stats.Retired)
		t.AddRow(row.name, res.Stats.Retired, res.Stats.Issued,
			fmt.Sprintf("%.2f", ratio), res.Stats.Cycles, res.Stats.Checkpoints)
	}
	return t
}

// asmMust assembles a known-good experiment source.
func asmMust(name, src string) *prog.Program { return asm.MustAssemble(name, src) }
