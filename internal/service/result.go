package service

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/store"
)

// Result is the cached, content-addressed outcome of one execution.
// Everything in it is a pure function of the canonical spec, so every
// job that shares a cache key shares these bytes.
type Result struct {
	Key  string `json:"key"`
	Kind string `json:"kind"`
	Spec Spec   `json:"spec"`
	// Output is the human-readable rendering: the simulator summary,
	// the experiment's tables, or the campaign table.
	Output   string           `json:"output"`
	Sim      *SimSummary      `json:"sim,omitempty"`
	Campaign *CampaignSummary `json:"campaign,omitempty"`
	// Batch carries a batch sub-job's per-lane results (kind "batch").
	Batch *BatchResult `json:"batch,omitempty"`
	// CampaignShard carries a sharded campaign sub-job's slice of
	// outcomes (kind "campaign" with Shards > 1).
	CampaignShard *fault.ShardResult `json:"campaign_shard,omitempty"`
	// ElapsedMS is how long the execution took. It is informational
	// and excluded from any byte-identity guarantees only in the sense
	// that it is fixed at execution time: cache hits and coalesced jobs
	// all see the one value the single execution produced.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// SimSummary is the machine-readable core of a sim job's result.
type SimSummary struct {
	Cycles            int64   `json:"cycles"`
	Retired           int64   `json:"retired"`
	IPC               float64 `json:"ipc"`
	ERepairs          int64   `json:"e_repairs"`
	BRepairs          int64   `json:"b_repairs"`
	Checkpoints       int64   `json:"checkpoints"`
	Exceptions        int64   `json:"exceptions"`
	Mispredicts       int64   `json:"mispredicts"`
	PredictorAccuracy float64 `json:"predictor_accuracy"`
	Halted            bool    `json:"halted"`
}

// CampaignSummary is the machine-readable core of a campaign result.
type CampaignSummary struct {
	Raw      int `json:"raw"`
	Pruned   int `json:"pruned"`
	Executed int `json:"executed"`
	Masked   int `json:"masked"`
	Repaired int `json:"repaired"`
	Detected int `json:"detected"`
	SDC      int `json:"sdc"`
	Hang     int `json:"hang"`
	Crash    int `json:"crash"`
}

// storeCheckpointer adapts the result store's durable tier to the
// fault package's Checkpointer: campaign progress records persist
// under "camp-"+key regardless of the store's recompute-cost
// threshold, and are deleted when the campaign completes.
type storeCheckpointer struct {
	st  *store.Store
	key string
}

func (c *storeCheckpointer) Load() ([]byte, bool) { return c.st.Get(c.key) }
func (c *storeCheckpointer) Save(b []byte) error {
	c.st.Put(c.key, b, store.Durable)
	return nil
}

// campaignHooks carries the serving layer's campaign persistence into
// execute: where to checkpoint progress, and what to do when a run
// resumes or completes.
type campaignHooks struct {
	ckpt      fault.Checkpointer
	onResume  func(resumed int)
	onSuccess func()
}

// execute is the server-bound execution function: campaign jobs
// checkpoint their progress into the store, so a daemon restart (or a
// cancelled-then-resubmitted campaign) resumes instead of restarting.
func (s *Server) execute(ctx context.Context, key string, spec Spec) (*Result, error) {
	ck := &storeCheckpointer{st: s.store, key: "camp-" + key}
	h := &campaignHooks{
		ckpt:      ck,
		onResume:  func(int) { s.metrics.campaignResumes.Add(1) },
		onSuccess: func() { s.store.Delete(ck.key) },
	}
	return executeHooked(ctx, key, spec, h)
}

// execute runs one canonical spec to completion (or cancellation)
// without campaign persistence — the standalone-callable form the
// tests use. The worker pool calls the Server.execute wrapper; the
// test suite swaps that out via Server.executeHook to fake slow or
// failing jobs.
func execute(ctx context.Context, key string, spec Spec) (*Result, error) {
	return executeHooked(ctx, key, spec, nil)
}

func executeHooked(ctx context.Context, key string, spec Spec, h *campaignHooks) (*Result, error) {
	start := time.Now()
	res := &Result{Key: key, Kind: spec.Kind, Spec: spec}
	switch spec.Kind {
	case KindSim:
		p, err := spec.program()
		if err != nil {
			return nil, err
		}
		cfg, err := spec.Machine.machineConfig()
		if err != nil {
			return nil, err
		}
		r, err := experiments.Simulate(ctx, p, cfg)
		if err != nil {
			return nil, err
		}
		st := r.Stats
		res.Sim = &SimSummary{
			Cycles:            st.Cycles,
			Retired:           st.Retired,
			IPC:               st.IPC(),
			ERepairs:          st.ERepairs,
			BRepairs:          st.BRepairs,
			Checkpoints:       st.Checkpoints,
			Exceptions:        st.Exceptions,
			Mispredicts:       st.Mispredicts,
			PredictorAccuracy: r.PredictorAccuracy,
			Halted:            r.Halted,
		}
		res.Output = fmt.Sprintf(
			"%s on scheme %s: %d cycles, %d retired (IPC %.3f), %d E-repairs, %d B-repairs, %d checkpoints, %d exceptions",
			spec.Workload, spec.Machine.Scheme, st.Cycles, st.Retired, st.IPC(),
			st.ERepairs, st.BRepairs, st.Checkpoints, st.Exceptions)
	case KindSweep:
		ts, err := experiments.RunExperiment(ctx, spec.Experiment)
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		for i, t := range ts {
			if i > 0 {
				b.WriteString("\n")
			}
			b.WriteString(t.String())
		}
		res.Output = b.String()
	case KindCampaign:
		p, err := spec.program()
		if err != nil {
			return nil, err
		}
		if _, err := spec.Machine.machineConfig(); err != nil {
			return nil, err
		}
		// Schemes and predictors are stateful, so the campaign gets a
		// fresh config per injected run.
		mk := func() machine.Config {
			cfg, _ := spec.Machine.machineConfig()
			return cfg
		}
		cc, err := spec.campaignConfig()
		if err != nil {
			return nil, err
		}
		if cs := spec.Campaign; cs != nil && cs.Shards > 1 {
			// Cluster sub-job: execute one interleaved slice of the
			// plan. Shards skip progress checkpointing — they are small,
			// and the coordinator's retry is the recovery mechanism.
			sr, err := fault.RunShard(ctx, p, mk, cc, cs.Shard, cs.Shards)
			if err != nil {
				return nil, err
			}
			res.CampaignShard = sr
			res.Output = fmt.Sprintf("campaign shard %d/%d: %d injections (plan %.12s)",
				cs.Shard, cs.Shards, len(sr.Results), sr.Fingerprint)
			break
		}
		if h != nil {
			cc.Ckpt = h.ckpt
		}
		rep, err := fault.Run(ctx, p, mk, cc)
		if err != nil {
			return nil, err
		}
		if h != nil {
			if rep.Resumed > 0 {
				h.onResume(rep.Resumed)
			}
			h.onSuccess()
		}
		res.fillCampaign(rep)
	case KindBatch:
		p, err := batchPrograms.intern(spec.Batch)
		if err != nil {
			return nil, err
		}
		cfgs := make([]machine.Config, len(spec.Batch.Configs))
		for i, cb := range spec.Batch.Configs {
			cfg, err := cb.config()
			if err != nil {
				return nil, err
			}
			cfgs[i] = cfg
		}
		results, errs, err := experiments.RunConfigs(ctx, p, cfgs)
		if err != nil {
			return nil, err
		}
		res.Batch = EncodeBatchResults(results, errs)
		failed := 0
		for _, lane := range res.Batch.Lanes {
			if lane.ErrKind != "" {
				failed++
			}
		}
		res.Output = fmt.Sprintf("batch %s: %d lanes, %d failed", p.Name, len(cfgs), failed)
	default:
		return nil, fmt.Errorf("service: unknown job kind %q", spec.Kind)
	}
	res.ElapsedMS = time.Since(start).Milliseconds()
	return res, nil
}

// batchPrograms interns decoded batch programs process-wide; content
// hashing keys it, so sharing across servers in one process (the
// in-process cluster harness) is safe and keeps reference traces warm.
var batchPrograms = newProgramCache()

// fillCampaign renders a completed campaign report into the result —
// the one place the summary and table are produced, shared by local
// runs and the coordinator's shard merge so their bytes cannot drift.
func (r *Result) fillCampaign(rep *fault.Report) {
	r.Campaign = &CampaignSummary{
		Raw:      rep.Plan.Raw,
		Pruned:   len(rep.Plan.Pruned),
		Executed: len(rep.Plan.Exec),
		Masked:   rep.CountOutcome(fault.Masked),
		Repaired: rep.CountOutcome(fault.Repaired),
		Detected: rep.CountOutcome(fault.Detected),
		SDC:      rep.CountOutcome(fault.SDC),
		Hang:     rep.CountOutcome(fault.Hang),
		Crash:    rep.CountOutcome(fault.Crash),
	}
	r.Output = rep.Table("FC").String()
}

// campaignConfig converts the canonical campaign spec into the fault
// package's Config (canonical specs only — model names are validated).
func (s Spec) campaignConfig() (fault.Config, error) {
	cs := s.Campaign
	if cs == nil {
		return fault.Config{}, fmt.Errorf("service: campaign job without campaign spec")
	}
	byName := map[string]fault.Model{}
	for _, m := range fault.Models() {
		byName[m.String()] = m
	}
	var models []fault.Model
	for _, name := range cs.Models {
		m, ok := byName[name]
		if !ok {
			return fault.Config{}, fmt.Errorf("service: unknown fault model %q", name)
		}
		models = append(models, m)
	}
	return fault.Config{
		Seed:     cs.Seed,
		Models:   models,
		Stride:   cs.Stride,
		MaxWords: cs.MaxWords,
	}, nil
}
