package service

import (
	"context"
	"sync"
)

// entry is one single-flight execution: the set of jobs interested in
// one cache key, the context their combined interest keeps alive, and
// the result they will share. Exactly one queue slot and one worker
// serve an entry no matter how many jobs attach.
type entry struct {
	key  string
	spec Spec // canonical, job-scoped fields zeroed

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	waiters  []*Job
	running  bool
	complete bool
	res      *Result
	err      error
	done     chan struct{}
}

// attach registers a job's interest. If the execution already
// completed (a race against the worker), the job is finished on the
// spot.
func (e *entry) attach(j *Job) {
	e.mu.Lock()
	if e.complete {
		res, err := e.res, e.err
		e.mu.Unlock()
		j.finish(res, err)
		return
	}
	e.waiters = append(e.waiters, j)
	running := e.running
	e.mu.Unlock()
	j.mu.Lock()
	j.entry = e
	j.mu.Unlock()
	if running {
		j.markRunning()
	}
}

// start flags the entry as executing and returns the jobs attached so
// far, so the worker can move them to the running state.
func (e *entry) start() []*Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.running = true
	return append([]*Job(nil), e.waiters...)
}

// detach withdraws a job's interest. When the last interested job
// detaches before completion, the execution context is cancelled: a
// simulation nobody is waiting on unwinds out of the pool instead of
// burning workers.
func (e *entry) detach(j *Job) {
	e.mu.Lock()
	for i, w := range e.waiters {
		if w == j {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			break
		}
	}
	abandon := len(e.waiters) == 0 && !e.complete
	e.mu.Unlock()
	if abandon {
		e.cancel()
	}
}

// finishWaiters marks the entry complete and finishes every attached
// job. Called by the cache under its own lock discipline.
func (e *entry) finishWaiters(res *Result, err error) {
	e.mu.Lock()
	if e.complete {
		e.mu.Unlock()
		return
	}
	e.complete = true
	e.res, e.err = res, err
	waiters := e.waiters
	e.waiters = nil
	close(e.done)
	e.mu.Unlock()
	for _, j := range waiters {
		j.finish(res, err)
	}
	e.cancel() // release the context's timer/goroutine resources
}

// resultCache is the content-addressed result store plus the
// single-flight table of in-flight executions. Completed results are
// kept up to cap entries and evicted FIFO; failed executions are never
// cached (the next submission retries).
type resultCache struct {
	mu       sync.Mutex
	done     map[string]*Result
	order    []string
	cap      int
	inflight map[string]*entry
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &resultCache{
		done:     make(map[string]*Result),
		cap:      capacity,
		inflight: make(map[string]*entry),
	}
}

// lookup returns the completed result for key, if cached.
func (c *resultCache) lookup(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.done[key]
	return r, ok
}

// acquire resolves a submission against the cache in one atomic step:
// a completed result wins outright; otherwise the caller either joins
// the in-flight execution (leader=false) or creates it (leader=true)
// and must enqueue it. Doing all three under one lock closes the race
// where an execution completes between a lookup and a join, which
// would re-execute a just-cached job. base is the server's root
// context: shutdown cancels every execution derived from it.
func (c *resultCache) acquire(base context.Context, key string, spec Spec) (res *Result, e *entry, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.done[key]; ok {
		return r, nil, false
	}
	if e, ok := c.inflight[key]; ok {
		return nil, e, false
	}
	ctx, cancel := context.WithCancel(base)
	e = &entry{
		key:    key,
		spec:   spec,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	c.inflight[key] = e
	return nil, e, true
}

// abort removes a leader's entry that never made it into the queue
// (backpressure rejection).
func (c *resultCache) abort(e *entry) {
	c.mu.Lock()
	delete(c.inflight, e.key)
	c.mu.Unlock()
	e.cancel()
}

// complete records an execution's outcome: successes enter the
// content-addressed store, failures are dropped. Either way the entry
// leaves the in-flight table and every attached job is finished.
func (c *resultCache) complete(e *entry, res *Result, err error) {
	c.mu.Lock()
	delete(c.inflight, e.key)
	if err == nil {
		if _, dup := c.done[e.key]; !dup {
			c.done[e.key] = res
			c.order = append(c.order, e.key)
			for len(c.order) > c.cap {
				delete(c.done, c.order[0])
				c.order = c.order[1:]
			}
		}
	}
	c.mu.Unlock()
	e.finishWaiters(res, err)
}

// stats returns (completed entries, in-flight executions).
func (c *resultCache) stats() (entries, inflight int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done), len(c.inflight)
}
